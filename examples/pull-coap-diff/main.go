// Pull + differential updates: the paper's Fig. 8b scenario as a
// runnable program.
//
// Two identical devices run version 1 of a 100 kB firmware. Version 2
// differs by a localized 1000-byte application change. The first device
// has differential updates disabled and transfers the full image; the
// second advertises its current version in the device token, so the
// update server answers with an LZSS-compressed bsdiff patch that the
// device's pipeline decompresses and applies on the fly — no staging
// slot for the patch, exactly as in §IV-C.
//
// Run with: go run ./examples/pull-coap-diff
package main

import (
	"fmt"
	"log"

	"upkit"
)

const imageSize = 100_000

func main() {
	v1 := upkit.MakeFirmware("diff-demo-v1", imageSize)
	v2 := upkit.DeriveAppChange(v1, 1000) // Fig. 8b's app-change workload

	fmt.Println("updating v1 -> v2 (1000-byte application change, 100 kB image)")
	fmt.Println()

	full, err := runOne("full image", v1, v2, false)
	if err != nil {
		log.Fatal(err)
	}
	diff, err := runOne("differential", v1, v2, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndifferential update saves %.1f%% of the total update time\n",
		(1-diff/full)*100)
}

// runOne updates one device and reports the virtual total time.
func runOne(label string, v1, v2 []byte, differential bool) (float64, error) {
	dep, err := upkit.NewDeployment(upkit.DeploymentOptions{
		Approach:     upkit.Pull,
		Mode:         upkit.BootAB, // A/B keeps the loading phase tiny
		Differential: differential,
		Seed:         "diff-demo-" + label,
	}, v1)
	if err != nil {
		return 0, err
	}
	if err := dep.PublishVersion(2, v2); err != nil {
		return 0, err
	}

	start := dep.Device.Clock.Now()
	res, err := dep.PullUpdate()
	if err != nil {
		return 0, err
	}
	total := (dep.Device.Clock.Now() - start).Seconds()

	m := dep.Device.Manifest()
	payload := int(m.Size)
	kind := "full image"
	if m.IsDifferential() {
		payload = int(m.PatchSize)
		kind = fmt.Sprintf("patch (base v%d)", m.OldVersion)
	}
	fmt.Printf("%-12s  transferred %6d bytes as %-16s  total %6.2fs  -> running v%d\n",
		label, payload, kind, total, res.Version)
	return total, nil
}
