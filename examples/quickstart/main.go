// Quickstart: the smallest complete UpKit flow.
//
// A deployment wires a vendor server, an update server, a simulated
// nRF52840 running version 1, and a CoAP/802.15.4 pull link. Publishing
// version 2 and calling PullUpdate runs the whole paper pipeline:
// device token, double-signed manifest, early verification, blockwise
// download through the write pipeline, firmware digest check, reboot,
// boot-side re-verification, and the slot swap.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"upkit"
)

func main() {
	// Factory firmware, version 1.
	v1 := upkit.MakeFirmware("quickstart-v1", 64*1024)
	dep, err := upkit.NewDeployment(upkit.DeploymentOptions{Seed: "quickstart"}, v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device is running v%d\n", dep.Device.RunningVersion())

	// A new release reaches the vendor server and is published.
	v2 := upkit.MakeFirmware("quickstart-v2", 64*1024)
	if err := dep.PublishVersion(2, v2); err != nil {
		log.Fatal(err)
	}

	// The device pulls, verifies twice, and reboots into v2.
	res, err := dep.PullUpdate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device is running v%d from slot %s (installed by swap: %v)\n",
		res.Version, res.Booted.Name, res.Installed)

	// Virtual-time cost of the whole update, in the paper's phases.
	fmt.Printf("phases: verification %.2fs, loading %.2fs, total %.2fs\n",
		dep.Device.Phases.Phase("verification").Seconds(),
		dep.Device.Phases.Phase("loading").Seconds(),
		dep.Device.Clock.Now().Seconds())
	fmt.Printf("energy: %s\n", dep.Device.Meter)

	// The device's own record of what happened (the operator view).
	fmt.Println("\nevent log:")
	fmt.Println(dep.Device.Events)
}
