// Encrypted payloads: the paper's future-work item (§VIII), live.
//
// "We further plan to add a decryption stage in UpKit's pipeline
// module, in order to make confidentiality independent from the
// employed transport security layer."
//
// Here an eavesdropping smartphone forwards an update it cannot read:
// the update server encrypts the payload under a key only the device
// holds, the pipeline's decryption stage opens it on the fly, and the
// double signature still covers the plaintext — so the proxy can
// neither read nor alter the firmware.
//
// Run with: go run ./examples/encrypted
package main

import (
	"bytes"
	"fmt"
	"log"

	"upkit"
)

const imageSize = 48 * 1024

func main() {
	v1 := upkit.MakeFirmware("secret-v1", imageSize)
	v2 := upkit.MakeFirmware("secret-v2", imageSize)

	dep, err := upkit.NewDeployment(upkit.DeploymentOptions{
		Approach:  upkit.Push,
		Encrypted: true,
		Seed:      "encrypted-demo",
	}, v1)
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.PublishVersion(2, v2); err != nil {
		log.Fatal(err)
	}

	// The smartphone captures everything it forwards — play the
	// eavesdropper and inspect the captured payload.
	phone := dep.Smartphone()
	if err := phone.PushUpdate(); err != nil {
		log.Fatal(err)
	}
	captured := phone.Captured
	fmt.Printf("proxy captured %d payload bytes (encrypted: %v)\n",
		len(captured.Payload), captured.Encrypted)

	leaks := 0
	for off := 0; off+64 <= len(v2); off += 1024 {
		if bytes.Contains(captured.Payload, v2[off:off+64]) {
			leaks++
		}
	}
	fmt.Printf("plaintext windows found in the captured payload: %d\n", leaks)

	res, err := dep.Device.ApplyStagedUpdate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device decrypted, verified, and booted v%d\n", res.Version)

	// Tampering with ciphertext is caught exactly like tampering with
	// plaintext: CTR has no integrity, but the digest covers the
	// decrypted firmware.
	if err := dep.PublishVersion(3, upkit.MakeFirmware("secret-v3", imageSize)); err != nil {
		log.Fatal(err)
	}
	evil := dep.Smartphone()
	evil.TamperPayload = func(ct []byte) []byte { ct[1000] ^= 1; return ct }
	if err := evil.PushUpdate(); err != nil {
		fmt.Println("tampered ciphertext rejected:", errShort(err))
	} else {
		fmt.Println("!!! tampered ciphertext accepted")
	}
	fmt.Printf("device still runs v%d\n", dep.Device.RunningVersion())
}

func errShort(err error) string {
	s := err.Error()
	if len(s) > 70 {
		return s[:70] + "…"
	}
	return s
}
