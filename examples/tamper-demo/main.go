// Tamper demo: every attack from the paper's threat analysis (§II,
// §III) thrown at one device, live.
//
// A smartphone proxy pushes updates over BLE. We then let the proxy
// turn hostile: it flips bits in the manifest and in the firmware,
// replays a previously captured image, and forwards an image bound to
// another device. UpKit's double signature and agent-side verification
// must reject all of it — early, without a reboot — while a legitimate
// update afterwards still goes through.
//
// Run with: go run ./examples/tamper-demo
package main

import (
	"fmt"
	"log"

	"upkit"
)

const imageSize = 48 * 1024

func main() {
	v1 := upkit.MakeFirmware("tamper-v1", imageSize)
	dep, err := upkit.NewDeployment(upkit.DeploymentOptions{
		Approach: upkit.Push,
		Seed:     "tamper-demo",
	}, v1)
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.PublishVersion(2, upkit.MakeFirmware("tamper-v2", imageSize)); err != nil {
		log.Fatal(err)
	}
	dev := dep.Device

	attack := func(name string, configure func(*upkit.Smartphone)) {
		phone := dep.Smartphone()
		configure(phone)
		rebootsBefore := dev.Reboots()
		airBefore := dev.Clock.Now()
		err := phone.PushUpdate()
		verdict := "!!! ACCEPTED"
		if err != nil {
			verdict = "rejected"
		}
		fmt.Printf("%-28s %-9s (air+flash time %6.2fs, reboots %d, still v%d)\n",
			name, verdict,
			(dev.Clock.Now() - airBefore).Seconds(),
			dev.Reboots()-rebootsBefore,
			dev.RunningVersion())
	}

	fmt.Printf("device running v%d; a hostile proxy attacks:\n\n", dev.RunningVersion())

	attack("bit flip in manifest", func(p *upkit.Smartphone) {
		p.TamperManifest = func(m []byte) []byte { m[25] ^= 0x10; return m }
	})
	attack("version field raised", func(p *upkit.Smartphone) {
		p.TamperManifest = func(m []byte) []byte { m[10]++; return m }
	})
	attack("bit flip in firmware", func(p *upkit.Smartphone) {
		p.TamperPayload = func(b []byte) []byte { b[len(b)/3] ^= 0x01; return b }
	})

	// A legitimate update still works...
	fmt.Println()
	phone := dep.Smartphone()
	if err := phone.PushUpdate(); err != nil {
		log.Fatal(err)
	}
	if _, err := dev.ApplyStagedUpdate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legitimate update accepted: device now runs v%d\n\n", dev.RunningVersion())

	// ...and the captured image cannot be replayed, not even against a
	// device that would love a v2 image.
	attack("replay of captured v2", func(p *upkit.Smartphone) {
		p.Replay = phone.Captured
	})

	// Cross-device: the same image pushed to a different device.
	other, err := upkit.NewDeployment(upkit.DeploymentOptions{
		Approach: upkit.Push,
		Seed:     "tamper-demo", // same keys, different identity
		DeviceID: 0x0DDD,
	}, v1)
	if err != nil {
		log.Fatal(err)
	}
	otherPhone := other.Smartphone()
	otherPhone.Replay = phone.Captured
	err = otherPhone.PushUpdate()
	verdict := "!!! ACCEPTED"
	if err != nil {
		verdict = "rejected"
	}
	fmt.Printf("%-28s %-9s (other device still v%d)\n",
		"foreign-device image", verdict, other.Device.RunningVersion())
}
