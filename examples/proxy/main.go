// Proxy: the content-addressed distribution walkthrough.
//
// A prepared update's payload is exposed as immutable named blocks —
// the name is the SHA-256 of the payload bytes — so ANY middlebox can
// serve it: a caching CoAP proxy near the devices, or a peer device
// that already completed the download. This demo wires the full serve
// topology and then plays the attack the design exists to survive:
//
//  1. the device updates through a caching proxy; the proxy fills from
//     the origin once and the verified payload seeds a peer registry;
//  2. the proxy turns hostile and flips a bit in every block it
//     serves; the device's digest check rejects the stream, fails over
//     to the origin, and the update still completes — a poisoned cache
//     costs a transfer, never an installed image.
//
// Run with: go run ./examples/proxy
package main

import (
	"fmt"
	"log"

	"upkit"
)

func main() {
	v1 := upkit.MakeFirmware("proxy-demo-v1", 64*1024)
	dep, err := upkit.NewDeployment(upkit.DeploymentOptions{Seed: "proxy-demo"}, v1)
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.PublishVersion(2, upkit.MakeFirmware("proxy-demo-v2", 64*1024)); err != nil {
		log.Fatal(err)
	}

	// The serve topology: a caching proxy in front of the origin, and a
	// peer registry that verified downloads feed. The proxy holds no key
	// material — it is just a cache.
	cache := upkit.NewProxyCache(
		&upkit.CoAPLoopback{Handler: dep.PullHandler()},
		upkit.ProxyCacheOptions{})
	peers := upkit.NewBlockRegistry(0)
	peerSrv := &upkit.BlockServer{Source: peers}
	dep.Distribute(cache.Handle,
		upkit.DistributionRoute{Name: "peer", Handler: peerSrv.Handle},
		upkit.DistributionRoute{Name: "proxy", Handler: cache.Handle})
	dep.ShareBlocks(peers)

	res, err := dep.PullUpdate()
	if err != nil {
		log.Fatal(err)
	}
	st := cache.Stats()
	fmt.Printf("v%d installed through the proxy: %d origin fills, %d cache hits\n",
		res.Version, st.Fills, st.Hits)
	fmt.Printf("peer registry now seeds %d payload(s) for the rest of the fleet\n",
		peers.Stats().Entries)

	// Act two: the proxy goes hostile. Every block it serves has one bit
	// flipped — a corrupted cache, a tampering middlebox, same thing.
	if err := dep.PublishVersion(3, upkit.MakeFirmware("proxy-demo-v3", 64*1024)); err != nil {
		log.Fatal(err)
	}
	poisoned := func(req *upkit.CoAPMessage) *upkit.CoAPMessage {
		resp := cache.Handle(req)
		if req.Path() == "/upkit/blocks" && len(resp.Payload) > 0 {
			resp.Payload[0] ^= 0x01
		}
		return resp
	}
	dep.Distribute(cache.Handle,
		upkit.DistributionRoute{Name: "evil-proxy", Handler: poisoned})

	res, err = dep.PullUpdate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d installed despite the poisoned proxy: %d digest rejection(s), %d failover(s)\n",
		res.Version,
		dep.Device.Events.Count(upkit.EventFirmwareRejected),
		dep.Device.Events.Count(upkit.EventSourceFailover))
	fmt.Println("the poisoned cache wasted one transfer — it could never install code")
}
