// Rotation: the key-lifecycle walkthrough.
//
// A lifecycle deployment factory-provisions the device with a single
// trust anchor — the vendor ROOT verification key — and introduces the
// working vendor and update-server keys as root-signed key records.
// This demo then plays the operator's worst week:
//
//  1. the update-server key leaks; it is rotated and revoked, and the
//     device learns both facts over the (untrusted) update channel;
//  2. updates keep flowing under the new key;
//  3. the vendor signing key is rotated too, and the next release —
//     signed by the new vendor key — still installs.
//
// The running image stays bootable throughout: revocation gates new
// installs, never availability.
//
// Run with: go run ./examples/rotation
package main

import (
	"fmt"
	"log"

	"upkit"
)

func main() {
	v1 := upkit.MakeFirmware("rotation-v1", 64*1024)
	dep, err := upkit.NewDeployment(upkit.DeploymentOptions{
		Seed:      "rotation",
		Lifecycle: true, // root key + keystore + key distribution
	}, v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device is running v%d; keystore holds %d root-signed key records\n",
		dep.Device.RunningVersion(), len(dep.Keystore.Records()))

	// Normal life: publish and install v2 under server key 1.
	if err := dep.PublishVersion(2, upkit.MakeFirmware("rotation-v2", 64*1024)); err != nil {
		log.Fatal(err)
	}
	if _, err := dep.PullUpdate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed v%d under server key 1\n", dep.Device.RunningVersion())

	// The update-server key leaks. Rotate to key 2 and revoke key 1:
	// the server starts signing with the new key immediately, and the
	// published key bundle now carries the new record plus a revocation
	// list covering the old ID.
	if _, err := dep.RotateServerKey(); err != nil {
		log.Fatal(err)
	}
	added, err := dep.SyncKeys() // device pulls /upkit/keys over CoAP
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key sync: %d new record(s); server key 1 revoked on device: %v\n",
		added, dep.Keystore.IsRevoked(upkit.RoleServer, 1))

	// Anything the attacker signs with the stolen key is now rejected
	// at manifest verification (see the adversarial testbed tier for
	// that play-by-play); legitimate updates continue under key 2.
	if err := dep.PublishVersion(3, upkit.MakeFirmware("rotation-v3", 64*1024)); err != nil {
		log.Fatal(err)
	}
	if _, err := dep.PullUpdate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed v%d under server key 2\n", dep.Device.RunningVersion())

	// Rotating the vendor key is the same dance: new root-signed record,
	// revocation of the old ID, and releases built after the rotation
	// carry the new vendor key ID in their manifests.
	if _, err := dep.RotateVendorKey(); err != nil {
		log.Fatal(err)
	}
	if _, err := dep.SyncKeys(); err != nil {
		log.Fatal(err)
	}
	if err := dep.PublishVersion(4, upkit.MakeFirmware("rotation-v4", 64*1024)); err != nil {
		log.Fatal(err)
	}
	res, err := dep.PullUpdate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed v%d under vendor key 2 (booted from slot %s)\n",
		res.Version, res.Booted.Name)
	fmt.Printf("device keystore: %d records, revocation seq %d\n",
		len(dep.Keystore.Records()), dep.Keystore.RevocationSeq())
}
