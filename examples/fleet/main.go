// Fleet campaign: a staged rollout across a heterogeneous fleet — the
// deployment reality the paper's portability argument (§V) is about,
// orchestrated by the campaign manager.
//
// The fleet mixes the paper's three hardware platforms, both slot
// configurations, differential and full updates, and one device with a
// degraded radio. The campaign rolls out in stages — a canary wave,
// then a broader wave, then the rest — promoting between stages only
// while the failure gate holds, with a circuit breaker armed mid-wave
// and per-device retries absorbing the lossy link.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"upkit"
)

const imageSize = 64 * 1024

// node is one fleet member and its upkit deployment.
type node struct {
	name string
	dep  *upkit.Deployment
	id   uint32
}

func (n *node) ID() uint32      { return n.id }
func (n *node) Version() uint16 { return n.dep.Device.RunningVersion() }
func (n *node) TryUpdate() (uint16, error) {
	res, err := n.dep.PullUpdate()
	if err != nil {
		return n.dep.Device.RunningVersion(), err
	}
	return res.Version, nil
}

func main() {
	nrf := upkit.NRF52840()
	cc2650 := upkit.CC2650()
	cc2538 := upkit.CC2538()

	specs := []struct {
		name string
		opts upkit.DeploymentOptions
		loss float64
	}{
		{"sensor-01 (nRF52840, A/B, diff)",
			upkit.DeploymentOptions{MCU: &nrf, Mode: upkit.BootAB, Differential: true, DeviceID: 0x1001}, 0},
		{"sensor-02 (nRF52840, static)",
			upkit.DeploymentOptions{MCU: &nrf, Mode: upkit.BootStatic, DeviceID: 0x1002}, 0},
		// 84 KiB is the largest sector-aligned slot A that still fits the
		// CC2650's 128 KiB internal flash next to the bootloader, swap
		// scratch, the two reception-journal sectors, and the two
		// security-counter sectors; slot B spills to the external SPI NOR.
		{"valve-07  (CC2650, ext flash)",
			upkit.DeploymentOptions{MCU: &cc2650, Mode: upkit.BootStatic, SlotBytes: 84 * 1024, DeviceID: 0x1003}, 0},
		{"meter-12  (CC2538, diff)",
			upkit.DeploymentOptions{MCU: &cc2538, Mode: upkit.BootStatic, SlotBytes: 96 * 1024, Differential: true, DeviceID: 0x1004}, 0},
		{"meter-13  (CC2538, lossy radio)",
			upkit.DeploymentOptions{MCU: &cc2538, Mode: upkit.BootStatic, SlotBytes: 96 * 1024, DeviceID: 0x1005}, 0.08},
	}

	v1 := upkit.MakeFirmware("fleet-v1", imageSize)
	v2 := upkit.DeriveOSChange(v1) // a realistic OS upgrade

	nodes := make([]*node, len(specs))
	updaters := make([]upkit.FleetUpdater, len(specs))
	for i, s := range specs {
		s.opts.Approach = upkit.Pull
		s.opts.Seed = fmt.Sprintf("fleet-%x", s.opts.DeviceID)
		dep, err := upkit.NewDeployment(s.opts, v1)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if err := dep.PublishVersion(2, v2); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if s.loss > 0 {
			dep.Link.SetLoss(s.loss, int64(s.opts.DeviceID))
		}
		nodes[i] = &node{name: s.name, dep: dep, id: s.opts.DeviceID}
		updaters[i] = nodes[i]
	}

	fmt.Printf("campaign: v1 -> v2 across %d devices (staged 20%% -> 60%% -> 100%%, retries on)\n\n", len(nodes))
	campaign, err := upkit.NewCampaign(2, upkit.CampaignPolicy{
		Stages:               []float64{0.2, 0.6, 1},
		MaxCanaryFailureRate: 0,
		BreakerFailureRate:   0.5,
		MaxRetries:           2,
		Parallelism:          2,
	}, updaters)
	if err != nil {
		log.Fatal(err)
	}
	report, err := campaign.Run()
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	fmt.Println(report.Render())

	fmt.Println()
	for _, n := range nodes {
		m := n.dep.Device.Manifest()
		payload := "full image"
		if m != nil && m.IsDifferential() {
			payload = fmt.Sprintf("patch (%d B)", m.PatchSize)
		}
		fmt.Printf("%-34s v%d  %-16s  virtual time %6.1fs\n",
			n.name, n.Version(), payload, n.dep.Device.Clock.Now().Seconds())
	}
}
