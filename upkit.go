// Package upkit is a Go implementation of UpKit, the open-source,
// portable, and lightweight software-update framework for constrained
// IoT devices by Langiu, Boano, Schuß, and Römer (ICDCS 2019).
//
// It provides every stage of the paper's update process:
//
//   - a vendor server that signs firmware releases (generation phase);
//   - an update server that adds a second, per-request signature bound
//     to a device token, granting update freshness without transport
//     security, and that derives LZSS-compressed bsdiff patches for
//     differential updates (propagation phase);
//   - a device-side update agent — an eight-state FSM fed by either a
//     push (BLE GATT) or pull (CoAP blockwise) transport — that
//     verifies manifests before downloading and firmware before
//     rebooting (verification phase, early rejection);
//   - a bootloader that re-verifies after reboot and installs images
//     either by a power-loss-safe slot swap (static mode) or by booting
//     the newer of two slots directly (A/B mode) (loading phase).
//
// Constrained hardware is simulated: NOR-flash chips with real
// erase-before-write semantics, virtual-time radio links, and an energy
// model reproduce the paper's platforms (nRF52840, CC2650, CC2538) so
// the evaluation's tables and figures can be regenerated; see the
// experiments subcommands of cmd/upkit-bench and EXPERIMENTS.md.
//
// Quick start
//
//	v1 := upkit.MakeFirmware("my-app-v1", 64*1024)
//	dep, _ := upkit.NewDeployment(upkit.DeploymentOptions{}, v1)
//	v2 := upkit.MakeFirmware("my-app-v2", 64*1024)
//	_ = dep.PublishVersion(2, v2)
//	result, _ := dep.PullUpdate() // transfer, double verification, reboot
//	fmt.Println(result.Version)   // 2
//
// The package re-exports the framework's building blocks so downstream
// code can assemble custom deployments: key handling and crypto suites
// (security), manifests and device tokens (manifest), the agent,
// bootloader, slots, simulated flash, and both servers.
package upkit

import (
	"io"

	"upkit/internal/agent"
	"upkit/internal/bootloader"
	"upkit/internal/coap"
	"upkit/internal/controlplane"
	"upkit/internal/device"
	"upkit/internal/dist"
	"upkit/internal/events"
	"upkit/internal/experiments"
	"upkit/internal/flash"
	"upkit/internal/fleet"
	"upkit/internal/httpapi"
	"upkit/internal/manifest"
	"upkit/internal/patchfarm"
	"upkit/internal/platform"
	"upkit/internal/proxy"
	"upkit/internal/security"
	"upkit/internal/slot"
	"upkit/internal/suit"
	"upkit/internal/telemetry"
	"upkit/internal/testbed"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
	"upkit/internal/verifier"
)

// Core protocol types.
type (
	// Manifest is the update-image metadata with its double signature.
	Manifest = manifest.Manifest
	// DeviceToken is the per-request freshness token (device ID, nonce,
	// current version).
	DeviceToken = manifest.DeviceToken
)

// Cryptography.
type (
	// Suite is the security interface over digest + ECDSA operations.
	Suite = security.Suite
	// PrivateKey is a P-256 signing key.
	PrivateKey = security.PrivateKey
	// PublicKey is a P-256 verification key.
	PublicKey = security.PublicKey
	// Keys holds a device's provisioned verification keys.
	Keys = verifier.Keys
	// HSM is the simulated ATECC508 secure element.
	HSM = security.HSM
)

// Key lifecycle: versioned verification keys, root-signed records, and
// revocation, distributed to devices over the update channel itself.
type (
	// KeyRecord is a root-signed (role, key ID, validity window,
	// public key) statement introducing a verification key.
	KeyRecord = security.KeyRecord
	// RevocationList is a root-signed, sequence-numbered list of
	// revoked key IDs. Revocation is cumulative and irreversible.
	RevocationList = security.RevocationList
	// RevocationEntry names one revoked (role, key ID) pair.
	RevocationEntry = security.RevocationEntry
	// KeyBundle packs key records and a revocation list into the blob
	// served at /api/v1/keys (HTTP) and /upkit/keys (CoAP).
	KeyBundle = security.KeyBundle
	// Keystore is the device-side key table: it verifies records
	// against the factory-provisioned root key and answers the
	// verifier's key lookups with lifecycle state attached.
	Keystore = security.Keystore
	// KeyRole distinguishes vendor keys from update-server keys.
	KeyRole = security.KeyRole
)

// Key roles.
const (
	RoleVendor = security.RoleVendor
	RoleServer = security.RoleServer
)

// NewKeystore builds a device keystore anchored at the vendor root
// verification key. now supplies Unix seconds for validity windows and
// may be nil on devices without a clock.
func NewKeystore(suite Suite, root *PublicKey, now func() uint64) *Keystore {
	return security.NewKeystore(suite, root, now)
}

// ParseKeyRecord decodes a signed key record from its wire form.
func ParseKeyRecord(data []byte) (*KeyRecord, error) { return security.ParseKeyRecord(data) }

// ParseRevocationList decodes a signed revocation list.
func ParseRevocationList(data []byte) (*RevocationList, error) {
	return security.ParseRevocationList(data)
}

// ParseKeyBundle decodes a key bundle.
func ParseKeyBundle(data []byte) (*KeyBundle, error) { return security.ParseKeyBundle(data) }

// Server side.
type (
	// VendorServer signs firmware releases (first signature).
	VendorServer = vendorserver.Server
	// Release is a firmware release submitted to the vendor server.
	Release = vendorserver.Release
	// Image is a vendor-signed update image.
	Image = vendorserver.Image
	// UpdateServer distributes images with per-request signatures and
	// differential payloads.
	UpdateServer = updateserver.Server
	// Update is a prepared, double-signed update ready for transfer.
	Update = updateserver.Update
	// UpdateServerStats snapshots the server's differential-patch
	// cache counters (UpdateServer.Stats).
	UpdateServerStats = updateserver.CacheStats
	// ReleaseStore is the release repository behind an update server:
	// sharded in-memory by default, file-backed for durability.
	ReleaseStore = updateserver.ReleaseStore
	// ReleaseStoreStats sizes a release store (UpdateServer.Store().Stats()).
	ReleaseStoreStats = updateserver.StoreStats
	// ReleaseFileStore is the durable, crash-safe release store backed
	// by per-app record logs under a state directory.
	ReleaseFileStore = updateserver.FileStore
	// Announcement is a new-release notice delivered to subscribers.
	Announcement = updateserver.Announcement
)

// Device side.
type (
	// Agent is the update agent FSM.
	Agent = agent.Agent
	// AgentConfig wires an agent into a device.
	AgentConfig = agent.Config
	// Bootloader performs boot-time verification and loading.
	Bootloader = bootloader.Bootloader
	// BootMode selects static (Configuration B) or A/B (Configuration A)
	// loading.
	BootMode = bootloader.Mode
	// Slot is one update-image slot on simulated flash.
	Slot = slot.Slot
	// Flash is a simulated NOR flash chip.
	Flash = flash.Memory
	// FlashGeometry describes a chip and its timing model.
	FlashGeometry = flash.Geometry
	// Device is a fully wired simulated IoT device.
	Device = device.Device
	// DeviceOptions configures a Device.
	DeviceOptions = device.Options
	// MCU is a hardware-platform profile.
	MCU = platform.MCU
	// Smartphone is the push-approach proxy application.
	Smartphone = proxy.Smartphone
	// PullClient drives an agent through the CoAP pull flow.
	PullClient = coap.PullClient
)

// Deployment wiring.
type (
	// Deployment is a complete wired system: vendor server, update
	// server, radio link, and one simulated device.
	Deployment = testbed.Bed
	// DeploymentOptions configures a Deployment.
	DeploymentOptions = testbed.Options
	// BootResult describes a completed boot.
	BootResult = bootloader.Result
)

// Boot modes.
const (
	// BootStatic is the paper's Configuration B: one bootable slot plus
	// a staging slot; images are installed by a power-loss-safe swap.
	BootStatic = bootloader.ModeStatic
	// BootAB is Configuration A: two bootable slots; the bootloader
	// jumps directly to the newer one.
	BootAB = bootloader.ModeAB
)

// Update-distribution approaches.
const (
	// Pull: the device polls the update server over CoAP.
	Pull = platform.Pull
	// Push: a smartphone forwards updates over BLE.
	Push = platform.Push
)

// Crypto suite constructors.

// NewTinyDTLS returns the TinyDTLS-profile software crypto suite.
func NewTinyDTLS() Suite { return security.NewTinyDTLS() }

// NewTinyCrypt returns the tinycrypt-profile software crypto suite.
func NewTinyCrypt() Suite { return security.NewTinyCrypt() }

// NewCryptoAuthLib returns a suite backed by a simulated ATECC508 HSM.
func NewCryptoAuthLib(hsm *HSM) Suite { return security.NewCryptoAuthLib(hsm) }

// NewHSM returns an unprovisioned simulated ATECC508.
func NewHSM() *HSM { return security.NewHSM() }

// GenerateKey creates a P-256 key pair from the entropy source r (use
// crypto/rand.Reader in production).
func GenerateKey(r io.Reader) (*PrivateKey, error) { return security.GenerateKey(r) }

// MustGenerateKey derives a reproducible key pair from a seed — for
// tests, simulations, and examples only.
func MustGenerateKey(seed string) *PrivateKey { return security.MustGenerateKey(seed) }

// Server constructors.

// NewVendorServer creates a vendor server signing with key under suite.
func NewVendorServer(suite Suite, key *PrivateKey) *VendorServer {
	return vendorserver.New(suite, key)
}

// UpdateServerOption tunes an update server at construction time.
type UpdateServerOption = updateserver.Option

// WithPatchCacheSize bounds the differential-patch cache to n bytes;
// zero disables caching.
func WithPatchCacheSize(n int) UpdateServerOption { return updateserver.WithPatchCacheSize(n) }

// WithRetention bounds the number of releases kept per app.
func WithRetention(n int) UpdateServerOption { return updateserver.WithRetention(n) }

// WithTelemetry makes the server report into reg instead of a private
// registry — share one registry across servers to aggregate scrapes.
func WithTelemetry(reg *MetricsRegistry) UpdateServerOption {
	return updateserver.WithTelemetry(reg)
}

// WithStore backs the update server with an explicit release store —
// e.g. a NewReleaseFileStore for durability across restarts.
func WithStore(st ReleaseStore) UpdateServerOption { return updateserver.WithStore(st) }

// WithShards sets the shard count of the default in-memory release
// store (ignored when WithStore is given).
func WithShards(n int) UpdateServerOption { return updateserver.WithShards(n) }

// NewReleaseFileStore opens (creating if needed) a durable release
// store rooted at dir, replaying its per-app record logs; pass it to
// NewUpdateServer via WithStore and Close it on shutdown.
func NewReleaseFileStore(dir string) (*ReleaseFileStore, error) {
	return updateserver.NewFileStore(dir)
}

// NewUpdateServer creates an update server signing with key under suite.
func NewUpdateServer(suite Suite, key *PrivateKey, opts ...UpdateServerOption) *UpdateServer {
	return updateserver.New(suite, key, opts...)
}

// Device and deployment constructors.

// NewDevice builds a simulated constrained device.
func NewDevice(opts DeviceOptions) (*Device, error) { return device.New(opts) }

// NewDeployment wires a complete system and factory-provisions the
// device with firmware as version 1. Pass nil firmware to get an
// unprovisioned device.
func NewDeployment(opts DeploymentOptions, firmware []byte) (*Deployment, error) {
	return testbed.New(opts, firmware)
}

// Hardware profiles of the paper's evaluation platforms.

// NRF52840 returns the Nordic nRF52840 profile.
func NRF52840() MCU { return platform.NRF52840() }

// CC2650 returns the TI CC2650 profile (with external SPI flash).
func CC2650() MCU { return platform.CC2650() }

// CC2538 returns the TI CC2538 profile.
func CC2538() MCU { return platform.CC2538() }

// Workload helpers.

// MakeFirmware produces deterministic firmware-like content (a mix of
// repetitive code idioms and literals) for simulations and examples.
func MakeFirmware(seed string, size int) []byte { return testbed.MakeFirmware(seed, size) }

// DeriveAppChange models a localized application change of about
// editBytes bytes — Fig. 8b's second workload.
func DeriveAppChange(base []byte, editBytes int) []byte {
	return testbed.DeriveAppChange(base, editBytes)
}

// DeriveOSChange models an OS minor-version upgrade — Fig. 8b's first
// workload.
func DeriveOSChange(base []byte) []byte { return testbed.DeriveOSChange(base) }

// Experiments.

// ExperimentIDs lists the reproducible tables/figures/ablations.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure of the paper's
// evaluation; the result's Render method returns the printable table.
func RunExperiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }

// ExperimentTable is one regenerated table or figure.
type ExperimentTable = experiments.Table

// Observability.

type (
	// EventLog records a device's update lifecycle.
	EventLog = events.Log
	// Event is one recorded lifecycle occurrence.
	Event = events.Event
	// EventKind classifies lifecycle events.
	EventKind = events.Kind
	// MetricsRegistry collects counters, gauges, and histograms and
	// serves them in Prometheus text exposition format.
	MetricsRegistry = telemetry.Registry
	// SpanTracer traces updates end-to-end across the paper's four
	// phases; every MetricsRegistry carries one (Spans).
	SpanTracer = telemetry.Tracer
	// UpdateSpan is one update's accumulated phase breakdown.
	UpdateSpan = telemetry.Span
	// UpdateSpanKey identifies one update flow: the (device, app,
	// from→to version) tuple the double signature binds.
	UpdateSpanKey = telemetry.SpanKey
	// UpdatePhase names one of the four update phases.
	UpdatePhase = telemetry.Phase
)

// The paper's four update phases (Fig. 8a), in pipeline order.
const (
	PhaseGeneration   = telemetry.PhaseGeneration
	PhasePropagation  = telemetry.PhasePropagation
	PhaseVerification = telemetry.PhaseVerification
	PhaseLoading      = telemetry.PhaseLoading
)

// NewMetricsRegistry creates an empty metrics registry, typically
// shared across servers and devices via WithTelemetry and
// DeploymentOptions.Telemetry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Event kinds, re-exported so facade users can match log entries.
const (
	EventTokenIssued      = events.KindTokenIssued
	EventManifestAccepted = events.KindManifestAccepted
	EventManifestRejected = events.KindManifestRejected
	EventFirmwareVerified = events.KindFirmwareVerified
	EventFirmwareRejected = events.KindFirmwareRejected
	EventUpdateStaged     = events.KindUpdateStaged
	EventRebooted         = events.KindRebooted
	EventBootVerified     = events.KindBootVerified
	EventInstalled        = events.KindInstalled
	EventRolledBack       = events.KindRolledBack
	EventSwapResumed      = events.KindSwapResumed
	EventBootFailed       = events.KindBootFailed
	EventSourceFailover   = events.KindSourceFailover
)

// Content-addressed distribution: prepared payloads are exposed as
// immutable named blocks (the name is the SHA-256 of the payload
// bytes), so any untrusted middlebox — a caching proxy, a peer device —
// can serve them. The double signature travels in the manifest; a wrong
// byte from any source is a digest failure and a failover, never an
// installed image.

type (
	// BlockName is a payload's content address.
	BlockName = dist.Name
	// BlockSource serves fixed-size blocks of named payloads — the seam
	// the origin, proxies, and peers all implement.
	BlockSource = dist.Source
	// BlockRegistry is an in-memory named-payload store with LRU
	// eviction: the origin's block store, or a peer's share cache.
	BlockRegistry = dist.Registry
	// BlockRegistryStats snapshots a registry (BlockRegistry.Stats).
	BlockRegistryStats = dist.RegistryStats
	// BlockCacheStats snapshots a caching tier (ProxyCache.Stats).
	BlockCacheStats = dist.CacheStats
	// BlockServer answers CoAP GET /upkit/blocks from a BlockSource —
	// mount its Handle to serve blocks (e.g. as a peer).
	BlockServer = coap.BlockServer
	// ProxyCache is the caching CoAP proxy tier: named blocks from an
	// LRU cache with singleflight origin fill, everything else forwarded.
	ProxyCache = proxy.Cache
	// ProxyCacheOptions configures a ProxyCache.
	ProxyCacheOptions = proxy.CacheOptions
	// PullSource is one named-block source a PullClient tries in order
	// (peer, proxy, origin) before the session transfer path.
	PullSource = coap.BlockSource
	// DistributionRoute is one block source in a Deployment's serve
	// topology (Deployment.Distribute).
	DistributionRoute = testbed.BlockRoute
	// CoAPExchanger performs one confirmable CoAP exchange — how a
	// ProxyCache reaches its origin.
	CoAPExchanger = coap.Exchanger
	// CoAPLoopback adapts an in-process CoAP handler into a
	// CoAPExchanger, running the full codec round trip.
	CoAPLoopback = coap.Loopback
	// CoAPMessage is one CoAP message (for custom middleboxes).
	CoAPMessage = coap.Message
)

// BlockNameOf computes the content address of a payload.
func BlockNameOf(payload []byte) BlockName { return dist.NameOf(payload) }

// ParseBlockName decodes a hex content address.
func ParseBlockName(s string) (BlockName, error) { return dist.ParseName(s) }

// NewBlockRegistry creates a named-payload store bounded to maxBytes
// (a package default when <= 0).
func NewBlockRegistry(maxBytes int) *BlockRegistry { return dist.NewRegistry(maxBytes) }

// NewProxyCache creates a caching proxy whose origin is reached over
// origin — a CoAPLoopback in simulations, a UDP exchanger in
// cmd/upkit-proxy.
func NewProxyCache(origin CoAPExchanger, opts ProxyCacheOptions) *ProxyCache {
	return proxy.NewCache(origin, opts)
}

// WithBlockStoreSize bounds the update server's named-block store to n
// bytes (a package default when <= 0).
func WithBlockStoreSize(n int) UpdateServerOption { return updateserver.WithBlockStoreSize(n) }

// WithPrivateBlockStoreSize bounds the private registry holding
// per-device encrypted payloads — segregated from the fleet-shared
// block store so an encrypted campaign cannot evict shared patch
// blocks (a package default when <= 0).
func WithPrivateBlockStoreSize(n int) UpdateServerOption {
	return updateserver.WithPrivateBlockStoreSize(n)
}

// Serve-path patch farm: precomputed diffs, a durable patch store, and
// parallel manifest signing.

type (
	// PatchStore is the durable tier behind the update server's patch
	// cache: CRC-framed, fsynced-before-visible, digest-pinned patch
	// records that survive a server restart. Open one with
	// OpenPatchStore and attach it via WithPatchStore.
	PatchStore = updateserver.PatchStore
	// PatchStoreStats snapshots a PatchStore's counters.
	PatchStoreStats = updateserver.PatchStoreStats
	// VersionPair identifies one (from → to) differential for an app;
	// To zero means "the latest at warm time".
	VersionPair = updateserver.VersionPair
	// WarmResult reports what UpdateServer.WarmPatch found or did.
	WarmResult = updateserver.WarmResult
	// PatchFarm is the worker pool precomputing differential patches
	// off the serve path (internal/patchfarm).
	PatchFarm = patchfarm.Farm
	// PatchFarmConfig sizes a PatchFarm (workers, queue, auto-warm).
	PatchFarmConfig = patchfarm.Config
	// PatchFarmStats snapshots a PatchFarm's counters.
	PatchFarmStats = patchfarm.FarmStats
)

// OpenPatchStore opens (creating if needed) the durable patch store
// rooted at dir, bounded to maxBytes of live patch bytes (a package
// default when <= 0), replaying its log and truncating any torn tail.
func OpenPatchStore(dir string, maxBytes int) (*PatchStore, error) {
	return updateserver.OpenPatchStore(dir, maxBytes)
}

// WithPatchStore attaches a durable patch store behind the in-memory
// patch cache: memory misses probe it before diffing and fresh
// computations are persisted, so warm patches survive restarts. The
// caller keeps ownership and must Close it after the server.
func WithPatchStore(ps *PatchStore) UpdateServerOption {
	return updateserver.WithPatchStore(ps)
}

// WithSigners arms the update server's parallel manifest-signing pool
// with n workers (n <= 0 selects GOMAXPROCS). The pool bounds ECDSA
// concurrency under heavy request traffic; without it every request
// signs inline.
func WithSigners(n int) UpdateServerOption { return updateserver.WithSigners(n) }

// NewPatchFarm starts a patch farm warming srv; Close it on shutdown.
// Mount its admin endpoints (POST /api/v1/patchfarm/warm,
// GET /api/v1/patchfarm/stats) with srv.Mount(farm.Register).
func NewPatchFarm(srv *UpdateServer, cfg PatchFarmConfig) *PatchFarm {
	return patchfarm.New(srv, cfg)
}

// Fleet campaigns.

type (
	// Campaign rolls a release across a fleet in staged waves with
	// failure gates, a mid-wave circuit breaker, and per-device retries.
	Campaign = fleet.Campaign
	// CampaignPolicy tunes staging, gates, retries, and parallelism.
	CampaignPolicy = fleet.Policy
	// CampaignReport summarises a campaign run with streaming counters
	// and bounded per-device samples (O(1) in fleet size).
	CampaignReport = fleet.Report
	// CampaignStage summarises one rollout stage within a report.
	CampaignStage = fleet.StageSummary
	// CampaignCheckpoint is a campaign's serializable resume state;
	// obtain it from Campaign.Checkpoint after an aborted or paused run
	// and feed it to Campaign.Restore to continue where the run stopped.
	CampaignCheckpoint = fleet.Checkpoint
	// CampaignProgress is a concurrency-safe snapshot of a campaign —
	// live per-stage counts, throughput, and ETA while a run is in
	// flight (Campaign.Progress).
	CampaignProgress = fleet.Progress
	// CampaignStageProgress is one stage's tally within a progress
	// snapshot.
	CampaignStageProgress = fleet.StageProgress
	// FleetUpdater is one device's update entry point in a campaign.
	FleetUpdater = fleet.Updater
)

// ErrCampaignAborted is returned (wrapped) when a campaign's stage
// gate trips; ErrBreakerTripped — which wraps ErrCampaignAborted — when
// the mid-wave circuit breaker halts the rollout. ErrCampaignPaused
// marks a run halted by Campaign.Pause: unattempted devices stay
// pending and the checkpoint re-dispatches exactly them.
var (
	ErrCampaignAborted = fleet.ErrCampaignAborted
	ErrBreakerTripped  = fleet.ErrBreakerTripped
	ErrCampaignPaused  = fleet.ErrCampaignPaused
)

// NewCampaign creates a rollout of target across devices. RunContext
// is the primary entry point (Run is a convenience wrapper); Pause,
// Progress, and Checkpoint observe and manage the run from other
// goroutines.
func NewCampaign(target uint16, policy CampaignPolicy, devices []FleetUpdater) (*Campaign, error) {
	return fleet.New(target, policy, devices)
}

// ParseCampaignCheckpoint decodes resume state produced by
// CampaignCheckpoint.Marshal.
func ParseCampaignCheckpoint(blob []byte) (*CampaignCheckpoint, error) {
	return fleet.ParseCheckpoint(blob)
}

// Campaign control plane: campaigns as HTTP resources
// (/api/v1/campaigns) with live progress, pause/resume/abort, and
// per-device attempt history.

type (
	// CampaignManager owns server-managed campaigns: creation,
	// lifecycle transitions, persistence, and the census registry.
	// Mount it on an update server with UpdateServerRoutes.
	CampaignManager = controlplane.Manager
	// CampaignManagerConfig sizes a manager (persistence directory,
	// fleet and history bounds).
	CampaignManagerConfig = controlplane.Config
	// CampaignCensus names the device population a campaign rolls over.
	CampaignCensus = controlplane.Census
	// CampaignCreateRequest is the body of POST /api/v1/campaigns.
	CampaignCreateRequest = controlplane.CreateRequest
	// CampaignStatus is a campaign's externally visible state.
	CampaignStatus = controlplane.Status
	// CampaignClient drives the campaign API over HTTP.
	CampaignClient = controlplane.Client
	// DeviceAttempt is one recorded terminal device outcome in a
	// campaign's per-device history.
	DeviceAttempt = controlplane.Attempt
)

// NewCampaignManager opens a campaign control plane rooted at
// cfg.Dir, reloading persisted campaigns; an empty Dir keeps
// campaigns in memory only.
func NewCampaignManager(cfg CampaignManagerConfig) (*CampaignManager, error) {
	return controlplane.NewManager(cfg)
}

// UpdateServerRoutes mounts extra route registrations — typically a
// CampaignManager's Register — on an update server's HTTP API.
func UpdateServerRoutes(register func(*APIRouteTable)) updateserver.Option {
	return updateserver.WithRoutes(register)
}

// APIRouteTable is the unified /api/v1 route table (shared JSON error
// envelope, 405+Allow, enveloped 404) that all UpKit HTTP surfaces
// register on.
type APIRouteTable = httpapi.Table

// SUIT interoperation (§VIII future work).

// SUITManifest is the SUIT (draft-ietf-suit-manifest) view of an update.
type SUITManifest = suit.Manifest

// ExportSUIT renders an UpKit manifest as a signed SUIT-shaped CBOR
// envelope so SUIT-aware tooling can consume UpKit releases.
func ExportSUIT(m *Manifest, s Suite, key *PrivateKey) ([]byte, error) {
	return suit.Export(m, s, key)
}

// ParseSUIT decodes and signature-verifies a SUIT envelope produced by
// ExportSUIT.
func ParseSUIT(envelope []byte, s Suite, pub *PublicKey) (*SUITManifest, error) {
	return suit.Parse(envelope, s, pub)
}
