// Command upkit-bench regenerates the tables and figures of the UpKit
// paper's evaluation (§VI) plus this repository's ablations, printing
// measured values next to the paper's published numbers.
//
// Usage:
//
//	upkit-bench              # run everything
//	upkit-bench -exp fig8a   # run one experiment
//	upkit-bench -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"upkit/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *exp != "" {
		t, err := experiments.Run(*exp)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		return nil
	}
	tables, err := experiments.RunAll()
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	return nil
}
