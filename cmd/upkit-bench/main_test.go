package main

import (
	"flag"
	"os"
	"testing"
)

// resetFlags lets run() be invoked repeatedly within one process.
func resetFlags(args ...string) {
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	os.Args = append([]string{"upkit-bench"}, args...)
}

func TestListFlag(t *testing.T) {
	resetFlags("-list")
	if err := run(); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestSingleExperiment(t *testing.T) {
	resetFlags("-exp", "table1")
	if err := run(); err != nil {
		t.Fatalf("run -exp table1: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	resetFlags("-exp", "nope")
	if err := run(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
