package main

import (
	"os"
	"path/filepath"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/suit"
)

// runIn executes the tool's run() with the working directory set to dir.
func runIn(t *testing.T, dir string, args ...string) error {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	return run(args)
}

func TestFullSigningWorkflow(t *testing.T) {
	dir := t.TempDir()
	fw := make([]byte, 4096)
	for i := range fw {
		fw[i] = byte(i)
	}
	if err := os.WriteFile(filepath.Join(dir, "fw.bin"), fw, 0o644); err != nil {
		t.Fatal(err)
	}

	steps := [][]string{
		{"keygen", "-seed", "cli-vendor", "-out", "vendor"},
		{"keygen", "-seed", "cli-server", "-out", "server"},
		{"release", "-key", "vendor.key", "-app", "0x2A", "-version", "3",
			"-fw", "fw.bin", "-out", "v3.upk"},
		{"provision", "-in", "v3.upk", "-server-key", "server.key",
			"-device", "0xD1", "-out", "v3.factory.upk"},
		{"export-suit", "-in", "v3.upk", "-key", "vendor.key", "-out", "v3.suit"},
		{"inspect", "-in", "v3.upk", "-vendor-pub", "vendor.pub"},
		{"inspect", "-in", "v3.factory.upk", "-vendor-pub", "vendor.pub",
			"-server-pub", "server.pub"},
	}
	for _, args := range steps {
		if err := runIn(t, dir, args...); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}

	// The released image must parse and verify.
	data, err := os.ReadFile(filepath.Join(dir, "v3.upk"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Unmarshal(data[:manifest.EncodedSize])
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 || m.AppID != 0x2A || int(m.Size) != len(fw) {
		t.Fatalf("manifest = %+v", m)
	}
	suite := security.NewTinyCrypt()
	vendorPub, err := security.DecodePublicKey(mustRead(t, dir, "vendor.pub"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.VerifyVendorSig(suite, vendorPub) {
		t.Fatal("vendor signature invalid on released image")
	}

	// The provisioned image carries a valid server signature and the
	// device binding.
	pdata := mustRead(t, dir, "v3.factory.upk")
	pm, err := manifest.Unmarshal(pdata[:manifest.EncodedSize])
	if err != nil {
		t.Fatal(err)
	}
	if pm.DeviceID != 0xD1 {
		t.Fatalf("device id = %#x, want 0xD1", pm.DeviceID)
	}
	serverPub, err := security.DecodePublicKey(mustRead(t, dir, "server.pub"))
	if err != nil {
		t.Fatal(err)
	}
	if !pm.VerifyServerSig(suite, serverPub) {
		t.Fatal("server signature invalid on provisioned image")
	}

	// The SUIT envelope must parse, verify, and describe the image.
	env := mustRead(t, dir, "v3.suit")
	sm, err := suit.Parse(env, suite, vendorPub)
	if err != nil {
		t.Fatalf("SUIT parse: %v", err)
	}
	if !sm.MatchesUpKit(m) {
		t.Fatal("SUIT envelope does not match the image manifest")
	}
}

func mustRead(t *testing.T, dir, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{},                         // no subcommand
		{"unknown"},                // bad subcommand
		{"release"},                // missing flags
		{"provision"},              // missing flags
		{"export-suit"},            // missing flags
		{"inspect"},                // missing -in
		{"inspect", "-in", "nope"}, // missing file
		{"release", "-key", "nope", "-fw", "nope", "-out", "x"}, // bad key file
	}
	for _, args := range cases {
		if err := runIn(t, dir, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestKeygenRandom(t *testing.T) {
	dir := t.TempDir()
	if err := runIn(t, dir, "keygen", "-out", "rnd"); err != nil {
		t.Fatal(err)
	}
	if _, err := security.DecodePrivateKey(mustRead(t, dir, "rnd.key")); err != nil {
		t.Fatal(err)
	}
	if _, err := security.DecodePublicKey(mustRead(t, dir, "rnd.pub")); err != nil {
		t.Fatal(err)
	}
}

// TestRotationWorkflow drives the key-lifecycle subcommands end to end:
// generate a root and two server keys, issue a signed record for key 2,
// revoke key 1, pack both into a bundle, and verify a device-side
// keystore that trusts only the root accepts the result.
func TestRotationWorkflow(t *testing.T) {
	dir := t.TempDir()
	steps := [][]string{
		{"keygen", "-seed", "cli-root", "-out", "root"},
		{"keygen", "-seed", "cli-server2", "-out", "server2"},
		{"rotate", "-root", "root.key", "-role", "server", "-id", "2",
			"-pub", "server2.pub", "-not-after", "4102444800", "-out", "server2.ukr"},
		{"revoke", "-root", "root.key", "-seq", "1", "-keys", "server:1",
			"-out", "revocations.url"},
		{"bundle", "-records", "server2.ukr", "-revocation", "revocations.url",
			"-out", "keys.ukb"},
	}
	for _, s := range steps {
		if err := runIn(t, dir, s...); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}

	// Round-trip the record file through the parser.
	recData, err := os.ReadFile(filepath.Join(dir, "server2.ukr"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := security.ParseKeyRecord(recData)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Role != security.RoleServer || rec.KeyID != 2 || rec.NotAfter != 4102444800 {
		t.Fatalf("record round-trip mismatch: %+v", rec)
	}

	// A keystore provisioned with only the root public key must accept
	// the bundle: record signature valid, revocation applied.
	root := security.MustGenerateKey("cli-root")
	suite, err := security.SuiteByName("tinycrypt", nil)
	if err != nil {
		t.Fatal(err)
	}
	ks := security.NewKeystore(suite, root.Public(), nil)
	bundleData, err := os.ReadFile(filepath.Join(dir, "keys.ukb"))
	if err != nil {
		t.Fatal(err)
	}
	added, err := ks.ApplyBundle(bundleData)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("bundle added %d records, want 1", added)
	}
	if !ks.IsRevoked(security.RoleServer, 1) {
		t.Fatal("server key 1 not revoked after bundle")
	}
	if _, err := ks.VerificationKey(security.RoleServer, 2); err != nil {
		t.Fatalf("server key 2 not usable: %v", err)
	}

	// A record signed by the wrong root must not load.
	evil := security.MustGenerateKey("cli-evil")
	eks := security.NewKeystore(suite, evil.Public(), nil)
	if _, err := eks.ApplyBundle(bundleData); err == nil {
		t.Fatal("bundle accepted under the wrong root")
	}
}
