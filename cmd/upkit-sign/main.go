// Command upkit-sign is the host-side signing tool: it generates key
// pairs and builds vendor-signed update images from raw firmware
// binaries (the generation phase of the paper, Fig. 2 step 1).
//
// Usage:
//
//	upkit-sign keygen  -out vendor            # vendor.key + vendor.pub
//	upkit-sign release -key vendor.key -app 0x2A -version 2 \
//	    -fw firmware.bin -out app-v2.upk
//	upkit-sign provision -in app-v1.upk -server-key server.key \
//	    -device 0xD0D0CAFE -out app-v1.factory.upk
//	upkit-sign inspect -in app-v2.upk [-vendor-pub vendor.pub]
//	upkit-sign rotate -root root.key -role server -id 2 \
//	    -pub server2.pub -out server2.ukr
//	upkit-sign revoke -root root.key -seq 1 -keys server:1 \
//	    -out revocations.url
//	upkit-sign bundle -records server2.ukr -revocation revocations.url \
//	    -out keys.ukb
//
// An .upk file is the wire layout of an update image: the fixed-size
// manifest followed by the firmware. The update server (upkit-server)
// loads these files, adds the per-request second signature, and serves
// them to devices.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/suit"
	"upkit/internal/vendorserver"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-sign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: upkit-sign keygen|release|provision|export-suit|inspect-suit|inspect|rotate|revoke|bundle [flags]")
	}
	switch args[0] {
	case "keygen":
		return keygen(args[1:])
	case "release":
		return release(args[1:])
	case "provision":
		return provision(args[1:])
	case "export-suit":
		return exportSUIT(args[1:])
	case "inspect-suit":
		return inspectSUIT(args[1:])
	case "inspect":
		return inspect(args[1:])
	case "rotate":
		return rotate(args[1:])
	case "revoke":
		return revoke(args[1:])
	case "bundle":
		return bundle(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	out := fs.String("out", "upkit", "output basename (<out>.key, <out>.pub)")
	seed := fs.String("seed", "", "derive a deterministic key from a seed (simulation only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var key *security.PrivateKey
	var err error
	if *seed != "" {
		key = security.MustGenerateKey(*seed)
	} else {
		key, err = security.GenerateKey(rand.Reader)
		if err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out+".key", security.EncodePrivateKey(key), 0o600); err != nil {
		return err
	}
	if err := os.WriteFile(*out+".pub", security.EncodePublicKey(key.Public()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s.key and %s.pub\n", *out, *out)
	return nil
}

func parseUint32(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	return uint32(v), err
}

func release(args []string) error {
	fs := flag.NewFlagSet("release", flag.ContinueOnError)
	keyPath := fs.String("key", "", "vendor private key file")
	appStr := fs.String("app", "0x2A", "application/platform ID")
	version := fs.Uint("version", 0, "release version (>= 1)")
	linkStr := fs.String("link", "0xFFFFFFFF", "link offset (0xFFFFFFFF = position independent)")
	fwPath := fs.String("fw", "", "raw firmware binary")
	out := fs.String("out", "", "output image file (.upk)")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keyPath == "" || *fwPath == "" || *out == "" {
		return fmt.Errorf("release needs -key, -fw, and -out")
	}
	keyData, err := os.ReadFile(*keyPath)
	if err != nil {
		return err
	}
	key, err := security.DecodePrivateKey(keyData)
	if err != nil {
		return err
	}
	fw, err := os.ReadFile(*fwPath)
	if err != nil {
		return err
	}
	appID, err := parseUint32(*appStr)
	if err != nil {
		return fmt.Errorf("bad -app: %w", err)
	}
	link, err := parseUint32(*linkStr)
	if err != nil {
		return fmt.Errorf("bad -link: %w", err)
	}
	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	vendor := vendorserver.New(suite, key)
	img, err := vendor.BuildImage(vendorserver.Release{
		AppID:      appID,
		Version:    uint16(*version),
		LinkOffset: link,
		Firmware:   fw,
	})
	if err != nil {
		return err
	}
	enc, err := img.Manifest.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(enc, fw...), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: app %#x v%d, %d firmware bytes, digest %x…\n",
		*out, appID, *version, len(fw), img.Manifest.FirmwareDigest[:8])
	return nil
}

// provision adds the update server's signature to a vendor-signed
// image, binding it to one device ID — the factory-programming step
// that lets a freshly flashed device pass its own boot verification.
func provision(args []string) error {
	fs := flag.NewFlagSet("provision", flag.ContinueOnError)
	in := fs.String("in", "", "vendor-signed image file (.upk)")
	serverKey := fs.String("server-key", "", "update-server private key file")
	deviceStr := fs.String("device", "", "device ID the image is provisioned for")
	out := fs.String("out", "", "output image file")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *serverKey == "" || *deviceStr == "" || *out == "" {
		return fmt.Errorf("provision needs -in, -server-key, -device, and -out")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if len(data) < manifest.EncodedSize {
		return fmt.Errorf("%s: smaller than a manifest", *in)
	}
	m, err := manifest.Unmarshal(data[:manifest.EncodedSize])
	if err != nil {
		return err
	}
	deviceID, err := parseUint32(*deviceStr)
	if err != nil {
		return fmt.Errorf("bad -device: %w", err)
	}
	keyData, err := os.ReadFile(*serverKey)
	if err != nil {
		return err
	}
	key, err := security.DecodePrivateKey(keyData)
	if err != nil {
		return err
	}
	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	m.DeviceID = deviceID
	m.Nonce = 0xFAC70000 // factory pseudo-request
	if err := m.SignServer(suite, key); err != nil {
		return err
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	outData := append(enc, data[manifest.EncodedSize:]...)
	if err := os.WriteFile(*out, outData, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: provisioned for device %#x\n", *out, deviceID)
	return nil
}

// exportSUIT renders an image's manifest as a signed SUIT-shaped CBOR
// envelope (IETF draft-ietf-suit-manifest interop, the paper's §VIII
// future work).
func exportSUIT(args []string) error {
	fs := flag.NewFlagSet("export-suit", flag.ContinueOnError)
	in := fs.String("in", "", "image file (.upk)")
	keyPath := fs.String("key", "", "signing key for the SUIT envelope")
	out := fs.String("out", "", "output envelope file (.suit)")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *keyPath == "" || *out == "" {
		return fmt.Errorf("export-suit needs -in, -key, and -out")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if len(data) < manifest.EncodedSize {
		return fmt.Errorf("%s: smaller than a manifest", *in)
	}
	m, err := manifest.Unmarshal(data[:manifest.EncodedSize])
	if err != nil {
		return err
	}
	keyData, err := os.ReadFile(*keyPath)
	if err != nil {
		return err
	}
	key, err := security.DecodePrivateKey(keyData)
	if err != nil {
		return err
	}
	cryptoSuite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	env, err := suit.Export(m, cryptoSuite, key)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, env, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: SUIT envelope, %d bytes (sequence number %d)\n", *out, len(env), m.Version)
	return nil
}

// inspectSUIT prints a SUIT envelope in diagnostic form, optionally
// verifying its signature.
func inspectSUIT(args []string) error {
	fs := flag.NewFlagSet("inspect-suit", flag.ContinueOnError)
	in := fs.String("in", "", "SUIT envelope file (.suit)")
	pubPath := fs.String("pub", "", "optional public key to verify against")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect-suit needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	fmt.Print(suit.Diagnostic(data))
	if *pubPath != "" {
		pubData, err := os.ReadFile(*pubPath)
		if err != nil {
			return err
		}
		pub, err := security.DecodePublicKey(pubData)
		if err != nil {
			return err
		}
		cryptoSuite, err := security.SuiteByName(*suiteName, nil)
		if err != nil {
			return err
		}
		if _, err := suit.Parse(data, cryptoSuite, pub); err != nil {
			fmt.Printf("signature: INVALID (%v)\n", err)
		} else {
			fmt.Println("signature: valid")
		}
	}
	return nil
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	in := fs.String("in", "", "image file (.upk)")
	vendorPub := fs.String("vendor-pub", "", "vendor public key to verify against")
	serverPub := fs.String("server-pub", "", "update-server public key to verify against")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if len(data) < manifest.EncodedSize {
		return fmt.Errorf("%s: smaller than a manifest", *in)
	}
	m, err := manifest.Unmarshal(data[:manifest.EncodedSize])
	if err != nil {
		return err
	}
	fw := data[manifest.EncodedSize:]
	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}

	fmt.Printf("manifest of %s\n", *in)
	fmt.Printf("  app id       %#x\n", m.AppID)
	fmt.Printf("  version      %d\n", m.Version)
	fmt.Printf("  size         %d bytes (payload in file: %d)\n", m.Size, len(fw))
	fmt.Printf("  link offset  %#x\n", m.LinkOffset)
	fmt.Printf("  digest       %x\n", m.FirmwareDigest)
	fmt.Printf("  device id    %#x\n", m.DeviceID)
	fmt.Printf("  nonce        %#x\n", m.Nonce)
	fmt.Printf("  old version  %d (differential: %v)\n", m.OldVersion, m.IsDifferential())
	fmt.Printf("  patch size   %d\n", m.PatchSize)

	if !m.IsDifferential() {
		got := suite.Digest(fw)
		fmt.Printf("  digest check %v\n", got == m.FirmwareDigest)
	}
	if *vendorPub != "" {
		pubData, err := os.ReadFile(*vendorPub)
		if err != nil {
			return err
		}
		pub, err := security.DecodePublicKey(pubData)
		if err != nil {
			return err
		}
		fmt.Printf("  vendor sig   %v\n", m.VerifyVendorSig(suite, pub))
	}
	if *serverPub != "" {
		pubData, err := os.ReadFile(*serverPub)
		if err != nil {
			return err
		}
		pub, err := security.DecodePublicKey(pubData)
		if err != nil {
			return err
		}
		fmt.Printf("  server sig   %v\n", m.VerifyServerSig(suite, pub))
	}
	return nil
}

// parseRole maps the CLI role name to the wire enum.
func parseRole(s string) (security.KeyRole, error) {
	switch s {
	case "vendor":
		return security.RoleVendor, nil
	case "server":
		return security.RoleServer, nil
	default:
		return 0, fmt.Errorf("bad role %q: want vendor or server", s)
	}
}

// rotate emits a root-signed key record introducing a new vendor or
// update-server verification key. Publish the record (in a bundle) and
// devices start accepting manifests that name the new key ID; pair it
// with a revoke of the old ID to complete the rotation.
func rotate(args []string) error {
	fs := flag.NewFlagSet("rotate", flag.ContinueOnError)
	rootPath := fs.String("root", "", "vendor root private key file")
	roleStr := fs.String("role", "", "key role: vendor or server")
	id := fs.Uint("id", 0, "new key ID (non-zero)")
	pubPath := fs.String("pub", "", "new verification public key file (.pub)")
	notBefore := fs.Uint64("not-before", 0, "validity start, Unix seconds (0 = always)")
	notAfter := fs.Uint64("not-after", 0, "validity end, Unix seconds (0 = no expiry)")
	out := fs.String("out", "", "output signed key record (.ukr)")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rootPath == "" || *roleStr == "" || *id == 0 || *pubPath == "" || *out == "" {
		return fmt.Errorf("rotate needs -root, -role, -id, -pub, and -out")
	}
	role, err := parseRole(*roleStr)
	if err != nil {
		return err
	}
	rootData, err := os.ReadFile(*rootPath)
	if err != nil {
		return err
	}
	root, err := security.DecodePrivateKey(rootData)
	if err != nil {
		return err
	}
	pubData, err := os.ReadFile(*pubPath)
	if err != nil {
		return err
	}
	pub, err := security.DecodePublicKey(pubData)
	if err != nil {
		return err
	}
	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	rec := &security.KeyRecord{
		Role:      role,
		KeyID:     uint32(*id),
		NotBefore: *notBefore,
		NotAfter:  *notAfter,
		Key:       pub,
	}
	if err := rec.Sign(suite, root); err != nil {
		return err
	}
	enc, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s key %d (not-before %d, not-after %d)\n",
		*out, role, *id, *notBefore, *notAfter)
	return nil
}

// revoke emits a root-signed revocation list. The -seq counter is the
// list's own anti-rollback: devices ignore lists whose sequence is not
// newer than the one they hold, so every new list must carry a higher
// sequence AND the full set of revoked keys (revocation is cumulative).
func revoke(args []string) error {
	fs := flag.NewFlagSet("revoke", flag.ContinueOnError)
	rootPath := fs.String("root", "", "vendor root private key file")
	seq := fs.Uint("seq", 0, "revocation sequence number (must exceed the last published)")
	list := fs.String("keys", "", "comma-separated role:id pairs, e.g. server:1,vendor:3")
	out := fs.String("out", "", "output signed revocation list (.url)")
	suiteName := fs.String("suite", "tinycrypt", "crypto suite")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rootPath == "" || *seq == 0 || *list == "" || *out == "" {
		return fmt.Errorf("revoke needs -root, -seq, -keys, and -out")
	}
	rootData, err := os.ReadFile(*rootPath)
	if err != nil {
		return err
	}
	root, err := security.DecodePrivateKey(rootData)
	if err != nil {
		return err
	}
	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	rl := &security.RevocationList{Seq: uint32(*seq)}
	for _, pair := range strings.Split(*list, ",") {
		roleStr, idStr, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return fmt.Errorf("bad -keys entry %q: want role:id", pair)
		}
		role, err := parseRole(roleStr)
		if err != nil {
			return err
		}
		id, err := parseUint32(idStr)
		if err != nil {
			return fmt.Errorf("bad key ID in %q: %w", pair, err)
		}
		rl.Revoked = append(rl.Revoked, security.RevocationEntry{Role: role, KeyID: id})
	}
	if err := rl.Sign(suite, root); err != nil {
		return err
	}
	enc, err := rl.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: revocation seq %d, %d key(s)\n", *out, *seq, len(rl.Revoked))
	return nil
}

// bundle packs signed key records and an optional revocation list into
// the single blob the update server distributes at /api/v1/keys (HTTP)
// and /upkit/keys (CoAP).
func bundle(args []string) error {
	fs := flag.NewFlagSet("bundle", flag.ContinueOnError)
	records := fs.String("records", "", "comma-separated signed key record files (.ukr)")
	revocation := fs.String("revocation", "", "signed revocation list file (.url), optional")
	out := fs.String("out", "", "output key bundle (.ukb)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *records == "" || *out == "" {
		return fmt.Errorf("bundle needs -records and -out")
	}
	var kb security.KeyBundle
	for _, path := range strings.Split(*records, ",") {
		data, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		rec, err := security.ParseKeyRecord(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		kb.Records = append(kb.Records, rec)
	}
	if *revocation != "" {
		data, err := os.ReadFile(*revocation)
		if err != nil {
			return err
		}
		rl, err := security.ParseRevocationList(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *revocation, err)
		}
		kb.Revocation = rl
	}
	enc, err := kb.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d record(s), revocation %v\n",
		*out, len(kb.Records), kb.Revocation != nil)
	return nil
}
