package main

import (
	"testing"

	"upkit/internal/coap"
	"upkit/internal/platform"
	"upkit/internal/proxy"
	"upkit/internal/telemetry"
	"upkit/internal/testbed"
)

// TestProxyServesUpdateOverUDP wires the exact topology the command
// builds — origin pull server on one UDP socket, caching proxy on
// another, device talking only to the proxy — and runs a complete
// update through it.
func TestProxyServesUpdateOverUDP(t *testing.T) {
	b, err := testbed.New(testbed.Options{Approach: platform.Pull, Seed: "proxy-udp"},
		testbed.MakeFirmware("proxy-udp-v1", 16*1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, testbed.MakeFirmware("proxy-udp-v2", 16*1024)); err != nil {
		t.Fatal(err)
	}

	origin, err := coap.ListenUDP("127.0.0.1:0", b.PullHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	go origin.Serve()

	up, err := coap.DialUDP(origin.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	tel := telemetry.NewRegistry()
	cache := proxy.NewCache(up, proxy.CacheOptions{Telemetry: tel, Instance: "0"})

	psrv, err := coap.ListenUDP("127.0.0.1:0", cache.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	go psrv.Serve()

	pex, err := coap.DialUDP(psrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pex.Close()

	// The device's whole cycle — control traffic and blocks — runs
	// against the proxy address, like a fleet behind a border router.
	c := b.PullClient()
	c.Ex = pex
	c.Sources = []coap.BlockSource{{Name: "proxy", Ex: pex}}

	staged, err := c.CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate through the UDP proxy: %v", err)
	}
	if !staged {
		t.Fatal("no update staged through the proxy")
	}
	if st := cache.Stats(); st.Fills == 0 {
		t.Fatalf("proxy stats = %+v: the transfer must have filled the cache", st)
	}
	if _, err := b.Device.ApplyStagedUpdate(); err != nil {
		t.Fatalf("apply staged v2: %v", err)
	}

	// A second update cycle on a FRESH client socket: its message IDs
	// restart at 1 while the proxy's long-lived upstream exchanger has
	// moved on. The proxy must keep correlating responses by the
	// device's IDs, not the upstream leg's (regression: the second
	// device through a proxy process used to time out forever).
	if err := b.PublishVersion(3, testbed.MakeFirmware("proxy-udp-v3", 16*1024)); err != nil {
		t.Fatal(err)
	}
	pex2, err := coap.DialUDP(psrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pex2.Close()
	c2 := b.PullClient()
	c2.Ex = pex2
	c2.Sources = []coap.BlockSource{{Name: "proxy", Ex: pex2}}
	if staged, err := c2.CheckAndUpdate(); err != nil || !staged {
		t.Fatalf("second cycle through the same proxy: staged=%v err=%v", staged, err)
	}
}

func TestRunRequiresOrigin(t *testing.T) {
	if err := run(); err == nil {
		t.Fatal("run without -origin must fail")
	}
}
