// Command upkit-proxy runs a caching CoAP proxy for UpKit firmware
// distribution: devices point their update client at the proxy instead
// of the origin update server, control traffic (version polls, update
// requests, name lookups) is forwarded verbatim, and content-addressed
// firmware blocks (GET /upkit/blocks) are served from an in-memory
// LRU cache that fills from the origin once per block — a wave of
// devices pulling the same release costs the origin one transfer, not
// one per device.
//
// The proxy needs no key material and is never trusted: every payload
// is covered by UpKit's double signature and digest, so a corrupted or
// stale cache produces a rejection and a failover on the device, never
// an installed image.
//
// Usage:
//
//	upkit-server -addr 127.0.0.1:5683 -key server.key -image app-v2.upk
//	upkit-proxy  -listen 127.0.0.1:5684 -origin 127.0.0.1:5683
//	upkit-device -addr 127.0.0.1:5684 ...   # devices talk to the proxy
//
// With -http the proxy exposes its cache counters
// (upkit_cache_{hit,miss,fill}_total, upkit_cache_{entries,bytes}) as a
// Prometheus scrape at /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"upkit/internal/coap"
	"upkit/internal/proxy"
	"upkit/internal/telemetry"
)

// shutdownGrace bounds how long a drain may take once a signal arrives.
const shutdownGrace = 5 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:5684", "UDP address to serve CoAP on")
	origin := flag.String("origin", "", "UDP address of the origin update server (required)")
	cacheKiB := flag.Int("cache", 0, "block cache size in KiB (0 = default)")
	chunk := flag.Int("chunk", 0, "cached chunk size in bytes, a power of two ≤ 1024 (0 = default)")
	httpAddr := flag.String("http", "", "optional TCP address for the /metrics scrape")
	instance := flag.String("instance", "", "proxy=<instance> label on exported metrics")
	flag.Parse()

	if *origin == "" {
		return errors.New("-origin is required: the proxy must know its update server")
	}
	up, err := coap.DialUDP(*origin)
	if err != nil {
		return err
	}
	defer up.Close()

	tel := telemetry.NewRegistry()
	cache := proxy.NewCache(up, proxy.CacheOptions{
		MaxBytes:   *cacheKiB * 1024,
		ChunkBytes: *chunk,
		Telemetry:  tel,
		Instance:   *instance,
	})

	srv, err := coap.ListenUDP(*listen, cache.Handle)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "upkit-proxy: serving CoAP on %s, origin %s\n", srv.Addr(), *origin)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metrics *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = tel.WritePrometheus(w)
		})
		metrics = &http.Server{Addr: *httpAddr, Handler: mux}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			srv.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "upkit-proxy: metrics on http://%s/metrics\n", ln.Addr())
		go func() { _ = metrics.Serve(ln) }()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	select {
	case <-ctx.Done():
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			return err
		}
	}
	if metrics != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		_ = metrics.Shutdown(shutdownCtx)
	}
	return nil
}
