// Command upkit-device runs a simulated constrained IoT device that
// pulls updates from a live upkit-server over CoAP/UDP: a full
// end-to-end demonstration of the framework against real sockets.
//
// Usage:
//
//	upkit-sign keygen -seed demo-vendor -out vendor
//	upkit-sign keygen -seed demo-server -out server
//	upkit-sign release -key vendor.key -app 0x2A -version 1 -fw fw-v1.bin -out v1.upk
//	upkit-sign release -key vendor.key -app 0x2A -version 2 -fw fw-v2.bin -out v2.upk
//	upkit-sign provision -in v1.upk -server-key server.key \
//	    -device 0xD0D0CAFE -out v1.factory.upk
//	upkit-server -seed demo-server -image v1.upk -image v2.upk &
//	upkit-device -addr 127.0.0.1:5683 \
//	    -vendor-pub vendor.pub -server-pub server.pub -factory v1.factory.upk
//
// The device factory-provisions the v1 image, polls the server, pulls
// the v2 update through the full UpKit flow (device token, double
// verification, staged install, reboot) and prints the phase breakdown.
package main

import (
	"flag"
	"fmt"
	"os"

	"upkit/internal/bootloader"
	"upkit/internal/coap"
	"upkit/internal/device"
	"upkit/internal/manifest"
	"upkit/internal/platform"
	"upkit/internal/security"
	"upkit/internal/verifier"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-device:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:5683", "update server address")
	vendorPub := flag.String("vendor-pub", "", "vendor public key file")
	serverPub := flag.String("server-pub", "", "update-server public key file")
	factory := flag.String("factory", "", "factory image (.upk) to provision as the running firmware")
	deviceID := flag.Uint("device", 0xD0D0CAFE, "device ID")
	appID := flag.Uint("app", 0x2A, "application ID")
	mode := flag.String("mode", "static", "slot configuration: static or ab")
	suiteName := flag.String("suite", "tinycrypt", "crypto suite")
	diff := flag.Bool("differential", true, "advertise differential-update support")
	blocks := flag.Bool("blocks", true, "transfer the payload as content-addressed named blocks (cacheable by upkit-proxy)")
	state := flag.String("state", "", "optional directory persisting the device's flash across runs")
	flag.Parse()

	if *vendorPub == "" || *serverPub == "" || *factory == "" {
		return fmt.Errorf("need -vendor-pub, -server-pub, and -factory")
	}
	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	keys, err := loadKeys(*vendorPub, *serverPub)
	if err != nil {
		return err
	}
	bootMode := bootloader.ModeStatic
	if *mode == "ab" {
		bootMode = bootloader.ModeAB
	}

	dev, err := device.New(device.Options{
		Name:                "upkit-device",
		MCU:                 platform.NRF52840(),
		Mode:                bootMode,
		SlotBytes:           platform.BuildSlotBytes(platform.Pull),
		Suite:               suite,
		Keys:                keys,
		DeviceID:            uint32(*deviceID),
		AppID:               uint32(*appID),
		SupportDifferential: *diff,
		NonceSeed:           fmt.Sprintf("upkit-device-%d", os.Getpid()),
		RebootTime:          device.DefaultRebootTime,
		JumpTime:            device.DefaultJumpTime,
	})
	if err != nil {
		return err
	}
	restored := false
	if *state != "" {
		restored, err = dev.RestoreState(*state)
		if err != nil {
			return err
		}
	}
	if restored {
		fmt.Printf("restored flash state from %s\n", *state)
	} else if err := provision(dev, *factory); err != nil {
		return err
	}
	if *state != "" {
		defer func() {
			if err := dev.SaveState(*state); err != nil {
				fmt.Fprintln(os.Stderr, "upkit-device: save state:", err)
			} else {
				fmt.Printf("flash state saved to %s\n", *state)
			}
		}()
	}
	fmt.Printf("device %#x running v%d; polling %s\n",
		uint32(*deviceID), dev.RunningVersion(), *addr)

	ex, err := coap.DialUDP(*addr)
	if err != nil {
		return err
	}
	defer ex.Close()
	client := &coap.PullClient{Ex: ex, Agent: dev.Agent, AppID: uint32(*appID)}
	if *blocks {
		// Content-addressed transfer: the payload arrives as named
		// blocks, which any upkit-proxy between here and the origin can
		// cache for the rest of the wave.
		client.Sources = []coap.BlockSource{{Name: "server", Ex: ex}}
	}

	latest, err := client.Poll()
	if err != nil {
		return fmt.Errorf("poll: %w", err)
	}
	fmt.Printf("server advertises v%d\n", latest)
	if latest <= dev.RunningVersion() {
		fmt.Println("already up to date")
		return nil
	}

	staged, err := client.CheckAndUpdate()
	if err != nil {
		return fmt.Errorf("update: %w", err)
	}
	if !staged {
		return fmt.Errorf("no update staged")
	}
	m := dev.Agent.Manifest()
	fmt.Printf("staged v%d (differential: %v, payload %d bytes); rebooting\n",
		m.Version, m.IsDifferential(), m.PayloadSize())
	res, err := dev.ApplyStagedUpdate()
	if err != nil {
		return fmt.Errorf("reboot: %w", err)
	}
	fmt.Printf("booted v%d from slot %s (installed: %v)\n",
		res.Version, res.Booted.Name, res.Installed)
	fmt.Printf("virtual phase breakdown: verification %.2fs, loading %.2fs, total %.2fs\n",
		dev.Phases.Phase("verification").Seconds(),
		dev.Phases.Phase("loading").Seconds(),
		dev.Clock.Now().Seconds())
	fmt.Printf("energy: %s\n", dev.Meter)
	return nil
}

func loadKeys(vendorPath, serverPath string) (verifier.Keys, error) {
	vendorData, err := os.ReadFile(vendorPath)
	if err != nil {
		return verifier.Keys{}, err
	}
	vendor, err := security.DecodePublicKey(vendorData)
	if err != nil {
		return verifier.Keys{}, err
	}
	serverData, err := os.ReadFile(serverPath)
	if err != nil {
		return verifier.Keys{}, err
	}
	server, err := security.DecodePublicKey(serverData)
	if err != nil {
		return verifier.Keys{}, err
	}
	return verifier.Keys{Vendor: vendor, Server: server}, nil
}

// provision writes a factory image (vendor-signed and server-signed by
// `upkit-sign provision`) into slot A and boots it.
func provision(dev *device.Device, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < manifest.EncodedSize {
		return fmt.Errorf("%s: smaller than a manifest", path)
	}
	m, err := manifest.Unmarshal(data[:manifest.EncodedSize])
	if err != nil {
		return err
	}
	fw := data[manifest.EncodedSize:]
	w, err := dev.SlotA.BeginReceive()
	if err != nil {
		return err
	}
	if err := dev.SlotA.WriteManifest(m); err != nil {
		return err
	}
	if _, err := w.Write(fw); err != nil {
		return err
	}
	if err := dev.SlotA.MarkComplete(); err != nil {
		return err
	}
	_, err = dev.Reboot()
	return err
}
