package main

import (
	"os"
	"path/filepath"
	"testing"

	"upkit/internal/security"
)

func TestLoadKeys(t *testing.T) {
	dir := t.TempDir()
	vendor := security.MustGenerateKey("dev-tool-vendor")
	server := security.MustGenerateKey("dev-tool-server")
	vPath := filepath.Join(dir, "vendor.pub")
	sPath := filepath.Join(dir, "server.pub")
	if err := os.WriteFile(vPath, security.EncodePublicKey(vendor.Public()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sPath, security.EncodePublicKey(server.Public()), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := loadKeys(vPath, sPath)
	if err != nil {
		t.Fatalf("loadKeys: %v", err)
	}
	if !keys.Vendor.Equal(vendor.Public()) || !keys.Server.Equal(server.Public()) {
		t.Fatal("loaded keys mismatch")
	}
}

func TestLoadKeysErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.pub")
	key := security.MustGenerateKey("dev-tool-x")
	if err := os.WriteFile(good, security.EncodePublicKey(key.Public()), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.pub")
	if err := os.WriteFile(bad, []byte("not a key"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadKeys(filepath.Join(dir, "missing"), good); err == nil {
		t.Error("missing vendor key accepted")
	}
	if _, err := loadKeys(good, bad); err == nil {
		t.Error("malformed server key accepted")
	}
}
