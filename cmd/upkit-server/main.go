// Command upkit-server runs an UpKit update server: it loads
// vendor-signed image files (built with upkit-sign), and serves them to
// pulling devices over CoAP/UDP, performing the per-request double
// signature for each device token it receives.
//
// Usage:
//
//	upkit-sign keygen -seed demo-server -out server
//	upkit-server -addr 127.0.0.1:5683 -http 127.0.0.1:8080 \
//	    -key server.key -image app-v1.upk -image app-v2.upk
//
// A matching device simulation (cmd/upkit-device) can then pull updates
// from it over a real UDP socket.
//
// With -campaigns (or -campaigns-state <dir>) the HTTP API also serves
// the campaign control plane: POST /api/v1/campaigns creates a staged
// rollout from a device census and policy, GET polls its live
// progress, and pause/resume/abort manage it — see internal/
// controlplane and the README's "Operating a rollout" section.
//
// Serve-path scaling flags: -patch-state <dir> persists computed
// differential patches across restarts, -farm precomputes them off the
// request path (auto-warming observed version pairs on each publish,
// with admin endpoints under /api/v1/patchfarm), and -signers N bounds
// per-request ECDSA signing to a worker pool — see the README's
// "Scaling the update server" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"upkit/internal/coap"
	"upkit/internal/controlplane"
	"upkit/internal/manifest"
	"upkit/internal/patchfarm"
	"upkit/internal/security"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
)

// shutdownGrace bounds how long a drain may take once a signal arrives.
const shutdownGrace = 5 * time.Second

// imageList collects repeated -image flags.
type imageList []string

func (l *imageList) String() string     { return strings.Join(*l, ",") }
func (l *imageList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:5683", "UDP address to serve CoAP on")
	httpAddr := flag.String("http", "", "optional TCP address for the HTTP API (e.g. 127.0.0.1:8080)")
	keyPath := flag.String("key", "", "update-server private key file")
	seed := flag.String("seed", "", "derive the server key from a seed (simulation only)")
	suiteName := flag.String("suite", "tinycrypt", "crypto suite")
	stateDir := flag.String("state", "", "directory for the durable release store; empty keeps releases in memory only")
	campaigns := flag.Bool("campaigns", false, "serve the campaign control plane under /api/v1/campaigns (requires -http)")
	campaignDir := flag.String("campaigns-state", "", "persistence directory for campaigns; empty keeps them in memory only")
	patchDir := flag.String("patch-state", "", "directory for the durable patch store; empty recomputes patches after every restart")
	farm := flag.Bool("farm", false, "run the patch farm: auto-warm differentials on publish, admin endpoints under /api/v1/patchfarm (with -http)")
	farmWorkers := flag.Int("farm-workers", 0, "patch-farm worker count (0 = GOMAXPROCS)")
	signers := flag.Int("signers", 0, "parallel manifest-signing pool size (0 disables the pool, negative = GOMAXPROCS)")
	var images imageList
	flag.Var(&images, "image", "vendor-signed image file (.upk); repeatable")
	keysPath := flag.String("keys", "", "key bundle file (.ukb) served at /api/v1/keys and /upkit/keys")
	flag.Parse()

	if *campaignDir != "" {
		*campaigns = true
	}
	if *campaigns && *httpAddr == "" {
		return fmt.Errorf("-campaigns needs -http: the control plane is an HTTP surface")
	}

	suite, err := security.SuiteByName(*suiteName, nil)
	if err != nil {
		return err
	}
	var key *security.PrivateKey
	switch {
	case *keyPath != "":
		data, err := os.ReadFile(*keyPath)
		if err != nil {
			return err
		}
		key, err = security.DecodePrivateKey(data)
		if err != nil {
			return err
		}
	case *seed != "":
		key = security.MustGenerateKey(*seed)
	default:
		return fmt.Errorf("need -key or -seed")
	}

	var serverOpts []updateserver.Option
	if *stateDir != "" {
		store, err := updateserver.NewFileStore(*stateDir)
		if err != nil {
			return err
		}
		defer store.Close()
		st := store.Stats()
		fmt.Printf("release store %s: %d apps, %d releases, %d bytes (loaded in %.3fs",
			*stateDir, st.Apps, st.Releases, st.Bytes, st.LoadSeconds)
		if st.TornTails > 0 {
			fmt.Printf(", %d torn log tail(s) truncated", st.TornTails)
		}
		fmt.Println(")")
		serverOpts = append(serverOpts, updateserver.WithStore(store))
	}

	if *patchDir != "" {
		ps, err := updateserver.OpenPatchStore(*patchDir, 0)
		if err != nil {
			return err
		}
		// Closed after the server (defers run LIFO): the server's last
		// in-flight computations may still persist their results.
		defer ps.Close()
		st := ps.Stats()
		fmt.Printf("patch store %s: %d patches, %d bytes", *patchDir, st.Entries, st.Bytes)
		if st.TornTails > 0 {
			fmt.Printf(", %d torn log tail(s) truncated", st.TornTails)
		}
		fmt.Println()
		serverOpts = append(serverOpts, updateserver.WithPatchStore(ps))
	}
	if *signers != 0 {
		serverOpts = append(serverOpts, updateserver.WithSigners(*signers))
	}

	if *campaigns {
		mgr, err := controlplane.NewManager(controlplane.Config{Dir: *campaignDir})
		if err != nil {
			return err
		}
		// Close aborts in-flight runs and persists their checkpoints, so
		// a drained shutdown leaves every campaign resumable.
		defer mgr.Close()
		serverOpts = append(serverOpts, updateserver.WithRoutes(mgr.Register))
		if *campaignDir != "" {
			fmt.Printf("campaign control plane on /api/v1/campaigns (state in %s)\n", *campaignDir)
		} else {
			fmt.Println("campaign control plane on /api/v1/campaigns (memory only)")
		}
	}

	server := updateserver.New(suite, key, serverOpts...)
	defer server.Close()
	if *farm {
		f := patchfarm.New(server, patchfarm.Config{
			Workers:  *farmWorkers,
			AutoWarm: true,
		})
		defer f.Close()
		server.Mount(f.Register)
		fmt.Println("patch farm running (warm/stats under /api/v1/patchfarm)")
	}
	if *keysPath != "" {
		bundle, err := os.ReadFile(*keysPath)
		if err != nil {
			return err
		}
		// Validate the encoding up front; the server distributes the
		// bundle opaquely and devices verify it against their root key.
		kb, err := security.ParseKeyBundle(bundle)
		if err != nil {
			return fmt.Errorf("%s: %w", *keysPath, err)
		}
		server.SetKeyBundle(bundle)
		fmt.Printf("key bundle %s: %d record(s), revocation list: %v\n",
			*keysPath, len(kb.Records), kb.Revocation != nil)
	}
	// A short-lived subscription around the publish loop echoes what
	// watchers will see; it must be released afterwards or it would sit
	// in the server's subscriber list for the whole process lifetime.
	announcements := server.Subscribe()
	if err := publishImages(server, images, os.Stdout); err != nil {
		return err
	}
	server.Unsubscribe(announcements)
	for {
		select {
		case ann := <-announcements:
			fmt.Printf("announced app %#x v%d\n", ann.AppID, ann.Version)
			continue
		default:
		}
		break
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var httpServer *http.Server
	httpErr := make(chan error, 1)
	if *httpAddr != "" {
		httpServer = &http.Server{
			Addr:              *httpAddr,
			Handler:           server.Handler(),
			ReadTimeout:       10 * time.Second,
			ReadHeaderTimeout: 5 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			fmt.Printf("serving HTTP API on %s (stats at /api/v1/stats, metrics at /api/v1/metrics)\n", *httpAddr)
			if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				httpErr <- err
			}
			close(httpErr)
		}()
	} else {
		close(httpErr)
	}

	pull := coap.NewPullServer(server)
	udp, err := coap.ListenUDP(*addr, pull.Handle)
	if err != nil {
		return err
	}
	fmt.Printf("serving CoAP on %s (server pubkey %x…)\n", udp.Addr(), key.Public().Bytes()[:8])
	udpErr := make(chan error, 1)
	go func() { udpErr <- udp.Serve() }()

	// Block until a shutdown signal or a server failure, then drain:
	// the HTTP listener finishes in-flight requests, the CoAP socket
	// closes so Serve returns.
	var runErr error
	udpDone := false
	select {
	case <-ctx.Done():
		fmt.Println("shutting down")
	case err := <-httpErr:
		if err != nil {
			runErr = fmt.Errorf("http: %w", err)
		}
	case err := <-udpErr:
		udpDone = true
		if err != nil {
			runErr = fmt.Errorf("coap: %w", err)
		}
	}
	if httpServer != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		if err := httpServer.Shutdown(shutdownCtx); err != nil && runErr == nil {
			runErr = fmt.Errorf("http shutdown: %w", err)
		}
		cancel()
	}
	if err := udp.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if !udpDone {
		<-udpErr
	}
	fmt.Println("spans:", server.Telemetry().Spans().Summary())
	return runErr
}

// publishImages loads and publishes each .upk file. An image the
// server already holds (same or older version, the normal case when a
// durable server restarts with unchanged -image flags) is skipped with
// a notice instead of failing startup.
func publishImages(server *updateserver.Server, paths []string, out io.Writer) error {
	for _, path := range paths {
		img, err := loadImage(path)
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		switch err := server.Publish(img); {
		case err == nil:
			fmt.Fprintf(out, "published %s: app %#x v%d (%d bytes)\n",
				path, img.Manifest.AppID, img.Manifest.Version, len(img.Firmware))
		case errors.Is(err, updateserver.ErrStaleVersion):
			fmt.Fprintf(out, "skipping %s: app %#x v%d already stored\n",
				path, img.Manifest.AppID, img.Manifest.Version)
		default:
			return fmt.Errorf("publish %s: %w", path, err)
		}
	}
	return nil
}

// loadImage parses a .upk file (manifest || firmware) into a
// vendor-signed image.
func loadImage(path string) (*vendorserver.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < manifest.EncodedSize {
		return nil, fmt.Errorf("smaller than a manifest")
	}
	m, err := manifest.Unmarshal(data[:manifest.EncodedSize])
	if err != nil {
		return nil, err
	}
	fw := data[manifest.EncodedSize:]
	if int(m.Size) != len(fw) {
		return nil, fmt.Errorf("manifest says %d firmware bytes, file has %d", m.Size, len(fw))
	}
	return &vendorserver.Image{Manifest: *m, Firmware: fw}, nil
}
