package main

import (
	"os"
	"path/filepath"
	"testing"

	"upkit/internal/security"
	"upkit/internal/vendorserver"
)

func writeImageFile(t *testing.T, dir, name string, version uint16, fw []byte) string {
	t.Helper()
	suite := security.NewTinyCrypt()
	vendor := vendorserver.New(suite, security.MustGenerateKey("srv-test-vendor"))
	img, err := vendor.BuildImage(vendorserver.Release{
		AppID: 0x2A, Version: version, LinkOffset: 0xFFFFFFFF, Firmware: fw,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := img.Manifest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(enc, fw...), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadImage(t *testing.T) {
	dir := t.TempDir()
	fw := make([]byte, 2048)
	path := writeImageFile(t, dir, "v1.upk", 1, fw)

	img, err := loadImage(path)
	if err != nil {
		t.Fatalf("loadImage: %v", err)
	}
	if img.Manifest.Version != 1 || int(img.Manifest.Size) != len(fw) {
		t.Fatalf("manifest = %+v", img.Manifest)
	}
	if len(img.Firmware) != len(fw) {
		t.Fatalf("firmware = %d bytes", len(img.Firmware))
	}
}

func TestLoadImageErrors(t *testing.T) {
	dir := t.TempDir()
	// Missing file.
	if _, err := loadImage(filepath.Join(dir, "nope.upk")); err == nil {
		t.Error("missing file accepted")
	}
	// Too short.
	short := filepath.Join(dir, "short.upk")
	if err := os.WriteFile(short, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(short); err == nil {
		t.Error("short file accepted")
	}
	// Size mismatch between manifest and payload.
	good := writeImageFile(t, dir, "v1.upk", 1, make([]byte, 2048))
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "trunc.upk")
	if err := os.WriteFile(bad, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(bad); err == nil {
		t.Error("truncated payload accepted")
	}
}
