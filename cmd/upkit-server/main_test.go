package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
)

func writeImageFile(t *testing.T, dir, name string, version uint16, fw []byte) string {
	t.Helper()
	suite := security.NewTinyCrypt()
	vendor := vendorserver.New(suite, security.MustGenerateKey("srv-test-vendor"))
	img, err := vendor.BuildImage(vendorserver.Release{
		AppID: 0x2A, Version: version, LinkOffset: 0xFFFFFFFF, Firmware: fw,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := img.Manifest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(enc, fw...), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadImage(t *testing.T) {
	dir := t.TempDir()
	fw := make([]byte, 2048)
	path := writeImageFile(t, dir, "v1.upk", 1, fw)

	img, err := loadImage(path)
	if err != nil {
		t.Fatalf("loadImage: %v", err)
	}
	if img.Manifest.Version != 1 || int(img.Manifest.Size) != len(fw) {
		t.Fatalf("manifest = %+v", img.Manifest)
	}
	if len(img.Firmware) != len(fw) {
		t.Fatalf("firmware = %d bytes", len(img.Firmware))
	}
}

func TestLoadImageErrors(t *testing.T) {
	dir := t.TempDir()
	// Missing file.
	if _, err := loadImage(filepath.Join(dir, "nope.upk")); err == nil {
		t.Error("missing file accepted")
	}
	// Too short.
	short := filepath.Join(dir, "short.upk")
	if err := os.WriteFile(short, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(short); err == nil {
		t.Error("short file accepted")
	}
	// Size mismatch between manifest and payload.
	good := writeImageFile(t, dir, "v1.upk", 1, make([]byte, 2048))
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "trunc.upk")
	if err := os.WriteFile(bad, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(bad); err == nil {
		t.Error("truncated payload accepted")
	}
}

// TestPublishImagesRestartWithStateDir models the operator flow: the
// server runs with -state and -image flags, is killed, and restarts
// with the same flags. The replayed store already holds the images, so
// the publish loop must skip them instead of failing startup, and the
// server must serve the same release set.
func TestPublishImagesRestartWithStateDir(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state")
	fw1 := make([]byte, 2048)
	fw2 := make([]byte, 2048)
	for i := range fw2 {
		fw2[i] = byte(i * 31)
	}
	p1 := writeImageFile(t, dir, "v1.upk", 1, fw1)
	p2 := writeImageFile(t, dir, "v2.upk", 2, fw2)
	paths := []string{p1, p2}

	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("srv-restart")

	// First boot: both images publish into the durable store.
	store, err := updateserver.NewFileStore(state)
	if err != nil {
		t.Fatal(err)
	}
	server := updateserver.New(suite, key, updateserver.WithStore(store))
	var out1 strings.Builder
	if err := publishImages(server, paths, &out1); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out1.String(), "published"); got != 2 {
		t.Fatalf("first boot published %d images, want 2:\n%s", got, out1.String())
	}
	tok := manifest.DeviceToken{DeviceID: 0xD1, Nonce: 9, CurrentVersion: 0}
	before, err := server.PrepareUpdate(0x2A, tok)
	if err != nil {
		t.Fatal(err)
	}
	store.Close() // the kill

	// Restart with identical flags: every image is already stored.
	store2, err := updateserver.NewFileStore(state)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	restarted := updateserver.New(suite, key, updateserver.WithStore(store2))
	var out2 strings.Builder
	if err := publishImages(restarted, paths, &out2); err != nil {
		t.Fatalf("restart with unchanged -image flags failed: %v", err)
	}
	if got := strings.Count(out2.String(), "skipping"); got != 2 {
		t.Fatalf("restart skipped %d images, want 2:\n%s", got, out2.String())
	}
	if v, ok := restarted.Latest(0x2A); !ok || v != 2 {
		t.Fatalf("restarted Latest = (%d,%v), want (2,true)", v, ok)
	}
	after, err := restarted.PrepareUpdate(0x2A, tok)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Payload, after.Payload) {
		t.Fatal("restarted server serves different payload bytes")
	}
	if !bytes.Equal(after.Payload, fw2) {
		t.Fatal("served payload is not the v2 firmware")
	}
}

// TestPublishImagesStillFailsOnBadFile keeps hard failures hard: a
// corrupt image file aborts startup, stale versions are the only
// tolerated publish error.
func TestPublishImagesStillFailsOnBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.upk")
	if err := os.WriteFile(bad, []byte("not an image"), 0o644); err != nil {
		t.Fatal(err)
	}
	server := updateserver.New(security.NewTinyCrypt(), security.MustGenerateKey("srv-badfile"))
	if err := publishImages(server, []string{bad}, io.Discard); err == nil {
		t.Fatal("corrupt image file accepted")
	}
}
