// Command upkit-loadgen runs the load harness: N simulated devices
// concurrently pulling a differential update from one shared update
// server. Two stacks are available: the full UpKit device stack
// (CoAP blockwise, signature verification, LZSS + bspatch, flash,
// reboot) and a lightweight synthetic stack for campaign-engine scale
// runs at 100k–1M devices. It prints the campaign result as JSON.
//
// Usage:
//
//	upkit-loadgen                          # 16 devices, 32 KiB images
//	upkit-loadgen -n 64 -p 16 -fw 128      # bigger fleet and images
//	upkit-loadgen -n 100000 -stack sim     # engine-scale synthetic run
//	upkit-loadgen -stages 0.01,0.1,1 -gate 0.05    # staged rollout
//	upkit-loadgen -breaker 0.2 -checkpoint cp.json # resumable breaker run
//	upkit-loadgen -o result.json           # write JSON to a file
//	upkit-loadgen -proxies 2 -peer         # serve through caching proxies + peer tier
//	upkit-loadgen -dist-ablation -n 1000 -min-egress-reduction 5 -o dist.json
//
// With -api the harness does not touch the fleet directly: it drives
// the campaign control plane over HTTP exactly like an operator —
// create, poll live progress, pause mid-campaign, restart the whole
// server, resume from the persisted checkpoint — and verifies the
// exactly-once re-dispatch through the per-device history endpoint:
//
//	upkit-loadgen -api -stack sim -n 10000 -stages 0.01,0.1,1
//	upkit-loadgen -api -api-url http://host:8080 -stack sim -n 1000
//
// (-api-url targets an external upkit-server started with -campaigns;
// the pause/resume cycle then runs without the server restart, which
// only the self-hosted mode can perform.)
//
// The process exits non-zero when the campaign aborts or any device
// unexpectedly fails, so CI can gate on it directly. With -fail > 0
// (sim stack) the injected failures are expected and do not fail the
// run on their own.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"

	"upkit/internal/fleet"
	"upkit/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := loadgen.Config{}
	flag.IntVar(&cfg.Devices, "n", 16, "number of simulated devices")
	flag.IntVar(&cfg.FirmwareKiB, "fw", 32, "firmware image size in KiB (full stack)")
	flag.IntVar(&cfg.EditBytes, "edit", 1000, "size of the localized v1→v2 change in bytes (full stack)")
	flag.IntVar(&cfg.Parallelism, "p", 8, "concurrent device updates (campaign worker count)")
	flag.IntVar(&cfg.Shards, "shards", 0, "campaign scheduling lanes (0 = max(8, 2×parallelism))")
	flag.StringVar(&cfg.Stack, "stack", loadgen.StackFull, "device stack: full or sim")
	flag.Float64Var(&cfg.FailRate, "fail", 0, "fraction of sim devices that fail every attempt")
	flag.DurationVar(&cfg.SimLatency, "sim-latency", 0, "simulated per-attempt service time (sim stack)")
	stages := flag.String("stages", "", "comma-separated cumulative rollout fractions, e.g. 0.01,0.1,1")
	flag.Float64Var(&cfg.MaxFailureRate, "gate", 0, "max stage failure rate before aborting the rollout")
	flag.Float64Var(&cfg.BreakerFailureRate, "breaker", 0, "mid-wave circuit-breaker failure rate (0 disables)")
	flag.IntVar(&cfg.BreakerMinSample, "breaker-min", 0, "breaker minimum completed-device sample (0 = default)")
	flag.IntVar(&cfg.MaxRetries, "retries", 0, "extra attempts per device after a failure (0 = 1, negative = none)")
	flag.BoolVar(&cfg.Encrypted, "encrypted", false, "enable end-to-end payload encryption (full stack)")
	flag.IntVar(&cfg.Proxies, "proxies", 0, "caching CoAP proxies between fleet and origin (full stack, 0 = direct)")
	flag.IntVar(&cfg.ProxyCacheKiB, "proxy-cache", 0, "per-proxy block cache size in KiB (0 = default)")
	flag.BoolVar(&cfg.PeerAssist, "peer", false, "enable the peer-assisted block tier (full stack)")
	flag.StringVar(&cfg.Seed, "seed", "loadgen", "deterministic seed")
	distAblation := flag.Bool("dist-ablation", false, "run the direct / proxy / proxy+peer egress ablation and emit an Ablation JSON")
	minEgress := flag.Float64("min-egress-reduction", 0, "with -dist-ablation, fail unless the proxy leg cuts origin egress by at least this factor")
	prepare := flag.Bool("prepare", false, "hammer PrepareUpdate server-side instead of running a device campaign")
	prepareAblation := flag.Bool("prepare-ablation", false, "run the cold / farm-warmed / restart prepare ablation and emit a PrepareAblation JSON")
	pcfg := loadgen.PrepareConfig{}
	flag.IntVar(&pcfg.Requests, "requests", 0, "prepare hammer: total PrepareUpdate calls (0 = default)")
	flag.IntVar(&pcfg.Versions, "versions", 0, "prepare hammer: distinct stored base versions (0 = default)")
	flag.IntVar(&pcfg.Signers, "signers", 0, "prepare hammer: server signing-pool size (0 = GOMAXPROCS, negative = inline)")
	flag.IntVar(&pcfg.FarmWorkers, "farm-workers", 0, "prepare hammer: patch-farm worker count for the warm leg (0 = GOMAXPROCS)")
	flag.StringVar(&pcfg.StateDir, "patch-state", "", "prepare hammer: patch store directory (empty = temp dir)")
	minSpeedup := flag.Float64("min-speedup", 0, "with -prepare-ablation, fail unless warm throughput beats cold by this factor")
	maxP99Frac := flag.Float64("max-p99-frac", 0, "with -prepare-ablation, fail unless warm p99 is at most this fraction of cold p99")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: resumed from if present, written on abort")
	out := flag.String("o", "-", "output path for the JSON result (- for stdout)")
	api := flag.Bool("api", false, "drive the campaign over the HTTP control plane instead of in-process")
	apiURL := flag.String("api-url", "", "external control-plane base URL for -api; empty self-hosts one (with a mid-campaign restart)")
	pauseAt := flag.Float64("pause-at", 0.25, "completed-device fraction at which -api pauses (and restarts) the campaign; 0 disables")
	stateDir := flag.String("state", "", "self-hosted control plane's persistence directory for -api; empty uses a temp dir")
	flag.Parse()

	var err error
	if cfg.Stages, err = parseStages(*stages); err != nil {
		return err
	}
	if *distAblation {
		return runDistAblation(cfg, *out, *minEgress)
	}
	if *prepare || *prepareAblation {
		pcfg.FirmwareKiB = cfg.FirmwareKiB
		pcfg.EditBytes = cfg.EditBytes
		pcfg.Parallelism = cfg.Parallelism
		pcfg.Seed = cfg.Seed
		if *prepareAblation {
			return runPrepareAblation(pcfg, *out, *minSpeedup, *maxP99Frac)
		}
		return runPrepare(pcfg, *out)
	}
	if *api {
		return runAPI(loadgen.APIConfig{
			Config:   cfg,
			URL:      *apiURL,
			StateDir: *stateDir,
			PauseAt:  *pauseAt,
		}, *out)
	}

	f, err := loadgen.Build(cfg)
	if err != nil {
		return err
	}
	cp, err := loadCheckpoint(*checkpoint)
	if err != nil {
		return err
	}
	res, runErr := f.CampaignFrom(cp)
	if res == nil {
		return runErr
	}
	if err := writeResult(res, *out); err != nil {
		return err
	}
	if runErr != nil {
		if *checkpoint != "" && res.Checkpoint != nil {
			blob, err := res.Checkpoint.Marshal()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*checkpoint, blob, 0o644); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "upkit-loadgen: resume state written to", *checkpoint)
		}
		return runErr
	}
	if *checkpoint != "" {
		// A completed run invalidates any previous resume state.
		if err := os.Remove(*checkpoint); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	// Injected sim failures — and terminal failures carried over from a
	// resumed checkpoint — are the workload, not a harness defect; any
	// other shortfall fails the run.
	expectedFailures := 0
	if cfg.FailRate > 0 {
		expectedFailures = res.Failed
	} else if cp != nil {
		expectedFailures = min(cp.Failed, res.Failed)
	}
	if res.Updated+expectedFailures != res.Devices {
		return fmt.Errorf("%d of %d devices failed to update: %v",
			res.Devices-res.Updated, res.Devices, res.Errors)
	}
	return nil
}

// runDistAblation is the -dist-ablation path: the same campaign direct,
// through one caching proxy, and through proxy + peer tier, reported as
// one Ablation JSON. -min-egress-reduction turns the proxy leg's origin
// egress saving into a CI gate.
func runDistAblation(cfg loadgen.Config, out string, minReduction float64) error {
	a, err := loadgen.RunDistAblation(cfg)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	if minReduction > 0 && a.EgressReductionProxy < minReduction {
		return fmt.Errorf("origin egress reduction %.1fx below the required %.1fx",
			a.EgressReductionProxy, minReduction)
	}
	return nil
}

// runPrepare is the -prepare path: one cold server-side PrepareUpdate
// hammer leg, reported as JSON.
func runPrepare(cfg loadgen.PrepareConfig, out string) error {
	res, err := loadgen.RunPrepare(cfg)
	if err != nil {
		return err
	}
	return writeJSON(res, out)
}

// runPrepareAblation is the -prepare-ablation path: cold, farm-warmed,
// and restart legs over one patch store, reported as one
// PrepareAblation JSON. -min-speedup and -max-p99-frac turn the
// warm-vs-cold comparison into CI gates.
func runPrepareAblation(cfg loadgen.PrepareConfig, out string, minSpeedup, maxP99Frac float64) error {
	a, err := loadgen.RunPrepareAblation(cfg)
	if err != nil {
		return err
	}
	if err := writeJSON(a, out); err != nil {
		return err
	}
	if minSpeedup > 0 && a.Speedup < minSpeedup {
		return fmt.Errorf("warm throughput %.1fx cold, below the required %.1fx",
			a.Speedup, minSpeedup)
	}
	if maxP99Frac > 0 && a.P99Ratio > maxP99Frac {
		return fmt.Errorf("warm p99 is %.2fx cold p99, above the allowed %.2fx",
			a.P99Ratio, maxP99Frac)
	}
	return nil
}

// writeJSON marshals v indented to out ("-" for stdout).
func writeJSON(v any, out string) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(out, blob, 0o644)
}

// runAPI is the -api path: campaign over HTTP, report as JSON. The
// report is written even when the run fails, so CI archives what the
// API saw either way.
func runAPI(cfg loadgen.APIConfig, out string) error {
	rep, runErr := loadgen.RunAPI(cfg)
	if rep != nil {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if out == "-" {
			if _, err := os.Stdout.Write(blob); err != nil {
				return err
			}
		} else if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
	}
	if runErr != nil {
		return runErr
	}
	// Same acceptance rule as the direct path: injected sim failures
	// are workload, anything else failing is a harness defect.
	expectedFailures := 0
	if cfg.FailRate > 0 {
		expectedFailures = rep.Failed
	}
	if rep.Updated+expectedFailures != rep.Devices || rep.Pending != 0 {
		return fmt.Errorf("%d of %d devices failed to update via the API",
			rep.Devices-rep.Updated, rep.Devices)
	}
	return nil
}

// parseStages decodes "-stages 0.01,0.1,1" into cumulative fractions.
func parseStages(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	stages := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -stages value %q: %w", p, err)
		}
		stages = append(stages, v)
	}
	return stages, nil
}

// loadCheckpoint reads resume state from path; a missing or empty path
// starts fresh.
func loadCheckpoint(path string) (*fleet.Checkpoint, error) {
	if path == "" {
		return nil, nil
	}
	blob, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	cp, err := fleet.ParseCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "upkit-loadgen: resuming from %s (stage %d, %d updated, %d failed)\n",
		path, cp.Stage, cp.Updated, cp.Failed)
	return cp, nil
}

func writeResult(res *loadgen.Result, out string) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(out, blob, 0o644)
}
