// Command upkit-loadgen runs the load harness: N simulated devices
// concurrently pulling a differential update from one shared update
// server over the in-memory transport, through the full UpKit stack
// (CoAP blockwise, signature verification, LZSS + bspatch, flash,
// reboot). It prints the campaign result as JSON.
//
// Usage:
//
//	upkit-loadgen                          # 16 devices, 32 KiB images
//	upkit-loadgen -n 64 -p 16 -fw 128      # bigger fleet and images
//	upkit-loadgen -o result.json           # write JSON to a file
//
// The process exits non-zero when any device fails to update, so CI
// can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"upkit/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upkit-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := loadgen.Config{}
	flag.IntVar(&cfg.Devices, "n", 16, "number of simulated devices")
	flag.IntVar(&cfg.FirmwareKiB, "fw", 32, "firmware image size in KiB")
	flag.IntVar(&cfg.EditBytes, "edit", 1000, "size of the localized v1→v2 change in bytes")
	flag.IntVar(&cfg.Parallelism, "p", 8, "concurrent device updates")
	flag.BoolVar(&cfg.Encrypted, "encrypted", false, "enable end-to-end payload encryption")
	flag.StringVar(&cfg.Seed, "seed", "loadgen", "deterministic seed")
	out := flag.String("o", "-", "output path for the JSON result (- for stdout)")
	flag.Parse()

	res, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if res.Updated != res.Devices {
		return fmt.Errorf("%d of %d devices failed to update: %v",
			res.Devices-res.Updated, res.Devices, res.Errors)
	}
	return nil
}
