package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// resetFlags lets run() be invoked repeatedly within one process.
func resetFlags(args ...string) {
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	os.Args = append([]string{"upkit-loadgen"}, args...)
}

func TestRunWritesResultFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "result.json")
	resetFlags("-n", "3", "-p", "2", "-fw", "16", "-seed", "loadgen-cmd-test", "-o", out)
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Devices int `json:"devices"`
		Updated int `json:"updated"`
	}
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("result is not JSON: %v", err)
	}
	if res.Devices != 3 || res.Updated != 3 {
		t.Fatalf("devices/updated = %d/%d, want 3/3", res.Devices, res.Updated)
	}
}
