package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// resetFlags lets run() be invoked repeatedly within one process.
func resetFlags(args ...string) {
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	os.Args = append([]string{"upkit-loadgen"}, args...)
}

func TestRunWritesResultFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "result.json")
	resetFlags("-n", "3", "-p", "2", "-fw", "16", "-seed", "loadgen-cmd-test", "-o", out)
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Devices int `json:"devices"`
		Updated int `json:"updated"`
	}
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("result is not JSON: %v", err)
	}
	if res.Devices != 3 || res.Updated != 3 {
		t.Fatalf("devices/updated = %d/%d, want 3/3", res.Devices, res.Updated)
	}
}

func TestRunSimStackAtScale(t *testing.T) {
	out := filepath.Join(t.TempDir(), "result.json")
	resetFlags("-n", "10000", "-p", "16", "-shards", "64", "-stack", "sim", "-o", out)
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Updated       int `json:"updated"`
		MaxGoroutines int `json:"max_goroutines"`
	}
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("result is not JSON: %v", err)
	}
	if res.Updated != 10000 {
		t.Fatalf("updated = %d, want 10000", res.Updated)
	}
	if res.MaxGoroutines == 0 || res.MaxGoroutines > 200 {
		t.Fatalf("max goroutines = %d, want small and measured", res.MaxGoroutines)
	}
}

// TestRunBreakerCheckpointCycle drives the operator flow end to end:
// first run aborts on the breaker and writes resume state; the second
// run (failures fixed) resumes it and deletes the file on completion.
func TestRunBreakerCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp.json")
	resetFlags("-n", "1000", "-p", "4", "-stack", "sim", "-fail", "1",
		"-retries", "-1", "-breaker", "0.5", "-breaker-min", "20",
		"-checkpoint", cp, "-o", filepath.Join(dir, "r1.json"))
	if err := run(); err == nil {
		t.Fatal("breaker run returned nil error")
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("no resume state written: %v", err)
	}

	resetFlags("-n", "1000", "-p", "4", "-stack", "sim",
		"-checkpoint", cp, "-o", filepath.Join(dir, "r2.json"))
	if err := run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if _, err := os.Stat(cp); !os.IsNotExist(err) {
		t.Fatalf("completed run left resume state behind (err=%v)", err)
	}
}
