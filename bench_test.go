package upkit_test

import (
	"strconv"
	"sync/atomic"
	"testing"

	"upkit"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation (§VI). The interesting output is not ns/op — the
// simulations run in virtual time — but the reproduced values, which
// are attached as custom metrics where they are scalar, and printed by
// cmd/upkit-bench in full.

func benchExperiment(b *testing.B, id string) *upkit.ExperimentTable {
	b.Helper()
	var tab *upkit.ExperimentTable
	var err error
	for range b.N {
		tab, err = upkit.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// metric parses a numeric table cell for ReportMetric.
func metric(b *testing.B, tab *upkit.ExperimentTable, row, col int) float64 {
	b.Helper()
	s := tab.Rows[row][col]
	if n := len(s); n > 0 && s[n-1] == '%' {
		s = s[:n-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// BenchmarkTable1BootloaderFootprint regenerates Table I.
func BenchmarkTable1BootloaderFootprint(b *testing.B) {
	tab := benchExperiment(b, "table1")
	b.ReportMetric(metric(b, tab, 0, 2), "zephyr+tinydtls_flash_B")
	b.ReportMetric(metric(b, tab, 0, 3), "zephyr+tinydtls_ram_B")
}

// BenchmarkTable2AgentFootprint regenerates Table II.
func BenchmarkTable2AgentFootprint(b *testing.B) {
	tab := benchExperiment(b, "table2")
	b.ReportMetric(metric(b, tab, 0, 2), "pull_zephyr_flash_B")
	b.ReportMetric(metric(b, tab, 3, 2), "push_zephyr_flash_B")
}

// BenchmarkFig7aBootloaderVsMCUBoot regenerates Fig. 7a.
func BenchmarkFig7aBootloaderVsMCUBoot(b *testing.B) {
	tab := benchExperiment(b, "fig7a")
	b.ReportMetric(metric(b, tab, 2, 1), "flash_delta_B")
	b.ReportMetric(metric(b, tab, 2, 2), "ram_delta_B")
}

// BenchmarkFig7bAgentVsLwM2M regenerates Fig. 7b.
func BenchmarkFig7bAgentVsLwM2M(b *testing.B) {
	tab := benchExperiment(b, "fig7b")
	b.ReportMetric(metric(b, tab, 2, 1), "flash_delta_B")
	b.ReportMetric(metric(b, tab, 2, 2), "ram_delta_B")
}

// BenchmarkFig7cAgentVsMCUMgr regenerates Fig. 7c.
func BenchmarkFig7cAgentVsMCUMgr(b *testing.B) {
	tab := benchExperiment(b, "fig7c")
	b.ReportMetric(metric(b, tab, 2, 1), "flash_delta_B")
	b.ReportMetric(metric(b, tab, 2, 2), "ram_delta_B")
}

// BenchmarkFig8aPushVsPull regenerates Fig. 8a (full phase breakdown).
func BenchmarkFig8aPushVsPull(b *testing.B) {
	tab := benchExperiment(b, "fig8a")
	b.ReportMetric(metric(b, tab, 0, 4), "push_total_s")
	b.ReportMetric(metric(b, tab, 1, 4), "pull_total_s")
	b.ReportMetric(metric(b, tab, 0, 1), "push_propagation_s")
	b.ReportMetric(metric(b, tab, 1, 3), "pull_loading_s")
}

// BenchmarkFig8bDifferential regenerates Fig. 8b.
func BenchmarkFig8bDifferential(b *testing.B) {
	tab := benchExperiment(b, "fig8b")
	b.ReportMetric(metric(b, tab, 1, 3), "os_change_reduction_pct")
	b.ReportMetric(metric(b, tab, 2, 3), "app_change_reduction_pct")
}

// BenchmarkFig8cABUpdates regenerates Fig. 8c.
func BenchmarkFig8cABUpdates(b *testing.B) {
	tab := benchExperiment(b, "fig8c")
	b.ReportMetric(metric(b, tab, 0, 1), "static_loading_s")
	b.ReportMetric(metric(b, tab, 1, 1), "ab_loading_s")
	b.ReportMetric(metric(b, tab, 1, 2), "reduction_pct")
}

// BenchmarkAblationEarlyReject quantifies UpKit's early rejection
// against mcumgr+mcuboot.
func BenchmarkAblationEarlyReject(b *testing.B) {
	tab := benchExperiment(b, "ablation-early-reject")
	b.ReportMetric(metric(b, tab, 2, 2), "upkit_replay_cost_s")
	b.ReportMetric(metric(b, tab, 3, 2), "baseline_replay_cost_s")
}

// BenchmarkAblationFreshness runs the attack matrix.
func BenchmarkAblationFreshness(b *testing.B) {
	benchExperiment(b, "ablation-freshness")
}

// BenchmarkAblationBufferSize sweeps the pipeline buffer stage.
func BenchmarkAblationBufferSize(b *testing.B) {
	tab := benchExperiment(b, "ablation-buffer")
	b.ReportMetric(metric(b, tab, 0, 1), "64B_buffer_page_programs")
	b.ReportMetric(metric(b, tab, 3, 1), "4096B_buffer_page_programs")
}

// BenchmarkAblationDoubleSignature runs the key-compromise analysis.
func BenchmarkAblationDoubleSignature(b *testing.B) {
	benchExperiment(b, "ablation-signature")
}

// BenchmarkAblationFlashWear compares static vs A/B sector wear.
func BenchmarkAblationFlashWear(b *testing.B) {
	tab := benchExperiment(b, "ablation-wear")
	b.ReportMetric(metric(b, tab, 0, 2), "static_erases_per_update")
	b.ReportMetric(metric(b, tab, 1, 2), "ab_erases_per_update")
}

// BenchmarkAblationConfidentiality measures the encrypted-payload cost.
func BenchmarkAblationConfidentiality(b *testing.B) {
	tab := benchExperiment(b, "ablation-confidentiality")
	b.ReportMetric(metric(b, tab, 1, 3)-metric(b, tab, 0, 3), "full_image_overhead_s")
}

// BenchmarkAblationPatchCache measures the update server's
// differential-patch cache in the many-devices-one-release scenario
// (real CPU time, unlike the virtual-time experiments).
func BenchmarkAblationPatchCache(b *testing.B) {
	tab := benchExperiment(b, "ablation-cache")
	b.ReportMetric(metric(b, tab, 0, 2), "uncached_diffs")
	b.ReportMetric(metric(b, tab, 1, 2), "cached_diffs")
	b.ReportMetric(metric(b, tab, 0, 5), "uncached_ms_per_req")
	b.ReportMetric(metric(b, tab, 1, 5), "cached_ms_per_req")
}

// BenchmarkAblationLossyLink sweeps frame loss vs update time.
func BenchmarkAblationLossyLink(b *testing.B) {
	tab := benchExperiment(b, "ablation-loss")
	b.ReportMetric(metric(b, tab, 0, 1), "perfect_link_s")
	b.ReportMetric(metric(b, tab, 2, 1), "loss3pct_s")
}

// BenchmarkPortability reports the platform-independent code shares.
func BenchmarkPortability(b *testing.B) {
	benchExperiment(b, "portability")
}

// BenchmarkPrepareUpdateParallel measures the update server's request
// hot path under many concurrent devices (real CPU time). With the
// patch warmed into the cache, every request is a store lookup plus a
// per-request ECDSA signature over sharded read locks, so throughput
// should scale with cores; run with -cpu 1,2,4 to see it.
func BenchmarkPrepareUpdateParallel(b *testing.B) {
	b.Run("inline-signing", func(b *testing.B) {
		benchPrepareParallel(b)
	})
	b.Run("signer-pool", func(b *testing.B) {
		benchPrepareParallel(b, upkit.WithSigners(0)) // GOMAXPROCS workers
	})
}

func benchPrepareParallel(b *testing.B, opts ...upkit.UpdateServerOption) {
	suite := upkit.NewTinyCrypt()
	vendor := upkit.NewVendorServer(suite, upkit.MustGenerateKey("bench-vendor"))
	server := upkit.NewUpdateServer(suite, upkit.MustGenerateKey("bench-server"), opts...)
	defer server.Close()

	v1 := upkit.MakeFirmware("bench-base", 64*1024)
	v2 := upkit.DeriveAppChange(v1, 1000)
	for v, fw := range map[uint16][]byte{1: v1, 2: v2} {
		img, err := vendor.BuildImage(upkit.Release{
			AppID: 1, Version: v, LinkOffset: 0xFFFFFFFF, Firmware: fw,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := server.Publish(img); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the 1→2 patch so the loop measures the steady state, not one
	// bsdiff computation.
	if _, err := server.PrepareUpdate(1, upkit.DeviceToken{DeviceID: 1, Nonce: 1, CurrentVersion: 1}); err != nil {
		b.Fatal(err)
	}

	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := next.Add(1)
			tok := upkit.DeviceToken{
				DeviceID:       uint32(0x1000 + n),
				Nonce:          uint32(n),
				CurrentVersion: 1,
			}
			u, err := server.PrepareUpdate(1, tok)
			if err != nil {
				b.Fatal(err)
			}
			if u.Manifest.Version != 2 {
				b.Fatalf("served v%d, want v2", u.Manifest.Version)
			}
		}
	})
}
