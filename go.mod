module upkit

go 1.24
