package announce

import (
	"sync"
	"testing"
)

func TestPublishReachesAllSubscribers(t *testing.T) {
	b := New[int](4)
	a, c := b.Subscribe(), b.Subscribe()
	delivered, dropped := b.Publish(7)
	if delivered != 2 || dropped != 0 {
		t.Fatalf("delivered/dropped = %d/%d, want 2/0", delivered, dropped)
	}
	if got := <-a; got != 7 {
		t.Fatalf("subscriber a got %d", got)
	}
	if got := <-c; got != 7 {
		t.Fatalf("subscriber c got %d", got)
	}
}

func TestSlowSubscriberDropsInsteadOfBlocking(t *testing.T) {
	b := New[int](1)
	ch := b.Subscribe()
	if d, _ := b.Publish(1); d != 1 {
		t.Fatalf("first publish delivered %d", d)
	}
	// Channel full: the second publish must drop, not block.
	delivered, dropped := b.Publish(2)
	if delivered != 0 || dropped != 1 {
		t.Fatalf("delivered/dropped = %d/%d, want 0/1", delivered, dropped)
	}
	if got := <-ch; got != 1 {
		t.Fatalf("got %d, want the first event", got)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := New[string](0)
	ch := b.Subscribe()
	b.Unsubscribe(ch)
	if n := b.Count(); n != 0 {
		t.Fatalf("Count = %d after Unsubscribe", n)
	}
	if delivered, _ := b.Publish("late"); delivered != 0 {
		t.Fatalf("delivered %d events to an unsubscribed channel", delivered)
	}
	// Unknown channels are ignored.
	b.Unsubscribe(make(chan string))
}

func TestConcurrentSubscribePublishUnsubscribe(t *testing.T) {
	b := New[int](8)
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 100 {
				ch := b.Subscribe()
				b.Publish(1)
				b.Unsubscribe(ch)
			}
		}()
	}
	wg.Wait()
	if n := b.Count(); n != 0 {
		t.Fatalf("%d subscribers leaked", n)
	}
}
