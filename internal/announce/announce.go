// Package announce is a minimal publish/subscribe bus for new-release
// announcements (step 3 of the paper's Fig. 2: the update server
// "announces the availability of the update over the Internet").
//
// The bus carries small value-type events to an unbounded set of
// subscribers with broadcast-with-drop semantics: Publish never blocks
// on a slow subscriber — a full channel simply misses that event, and
// subscribers that care about completeness poll the authoritative
// source (the release store) instead of relying on the bus. This is
// the subscriber machinery that used to live inside the update server,
// extracted so proxies, gateways, and tests can run the same fan-out
// without holding a server.
package announce

import "sync"

// DefaultBuffer is the per-subscriber channel capacity used when New
// is given a non-positive buffer size.
const DefaultBuffer = 16

// Bus fans events of type T out to subscribers. The zero value is not
// usable; construct with New.
type Bus[T any] struct {
	buffer int

	mu   sync.Mutex
	subs []chan T
}

// New creates a bus whose subscriber channels hold buffer events;
// buffer <= 0 selects DefaultBuffer.
func New[T any](buffer int) *Bus[T] {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	return &Bus[T]{buffer: buffer}
}

// Subscribe returns a channel receiving published events. The channel
// is buffered; events published while it is full are dropped for that
// subscriber. Callers that stop listening must call Unsubscribe, or
// the bus accumulates dead channels for its whole lifetime.
func (b *Bus[T]) Subscribe() <-chan T {
	ch := make(chan T, b.buffer)
	b.mu.Lock()
	b.subs = append(b.subs, ch)
	b.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel obtained from Subscribe. The channel
// is not closed (a Publish that already snapshotted the subscriber
// list may still deliver one last buffered event); it simply stops
// receiving and is released for garbage collection. Unknown channels
// are ignored.
func (b *Bus[T]) Unsubscribe(ch <-chan T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, sub := range b.subs {
		if (<-chan T)(sub) == ch {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Publish delivers v to every current subscriber without blocking and
// reports how many subscribers received it and how many dropped it
// because their channel was full.
func (b *Bus[T]) Publish(v T) (delivered, dropped int) {
	b.mu.Lock()
	subs := make([]chan T, len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- v:
			delivered++
		default: // a slow subscriber must not block publishing
			dropped++
		}
	}
	return delivered, dropped
}

// Count reports the number of live subscribers (an operational leak
// indicator).
func (b *Bus[T]) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
