package updateserver

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/security"
)

// firmwarePair returns two related images so a differential payload is
// viable (the interesting cache case).
func firmwarePair(size int) (v1, v2 []byte) {
	v1 = bytes.Repeat([]byte("cache-stable-section-"), size/21+1)[:size]
	v2 = bytes.Clone(v1)
	copy(v2[size/3:], []byte("a localized edit of the new release"))
	return v1, v2
}

func TestCacheServesRepeatedPairsFromMemory(t *testing.T) {
	s := newServers(t)
	v1, v2 := firmwarePair(40 * 1024)
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)

	var first *Update
	for i := range 5 {
		tok := manifest.DeviceToken{DeviceID: uint32(i + 1), Nonce: uint32(i + 100), CurrentVersion: 1}
		u, err := s.update.PrepareUpdate(1, tok)
		if err != nil {
			t.Fatal(err)
		}
		if !u.Differential {
			t.Fatal("expected a differential update")
		}
		if first == nil {
			first = u
		} else if !bytes.Equal(first.Payload, u.Payload) {
			t.Fatal("cached patch differs from the computed one")
		}
	}
	st := s.update.Stats()
	if st.Computations != 1 {
		t.Fatalf("computations = %d, want 1 (one per distinct pair)", st.Computations)
	}
	if st.Hits != 4 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 4/1", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("entries/bytes = %d/%d", st.Entries, st.Bytes)
	}
}

func TestCacheRemembersNonViablePatches(t *testing.T) {
	s := newServers(t)
	// Unrelated, incompressible images: no patch can beat the full
	// image, and that verdict must be cached too, not rediscovered per
	// request.
	v1 := make([]byte, 2000)
	v2 := make([]byte, 2000)
	if _, err := io.ReadFull(security.NewDeterministicReader("cache-nonviable-v1"), v1); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(security.NewDeterministicReader("cache-nonviable-v2"), v2); err != nil {
		t.Fatal(err)
	}
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)
	for i := range 3 {
		tok := manifest.DeviceToken{DeviceID: uint32(i + 1), Nonce: uint32(i + 1), CurrentVersion: 1}
		u, err := s.update.PrepareUpdate(1, tok)
		if err != nil {
			t.Fatal(err)
		}
		if u.Differential {
			t.Fatal("non-viable patch served as differential")
		}
	}
	if st := s.update.Stats(); st.Computations != 1 {
		t.Fatalf("computations = %d, want 1", st.Computations)
	}
}

func TestPublishInvalidatesCachedPatches(t *testing.T) {
	s := newServers(t)
	v1, v2 := firmwarePair(20 * 1024)
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 1, CurrentVersion: 1}
	if _, err := s.update.PrepareUpdate(1, tok); err != nil {
		t.Fatal(err)
	}
	if st := s.update.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}

	v3 := bytes.Clone(v2)
	copy(v3[100:], []byte("v3 edit"))
	s.publish(t, 1, 3, v3)
	st := s.update.Stats()
	if st.Entries != 0 {
		t.Fatalf("entries = %d after publish, want 0", st.Entries)
	}
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestCacheRespectsSizeBound(t *testing.T) {
	s := newServers(t)
	base := bytes.Repeat([]byte("bound-test-firmware-"), 1200)
	s.publish(t, 1, 1, base)
	for v := uint16(2); v <= 4; v++ {
		fw := bytes.Clone(base)
		copy(fw[10:], fmt.Sprintf("version-%d-edit", v))
		s.publish(t, 1, v, fw)
	}
	// Fit roughly one patch: every further pair evicts the previous one.
	s.update.SetPatchCacheSize(1024)
	// Version pairs (1→4), (2→4), (3→4): three distinct keys.
	for from := uint16(1); from <= 3; from++ {
		tok := manifest.DeviceToken{DeviceID: uint32(from), Nonce: uint32(from), CurrentVersion: from}
		if _, err := s.update.PrepareUpdate(1, tok); err != nil {
			t.Fatal(err)
		}
	}
	st := s.update.Stats()
	if st.Bytes > 1024 {
		t.Fatalf("cache grew to %d bytes past its 1024-byte bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite a bound smaller than the working set")
	}
}

func TestSetPatchCacheSizeZeroDisablesCaching(t *testing.T) {
	s := newServers(t)
	v1, v2 := firmwarePair(8 * 1024)
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)
	s.update.SetPatchCacheSize(0)
	for i := range 3 {
		tok := manifest.DeviceToken{DeviceID: uint32(i + 1), Nonce: uint32(i + 1), CurrentVersion: 1}
		if _, err := s.update.PrepareUpdate(1, tok); err != nil {
			t.Fatal(err)
		}
	}
	st := s.update.Stats()
	if st.Computations != 3 {
		t.Fatalf("computations = %d with cache disabled, want 3", st.Computations)
	}
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache still memoises: %+v", st)
	}
}

func TestPreparedPayloadIsACopy(t *testing.T) {
	// Regression: mutating a returned payload must never corrupt the
	// stored release (full images) or the cached patch (differential).
	s := newServers(t)
	v1, v2 := firmwarePair(16 * 1024)
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)

	for name, tok := range map[string]manifest.DeviceToken{
		"full image":   {DeviceID: 1, Nonce: 1, CurrentVersion: 0},
		"differential": {DeviceID: 2, Nonce: 2, CurrentVersion: 1},
	} {
		u1, err := s.update.PrepareUpdate(1, tok)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pristine := bytes.Clone(u1.Payload)
		for i := range u1.Payload {
			u1.Payload[i] ^= 0xFF
		}
		tok.Nonce++
		u2, err := s.update.PrepareUpdate(1, tok)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(u2.Payload, pristine) {
			t.Fatalf("%s: mutation of a returned payload leaked into later requests", name)
		}
	}
}

func TestRetentionShrinkPrunesImmediately(t *testing.T) {
	s := newServers(t)
	base := bytes.Repeat([]byte("retention-now-"), 1000)
	for v := uint16(1); v <= 5; v++ {
		fw := bytes.Clone(base)
		fw[0] = byte(v)
		s.publish(t, 1, v, fw)
	}
	// Warm the cache with a patch whose base is about to be pruned.
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 1, CurrentVersion: 2}
	u, err := s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Differential {
		t.Fatal("expected a differential update before pruning")
	}

	// Shrinking retention must prune NOW, not on the next publish, and
	// must drop the cached patches for the pruned bases.
	s.update.SetRetention(2)
	if _, ok := s.update.ImageByVersion(1, 3); ok {
		t.Fatal("release v3 still stored after SetRetention(2)")
	}
	if _, ok := s.update.ImageByVersion(1, 4); !ok {
		t.Fatal("release v4 missing after SetRetention(2)")
	}
	if st := s.update.Stats(); st.Entries != 0 {
		t.Fatalf("cache entries = %d after pruning, want 0", st.Entries)
	}
	// The device on the pruned base now gets a full image.
	tok.Nonce++
	u, err = s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if u.Differential {
		t.Fatal("differential update served against a pruned base")
	}
}

func TestUnsubscribeStopsDeliveryAndReleasesChannel(t *testing.T) {
	s := newServers(t)
	ch1 := s.update.Subscribe()
	ch2 := s.update.Subscribe()
	if n := s.update.SubscriberCount(); n != 2 {
		t.Fatalf("subscribers = %d, want 2", n)
	}
	s.update.Unsubscribe(ch1)
	if n := s.update.SubscriberCount(); n != 1 {
		t.Fatalf("subscribers = %d after Unsubscribe, want 1", n)
	}
	s.publish(t, 1, 1, []byte("v1"))
	select {
	case ann := <-ch1:
		t.Fatalf("unsubscribed channel received %+v", ann)
	default:
	}
	select {
	case ann := <-ch2:
		if ann.Version != 1 {
			t.Fatalf("announcement = %+v", ann)
		}
	default:
		t.Fatal("live subscriber received nothing")
	}
	// Unknown channels are ignored, including double unsubscribes.
	s.update.Unsubscribe(ch1)
	s.update.Unsubscribe(make(chan Announcement))
	if n := s.update.SubscriberCount(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
}

// benchPrepareServers publishes a 64 KiB pair suited for differential
// updates and returns the wired servers.
func benchPrepareServers(b *testing.B) *servers {
	b.Helper()
	s := newServers(b)
	v1, v2 := firmwarePair(64 * 1024)
	s.publish(b, 1, 1, v1)
	s.publish(b, 1, 2, v2)
	return s
}

// BenchmarkPrepareUpdateWarmCache measures repeated PrepareUpdate calls
// on one warm (app, from, to) pair — the campaign steady state. Compare
// against BenchmarkPrepareUpdateUncached: the acceptance bar is a ≥5×
// throughput improvement.
func BenchmarkPrepareUpdateWarmCache(b *testing.B) {
	s := benchPrepareServers(b)
	benchLoop(b, s)
	b.ReportMetric(float64(s.update.Stats().Computations), "diffs")
}

// BenchmarkPrepareUpdateUncached is the same workload with the cache
// disabled: every request pays the full bsdiff+LZSS cost.
func BenchmarkPrepareUpdateUncached(b *testing.B) {
	s := benchPrepareServers(b)
	s.update.SetPatchCacheSize(0)
	benchLoop(b, s)
	b.ReportMetric(float64(s.update.Stats().Computations), "diffs")
}

func benchLoop(b *testing.B, s *servers) {
	b.Helper()
	b.ResetTimer()
	for i := range b.N {
		tok := manifest.DeviceToken{DeviceID: uint32(i), Nonce: uint32(i), CurrentVersion: 1}
		u, err := s.update.PrepareUpdate(1, tok)
		if err != nil {
			b.Fatal(err)
		}
		if !u.Differential {
			b.Fatal("expected a differential update")
		}
	}
}
