package updateserver

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/security"
)

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	vendor := newVendor(t)
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fw1 := bytes.Repeat([]byte("v1"), 500)
	fw2 := bytes.Repeat([]byte("v2"), 500)
	if err := fs.Publish(buildImage(t, vendor, 1, 1, fw1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Publish(buildImage(t, vendor, 1, 2, fw2)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Publish(buildImage(t, vendor, 9, 7, []byte("other-app"))); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	img, ok := re.Latest(1)
	if !ok || img.Manifest.Version != 2 || !bytes.Equal(img.Firmware, fw2) {
		t.Fatal("latest release did not survive reopen")
	}
	img, ok = re.ByVersion(1, 1)
	if !ok || !bytes.Equal(img.Firmware, fw1) {
		t.Fatal("older release did not survive reopen")
	}
	if apps := re.Apps(); len(apps) != 2 || apps[0] != 1 || apps[1] != 9 {
		t.Fatalf("Apps after reopen = %v, want [1 9]", apps)
	}
	// The vendor signature must round-trip bit-exactly: a restarted
	// server re-serves what the vendor signed, not a re-encoding of it.
	suite := security.NewTinyCrypt()
	if !img.Manifest.VerifyVendorSig(suite, vendorPub(t)) {
		t.Fatal("vendor signature broken by the log round trip")
	}
	st := re.Stats()
	if st.Apps != 2 || st.Releases != 3 || st.TornTails != 0 {
		t.Fatalf("Stats after reopen = %+v", st)
	}
	if st.LoadSeconds <= 0 {
		t.Fatal("reopen did not record a load duration")
	}
}

// vendorPub regenerates the deterministic test vendor key's public half.
func vendorPub(t testing.TB) *security.PublicKey {
	t.Helper()
	return security.MustGenerateKey("store-vendor").Public()
}

func TestFileStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	vendor := newVendor(t)
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Publish(buildImage(t, vendor, 1, 1, []byte("good-one"))); err != nil {
		t.Fatal(err)
	}
	if err := fs.Publish(buildImage(t, vendor, 1, 2, []byte("good-two"))); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Simulate a crash mid-append: a valid header promising more bytes
	// than the file holds.
	path := filepath.Join(dir, logName(1))
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x55, 0x50, 0x52, 0x53, 0x00, 0x00, 0x40, 0x00, 0xde, 0xad}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	defer re.Close()
	img, ok := re.Latest(1)
	if !ok || img.Manifest.Version != 2 {
		t.Fatal("valid prefix lost to torn-tail truncation")
	}
	if got := re.Stats().TornTails; got != 1 {
		t.Fatalf("TornTails = %d, want 1", got)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("log size %d after truncation, want %d", after.Size(), before.Size())
	}
	// The truncated log must accept new appends and replay cleanly again.
	if err := re.Publish(buildImage(t, vendor, 1, 3, []byte("good-three"))); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if img, ok := re2.Latest(1); !ok || img.Manifest.Version != 3 {
		t.Fatal("post-truncation append did not survive a second reopen")
	}
	if got := re2.Stats().TornTails; got != 0 {
		t.Fatalf("second replay still sees a torn tail: %d", got)
	}
}

func TestFileStoreGarbageTailTruncated(t *testing.T) {
	dir := t.TempDir()
	vendor := newVendor(t)
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Publish(buildImage(t, vendor, 1, 1, []byte("keeper"))); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	path := filepath.Join(dir, logName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bytes.Repeat([]byte{0xFF}, 100)) // no magic at all
	f.Close()
	re, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if img, ok := re.Latest(1); !ok || img.Manifest.Version != 1 {
		t.Fatal("valid record lost to trailing garbage")
	}
}

func TestFileStoreCompactionOnPrune(t *testing.T) {
	dir := t.TempDir()
	vendor := newVendor(t)
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fw := bytes.Repeat([]byte("release-payload"), 200)
	for v := uint16(1); v <= 6; v++ {
		if err := fs.Publish(buildImage(t, vendor, 1, v, fw)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, logName(1))
	before, _ := os.Stat(path)
	pruned := fs.Prune(2)
	if len(pruned) != 1 || pruned[0] != 1 {
		t.Fatalf("Prune = %v, want [1]", pruned)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	if _, ok := fs.ByVersion(1, 4); ok {
		t.Fatal("pruned release still visible")
	}
	// The compacted log must keep accepting appends on the swapped
	// handle and survive a reopen with only the retained releases.
	if err := fs.Publish(buildImage(t, vendor, 1, 7, fw)); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	re, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap := re.Snapshot(1)
	if len(snap) != 3 || snap[0].Manifest.Version != 5 || snap[2].Manifest.Version != 7 {
		versions := make([]uint16, len(snap))
		for i, img := range snap {
			versions[i] = img.Manifest.Version
		}
		t.Fatalf("post-compaction replay versions = %v, want [5 6 7]", versions)
	}
}

func TestFileStoreClosedRejectsWrites(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	vendor := newVendor(t)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	err = fs.Publish(buildImage(t, vendor, 1, 1, []byte("late")))
	if !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("publish after close: err = %v, want ErrStoreClosed", err)
	}
	if pruned := fs.Prune(1); pruned != nil {
		t.Fatalf("prune after close pruned %v", pruned)
	}
}

func TestFileStoreRejectsStaleBeforeDisk(t *testing.T) {
	dir := t.TempDir()
	vendor := newVendor(t)
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Publish(buildImage(t, vendor, 1, 5, []byte("v5"))); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName(1))
	before, _ := os.Stat(path)
	err = fs.Publish(buildImage(t, vendor, 1, 5, []byte("dup")))
	if !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("err = %v, want ErrStaleVersion", err)
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size() {
		t.Fatal("a rejected publish reached the log")
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README.txt", "app-zzzz.log", "app-00000001.log.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("noise"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("foreign files broke open: %v", err)
	}
	defer fs.Close()
	if apps := fs.Apps(); len(apps) != 0 {
		t.Fatalf("apps = %v, want none", apps)
	}
}

// TestServerRestartServesIdenticalPayload is the heart of the durable
// store: a server restarted onto the same state dir (with the same
// server key) must serve a device the exact payload bytes it would
// have served before the crash — what lets a mid-download reception
// journal resume against the restarted server.
func TestServerRestartServesIdenticalPayload(t *testing.T) {
	dir := t.TempDir()
	suite := security.NewTinyCrypt()
	serverKey := security.MustGenerateKey("restart-server")
	vendor := newVendor(t)

	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(suite, serverKey, WithStore(fs))
	v1 := bytes.Repeat([]byte("stable-section-"), 2000)
	v2 := bytes.Clone(v1)
	copy(v2[100:], []byte("tweak"))
	if err := srv.Publish(buildImage(t, vendor, 1, 1, v1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Publish(buildImage(t, vendor, 1, 2, v2)); err != nil {
		t.Fatal(err)
	}
	tok := manifest.DeviceToken{DeviceID: 0xD1, Nonce: 0x4E, CurrentVersion: 1}
	before, err := srv.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close() // the crash

	refs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer refs.Close()
	restarted := New(suite, serverKey, WithStore(refs))
	after, err := restarted.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	// ECDSA signatures are randomized, so the signed manifests differ;
	// the payload (the bytes a reception journal checkpoints) must not.
	if !bytes.Equal(before.Payload, after.Payload) {
		t.Fatal("restarted server serves different payload bytes")
	}
	if before.Differential != after.Differential {
		t.Fatal("restart changed the differential decision")
	}
	if !after.Manifest.VerifyServerSig(suite, restarted.PublicKey()) {
		t.Fatal("restarted server signature does not verify")
	}
}
