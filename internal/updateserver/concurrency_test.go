package updateserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/vendorserver"
)

// The update server is the one shared component in a fleet: many
// devices request tokens and images concurrently while new releases are
// published. These tests hammer it from many goroutines (run with
// -race, as `go test ./...` does in CI).

func TestConcurrentPrepareUpdate(t *testing.T) {
	s := newServers(t)
	v1 := bytes.Repeat([]byte("one"), 4000)
	v2 := bytes.Repeat([]byte("two"), 4000)
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)

	const devices = 32
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for i := range devices {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tok := manifest.DeviceToken{
				DeviceID:       uint32(0x1000 + id),
				Nonce:          uint32(0xBEEF + id),
				CurrentVersion: uint16(1 + id%2), // half differential-capable
			}
			if tok.CurrentVersion == 2 {
				tok.CurrentVersion = 0 // those devices want full images
			}
			u, err := s.update.PrepareUpdate(1, tok)
			if err != nil {
				errs <- fmt.Errorf("device %d: %w", id, err)
				return
			}
			if u.Manifest.DeviceID != tok.DeviceID || u.Manifest.Nonce != tok.Nonce {
				errs <- fmt.Errorf("device %d: token not bound", id)
				return
			}
			if !u.Manifest.VerifyServerSig(s.suite, s.update.PublicKey()) {
				errs <- fmt.Errorf("device %d: bad server signature", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentPublishAndLatest(t *testing.T) {
	s := newServers(t)
	s.publish(t, 7, 1, []byte("seed"))
	var wg sync.WaitGroup
	// One publisher races many readers and subscribers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint16(2); v <= 20; v++ {
			img, err := s.vendor.BuildImage(buildRelease(7, v))
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.update.Publish(img); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 200 {
				if v, ok := s.update.Latest(7); ok && (v < 1 || v > 20) {
					t.Errorf("Latest = %d out of range", v)
					return
				}
				if img, ok := s.update.LatestImage(7); ok && img == nil {
					t.Error("LatestImage returned nil with ok=true")
					return
				}
			}
		}()
	}
	ch := s.update.Subscribe()
	wg.Wait()
	// Drain announcements: all within range, strictly increasing is not
	// guaranteed for a dropped-message channel, but values must be sane.
	for {
		select {
		case ann := <-ch:
			if ann.Version < 2 || ann.Version > 20 {
				t.Fatalf("announcement %+v out of range", ann)
			}
		default:
			return
		}
	}
}

func buildRelease(appID uint32, v uint16) vendorserver.Release {
	return vendorserver.Release{
		AppID:      appID,
		Version:    v,
		LinkOffset: 0xFFFFFFFF,
		Firmware:   bytes.Repeat([]byte{byte(v)}, 256),
	}
}
