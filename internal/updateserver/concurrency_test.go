package updateserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/vendorserver"
)

// The update server is the one shared component in a fleet: many
// devices request tokens and images concurrently while new releases are
// published. These tests hammer it from many goroutines (run with
// -race, as `go test ./...` does in CI).

func TestConcurrentPrepareUpdate(t *testing.T) {
	s := newServers(t)
	v1 := bytes.Repeat([]byte("one"), 4000)
	v2 := bytes.Repeat([]byte("two"), 4000)
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)

	const devices = 32
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for i := range devices {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tok := manifest.DeviceToken{
				DeviceID:       uint32(0x1000 + id),
				Nonce:          uint32(0xBEEF + id),
				CurrentVersion: uint16(1 + id%2), // half differential-capable
			}
			if tok.CurrentVersion == 2 {
				tok.CurrentVersion = 0 // those devices want full images
			}
			u, err := s.update.PrepareUpdate(1, tok)
			if err != nil {
				errs <- fmt.Errorf("device %d: %w", id, err)
				return
			}
			if u.Manifest.DeviceID != tok.DeviceID || u.Manifest.Nonce != tok.Nonce {
				errs <- fmt.Errorf("device %d: token not bound", id)
				return
			}
			if !u.Manifest.VerifyServerSig(s.suite, s.update.PublicKey()) {
				errs <- fmt.Errorf("device %d: bad server signature", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentPublishAndLatest(t *testing.T) {
	s := newServers(t)
	s.publish(t, 7, 1, []byte("seed"))
	var wg sync.WaitGroup
	// One publisher races many readers and subscribers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint16(2); v <= 20; v++ {
			img, err := s.vendor.BuildImage(buildRelease(7, v))
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.update.Publish(img); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 200 {
				if v, ok := s.update.Latest(7); ok && (v < 1 || v > 20) {
					t.Errorf("Latest = %d out of range", v)
					return
				}
				if img, ok := s.update.LatestImage(7); ok && img == nil {
					t.Error("LatestImage returned nil with ok=true")
					return
				}
			}
		}()
	}
	ch := s.update.Subscribe()
	wg.Wait()
	// Drain announcements: all within range, strictly increasing is not
	// guaranteed for a dropped-message channel, but values must be sane.
	for {
		select {
		case ann := <-ch:
			if ann.Version < 2 || ann.Version > 20 {
				t.Fatalf("announcement %+v out of range", ann)
			}
		default:
			return
		}
	}
}

// TestSingleflightOneDiffPerPair hammers the patch cache from many
// goroutines across mixed version pairs and asserts the singleflight
// invariant: the number of diff computations equals the number of
// distinct (app, from, to) pairs, no matter how many devices raced.
func TestSingleflightOneDiffPerPair(t *testing.T) {
	s := newServers(t)
	base := bytes.Repeat([]byte("singleflight-firmware-section-"), 2048)
	const versions = 4 // v1..v4 stored, v5 is the target
	for v := uint16(1); v <= versions+1; v++ {
		fw := bytes.Clone(base)
		copy(fw[64:], fmt.Sprintf("release-%d-local-edit", v))
		s.publish(t, 1, v, fw)
	}

	const devices = 96 // 24 goroutines per distinct pair
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	var start sync.WaitGroup
	start.Add(1)
	for i := range devices {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			start.Wait() // line everyone up on a cold cache
			tok := manifest.DeviceToken{
				DeviceID:       uint32(0x4000 + id),
				Nonce:          uint32(0xACE + id),
				CurrentVersion: uint16(1 + id%versions), // pairs (1→5)…(4→5)
			}
			u, err := s.update.PrepareUpdate(1, tok)
			if err != nil {
				errs <- fmt.Errorf("device %d: %w", id, err)
				return
			}
			if !u.Differential {
				errs <- fmt.Errorf("device %d: expected a differential update", id)
				return
			}
			if u.Manifest.OldVersion != tok.CurrentVersion {
				errs <- fmt.Errorf("device %d: OldVersion = %d, want %d", id, u.Manifest.OldVersion, tok.CurrentVersion)
			}
		}(i)
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.update.Stats()
	if st.Computations != versions {
		t.Fatalf("computations = %d, want %d (one per distinct pair)", st.Computations, versions)
	}
	if st.Misses != versions {
		t.Fatalf("misses = %d, want %d", st.Misses, versions)
	}
	if st.Hits+st.Waits != devices-versions {
		t.Fatalf("hits+waits = %d+%d, want %d", st.Hits, st.Waits, devices-versions)
	}
}

// TestConcurrentSubscribeUnsubscribe races subscriptions against
// publishing; no announcement may reach a channel after its
// Unsubscribe returned.
func TestConcurrentSubscribeUnsubscribe(t *testing.T) {
	s := newServers(t)
	s.publish(t, 7, 1, []byte("seed"))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint16(2); v <= 30; v++ {
			img, err := s.vendor.BuildImage(buildRelease(7, v))
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.update.Publish(img); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				ch := s.update.Subscribe()
				s.update.Unsubscribe(ch)
				// After Unsubscribe at most one announcement snapshotted
				// before removal may straggle in; drain and move on.
				for len(ch) > 0 {
					<-ch
				}
			}
		}()
	}
	wg.Wait()
	if n := s.update.SubscriberCount(); n != 0 {
		t.Fatalf("%d subscribers leaked", n)
	}
}

func buildRelease(appID uint32, v uint16) vendorserver.Release {
	return vendorserver.Release{
		AppID:      appID,
		Version:    v,
		LinkOffset: 0xFFFFFFFF,
		Firmware:   bytes.Repeat([]byte{byte(v)}, 256),
	}
}

// TestStressStoreUnderFullConcurrency is the whole-server stress test:
// publishers, preparing devices, retention changes, and subscriber
// churn all run at once against the sharded store (run with -race, as
// CI does). Afterwards: no published release may be lost (up to
// retention), every reader must have observed a monotonically
// non-decreasing Latest, and no subscriber may leak.
func TestStressStoreUnderFullConcurrency(t *testing.T) {
	s := newServers(t)
	const (
		apps        = 4
		versionsPer = 25
		readers     = 8
		churners    = 4
	)
	// Seed every app so readers and devices never hit ErrUnknownApp.
	for app := uint32(1); app <= apps; app++ {
		s.publish(t, app, 1, bytes.Repeat([]byte{byte(app)}, 512))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Publishers: one per app, strictly increasing versions.
	for app := uint32(1); app <= apps; app++ {
		wg.Add(1)
		go func(app uint32) {
			defer wg.Done()
			for v := uint16(2); v <= versionsPer; v++ {
				img, err := s.vendor.BuildImage(buildRelease(app, v))
				if err != nil {
					fail("build %d/%d: %v", app, v, err)
					return
				}
				if err := s.update.Publish(img); err != nil {
					fail("publish %d/%d: %v", app, v, err)
					return
				}
			}
		}(app)
	}

	// Readers: Latest must never go backwards per app, and PrepareUpdate
	// must always hand back a version ahead of the token.
	for r := range readers {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := make(map[uint32]uint16)
			for i := range 150 {
				app := uint32(1 + (r+i)%apps)
				v, ok := s.update.Latest(app)
				if !ok {
					fail("reader %d: app %d vanished", r, app)
					return
				}
				if v < last[app] {
					fail("reader %d: Latest(%d) went backwards %d -> %d", r, app, last[app], v)
					return
				}
				last[app] = v
				tok := manifest.DeviceToken{
					DeviceID:       uint32(0x7000 + r*1000 + i),
					Nonce:          uint32(i + 1),
					CurrentVersion: 0,
				}
				u, err := s.update.PrepareUpdate(app, tok)
				if err != nil {
					fail("reader %d: prepare app %d: %v", r, app, err)
					return
				}
				if u.Manifest.Version < last[app] {
					fail("reader %d: served v%d below observed latest v%d", r, u.Manifest.Version, last[app])
					return
				}
			}
		}(r)
	}

	// Retention churn: flip between bounded and unbounded while
	// everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range 40 {
			if i%2 == 0 {
				s.update.SetRetention(5)
			} else {
				s.update.SetRetention(0)
			}
		}
	}()

	// Subscriber churn.
	for range churners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				ch := s.update.Subscribe()
				s.update.Unsubscribe(ch)
				for len(ch) > 0 {
					<-ch
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No lost releases: every app ends on its final version, and the
	// newest releases survive whatever retention was last set.
	for app := uint32(1); app <= apps; app++ {
		if v, ok := s.update.Latest(app); !ok || v != versionsPer {
			t.Errorf("app %d: Latest = (%d,%v), want (%d,true)", app, v, ok, versionsPer)
		}
		if _, ok := s.update.ImageByVersion(app, versionsPer); !ok {
			t.Errorf("app %d: final release lost", app)
		}
	}
	if n := s.update.SubscriberCount(); n != 0 {
		t.Fatalf("%d subscribers leaked", n)
	}
	st := s.update.Store().Stats()
	if st.Apps != apps {
		t.Fatalf("store apps = %d, want %d", st.Apps, apps)
	}
}
