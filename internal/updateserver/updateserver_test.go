package updateserver

import (
	"bytes"
	"errors"
	"testing"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/vendorserver"
)

type servers struct {
	suite  security.Suite
	vendor *vendorserver.Server
	update *Server
}

func newServers(t testing.TB) *servers {
	t.Helper()
	suite := security.NewTinyCrypt()
	return &servers{
		suite:  suite,
		vendor: vendorserver.New(suite, security.MustGenerateKey("us-vendor")),
		update: New(suite, security.MustGenerateKey("us-server")),
	}
}

func (s *servers) publish(t testing.TB, appID uint32, version uint16, fw []byte) {
	t.Helper()
	img, err := s.vendor.BuildImage(vendorserver.Release{
		AppID: appID, Version: version, LinkOffset: 0xFFFFFFFF, Firmware: fw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.update.Publish(img); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareFullUpdate(t *testing.T) {
	s := newServers(t)
	fw := bytes.Repeat([]byte("v2"), 5000)
	s.publish(t, 1, 2, fw)

	tok := manifest.DeviceToken{DeviceID: 0xD1, Nonce: 0x4E, CurrentVersion: 0}
	u, err := s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatalf("PrepareUpdate: %v", err)
	}
	if u.Differential {
		t.Fatal("device with CurrentVersion=0 must get a full image")
	}
	if !bytes.Equal(u.Payload, fw) {
		t.Fatal("payload is not the firmware")
	}
	m := u.Manifest
	if m.DeviceID != tok.DeviceID || m.Nonce != tok.Nonce {
		t.Fatalf("token fields not copied: %+v", m)
	}
	if !m.VerifyVendorSig(s.suite, s.vendor.PublicKey()) {
		t.Fatal("vendor signature broken by server signing")
	}
	if !m.VerifyServerSig(s.suite, s.update.PublicKey()) {
		t.Fatal("server signature does not verify")
	}
	if len(u.ManifestBytes) != manifest.EncodedSize {
		t.Fatalf("manifest bytes = %d, want %d", len(u.ManifestBytes), manifest.EncodedSize)
	}
	if u.TotalSize() != len(u.ManifestBytes)+len(u.Payload) {
		t.Fatal("TotalSize inconsistent")
	}
}

func TestPrepareDifferentialUpdate(t *testing.T) {
	s := newServers(t)
	v1 := bytes.Repeat([]byte("stable-section-"), 4000)
	v2 := bytes.Clone(v1)
	copy(v2[500:], []byte("small tweak"))
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)

	tok := manifest.DeviceToken{DeviceID: 0xD1, Nonce: 0x4E, CurrentVersion: 1}
	u, err := s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Differential {
		t.Fatal("expected a differential update")
	}
	if u.Manifest.OldVersion != 1 {
		t.Fatalf("OldVersion = %d, want 1", u.Manifest.OldVersion)
	}
	if u.Manifest.PatchSize != uint32(len(u.Payload)) {
		t.Fatalf("PatchSize = %d, payload = %d", u.Manifest.PatchSize, len(u.Payload))
	}
	if len(u.Payload) >= len(v2) {
		t.Fatalf("patch (%d) not smaller than image (%d)", len(u.Payload), len(v2))
	}
	// The payload must decompress+apply back to v2.
	patch, err := lzss.Decode(u.Payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bsdiff.Apply(v1, patch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("patch does not rebuild v2")
	}
}

func TestDifferentialFallsBackForUnknownBase(t *testing.T) {
	s := newServers(t)
	s.publish(t, 1, 5, bytes.Repeat([]byte("v5"), 1000))
	// Device claims v3, which the server never stored.
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 2, CurrentVersion: 3}
	u, err := s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if u.Differential {
		t.Fatal("must fall back to full image when base version is unknown")
	}
}

func TestDifferentialFallsBackWhenPatchNotSmaller(t *testing.T) {
	s := newServers(t)
	// Two completely unrelated random-ish images: the patch cannot beat
	// the full image.
	v1 := make([]byte, 2000)
	v2 := make([]byte, 2000)
	for i := range v1 {
		v1[i] = byte(i * 7)
		v2[i] = byte(i*13 + 5)
	}
	s.publish(t, 1, 1, v1)
	s.publish(t, 1, 2, v2)
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 2, CurrentVersion: 1}
	u, err := s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if u.Differential && len(u.Payload) >= len(v2) {
		t.Fatal("server sent a patch at least as large as the image")
	}
}

func TestNoNewUpdate(t *testing.T) {
	s := newServers(t)
	s.publish(t, 1, 2, []byte("v2"))
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 2, CurrentVersion: 2}
	if _, err := s.update.PrepareUpdate(1, tok); !errors.Is(err, ErrNoNewUpdate) {
		t.Fatalf("error = %v, want ErrNoNewUpdate", err)
	}
}

func TestUnknownApp(t *testing.T) {
	s := newServers(t)
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 2}
	if _, err := s.update.PrepareUpdate(99, tok); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("error = %v, want ErrUnknownApp", err)
	}
}

func TestPublishRejectsStaleVersion(t *testing.T) {
	s := newServers(t)
	s.publish(t, 1, 2, []byte("v2"))
	img, err := s.vendor.BuildImage(vendorserver.Release{AppID: 1, Version: 2, Firmware: []byte("dup")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.update.Publish(img); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("error = %v, want ErrStaleVersion", err)
	}
}

func TestLatestAndSubscribe(t *testing.T) {
	s := newServers(t)
	if _, ok := s.update.Latest(1); ok {
		t.Fatal("Latest on empty server must report !ok")
	}
	ch := s.update.Subscribe()
	s.publish(t, 1, 3, []byte("v3"))
	v, ok := s.update.Latest(1)
	if !ok || v != 3 {
		t.Fatalf("Latest = (%d,%v), want (3,true)", v, ok)
	}
	select {
	case ann := <-ch:
		if ann.AppID != 1 || ann.Version != 3 {
			t.Fatalf("announcement = %+v", ann)
		}
	default:
		t.Fatal("no announcement delivered")
	}
}

func TestEachRequestGetsDistinctSignature(t *testing.T) {
	s := newServers(t)
	s.publish(t, 1, 2, bytes.Repeat([]byte("fw"), 100))
	u1, err := s.update.PrepareUpdate(1, manifest.DeviceToken{DeviceID: 1, Nonce: 100})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := s.update.PrepareUpdate(1, manifest.DeviceToken{DeviceID: 1, Nonce: 200})
	if err != nil {
		t.Fatal(err)
	}
	// The nonce differs, so the signed manifests must differ: an image
	// prepared for one request cannot satisfy another.
	if bytes.Equal(u1.ManifestBytes, u2.ManifestBytes) {
		t.Fatal("two requests produced identical signed manifests")
	}
}

func TestRetentionPrunesOldReleases(t *testing.T) {
	s := newServers(t)
	s.update.SetRetention(2)
	base := bytes.Repeat([]byte("retained-release"), 1000)
	for v := uint16(1); v <= 5; v++ {
		fw := bytes.Clone(base)
		fw[0] = byte(v)
		s.publish(t, 1, v, fw)
	}
	// Only v4 and v5 remain.
	if _, ok := s.update.ImageByVersion(1, 3); ok {
		t.Fatal("pruned release still present")
	}
	if _, ok := s.update.ImageByVersion(1, 4); !ok {
		t.Fatal("retained release missing")
	}
	if v, _ := s.update.Latest(1); v != 5 {
		t.Fatalf("latest = %d, want 5", v)
	}
	// A device on a pruned version still updates — with a full image.
	tok := manifest.DeviceToken{DeviceID: 1, Nonce: 9, CurrentVersion: 2}
	u, err := s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if u.Differential {
		t.Fatal("differential update offered against a pruned base")
	}
	// A device on a retained version gets the differential path.
	tok.CurrentVersion = 4
	tok.Nonce = 10
	u, err = s.update.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Differential {
		t.Fatal("differential update not offered against a retained base")
	}
}
