package updateserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"upkit/internal/manifest"
	"upkit/internal/vendorserver"
)

// FileStore is the durable ReleaseStore: every app's releases live in
// an append-only record log under a state directory, so a restarted
// server serves the identical release set — including the exact bytes
// a device's reception journal checkpointed against mid-download.
//
// On-disk format, one file per app (`app-<hex appid>.log`), a sequence
// of CRC-framed records in publish order (big endian):
//
//	magic "UPRS" | len uint32 | payload (len bytes) | crc32
//
// where payload is the wire-encoded vendor-signed manifest
// (manifest.EncodedSize bytes) followed by the firmware, and the CRC
// covers magic, length, and payload — the same framing discipline as
// the device's reception journal (internal/slot/recjournal.go), for
// the same reason: a crash can tear at most the record being written,
// and a torn record fails its CRC instead of corrupting replay.
//
// Durability argument:
//
//   - Publish appends the record and fsyncs the log before the image
//     becomes visible to readers, so an acknowledged publish survives
//     a crash, and a crash mid-append leaves only an invisible torn
//     tail.
//   - Startup replay accepts the longest valid record prefix and
//     truncates the file there, so a torn tail costs exactly the
//     un-acknowledged publish and the log stays appendable.
//   - Pruning compacts by writing a fresh log and atomically renaming
//     it over the old one (fsync file, rename, fsync directory), so
//     every crash leaves either the complete old log or the complete
//     new one.
//
// Reads are served from an embedded sharded MemStore rebuilt at
// startup, so the request hot path is identical to the in-memory
// backend; only Publish and Prune touch the disk.
type FileStore struct {
	dir string
	mem *MemStore

	mu   sync.Mutex // guards logs map and closed flag
	logs map[uint32]*appLog

	closed bool

	// Load-time facts, written once in NewFileStore.
	loadSeconds float64
	tornTails   int
}

// appLog is one app's open record log. Its mutex serializes appends
// and compactions for that app; different apps write independently.
type appLog struct {
	mu sync.Mutex
	f  *os.File
}

// FileStore errors.
var (
	ErrStoreClosed = errors.New("updateserver: release store is closed")
)

const (
	storeRecMagic  uint32 = 0x55505253 // "UPRS"
	storeRecHeader        = 4 + 4
	// storeMaxRecord bounds a record's payload during replay: anything
	// larger is treated as corruption, not an allocation request.
	storeMaxRecord = 64 << 20
)

// NewFileStore opens (creating if needed) the release store rooted at
// dir and replays every app log into memory. Replay tolerates a torn
// tail record — the artifact of a crash mid-publish — by truncating
// the log to its longest valid prefix.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("updateserver: state dir: %w", err)
	}
	s := &FileStore{
		dir:  dir,
		mem:  NewMemStore(DefaultStoreShards),
		logs: make(map[uint32]*appLog),
	}
	start := time.Now()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("updateserver: state dir: %w", err)
	}
	for _, e := range entries {
		appID, ok := appIDFromLogName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		if err := s.replayLog(appID); err != nil {
			s.Close()
			return nil, fmt.Errorf("updateserver: replay %s: %w", e.Name(), err)
		}
	}
	s.loadSeconds = time.Since(start).Seconds()
	return s, nil
}

// Dir returns the store's state directory.
func (s *FileStore) Dir() string { return s.dir }

// logName renders an app's log file name.
func logName(appID uint32) string { return fmt.Sprintf("app-%08x.log", appID) }

// appIDFromLogName parses the app ID out of a log file name.
func appIDFromLogName(name string) (uint32, bool) {
	if !strings.HasPrefix(name, "app-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "app-"), ".log")
	v, err := strconv.ParseUint(hex, 16, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

// encodeRecord frames one image as a log record.
func encodeRecord(img *vendorserver.Image) ([]byte, error) {
	m, err := img.Manifest.MarshalBinary()
	if err != nil {
		return nil, err
	}
	n := len(m) + len(img.Firmware)
	rec := make([]byte, 0, storeRecHeader+n+4)
	rec = binary.BigEndian.AppendUint32(rec, storeRecMagic)
	rec = binary.BigEndian.AppendUint32(rec, uint32(n))
	rec = append(rec, m...)
	rec = append(rec, img.Firmware...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	return rec, nil
}

// decodeRecord parses the record starting at buf, returning the image
// and the number of bytes consumed, or ok=false when the record is
// incomplete or fails its CRC — which, at the tail of a log, is the
// signature of a write torn by a crash.
func decodeRecord(buf []byte) (*vendorserver.Image, int, bool) {
	if len(buf) < storeRecHeader {
		return nil, 0, false
	}
	if binary.BigEndian.Uint32(buf) != storeRecMagic {
		return nil, 0, false
	}
	n := int(binary.BigEndian.Uint32(buf[4:]))
	if n < manifest.EncodedSize || n > storeMaxRecord {
		return nil, 0, false
	}
	total := storeRecHeader + n + 4
	if len(buf) < total {
		return nil, 0, false
	}
	body := buf[:storeRecHeader+n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[storeRecHeader+n:]) {
		return nil, 0, false
	}
	m, err := manifest.Unmarshal(body[storeRecHeader : storeRecHeader+manifest.EncodedSize])
	if err != nil {
		return nil, 0, false
	}
	fw := body[storeRecHeader+manifest.EncodedSize:]
	if int(m.Size) != len(fw) {
		return nil, 0, false
	}
	return &vendorserver.Image{Manifest: *m, Firmware: append([]byte(nil), fw...)}, total, true
}

// replayLog loads one app's log into the memory index, truncates any
// torn tail, and leaves the file open for appends.
func (s *FileStore) replayLog(appID uint32) error {
	path := filepath.Join(s.dir, logName(appID))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return err
	}
	valid := 0
	for valid < len(data) {
		img, n, ok := decodeRecord(data[valid:])
		if !ok {
			break
		}
		// A stale record (version not newer than the one before it)
		// cannot be produced by Publish; skip it defensively so one bad
		// record does not shadow the rest of the log.
		if err := s.mem.Publish(img); err != nil && !errors.Is(err, ErrStaleVersion) {
			f.Close()
			return err
		}
		valid += n
	}
	if valid < len(data) {
		// Torn tail (or trailing garbage): drop it so the log is a
		// clean record sequence again and future appends stay parseable.
		s.tornTails++
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.logs[appID] = &appLog{f: f}
	return nil
}

// log returns (creating if needed) the open log for app.
func (s *FileStore) log(appID uint32) (*appLog, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStoreClosed
	}
	if l, ok := s.logs[appID]; ok {
		return l, nil
	}
	f, err := os.OpenFile(filepath.Join(s.dir, logName(appID)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(s.dir); err != nil { // make the new file name durable
		f.Close()
		return nil, err
	}
	l := &appLog{f: f}
	s.logs[appID] = l
	return l, nil
}

// Publish implements ReleaseStore: append the record, fsync, then make
// the image visible to readers. The per-app log lock serializes
// publishes for one app; other apps proceed in parallel.
func (s *FileStore) Publish(img *vendorserver.Image) error {
	if img == nil {
		return errors.New("updateserver: nil image")
	}
	l, err := s.log(img.Manifest.AppID)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Reject stale versions before touching the disk: a doomed record
	// must not reach the log.
	if latest, ok := s.mem.Latest(img.Manifest.AppID); ok && img.Manifest.Version <= latest.Manifest.Version {
		return fmt.Errorf("%w: v%d after v%d", ErrStaleVersion, img.Manifest.Version, latest.Manifest.Version)
	}
	rec, err := encodeRecord(img)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("updateserver: append release: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("updateserver: sync release log: %w", err)
	}
	return s.mem.Publish(img)
}

// Latest implements ReleaseStore.
func (s *FileStore) Latest(appID uint32) (*vendorserver.Image, bool) { return s.mem.Latest(appID) }

// ByVersion implements ReleaseStore.
func (s *FileStore) ByVersion(appID uint32, v uint16) (*vendorserver.Image, bool) {
	return s.mem.ByVersion(appID, v)
}

// Apps implements ReleaseStore.
func (s *FileStore) Apps() []uint32 { return s.mem.Apps() }

// Snapshot implements ReleaseStore.
func (s *FileStore) Snapshot(appID uint32) []*vendorserver.Image { return s.mem.Snapshot(appID) }

// Prune implements ReleaseStore: apps over the bound are compacted by
// writing a fresh log of the retained releases and atomically renaming
// it over the old one.
func (s *FileStore) Prune(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	var pruned []uint32
	for _, appID := range s.mem.Apps() {
		l, err := s.log(appID)
		if err != nil {
			continue // closed store or unopenable log: nothing to prune
		}
		l.mu.Lock()
		list := s.mem.Snapshot(appID)
		if len(list) > n {
			if err := s.compactLocked(appID, l, list[len(list)-n:]); err == nil {
				s.mem.pruneApp(appID, n)
				pruned = append(pruned, appID)
			}
		}
		l.mu.Unlock()
	}
	return pruned
}

// compactLocked rewrites app's log to hold exactly keep, via a synced
// temp file and an atomic rename; l.mu must be held.
func (s *FileStore) compactLocked(appID uint32, l *appLog, keep []*vendorserver.Image) error {
	path := filepath.Join(s.dir, logName(appID))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, img := range keep {
		rec, err := encodeRecord(img)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Swap the append handle onto the compacted file.
	nf, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f.Close()
	l.f = nf
	return nil
}

// Stats implements ReleaseStore.
func (s *FileStore) Stats() StoreStats {
	st := s.mem.Stats()
	st.LoadSeconds = s.loadSeconds
	st.TornTails = s.tornTails
	return st
}

// Close releases every open log handle. The in-memory index keeps
// serving reads; further Publish and Prune calls fail.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, l := range s.logs {
		l.mu.Lock()
		if err := l.f.Close(); err != nil && first == nil {
			first = err
		}
		l.mu.Unlock()
	}
	s.logs = make(map[uint32]*appLog)
	return first
}

// syncDir fsyncs a directory so renames and creations in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
