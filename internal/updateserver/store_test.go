package updateserver

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"upkit/internal/security"
	"upkit/internal/vendorserver"
)

// buildImage signs one release for store-level tests.
func buildImage(t testing.TB, vendor *vendorserver.Server, appID uint32, version uint16, fw []byte) *vendorserver.Image {
	t.Helper()
	img, err := vendor.BuildImage(vendorserver.Release{
		AppID: appID, Version: version, LinkOffset: 0xFFFFFFFF, Firmware: fw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newVendor(t testing.TB) *vendorserver.Server {
	t.Helper()
	return vendorserver.New(security.NewTinyCrypt(), security.MustGenerateKey("store-vendor"))
}

func TestMemStorePublishLatestByVersion(t *testing.T) {
	vendor := newVendor(t)
	st := NewMemStore(4)
	if _, ok := st.Latest(1); ok {
		t.Fatal("Latest on empty store must report !ok")
	}
	for v := uint16(1); v <= 3; v++ {
		if err := st.Publish(buildImage(t, vendor, 1, v, []byte{byte(v)})); err != nil {
			t.Fatal(err)
		}
	}
	img, ok := st.Latest(1)
	if !ok || img.Manifest.Version != 3 {
		t.Fatalf("Latest = (%v,%v), want v3", img, ok)
	}
	img, ok = st.ByVersion(1, 2)
	if !ok || !bytes.Equal(img.Firmware, []byte{2}) {
		t.Fatal("ByVersion(1,2) wrong")
	}
	if _, ok := st.ByVersion(1, 9); ok {
		t.Fatal("ByVersion found a version never published")
	}
	if _, ok := st.ByVersion(7, 1); ok {
		t.Fatal("ByVersion found an app never published")
	}
}

func TestMemStoreRejectsStaleAndNil(t *testing.T) {
	vendor := newVendor(t)
	st := NewMemStore(0) // default shard count
	if err := st.Publish(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := st.Publish(buildImage(t, vendor, 1, 2, []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint16{2, 1} {
		err := st.Publish(buildImage(t, vendor, 1, v, []byte("old")))
		if !errors.Is(err, ErrStaleVersion) {
			t.Fatalf("publish v%d after v2: err = %v, want ErrStaleVersion", v, err)
		}
	}
	// Other apps are unaffected by app 1's history.
	if err := st.Publish(buildImage(t, vendor, 2, 1, []byte("v1"))); err != nil {
		t.Fatal(err)
	}
}

func TestMemStorePrune(t *testing.T) {
	vendor := newVendor(t)
	st := NewMemStore(4)
	for v := uint16(1); v <= 5; v++ {
		if err := st.Publish(buildImage(t, vendor, 1, v, []byte{byte(v)})); err != nil {
			t.Fatal(err)
		}
	}
	if pruned := st.Prune(0); pruned != nil {
		t.Fatalf("Prune(0) pruned %v, want nothing", pruned)
	}
	if pruned := st.Prune(10); pruned != nil {
		t.Fatalf("Prune over capacity pruned %v, want nothing", pruned)
	}
	pruned := st.Prune(2)
	if len(pruned) != 1 || pruned[0] != 1 {
		t.Fatalf("Prune(2) = %v, want [1]", pruned)
	}
	snap := st.Snapshot(1)
	if len(snap) != 2 || snap[0].Manifest.Version != 4 || snap[1].Manifest.Version != 5 {
		t.Fatalf("after prune snapshot = %v", snap)
	}
	if _, ok := st.ByVersion(1, 3); ok {
		t.Fatal("pruned version still visible")
	}
	// Pruning is idempotent once within bounds.
	if pruned := st.Prune(2); pruned != nil {
		t.Fatalf("second Prune(2) = %v, want nothing", pruned)
	}
}

func TestMemStoreAppsSnapshotStats(t *testing.T) {
	vendor := newVendor(t)
	st := NewMemStore(4)
	apps := []uint32{7, 3, 0x2A}
	for _, app := range apps {
		for v := uint16(1); v <= 2; v++ {
			if err := st.Publish(buildImage(t, vendor, app, v, bytes.Repeat([]byte{byte(app)}, 10))); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := st.Apps()
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 0x2A {
		t.Fatalf("Apps = %v, want ascending [3 7 42]", got)
	}
	snap := st.Snapshot(7)
	if len(snap) != 2 || snap[0].Manifest.Version != 1 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// The returned slice is the caller's: mutating it must not affect
	// the store.
	snap[0] = nil
	if again := st.Snapshot(7); again[0] == nil {
		t.Fatal("Snapshot returned the store's internal slice")
	}
	stats := st.Stats()
	if stats.Apps != 3 || stats.Releases != 6 || stats.Bytes != 60 {
		t.Fatalf("Stats = %+v, want 3 apps, 6 releases, 60 bytes", stats)
	}
	if stats.LoadSeconds != 0 || stats.TornTails != 0 {
		t.Fatalf("in-memory store reported durable-load stats: %+v", stats)
	}
}

func TestMemStoreShardDistribution(t *testing.T) {
	vendor := newVendor(t)
	st := NewMemStore(8)
	// Sequential app IDs — the worst case for a naive modulo if they
	// shared a stride — must land on more than a couple of shards.
	used := make(map[*memShard]bool)
	for app := uint32(1); app <= 32; app++ {
		if err := st.Publish(buildImage(t, vendor, app, 1, []byte("fw"))); err != nil {
			t.Fatal(err)
		}
		used[st.shard(app)] = true
	}
	if len(used) < 4 {
		t.Fatalf("32 sequential apps landed on only %d of 8 shards", len(used))
	}
	// Every app must remain reachable through its shard mapping.
	for app := uint32(1); app <= 32; app++ {
		if _, ok := st.Latest(app); !ok {
			t.Fatalf("app %d lost after sharded publish", app)
		}
	}
	if got := st.Stats().Apps; got != 32 {
		t.Fatalf("Stats.Apps = %d, want 32", got)
	}
}

func TestServerWithShardsOption(t *testing.T) {
	suite := security.NewTinyCrypt()
	s := New(suite, security.MustGenerateKey("shard-opt"), WithShards(2))
	ms, ok := s.Store().(*MemStore)
	if !ok {
		t.Fatalf("default store = %T, want *MemStore", s.Store())
	}
	if len(ms.shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(ms.shards))
	}
}

func TestServerWithStoreOption(t *testing.T) {
	suite := security.NewTinyCrypt()
	st := NewMemStore(1)
	s := New(suite, security.MustGenerateKey("store-opt"), WithStore(st))
	if s.Store() != ReleaseStore(st) {
		t.Fatal("WithStore ignored")
	}
	vendor := newVendor(t)
	if err := s.Publish(buildImage(t, vendor, 1, 1, []byte("fw"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Latest(1); !ok {
		t.Fatal("publish did not reach the injected store")
	}
}

func TestStoreStatsJSONShape(t *testing.T) {
	// The stats struct is served over HTTP; pin the field names.
	st := StoreStats{Apps: 1, Releases: 2, Bytes: 3, LoadSeconds: 0.5, TornTails: 1}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"apps":1`, `"releases":2`, `"bytes":3`, `"loadSeconds":0.5`, `"tornTails":1`} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("stats JSON %s missing %s", b, want)
		}
	}
}
