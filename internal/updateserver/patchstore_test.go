package updateserver

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"upkit/internal/security"
)

// pdig derives a deterministic digest for test records.
func pdig(s string) security.Digest { return sha256.Sum256([]byte(s)) }

func openTestPatchStore(t *testing.T, dir string, maxBytes int) *PatchStore {
	t.Helper()
	ps, err := OpenPatchStore(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

func TestPatchStoreRoundTrip(t *testing.T) {
	ps := openTestPatchStore(t, t.TempDir(), 0)
	key := patchKey{appID: 0xA1, from: 1, to: 2}
	base, target := pdig("base-v1"), pdig("target-v2")
	want := patchResult{patch: bytes.Repeat([]byte("patch!"), 100), viable: true}

	if _, ok := ps.Get(key, base, target); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := ps.Put(key, base, target, want); err != nil {
		t.Fatal(err)
	}
	got, ok := ps.Get(key, base, target)
	if !ok {
		t.Fatal("Get missed a just-put record")
	}
	if !got.viable || !bytes.Equal(got.patch, want.patch) {
		t.Fatalf("round-trip mismatch: viable=%v len=%d", got.viable, len(got.patch))
	}

	// Non-viable verdicts round-trip too: the decision is the payload.
	nvKey := patchKey{appID: 0xA1, from: 2, to: 3}
	if err := ps.Put(nvKey, pdig("b2"), pdig("t3"), patchResult{}); err != nil {
		t.Fatal(err)
	}
	nv, ok := ps.Get(nvKey, pdig("b2"), pdig("t3"))
	if !ok || nv.viable || nv.patch != nil {
		t.Fatalf("non-viable round-trip: ok=%v viable=%v patch=%d bytes", ok, nv.viable, len(nv.patch))
	}

	st := ps.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPatchStoreDigestMismatchDropsEntry(t *testing.T) {
	ps := openTestPatchStore(t, t.TempDir(), 0)
	key := patchKey{appID: 7, from: 1, to: 2}
	if err := ps.Put(key, pdig("base"), pdig("target"), patchResult{patch: []byte("p"), viable: true}); err != nil {
		t.Fatal(err)
	}
	// The release store changed under the same version numbers: the
	// record is pinned to the old bytes and must not be served.
	if _, ok := ps.Get(key, pdig("base"), pdig("OTHER")); ok {
		t.Fatal("Get served a record with a mismatched target digest")
	}
	// The stale entry is dropped, not retried forever.
	if st := ps.Stats(); st.Entries != 0 {
		t.Fatalf("stale entry survived: %+v", st)
	}
	if _, ok := ps.Get(key, pdig("base"), pdig("target")); ok {
		t.Fatal("dropped entry still served")
	}
}

func TestPatchStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ps := openTestPatchStore(t, dir, 0)
	k1 := patchKey{appID: 1, from: 1, to: 2}
	k2 := patchKey{appID: 2, from: 3, to: 4}
	p1 := patchResult{patch: bytes.Repeat([]byte("one"), 50), viable: true}
	if err := ps.Put(k1, pdig("b1"), pdig("t1"), patchResult{patch: []byte("superseded"), viable: true}); err != nil {
		t.Fatal(err)
	}
	// Re-put under the same key: the later record must win at replay.
	if err := ps.Put(k1, pdig("b1"), pdig("t1"), p1); err != nil {
		t.Fatal(err)
	}
	if err := ps.Put(k2, pdig("b2"), pdig("t2"), patchResult{}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestPatchStore(t, dir, 0)
	got, ok := re.Get(k1, pdig("b1"), pdig("t1"))
	if !ok || !bytes.Equal(got.patch, p1.patch) {
		t.Fatalf("replayed record: ok=%v len=%d, want %d", ok, len(got.patch), len(p1.patch))
	}
	nv, ok := re.Get(k2, pdig("b2"), pdig("t2"))
	if !ok || nv.viable {
		t.Fatalf("replayed non-viable record: ok=%v viable=%v", ok, nv.viable)
	}
	if st := re.Stats(); st.Entries != 2 {
		t.Fatalf("replay indexed %d entries, want 2", st.Entries)
	}
}

func TestPatchStoreTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	ps := openTestPatchStore(t, dir, 0)
	key := patchKey{appID: 5, from: 1, to: 2}
	if err := ps.Put(key, pdig("b"), pdig("t"), patchResult{patch: []byte("good"), viable: true}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a valid header promising more bytes
	// than the file holds.
	path := filepath.Join(dir, patchLogName)
	full := encodePatchRecord(patchKey{appID: 5, from: 2, to: 3}, pdig("b2"), pdig("t2"),
		patchResult{patch: bytes.Repeat([]byte("x"), 200), viable: true})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	want, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	re := openTestPatchStore(t, dir, 0)
	st := re.Stats()
	if st.TornTails != 1 || st.Entries != 1 {
		t.Fatalf("after torn tail: %+v", st)
	}
	if _, ok := re.Get(key, pdig("b"), pdig("t")); !ok {
		t.Fatal("record before the torn tail was lost")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= want.Size() {
		t.Fatalf("torn tail not truncated: %d >= %d", fi.Size(), want.Size())
	}
	// The truncated log accepts new appends cleanly.
	k3 := patchKey{appID: 5, from: 3, to: 4}
	if err := re.Put(k3, pdig("b3"), pdig("t3"), patchResult{patch: []byte("after"), viable: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get(k3, pdig("b3"), pdig("t3")); !ok {
		t.Fatal("append after truncation not readable")
	}
}

func TestPatchStoreCorruptRecordDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	ps := openTestPatchStore(t, dir, 0)
	key := patchKey{appID: 9, from: 1, to: 2}
	if err := ps.Put(key, pdig("b"), pdig("t"), patchResult{patch: bytes.Repeat([]byte("q"), 64), viable: true}); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk behind the store's back.
	f, err := os.OpenFile(filepath.Join(dir, patchLogName), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(patchRecHeader+patchMetaSize+3)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok := ps.Get(key, pdig("b"), pdig("t")); ok {
		t.Fatal("Get served a record whose CRC no longer verifies")
	}
	if st := ps.Stats(); st.Entries != 0 {
		t.Fatalf("corrupt entry survived: %+v", st)
	}
}

func TestPatchStoreEvictsOldestFirst(t *testing.T) {
	patch := bytes.Repeat([]byte("e"), 1024)
	ps := openTestPatchStore(t, t.TempDir(), 3*len(patch))
	for v := uint16(1); v <= 4; v++ {
		key := patchKey{appID: 1, from: v, to: v + 1}
		if err := ps.Put(key, pdig("b"), pdig("t"), patchResult{patch: patch, viable: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := ps.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*len(patch) {
		t.Fatalf("after bound overflow: %+v", st)
	}
	if _, ok := ps.Get(patchKey{appID: 1, from: 1, to: 2}, pdig("b"), pdig("t")); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := ps.Get(patchKey{appID: 1, from: 4, to: 5}, pdig("b"), pdig("t")); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func TestPatchStoreReplayEnforcesBound(t *testing.T) {
	dir := t.TempDir()
	patch := bytes.Repeat([]byte("r"), 1024)
	ps := openTestPatchStore(t, dir, 0)
	for v := uint16(1); v <= 4; v++ {
		if err := ps.Put(patchKey{appID: 1, from: v, to: v + 1}, pdig("b"), pdig("t"),
			patchResult{patch: patch, viable: true}); err != nil {
			t.Fatal(err)
		}
	}
	ps.Close()

	// Reopen under a shrunken bound: replay must evict down to it.
	re := openTestPatchStore(t, dir, 2*len(patch))
	st := re.Stats()
	if st.Entries != 2 || st.Bytes > 2*len(patch) {
		t.Fatalf("replay ignored the bound: %+v", st)
	}
	if _, ok := re.Get(patchKey{appID: 1, from: 4, to: 5}, pdig("b"), pdig("t")); !ok {
		t.Fatal("newest entry missing after bounded replay")
	}
}

func TestPatchStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	ps := openTestPatchStore(t, dir, DefaultPatchStoreBytes)
	key := patchKey{appID: 1, from: 1, to: 2}
	// Rewrite one key until dead bytes dominate a >1MB log.
	patch := bytes.Repeat([]byte("c"), 300<<10)
	for i := 0; i < 6; i++ {
		patch[0] = byte(i) // distinct bytes per generation
		if err := ps.Put(key, pdig("b"), pdig("t"), patchResult{patch: patch, viable: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := ps.Stats()
	if st.Compactions == 0 {
		t.Fatalf("log never compacted: %+v", st)
	}
	// Compaction fired at least once, so the log holds far fewer than
	// the six appended records (dead records re-accumulate only below
	// the 1MB re-trigger threshold).
	recSize := patchRecHeader + patchMetaSize + len(patch) + 4
	if st.FileBytes > 3*recSize {
		t.Fatalf("compaction left a bloated log: %+v", st)
	}
	got, ok := ps.Get(key, pdig("b"), pdig("t"))
	if !ok || !bytes.Equal(got.patch, patch) {
		t.Fatal("latest record unreadable after compaction")
	}
	ps.Close()

	// The compacted log replays.
	re := openTestPatchStore(t, dir, 0)
	if got, ok := re.Get(key, pdig("b"), pdig("t")); !ok || !bytes.Equal(got.patch, patch) {
		t.Fatal("compacted log did not replay the live record")
	}
}

func TestPatchStoreInvalidate(t *testing.T) {
	ps := openTestPatchStore(t, t.TempDir(), 0)
	if err := ps.Put(patchKey{appID: 1, from: 1, to: 2}, pdig("b"), pdig("t"),
		patchResult{patch: []byte("a1"), viable: true}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Put(patchKey{appID: 2, from: 1, to: 2}, pdig("b"), pdig("t"),
		patchResult{patch: []byte("a2"), viable: true}); err != nil {
		t.Fatal(err)
	}
	ps.Invalidate(1)
	if _, ok := ps.Get(patchKey{appID: 1, from: 1, to: 2}, pdig("b"), pdig("t")); ok {
		t.Fatal("invalidated app still served")
	}
	if _, ok := ps.Get(patchKey{appID: 2, from: 1, to: 2}, pdig("b"), pdig("t")); !ok {
		t.Fatal("invalidation leaked onto another app")
	}
}

func TestPatchStoreClosed(t *testing.T) {
	ps := openTestPatchStore(t, t.TempDir(), 0)
	key := patchKey{appID: 1, from: 1, to: 2}
	if err := ps.Put(key, pdig("b"), pdig("t"), patchResult{patch: []byte("p"), viable: true}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
	if err := ps.Put(key, pdig("b"), pdig("t"), patchResult{}); err != ErrPatchStoreClosed {
		t.Fatalf("Put after Close = %v, want ErrPatchStoreClosed", err)
	}
	if _, ok := ps.Get(key, pdig("b"), pdig("t")); ok {
		t.Fatal("Get after Close reported a hit")
	}
}
