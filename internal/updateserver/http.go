package updateserver

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"upkit/internal/httpapi"
	"upkit/internal/manifest"
	"upkit/internal/telemetry"
	"upkit/internal/vendorserver"
)

// HTTP API — the Internet-facing surface of the update server that
// smartphones and gateways use in the push approach (Fig. 2, steps 3–7:
// announce, receive the device token, return the double-signed image),
// plus an admin plane over the release store.
//
//	GET  /api/v1/version?app=<hex>     → {"version": n}
//	POST /api/v1/update?app=<hex>      body: device-token JSON
//	                                   → update JSON (manifest + payload,
//	                                     base64); 204 No Content when the
//	                                     device already runs the latest
//	                                     version (404 stays reserved for
//	                                     unknown apps)
//	GET  /api/v1/apps                  → release-store listing JSON
//	POST /api/v1/images                body: vendor-signed image
//	                                   (manifest || firmware, as built by
//	                                   upkit-sign), application/octet-stream
//	                                   → 201 {"appId": n, "version": n};
//	                                     409 when the version is not newer
//	                                     than the stored latest
//	GET  /api/v1/stats                 → patch-cache counters JSON
//	GET  /api/v1/metrics               → Prometheus text exposition
//
// Every route is registered on one httpapi.Table, so the whole
// /api/v1 surface shares the JSON error envelope
// ({"error":{"code":...,"message":...}}), answers 405 with an Allow
// header on wrong methods, and returns 413 for any oversized request
// body. Additional route sets (the campaign control plane) mount onto
// the same table via WithRoutes.
//
// Every request body is bounded with http.MaxBytesReader and every
// body-carrying endpoint checks its Content-Type. The images endpoint
// cannot verify the vendor signature (the update server holds no
// vendor key — devices do, end-to-end), so deployments must gate it
// like any admin surface.
//
// The CoAP endpoint (internal/coap) serves pulling devices directly;
// this HTTP endpoint serves proxies, which then forward the image over
// their local connection to the device.

// Request-body bounds.
const (
	// maxTokenBody bounds the device-token JSON on POST /api/v1/update.
	maxTokenBody = 4096
	// maxImageBody bounds a published image (manifest + firmware) on
	// POST /api/v1/images — generous for constrained-device firmware.
	maxImageBody = 32 << 20
)

// tokenJSON is the wire form of a device token on the HTTP API.
type tokenJSON struct {
	DeviceID       uint32 `json:"deviceId"`
	Nonce          uint32 `json:"nonce"`
	CurrentVersion uint16 `json:"currentVersion"`
}

// updateJSON is the wire form of a prepared update.
type updateJSON struct {
	Version      uint16 `json:"version"`
	Differential bool   `json:"differential"`
	Encrypted    bool   `json:"encrypted"`
	Manifest     string `json:"manifest"` // base64, manifest.EncodedSize bytes
	Payload      string `json:"payload"`  // base64
}

// versionJSON is the announce/poll response.
type versionJSON struct {
	Version uint16 `json:"version"`
}

// AppInfo is one app's row in the release-store listing
// (GET /api/v1/apps).
type AppInfo struct {
	AppID    uint32 `json:"appId"`
	Latest   uint16 `json:"latest"`
	Releases int    `json:"releases"`
}

// appsJSON is the release-store listing response.
type appsJSON struct {
	Apps []AppInfo `json:"apps"`
}

// publishedJSON is the successful publish response.
type publishedJSON struct {
	AppID   uint32 `json:"appId"`
	Version uint16 `json:"version"`
}

// Handler returns the HTTP handler exposing the server's API: one
// httpapi.Table carrying the update/publish endpoints plus any route
// sets mounted via WithRoutes (the campaign control plane). Every
// request is counted in upkit_http_requests_total{path,code}.
func (s *Server) Handler() http.Handler {
	t := httpapi.NewTable()
	t.HandleFunc(http.MethodGet, "/api/v1/version", s.handleHTTPVersion)
	t.HandleFunc(http.MethodPost, "/api/v1/update", s.handleHTTPUpdate)
	t.HandleFunc(http.MethodGet, "/api/v1/apps", s.handleHTTPApps)
	t.HandleFunc(http.MethodPost, "/api/v1/images", s.handleHTTPPublish)
	t.HandleFunc(http.MethodGet, "/api/v1/stats", s.handleHTTPStats)
	t.HandleFunc(http.MethodGet, "/api/v1/keys", s.handleHTTPKeys)
	t.Handle(http.MethodGet, "/api/v1/metrics", s.tel.Handler())
	for _, mount := range s.mounts {
		mount(t)
	}
	return s.countRequests(t)
}

// statusRecorder captures the status code a handler writes so the
// middleware can label the request counter with it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.tel.Counter("upkit_http_requests_total", "HTTP API requests by path and status code.",
			telemetry.L("path", r.URL.Path),
			telemetry.L("code", strconv.Itoa(rec.code))).Inc()
	})
}

// appFromQuery parses the hex app parameter.
func appFromQuery(r *http.Request) (uint32, error) {
	raw := r.URL.Query().Get("app")
	if raw == "" {
		return 0, fmt.Errorf("missing app parameter")
	}
	v, err := strconv.ParseUint(raw, 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad app parameter: %w", err)
	}
	return uint32(v), nil
}

func (s *Server) handleHTTPVersion(w http.ResponseWriter, r *http.Request) {
	appID, err := appFromQuery(r)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	v, ok := s.Latest(appID)
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, "unknown_app", "unknown app")
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, versionJSON{Version: v})
}

func (s *Server) handleHTTPUpdate(w http.ResponseWriter, r *http.Request) {
	appID, err := appFromQuery(r)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	var tok tokenJSON
	// DecodeJSON classifies an oversized body as 413, a wrong media
	// type as 415, and malformed JSON as 400 — the same discipline as
	// every other body-carrying endpoint on the table.
	if !httpapi.DecodeJSON(w, r, maxTokenBody, &tok) {
		return
	}
	u, err := s.PrepareUpdate(appID, manifest.DeviceToken{
		DeviceID:       tok.DeviceID,
		Nonce:          tok.Nonce,
		CurrentVersion: tok.CurrentVersion,
	})
	switch {
	case err == nil:
	case errors.Is(err, ErrNoNewUpdate):
		// Success-shaped: the device is already current. Proxies polling
		// on behalf of up-to-date devices must be able to tell this
		// apart from an unknown app (404 below).
		w.WriteHeader(http.StatusNoContent)
		return
	case errors.Is(err, ErrUnknownApp):
		httpapi.WriteError(w, http.StatusNotFound, "unknown_app", err.Error())
		return
	default:
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, updateJSON{
		Version:      u.Manifest.Version,
		Differential: u.Differential,
		Encrypted:    u.Encrypted,
		Manifest:     base64.StdEncoding.EncodeToString(u.ManifestBytes),
		Payload:      base64.StdEncoding.EncodeToString(u.Payload),
	})
}

// handleHTTPKeys serves the encoded key bundle (root-signed key records
// plus the current revocation list). 204 until a bundle is published:
// deployments without key lifecycle simply have nothing to distribute.
func (s *Server) handleHTTPKeys(w http.ResponseWriter, _ *http.Request) {
	b := s.KeyBundle()
	if len(b) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (s *Server) handleHTTPApps(w http.ResponseWriter, _ *http.Request) {
	apps := s.store.Apps()
	out := appsJSON{Apps: make([]AppInfo, 0, len(apps))}
	for _, app := range apps {
		list := s.store.Snapshot(app)
		if len(list) == 0 {
			continue // pruned between Apps and Snapshot
		}
		out.Apps = append(out.Apps, AppInfo{
			AppID:    app,
			Latest:   list[len(list)-1].Manifest.Version,
			Releases: len(list),
		})
	}
	httpapi.WriteJSON(w, http.StatusOK, out)
}

func (s *Server) handleHTTPPublish(w http.ResponseWriter, r *http.Request) {
	if !httpapi.RequireContentType(w, r, "application/octet-stream") {
		return
	}
	body, ok := httpapi.ReadBody(w, r, maxImageBody)
	if !ok {
		return
	}
	if len(body) == 0 {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "empty image body")
		return
	}
	if len(body) < manifest.EncodedSize {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "image smaller than a manifest")
		return
	}
	m, err := manifest.Unmarshal(body[:manifest.EncodedSize])
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "bad manifest: "+err.Error())
		return
	}
	fw := body[manifest.EncodedSize:]
	if int(m.Size) != len(fw) {
		httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"manifest says %d firmware bytes, body has %d", m.Size, len(fw))
		return
	}
	img := &vendorserver.Image{Manifest: *m, Firmware: fw}
	switch err := s.Publish(img); {
	case err == nil:
	case errors.Is(err, ErrStaleVersion):
		httpapi.WriteError(w, http.StatusConflict, httpapi.CodeConflict, err.Error())
		return
	default:
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	httpapi.WriteJSON(w, http.StatusCreated, publishedJSON{AppID: m.AppID, Version: m.Version})
}

func (s *Server) handleHTTPStats(w http.ResponseWriter, _ *http.Request) {
	httpapi.WriteJSON(w, http.StatusOK, s.Stats())
}

// HTTPClient fetches updates from a remote update server's HTTP API —
// the smartphone side of the Internet hop.
type HTTPClient struct {
	// BaseURL is the server root, e.g. "https://updates.example.com".
	BaseURL string
	// Client is the http.Client to use; nil selects http.DefaultClient.
	Client *http.Client
}

func (c *HTTPClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Latest polls the advertised version. The context cancels the
// in-flight request.
func (c *HTTPClient) Latest(ctx context.Context, appID uint32) (uint16, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/version?app=%x", c.BaseURL, appID), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("updateserver: version: HTTP %d", resp.StatusCode)
	}
	var v versionJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, err
	}
	return v.Version, nil
}

// Stats fetches the server's patch-cache counters.
func (c *HTTPClient) Stats(ctx context.Context) (CacheStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/stats", nil)
	if err != nil {
		return CacheStats{}, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return CacheStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CacheStats{}, fmt.Errorf("updateserver: stats: HTTP %d", resp.StatusCode)
	}
	var st CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return CacheStats{}, err
	}
	return st, nil
}

// Apps fetches the server's release-store listing.
func (c *HTTPClient) Apps(ctx context.Context) ([]AppInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v1/apps", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("updateserver: apps: HTTP %d", resp.StatusCode)
	}
	var out appsJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Apps, nil
}

// PublishImage uploads a vendor-signed image to the server's admin
// endpoint. A version not newer than the stored latest returns
// ErrStaleVersion, mirroring the in-process Publish contract.
func (c *HTTPClient) PublishImage(ctx context.Context, img *vendorserver.Image) error {
	if img == nil {
		return errors.New("updateserver: nil image")
	}
	m, err := img.Manifest.MarshalBinary()
	if err != nil {
		return err
	}
	body := append(m, img.Firmware...)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/api/v1/images", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: server refused v%d", ErrStaleVersion, img.Manifest.Version)
	default:
		return fmt.Errorf("updateserver: publish: HTTP %d", resp.StatusCode)
	}
}

// Request fetches the double-signed update for a device token. When
// the device already runs the latest version (HTTP 204), it returns
// ErrNoNewUpdate, mirroring the in-process PrepareUpdate contract.
// The context cancels the in-flight request.
func (c *HTTPClient) Request(ctx context.Context, appID uint32, tok manifest.DeviceToken) (*Update, error) {
	body, err := json.Marshal(tokenJSON{
		DeviceID:       tok.DeviceID,
		Nonce:          tok.Nonce,
		CurrentVersion: tok.CurrentVersion,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/api/v1/update?app=%x", c.BaseURL, appID), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, ErrNoNewUpdate
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("updateserver: update: HTTP %d", resp.StatusCode)
	}
	var u updateJSON
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		return nil, err
	}
	manifestBytes, err := base64.StdEncoding.DecodeString(u.Manifest)
	if err != nil {
		return nil, fmt.Errorf("updateserver: manifest decode: %w", err)
	}
	payload, err := base64.StdEncoding.DecodeString(u.Payload)
	if err != nil {
		return nil, fmt.Errorf("updateserver: payload decode: %w", err)
	}
	m, err := manifest.Unmarshal(manifestBytes)
	if err != nil {
		return nil, err
	}
	return &Update{
		Manifest:      *m,
		ManifestBytes: manifestBytes,
		Payload:       payload,
		Differential:  u.Differential,
		Encrypted:     u.Encrypted,
	}, nil
}
