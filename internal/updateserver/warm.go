package updateserver

import (
	"fmt"
	"sort"
	"sync"
)

// Patch warming: the server half of the patch farm.
//
// A fleet campaign is visible to the serve path as a burst of requests
// on a handful of (app, fromVersion) pairs. The server records that
// census as it serves (pairTracker), and exposes two primitives the
// farm builds on: HotPairs, the observed pairs resolved against the
// current latest version, and WarmPatch, which forces one pair's
// differential into the cache tiers (memory LRU + durable patch store)
// through the same singleflight path requests use — so a farm worker
// and a device request racing on the same cold pair still cost one
// bsdiff between them.

// maxTrackedPairs bounds the observed-pair census. 4096 (app, from)
// pairs is far beyond any realistic concurrent campaign spread; beyond
// it new pairs are dropped rather than evicting hot ones.
const maxTrackedPairs = 4096

// fromKey is one observed (app, fromVersion) population.
type fromKey struct {
	appID uint32
	from  uint16
}

// pairTracker counts differential requests per (app, fromVersion). It
// is a single short critical section on the request path — trivial
// next to the ECDSA signature that follows it.
type pairTracker struct {
	mu   sync.Mutex
	seen map[fromKey]uint64
}

func (t *pairTracker) record(appID uint32, from uint16) {
	k := fromKey{appID: appID, from: from}
	t.mu.Lock()
	if t.seen == nil {
		t.seen = make(map[fromKey]uint64)
	}
	if _, ok := t.seen[k]; ok || len(t.seen) < maxTrackedPairs {
		t.seen[k]++
	}
	t.mu.Unlock()
}

// snapshot copies the census.
func (t *pairTracker) snapshot() map[fromKey]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[fromKey]uint64, len(t.seen))
	for k, v := range t.seen {
		out[k] = v
	}
	return out
}

// VersionPair identifies one (from → to) differential for an app. To
// may be zero in warm requests, meaning "the latest version at warm
// time".
type VersionPair struct {
	AppID uint32 `json:"app"`
	From  uint16 `json:"from"`
	To    uint16 `json:"to,omitempty"`
	// Requests is the observed request count behind the pair (HotPairs
	// results) or the operator-supplied device weight (census warm
	// requests); it orders warming, hottest first.
	Requests uint64 `json:"requests,omitempty"`
}

// HotPairs returns the observed differential request pairs, hottest
// first, with To resolved to each app's current latest version — the
// feed the patch farm warms after a new release supersedes the pairs
// devices were asking for. Pairs whose From is no longer below the
// latest (or whose app lost all releases) are omitted. max <= 0
// returns everything.
func (s *Server) HotPairs(max int) []VersionPair {
	seen := s.pairs.snapshot()
	latest := make(map[uint32]uint16)
	out := make([]VersionPair, 0, len(seen))
	for k, n := range seen {
		to, ok := latest[k.appID]
		if !ok {
			if img, exists := s.store.Latest(k.appID); exists {
				to = img.Manifest.Version
			}
			latest[k.appID] = to // 0 marks a vanished app
		}
		if to == 0 || k.from >= to {
			continue
		}
		out = append(out, VersionPair{AppID: k.appID, From: k.from, To: to, Requests: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		if out[i].AppID != out[j].AppID {
			return out[i].AppID < out[j].AppID
		}
		return out[i].From < out[j].From
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// WarmResult reports what WarmPatch found or did.
type WarmResult struct {
	// To is the resolved target version (the latest at warm time when
	// the request left it zero).
	To uint16 `json:"to"`
	// AlreadyResident reports that the pair was already in the memory
	// tier — the warm was a no-op.
	AlreadyResident bool `json:"alreadyResident"`
	// Viable reports whether a differential beats the full image for
	// this pair; non-viable verdicts are cached and persisted too.
	Viable bool `json:"viable"`
	// PatchBytes is the compressed patch size (0 when non-viable).
	PatchBytes int `json:"patchBytes"`
}

// WarmPatch ensures the (from → to) differential for app is resident
// in the cache tiers, computing it if no tier holds it. to == 0 targets
// the current latest version. It runs through the same singleflight
// path as device requests, so warming never duplicates an in-flight
// request's diff (and vice versa). Errors report unknown apps,
// unstored versions, and non-upgrade pairs.
func (s *Server) WarmPatch(appID uint32, from, to uint16) (WarmResult, error) {
	latest, ok := s.store.Latest(appID)
	if !ok {
		return WarmResult{}, fmt.Errorf("%w: %#x", ErrUnknownApp, appID)
	}
	target := latest
	if to == 0 {
		to = latest.Manifest.Version
	} else if to != latest.Manifest.Version {
		if target, ok = s.store.ByVersion(appID, to); !ok {
			return WarmResult{}, fmt.Errorf("updateserver: warm: no stored v%d for app %#x", to, appID)
		}
	}
	if from >= to {
		return WarmResult{}, fmt.Errorf("updateserver: warm: v%d→v%d is not an upgrade", from, to)
	}
	base, ok := s.store.ByVersion(appID, from)
	if !ok {
		return WarmResult{}, fmt.Errorf("updateserver: warm: no stored base v%d for app %#x", from, appID)
	}
	pk := patchKey{appID: appID, from: from, to: to}
	res, already := s.cache.warm(pk, base.Manifest.FirmwareDigest, target.Manifest.FirmwareDigest,
		base.Firmware, target.Firmware)
	return WarmResult{
		To:              to,
		AlreadyResident: already,
		Viable:          res.viable,
		PatchBytes:      len(res.patch),
	}, nil
}
