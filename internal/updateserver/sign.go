package updateserver

import (
	"runtime"
	"sync"

	"upkit/internal/manifest"
	"upkit/internal/security"
)

// signManifest applies the update server's signature to m with key —
// through the parallel signing pool when WithSigners armed one, inline
// otherwise. The digest over the server signing bytes is computed on
// the request goroutine either way; only the ECDSA scalar work moves.
func (s *Server) signManifest(m *manifest.Manifest, key *security.PrivateKey) error {
	if s.signers == nil {
		return m.SignServer(s.suite, key)
	}
	sig, err := s.signers.sign(key, s.suite.Digest(m.ServerSigningBytes()))
	if err != nil {
		return err
	}
	m.ServerSig = sig
	return nil
}

// Parallel manifest signing.
//
// The second ECDSA signature is the one per-request cost PrepareUpdate
// cannot cache away: it binds the device ID and nonce, so it is
// different for every request by design (§III-B). Under heavy
// concurrent traffic the naive arrangement — every request goroutine
// carrying its own ECDSA computation — oversubscribes the CPUs: with
// thousands of in-flight HTTP handlers the scheduler round-robins
// P-256 scalar multiplications across far more goroutines than cores,
// trashing caches and inflating tail latency.
//
// signerPool bounds the concurrency instead: a fixed set of worker
// goroutines (defaulting to GOMAXPROCS) owns all signing work, fed by
// a buffered queue. The queue is the batching mechanism — a worker
// that finishes one signature immediately picks up the next without
// parking, so bursts are signed back-to-back on a warm cache while
// request goroutines merely block on their reply. Request frames are
// recycled through a sync.Pool so the steady state allocates nothing
// per signature.
//
// The pool is optional (WithSigners); without it PrepareUpdate signs
// inline, which remains the right call for low-concurrency callers.

// signReq is one signing request; done is buffered so the worker's
// reply never blocks.
type signReq struct {
	key    *security.PrivateKey
	digest security.Digest
	sig    security.Signature
	err    error
	done   chan struct{}
}

// signerPool is the bounded signing worker pool.
type signerPool struct {
	suite security.Suite
	reqs  chan *signReq
	quit  chan struct{}
	wg    sync.WaitGroup
	free  sync.Pool

	// mu's read side brackets every enqueue, so Close's write lock
	// guarantees no send can race the quit broadcast: once closed is
	// observed, callers sign inline.
	mu     sync.RWMutex
	closed bool
}

// newSignerPool starts workers signing under suite; n <= 0 selects
// GOMAXPROCS.
func newSignerPool(suite security.Suite, n int) *signerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &signerPool{
		suite: suite,
		reqs:  make(chan *signReq, 4*n),
		quit:  make(chan struct{}),
	}
	p.free.New = func() any { return &signReq{done: make(chan struct{}, 1)} }
	p.wg.Add(n)
	for range n {
		go p.worker()
	}
	return p
}

func (p *signerPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case req := <-p.reqs:
			req.sig, req.err = p.suite.Sign(req.key, req.digest)
			req.done <- struct{}{}
		case <-p.quit:
			// Drain what was queued before the shutdown: every enqueued
			// request has a caller blocked on its reply.
			for {
				select {
				case req := <-p.reqs:
					req.sig, req.err = p.suite.Sign(req.key, req.digest)
					req.done <- struct{}{}
				default:
					return
				}
			}
		}
	}
}

// sign dispatches one digest to the pool and blocks for the signature.
// After Close it degrades to inline signing, so no caller is ever
// stranded.
func (p *signerPool) sign(key *security.PrivateKey, digest security.Digest) (security.Signature, error) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return p.suite.Sign(key, digest)
	}
	req := p.free.Get().(*signReq)
	req.key, req.digest = key, digest
	p.reqs <- req
	p.mu.RUnlock()
	<-req.done
	sig, err := req.sig, req.err
	req.key = nil
	p.free.Put(req)
	return sig, err
}

// Close stops the workers after they drain the queue. Idempotent.
func (p *signerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}
