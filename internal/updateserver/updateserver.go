// Package updateserver implements UpKit's update server: the Internet-
// facing component that stores vendor-signed images, announces new
// versions, and — per request — performs the double-signature step that
// grants update freshness (§III-A/B).
//
// For each device request the server receives a device token (device
// ID, nonce, current version), copies it into the manifest, decides
// between a full image and a differential update (bsdiff + LZSS against
// the version the device reports), and signs the result with its own
// key. The signed image is then valid for exactly that device and that
// request, independent of transport security.
//
// The server itself is a stateless prepare pipeline: all release state
// lives behind the ReleaseStore interface (sharded in-memory by
// default, durable on disk via FileStore), and announcements fan out
// through an announce.Bus — so the repository and the notification
// plane can each be swapped or shared without touching the pipeline.
package updateserver

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"upkit/internal/announce"
	"upkit/internal/dist"
	"upkit/internal/httpapi"
	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/telemetry"
	"upkit/internal/vendorserver"
)

// Server errors.
var (
	ErrUnknownApp   = errors.New("updateserver: no releases for app")
	ErrNoNewUpdate  = errors.New("updateserver: device already runs the latest version")
	ErrStaleVersion = errors.New("updateserver: release version not newer than stored")
)

// Update is a prepared, double-signed update image ready for transfer.
type Update struct {
	// Manifest is the fully signed manifest.
	Manifest manifest.Manifest
	// ManifestBytes is its wire encoding (manifest.EncodedSize bytes).
	ManifestBytes []byte
	// Payload is the transfer payload: the full firmware, or the
	// LZSS-compressed bsdiff patch for differential updates.
	Payload []byte
	// Differential reports which of the two the payload is.
	Differential bool
	// Encrypted reports whether Payload is AES-CTR ciphertext.
	Encrypted bool
	// PayloadName is the content address of Payload in the server's
	// block registry: any node holding bytes with this name — origin,
	// caching proxy, updated peer — can serve the transfer. Unencrypted
	// payloads are byte-identical across devices asking for the same
	// version pair, so their names coincide and caches share them;
	// encrypted payloads carry a fresh IV per device and stay private.
	PayloadName dist.Name
}

// TotalSize is the number of bytes that travel to the device.
func (u *Update) TotalSize() int { return len(u.ManifestBytes) + len(u.Payload) }

// Announcement notifies subscribers that a new version is available
// (step 3 of Fig. 2).
type Announcement struct {
	AppID   uint32
	Version uint16
}

// Server is the update server.
type Server struct {
	suite security.Suite

	// keyMu guards the per-request signing key, its ID, and the key
	// bundle: rotation swaps all three while requests are in flight.
	keyMu  sync.RWMutex
	key    *security.PrivateKey
	keyID  uint32
	bundle []byte

	// store holds the published releases; the server keeps no release
	// state of its own.
	store ReleaseStore
	// bus fans new-release announcements out to subscribers.
	bus *announce.Bus[Announcement]

	// encMu guards the payload-encryption configuration, the server's
	// only remaining mutable state.
	encMu      sync.RWMutex
	payloadKey []byte
	entropy    io.Reader

	// retain bounds stored releases per app; 0 keeps everything.
	retainMu sync.Mutex
	retain   int

	// shards configures the default in-memory store's shard count;
	// ignored when WithStore injects a backend.
	shards int

	// cache memoises differential payloads per (app, from, to) pair
	// with singleflight dedup; see cache.go. It has its own lock and is
	// independent of the store's locks.
	cache *patchCache

	// patchStore, when non-nil, is the durable tier behind the patch
	// cache (WithPatchStore); the cache holds the same pointer. The
	// injector keeps ownership and closes it on shutdown.
	patchStore *PatchStore

	// pairs tracks the (app, fromVersion) population behind observed
	// differential requests — the census the patch farm warms from.
	pairs pairTracker

	// signers, when non-nil, is the bounded parallel signing pool
	// (WithSigners); nil signs inline on the request goroutine.
	signers *signerPool
	// signerCount holds WithSigners' argument until New builds the pool.
	signerCount int

	// blocks content-addresses every prepared *fleet-shared* payload so
	// the named-block serve path (CoAP /upkit/blocks, caching proxies,
	// peers) can serve it by name; see internal/dist. privBlocks holds
	// per-device encrypted payloads: each is a unique, single-consumer
	// name, so segregating them keeps an encrypted prepare storm from
	// evicting the blocks a whole unencrypted fleet shares.
	blocks     *dist.Registry
	privBlocks *dist.Registry

	// tel is never nil: New attaches a private registry unless
	// WithTelemetry injects a shared one. met holds the pre-resolved
	// handles for the request hot path.
	tel *telemetry.Registry
	met serverMetrics

	// mounts are extra route sets (e.g. the campaign control plane)
	// registered onto the Handler's route table; see WithRoutes.
	mounts []func(*httpapi.Table)
}

// serverMetrics are the update server's pre-resolved metric handles.
type serverMetrics struct {
	reqDifferential *telemetry.Counter
	reqFull         *telemetry.Counter
	reqNoUpdate     *telemetry.Counter
	reqUnknownApp   *telemetry.Counter
	reqError        *telemetry.Counter
	published       *telemetry.Counter
	payloadBytes    *telemetry.Histogram
	prepareSeconds  *telemetry.Histogram
}

// Option configures a Server at construction time.
type Option func(*Server)

// WithPatchCacheSize bounds the differential-patch cache to n bytes;
// n <= 0 disables caching (and singleflight dedup) entirely. The
// default is DefaultPatchCacheBytes.
func WithPatchCacheSize(n int) Option {
	return func(s *Server) { s.cache.setMaxBytes(n) }
}

// WithBlockStoreSize bounds the named-block registry to n bytes
// (DefaultRegistryBytes when unset). The registry keeps prepared
// payloads addressable by content name for the block serve path; the
// LRU bound never drops the most recently prepared payload, so the
// origin can always serve what it just signed.
func WithBlockStoreSize(n int) Option {
	return func(s *Server) { s.blocks = dist.NewRegistry(n) }
}

// WithPrivateBlockStoreSize bounds the registry of per-device
// encrypted payloads to n bytes (DefaultPrivateRegistryBytes when
// unset). Encrypted prepares produce a fresh, never-shared name per
// device, so they live in their own small LRU instead of churning the
// fleet-shared block registry.
func WithPrivateBlockStoreSize(n int) Option {
	return func(s *Server) { s.privBlocks = dist.NewRegistry(n) }
}

// WithPatchStore attaches a durable patch store behind the in-memory
// patch cache: memory misses probe it before diffing, fresh
// computations are persisted to it, and a restarted server given the
// same store serves warm patches without redoing a single bsdiff. The
// caller keeps ownership and closes the store on shutdown, mirroring
// WithStore.
func WithPatchStore(ps *PatchStore) Option {
	return func(s *Server) {
		if ps != nil {
			s.patchStore = ps
			s.cache.setDisk(ps)
		}
	}
}

// WithSigners arms a pool of n parallel manifest signers (n <= 0
// selects GOMAXPROCS): per-request ECDSA signatures are computed by a
// bounded worker set fed from a buffered queue instead of on every
// request goroutine's stack, which keeps tail latency flat when
// thousands of prepares are in flight. Call Close on shutdown to stop
// the workers.
func WithSigners(n int) Option {
	return func(s *Server) {
		if n <= 0 {
			n = -1 // explicit "use GOMAXPROCS"
		}
		s.signerCount = n
	}
}

// WithRetention bounds the number of releases kept per app; 0 (the
// default) keeps everything.
func WithRetention(n int) Option {
	return func(s *Server) { s.retain = n }
}

// WithStore backs the server with st instead of the default sharded
// in-memory store. Pass a FileStore to make published releases survive
// a server restart.
func WithStore(st ReleaseStore) Option {
	return func(s *Server) {
		if st != nil {
			s.store = st
		}
	}
}

// WithShards sets the shard count of the default in-memory store
// (DefaultStoreShards when unset). It has no effect when WithStore
// injects a backend.
func WithShards(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.shards = n
		}
	}
}

// WithRoutes mounts an additional route set onto the server's HTTP
// route table — the hook the campaign control plane uses to appear on
// the same mux, same error envelope, same request counting as the
// update API. The registrar runs once per Handler call.
func WithRoutes(register func(*httpapi.Table)) Option {
	return func(s *Server) {
		if register != nil {
			s.mounts = append(s.mounts, register)
		}
	}
}

// WithTelemetry attaches a shared metrics registry. Every deployment
// component given the same registry contributes to one scrape (GET
// /api/v1/metrics) and one span tracer; without this option the server
// creates a private registry, so telemetry is always on.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.tel = reg
		}
	}
}

// SetRetention bounds the number of releases kept per app, pruning
// immediately when the new bound is tighter than the stored history.
// Pruning a release removes it as a differential base — devices
// reporting that version fall back to full images (the paper's token
// field already covers this, §III-B) — and drops the pruned app's
// cached patches.
//
// Deprecated: pass WithRetention to New instead; this remains for
// callers that re-tune a running server.
func (s *Server) SetRetention(n int) {
	s.retainMu.Lock()
	s.retain = n
	s.retainMu.Unlock()
	for _, app := range s.store.Prune(n) {
		s.cache.invalidateApp(app)
	}
}

// SetPatchCacheSize rebounds the differential-patch cache to n bytes.
// n <= 0 disables caching (and singleflight dedup) entirely — the
// reference configuration the benchmarks compare against. New servers
// start with DefaultPatchCacheBytes.
//
// Deprecated: pass WithPatchCacheSize to New instead; this remains for
// callers that re-tune a running server.
func (s *Server) SetPatchCacheSize(n int) { s.cache.setMaxBytes(n) }

// Stats snapshots the patch cache's hit/miss/singleflight counters.
func (s *Server) Stats() CacheStats { return s.cache.stats() }

// Store returns the server's release store (never nil) — the durable
// half of the server, useful for admin surfaces and close-on-shutdown.
func (s *Server) Store() ReleaseStore { return s.store }

// Blocks returns the server's fleet-shared named-block registry (never
// nil): the store behind the origin's block server for unencrypted
// payloads, and the upstream that caching proxies fill from.
func (s *Server) Blocks() *dist.Registry { return s.blocks }

// PrivateBlocks returns the registry of per-device encrypted payloads
// (never nil). It is deliberately separate from Blocks: single-consumer
// ciphertext must not evict fleet-shared plaintext blocks.
func (s *Server) PrivateBlocks() *dist.Registry { return s.privBlocks }

// BlockSource returns the origin's complete block serve surface:
// fleet-shared payloads first, then per-device encrypted ones. This is
// what the CoAP block server should serve from.
func (s *Server) BlockSource() dist.Source {
	return dist.MultiSource(s.blocks, s.privBlocks)
}

// PatchStore returns the durable patch store attached via
// WithPatchStore, or nil.
func (s *Server) PatchStore() *PatchStore { return s.patchStore }

// Mount registers an additional route set onto the server's HTTP route
// table after construction — the post-construction twin of WithRoutes,
// for components (like the patch farm) that need the Server to exist
// before they can be built. Call before Handler.
func (s *Server) Mount(register func(*httpapi.Table)) {
	if register != nil {
		s.mounts = append(s.mounts, register)
	}
}

// Close stops the server's background machinery — today the parallel
// signing pool, when WithSigners armed one. Injected stores (release
// store, patch store) are owned by whoever opened them and are not
// closed here. Safe to call more than once; a closed server keeps
// serving, signing inline.
func (s *Server) Close() error {
	if s.signers != nil {
		s.signers.Close()
	}
	return nil
}

// Telemetry returns the server's metrics registry (never nil). Shared
// deployments inject one registry via WithTelemetry so transports,
// agents, and campaigns land in the same scrape.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// New creates an update server signing with key under suite, applying
// any options.
func New(suite security.Suite, key *security.PrivateKey, opts ...Option) *Server {
	s := &Server{
		suite:  suite,
		key:    key,
		bus:    announce.New[Announcement](announce.DefaultBuffer),
		shards: DefaultStoreShards,
		cache:  newPatchCache(DefaultPatchCacheBytes),
		tel:    telemetry.NewRegistry(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.store == nil {
		s.store = NewMemStore(s.shards)
	}
	if s.blocks == nil {
		s.blocks = dist.NewRegistry(0)
	}
	if s.privBlocks == nil {
		s.privBlocks = dist.NewRegistry(DefaultPrivateRegistryBytes)
	}
	if s.signerCount != 0 {
		s.signers = newSignerPool(suite, s.signerCount)
	}
	s.initTelemetry()
	return s
}

// DefaultPrivateRegistryBytes bounds the per-device encrypted payload
// registry unless WithPrivateBlockStoreSize overrides it. It only
// needs to cover payloads between prepare and transfer, not a fleet
// working set.
const DefaultPrivateRegistryBytes = 4 << 20

// initTelemetry resolves the hot-path handles and bridges the patch
// cache's and the release store's own counters onto the registry,
// migrating both surfaces into the scrape without touching their lock
// disciplines.
func (s *Server) initTelemetry() {
	reg := s.tel
	s.met = serverMetrics{
		reqDifferential: reg.Counter("upkit_server_requests_total", "Update requests by result.", telemetry.L("result", "differential")),
		reqFull:         reg.Counter("upkit_server_requests_total", "Update requests by result.", telemetry.L("result", "full")),
		reqNoUpdate:     reg.Counter("upkit_server_requests_total", "Update requests by result.", telemetry.L("result", "no_update")),
		reqUnknownApp:   reg.Counter("upkit_server_requests_total", "Update requests by result.", telemetry.L("result", "unknown_app")),
		reqError:        reg.Counter("upkit_server_requests_total", "Update requests by result.", telemetry.L("result", "error")),
		published:       reg.Counter("upkit_server_releases_published_total", "Vendor-signed releases accepted by Publish."),
		payloadBytes:    reg.Histogram("upkit_server_payload_bytes", "Prepared update payload sizes.", telemetry.SizeBuckets),
		prepareSeconds:  reg.Histogram("upkit_server_prepare_seconds", "PrepareUpdate latency (host time).", nil),
	}
	stat := func(read func(CacheStats) float64) func() float64 {
		return func() float64 { return read(s.cache.stats()) }
	}
	reg.CounterFunc("upkit_patch_cache_hits_total", "Patch-cache hits.", stat(func(c CacheStats) float64 { return float64(c.Hits) }))
	reg.CounterFunc("upkit_patch_cache_misses_total", "Patch-cache misses.", stat(func(c CacheStats) float64 { return float64(c.Misses) }))
	reg.CounterFunc("upkit_patch_cache_waits_total", "Requests that piggybacked on an in-flight computation.", stat(func(c CacheStats) float64 { return float64(c.Waits) }))
	reg.CounterFunc("upkit_patch_cache_computations_total", "Actual bsdiff+LZSS runs.", stat(func(c CacheStats) float64 { return float64(c.Computations) }))
	reg.CounterFunc("upkit_patch_cache_evictions_total", "Entries dropped by the LRU bound.", stat(func(c CacheStats) float64 { return float64(c.Evictions) }))
	reg.CounterFunc("upkit_patch_cache_invalidations_total", "Entries dropped by Publish or retention pruning.", stat(func(c CacheStats) float64 { return float64(c.Invalidations) }))
	reg.GaugeFunc("upkit_patch_cache_entries", "Current cached patches.", stat(func(c CacheStats) float64 { return float64(c.Entries) }))
	reg.GaugeFunc("upkit_patch_cache_bytes", "Current cached patch bytes.", stat(func(c CacheStats) float64 { return float64(c.Bytes) }))
	reg.CounterFunc("upkit_patch_disk_hits_total", "Memory-tier misses served by the durable patch store.", stat(func(c CacheStats) float64 { return float64(c.DiskHits) }))
	reg.CounterFunc("upkit_patch_disk_misses_total", "Diffs computed despite an attached patch store.", stat(func(c CacheStats) float64 { return float64(c.DiskMisses) }))
	if s.patchStore != nil {
		pstat := func(read func(PatchStoreStats) float64) func() float64 {
			return func() float64 { return read(s.patchStore.Stats()) }
		}
		reg.GaugeFunc("upkit_patch_store_entries", "Patches indexed in the durable patch store.", pstat(func(st PatchStoreStats) float64 { return float64(st.Entries) }))
		reg.GaugeFunc("upkit_patch_store_bytes", "Live patch bytes in the durable patch store.", pstat(func(st PatchStoreStats) float64 { return float64(st.Bytes) }))
		reg.GaugeFunc("upkit_patch_store_file_bytes", "Patch log size on disk, dead records included.", pstat(func(st PatchStoreStats) float64 { return float64(st.FileBytes) }))
	}

	bstat := func(read func(dist.RegistryStats) float64) func() float64 {
		return func() float64 { return read(s.blocks.Stats()) }
	}
	reg.GaugeFunc("upkit_blockstore_entries", "Named payloads in the block registry.", bstat(func(st dist.RegistryStats) float64 { return float64(st.Entries) }))
	reg.GaugeFunc("upkit_blockstore_bytes", "Payload bytes in the block registry.", bstat(func(st dist.RegistryStats) float64 { return float64(st.Bytes) }))
	vstat := func(read func(dist.RegistryStats) float64) func() float64 {
		return func() float64 { return read(s.privBlocks.Stats()) }
	}
	reg.GaugeFunc("upkit_blockstore_private_entries", "Per-device encrypted payloads in the private registry.", vstat(func(st dist.RegistryStats) float64 { return float64(st.Entries) }))
	reg.GaugeFunc("upkit_blockstore_private_bytes", "Per-device encrypted payload bytes in the private registry.", vstat(func(st dist.RegistryStats) float64 { return float64(st.Bytes) }))

	sstat := func(read func(StoreStats) float64) func() float64 {
		return func() float64 { return read(s.store.Stats()) }
	}
	reg.GaugeFunc("upkit_store_releases", "Releases currently in the release store.", sstat(func(st StoreStats) float64 { return float64(st.Releases) }))
	reg.GaugeFunc("upkit_store_bytes", "Firmware bytes currently in the release store.", sstat(func(st StoreStats) float64 { return float64(st.Bytes) }))
	reg.GaugeFunc("upkit_store_apps", "Apps with at least one stored release.", sstat(func(st StoreStats) float64 { return float64(st.Apps) }))
	reg.GaugeFunc("upkit_store_load_seconds", "Time the store spent replaying its logs at startup.", sstat(func(st StoreStats) float64 { return st.LoadSeconds }))
	reg.GaugeFunc("upkit_store_torn_tails", "Log files whose torn tail record was dropped at startup.", sstat(func(st StoreStats) float64 { return float64(st.TornTails) }))
}

// PublicKey returns the per-request verification key devices must be
// provisioned with.
func (s *Server) PublicKey() *security.PublicKey {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	return s.key.Public()
}

// KeyID returns the key ID stamped into prepared manifests.
func (s *Server) KeyID() uint32 {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	return s.keyID
}

// RotateKey swaps the per-request signing key: subsequent updates are
// signed with key and carry keyID in their token part. Devices learn
// the new key from a root-signed KeyRecord (see SetKeyBundle); rotate
// after a suspected server compromise, revoking the old ID.
func (s *Server) RotateKey(key *security.PrivateKey, keyID uint32) {
	s.keyMu.Lock()
	s.key = key
	s.keyID = keyID
	s.keyMu.Unlock()
	s.tel.Counter("upkit_server_key_rotations_total", "Update-server signing-key rotations.").Inc()
}

// SetKeyBundle publishes an encoded security.KeyBundle — root-signed
// key records plus the current revocation list — for devices to fetch
// over the update channel (GET /api/v1/keys, CoAP /upkit/keys).
func (s *Server) SetKeyBundle(b []byte) {
	s.keyMu.Lock()
	s.bundle = bytes.Clone(b)
	s.keyMu.Unlock()
}

// KeyBundle returns the published key bundle, or nil when key
// lifecycle is not in use.
func (s *Server) KeyBundle() []byte {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	return bytes.Clone(s.bundle)
}

// SetPayloadEncryption makes every prepared payload AES-CTR ciphertext
// under key (§VIII future work: confidentiality independent of
// transport security). Pass a nil entropy reader to use crypto/rand.
func (s *Server) SetPayloadEncryption(key []byte, entropy io.Reader) error {
	if _, err := security.NewPayloadDecrypter(key); err != nil {
		return err
	}
	if entropy == nil {
		entropy = rand.Reader
	}
	s.encMu.Lock()
	s.payloadKey = append([]byte{}, key...)
	s.entropy = entropy
	s.encMu.Unlock()
	return nil
}

// Publish stores a vendor-signed image (step 2 of Fig. 2) and announces
// it to subscribers. Images must arrive with strictly increasing
// versions per app.
func (s *Server) Publish(img *vendorserver.Image) error {
	if img == nil {
		return errors.New("updateserver: nil image")
	}
	if err := s.store.Publish(img); err != nil {
		return err
	}
	s.retainMu.Lock()
	retain := s.retain
	s.retainMu.Unlock()
	var pruned []uint32
	if retain > 0 {
		pruned = s.store.Prune(retain)
	}

	// Every cached patch for this app targets a now-superseded latest
	// version (and publish-time pruning may have dropped bases), so
	// drop them all before anyone reacts to the announcement.
	s.cache.invalidateApp(img.Manifest.AppID)
	for _, app := range pruned {
		if app != img.Manifest.AppID {
			s.cache.invalidateApp(app)
		}
	}

	s.met.published.Inc()
	s.bus.Publish(Announcement{AppID: img.Manifest.AppID, Version: img.Manifest.Version})
	return nil
}

// Subscribe returns a channel receiving new-version announcements. The
// channel is buffered; missed announcements are dropped (subscribers
// can always poll Latest). Callers that stop listening must call
// Unsubscribe, or the server accumulates dead channels for its whole
// lifetime.
func (s *Server) Subscribe() <-chan Announcement { return s.bus.Subscribe() }

// Unsubscribe removes a channel obtained from Subscribe. The channel
// is not closed (a Publish that already snapshotted the subscriber
// list may still deliver one last buffered announcement); it simply
// stops receiving and is released for garbage collection. Unknown
// channels are ignored.
func (s *Server) Unsubscribe(ch <-chan Announcement) { s.bus.Unsubscribe(ch) }

// SubscriberCount reports the number of live announcement subscribers
// (an operational leak indicator).
func (s *Server) SubscriberCount() int { return s.bus.Count() }

// LatestImage returns the newest vendor-signed image for app, or
// ok=false. Baseline systems (mcumgr, LwM2M) distribute this image
// as-is, without the per-request second signature.
func (s *Server) LatestImage(appID uint32) (*vendorserver.Image, bool) {
	return s.store.Latest(appID)
}

// ImageByVersion returns the stored image with exactly version v, or
// ok=false (used by replay/downgrade attack experiments).
func (s *Server) ImageByVersion(appID uint32, v uint16) (*vendorserver.Image, bool) {
	return s.store.ByVersion(appID, v)
}

// Latest reports the newest published version for app, or ok=false.
func (s *Server) Latest(appID uint32) (uint16, bool) {
	img, ok := s.store.Latest(appID)
	if !ok {
		return 0, false
	}
	return img.Manifest.Version, true
}

// lookup returns the image with exactly version v, or nil.
func lookupVersion(list []*vendorserver.Image, v uint16) *vendorserver.Image {
	i := sort.Search(len(list), func(i int) bool { return list[i].Manifest.Version >= v })
	if i < len(list) && list[i].Manifest.Version == v {
		return list[i]
	}
	return nil
}

// PrepareUpdate performs the per-request half of the generation phase
// (steps 5–7 of Fig. 2): select the newest image, derive a differential
// payload if the device's current version allows it, copy the device
// token into the manifest, and apply the update server's signature.
func (s *Server) PrepareUpdate(appID uint32, tok manifest.DeviceToken) (*Update, error) {
	start := time.Now()
	latest, ok := s.store.Latest(appID)
	if !ok {
		s.met.reqUnknownApp.Inc()
		return nil, fmt.Errorf("%w: %#x", ErrUnknownApp, appID)
	}
	if latest.Manifest.Version <= tok.CurrentVersion {
		s.met.reqNoUpdate.Inc()
		return nil, fmt.Errorf("%w: device v%d, latest v%d", ErrNoNewUpdate, tok.CurrentVersion, latest.Manifest.Version)
	}
	var base *vendorserver.Image
	if tok.SupportsDifferential() && tok.CurrentVersion < latest.Manifest.Version {
		base, _ = s.store.ByVersion(appID, tok.CurrentVersion)
	}

	s.keyMu.RLock()
	key, keyID := s.key, s.keyID
	s.keyMu.RUnlock()

	m := latest.Manifest // copy; the stored vendor-signed manifest stays pristine
	m.DeviceID = tok.DeviceID
	m.Nonce = tok.Nonce
	m.ServerKeyID = keyID

	// The serve pipeline below is reduced-copy: pick the payload bytes
	// (cache- or store-owned, borrowed), then run exactly one producing
	// pass — AES-CTR encryption into a fresh buffer, or a single clone
	// when the bytes are served as-is — and finally block-register the
	// wire bytes. The old shape cloned first and encrypted second, so
	// every encrypted prepare paid for a clone that was thrown away one
	// line later.
	u := &Update{}
	var plain []byte // borrowed reference; never returned to the caller
	if base != nil {
		s.pairs.record(appID, tok.CurrentVersion)
		// The patch depends only on the version pair, not on the device:
		// serve it from the cache, computing at most once per pair even
		// under a thundering herd (see cache.go). A patch at least as
		// large as the image is counterproductive; the cache remembers
		// that verdict too and we fall back to the full image (the
		// manifest then says so).
		pk := patchKey{appID: appID, from: tok.CurrentVersion, to: latest.Manifest.Version}
		res := s.cache.payload(pk, base.Manifest.FirmwareDigest, latest.Manifest.FirmwareDigest,
			base.Firmware, latest.Firmware)
		if res.viable {
			m.OldVersion = tok.CurrentVersion
			m.PatchSize = uint32(len(res.patch))
			plain = res.patch
			u.Differential = true
		}
	}
	if !u.Differential {
		plain = latest.Firmware
	}
	s.encMu.RLock()
	payloadKey := s.payloadKey
	entropy := s.entropy
	s.encMu.RUnlock()
	if payloadKey != nil {
		// PatchSize/Size describe the plaintext; both ends add the IV
		// overhead to the wire length. EncryptPayload writes IV ‖
		// ciphertext into a buffer the caller then owns — the encryption
		// pass IS the copy, so the borrowed plaintext is not cloned
		// first.
		enc, err := security.EncryptPayload(payloadKey, plain, entropy)
		if err != nil {
			s.met.reqError.Inc()
			return nil, fmt.Errorf("updateserver: encrypt payload: %w", err)
		}
		u.Payload = enc
		u.Encrypted = true
		// Per-device ciphertext carries a fresh IV, so its name is
		// unique and will never be requested by another device: register
		// it in the segregated private registry, where it cannot evict
		// the blocks an unencrypted fleet shares.
		u.PayloadName = s.privBlocks.Put(u.Payload)
	} else {
		// Served as-is: clone, because the caller owns the returned
		// payload and the canonical bytes belong to the cache (patch) or
		// the release store (full image) — aliasing would let one
		// caller's mutation corrupt every later request.
		u.Payload = bytes.Clone(plain)
		// Fleet-shared wire bytes: identical across devices on the same
		// version pair, so the name coincides and caches share it.
		u.PayloadName = s.blocks.Put(u.Payload)
	}
	if err := s.signManifest(&m, key); err != nil {
		s.met.reqError.Inc()
		return nil, fmt.Errorf("updateserver: %w", err)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		s.met.reqError.Inc()
		return nil, fmt.Errorf("updateserver: %w", err)
	}
	u.Manifest = m
	u.ManifestBytes = enc

	// The per-request work above — diff, encrypt, second signature — is
	// this reproduction's generation phase (§III-A runs on real server
	// hardware, so host time is the right clock). The span key is the
	// tuple the double signature binds.
	elapsed := time.Since(start)
	if u.Differential {
		s.met.reqDifferential.Inc()
	} else {
		s.met.reqFull.Inc()
	}
	s.met.payloadBytes.Observe(float64(len(u.Payload)))
	s.met.prepareSeconds.ObserveDuration(elapsed)
	s.tel.Spans().Record(telemetry.SpanKey{
		DeviceID: tok.DeviceID,
		AppID:    appID,
		From:     tok.CurrentVersion,
		To:       latest.Manifest.Version,
	}, telemetry.PhaseGeneration, elapsed)
	return u, nil
}
