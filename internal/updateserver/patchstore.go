package updateserver

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"upkit/internal/security"
)

// PatchStore is the durable tier behind the in-memory patch cache:
// every differential payload the server computes (on demand or via the
// patch farm) is appended to a CRC-framed log, so a restarted server
// serves warm patches without redoing a single bsdiff. It follows the
// same filestore discipline as the release store (filestore.go):
//
//   - Put appends the record and fsyncs the log before the patch
//     becomes visible to Get, so an acknowledged write survives a
//     crash and a crash mid-append leaves only an invisible torn tail.
//   - Startup replay accepts the longest valid record prefix and
//     truncates there; a torn tail costs exactly the unacknowledged
//     patch.
//   - Compaction writes a fresh log of the live entries and atomically
//     renames it over the old one (fsync file, rename, fsync dir).
//
// On-disk format, one file (`patches.log`), a sequence of records in
// write order (big endian):
//
//	magic "UPPD" | len uint32 | payload (len bytes) | crc32
//
// where payload is:
//
//	appID u32 | from u16 | to u16 | flags u8 | baseDigest 32 |
//	targetDigest 32 | patch bytes
//
// flags bit 0 records viability: a pair whose best patch is no smaller
// than the full image is a result worth persisting too — recomputing a
// useless diff per restart would be just as wasteful. The two firmware
// digests pin the record to the exact release bytes it was computed
// from: a Get whose digests differ (the release store changed under
// the same version numbers) is a miss and drops the stale entry.
//
// The index (key → file offset) lives in memory; patch bytes stay on
// disk and are re-framed and CRC-checked on every read, so a corrupted
// record degrades to a cache miss, never to a wrong patch. Entries are
// bounded by live patch bytes with FIFO eviction (warm sets are
// re-warmable; strict LRU on disk is not worth the bookkeeping), and
// the log compacts when dead bytes exceed the live set.
type PatchStore struct {
	mu  sync.Mutex
	dir string
	f   *os.File

	maxBytes  int
	liveBytes int // payload bytes of indexed records
	fileBytes int // total bytes in the log, dead records included

	index map[patchKey]*list.Element
	fifo  *list.List // front = oldest insert, first to evict

	closed bool

	hits, misses, puts, evictions, compactions uint64
	tornTails                                  int
	loadSeconds                                float64
}

// diskEntry is one indexed record.
type diskEntry struct {
	key    patchKey
	base   security.Digest
	target security.Digest
	off    int64 // record start (magic)
	n      int   // full record length including frame
	viable bool
	bytes  int // patch payload bytes (0 for non-viable)
}

// DefaultPatchStoreBytes bounds a PatchStore opened with n <= 0: room
// for thousands of constrained-device patches.
const DefaultPatchStoreBytes = 64 << 20

const (
	patchRecMagic   uint32 = 0x55505044 // "UPPD"
	patchRecHeader         = 4 + 4
	patchMetaSize          = 4 + 2 + 2 + 1 + 2*security.DigestSize
	patchFlagViable        = 1 << 0
	// patchMaxRecord bounds a record's payload during replay; larger
	// is corruption, not an allocation request.
	patchMaxRecord = 64 << 20
)

const patchLogName = "patches.log"

// ErrPatchStoreClosed reports use after Close.
var ErrPatchStoreClosed = errors.New("updateserver: patch store is closed")

// OpenPatchStore opens (creating if needed) the patch store rooted at
// dir, bounded to maxBytes of live patch bytes (<= 0 selects
// DefaultPatchStoreBytes), replaying the log and truncating any torn
// tail.
func OpenPatchStore(dir string, maxBytes int) (*PatchStore, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultPatchStoreBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("updateserver: patch dir: %w", err)
	}
	path := filepath.Join(dir, patchLogName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("updateserver: patch log: %w", err)
	}
	s := &PatchStore{
		dir:      dir,
		f:        f,
		maxBytes: maxBytes,
		index:    make(map[patchKey]*list.Element),
		fifo:     list.New(),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Dir returns the store's state directory.
func (s *PatchStore) Dir() string { return s.dir }

// encodePatchRecord frames one patch result.
func encodePatchRecord(key patchKey, base, target security.Digest, res patchResult) []byte {
	n := patchMetaSize + len(res.patch)
	rec := make([]byte, 0, patchRecHeader+n+4)
	rec = binary.BigEndian.AppendUint32(rec, patchRecMagic)
	rec = binary.BigEndian.AppendUint32(rec, uint32(n))
	rec = binary.BigEndian.AppendUint32(rec, key.appID)
	rec = binary.BigEndian.AppendUint16(rec, key.from)
	rec = binary.BigEndian.AppendUint16(rec, key.to)
	var flags byte
	if res.viable {
		flags |= patchFlagViable
	}
	rec = append(rec, flags)
	rec = append(rec, base[:]...)
	rec = append(rec, target[:]...)
	rec = append(rec, res.patch...)
	return binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
}

// decodePatchRecord parses the record starting at buf, returning the
// entry metadata, the patch bytes, and the bytes consumed, or ok=false
// when the record is incomplete or fails its CRC.
func decodePatchRecord(buf []byte) (e diskEntry, patch []byte, n int, ok bool) {
	if len(buf) < patchRecHeader {
		return e, nil, 0, false
	}
	if binary.BigEndian.Uint32(buf) != patchRecMagic {
		return e, nil, 0, false
	}
	plen := int(binary.BigEndian.Uint32(buf[4:]))
	if plen < patchMetaSize || plen > patchMaxRecord {
		return e, nil, 0, false
	}
	total := patchRecHeader + plen + 4
	if len(buf) < total {
		return e, nil, 0, false
	}
	body := buf[:patchRecHeader+plen]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[patchRecHeader+plen:]) {
		return e, nil, 0, false
	}
	p := body[patchRecHeader:]
	e.key = patchKey{
		appID: binary.BigEndian.Uint32(p),
		from:  binary.BigEndian.Uint16(p[4:]),
		to:    binary.BigEndian.Uint16(p[6:]),
	}
	flags := p[8]
	copy(e.base[:], p[9:])
	copy(e.target[:], p[9+security.DigestSize:])
	patch = p[patchMetaSize:]
	e.viable = flags&patchFlagViable != 0
	e.bytes = len(patch)
	e.n = total
	if !e.viable && len(patch) != 0 {
		return e, nil, 0, false // a non-viable record carries no patch
	}
	return e, patch, total, true
}

// replay loads the log into the index, truncating any torn tail. Later
// records for the same key win (a re-publish recomputed the pair).
func (s *PatchStore) replay() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("updateserver: patch log read: %w", err)
	}
	valid := 0
	for valid < len(data) {
		e, _, n, ok := decodePatchRecord(data[valid:])
		if !ok {
			break
		}
		e.off = int64(valid)
		s.indexLocked(e)
		valid += n
	}
	if valid < len(data) {
		s.tornTails++
		if err := s.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("updateserver: patch log truncate: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("updateserver: patch log sync: %w", err)
		}
	}
	s.fileBytes = valid
	if _, err := s.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("updateserver: patch log seek: %w", err)
	}
	// The replayed live set may exceed the bound (the bound shrank, or
	// dead records were compacted away under it): evict from the cold
	// end like any Put would.
	s.evictLocked()
	return nil
}

// indexLocked installs e, superseding any previous record for its key.
func (s *PatchStore) indexLocked(e diskEntry) {
	if el, ok := s.index[e.key]; ok {
		s.dropLocked(el)
	}
	cp := e
	s.index[e.key] = s.fifo.PushBack(&cp)
	s.liveBytes += e.bytes
}

// dropLocked removes one indexed entry (its record stays in the file as
// dead bytes until compaction).
func (s *PatchStore) dropLocked(el *list.Element) {
	e := s.fifo.Remove(el).(*diskEntry)
	delete(s.index, e.key)
	s.liveBytes -= e.bytes
}

// evictLocked enforces the live-byte bound, oldest insert first.
func (s *PatchStore) evictLocked() {
	for s.liveBytes > s.maxBytes {
		front := s.fifo.Front()
		if front == nil {
			break
		}
		s.dropLocked(front)
		s.evictions++
	}
}

// Put persists res for key, computed from firmware with the given
// digests. The record is fsynced before it becomes visible, so a
// crash never loses an acknowledged patch — at worst it leaves a torn
// tail that replay drops.
func (s *PatchStore) Put(key patchKey, base, target security.Digest, res patchResult) error {
	rec := encodePatchRecord(key, base, target, res)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrPatchStoreClosed
	}
	off := int64(s.fileBytes)
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("updateserver: append patch: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("updateserver: sync patch log: %w", err)
	}
	s.fileBytes += len(rec)
	s.puts++
	s.indexLocked(diskEntry{
		key: key, base: base, target: target,
		off: off, n: len(rec), viable: res.viable, bytes: len(res.patch),
	})
	s.evictLocked()
	s.maybeCompactLocked()
	return nil
}

// Get returns the stored result for key if its digests match the
// firmware the caller is diffing — a mismatch means the release bytes
// changed since the record was written, so the entry is dropped and
// the lookup is a miss. The record is re-read and CRC-checked from
// disk on every hit; silent on-disk corruption degrades to a miss.
func (s *PatchStore) Get(key patchKey, base, target security.Digest) (patchResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return patchResult{}, false
	}
	el, ok := s.index[key]
	if !ok {
		s.misses++
		return patchResult{}, false
	}
	e := el.Value.(*diskEntry)
	if e.base != base || e.target != target {
		s.dropLocked(el)
		s.misses++
		return patchResult{}, false
	}
	buf := make([]byte, e.n)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		s.dropLocked(el)
		s.misses++
		return patchResult{}, false
	}
	de, patch, _, ok := decodePatchRecord(buf)
	if !ok || de.key != e.key {
		s.dropLocked(el)
		s.misses++
		return patchResult{}, false
	}
	s.hits++
	res := patchResult{viable: e.viable}
	if e.viable {
		res.patch = append([]byte(nil), patch...)
	}
	return res, true
}

// Invalidate drops every indexed entry for app (Publish superseded the
// latest version, retention pruning dropped bases). The dead records
// are reclaimed by the next compaction.
func (s *PatchStore) Invalidate(appID uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.fifo.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*diskEntry).key.appID == appID {
			s.dropLocked(el)
		}
		el = next
	}
	s.maybeCompactLocked()
}

// maybeCompactLocked rewrites the log when dead bytes exceed the live
// set (and the file is big enough to bother).
func (s *PatchStore) maybeCompactLocked() {
	liveFile := 0
	for el := s.fifo.Front(); el != nil; el = el.Next() {
		liveFile += el.Value.(*diskEntry).n
	}
	if s.fileBytes < 1<<20 || s.fileBytes-liveFile <= liveFile {
		return
	}
	if err := s.compactLocked(); err == nil {
		s.compactions++
	}
}

// compactLocked writes the live records to a temp file and atomically
// renames it over the log, re-pointing the index at the new offsets.
func (s *PatchStore) compactLocked() error {
	path := filepath.Join(s.dir, patchLogName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	type move struct {
		e   *diskEntry
		off int64
	}
	var moves []move
	var off int64
	for el := s.fifo.Front(); el != nil; el = el.Next() {
		e := el.Value.(*diskEntry)
		buf := make([]byte, e.n)
		if _, err := s.f.ReadAt(buf, e.off); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		moves = append(moves, move{e: e, off: off})
		off += int64(e.n)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(off, io.SeekStart); err != nil {
		nf.Close()
		return err
	}
	s.f.Close()
	s.f = nf
	s.fileBytes = int(off)
	for _, m := range moves {
		m.e.off = m.off
	}
	return nil
}

// PatchStoreStats is a snapshot of the store's counters, exposed via
// the patch-farm stats endpoint.
type PatchStoreStats struct {
	// Hits and Misses count Get lookups; Puts counts persisted results.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// Evictions counts entries dropped by the live-byte bound;
	// Compactions counts log rewrites.
	Evictions   uint64 `json:"evictions"`
	Compactions uint64 `json:"compactions"`
	// TornTails counts torn tail records dropped at startup.
	TornTails int `json:"tornTails"`
	// Entries and Bytes describe the live index; FileBytes is the log
	// size on disk, dead records included.
	Entries   int `json:"entries"`
	Bytes     int `json:"bytes"`
	FileBytes int `json:"fileBytes"`
}

// Stats snapshots the store's counters.
func (s *PatchStore) Stats() PatchStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PatchStoreStats{
		Hits:        s.hits,
		Misses:      s.misses,
		Puts:        s.puts,
		Evictions:   s.evictions,
		Compactions: s.compactions,
		TornTails:   s.tornTails,
		Entries:     s.fifo.Len(),
		Bytes:       s.liveBytes,
		FileBytes:   s.fileBytes,
	}
}

// Close releases the log handle; further Put and Get calls fail (Get
// reports a miss).
func (s *PatchStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
