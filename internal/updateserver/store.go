package updateserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"upkit/internal/vendorserver"
)

// The release store.
//
// The update server's durable state is exactly one thing: the set of
// vendor-signed images published per app. Everything else the server
// does — token binding, diffing, signing, announcing — is a stateless
// pipeline over that set. ReleaseStore cuts the seam the SUIT
// architecture draws between the "firmware repository" and the party
// that serves devices, so the repository can evolve independently:
// sharded in memory for read-mostly request floods (MemStore), or
// backed by per-app record logs that survive a server restart
// (FileStore) — which is what lets a restarted server re-serve the
// exact bytes a device's reception journal checkpointed against.

// ReleaseStore is the release repository behind an update server.
// Implementations must be safe for concurrent use; images handed in
// and out are shared, immutable-by-convention snapshots (callers must
// not mutate a stored image's manifest or firmware).
type ReleaseStore interface {
	// Publish stores img. Versions must be strictly increasing per
	// app; publishing a version not newer than the stored latest fails
	// with ErrStaleVersion.
	Publish(img *vendorserver.Image) error
	// Latest returns the newest stored image for app, or ok=false.
	Latest(appID uint32) (*vendorserver.Image, bool)
	// ByVersion returns the stored image with exactly version v, or
	// ok=false.
	ByVersion(appID uint32, v uint16) (*vendorserver.Image, bool)
	// Prune bounds every app's history to its newest n releases and
	// reports the apps it dropped releases from. n <= 0 keeps
	// everything and reports nil.
	Prune(n int) []uint32
	// Apps lists every app holding at least one release, ascending.
	Apps() []uint32
	// Snapshot returns app's stored releases, oldest first. The slice
	// is the caller's; the images are shared.
	Snapshot(appID uint32) []*vendorserver.Image
	// Stats sizes the store for telemetry.
	Stats() StoreStats
}

// StoreStats sizes a release store, exposed as upkit_store_* gauges.
type StoreStats struct {
	// Apps and Releases count distinct apps and stored images.
	Apps     int `json:"apps"`
	Releases int `json:"releases"`
	// Bytes is the firmware payload bytes held (manifests excluded).
	Bytes int `json:"bytes"`
	// LoadSeconds is the time a durable store spent replaying its logs
	// at startup; zero for in-memory stores.
	LoadSeconds float64 `json:"loadSeconds"`
	// TornTails counts log files whose tail record was torn (e.g. by a
	// crash mid-publish) and discarded during replay.
	TornTails int `json:"tornTails"`
}

// DefaultStoreShards is the shard count of the in-memory store a
// Server creates when no WithStore/WithShards option is given.
const DefaultStoreShards = 16

// MemStore is the sharded in-memory ReleaseStore: releases are
// partitioned by app across shards, each guarded by its own RWMutex,
// so the read-mostly request hot path (Latest/ByVersion) never
// serializes on one global lock.
type MemStore struct {
	shards []memShard
}

type memShard struct {
	mu   sync.RWMutex
	apps map[uint32][]*vendorserver.Image // per app, sorted by version
}

// NewMemStore creates an in-memory store with the given shard count;
// n <= 0 selects DefaultStoreShards.
func NewMemStore(n int) *MemStore {
	if n <= 0 {
		n = DefaultStoreShards
	}
	s := &MemStore{shards: make([]memShard, n)}
	for i := range s.shards {
		s.shards[i].apps = make(map[uint32][]*vendorserver.Image)
	}
	return s
}

// shard maps an app to its shard. The Fibonacci multiplier spreads
// sequential or stride-patterned app IDs evenly.
func (s *MemStore) shard(appID uint32) *memShard {
	h := appID * 0x9E3779B1
	h ^= h >> 16
	return &s.shards[h%uint32(len(s.shards))]
}

// Publish implements ReleaseStore.
func (s *MemStore) Publish(img *vendorserver.Image) error {
	if img == nil {
		return errors.New("updateserver: nil image")
	}
	appID := img.Manifest.AppID
	sh := s.shard(appID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.apps[appID]
	if n := len(list); n > 0 && img.Manifest.Version <= list[n-1].Manifest.Version {
		return fmt.Errorf("%w: v%d after v%d", ErrStaleVersion, img.Manifest.Version, list[n-1].Manifest.Version)
	}
	sh.apps[appID] = append(list, img)
	return nil
}

// Latest implements ReleaseStore.
func (s *MemStore) Latest(appID uint32) (*vendorserver.Image, bool) {
	sh := s.shard(appID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	list := sh.apps[appID]
	if len(list) == 0 {
		return nil, false
	}
	return list[len(list)-1], true
}

// ByVersion implements ReleaseStore.
func (s *MemStore) ByVersion(appID uint32, v uint16) (*vendorserver.Image, bool) {
	sh := s.shard(appID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	img := lookupVersion(sh.apps[appID], v)
	return img, img != nil
}

// pruneApp trims one app's history to its newest n releases, reporting
// whether anything was dropped.
func (s *MemStore) pruneApp(appID uint32, n int) bool {
	sh := s.shard(appID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.apps[appID]
	if n <= 0 || len(list) <= n {
		return false
	}
	sh.apps[appID] = append([]*vendorserver.Image{}, list[len(list)-n:]...)
	return true
}

// Prune implements ReleaseStore.
func (s *MemStore) Prune(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	var pruned []uint32
	for _, app := range s.Apps() {
		if s.pruneApp(app, n) {
			pruned = append(pruned, app)
		}
	}
	return pruned
}

// Apps implements ReleaseStore.
func (s *MemStore) Apps() []uint32 {
	var apps []uint32
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for app := range sh.apps {
			if len(sh.apps[app]) > 0 {
				apps = append(apps, app)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	return apps
}

// Snapshot implements ReleaseStore.
func (s *MemStore) Snapshot(appID uint32) []*vendorserver.Image {
	sh := s.shard(appID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]*vendorserver.Image{}, sh.apps[appID]...)
}

// Stats implements ReleaseStore.
func (s *MemStore) Stats() StoreStats {
	var st StoreStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, list := range sh.apps {
			if len(list) == 0 {
				continue
			}
			st.Apps++
			st.Releases += len(list)
			for _, img := range list {
				st.Bytes += len(img.Firmware)
			}
		}
		sh.mu.RUnlock()
	}
	return st
}
