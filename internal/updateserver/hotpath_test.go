package updateserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"upkit/internal/dist"
	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/vendorserver"
)

// Regression tests for the PrepareUpdate hot-path sweep: encrypted
// payloads must not pollute the fleet-shared block registry, the
// singleflight dedup must survive a disabled cache, key rotation must
// never produce a manifest whose ServerKeyID disagrees with the key
// that signed it, and warm patches must survive a server restart.

// TestEncryptedStormKeepsSharedBlocks pins the block-registry fix:
// per-device encrypted payloads are unique bytes (random IV), so
// registering them in the fleet-shared registry evicted the shared
// patch blocks a whole unencrypted fleet (and the proxy tier) was
// pulling. They must land in the private registry instead.
func TestEncryptedStormKeepsSharedBlocks(t *testing.T) {
	suite := security.NewTinyCrypt()
	vendor := vendorserver.New(suite, security.MustGenerateKey("storm-vendor"))
	// A shared registry small enough that the storm's ciphertext would
	// flush it if it (wrongly) landed there.
	update := New(suite, security.MustGenerateKey("storm-server"),
		WithBlockStoreSize(256<<10))
	defer update.Close()
	publish := func(v uint16, fw []byte) {
		img, err := vendor.BuildImage(vendorserver.Release{AppID: 1, Version: v, Firmware: fw})
		if err != nil {
			t.Fatal(err)
		}
		if err := update.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	v1 := bytes.Repeat([]byte("shared-block-firmware-"), 1024)
	v2 := bytes.Clone(v1)
	copy(v2[50:], []byte("small-edit"))
	publish(1, v1)
	publish(2, v2)

	// An unencrypted fleet registers its shared blocks first.
	shared, err := update.PrepareUpdate(1, manifest.DeviceToken{
		DeviceID: 1, Nonce: 1, CurrentVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := update.Blocks().Payload(shared.PayloadName); !ok {
		t.Fatal("shared payload not registered")
	}

	// Then an encrypted fleet storms: 64 devices, each payload unique.
	if err := update.SetPayloadEncryption(bytes.Repeat([]byte{7}, 16), nil); err != nil {
		t.Fatal(err)
	}
	const devices = 64
	names := make([]dist.Name, devices)
	var wg sync.WaitGroup
	for i := range devices {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, err := update.PrepareUpdate(1, manifest.DeviceToken{
				DeviceID: uint32(0x5000 + i), Nonce: uint32(i + 1), CurrentVersion: 1,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if !u.Encrypted {
				t.Error("payload not encrypted")
				return
			}
			names[i] = u.PayloadName
		}(i)
	}
	wg.Wait()

	// The shared blocks survived the storm untouched...
	if _, ok := update.Blocks().Payload(shared.PayloadName); !ok {
		t.Fatal("encrypted storm evicted the fleet-shared payload")
	}
	if st := update.Blocks().Stats(); st.Evictions != 0 {
		t.Fatalf("shared registry evicted %d entries during an encrypted storm", st.Evictions)
	}
	// ...the ciphertext went to the private registry, and the combined
	// block source still serves it to the pulling device.
	if st := update.PrivateBlocks().Stats(); st.Puts != devices {
		t.Fatalf("private registry saw %d puts, want %d", st.Puts, devices)
	}
	src := update.BlockSource()
	for i, name := range names {
		if name == (dist.Name{}) {
			continue // that goroutine already failed the test
		}
		if _, _, err := src.Block(name, 0, 512); err != nil {
			t.Fatalf("device %d: combined source cannot serve its payload: %v", i, err)
		}
	}
	// Shared payloads are served by the combined source too.
	if _, _, err := src.Block(shared.PayloadName, 0, 512); err != nil {
		t.Fatalf("combined source lost the shared payload: %v", err)
	}
}

// TestDisabledCacheKeepsSingleflight pins the dedup fix: disabling
// patch *retention* (cache size 0) must not disable concurrent-request
// *dedup* — a thundering herd on one cold pair costs one diff, not N.
func TestDisabledCacheKeepsSingleflight(t *testing.T) {
	s := newServers(t)
	base := bytes.Repeat([]byte("no-cache-singleflight-section-"), 2048)
	edit := bytes.Clone(base)
	copy(edit[128:], []byte("the-only-change"))
	s.publish(t, 1, 1, base)
	s.publish(t, 1, 2, edit)
	s.update.SetPatchCacheSize(0)

	const devices = 32
	var start, wg sync.WaitGroup
	start.Add(1)
	errs := make(chan error, devices)
	for i := range devices {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			u, err := s.update.PrepareUpdate(1, manifest.DeviceToken{
				DeviceID: uint32(0x6000 + i), Nonce: uint32(i + 1), CurrentVersion: 1,
			})
			if err != nil {
				errs <- fmt.Errorf("device %d: %w", i, err)
				return
			}
			if !u.Differential {
				errs <- fmt.Errorf("device %d: wanted a differential", i)
			}
		}(i)
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.update.Stats()
	if st.Computations != 1 {
		t.Fatalf("computations = %d with cache disabled, want 1 (singleflight)", st.Computations)
	}
	if st.Waits != devices-1 {
		t.Fatalf("waits = %d, want %d", st.Waits, devices-1)
	}
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache retained state: %+v", st)
	}
}

// TestRotateKeyDuringPrepareStorm races key rotation against a prepare
// storm: every manifest handed out must verify against the public key
// matching its own ServerKeyID — a manifest signed by the old key but
// stamped with the new ID (or vice versa) bricks the device's
// verification for no reason.
func TestRotateKeyDuringPrepareStorm(t *testing.T) {
	s := newServers(t)
	base := bytes.Repeat([]byte("rotate-storm-firmware-section-"), 1024)
	edit := bytes.Clone(base)
	copy(edit[64:], []byte("rotated"))
	s.publish(t, 1, 1, base)
	s.publish(t, 1, 2, edit)

	const rotations = 8
	pubs := map[uint32]*security.PublicKey{0: s.update.PublicKey()}
	keys := make([]*security.PrivateKey, rotations)
	for i := range rotations {
		keys[i] = security.MustGenerateKey(fmt.Sprintf("rotate-%d", i))
		pubs[uint32(i+1)] = keys[i].Public()
	}

	const devices = 16
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range rotations {
			s.update.RotateKey(keys[i], uint32(i+1))
		}
	}()
	for i := range devices {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := range 40 {
				u, err := s.update.PrepareUpdate(1, manifest.DeviceToken{
					DeviceID:       uint32(0x7000 + i),
					Nonce:          uint32(i*1000 + n + 1),
					CurrentVersion: uint16(n % 2), // mix full and differential
				})
				if err != nil {
					errs <- fmt.Errorf("device %d: %w", i, err)
					return
				}
				pub, ok := pubs[u.Manifest.ServerKeyID]
				if !ok {
					errs <- fmt.Errorf("device %d: unknown ServerKeyID %d", i, u.Manifest.ServerKeyID)
					return
				}
				if !u.Manifest.VerifyServerSig(s.suite, pub) {
					errs <- fmt.Errorf("device %d: signature does not verify under key %d",
						i, u.Manifest.ServerKeyID)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWarmPatchesSurviveRestart pins the durable tier end to end: a
// patch computed before a crash is served after restart without a
// single recomputation.
func TestWarmPatchesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	suite := security.NewTinyCrypt()
	vendor := vendorserver.New(suite, security.MustGenerateKey("restart-vendor"))
	v1 := bytes.Repeat([]byte("restart-firmware-section-"), 2048)
	v2 := bytes.Clone(v1)
	copy(v2[256:], []byte("post-restart-edit"))
	images := make([]*vendorserver.Image, 0, 2)
	for v, fw := range map[uint16][]byte{1: v1, 2: v2} {
		img, err := vendor.BuildImage(vendorserver.Release{AppID: 1, Version: v, Firmware: fw})
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, img)
	}
	if images[0].Manifest.Version > images[1].Manifest.Version {
		images[0], images[1] = images[1], images[0]
	}
	boot := func() (*Server, *PatchStore) {
		ps, err := OpenPatchStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := New(suite, security.MustGenerateKey("restart-server"), WithPatchStore(ps))
		for _, img := range images {
			if err := srv.Publish(img); err != nil {
				t.Fatal(err)
			}
		}
		return srv, ps
	}
	tok := manifest.DeviceToken{DeviceID: 9, Nonce: 1, CurrentVersion: 1}

	srv1, ps1 := boot()
	first, err := srv1.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Differential {
		t.Fatal("expected a differential before restart")
	}
	if st := srv1.Stats(); st.Computations != 1 || st.DiskMisses != 1 {
		t.Fatalf("cold stats: %+v", st)
	}
	srv1.Close()
	ps1.Close()

	// "Crash", restart: same releases republished, fresh empty memory
	// tier, same state directory.
	srv2, ps2 := boot()
	defer srv2.Close()
	defer ps2.Close()
	tok.Nonce = 2
	second, err := srv2.PrepareUpdate(1, tok)
	if err != nil {
		t.Fatal(err)
	}
	st := srv2.Stats()
	if st.Computations != 0 {
		t.Fatalf("restart recomputed the patch: %+v", st)
	}
	if st.DiskHits != 1 {
		t.Fatalf("restart did not hit the durable tier: %+v", st)
	}
	if !second.Differential || !bytes.Equal(second.Payload, first.Payload) {
		t.Fatal("restarted server served a different payload")
	}
}

// TestSignerPoolEquivalence pins the parallel signing pool: signatures
// from the pool are indistinguishable from inline ones, and a closed
// pool degrades to inline signing instead of stranding requests.
func TestSignerPoolEquivalence(t *testing.T) {
	suite := security.NewTinyCrypt()
	vendor := vendorserver.New(suite, security.MustGenerateKey("pool-vendor"))
	update := New(suite, security.MustGenerateKey("pool-server"), WithSigners(2))
	img, err := vendor.BuildImage(vendorserver.Release{
		AppID: 1, Version: 1, Firmware: bytes.Repeat([]byte("pool"), 2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := update.Publish(img); err != nil {
		t.Fatal(err)
	}

	const devices = 32
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for i := range devices {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, err := update.PrepareUpdate(1, manifest.DeviceToken{
				DeviceID: uint32(i + 1), Nonce: uint32(i + 1),
			})
			if err != nil {
				errs <- err
				return
			}
			if !u.Manifest.VerifyServerSig(suite, update.PublicKey()) {
				errs <- fmt.Errorf("device %d: pooled signature does not verify", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After Close the pool is gone but the server still signs.
	if err := update.Close(); err != nil {
		t.Fatal(err)
	}
	u, err := update.PrepareUpdate(1, manifest.DeviceToken{DeviceID: 99, Nonce: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !u.Manifest.VerifyServerSig(suite, update.PublicKey()) {
		t.Fatal("post-Close signature does not verify")
	}
}
