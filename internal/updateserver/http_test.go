package updateserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"upkit/internal/httpapi"
	"upkit/internal/manifest"
	"upkit/internal/vendorserver"
)

func newHTTPServer(t *testing.T) (*servers, *httptest.Server) {
	t.Helper()
	s := newServers(t)
	ts := httptest.NewServer(s.update.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHTTPVersionEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	s.publish(t, 0x2A, 3, bytes.Repeat([]byte("v3"), 500))

	client := &HTTPClient{BaseURL: ts.URL}
	v, err := client.Latest(context.Background(), 0x2A)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if v != 3 {
		t.Fatalf("version = %d, want 3", v)
	}
}

func TestHTTPUpdateEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	fw := bytes.Repeat([]byte("payload"), 1000)
	s.publish(t, 0x2A, 2, fw)

	client := &HTTPClient{BaseURL: ts.URL}
	tok := manifest.DeviceToken{DeviceID: 0xD1, Nonce: 0x4E}
	u, err := client.Request(context.Background(), 0x2A, tok)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if u.Manifest.Version != 2 || u.Manifest.DeviceID != 0xD1 || u.Manifest.Nonce != 0x4E {
		t.Fatalf("manifest = %+v", u.Manifest)
	}
	if !bytes.Equal(u.Payload, fw) {
		t.Fatal("payload mismatch over HTTP")
	}
	// The double signature survives the HTTP round trip.
	if !u.Manifest.VerifyVendorSig(s.suite, s.vendor.PublicKey()) {
		t.Fatal("vendor signature broken by HTTP transfer")
	}
	if !u.Manifest.VerifyServerSig(s.suite, s.update.PublicKey()) {
		t.Fatal("server signature broken by HTTP transfer")
	}
}

func TestHTTPDifferentialAndEncrypted(t *testing.T) {
	s, ts := newHTTPServer(t)
	v1 := bytes.Repeat([]byte("stable-base"), 2000)
	v2 := bytes.Clone(v1)
	copy(v2[100:], []byte("delta"))
	s.publish(t, 0x2A, 1, v1)
	s.publish(t, 0x2A, 2, v2)
	key := bytes.Repeat([]byte{0x22}, 16)
	if err := s.update.SetPayloadEncryption(key, nil); err != nil {
		t.Fatal(err)
	}

	client := &HTTPClient{BaseURL: ts.URL}
	u, err := client.Request(context.Background(), 0x2A, manifest.DeviceToken{DeviceID: 1, Nonce: 2, CurrentVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !u.Differential || !u.Encrypted {
		t.Fatalf("flags = diff %v enc %v, want both", u.Differential, u.Encrypted)
	}
	if int(u.Manifest.PatchSize)+16 != len(u.Payload) {
		t.Fatalf("payload = %d bytes, want plaintext patch %d + 16 IV", len(u.Payload), u.Manifest.PatchSize)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	s, ts := newHTTPServer(t)
	s.publish(t, 0x2A, 1, []byte("v1"))

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/api/v1/version"); got != http.StatusBadRequest {
		t.Errorf("missing app: %d", got)
	}
	if got := get("/api/v1/version?app=zz"); got != http.StatusBadRequest {
		t.Errorf("bad app: %d", got)
	}
	if got := get("/api/v1/version?app=99"); got != http.StatusNotFound {
		t.Errorf("unknown app: %d", got)
	}
	if got := post("/api/v1/update?app=2a", "not json"); got != http.StatusBadRequest {
		t.Errorf("bad token body: %d", got)
	}
	// Device already on the latest version → success-shaped 204, so a
	// proxy polling for an up-to-date device can tell "nothing to do"
	// apart from "unknown app" (404).
	if got := post("/api/v1/update?app=2a", `{"deviceId":1,"nonce":2,"currentVersion":1}`); got != http.StatusNoContent {
		t.Errorf("no new update: %d, want 204", got)
	}
	if got := post("/api/v1/update?app=99", `{"deviceId":1,"nonce":2,"currentVersion":1}`); got != http.StatusNotFound {
		t.Errorf("unknown app on update: %d, want 404", got)
	}
	if got := get("/api/v1/nope"); got != http.StatusNotFound {
		t.Errorf("unknown path: %d", got)
	}
}

func TestHTTPClientMapsNoContentToErrNoNewUpdate(t *testing.T) {
	s, ts := newHTTPServer(t)
	s.publish(t, 0x2A, 1, []byte("v1"))
	client := &HTTPClient{BaseURL: ts.URL}
	_, err := client.Request(context.Background(), 0x2A, manifest.DeviceToken{DeviceID: 1, Nonce: 2, CurrentVersion: 1})
	if !errors.Is(err, ErrNoNewUpdate) {
		t.Fatalf("error = %v, want ErrNoNewUpdate", err)
	}
}

func TestHTTPStatsEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	v1 := bytes.Repeat([]byte("stats-base"), 2000)
	v2 := bytes.Clone(v1)
	copy(v2[64:], []byte("edit"))
	s.publish(t, 0x2A, 1, v1)
	s.publish(t, 0x2A, 2, v2)

	client := &HTTPClient{BaseURL: ts.URL}
	for i := range 3 {
		tok := manifest.DeviceToken{DeviceID: uint32(i + 1), Nonce: uint32(i + 10), CurrentVersion: 1}
		if _, err := client.Request(context.Background(), 0x2A, tok); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Computations != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 computation and 2 hits", st)
	}
}

func TestHTTPClientAgainstDeadServer(t *testing.T) {
	client := &HTTPClient{BaseURL: "http://127.0.0.1:1"} // nothing listens
	if _, err := client.Latest(context.Background(), 1); err == nil {
		t.Fatal("Latest against a dead server must fail")
	}
	if _, err := client.Request(context.Background(), 1, manifest.DeviceToken{}); err == nil {
		t.Fatal("Request against a dead server must fail")
	}
}

func TestHTTPClientNon200(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	client := &HTTPClient{BaseURL: ts.URL}
	if _, err := client.Latest(context.Background(), 0x2A); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("Latest error = %v, want HTTP 500", err)
	}
	if _, err := client.Stats(context.Background()); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("Stats error = %v, want HTTP 500", err)
	}
	if _, err := client.Request(context.Background(), 0x2A, manifest.DeviceToken{}); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("Request error = %v, want HTTP 500", err)
	}
}

func TestHTTPClientContextCancelsInFlightRequest(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release // hold the response until the test ends
	}))
	defer ts.Close()
	defer close(release)

	client := &HTTPClient{BaseURL: ts.URL}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := client.Latest(ctx, 0x2A)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestHTTPClientPreCanceledContext(t *testing.T) {
	_, ts := newHTTPServer(t)
	client := &HTTPClient{BaseURL: ts.URL}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Request(ctx, 0x2A, manifest.DeviceToken{DeviceID: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestHTTPAppsEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	client := &HTTPClient{BaseURL: ts.URL}
	apps, err := client.Apps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 0 {
		t.Fatalf("empty server lists %v", apps)
	}
	s.publish(t, 0x2A, 1, []byte("v1"))
	s.publish(t, 0x2A, 2, []byte("v2"))
	s.publish(t, 7, 5, []byte("other"))
	apps, err = client.Apps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 {
		t.Fatalf("apps = %v, want 2 entries", apps)
	}
	if apps[0].AppID != 7 || apps[0].Latest != 5 || apps[0].Releases != 1 {
		t.Fatalf("apps[0] = %+v", apps[0])
	}
	if apps[1].AppID != 0x2A || apps[1].Latest != 2 || apps[1].Releases != 2 {
		t.Fatalf("apps[1] = %+v", apps[1])
	}
}

func TestHTTPPublishEndpoint(t *testing.T) {
	s, ts := newHTTPServer(t)
	client := &HTTPClient{BaseURL: ts.URL}

	fw := bytes.Repeat([]byte("uploaded"), 100)
	img, err := s.vendor.BuildImage(vendorserver.Release{
		AppID: 0x2A, Version: 3, LinkOffset: 0xFFFFFFFF, Firmware: fw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PublishImage(context.Background(), img); err != nil {
		t.Fatalf("PublishImage: %v", err)
	}
	// The uploaded release is immediately servable, signature intact.
	u, err := client.Request(context.Background(), 0x2A, manifest.DeviceToken{DeviceID: 1, Nonce: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u.Manifest.Version != 3 || !bytes.Equal(u.Payload, fw) {
		t.Fatal("uploaded release not served back")
	}
	if !u.Manifest.VerifyVendorSig(s.suite, s.vendor.PublicKey()) {
		t.Fatal("vendor signature broken by the publish round trip")
	}

	// Republishing the same version is a conflict mapped to
	// ErrStaleVersion on the client.
	if err := client.PublishImage(context.Background(), img); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("republish error = %v, want ErrStaleVersion", err)
	}
	if err := client.PublishImage(context.Background(), nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestHTTPPublishRejectsBadBodies(t *testing.T) {
	_, ts := newHTTPServer(t)
	post := func(contentType string, body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/images", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("application/json", []byte("{}")); got != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type: %d, want 415", got)
	}
	if got := post("", []byte("x")); got != http.StatusUnsupportedMediaType {
		t.Errorf("missing content type: %d, want 415", got)
	}
	if got := post("application/octet-stream", nil); got != http.StatusBadRequest {
		t.Errorf("empty body: %d, want 400", got)
	}
	if got := post("application/octet-stream", []byte("short")); got != http.StatusBadRequest {
		t.Errorf("truncated manifest: %d, want 400", got)
	}
	garbage := bytes.Repeat([]byte{0xFF}, manifest.EncodedSize+10)
	if got := post("application/octet-stream", garbage); got != http.StatusBadRequest {
		t.Errorf("garbage manifest: %d, want 400", got)
	}
}

func TestHTTPPublishSizeMismatchRejected(t *testing.T) {
	s, ts := newHTTPServer(t)
	img, err := s.vendor.BuildImage(vendorserver.Release{
		AppID: 0x2A, Version: 1, LinkOffset: 0xFFFFFFFF, Firmware: []byte("complete-firmware"),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := img.Manifest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Manifest promises len(firmware) bytes; send one fewer.
	body := append(m, img.Firmware[:len(img.Firmware)-1]...)
	resp, err := http.Post(ts.URL+"/api/v1/images", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("size mismatch: %d, want 400", resp.StatusCode)
	}
}

func TestHTTPUpdateRequiresJSONContentType(t *testing.T) {
	s, ts := newHTTPServer(t)
	s.publish(t, 0x2A, 1, []byte("v1"))
	resp, err := http.Post(ts.URL+"/api/v1/update?app=2a", "text/plain",
		strings.NewReader(`{"deviceId":1,"nonce":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("non-JSON update: %d, want 415", resp.StatusCode)
	}
	// A charset parameter on the right media type is fine.
	resp, err = http.Post(ts.URL+"/api/v1/update?app=2a", "application/json; charset=utf-8",
		strings.NewReader(`{"deviceId":1,"nonce":2,"currentVersion":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json+charset update: %d, want 200", resp.StatusCode)
	}
}

// Oversized bodies answer 413 with the shared envelope on every
// endpoint — the update endpoint used to say 400 while the images
// endpoint said 413 for the same condition.
func TestHTTPOversizedBodiesAnswer413(t *testing.T) {
	s, ts := newHTTPServer(t)
	s.publish(t, 0x2A, 1, []byte("v1"))

	huge := `{"deviceId":1,"nonce":2,"pad":"` + strings.Repeat("A", maxTokenBody) + `"}`
	resp, err := http.Post(ts.URL+"/api/v1/update?app=2a", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	env := decodeErrorEnvelope(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized token body: %d, want 413", resp.StatusCode)
	}
	if env.Error.Code != httpapi.CodeTooLarge {
		t.Fatalf("code = %q, want %q", env.Error.Code, httpapi.CodeTooLarge)
	}

	resp, err = http.Post(ts.URL+"/api/v1/images", "application/octet-stream",
		bytes.NewReader(make([]byte, maxImageBody+1)))
	if err != nil {
		t.Fatal(err)
	}
	env = decodeErrorEnvelope(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized image body: %d, want 413", resp.StatusCode)
	}
	if env.Error.Code != httpapi.CodeTooLarge {
		t.Fatalf("code = %q, want %q", env.Error.Code, httpapi.CodeTooLarge)
	}
}

// decodeErrorEnvelope asserts a response carries the shared JSON error
// envelope and closes the body.
func decodeErrorEnvelope(t *testing.T, resp *http.Response) httpapi.ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	var env httpapi.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope incomplete: %+v", env)
	}
	return env
}

func TestHTTPWrongMethodAnswers405WithAllow(t *testing.T) {
	_, ts := newHTTPServer(t)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/images", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	env := decodeErrorEnvelope(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q, want POST", allow)
	}
	if env.Error.Code != httpapi.CodeMethodNotAllowed {
		t.Fatalf("code = %q", env.Error.Code)
	}

	// GET on the same path must keep working: stats is GET-only.
	resp, err = http.Post(ts.URL+"/api/v1/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats: %d, want 405", resp.StatusCode)
	}
}

func TestHTTPErrorsUseEnvelope(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/version?app=99")
	if err != nil {
		t.Fatal(err)
	}
	if env := decodeErrorEnvelope(t, resp); env.Error.Code != "unknown_app" {
		t.Fatalf("code = %q, want unknown_app", env.Error.Code)
	}
	resp, err = http.Get(ts.URL + "/api/v1/does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	if env := decodeErrorEnvelope(t, resp); env.Error.Code != httpapi.CodeNotFound {
		t.Fatalf("code = %q, want %q", env.Error.Code, httpapi.CodeNotFound)
	}
}
