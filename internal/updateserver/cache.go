package updateserver

import (
	"container/list"
	"sync"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
	"upkit/internal/security"
)

// The differential-patch cache.
//
// Deriving a differential payload (bsdiff + LZSS, §III-B) is by far the
// most expensive thing the update server does per request, and it is
// also the only per-request work that does not depend on the requesting
// device: the patch for a given (app, fromVersion, toVersion) pair is
// identical for every device on that pair. During a campaign — one new
// release, a whole fleet on the previous one — the naive path recomputes
// the same patch once per device. The cache below computes it once,
// serves every later request from memory, and deduplicates concurrent
// first requests with a singleflight scheme so a thundering herd on a
// cold pair triggers exactly one computation while the rest block on
// its result (never on the server mutex; diffing runs outside all
// locks).
//
// Invalidation is generation-based per app: Publish and retention
// pruning bump the app's generation and drop its entries, and an
// in-flight computation only inserts its result if the generation it
// started under is still current. A computation that raced an
// invalidation still returns a correct patch to its waiters (the key
// pins the exact version pair), it just is not memoised.

// DefaultPatchCacheBytes is the patch-cache bound of a freshly
// constructed Server: a few MB, sized for a handful of hot version
// pairs of constrained-device images (tens of KiB each).
const DefaultPatchCacheBytes = 4 << 20

// cacheEntryOverhead approximates the bookkeeping bytes charged per
// entry on top of the patch itself.
const cacheEntryOverhead = 64

// CacheStats is a snapshot of the patch cache's counters, exposed via
// Server.Stats, the HTTP API (GET /api/v1/stats), and upkit-bench.
type CacheStats struct {
	// Hits counts requests served from a cached patch.
	Hits uint64 `json:"hits"`
	// Misses counts requests that found neither a cached patch nor an
	// in-flight computation and had to compute one.
	Misses uint64 `json:"misses"`
	// Waits counts requests that piggybacked on another request's
	// in-flight computation (the singleflight path).
	Waits uint64 `json:"waits"`
	// Computations counts actual bsdiff+LZSS runs, including those made
	// with the cache disabled. Under concurrency the singleflight
	// invariant is Computations == number of distinct version pairs.
	Computations uint64 `json:"computations"`
	// Evictions counts entries dropped by the LRU size bound.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped by Publish or retention
	// pruning.
	Invalidations uint64 `json:"invalidations"`
	// DiskHits counts cold in-memory lookups answered by the durable
	// patch store without a recomputation; DiskMisses counts the ones
	// that had to compute despite a disk tier being attached.
	DiskHits   uint64 `json:"diskHits"`
	DiskMisses uint64 `json:"diskMisses"`
	// Entries and Bytes describe the current cache contents.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
}

// patchKey identifies one differential payload.
type patchKey struct {
	appID uint32
	from  uint16
	to    uint16
}

// patchResult is a computed differential payload: the compressed patch,
// or the decision that no patch beats the full image (viable=false).
// Both outcomes are worth caching — recomputing a useless patch per
// request would be just as wasteful.
type patchResult struct {
	patch  []byte
	viable bool
}

func (r patchResult) size() int { return len(r.patch) + cacheEntryOverhead }

// computePatch derives the LZSS-compressed bsdiff patch from base to
// target. A patch at least as large as the target image is
// counterproductive and reported as non-viable.
func computePatch(base, target []byte) patchResult {
	patch := lzss.Encode(bsdiff.Diff(base, target))
	if len(patch) >= len(target) {
		return patchResult{}
	}
	return patchResult{patch: patch, viable: true}
}

// inflightPatch is one in-progress computation other requests can wait
// on. res is written exactly once, before done is closed.
type inflightPatch struct {
	done chan struct{}
	res  patchResult
}

// cacheEntry is one LRU element.
type cacheEntry struct {
	key patchKey
	res patchResult
}

// patchCache is the size-bounded LRU + singleflight store. It has its
// own mutex, never held while diffing, and independent of Server.mu.
type patchCache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	entries  map[patchKey]*list.Element
	lru      *list.List // front = most recently used
	inflight map[patchKey]*inflightPatch
	gens     map[uint32]uint64 // per-app invalidation generation

	// disk, when set, is the durable tier behind the LRU: memory misses
	// probe it before diffing, and fresh computations are persisted to
	// it, so warm patches survive a server restart. Records are pinned
	// to the firmware digests they were computed from, so the disk tier
	// needs no generation bookkeeping — a stale record simply fails its
	// digest check. Publish-time invalidation deliberately leaves the
	// disk tier alone: a restarted server republishing the same images
	// must find its warm set intact, and records for superseded version
	// pairs are unreachable garbage that the store's size bound
	// reclaims.
	disk *PatchStore

	hits, misses, waits, computations, evictions, invalidations, diskHits, diskMisses uint64
}

func newPatchCache(maxBytes int) *patchCache {
	return &patchCache{
		maxBytes: maxBytes,
		entries:  make(map[patchKey]*list.Element),
		lru:      list.New(),
		inflight: make(map[patchKey]*inflightPatch),
		gens:     make(map[uint32]uint64),
	}
}

// payload returns the differential payload for key, computing it from
// (base, target) at most once per distinct key across concurrent
// callers. baseDig and targetDig are the firmware digests the durable
// tier pins its records to. Callers must not mutate the returned patch
// — clone before handing it out.
func (c *patchCache) payload(key patchKey, baseDig, targetDig security.Digest, base, target []byte) patchResult {
	res, _ := c.resolve(key, baseDig, targetDig, base, target)
	return res
}

// warm is payload for the patch farm: it additionally reports whether
// the result was already resident in the memory tier, so the farm can
// tell precomputation work from no-ops.
func (c *patchCache) warm(key patchKey, baseDig, targetDig security.Digest, base, target []byte) (patchResult, bool) {
	return c.resolve(key, baseDig, targetDig, base, target)
}

// resolve is the cache's single lookup-or-compute path: memory LRU,
// then singleflight, then the durable tier, then bsdiff+LZSS. The
// singleflight dedup runs even with the memory cache disabled
// (maxBytes <= 0): a thundering herd on one cold pair must cost one
// diff, not N — disabling *retention* must not disable *dedup*. The
// disabled path only skips memoisation.
func (c *patchCache) resolve(key patchKey, baseDig, targetDig security.Digest, base, target []byte) (patchResult, bool) {
	c.mu.Lock()
	if c.maxBytes > 0 {
		if el, ok := c.entries[key]; ok {
			c.hits++
			c.lru.MoveToFront(el)
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, true
		}
	}
	if fl, ok := c.inflight[key]; ok {
		c.waits++
		c.mu.Unlock()
		<-fl.done
		return fl.res, false
	}
	c.misses++
	gen := c.gens[key.appID]
	disk := c.disk
	fl := &inflightPatch{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	var res patchResult
	fromDisk := false
	if disk != nil {
		res, fromDisk = disk.Get(key, baseDig, targetDig)
	}
	if !fromDisk {
		res = computePatch(base, target)
	}

	c.mu.Lock()
	if fromDisk {
		c.diskHits++
	} else {
		c.computations++
		if disk != nil {
			c.diskMisses++
		}
	}
	fl.res = res
	delete(c.inflight, key)
	if c.maxBytes > 0 && c.gens[key.appID] == gen {
		c.insertLocked(key, res)
	}
	c.mu.Unlock()
	close(fl.done)
	if !fromDisk && disk != nil {
		// Persist after the waiters are released: disk latency must not
		// extend the herd's wait. A failed append only costs durability
		// of this one patch.
		_ = disk.Put(key, baseDig, targetDig, res)
	}
	return res, false
}

// setDisk attaches the durable tier (construction time only).
func (c *patchCache) setDisk(ps *PatchStore) {
	c.mu.Lock()
	c.disk = ps
	c.mu.Unlock()
}

// insertLocked stores res under key and evicts from the cold end until
// the size bound holds. Entries larger than the whole bound are not
// cached at all.
func (c *patchCache) insertLocked(key patchKey, res patchResult) {
	if res.size() > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok { // lost no race, but be idempotent
		c.removeLocked(el)
	}
	for c.curBytes+res.size() > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
	el := c.lru.PushFront(&cacheEntry{key: key, res: res})
	c.entries[key] = el
	c.curBytes += res.size()
}

// removeLocked drops one LRU element.
func (c *patchCache) removeLocked(el *list.Element) {
	e := c.lru.Remove(el).(*cacheEntry)
	delete(c.entries, e.key)
	c.curBytes -= e.res.size()
}

// invalidateApp drops every cached patch for app and bumps its
// generation so racing in-flight computations do not re-insert.
func (c *patchCache) invalidateApp(appID uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[appID]++
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).key.appID == appID {
			c.removeLocked(el)
			c.invalidations++
		}
		el = next
	}
}

// setMaxBytes rebounds the cache. n <= 0 disables caching (and flushes
// everything); shrinking evicts immediately.
func (c *patchCache) setMaxBytes(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	for c.curBytes > c.maxBytes || (c.maxBytes <= 0 && c.lru.Len() > 0) {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *patchCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Waits:         c.waits,
		Computations:  c.computations,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		DiskHits:      c.diskHits,
		DiskMisses:    c.diskMisses,
		Entries:       c.lru.Len(),
		Bytes:         c.curBytes,
	}
}
