package suit

import (
	"bytes"
	"errors"
	"fmt"

	"upkit/internal/manifest"
	"upkit/internal/security"
)

// SUIT envelope and manifest key numbers (draft-ietf-suit-manifest).
const (
	keyAuthenticationWrapper = 2
	keyManifest              = 3

	keyManifestVersion        = 1
	keyManifestSequenceNumber = 2
	keyCommon                 = 3

	keyComponents     = 2
	keySharedSequence = 4

	// Parameters used inside the shared sequence.
	paramVendorIdentifier = 1
	paramClassIdentifier  = 2
	paramImageDigest      = 3
	paramImageSize        = 14

	// Directives/conditions (subset).
	directiveSetParameters = 19
)

// suitManifestVersion is the manifest format version we emit.
const suitManifestVersion = 1

// COSE constants for the authentication wrapper.
const (
	coseAlgES256  = -7
	coseHeaderAlg = 1
	coseSHA256    = -16 // suit-digest-algorithm-id: cose-alg-sha-256
)

// Envelope errors.
var (
	ErrBadEnvelope = errors.New("suit: malformed envelope")
	ErrBadAuth     = errors.New("suit: authentication failed")
)

// Manifest is the SUIT view of an update: the subset of
// draft-ietf-suit-manifest UpKit's manifests map onto.
type Manifest struct {
	// SequenceNumber is the monotonically increasing update counter —
	// UpKit's firmware version.
	SequenceNumber uint64
	// ComponentID identifies the updated component; UpKit uses
	// ["app", <appID hex>].
	ComponentID []string
	// ClassID is UpKit's AppID (the application/platform class).
	ClassID uint32
	// Digest is the SHA-256 image digest.
	Digest security.Digest
	// ImageSize is the firmware size in bytes.
	ImageSize uint32
}

// Export renders an UpKit manifest as a signed SUIT-shaped envelope:
//
//	envelope = {2: auth-wrapper bstr, 3: manifest bstr}
//	auth-wrapper = [ COSE_Sign1-shaped: [protected bstr{1: -7},
//	                 unprotected {}, payload null, signature bstr] ]
//	manifest = {1: version, 2: sequence-number, 3: common bstr}
//	common = {2: [[component-id]],
//	          4: [directive-set-parameters {1: vendor, 2: class,
//	              3: digest bstr, 14: size}]}
//
// The signature is ECDSA P-256 over SHA-256 of the manifest bstr (the
// draft signs a COSE Sig_structure; this exporter signs the manifest
// digest directly — a documented simplification, see the package note).
func Export(m *manifest.Manifest, suite security.Suite, key *security.PrivateKey) ([]byte, error) {
	manifestBytes := encodeManifest(m)
	sig, err := suite.Sign(key, suite.Digest(manifestBytes))
	if err != nil {
		return nil, fmt.Errorf("suit: sign: %w", err)
	}

	// COSE_Sign1-shaped authentication block.
	var protected cborEncoder
	protected.Map(1)
	protected.Int(coseHeaderAlg)
	protected.Int(coseAlgES256)

	var auth cborEncoder
	auth.Array(1) // one authentication block
	auth.Array(4) // COSE_Sign1 = [protected, unprotected, payload, signature]
	auth.Bytes(protected.buf)
	auth.Map(0)
	auth.Null()
	auth.Bytes(sig[:])

	var env cborEncoder
	env.Map(2)
	env.Uint(keyAuthenticationWrapper)
	env.Bytes(auth.buf)
	env.Uint(keyManifest)
	env.Bytes(manifestBytes)
	return env.buf, nil
}

// encodeManifest renders the SUIT manifest map for an UpKit manifest.
func encodeManifest(m *manifest.Manifest) []byte {
	componentID := []string{"app", fmt.Sprintf("%08x", m.AppID)}

	var params cborEncoder
	params.Map(4)
	params.Uint(paramVendorIdentifier)
	params.Bytes([]byte("upkit"))
	params.Uint(paramClassIdentifier)
	params.Uint(uint64(m.AppID))
	params.Uint(paramImageDigest)
	// SUIT_Digest = [algorithm-id, bytes], wrapped in a bstr.
	var dig cborEncoder
	dig.Array(2)
	dig.Int(coseSHA256)
	dig.Bytes(m.FirmwareDigest[:])
	params.Bytes(dig.buf)
	params.Uint(paramImageSize)
	params.Uint(uint64(m.Size))

	var shared cborEncoder
	shared.Array(2)
	shared.Uint(directiveSetParameters)
	shared.buf = append(shared.buf, params.buf...)

	var common cborEncoder
	common.Map(2)
	common.Uint(keyComponents)
	common.Array(1)
	common.Array(len(componentID))
	for _, seg := range componentID {
		common.Bytes([]byte(seg))
	}
	common.Uint(keySharedSequence)
	common.buf = append(common.buf, shared.buf...)

	var mf cborEncoder
	mf.Map(3)
	mf.Uint(keyManifestVersion)
	mf.Uint(suitManifestVersion)
	mf.Uint(keyManifestSequenceNumber)
	mf.Uint(uint64(m.Version))
	mf.Uint(keyCommon)
	mf.Bytes(common.buf)
	return mf.buf
}

// Parse decodes and verifies a SUIT envelope produced by Export. The
// signature is checked against pub before any manifest field is
// trusted.
func Parse(envelope []byte, suite security.Suite, pub *security.PublicKey) (*Manifest, error) {
	d := &cborDecoder{buf: envelope}
	pairs, err := d.Map()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	var authBytes, manifestBytes []byte
	for range pairs {
		key, err := d.Uint()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		switch key {
		case keyAuthenticationWrapper:
			if authBytes, err = d.Bytes(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		case keyManifest:
			if manifestBytes, err = d.Bytes(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		default:
			if err := d.Skip(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		}
	}
	if authBytes == nil || manifestBytes == nil {
		return nil, fmt.Errorf("%w: missing auth wrapper or manifest", ErrBadEnvelope)
	}
	sig, err := parseAuth(authBytes)
	if err != nil {
		return nil, err
	}
	if !suite.Verify(pub, suite.Digest(manifestBytes), sig) {
		return nil, ErrBadAuth
	}
	return parseManifest(manifestBytes)
}

// parseAuth extracts the signature from the COSE_Sign1-shaped block.
func parseAuth(auth []byte) (security.Signature, error) {
	var sig security.Signature
	d := &cborDecoder{buf: auth}
	blocks, err := d.Array()
	if err != nil || blocks < 1 {
		return sig, fmt.Errorf("%w: auth wrapper", ErrBadEnvelope)
	}
	n, err := d.Array()
	if err != nil || n != 4 {
		return sig, fmt.Errorf("%w: COSE_Sign1 shape", ErrBadEnvelope)
	}
	protected, err := d.Bytes()
	if err != nil {
		return sig, fmt.Errorf("%w: protected header", ErrBadEnvelope)
	}
	// Verify the declared algorithm.
	pd := &cborDecoder{buf: protected}
	pairs, err := pd.Map()
	if err != nil {
		return sig, fmt.Errorf("%w: protected header map", ErrBadEnvelope)
	}
	algOK := false
	for range pairs {
		k, err := pd.Int()
		if err != nil {
			return sig, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		v, err := pd.Int()
		if err != nil {
			return sig, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		if k == coseHeaderAlg && v == coseAlgES256 {
			algOK = true
		}
	}
	if !algOK {
		return sig, fmt.Errorf("%w: unsupported algorithm", ErrBadAuth)
	}
	if pairs, err := d.Map(); err != nil { // unprotected
		return sig, fmt.Errorf("%w: unprotected header", ErrBadEnvelope)
	} else {
		for range 2 * pairs {
			if err := d.Skip(); err != nil {
				return sig, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		}
	}
	if err := d.Null(); err != nil { // detached payload
		return sig, fmt.Errorf("%w: payload", ErrBadEnvelope)
	}
	raw, err := d.Bytes()
	if err != nil {
		return sig, fmt.Errorf("%w: signature", ErrBadEnvelope)
	}
	return security.ParseSignature(raw)
}

// parseManifest decodes the manifest map.
func parseManifest(buf []byte) (*Manifest, error) {
	d := &cborDecoder{buf: buf}
	pairs, err := d.Map()
	if err != nil {
		return nil, fmt.Errorf("%w: manifest map", ErrBadEnvelope)
	}
	out := &Manifest{}
	var common []byte
	for range pairs {
		key, err := d.Uint()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		switch key {
		case keyManifestVersion:
			v, err := d.Uint()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
			if v != suitManifestVersion {
				return nil, fmt.Errorf("%w: manifest version %d", ErrBadEnvelope, v)
			}
		case keyManifestSequenceNumber:
			if out.SequenceNumber, err = d.Uint(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		case keyCommon:
			if common, err = d.Bytes(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		default:
			if err := d.Skip(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		}
	}
	if common == nil {
		return nil, fmt.Errorf("%w: missing common block", ErrBadEnvelope)
	}
	if err := parseCommon(common, out); err != nil {
		return nil, err
	}
	return out, nil
}

// parseCommon decodes components and shared-sequence parameters.
func parseCommon(buf []byte, out *Manifest) error {
	d := &cborDecoder{buf: buf}
	pairs, err := d.Map()
	if err != nil {
		return fmt.Errorf("%w: common map", ErrBadEnvelope)
	}
	for range pairs {
		key, err := d.Uint()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		switch key {
		case keyComponents:
			comps, err := d.Array()
			if err != nil || comps < 1 {
				return fmt.Errorf("%w: components", ErrBadEnvelope)
			}
			segs, err := d.Array()
			if err != nil {
				return fmt.Errorf("%w: component id", ErrBadEnvelope)
			}
			for range segs {
				seg, err := d.Bytes()
				if err != nil {
					return fmt.Errorf("%w: component segment", ErrBadEnvelope)
				}
				out.ComponentID = append(out.ComponentID, string(seg))
			}
			for i := 1; i < comps; i++ {
				if err := d.Skip(); err != nil {
					return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
				}
			}
		case keySharedSequence:
			n, err := d.Array()
			if err != nil {
				return fmt.Errorf("%w: shared sequence", ErrBadEnvelope)
			}
			for i := 0; i < n; i += 2 {
				cmd, err := d.Uint()
				if err != nil {
					return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
				}
				if cmd != directiveSetParameters {
					if err := d.Skip(); err != nil {
						return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
					}
					continue
				}
				if err := parseParameters(d, out); err != nil {
					return err
				}
			}
		default:
			if err := d.Skip(); err != nil {
				return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		}
	}
	return nil
}

// parseParameters decodes a set-parameters map.
func parseParameters(d *cborDecoder, out *Manifest) error {
	pairs, err := d.Map()
	if err != nil {
		return fmt.Errorf("%w: parameters", ErrBadEnvelope)
	}
	for range pairs {
		key, err := d.Uint()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		switch key {
		case paramClassIdentifier:
			v, err := d.Uint()
			if err != nil {
				return fmt.Errorf("%w: class id", ErrBadEnvelope)
			}
			out.ClassID = uint32(v)
		case paramImageSize:
			v, err := d.Uint()
			if err != nil {
				return fmt.Errorf("%w: image size", ErrBadEnvelope)
			}
			out.ImageSize = uint32(v)
		case paramImageDigest:
			raw, err := d.Bytes()
			if err != nil {
				return fmt.Errorf("%w: digest", ErrBadEnvelope)
			}
			dd := &cborDecoder{buf: raw}
			n, err := dd.Array()
			if err != nil || n != 2 {
				return fmt.Errorf("%w: SUIT_Digest", ErrBadEnvelope)
			}
			alg, err := dd.Int()
			if err != nil || alg != coseSHA256 {
				return fmt.Errorf("%w: digest algorithm", ErrBadEnvelope)
			}
			db, err := dd.Bytes()
			if err != nil || len(db) != security.DigestSize {
				return fmt.Errorf("%w: digest bytes", ErrBadEnvelope)
			}
			copy(out.Digest[:], db)
		default:
			if err := d.Skip(); err != nil {
				return fmt.Errorf("%w: %v", ErrBadEnvelope, err)
			}
		}
	}
	return nil
}

// MatchesUpKit reports whether a parsed SUIT manifest describes the
// same update as an UpKit manifest (the interop check a gateway would
// perform when translating between ecosystems).
func (s *Manifest) MatchesUpKit(m *manifest.Manifest) bool {
	return s.SequenceNumber == uint64(m.Version) &&
		s.ClassID == m.AppID &&
		s.ImageSize == m.Size &&
		bytes.Equal(s.Digest[:], m.FirmwareDigest[:])
}
