package suit

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"upkit/internal/manifest"
	"upkit/internal/security"
)

func testManifest() *manifest.Manifest {
	suite := security.NewTinyCrypt()
	fw := bytes.Repeat([]byte("fw"), 5000)
	return &manifest.Manifest{
		AppID:          0x2A,
		Version:        7,
		Size:           uint32(len(fw)),
		FirmwareDigest: suite.Digest(fw),
		LinkOffset:     0xFFFFFFFF,
	}
}

func TestExportParseRoundTrip(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-signer")
	m := testManifest()
	env, err := Export(m, suite, key)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	got, err := Parse(env, suite, key.Public())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.MatchesUpKit(m) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.SequenceNumber != 7 || got.ClassID != 0x2A || got.ImageSize != m.Size {
		t.Fatalf("fields: %+v", got)
	}
	if len(got.ComponentID) != 2 || got.ComponentID[0] != "app" {
		t.Fatalf("component id: %v", got.ComponentID)
	}
}

func TestParseRejectsWrongKey(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-signer")
	other := security.MustGenerateKey("suit-other")
	env, err := Export(testManifest(), suite, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(env, suite, other.Public()); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("error = %v, want ErrBadAuth", err)
	}
}

func TestParseRejectsTamperedManifest(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-signer")
	env, err := Export(testManifest(), suite, key)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte near the end (inside the manifest bstr).
	bad := bytes.Clone(env)
	bad[len(bad)-3] ^= 0x01
	if _, err := Parse(bad, suite, key.Public()); err == nil {
		t.Fatal("tampered envelope accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-signer")
	cases := [][]byte{
		nil,
		{0x00},
		{0xA0},             // empty map
		{0xA1, 0x02, 0x40}, // auth only, empty
	}
	for _, c := range cases {
		if _, err := Parse(c, suite, key.Public()); err == nil {
			t.Errorf("Parse(%x) accepted garbage", c)
		}
	}
}

func TestMatchesUpKitDetectsDrift(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-signer")
	m := testManifest()
	env, err := Export(m, suite, key)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(env, suite, key.Public())
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*manifest.Manifest){
		func(m *manifest.Manifest) { m.Version++ },
		func(m *manifest.Manifest) { m.AppID++ },
		func(m *manifest.Manifest) { m.Size++ },
		func(m *manifest.Manifest) { m.FirmwareDigest[0] ^= 1 },
	} {
		cp := *m
		mut(&cp)
		if s.MatchesUpKit(&cp) {
			t.Fatal("MatchesUpKit missed a drifted field")
		}
	}
}

// CBOR codec round-trip properties.
func TestCBORIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		var e cborEncoder
		e.Int(v)
		d := &cborDecoder{buf: e.buf}
		got, err := d.Int()
		return err == nil && got == v && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCBORUintBoundaries(t *testing.T) {
	for _, v := range []uint64{0, 23, 24, 255, 256, 65535, 65536, 1<<32 - 1, 1 << 32, 1<<64 - 1} {
		var e cborEncoder
		e.Uint(v)
		d := &cborDecoder{buf: e.buf}
		got, err := d.Uint()
		if err != nil || got != v {
			t.Fatalf("uint %d: got %d, err %v", v, got, err)
		}
	}
}

func TestCBORBytesTextRoundTrip(t *testing.T) {
	f := func(b []byte, s string) bool {
		var e cborEncoder
		e.Bytes(b)
		e.Text(s)
		d := &cborDecoder{buf: e.buf}
		gb, err := d.Bytes()
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gs, err := d.Text()
		return err == nil && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCBORSkipNested(t *testing.T) {
	var e cborEncoder
	e.Map(2)
	e.Uint(1)
	e.Array(3)
	e.Uint(1)
	e.Bytes([]byte("x"))
	e.Map(1)
	e.Uint(9)
	e.Null()
	e.Uint(2)
	e.Text("after")

	d := &cborDecoder{buf: e.buf}
	pairs, err := d.Map()
	if err != nil || pairs != 2 {
		t.Fatal(err)
	}
	if _, err := d.Uint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Skip(); err != nil { // skip the whole nested array
		t.Fatal(err)
	}
	if _, err := d.Uint(); err != nil {
		t.Fatal(err)
	}
	s, err := d.Text()
	if err != nil || s != "after" {
		t.Fatalf("got %q, %v", s, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestCBORDecoderRejectsTruncation(t *testing.T) {
	var e cborEncoder
	e.Bytes(bytes.Repeat([]byte("x"), 300))
	for _, cut := range []int{0, 1, 2, 10, len(e.buf) - 1} {
		d := &cborDecoder{buf: e.buf[:cut]}
		if _, err := d.Bytes(); err == nil {
			t.Errorf("cut=%d: truncated bstr accepted", cut)
		}
	}
}

// Fuzz-ish robustness: random byte strings never panic the envelope
// parser.
func TestQuickParseNeverPanics(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-fuzz")
	f := func(data []byte) bool {
		_, _ = Parse(data, suite, key.Public())
		return true // only panics fail (quick recovers them as errors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagnosticRendersEnvelope(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("suit-diag")
	env, err := Export(testManifest(), suite, key)
	if err != nil {
		t.Fatal(err)
	}
	out := Diagnostic(env)
	for _, want := range []string{
		"SUIT envelope", "authentication-wrapper", "ES256",
		"sequence-number): 7", "class-id: 0x2a", "image-size: 10000",
		"image-digest: sha256",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Diagnostic missing %q:\n%s", want, out)
		}
	}
}

func TestDiagnosticHandlesGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0x01}, {0xA1, 0x02, 0x41, 0x00}} {
		out := Diagnostic(data)
		if out == "" {
			t.Errorf("Diagnostic(%x) produced empty output", data)
		}
	}
}
