package suit

import (
	"fmt"
	"strings"

	"upkit/internal/security"
)

// Diagnostic renders a SUIT envelope in a CBOR-diagnostic-flavoured,
// human-readable form (RFC 8949 §8 style) without verifying it — the
// inspection view `upkit-sign inspect-suit` prints. Parsing failures
// are rendered inline rather than returned, so a partially valid
// envelope still yields a useful dump.
func Diagnostic(envelope []byte) string {
	var b strings.Builder
	d := &cborDecoder{buf: envelope}
	pairs, err := d.Map()
	if err != nil {
		return fmt.Sprintf("<not a SUIT envelope: %v>", err)
	}
	fmt.Fprintf(&b, "SUIT envelope (%d bytes)\n", len(envelope))
	for range pairs {
		key, err := d.Uint()
		if err != nil {
			fmt.Fprintf(&b, "  <bad key: %v>\n", err)
			return b.String()
		}
		val, err := d.Bytes()
		if err != nil {
			fmt.Fprintf(&b, "  %d: <non-bstr value: %v>\n", key, err)
			return b.String()
		}
		switch key {
		case keyAuthenticationWrapper:
			fmt.Fprintf(&b, "  2 (authentication-wrapper): %d bytes\n", len(val))
			writeAuthDiag(&b, val)
		case keyManifest:
			fmt.Fprintf(&b, "  3 (manifest): %d bytes\n", len(val))
			writeManifestDiag(&b, val)
		default:
			fmt.Fprintf(&b, "  %d: bstr(%d bytes)\n", key, len(val))
		}
	}
	return b.String()
}

func writeAuthDiag(b *strings.Builder, auth []byte) {
	sig, err := parseAuth(auth)
	if err != nil {
		fmt.Fprintf(b, "    <unparseable: %v>\n", err)
		return
	}
	fmt.Fprintf(b, "    COSE_Sign1-shaped, alg ES256, signature %x…\n", sig[:8])
}

func writeManifestDiag(b *strings.Builder, raw []byte) {
	m, err := parseManifest(raw)
	if err != nil {
		fmt.Fprintf(b, "    <unparseable: %v>\n", err)
		return
	}
	fmt.Fprintf(b, "    1 (manifest-version): %d\n", suitManifestVersion)
	fmt.Fprintf(b, "    2 (sequence-number): %d\n", m.SequenceNumber)
	fmt.Fprintf(b, "    3 (common):\n")
	fmt.Fprintf(b, "      components: [%s]\n", strings.Join(m.ComponentID, "/"))
	fmt.Fprintf(b, "      class-id: %#x\n", m.ClassID)
	fmt.Fprintf(b, "      image-size: %d\n", m.ImageSize)
	var zero security.Digest
	if m.Digest != zero {
		fmt.Fprintf(b, "      image-digest: sha256 %x\n", m.Digest)
	}
}
