// Package suit implements UpKit's planned interoperation with the IETF
// SUIT manifest standard (§VIII: "Future work includes ... the support
// of the upcoming IETF SUIT standard, in order to allow inter-operation
// with a larger range of IoT solutions").
//
// It provides a minimal CBOR codec (the RFC 8949 subset SUIT needs) and
// an exporter/importer between UpKit manifests and SUIT-shaped
// envelopes modelled on draft-ietf-suit-manifest: a CBOR map with an
// authentication wrapper (COSE_Sign1-shaped) and a manifest carrying
// sequence number, component identifier, image digest, and size.
//
// Scope note: the envelope layout follows the draft's structure and key
// numbering so that SUIT-aware tooling can parse the skeleton, but the
// authentication wrapper signs the manifest digest directly rather than
// the full COSE Sig_structure; see envelope.go for the exact contract.
package suit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// CBOR major types (RFC 8949 §3.1).
const (
	majorUint  = 0
	majorNint  = 1
	majorBytes = 2
	majorText  = 3
	majorArray = 4
	majorMap   = 5
	majorTag   = 6
	majorOther = 7
)

// CBOR decode errors.
var (
	ErrCBORTruncated   = errors.New("suit: truncated cbor")
	ErrCBORUnsupported = errors.New("suit: unsupported cbor item")
	ErrCBORType        = errors.New("suit: unexpected cbor type")
)

// cborEncoder appends CBOR items to a buffer.
type cborEncoder struct {
	buf []byte
}

// head appends the type/argument header.
func (e *cborEncoder) head(major byte, arg uint64) {
	switch {
	case arg < 24:
		e.buf = append(e.buf, major<<5|byte(arg))
	case arg <= math.MaxUint8:
		e.buf = append(e.buf, major<<5|24, byte(arg))
	case arg <= math.MaxUint16:
		e.buf = append(e.buf, major<<5|25)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(arg))
	case arg <= math.MaxUint32:
		e.buf = append(e.buf, major<<5|26)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(arg))
	default:
		e.buf = append(e.buf, major<<5|27)
		e.buf = binary.BigEndian.AppendUint64(e.buf, arg)
	}
}

func (e *cborEncoder) Uint(v uint64) { e.head(majorUint, v) }
func (e *cborEncoder) Bytes(b []byte) {
	e.head(majorBytes, uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *cborEncoder) Text(s string) { e.head(majorText, uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *cborEncoder) Array(n int)   { e.head(majorArray, uint64(n)) }
func (e *cborEncoder) Map(n int)     { e.head(majorMap, uint64(n)) }
func (e *cborEncoder) Null()         { e.buf = append(e.buf, majorOther<<5|22) }

// Int encodes a possibly negative integer.
func (e *cborEncoder) Int(v int64) {
	if v >= 0 {
		e.head(majorUint, uint64(v))
	} else {
		e.head(majorNint, uint64(-v-1))
	}
}

// cborDecoder reads CBOR items from a buffer.
type cborDecoder struct {
	buf []byte
	pos int
}

// head reads a type/argument header.
func (d *cborDecoder) head() (major byte, arg uint64, err error) {
	if d.pos >= len(d.buf) {
		return 0, 0, ErrCBORTruncated
	}
	b := d.buf[d.pos]
	d.pos++
	major = b >> 5
	info := b & 0x1F
	switch {
	case info < 24:
		return major, uint64(info), nil
	case info == 24:
		if d.pos+1 > len(d.buf) {
			return 0, 0, ErrCBORTruncated
		}
		arg = uint64(d.buf[d.pos])
		d.pos++
	case info == 25:
		if d.pos+2 > len(d.buf) {
			return 0, 0, ErrCBORTruncated
		}
		arg = uint64(binary.BigEndian.Uint16(d.buf[d.pos:]))
		d.pos += 2
	case info == 26:
		if d.pos+4 > len(d.buf) {
			return 0, 0, ErrCBORTruncated
		}
		arg = uint64(binary.BigEndian.Uint32(d.buf[d.pos:]))
		d.pos += 4
	case info == 27:
		if d.pos+8 > len(d.buf) {
			return 0, 0, ErrCBORTruncated
		}
		arg = binary.BigEndian.Uint64(d.buf[d.pos:])
		d.pos += 8
	default:
		return 0, 0, fmt.Errorf("%w: additional info %d", ErrCBORUnsupported, info)
	}
	return major, arg, nil
}

// Uint reads an unsigned integer.
func (d *cborDecoder) Uint() (uint64, error) {
	major, arg, err := d.head()
	if err != nil {
		return 0, err
	}
	if major != majorUint {
		return 0, fmt.Errorf("%w: major %d, want uint", ErrCBORType, major)
	}
	return arg, nil
}

// Int reads a signed integer.
func (d *cborDecoder) Int() (int64, error) {
	major, arg, err := d.head()
	if err != nil {
		return 0, err
	}
	switch major {
	case majorUint:
		if arg > math.MaxInt64 {
			return 0, fmt.Errorf("%w: uint overflows int64", ErrCBORUnsupported)
		}
		return int64(arg), nil
	case majorNint:
		if arg > math.MaxInt64-1 {
			return 0, fmt.Errorf("%w: nint overflows int64", ErrCBORUnsupported)
		}
		return -int64(arg) - 1, nil
	default:
		return 0, fmt.Errorf("%w: major %d, want int", ErrCBORType, major)
	}
}

// Bytes reads a byte string.
func (d *cborDecoder) Bytes() ([]byte, error) {
	major, arg, err := d.head()
	if err != nil {
		return nil, err
	}
	if major != majorBytes {
		return nil, fmt.Errorf("%w: major %d, want bstr", ErrCBORType, major)
	}
	if arg > uint64(len(d.buf)-d.pos) {
		return nil, ErrCBORTruncated
	}
	out := make([]byte, arg)
	copy(out, d.buf[d.pos:])
	d.pos += int(arg)
	return out, nil
}

// Text reads a text string.
func (d *cborDecoder) Text() (string, error) {
	major, arg, err := d.head()
	if err != nil {
		return "", err
	}
	if major != majorText {
		return "", fmt.Errorf("%w: major %d, want tstr", ErrCBORType, major)
	}
	if arg > uint64(len(d.buf)-d.pos) {
		return "", ErrCBORTruncated
	}
	s := string(d.buf[d.pos : d.pos+int(arg)])
	d.pos += int(arg)
	return s, nil
}

// Array reads an array header and returns its length.
func (d *cborDecoder) Array() (int, error) {
	major, arg, err := d.head()
	if err != nil {
		return 0, err
	}
	if major != majorArray {
		return 0, fmt.Errorf("%w: major %d, want array", ErrCBORType, major)
	}
	if arg > uint64(len(d.buf)-d.pos) {
		return 0, ErrCBORTruncated // each element needs >= 1 byte
	}
	return int(arg), nil
}

// Map reads a map header and returns its pair count.
func (d *cborDecoder) Map() (int, error) {
	major, arg, err := d.head()
	if err != nil {
		return 0, err
	}
	if major != majorMap {
		return 0, fmt.Errorf("%w: major %d, want map", ErrCBORType, major)
	}
	if arg > uint64(len(d.buf)-d.pos)/2 {
		return 0, ErrCBORTruncated // each pair needs >= 2 bytes
	}
	return int(arg), nil
}

// Null consumes a null item.
func (d *cborDecoder) Null() error {
	if d.pos >= len(d.buf) {
		return ErrCBORTruncated
	}
	if d.buf[d.pos] != majorOther<<5|22 {
		return fmt.Errorf("%w: want null", ErrCBORType)
	}
	d.pos++
	return nil
}

// Skip consumes one item of any supported type (recursively).
func (d *cborDecoder) Skip() error {
	major, arg, err := d.head()
	if err != nil {
		return err
	}
	switch major {
	case majorUint, majorNint, majorOther:
		return nil
	case majorBytes, majorText:
		if arg > uint64(len(d.buf)-d.pos) {
			return ErrCBORTruncated
		}
		d.pos += int(arg)
		return nil
	case majorArray:
		for range arg {
			if err := d.Skip(); err != nil {
				return err
			}
		}
		return nil
	case majorMap:
		for range 2 * arg {
			if err := d.Skip(); err != nil {
				return err
			}
		}
		return nil
	case majorTag:
		return d.Skip()
	default:
		return fmt.Errorf("%w: major %d", ErrCBORUnsupported, major)
	}
}

// Remaining reports unread bytes (tests).
func (d *cborDecoder) Remaining() int { return len(d.buf) - d.pos }
