// Package adversary is the attacker toolbox for the adversarial testbed
// tier: an on-path CoAP interceptor (malicious border router or proxy),
// payload mutators, and a forge that crafts double-signed updates from a
// stolen update-server key.
//
// Everything here plays the attacker in UpKit's threat model (§II): the
// update channel — servers' Internet link, proxies, gateways, the radio
// — is untrusted end to end. The defences under test are the double
// signature, the per-request nonce, the key lifecycle, and the
// anti-rollback counter; the attacks are the strongest moves available
// without the vendor root key.
package adversary

import (
	"bytes"

	"upkit/internal/coap"
	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
)

// Interceptor is a malicious on-path hop. It forwards exchanges to the
// inner Exchanger, letting the attacker observe or replace requests and
// responses in flight — the position of a compromised border router in
// the pull approach. Wrap a PullClient's Ex with it.
type Interceptor struct {
	Inner coap.Exchanger
	// OnRequest may return a replacement request; nil keeps the
	// original.
	OnRequest func(req *coap.Message) *coap.Message
	// OnResponse may return a replacement response; nil keeps the
	// original. It sees the (possibly replaced) request for context.
	OnResponse func(req, resp *coap.Message) *coap.Message
}

// Exchange implements coap.Exchanger.
func (i *Interceptor) Exchange(req *coap.Message) (*coap.Message, error) {
	if i.OnRequest != nil {
		if alt := i.OnRequest(req); alt != nil {
			req = alt
		}
	}
	resp, err := i.Inner.Exchange(req)
	if err != nil {
		return nil, err
	}
	if i.OnResponse != nil {
		if alt := i.OnResponse(req, resp); alt != nil {
			resp = alt
		}
	}
	return resp, nil
}

// FlipBitInBlock returns an OnResponse hook that flips one bit in the
// payload of image block num — a proxy corrupting firmware mid-transfer.
// It poisons both transfer paths: the session-bound /upkit/image and the
// content-addressed /upkit/blocks (a poisoned block cache). Other
// resources and other blocks pass through untouched, so the transfer
// proceeds normally until the mutated block reaches the device's digest
// pipeline.
func FlipBitInBlock(num uint32, bit int) func(req, resp *coap.Message) *coap.Message {
	return func(req, resp *coap.Message) *coap.Message {
		if path := req.Path(); path != coap.PathImage && path != coap.PathBlocks {
			return nil
		}
		if len(resp.Payload) == 0 {
			return nil
		}
		raw, has := resp.Option(coap.OptBlock2)
		if !has {
			return nil
		}
		b, err := coap.ParseBlock(raw)
		if err != nil || b.Num != num {
			return nil
		}
		resp.Payload = bytes.Clone(resp.Payload)
		resp.Payload[(bit/8)%len(resp.Payload)] ^= 1 << (bit % 8)
		return resp
	}
}

// ForgeUpdate crafts a double-signed update from a captured vendor-
// signed image using a stolen update-server key: the attacker fills the
// token fields for the victim device and re-signs, byte-for-byte what
// the legitimate server would produce. Both signatures verify — only
// the key lifecycle (a revoked server key ID) or the manifest gates
// (nonce, version, anti-rollback, expiry) can stop it, which is exactly
// what the compromise scenarios assert.
func ForgeUpdate(suite security.Suite, img *vendorserver.Image, stolen *security.PrivateKey, keyID uint32, tok manifest.DeviceToken) (*updateserver.Update, error) {
	m := img.Manifest // copy; the captured image stays pristine
	m.DeviceID = tok.DeviceID
	m.Nonce = tok.Nonce
	m.OldVersion = 0 // full image: the attacker has no differential base
	m.PatchSize = 0
	m.ServerKeyID = keyID
	if err := m.SignServer(suite, stolen); err != nil {
		return nil, err
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &updateserver.Update{
		Manifest:      m,
		ManifestBytes: enc,
		Payload:       bytes.Clone(img.Firmware),
	}, nil
}
