// Package simdev provides the synthetic device fleet shared by the
// load harness and the campaign control plane: a few dozen bytes of
// state per device and no real update work, so the campaign engine —
// scheduling, aggregation, breaker, checkpointing — can be exercised
// at 100k–1M devices, far past what full testbed stacks fit in memory.
//
// Fleets are deterministic in (size, fail rate): the same parameters
// always produce the same device IDs and the same failing population.
// That determinism is what lets a control plane rebuild an identical
// fleet after a process restart and resume a checkpointed campaign
// against the same fault pattern.
package simdev

import (
	"errors"
	"time"

	"upkit/internal/fleet"
)

// ErrSimFailure is the deterministic failure every failing sim device
// reports.
var ErrSimFailure = errors.New("simdev: simulated device failure")

// IDBase is the first device ID in a sim fleet; device i gets
// IDBase + i, matching the testbed's device-ID convention.
const IDBase = 0xB000

// Device is a synthetic fleet.Updater starting at version 1.
type Device struct {
	id      uint32
	version uint16
	fail    bool
	latency time.Duration
}

func (u *Device) ID() uint32      { return u.id }
func (u *Device) Version() uint16 { return u.version }

// TryUpdate sleeps the configured latency, then either reports the
// deterministic failure or lands on version 2.
func (u *Device) TryUpdate() (uint16, error) {
	if u.latency > 0 {
		time.Sleep(u.latency)
	}
	if u.fail {
		return u.version, ErrSimFailure
	}
	u.version = 2
	return 2, nil
}

// Fails spreads rate deterministically across device indices (a
// Fibonacci-hash coin flip), so the failing population is stable for a
// given fleet size.
func Fails(i int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := uint32(i) * 2654435761 // Knuth's multiplicative hash
	return float64(h%1_000_000) < rate*1_000_000
}

// Build wires an n-device synthetic fleet, every device on v1.
func Build(n int, failRate float64, latency time.Duration) []fleet.Updater {
	ups := make([]fleet.Updater, n)
	for i := range ups {
		ups[i] = &Device{
			id:      uint32(IDBase + i),
			version: 1,
			fail:    Fails(i, failRate),
			latency: latency,
		}
	}
	return ups
}
