package manifest

import (
	"testing"

	"upkit/internal/security"
)

func BenchmarkMarshal(b *testing.B) {
	m := sampleManifest()
	b.ReportAllocs()
	for range b.N {
		if _, err := m.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	enc, _ := sampleManifest().MarshalBinary()
	b.ReportAllocs()
	for range b.N {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDoubleSign(b *testing.B) {
	suite := security.NewTinyCrypt()
	vendorKey := security.MustGenerateKey("bench-vendor")
	serverKey := security.MustGenerateKey("bench-server")
	m := sampleManifest()
	b.ReportAllocs()
	for range b.N {
		if err := m.SignVendor(suite, vendorKey); err != nil {
			b.Fatal(err)
		}
		if err := m.SignServer(suite, serverKey); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDoubleVerify(b *testing.B) {
	suite := security.NewTinyCrypt()
	vendorKey := security.MustGenerateKey("bench-vendor")
	serverKey := security.MustGenerateKey("bench-server")
	m := sampleManifest()
	if err := m.SignVendor(suite, vendorKey); err != nil {
		b.Fatal(err)
	}
	if err := m.SignServer(suite, serverKey); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		if !m.VerifyVendorSig(suite, vendorKey.Public()) ||
			!m.VerifyServerSig(suite, serverKey.Public()) {
			b.Fatal("verification failed")
		}
	}
}
