package manifest

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the manifest decoder. The
// decoder sits directly behind the radio — the first parser an attacker
// reaches — so the contract is: never panic, reject with a typed error,
// and re-encode accepted input byte-for-byte (the encoding is
// canonical; no two wire forms decode to the same manifest).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, EncodedSize))
	f.Add([]byte{0x55, 0x50, 0x4B, 0x54}) // bare magic

	valid := Manifest{
		AppID:           0x2A,
		Version:         2,
		Size:            4096,
		LinkOffset:      0xFFFFFFFF,
		SecurityVersion: 3,
		NotAfter:        1_800_000_000,
		VendorKeyID:     1,
		DeviceID:        0xD1,
		Nonce:           0xC0FFEE,
		ServerKeyID:     1,
	}
	if enc, err := valid.MarshalBinary(); err == nil {
		f.Add(enc)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		reenc, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded manifest failed to re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, reenc)
		}
	})
}
