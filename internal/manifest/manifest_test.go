package manifest

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"upkit/internal/security"
)

func sampleManifest() *Manifest {
	return &Manifest{
		AppID:           0xA11CE5,
		Version:         7,
		Size:            102400,
		FirmwareDigest:  security.Digest{1, 2, 3, 4},
		LinkOffset:      0x2_0000,
		SecurityVersion: 3,
		NotAfter:        1_900_000_000,
		VendorKeyID:     2,
		DeviceID:        0xDEADBEEF,
		Nonce:           0xCAFE0001,
		OldVersion:      6,
		PatchSize:       2048,
		ServerKeyID:     5,
	}
}

func TestEncodedSizeIsStable(t *testing.T) {
	// The wire format is a contract with deployed devices: 67-byte
	// vendor part (v2 added security version, expiry, and vendor key
	// ID) + 64-byte signature + 18-byte token part (v2 added the server
	// key ID) + 64-byte signature.
	if EncodedSize != 213 {
		t.Fatalf("EncodedSize = %d, want 213", EncodedSize)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	m.VendorSig = security.Signature{0xAA, 0xBB}
	m.ServerSig = security.Signature{0xCC, 0xDD}
	enc, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(enc) != EncodedSize {
		t.Fatalf("encoded length = %d, want %d", len(enc), EncodedSize)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if *got != *m {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, m)
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	m := sampleManifest()
	enc, _ := m.MarshalBinary()
	for _, n := range []int{0, 1, EncodedSize - 1, EncodedSize + 1} {
		buf := make([]byte, n)
		copy(buf, enc)
		if _, err := Unmarshal(buf); !errors.Is(err, ErrTruncated) {
			t.Errorf("Unmarshal(%d bytes) error = %v, want ErrTruncated", n, err)
		}
	}
}

func TestUnmarshalRejectsBadMagic(t *testing.T) {
	m := sampleManifest()
	enc, _ := m.MarshalBinary()
	enc[0] ^= 0xFF
	if _, err := Unmarshal(enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("error = %v, want ErrBadMagic", err)
	}
}

func TestUnmarshalRejectsBadFormatVersion(t *testing.T) {
	m := sampleManifest()
	enc, _ := m.MarshalBinary()
	enc[4] = 99
	if _, err := Unmarshal(enc); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("error = %v, want ErrBadVersion", err)
	}
}

func TestDeviceTokenRoundTrip(t *testing.T) {
	tok := DeviceToken{DeviceID: 0x01020304, Nonce: 0x05060708, CurrentVersion: 42}
	enc, err := tok.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(enc) != TokenEncodedSize {
		t.Fatalf("token length = %d, want %d", len(enc), TokenEncodedSize)
	}
	var got DeviceToken
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got != tok {
		t.Fatalf("round trip mismatch: got %+v, want %+v", got, tok)
	}
}

func TestDeviceTokenRejectsWrongLength(t *testing.T) {
	var tok DeviceToken
	if err := tok.UnmarshalBinary(make([]byte, TokenEncodedSize-1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("error = %v, want ErrTruncated", err)
	}
}

func TestSupportsDifferential(t *testing.T) {
	if (DeviceToken{CurrentVersion: 0}).SupportsDifferential() {
		t.Error("version 0 must mean no differential support")
	}
	if !(DeviceToken{CurrentVersion: 3}).SupportsDifferential() {
		t.Error("non-zero version must mean differential support")
	}
}

func TestIsDifferentialAndPayloadSize(t *testing.T) {
	m := sampleManifest() // OldVersion=6, PatchSize=2048
	if !m.IsDifferential() {
		t.Fatal("manifest with OldVersion != 0 must be differential")
	}
	if got := m.PayloadSize(); got != 2048 {
		t.Fatalf("PayloadSize() = %d, want patch size 2048", got)
	}
	m.OldVersion = 0
	if m.IsDifferential() {
		t.Fatal("manifest with OldVersion == 0 must be full-image")
	}
	if got := m.PayloadSize(); got != m.Size {
		t.Fatalf("PayloadSize() = %d, want firmware size %d", got, m.Size)
	}
}

func TestDoubleSignatureVerifies(t *testing.T) {
	suite := security.NewTinyCrypt()
	vendorKey := security.MustGenerateKey("vendor")
	serverKey := security.MustGenerateKey("server")

	m := sampleManifest()
	if err := m.SignVendor(suite, vendorKey); err != nil {
		t.Fatalf("SignVendor: %v", err)
	}
	if err := m.SignServer(suite, serverKey); err != nil {
		t.Fatalf("SignServer: %v", err)
	}
	if !m.VerifyVendorSig(suite, vendorKey.Public()) {
		t.Fatal("vendor signature did not verify")
	}
	if !m.VerifyServerSig(suite, serverKey.Public()) {
		t.Fatal("server signature did not verify")
	}
	// Cross-check: the wrong key must not verify either signature.
	if m.VerifyVendorSig(suite, serverKey.Public()) {
		t.Fatal("vendor signature verified with server key")
	}
	if m.VerifyServerSig(suite, vendorKey.Public()) {
		t.Fatal("server signature verified with vendor key")
	}
}

// The server signature must cover the token fields: re-signing is needed
// for every request, which is what grants freshness.
func TestServerSigCoversTokenFields(t *testing.T) {
	suite := security.NewTinyCrypt()
	vendorKey := security.MustGenerateKey("vendor")
	serverKey := security.MustGenerateKey("server")

	m := sampleManifest()
	if err := m.SignVendor(suite, vendorKey); err != nil {
		t.Fatalf("SignVendor: %v", err)
	}
	if err := m.SignServer(suite, serverKey); err != nil {
		t.Fatalf("SignServer: %v", err)
	}

	mutations := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"nonce", func(m *Manifest) { m.Nonce++ }},
		{"device id", func(m *Manifest) { m.DeviceID++ }},
		{"old version", func(m *Manifest) { m.OldVersion++ }},
		{"patch size", func(m *Manifest) { m.PatchSize++ }},
		{"vendor sig", func(m *Manifest) { m.VendorSig[0] ^= 1 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cp := *m
			tc.mut(&cp)
			if cp.VerifyServerSig(suite, serverKey.Public()) {
				t.Fatalf("server signature still verified after mutating %s", tc.name)
			}
		})
	}
}

// The vendor signature must cover every firmware-description field.
func TestVendorSigCoversFirmwareFields(t *testing.T) {
	suite := security.NewTinyCrypt()
	vendorKey := security.MustGenerateKey("vendor")

	m := sampleManifest()
	if err := m.SignVendor(suite, vendorKey); err != nil {
		t.Fatalf("SignVendor: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"app id", func(m *Manifest) { m.AppID++ }},
		{"version", func(m *Manifest) { m.Version++ }},
		{"size", func(m *Manifest) { m.Size++ }},
		{"digest", func(m *Manifest) { m.FirmwareDigest[0] ^= 1 }},
		{"link offset", func(m *Manifest) { m.LinkOffset++ }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cp := *m
			tc.mut(&cp)
			if cp.VerifyVendorSig(suite, vendorKey.Public()) {
				t.Fatalf("vendor signature still verified after mutating %s", tc.name)
			}
		})
	}
	// Vendor signature must NOT cover token fields — the server fills
	// those later, per request.
	cp := *m
	cp.Nonce++
	cp.DeviceID++
	if !cp.VerifyVendorSig(suite, vendorKey.Public()) {
		t.Fatal("vendor signature must be independent of token fields")
	}
}

// Property: every manifest survives an encode/decode round trip intact.
func TestQuickManifestRoundTrip(t *testing.T) {
	f := func(appID uint32, version uint16, size uint32, digest [32]byte,
		linkOffset, deviceID, nonce uint32, oldVersion uint16, patchSize uint32,
		vsig, ssig [64]byte) bool {
		m := Manifest{
			AppID:          appID,
			Version:        version,
			Size:           size,
			FirmwareDigest: security.Digest(digest),
			LinkOffset:     linkOffset,
			VendorSig:      security.Signature(vsig),
			DeviceID:       deviceID,
			Nonce:          nonce,
			OldVersion:     oldVersion,
			PatchSize:      patchSize,
			ServerSig:      security.Signature(ssig),
		}
		enc, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Unmarshal(enc)
		return err == nil && *got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of the encoding either fails to
// parse or decodes to a different manifest (no silent aliasing), except
// in the signature fields which are opaque until verification.
func TestQuickCorruptionNeverAliases(t *testing.T) {
	m := sampleManifest()
	enc, _ := m.MarshalBinary()
	f := func(pos uint16, delta byte) bool {
		if delta == 0 {
			return true
		}
		i := int(pos) % len(enc)
		bad := bytes.Clone(enc)
		bad[i] ^= delta
		got, err := Unmarshal(bad)
		if err != nil {
			return true // rejected: fine
		}
		return *got != *m // decoded, but must differ somewhere
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
