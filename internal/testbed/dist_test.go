package testbed

import (
	"errors"
	"testing"

	"upkit/internal/adversary"
	"upkit/internal/coap"
	"upkit/internal/dist"
	"upkit/internal/events"
	"upkit/internal/platform"
	"upkit/internal/proxy"
	"upkit/internal/security"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
	"upkit/internal/verifier"
)

// The distribution tier: devices pull named blocks through caching
// proxies and peers instead of straight from the origin. These tests
// cover the honest topologies; the poisoned-cache attacks live with the
// other adversarial tests below (TestAdversary*).

// distBed builds a bed whose pull clients run the content-addressed
// path through a caching proxy.
func distBed(t *testing.T, seed string) (*Bed, *proxy.Cache) {
	t.Helper()
	b := newBed(t, Options{Approach: platform.Pull, Seed: seed})
	if err := b.PublishVersion(2, MakeFirmware(seed+"-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	cache := proxy.NewCache(&coap.Loopback{Handler: b.PullHandler()}, proxy.CacheOptions{})
	b.Distribute(cache.Handle, BlockRoute{Name: "proxy", Handler: cache.Handle})
	return b, cache
}

func TestDistributeUpdatesThroughProxy(t *testing.T) {
	b, cache := distBed(t, "dist-proxy")
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("PullUpdate through proxy: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	if st := cache.Stats(); st.Fills == 0 {
		t.Fatalf("cache stats = %+v: transfer must have filled the proxy", st)
	}
}

// TestPeerAssistedDistribution: the first device's verified download is
// admitted into a shared peer registry; the second device's transfer is
// then served from that peer without touching the origin for blocks.
func TestPeerAssistedDistribution(t *testing.T) {
	suite, err := security.SuiteByName("tinycrypt", nil)
	if err != nil {
		t.Fatal(err)
	}
	vendor := vendorserver.New(suite, security.MustGenerateKey("dist-peer-vendor"))
	update := updateserver.New(suite, security.MustGenerateKey("dist-peer-server"))
	vendor.SetTelemetry(update.Telemetry())
	pull := coap.NewPullServer(update)
	peers := dist.NewRegistry(0)
	peerSrv := &coap.BlockServer{Source: peers}

	newPeerBed := func(deviceID uint32, seed string) *Bed {
		b, err := New(Options{
			Approach:     platform.Pull,
			DeviceID:     deviceID,
			Seed:         seed,
			SharedVendor: vendor,
			SharedUpdate: update,
			SharedPull:   pull,
		}, MakeFirmware("dist-peer-v1", fwSize))
		if err != nil {
			t.Fatal(err)
		}
		b.Distribute(nil, BlockRoute{Name: "peer", Handler: peerSrv.Handle})
		b.ShareBlocks(peers)
		return b
	}

	a := newPeerBed(0xA11CE, "dist-peer-a")
	c := newPeerBed(0xB0B, "dist-peer-b")
	if err := a.PublishVersion(2, MakeFirmware("dist-peer-v2", fwSize)); err != nil {
		t.Fatal(err)
	}

	// Device A updates; its peer route has nothing yet, so it fails over
	// to the origin — and then seeds the peer registry.
	if res, err := a.PullUpdate(); err != nil || res.Version != 2 {
		t.Fatalf("device A: res=%+v err=%v", res, err)
	}
	if st := peers.Stats(); st.Entries == 0 {
		t.Fatal("device A's download did not seed the peer registry")
	}

	// Device B's blocks now come from the peer.
	hitsBefore := peers.Stats().Hits
	if res, err := c.PullUpdate(); err != nil || res.Version != 2 {
		t.Fatalf("device B: res=%+v err=%v", res, err)
	}
	if peers.Stats().Hits <= hitsBefore {
		t.Fatal("device B's transfer did not hit the peer registry")
	}
}

// TestAdversaryPoisonedProxyCache: a caching proxy serves mutated block
// bytes (flipped bit — cache corruption or a hostile proxy). The digest
// check rejects the stream with the exact reject label, the device
// fails over to the origin, and the update still completes.
func TestAdversaryPoisonedProxyCache(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Seed: "adv-cache-mut"})
	if err := b.PublishVersion(2, MakeFirmware("adv-cache-mut-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	cache := proxy.NewCache(&coap.Loopback{Handler: b.PullHandler()}, proxy.CacheOptions{})
	flip := adversary.FlipBitInBlock(5, 3)
	poisoned := func(req *coap.Message) *coap.Message {
		resp := cache.Handle(req)
		if alt := flip(req, resp); alt != nil {
			resp = alt
		}
		return resp
	}
	b.Distribute(cache.Handle, BlockRoute{Name: "proxy", Handler: poisoned})

	before := rejectCount(b, "agent", "digest")
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("update despite poisoned proxy: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2 via origin failover", res.Version)
	}
	if got := rejectCount(b, "agent", "digest"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,digest} = %d, want %d", got, before+1)
	}
	if b.Device.Events.Count(events.KindFirmwareRejected) == 0 {
		t.Fatal("no KindFirmwareRejected event")
	}
	if b.Device.Events.Count(events.KindSourceFailover) == 0 {
		t.Fatal("no KindSourceFailover event")
	}
}

// TestAdversaryStaleCacheContent: the proxy serves valid-looking bytes
// of the PREVIOUS firmware version under the new payload's name — a
// stale or deliberately regressive cache. Wrong bytes under a right
// name are exactly what the content address plus digest check exist to
// catch.
func TestAdversaryStaleCacheContent(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Seed: "adv-cache-stale"})
	if err := b.PublishVersion(2, MakeFirmware("adv-cache-stale-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	v1img, ok := b.Update.ImageByVersion(b.opts.AppID, 1)
	if !ok {
		t.Fatal("v1 image not in store")
	}
	stale := v1img.Firmware

	cache := proxy.NewCache(&coap.Loopback{Handler: b.PullHandler()}, proxy.CacheOptions{})
	poisoned := func(req *coap.Message) *coap.Message {
		resp := cache.Handle(req)
		if req.Path() != coap.PathBlocks || resp.Code != coap.CodeContent || len(resp.Payload) == 0 {
			return resp
		}
		raw, has := resp.Option(coap.OptBlock2)
		if !has {
			return resp
		}
		blk, err := coap.ParseBlock(raw)
		if err != nil {
			return resp
		}
		// Substitute the same-length slice of the old version's bytes.
		out := make([]byte, len(resp.Payload))
		start := int(blk.Num) * blk.Size()
		if start < len(stale) {
			copy(out, stale[start:min(start+len(out), len(stale))])
		}
		resp.Payload = out
		return resp
	}
	b.Distribute(cache.Handle, BlockRoute{Name: "proxy", Handler: poisoned})

	before := rejectCount(b, "agent", "digest")
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("update despite stale cache: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2 via origin failover", res.Version)
	}
	if got := rejectCount(b, "agent", "digest"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,digest} = %d, want %d", got, before+1)
	}
	if b.Device.Events.Count(events.KindSourceFailover) == 0 {
		t.Fatal("no KindSourceFailover event")
	}
}

// TestAdversaryFullyPoisonedDistribution: every source — proxy and
// origin — serves mutated blocks. The update must fail outright, with
// one digest rejection per source, and the device must keep booting its
// old image: availability survives a fully hostile distribution tier.
func TestAdversaryFullyPoisonedDistribution(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Seed: "adv-cache-all"})
	if err := b.PublishVersion(2, MakeFirmware("adv-cache-all-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	cache := proxy.NewCache(&coap.Loopback{Handler: b.PullHandler()}, proxy.CacheOptions{})
	b.Distribute(cache.Handle, BlockRoute{Name: "proxy", Handler: cache.Handle})

	c := b.PullClient()
	for i := range c.Sources {
		c.Sources[i].Ex = &adversary.Interceptor{
			Inner:      c.Sources[i].Ex,
			OnResponse: adversary.FlipBitInBlock(5, 3),
		}
	}

	before := rejectCount(b, "agent", "digest")
	staged, err := c.CheckAndUpdate()
	if staged || err == nil {
		t.Fatalf("fully poisoned distribution: staged=%v err=%v, want failure", staged, err)
	}
	if !errors.Is(err, verifier.ErrDigest) {
		t.Fatalf("error = %v, want ErrDigest in the chain", err)
	}
	var se *coap.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want *SourceError naming the last source", err)
	}
	if got := rejectCount(b, "agent", "digest"); got != before+2 {
		t.Fatalf("upkit_reject_total{agent,digest} = %d, want %d (one per source)", got, before+2)
	}
	assertWaitingAndBootable(t, b, 1)

	// The moment one honest path exists again, the update completes.
	b.Distribute(cache.Handle, BlockRoute{Name: "proxy", Handler: cache.Handle})
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("retry booted v%d, want v2", res.Version)
	}
}
