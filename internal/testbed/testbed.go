// Package testbed wires a complete UpKit deployment — vendor server,
// update server, proxy or border router, and one simulated device —
// into a single object. The integration tests, the experiment harness,
// and the examples all build on it.
package testbed

import (
	"errors"
	"fmt"
	"io"
	"time"

	"upkit/internal/ble"
	"upkit/internal/bootloader"
	"upkit/internal/coap"
	"upkit/internal/device"
	"upkit/internal/dist"
	"upkit/internal/manifest"
	"upkit/internal/platform"
	"upkit/internal/proxy"
	"upkit/internal/security"
	"upkit/internal/telemetry"
	"upkit/internal/transport"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
	"upkit/internal/verifier"
)

// Options configures a testbed.
type Options struct {
	// MCU defaults to the nRF52840.
	MCU *platform.MCU
	// Mode defaults to static (Configuration B).
	Mode bootloader.Mode
	// Approach selects the transport wiring and the default slot size.
	Approach platform.Approach
	// SlotBytes overrides platform.BuildSlotBytes(Approach).
	SlotBytes int
	// SuiteName picks the crypto library ("tinycrypt" default).
	SuiteName string
	// Differential enables differential updates on the device.
	Differential bool
	// Encrypted enables payload encryption end to end: the update
	// server encrypts, the device's pipeline decrypts (§VIII).
	Encrypted bool
	// WithRecovery allocates the factory-image recovery slot (Fig. 6,
	// Configuration B).
	WithRecovery bool
	// DeviceID and AppID identify the device; defaults are applied.
	DeviceID uint32
	AppID    uint32
	// Seed differentiates deterministic key/nonce streams per testbed.
	Seed string
	// PayloadSeed, when non-empty, derives the payload-encryption key
	// and IV stream from this seed instead of Seed. Beds sharing one
	// update server must agree on it: the server holds a single payload
	// key, so per-bed Seed-derived keys would overwrite each other.
	PayloadSeed string
	// SharedVendor and SharedUpdate, when set, reuse existing servers
	// instead of creating per-bed ones: many beds against one update
	// server model a fleet hitting the same Internet-facing endpoint
	// (and exercising its patch cache). The suite named by SuiteName
	// must match the one the shared servers sign with. Shared servers
	// are safe to build beds against from multiple goroutines; wire a
	// shared vendor's telemetry yourself (once, beforehand), since the
	// bed no longer mutates servers it does not own.
	SharedVendor *vendorserver.Server
	SharedUpdate *updateserver.Server
	// SharedPull, when set, reuses an existing CoAP pull server instead
	// of creating a per-bed one. Distribution topologies need this: a
	// caching proxy's origin hop must reach the same session table the
	// devices established their sessions in, so every bed behind one
	// proxy shares one pull server. Requires SharedUpdate (the pull
	// server serves that update server's state).
	SharedPull *coap.PullServer
	// Telemetry overrides the metrics registry the whole bed reports
	// into. Nil selects the update server's own registry, so beds
	// sharing a server aggregate into one scrape.
	Telemetry *telemetry.Registry
	// CheckpointEvery sets the device agent's reception-journal cadence
	// in flushed bytes; zero keeps the agent default (four pipeline
	// buffers).
	CheckpointEvery int
	// Lifecycle enables the key-lifecycle wiring: a vendor root key is
	// derived from Seed, the vendor and server signing keys get explicit
	// key IDs (starting at 1) bound by root-signed KeyRecords, the device
	// verifies through a Keystore instead of static keys, and the bed
	// gains rotation/revocation helpers. Incompatible with SharedVendor/
	// SharedUpdate (the bed must own the signing keys it rotates).
	Lifecycle bool
}

// Bed is a wired deployment.
type Bed struct {
	Suite  security.Suite
	Vendor *vendorserver.Server
	Update *updateserver.Server
	Device *device.Device

	// Link is the device's radio link (BLE for push, 802.15.4 for pull).
	Link *transport.Link

	// Keystore is the device's lifecycle key table (nil unless
	// Options.Lifecycle). Root is the vendor root signing key — in a
	// real deployment it lives in the vendor's HSM; the bed holds it to
	// issue records and revocations.
	Keystore *security.Keystore
	Root     *security.PrivateKey

	opts Options
	tel  *telemetry.Registry
	// pull is the bed's single CoAP pull server: its session table must
	// survive across PullClient calls so a device resuming after a power
	// cycle re-joins the same prepared session (same payload bytes).
	pull *coap.PullServer

	// Distribution topology (see Distribute/ShareBlocks): front replaces
	// the origin as the device's control-traffic endpoint, routes are the
	// block sources tried before the origin, and sink receives verified
	// payloads for peer-assisted serving.
	front  coap.Handler
	routes []BlockRoute
	sink   func(payload []byte)

	// Key-lifecycle state: the signing keys currently in service, the
	// issued records (re-published in every bundle), and the cumulative
	// revocation set with its sequence counter.
	vendorKey, serverKey     *security.PrivateKey
	vendorKeyID, serverKeyID uint32
	records                  []*security.KeyRecord
	revoked                  []security.RevocationEntry
	rlSeq                    uint32
	// epoch anchors the simulated wall clock (Unix seconds at boot); the
	// device clock's virtual elapsed time is added on top.
	epoch uint64
}

// Telemetry returns the registry the bed reports into.
func (b *Bed) Telemetry() *telemetry.Registry { return b.tel }

func (o *Options) applyDefaults() {
	if o.MCU == nil {
		m := platform.NRF52840()
		o.MCU = &m
	}
	if o.Mode == 0 {
		o.Mode = bootloader.ModeStatic
	}
	if o.Approach == 0 {
		o.Approach = platform.Pull
	}
	if o.SlotBytes == 0 {
		o.SlotBytes = platform.BuildSlotBytes(o.Approach)
	}
	if o.SuiteName == "" {
		o.SuiteName = "tinycrypt"
	}
	if o.DeviceID == 0 {
		o.DeviceID = 0xD0D0CAFE
	}
	if o.AppID == 0 {
		o.AppID = 0x2A
	}
	if o.Seed == "" {
		o.Seed = "testbed"
	}
}

// New builds the deployment and factory-provisions the device with the
// given version-1 firmware.
func New(opts Options, factoryFirmware []byte) (*Bed, error) {
	opts.applyDefaults()
	suite, err := security.SuiteByName(opts.SuiteName, nil)
	if err != nil {
		return nil, err
	}
	if opts.Lifecycle && (opts.SharedVendor != nil || opts.SharedUpdate != nil) {
		return nil, errors.New("testbed: Lifecycle requires bed-owned servers")
	}
	vendorKey := security.MustGenerateKey(opts.Seed + "-vendor")
	serverKey := security.MustGenerateKey(opts.Seed + "-server")
	vendor := opts.SharedVendor
	if vendor == nil {
		vendor = vendorserver.New(suite, vendorKey)
	}
	update := opts.SharedUpdate
	if update == nil {
		update = updateserver.New(suite, serverKey)
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = update.Telemetry()
	}
	// A bed-local vendor is wired into the bed's registry here. A shared
	// vendor is the sharer's to wire (once, before building beds):
	// SetTelemetry is a plain field write, and fleet builders create
	// beds from many goroutines in parallel.
	if opts.SharedVendor == nil {
		vendor.SetTelemetry(reg)
	}

	var payloadKey []byte
	if opts.Encrypted {
		payloadSeed := opts.PayloadSeed
		if payloadSeed == "" {
			payloadSeed = opts.Seed
		}
		payloadKey = make([]byte, 16)
		if _, err := io.ReadFull(security.NewDeterministicReader(payloadSeed+"-payload-key"), payloadKey); err != nil {
			return nil, err
		}
		if err := update.SetPayloadEncryption(payloadKey, security.NewDeterministicReader(payloadSeed+"-iv")); err != nil {
			return nil, err
		}
	}

	b := &Bed{Suite: suite, Vendor: vendor, Update: update, opts: opts, tel: reg}

	var keySource verifier.KeySource
	var timeSource func() uint64
	if opts.Lifecycle {
		// The device's wall clock is the bed epoch plus the virtual time
		// the simulation has advanced — expiry tests just advance the
		// device clock. The closure reads b.Device, set a few lines down;
		// nothing calls it before the device exists.
		b.epoch = 1_754_000_000 // an arbitrary recent Unix time
		timeSource = func() uint64 {
			return b.epoch + uint64(b.Device.Clock.Now()/time.Second)
		}
		b.Root = security.MustGenerateKey(opts.Seed + "-root")
		b.vendorKey, b.vendorKeyID = vendorKey, 1
		b.serverKey, b.serverKeyID = serverKey, 1
		vendor.SetSigningKey(vendorKey, 1)
		update.RotateKey(serverKey, 1)
		b.Keystore = security.NewKeystore(suite, b.Root.Public(), timeSource)
		keySource = b.Keystore
		if err := b.issueRecord(security.RoleVendor, 1, vendorKey.Public(), 0, 0); err != nil {
			return nil, err
		}
		if err := b.issueRecord(security.RoleServer, 1, serverKey.Public(), 0, 0); err != nil {
			return nil, err
		}
		if err := b.publishKeyBundle(); err != nil {
			return nil, err
		}
		// Factory provisioning: the device ships with the initial key
		// table. Keys issued later arrive over the update channel
		// (SyncKeys).
		if _, err := b.Keystore.ApplyBundle(update.KeyBundle()); err != nil {
			return nil, err
		}
	}

	dev, err := device.New(device.Options{
		Name:                fmt.Sprintf("dev-%x", opts.DeviceID),
		MCU:                 *opts.MCU,
		Mode:                opts.Mode,
		SlotBytes:           opts.SlotBytes,
		Suite:               suite,
		Keys:                verifier.Keys{Vendor: vendor.PublicKey(), Server: update.PublicKey()},
		KeySource:           keySource,
		TimeSource:          timeSource,
		DeviceID:            opts.DeviceID,
		AppID:               opts.AppID,
		SupportDifferential: opts.Differential,
		NonceSeed:           opts.Seed + "-nonce",
		RebootTime:          device.DefaultRebootTime,
		JumpTime:            device.DefaultJumpTime,
		PayloadKey:          payloadKey,
		WithRecovery:        opts.WithRecovery,
		Telemetry:           reg,
		CheckpointEvery:     opts.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	b.Device = dev
	if opts.SharedPull != nil {
		b.pull = opts.SharedPull
	} else {
		b.pull = coap.NewPullServer(update)
	}
	switch opts.Approach {
	case platform.Push:
		b.Link = transport.BLE(dev.Clock, dev.Meter)
	default:
		b.Link = transport.IEEE802154(dev.Clock, dev.Meter)
	}
	b.Link.SetTelemetry(reg)

	if factoryFirmware != nil {
		if err := b.provisionFactory(factoryFirmware); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// provisionFactory publishes v1 and writes it to the device directly.
func (b *Bed) provisionFactory(fw []byte) error {
	if err := b.PublishVersion(1, fw); err != nil {
		// On a shared update server a sibling bed has already published
		// this release; provisioning proceeds from the stored copy.
		if b.opts.SharedUpdate == nil || !errors.Is(err, updateserver.ErrStaleVersion) {
			return err
		}
	}
	u, err := b.Update.PrepareUpdate(b.opts.AppID, manifest.DeviceToken{
		DeviceID: b.opts.DeviceID,
		Nonce:    0xFAC7081, // factory provisioning pseudo-request
	})
	if err != nil {
		return err
	}
	return b.Device.FactoryProvision(u)
}

// PublishVersion builds and publishes a release through the vendor and
// update servers.
func (b *Bed) PublishVersion(version uint16, fw []byte) error {
	return b.PublishRelease(vendorserver.Release{Version: version, Firmware: fw})
}

// PublishRelease publishes a release with explicit security fields
// (anti-rollback version, expiry). Zero AppID and LinkOffset take the
// bed's defaults.
func (b *Bed) PublishRelease(rel vendorserver.Release) error {
	if rel.AppID == 0 {
		rel.AppID = b.opts.AppID
	}
	if rel.LinkOffset == 0 {
		rel.LinkOffset = 0xFFFFFFFF // position independent
	}
	img, err := b.Vendor.BuildImage(rel)
	if err != nil {
		return err
	}
	return b.Update.Publish(img)
}

// issueRecord root-signs a (role, key ID) → key binding and queues it
// for the next published bundle.
func (b *Bed) issueRecord(role security.KeyRole, id uint32, key *security.PublicKey, notBefore, notAfter uint64) error {
	rec := &security.KeyRecord{Role: role, KeyID: id, NotBefore: notBefore, NotAfter: notAfter, Key: key}
	if err := rec.Sign(b.Suite, b.Root); err != nil {
		return err
	}
	b.records = append(b.records, rec)
	return nil
}

// IssueKeyRecord root-signs a record with an explicit validity window
// and republishes the bundle — how expiry scenarios put a short-lived
// key into service.
func (b *Bed) IssueKeyRecord(role security.KeyRole, id uint32, key *security.PublicKey, notBefore, notAfter uint64) error {
	if err := b.issueRecord(role, id, key, notBefore, notAfter); err != nil {
		return err
	}
	return b.publishKeyBundle()
}

// publishKeyBundle encodes every issued record plus the cumulative
// revocation list and hands the bundle to the update server for
// distribution.
func (b *Bed) publishKeyBundle() error {
	bundle := &security.KeyBundle{Records: b.records}
	if b.rlSeq > 0 {
		rl := &security.RevocationList{Seq: b.rlSeq, Revoked: b.revoked}
		if err := rl.Sign(b.Suite, b.Root); err != nil {
			return err
		}
		bundle.Revocation = rl
	}
	enc, err := bundle.MarshalBinary()
	if err != nil {
		return err
	}
	b.Update.SetKeyBundle(enc)
	return nil
}

// Revoke withdraws a key from service: the revocation list grows by one
// entry, its sequence advances, and the bundle is republished. Devices
// pick it up on their next SyncKeys.
func (b *Bed) Revoke(role security.KeyRole, keyID uint32) error {
	b.revoked = append(b.revoked, security.RevocationEntry{Role: role, KeyID: keyID})
	b.rlSeq++
	return b.publishKeyBundle()
}

// RotateServerKey models recovery from an update-server compromise: a
// fresh signing key (next key ID) goes into service under a root-signed
// record, and the old ID is revoked. It returns the OLD private key —
// in attack scenarios, the one the adversary stole.
func (b *Bed) RotateServerKey() (*security.PrivateKey, error) {
	old, oldID := b.serverKey, b.serverKeyID
	b.serverKeyID++
	b.serverKey = security.MustGenerateKey(fmt.Sprintf("%s-server-%d", b.opts.Seed, b.serverKeyID))
	b.Update.RotateKey(b.serverKey, b.serverKeyID)
	if err := b.issueRecord(security.RoleServer, b.serverKeyID, b.serverKey.Public(), 0, 0); err != nil {
		return nil, err
	}
	b.revoked = append(b.revoked, security.RevocationEntry{Role: security.RoleServer, KeyID: oldID})
	b.rlSeq++
	if err := b.publishKeyBundle(); err != nil {
		return nil, err
	}
	return old, nil
}

// RotateVendorKey rotates the vendor signing key likewise, revoking the
// old ID. Images already built keep their old-key signature; new builds
// sign with the new key.
func (b *Bed) RotateVendorKey() (*security.PrivateKey, error) {
	old, oldID := b.vendorKey, b.vendorKeyID
	b.vendorKeyID++
	b.vendorKey = security.MustGenerateKey(fmt.Sprintf("%s-vendor-%d", b.opts.Seed, b.vendorKeyID))
	b.Vendor.SetSigningKey(b.vendorKey, b.vendorKeyID)
	if err := b.issueRecord(security.RoleVendor, b.vendorKeyID, b.vendorKey.Public(), 0, 0); err != nil {
		return nil, err
	}
	b.revoked = append(b.revoked, security.RevocationEntry{Role: security.RoleVendor, KeyID: oldID})
	b.rlSeq++
	if err := b.publishKeyBundle(); err != nil {
		return nil, err
	}
	return old, nil
}

// SyncKeys pulls the current key bundle over the device's CoAP link and
// applies it to the keystore, returning the number of new records
// learned.
func (b *Bed) SyncKeys() (int, error) {
	return b.PullClient().SyncKeys()
}

// Smartphone returns a push proxy connected to the device over BLE.
func (b *Bed) Smartphone() *proxy.Smartphone {
	peripheral := ble.NewPeripheral(b.Device.Agent)
	peripheral.SetTelemetry(b.tel)
	return &proxy.Smartphone{
		Server:  b.Update,
		Central: ble.Connect(b.Link, peripheral),
		AppID:   b.opts.AppID,
	}
}

// BlockRoute is one block source in a bed's distribution topology.
type BlockRoute struct {
	// Name labels the source in events and errors ("peer", "proxy").
	Name string
	// Handler answers GET /upkit/blocks for this source; the bed wires
	// it to the device through its radio link.
	Handler coap.Handler
	// BlockSize overrides the client's Block2 size toward this source
	// (0 inherits).
	BlockSize int
}

// Distribute switches the bed's pull clients to the content-addressed
// serve path: control traffic (polls, session setup, name lookups) goes
// to front when non-nil — typically a caching proxy that forwards it to
// the origin — and image blocks are pulled from routes in order, with
// the origin appended as the source of last resort. Every hop still
// crosses the device's radio link, so energy and latency accounting are
// unchanged.
func (b *Bed) Distribute(front coap.Handler, routes ...BlockRoute) {
	b.front = front
	b.routes = routes
}

// ShareBlocks makes the bed's device a block peer: after each completed
// multi-source transfer the verified payload is admitted into reg under
// its content name, where a BlockServer over reg can serve it to other
// devices. Only meaningful after Distribute.
func (b *Bed) ShareBlocks(reg *dist.Registry) {
	b.sink = func(p []byte) { reg.Put(p) }
}

// PullHandler exposes the bed's pull server as a CoAP handler — what a
// caching proxy or a UDP front-end mounts as its origin.
func (b *Bed) PullHandler() coap.Handler { return b.pull.Handle }

// PullClient returns a CoAP pull client connected to the update server
// through the device's 802.15.4 link (via a border router). Clients
// share the bed's pull server, so a client created after a (simulated)
// device reboot can resume the session an earlier client established.
// Transfer-level retry backoff advances the device clock.
//
// After Distribute, the client's control traffic goes through the
// configured front and its image transfer runs over the block-source
// list (routes, then origin).
func (b *Bed) PullClient() *coap.PullClient {
	handler := b.pull.Handle
	if b.front != nil {
		handler = b.front
	}
	c := &coap.PullClient{
		Ex:    &coap.LinkExchanger{Link: b.Link, Handler: handler, Telemetry: b.tel},
		Agent: b.Device.Agent,
		AppID: b.opts.AppID,
		Backoff: func(attempt int) {
			b.Device.Clock.Advance(2 * time.Second << uint(attempt-1))
		},
	}
	if b.front != nil || len(b.routes) > 0 {
		for _, r := range b.routes {
			c.Sources = append(c.Sources, coap.BlockSource{
				Name:      r.Name,
				Ex:        &coap.LinkExchanger{Link: b.Link, Handler: r.Handler, Telemetry: b.tel},
				BlockSize: r.BlockSize,
			})
		}
		c.Sources = append(c.Sources, coap.BlockSource{
			Name: "origin",
			Ex:   &coap.LinkExchanger{Link: b.Link, Handler: b.pull.Handle, Telemetry: b.tel},
		})
		c.PayloadSink = b.sink
		c.Events = b.Device.Events
	}
	if b.Keystore != nil {
		c.Keys = b.Keystore
		c.Events = b.Device.Events
	}
	return c
}

// startPropagation opens the propagation-phase measurement for one
// update attempt. The returned function closes it, charging the virtual
// time the transfer took minus the verification work interleaved with
// it — the same accounting the Fig. 8 experiments use, where the
// device verifies signatures while blocks are still arriving.
func (b *Bed) startPropagation() func() {
	start := b.Device.Clock.Now()
	verifBefore := b.Device.Phases.Phase(agentPhaseVerification)
	return func() {
		a := b.Device.Agent
		m := a.Manifest()
		if m == nil {
			return // nothing staged: no span to contribute to
		}
		elapsed := b.Device.Clock.Now() - start
		verif := b.Device.Phases.Phase(agentPhaseVerification) - verifBefore
		b.tel.Spans().Record(telemetry.SpanKey{
			DeviceID: b.opts.DeviceID,
			AppID:    b.opts.AppID,
			From:     a.Token().CurrentVersion,
			To:       m.Version,
		}, telemetry.PhasePropagation, elapsed-verif)
	}
}

// agentPhaseVerification mirrors the phase name the agent and
// bootloader charge verification time to.
const agentPhaseVerification = bootloader.PhaseVerification

// PushUpdate runs a complete push update including the reboot, and
// returns the boot result.
func (b *Bed) PushUpdate() (bootloader.Result, error) {
	done := b.startPropagation()
	if err := b.Smartphone().PushUpdate(); err != nil {
		return bootloader.Result{}, err
	}
	done()
	return b.Device.ApplyStagedUpdate()
}

// PullUpdate runs a complete pull update including the reboot, and
// returns the boot result.
func (b *Bed) PullUpdate() (bootloader.Result, error) {
	done := b.startPropagation()
	staged, err := b.PullClient().CheckAndUpdate()
	if err != nil {
		return bootloader.Result{}, err
	}
	if !staged {
		return bootloader.Result{}, coap.ErrNoUpdate
	}
	done()
	return b.Device.ApplyStagedUpdate()
}
