// Package testbed wires a complete UpKit deployment — vendor server,
// update server, proxy or border router, and one simulated device —
// into a single object. The integration tests, the experiment harness,
// and the examples all build on it.
package testbed

import (
	"errors"
	"fmt"
	"io"
	"time"

	"upkit/internal/ble"
	"upkit/internal/bootloader"
	"upkit/internal/coap"
	"upkit/internal/device"
	"upkit/internal/manifest"
	"upkit/internal/platform"
	"upkit/internal/proxy"
	"upkit/internal/security"
	"upkit/internal/telemetry"
	"upkit/internal/transport"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
	"upkit/internal/verifier"
)

// Options configures a testbed.
type Options struct {
	// MCU defaults to the nRF52840.
	MCU *platform.MCU
	// Mode defaults to static (Configuration B).
	Mode bootloader.Mode
	// Approach selects the transport wiring and the default slot size.
	Approach platform.Approach
	// SlotBytes overrides platform.BuildSlotBytes(Approach).
	SlotBytes int
	// SuiteName picks the crypto library ("tinycrypt" default).
	SuiteName string
	// Differential enables differential updates on the device.
	Differential bool
	// Encrypted enables payload encryption end to end: the update
	// server encrypts, the device's pipeline decrypts (§VIII).
	Encrypted bool
	// WithRecovery allocates the factory-image recovery slot (Fig. 6,
	// Configuration B).
	WithRecovery bool
	// DeviceID and AppID identify the device; defaults are applied.
	DeviceID uint32
	AppID    uint32
	// Seed differentiates deterministic key/nonce streams per testbed.
	Seed string
	// PayloadSeed, when non-empty, derives the payload-encryption key
	// and IV stream from this seed instead of Seed. Beds sharing one
	// update server must agree on it: the server holds a single payload
	// key, so per-bed Seed-derived keys would overwrite each other.
	PayloadSeed string
	// SharedVendor and SharedUpdate, when set, reuse existing servers
	// instead of creating per-bed ones: many beds against one update
	// server model a fleet hitting the same Internet-facing endpoint
	// (and exercising its patch cache). The suite named by SuiteName
	// must match the one the shared servers sign with. Shared servers
	// are safe to build beds against from multiple goroutines; wire a
	// shared vendor's telemetry yourself (once, beforehand), since the
	// bed no longer mutates servers it does not own.
	SharedVendor *vendorserver.Server
	SharedUpdate *updateserver.Server
	// Telemetry overrides the metrics registry the whole bed reports
	// into. Nil selects the update server's own registry, so beds
	// sharing a server aggregate into one scrape.
	Telemetry *telemetry.Registry
	// CheckpointEvery sets the device agent's reception-journal cadence
	// in flushed bytes; zero keeps the agent default (four pipeline
	// buffers).
	CheckpointEvery int
}

// Bed is a wired deployment.
type Bed struct {
	Suite  security.Suite
	Vendor *vendorserver.Server
	Update *updateserver.Server
	Device *device.Device

	// Link is the device's radio link (BLE for push, 802.15.4 for pull).
	Link *transport.Link

	opts Options
	tel  *telemetry.Registry
	// pull is the bed's single CoAP pull server: its session table must
	// survive across PullClient calls so a device resuming after a power
	// cycle re-joins the same prepared session (same payload bytes).
	pull *coap.PullServer
}

// Telemetry returns the registry the bed reports into.
func (b *Bed) Telemetry() *telemetry.Registry { return b.tel }

func (o *Options) applyDefaults() {
	if o.MCU == nil {
		m := platform.NRF52840()
		o.MCU = &m
	}
	if o.Mode == 0 {
		o.Mode = bootloader.ModeStatic
	}
	if o.Approach == 0 {
		o.Approach = platform.Pull
	}
	if o.SlotBytes == 0 {
		o.SlotBytes = platform.BuildSlotBytes(o.Approach)
	}
	if o.SuiteName == "" {
		o.SuiteName = "tinycrypt"
	}
	if o.DeviceID == 0 {
		o.DeviceID = 0xD0D0CAFE
	}
	if o.AppID == 0 {
		o.AppID = 0x2A
	}
	if o.Seed == "" {
		o.Seed = "testbed"
	}
}

// New builds the deployment and factory-provisions the device with the
// given version-1 firmware.
func New(opts Options, factoryFirmware []byte) (*Bed, error) {
	opts.applyDefaults()
	suite, err := security.SuiteByName(opts.SuiteName, nil)
	if err != nil {
		return nil, err
	}
	vendor := opts.SharedVendor
	if vendor == nil {
		vendor = vendorserver.New(suite, security.MustGenerateKey(opts.Seed+"-vendor"))
	}
	update := opts.SharedUpdate
	if update == nil {
		update = updateserver.New(suite, security.MustGenerateKey(opts.Seed+"-server"))
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = update.Telemetry()
	}
	// A bed-local vendor is wired into the bed's registry here. A shared
	// vendor is the sharer's to wire (once, before building beds):
	// SetTelemetry is a plain field write, and fleet builders create
	// beds from many goroutines in parallel.
	if opts.SharedVendor == nil {
		vendor.SetTelemetry(reg)
	}

	var payloadKey []byte
	if opts.Encrypted {
		payloadSeed := opts.PayloadSeed
		if payloadSeed == "" {
			payloadSeed = opts.Seed
		}
		payloadKey = make([]byte, 16)
		if _, err := io.ReadFull(security.NewDeterministicReader(payloadSeed+"-payload-key"), payloadKey); err != nil {
			return nil, err
		}
		if err := update.SetPayloadEncryption(payloadKey, security.NewDeterministicReader(payloadSeed+"-iv")); err != nil {
			return nil, err
		}
	}

	dev, err := device.New(device.Options{
		Name:                fmt.Sprintf("dev-%x", opts.DeviceID),
		MCU:                 *opts.MCU,
		Mode:                opts.Mode,
		SlotBytes:           opts.SlotBytes,
		Suite:               suite,
		Keys:                verifier.Keys{Vendor: vendor.PublicKey(), Server: update.PublicKey()},
		DeviceID:            opts.DeviceID,
		AppID:               opts.AppID,
		SupportDifferential: opts.Differential,
		NonceSeed:           opts.Seed + "-nonce",
		RebootTime:          device.DefaultRebootTime,
		JumpTime:            device.DefaultJumpTime,
		PayloadKey:          payloadKey,
		WithRecovery:        opts.WithRecovery,
		Telemetry:           reg,
		CheckpointEvery:     opts.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}

	b := &Bed{Suite: suite, Vendor: vendor, Update: update, Device: dev, opts: opts, tel: reg}
	b.pull = coap.NewPullServer(update)
	switch opts.Approach {
	case platform.Push:
		b.Link = transport.BLE(dev.Clock, dev.Meter)
	default:
		b.Link = transport.IEEE802154(dev.Clock, dev.Meter)
	}
	b.Link.SetTelemetry(reg)

	if factoryFirmware != nil {
		if err := b.provisionFactory(factoryFirmware); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// provisionFactory publishes v1 and writes it to the device directly.
func (b *Bed) provisionFactory(fw []byte) error {
	if err := b.PublishVersion(1, fw); err != nil {
		// On a shared update server a sibling bed has already published
		// this release; provisioning proceeds from the stored copy.
		if b.opts.SharedUpdate == nil || !errors.Is(err, updateserver.ErrStaleVersion) {
			return err
		}
	}
	u, err := b.Update.PrepareUpdate(b.opts.AppID, manifest.DeviceToken{
		DeviceID: b.opts.DeviceID,
		Nonce:    0xFAC7081, // factory provisioning pseudo-request
	})
	if err != nil {
		return err
	}
	return b.Device.FactoryProvision(u)
}

// PublishVersion builds and publishes a release through the vendor and
// update servers.
func (b *Bed) PublishVersion(version uint16, fw []byte) error {
	img, err := b.Vendor.BuildImage(vendorserver.Release{
		AppID:      b.opts.AppID,
		Version:    version,
		LinkOffset: 0xFFFFFFFF, // position independent
		Firmware:   fw,
	})
	if err != nil {
		return err
	}
	return b.Update.Publish(img)
}

// Smartphone returns a push proxy connected to the device over BLE.
func (b *Bed) Smartphone() *proxy.Smartphone {
	peripheral := ble.NewPeripheral(b.Device.Agent)
	peripheral.SetTelemetry(b.tel)
	return &proxy.Smartphone{
		Server:  b.Update,
		Central: ble.Connect(b.Link, peripheral),
		AppID:   b.opts.AppID,
	}
}

// PullClient returns a CoAP pull client connected to the update server
// through the device's 802.15.4 link (via a border router). Clients
// share the bed's pull server, so a client created after a (simulated)
// device reboot can resume the session an earlier client established.
// Transfer-level retry backoff advances the device clock.
func (b *Bed) PullClient() *coap.PullClient {
	return &coap.PullClient{
		Ex:    &coap.LinkExchanger{Link: b.Link, Handler: b.pull.Handle, Telemetry: b.tel},
		Agent: b.Device.Agent,
		AppID: b.opts.AppID,
		Backoff: func(attempt int) {
			b.Device.Clock.Advance(2 * time.Second << uint(attempt-1))
		},
	}
}

// startPropagation opens the propagation-phase measurement for one
// update attempt. The returned function closes it, charging the virtual
// time the transfer took minus the verification work interleaved with
// it — the same accounting the Fig. 8 experiments use, where the
// device verifies signatures while blocks are still arriving.
func (b *Bed) startPropagation() func() {
	start := b.Device.Clock.Now()
	verifBefore := b.Device.Phases.Phase(agentPhaseVerification)
	return func() {
		a := b.Device.Agent
		m := a.Manifest()
		if m == nil {
			return // nothing staged: no span to contribute to
		}
		elapsed := b.Device.Clock.Now() - start
		verif := b.Device.Phases.Phase(agentPhaseVerification) - verifBefore
		b.tel.Spans().Record(telemetry.SpanKey{
			DeviceID: b.opts.DeviceID,
			AppID:    b.opts.AppID,
			From:     a.Token().CurrentVersion,
			To:       m.Version,
		}, telemetry.PhasePropagation, elapsed-verif)
	}
}

// agentPhaseVerification mirrors the phase name the agent and
// bootloader charge verification time to.
const agentPhaseVerification = bootloader.PhaseVerification

// PushUpdate runs a complete push update including the reboot, and
// returns the boot result.
func (b *Bed) PushUpdate() (bootloader.Result, error) {
	done := b.startPropagation()
	if err := b.Smartphone().PushUpdate(); err != nil {
		return bootloader.Result{}, err
	}
	done()
	return b.Device.ApplyStagedUpdate()
}

// PullUpdate runs a complete pull update including the reboot, and
// returns the boot result.
func (b *Bed) PullUpdate() (bootloader.Result, error) {
	done := b.startPropagation()
	staged, err := b.PullClient().CheckAndUpdate()
	if err != nil {
		return bootloader.Result{}, err
	}
	if !staged {
		return bootloader.Result{}, coap.ErrNoUpdate
	}
	done()
	return b.Device.ApplyStagedUpdate()
}
