package testbed

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"upkit/internal/agent"
	"upkit/internal/bootloader"
	"upkit/internal/coap"
	"upkit/internal/platform"
	"upkit/internal/verifier"
)

const fwSize = 64 * 1024

func newBed(t *testing.T, opts Options) *Bed {
	t.Helper()
	b, err := New(opts, MakeFirmware("factory-v1", fwSize))
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	if got := b.Device.RunningVersion(); got != 1 {
		t.Fatalf("factory version = %d, want 1", got)
	}
	return b
}

func runningFirmware(t *testing.T, b *Bed) []byte {
	t.Helper()
	r, err := b.Device.Running().FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPushUpdateEndToEnd(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push})
	v2 := MakeFirmware("v2", fwSize)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PushUpdate()
	if err != nil {
		t.Fatalf("PushUpdate: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("running firmware is not v2")
	}
	if b.Device.Reboots() != 2 { // factory boot + update boot
		t.Fatalf("reboots = %d, want 2", b.Device.Reboots())
	}
}

func TestPullUpdateEndToEnd(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull})
	v2 := MakeFirmware("v2-pull", fwSize)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("PullUpdate: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("running firmware is not v2")
	}
}

func TestPullNoUpdateAvailable(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull})
	_, err := b.PullClient().CheckAndUpdate()
	if !errors.Is(err, coap.ErrNoUpdate) {
		t.Fatalf("error = %v, want ErrNoUpdate", err)
	}
	// Polling must not disturb the agent.
	if b.Device.Agent.State() != agent.StateWaiting {
		t.Fatalf("agent state = %v, want waiting", b.Device.Agent.State())
	}
}

func TestSequentialUpdates(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Mode: bootloader.ModeAB})
	for v := uint16(2); v <= 5; v++ {
		fw := MakeFirmware("seq", fwSize)
		fw[0] = byte(v) // distinguish versions
		if err := b.PublishVersion(v, fw); err != nil {
			t.Fatal(err)
		}
		res, err := b.PullUpdate()
		if err != nil {
			t.Fatalf("update to v%d: %v", v, err)
		}
		if res.Version != v {
			t.Fatalf("booted v%d, want v%d", res.Version, v)
		}
	}
	if got := b.Device.RunningVersion(); got != 5 {
		t.Fatalf("final version = %d, want 5", got)
	}
}

func TestDifferentialPullUpdate(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Differential: true})
	base := MakeFirmware("factory-v1", fwSize)
	v2 := DeriveAppChange(base, 1000)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("differential update: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("patched firmware mismatch")
	}
}

func TestDifferentialPayloadMuchSmaller(t *testing.T) {
	base := MakeFirmware("factory-v1", fwSize)
	b := newBed(t, Options{Approach: platform.Pull, Differential: true})
	v2 := DeriveAppChange(base, 1000)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	u, err := b.Update.PrepareUpdate(0x2A, tok)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Differential {
		t.Fatal("expected differential update")
	}
	if len(u.Payload) > fwSize/5 {
		t.Fatalf("patch = %d bytes for %d-byte image", len(u.Payload), fwSize)
	}
}

func TestTamperedFirmwareRejectedOverBLE(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push})
	if err := b.PublishVersion(2, MakeFirmware("v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	phone := b.Smartphone()
	phone.TamperPayload = func(p []byte) []byte {
		p[len(p)/2] ^= 0x40
		return p
	}
	err := phone.PushUpdate()
	if err == nil {
		t.Fatal("tampered firmware must be rejected")
	}
	// Early rejection: the device never became ready to reboot and is
	// still running v1.
	if b.Device.ReadyToReboot() {
		t.Fatal("device staged a tampered update")
	}
	if got := b.Device.RunningVersion(); got != 1 {
		t.Fatalf("running v%d, want v1", got)
	}
	if b.Device.Reboots() != 1 {
		t.Fatalf("reboots = %d, want 1 (no reboot on invalid firmware)", b.Device.Reboots())
	}
}

func TestTamperedManifestRejectedBeforeFirmware(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push})
	if err := b.PublishVersion(2, MakeFirmware("v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	radioBefore := b.Device.Clock.Now()
	phone := b.Smartphone()
	phone.TamperManifest = func(m []byte) []byte {
		m[20] ^= 0x01
		return m
	}
	if err := phone.PushUpdate(); err == nil {
		t.Fatal("tampered manifest must be rejected")
	}
	// Early rejection: only the token and manifest crossed the air and
	// the slot was erased (~3.4 s of flash time); the 64 KiB firmware
	// (~31 s over BLE) was never transferred.
	elapsed := b.Device.Clock.Now() - radioBefore
	if elapsed.Seconds() > 10 {
		t.Fatalf("rejection took %v; firmware must not have been transferred", elapsed)
	}
}

func TestReplayedUpdateRejected(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push})
	if err := b.PublishVersion(2, MakeFirmware("v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	phone := b.Smartphone()
	if err := phone.PushUpdate(); err != nil {
		t.Fatalf("first push: %v", err)
	}
	if _, err := b.Device.ApplyStagedUpdate(); err != nil {
		t.Fatal(err)
	}
	// Publish v3 so the device would accept *something*; the attacker
	// replays the captured v2 image instead.
	if err := b.PublishVersion(3, MakeFirmware("v3", fwSize)); err != nil {
		t.Fatal(err)
	}
	err := phone.ReplayCaptured()
	if err == nil {
		t.Fatal("replayed image must be rejected")
	}
	if !errors.Is(err, verifier.ErrNonce) && !errors.Is(err, verifier.ErrVersion) {
		// The nonce check fires first (freshness); either sentinel
		// proves rejection happened at manifest time.
		t.Logf("rejection error: %v", err)
	}
	if got := b.Device.RunningVersion(); got != 2 {
		t.Fatalf("running v%d, want v2 (replay must not install)", got)
	}
}

func TestCrossDeviceImageRejected(t *testing.T) {
	// An image prepared for device X must not install on device Y.
	bX := newBed(t, Options{Approach: platform.Push, DeviceID: 0x111, Seed: "shared"})
	bY := newBed(t, Options{Approach: platform.Push, DeviceID: 0x222, Seed: "shared"})
	if err := bX.PublishVersion(2, MakeFirmware("v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	phoneX := bX.Smartphone()
	if err := phoneX.PushUpdate(); err != nil {
		t.Fatalf("push to X: %v", err)
	}
	// Forward X's captured image to Y. Both beds share the same key
	// material (Seed), so only the device binding differs.
	phoneY := bY.Smartphone()
	phoneY.Replay = phoneX.Captured
	if err := phoneY.PushUpdate(); err == nil {
		t.Fatal("image bound to device X installed on device Y")
	}
	if bY.Device.ReadyToReboot() {
		t.Fatal("device Y staged a foreign update")
	}
}

func TestABUpdateKeepsPreviousImage(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Mode: bootloader.ModeAB})
	v1 := runningFirmware(t, b)
	v2 := MakeFirmware("v2-ab", fwSize)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Installed {
		t.Fatal("A/B updates must not move images")
	}
	// The previous image remains bootable in the other slot.
	other := b.Device.SlotA
	if b.Device.Running() == b.Device.SlotA {
		other = b.Device.SlotB
	}
	r, err := other.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, v1) {
		t.Fatal("previous image lost after A/B update")
	}
}

func TestCC2650UsesExternalFlashForSecondSlot(t *testing.T) {
	mcu := platform.CC2650()
	b, err := New(Options{
		MCU:      &mcu,
		Approach: platform.Push,
		// The CC2650's 128 KiB internal flash cannot hold two 64 KiB
		// slots next to the bootloader, forcing slot B to SPI flash.
		SlotBytes: 64 * 1024,
	}, MakeFirmware("cc2650-v1", 32*1024))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if b.Device.External == nil {
		t.Fatal("CC2650 must have external flash")
	}
	if b.Device.SlotB.Region().Mem != b.Device.External {
		t.Fatal("slot B must live on external flash")
	}
	if b.Device.SlotB.Kind.String() != "NB" {
		t.Fatal("external slot must be non-bootable")
	}
	// A full update cycle still works across the two chips.
	v2 := MakeFirmware("cc2650-v2", 32*1024)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PushUpdate()
	if err != nil {
		t.Fatalf("PushUpdate on CC2650: %v", err)
	}
	if res.Version != 2 || !res.Installed {
		t.Fatalf("result = %+v", res)
	}
}

func TestPowerLossDuringPropagationRecovers(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push})
	if err := b.PublishVersion(2, MakeFirmware("v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	// Fail flash mid-receive: the write pipeline hits the fault.
	b.Device.Internal.FailAfter(100)
	if err := b.Smartphone().PushUpdate(); err == nil {
		t.Fatal("push should fail when flash loses power")
	}
	b.Device.Internal.ClearFault()

	// The device reboots: the half-written image must not boot; v1 must.
	res, err := b.Device.Reboot()
	if err != nil {
		t.Fatalf("reboot after power loss: %v", err)
	}
	if res.Version != 1 {
		t.Fatalf("booted v%d, want v1", res.Version)
	}
	// And a clean retry succeeds.
	res, err = b.PushUpdate()
	if err != nil {
		t.Fatalf("retry push: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("retry booted v%d, want v2", res.Version)
	}
}

func TestFirmwareGeneratorProperties(t *testing.T) {
	fw := MakeFirmware("gen", 50*1024)
	if len(fw) != 50*1024 {
		t.Fatalf("size = %d", len(fw))
	}
	if !bytes.Equal(fw, MakeFirmware("gen", 50*1024)) {
		t.Fatal("generator not deterministic")
	}
	if bytes.Equal(fw, MakeFirmware("gen2", 50*1024)) {
		t.Fatal("different seeds must differ")
	}
	app := DeriveAppChange(fw, 1000)
	if bytes.Equal(app, fw) {
		t.Fatal("app change produced identical image")
	}
	diffBytes := 0
	for i := range fw {
		if app[i] != fw[i] {
			diffBytes++
		}
	}
	if diffBytes > 1100 {
		t.Fatalf("app change touched %d bytes, want ≈1000", diffBytes)
	}
	osChange := DeriveOSChange(fw)
	if bytes.Equal(osChange, fw) {
		t.Fatal("OS change produced identical image")
	}
}
