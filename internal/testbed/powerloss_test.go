package testbed

import (
	"errors"
	"testing"

	"upkit/internal/bootloader"
	"upkit/internal/flash"
	"upkit/internal/platform"
)

// These tests exercise DESIGN.md invariant 6: after a power loss at
// *any* point of the update process, the device always boots some
// valid, verified firmware — never a torn or unverified image — and a
// subsequent retry completes the update.

// powerLossAt runs one full update with a fault injected after n flash
// operations, then lets power return, reboots (with resume if needed),
// retries the update, and checks the end state.
func powerLossAt(t *testing.T, n int, mode bootloader.Mode) {
	t.Helper()
	v1 := MakeFirmware("pl-v1", 48*1024)
	v2 := MakeFirmware("pl-v2", 48*1024)
	b, err := New(Options{
		Approach: platform.Push,
		Mode:     mode,
		Seed:     "power-loss",
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}

	b.Device.Internal.FailAfter(n)
	pushErr := b.Smartphone().PushUpdate()
	var applyErr error
	if pushErr == nil {
		_, applyErr = b.Device.ApplyStagedUpdate()
	}
	faultFired := errors.Is(pushErr, flash.ErrPowerLoss) ||
		errors.Is(applyErr, flash.ErrPowerLoss) ||
		(pushErr != nil && pushErr != applyErr) // rejection caused by torn write
	b.Device.Internal.ClearFault()

	// Power returns: the device must boot *something* valid. The swap
	// journal may need several boots only if power failed repeatedly;
	// here one boot must suffice.
	if faultFired || applyErr != nil {
		res, err := b.Device.Reboot()
		if err != nil {
			t.Fatalf("n=%d: reboot after power loss: %v", n, err)
		}
		if res.Version != 1 && res.Version != 2 {
			t.Fatalf("n=%d: booted v%d, want v1 or v2", n, res.Version)
		}
	}
	running := b.Device.RunningVersion()
	if running != 1 && running != 2 {
		t.Fatalf("n=%d: running v%d after recovery", n, running)
	}

	// A clean retry must reach v2 (unless we are already there).
	if running != 2 {
		if err := b.Smartphone().PushUpdate(); err != nil {
			t.Fatalf("n=%d: retry push: %v", n, err)
		}
		if _, err := b.Device.ApplyStagedUpdate(); err != nil {
			t.Fatalf("n=%d: retry apply: %v", n, err)
		}
	}
	if got := b.Device.RunningVersion(); got != 2 {
		t.Fatalf("n=%d: final version = %d, want 2", n, got)
	}
}

func TestPowerLossSweepStatic(t *testing.T) {
	// The static flow touches flash during Start-update (erase),
	// pipeline writes, trailer marks, and the install swap. Sweep fault
	// points across all of them (the swap of a 112 KiB slot alone is
	// ~330 operations).
	for _, n := range []int{0, 1, 2, 5, 10, 20, 40, 80, 160, 320, 640, 900, 1200} {
		powerLossAt(t, n, bootloader.ModeStatic)
	}
}

func TestPowerLossSweepAB(t *testing.T) {
	for _, n := range []int{0, 1, 3, 9, 27, 81, 243, 729} {
		powerLossAt(t, n, bootloader.ModeAB)
	}
}

func TestRepeatedPowerLossDuringInstall(t *testing.T) {
	// Crash-loop during the install swap: power dies every ~25 flash
	// operations during boot. The journal must drive the swap to
	// completion across reboots, and the device must end on v2 with the
	// image intact.
	v1 := MakeFirmware("crash-v1", 48*1024)
	v2 := MakeFirmware("crash-v2", 48*1024)
	b, err := New(Options{Approach: platform.Push, Seed: "crash-loop"}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	if err := b.Smartphone().PushUpdate(); err != nil {
		t.Fatal(err)
	}

	booted := false
	for attempt := 0; attempt < 500; attempt++ {
		b.Device.Internal.FailAfter(25)
		res, err := b.Device.Reboot()
		if err == nil {
			b.Device.Internal.ClearFault()
			if res.Version != 2 {
				t.Fatalf("booted v%d after crash loop, want v2", res.Version)
			}
			booted = true
			break
		}
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		b.Device.Internal.ClearFault()
	}
	if !booted {
		t.Fatal("device never booted v2 despite 500 recovery attempts")
	}
	// The installed firmware must be byte-identical to v2.
	r, err := b.Device.Running().FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(v2))
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != v2[i] {
			t.Fatalf("installed firmware differs from v2 at byte %d", i)
		}
	}
}
