package testbed

import (
	"bytes"
	"testing"

	"upkit/internal/platform"
)

// Lossy-link tests: CoAP confirmable retransmission must carry an
// update through a degraded 802.15.4 link, at the cost of time — and
// the result must still be byte-perfect (the transport never corrupts,
// it only drops).

func TestPullUpdateOverLossyLink(t *testing.T) {
	v1 := MakeFirmware("lossy-v1", 32*1024)
	v2 := MakeFirmware("lossy-v2", 32*1024)

	run := func(lossRate float64) float64 {
		t.Helper()
		b, err := New(Options{Approach: platform.Pull, Seed: "lossy"}, v1)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.PublishVersion(2, v2); err != nil {
			t.Fatal(err)
		}
		if lossRate > 0 {
			b.Link.SetLoss(lossRate, 42)
		}
		start := b.Device.Clock.Now()
		res, err := b.PullUpdate()
		if err != nil {
			t.Fatalf("loss=%.2f: %v", lossRate, err)
		}
		if res.Version != 2 {
			t.Fatalf("loss=%.2f: booted v%d", lossRate, res.Version)
		}
		if !bytes.Equal(runningFirmware(t, b), v2) {
			t.Fatalf("loss=%.2f: firmware mismatch", lossRate)
		}
		return (b.Device.Clock.Now() - start).Seconds()
	}

	perfect := run(0)
	lossy := run(0.05) // 5% frame loss
	if lossy <= perfect {
		t.Fatalf("lossy update (%.1fs) not slower than perfect link (%.1fs)", lossy, perfect)
	}
}

func TestPullUpdateFailsOnDeadLink(t *testing.T) {
	v1 := MakeFirmware("dead-v1", 16*1024)
	b, err := New(Options{Approach: platform.Pull, Seed: "dead"}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, MakeFirmware("dead-v2", 16*1024)); err != nil {
		t.Fatal(err)
	}
	// 100% loss exhausts MaxRetransmit and the update aborts cleanly.
	b.Link.SetLoss(1.0, 7)
	if _, err := b.PullUpdate(); err == nil {
		t.Fatal("update over a 100%-loss link must fail")
	}
	// The device is unharmed: still running v1 and able to retry after
	// the link recovers.
	if got := b.Device.RunningVersion(); got != 1 {
		t.Fatalf("running v%d, want v1", got)
	}
	b.Link.SetLoss(0, 0)
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("retry after link recovery: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("retry booted v%d", res.Version)
	}
}
