package testbed

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"upkit/internal/platform"
	"upkit/internal/telemetry"
)

// completedSpan returns the single completed span a one-update bed run
// must leave behind.
func completedSpan(t *testing.T, b *Bed) telemetry.Span {
	t.Helper()
	spans := b.Telemetry().Spans().Completed()
	if len(spans) != 1 {
		t.Fatalf("completed spans = %d, want 1: %v", len(spans), spans)
	}
	return spans[0]
}

// assertFourPhases checks a span traced every phase of Fig. 8a with a
// positive duration and ended as installed.
func assertFourPhases(t *testing.T, s telemetry.Span) {
	t.Helper()
	if !s.Complete() {
		t.Fatalf("span missing phases: %s", s)
	}
	for _, p := range telemetry.AllPhases {
		if s.Phases[p] <= 0 {
			t.Errorf("phase %s = %v, want > 0", p, s.Phases[p])
		}
	}
	if s.Outcome != "installed" {
		t.Errorf("outcome = %q, want installed", s.Outcome)
	}
}

func TestPullUpdateFourPhaseSpan(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Differential: true})
	if err := b.PublishVersion(2, DeriveAppChange(MakeFirmware("factory-v1", fwSize), 900)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatalf("PullUpdate: %v", err)
	}
	s := completedSpan(t, b)
	assertFourPhases(t, s)
	// The span is keyed by the token the double signature binds.
	if s.Key.DeviceID != b.opts.DeviceID || s.Key.AppID != b.opts.AppID {
		t.Errorf("key = %s, want device %#x app %#x", s.Key, b.opts.DeviceID, b.opts.AppID)
	}
	if s.Key.From != 1 || s.Key.To != 2 {
		t.Errorf("key versions = v%d→v%d, want v1→v2", s.Key.From, s.Key.To)
	}
}

func TestPushUpdateFourPhaseSpan(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push})
	if err := b.PublishVersion(2, MakeFirmware("v2-span", fwSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PushUpdate(); err != nil {
		t.Fatalf("PushUpdate: %v", err)
	}
	s := completedSpan(t, b)
	assertFourPhases(t, s)
	if s.Key.To != 2 {
		t.Errorf("key = %s, want target v2", s.Key)
	}
}

// TestMetricsExposition scrapes the update server's /api/v1/metrics
// endpoint after a full pull update and checks that every instrumented
// layer of the bed reported into the one shared registry.
func TestMetricsExposition(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Differential: true})
	if err := b.PublishVersion(2, DeriveAppChange(MakeFirmware("factory-v1", fwSize), 800)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatalf("PullUpdate: %v", err)
	}

	ts := httptest.NewServer(b.Update.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		"upkit_server_requests_total",   // update server
		"upkit_patch_cache_hits_total",  // differential-patch cache
		"upkit_link_transfers_total",    // radio transport
		"upkit_coap_requests_total",     // CoAP pull front end
		"upkit_agent_transitions_total", // device FSM
		"upkit_pipeline_bytes_total",    // reception pipeline
		"upkit_boot_total",              // bootloader
		"upkit_vendor_images_total",     // vendor server
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition is missing %s", series)
		}
	}
}

// TestTelemetryOverrideRegistry checks Options.Telemetry redirects the
// whole bed away from the update server's own registry.
func TestTelemetryOverrideRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := newBed(t, Options{Approach: platform.Pull, Telemetry: reg})
	if b.Telemetry() != reg {
		t.Fatal("bed ignored the registry override")
	}
	if err := b.PublishVersion(2, MakeFirmware("v2-override", fwSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatalf("PullUpdate: %v", err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "upkit_link_transfers_total") {
		t.Error("override registry saw no link traffic")
	}
}
