package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"upkit/internal/bootloader"
	"upkit/internal/flash"
	"upkit/internal/platform"
)

// Soak test: one device lives through a long sequence of updates —
// full and differential, clean and attacked, with sporadic power
// losses — and must end every round either on the new version or
// safely on the previous one, never bricked, never on tampered code.
func TestSoakLongUpdateHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	const rounds = 30
	rng := rand.New(rand.NewSource(2026))

	current := MakeFirmware("soak-v1", 48*1024)
	b, err := New(Options{
		Approach:     platform.Pull,
		Mode:         bootloader.ModeAB,
		Differential: true,
		Seed:         "soak",
	}, current)
	if err != nil {
		t.Fatal(err)
	}

	version := uint16(1)
	for round := 0; round < rounds; round++ {
		// Derive the next firmware: sometimes a small change (good
		// differential), sometimes a full rework.
		var next []byte
		if rng.Intn(2) == 0 {
			next = DeriveAppChange(current, 500+rng.Intn(2000))
		} else {
			next = MakeFirmware(fmt.Sprintf("soak-v%d", version+1), 48*1024)
		}
		version++
		if err := b.PublishVersion(version, next); err != nil {
			t.Fatalf("round %d: publish: %v", round, err)
		}

		scenario := rng.Intn(3)
		switch scenario {
		case 0: // clean update
			res, err := b.PullUpdate()
			if err != nil {
				t.Fatalf("round %d: clean update: %v", round, err)
			}
			if res.Version != version {
				t.Fatalf("round %d: booted v%d, want v%d", round, res.Version, version)
			}
			current = next

		case 1: // power loss at a random point, then retry
			b.Device.Internal.FailAfter(rng.Intn(400))
			_, err := b.PullUpdate()
			b.Device.Internal.ClearFault()
			if err != nil {
				// Recover: reboot, then retry cleanly.
				if _, rerr := b.Device.Reboot(); rerr != nil {
					t.Fatalf("round %d: reboot after power loss: %v", round, rerr)
				}
			}
			if b.Device.RunningVersion() != version {
				if _, err := b.PullUpdate(); err != nil {
					t.Fatalf("round %d: retry: %v", round, err)
				}
			}
			current = next

		case 2: // lossy link episode, CoAP retransmission absorbs it
			b.Link.SetLoss(0.02, int64(round))
			res, err := b.PullUpdate()
			b.Link.SetLoss(0, 0)
			if err != nil {
				if !errors.Is(err, flash.ErrPowerLoss) {
					// A fully exhausted retransmission aborts cleanly;
					// retry over the recovered link.
					if _, rerr := b.PullUpdate(); rerr != nil {
						t.Fatalf("round %d: retry after loss: %v", round, rerr)
					}
				}
			} else if res.Version != version {
				t.Fatalf("round %d: booted v%d, want v%d", round, res.Version, version)
			}
			current = next
		}

		// Invariants after every round: the device runs the expected
		// version and its image is byte-identical to the release.
		if got := b.Device.RunningVersion(); got != version {
			t.Fatalf("round %d (scenario %d): running v%d, want v%d", round, scenario, got, version)
		}
		if !bytes.Equal(runningFirmware(t, b), current) {
			t.Fatalf("round %d: installed firmware differs from the release", round)
		}
	}
	if got := b.Device.RunningVersion(); got != version {
		t.Fatalf("final version = %d, want %d", got, version)
	}
	t.Logf("soak complete: %d updates, %d reboots, %.0f s virtual time, energy %s",
		rounds, b.Device.Reboots(), b.Device.Clock.Now().Seconds(), b.Device.Meter)
}
