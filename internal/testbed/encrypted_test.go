package testbed

import (
	"bytes"
	"testing"

	"upkit/internal/platform"
)

// End-to-end tests for encrypted payloads (§VIII future work): the
// update server encrypts the wire payload, the device's pipeline
// decrypts it, and no hop in between ever sees plaintext.

func TestEncryptedPushUpdate(t *testing.T) {
	v1 := MakeFirmware("enc-v1", 48*1024)
	v2 := MakeFirmware("enc-v2", 48*1024)
	b, err := New(Options{Approach: platform.Push, Encrypted: true, Seed: "enc-push"}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PushUpdate()
	if err != nil {
		t.Fatalf("encrypted push update: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("decrypted installed firmware mismatch")
	}
}

func TestEncryptedDifferentialPullUpdate(t *testing.T) {
	v1 := MakeFirmware("encd-v1", 48*1024)
	v2 := DeriveAppChange(v1, 800)
	b, err := New(Options{
		Approach:     platform.Pull,
		Differential: true,
		Encrypted:    true,
		Seed:         "enc-diff",
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("encrypted differential update: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("decrypted patched firmware mismatch")
	}
	m := b.Device.Manifest()
	if !m.IsDifferential() {
		t.Fatal("expected a differential manifest")
	}
}

func TestEncryptedPayloadIsOpaqueOnTheWire(t *testing.T) {
	v1 := MakeFirmware("enco-v1", 32*1024)
	v2 := MakeFirmware("enco-v2", 32*1024)
	b, err := New(Options{Approach: platform.Push, Encrypted: true, Seed: "enc-wire"}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	u, err := b.Update.PrepareUpdate(0x2A, tok)
	if err != nil {
		t.Fatal(err)
	}
	b.Device.Agent.Abort()
	if !u.Encrypted {
		t.Fatal("update not marked encrypted")
	}
	// The wire payload must not contain any run of the plaintext.
	for i := 0; i+64 <= len(v2); i += 4096 {
		if bytes.Contains(u.Payload, v2[i:i+64]) {
			t.Fatalf("plaintext at offset %d leaks into the wire payload", i)
		}
	}
	if len(u.Payload) != len(v2)+16 {
		t.Fatalf("ciphertext = %d bytes, want %d", len(u.Payload), len(v2)+16)
	}
}

func TestEncryptedDeploymentRejectsCleartext(t *testing.T) {
	// A server that does NOT encrypt cannot update a device that
	// expects ciphertext: the "decrypted" garbage fails the digest.
	v1 := MakeFirmware("encx-v1", 32*1024)
	b, err := New(Options{Approach: platform.Push, Encrypted: true, Seed: "enc-mismatch"}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, MakeFirmware("encx-v2", 32*1024)); err != nil {
		t.Fatal(err)
	}
	// Sneak a cleartext update past the server's encryption by pushing
	// the raw vendor image through a tampering proxy.
	phone := b.Smartphone()
	phone.TamperPayload = func(ct []byte) []byte {
		img, _ := b.Update.LatestImage(0x2A)
		// Attacker substitutes plaintext firmware of the right length.
		out := make([]byte, len(ct))
		copy(out, img.Firmware)
		return out
	}
	if err := phone.PushUpdate(); err == nil {
		t.Fatal("cleartext payload accepted by an encrypted deployment")
	}
	if b.Device.ReadyToReboot() {
		t.Fatal("device staged a cleartext update")
	}
}
