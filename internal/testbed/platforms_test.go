package testbed

import (
	"bytes"
	"testing"

	"upkit/internal/bootloader"
	"upkit/internal/platform"
	"upkit/internal/security"
)

// Cross-platform matrix: every MCU profile must complete a full update
// in both slot configurations (where the flash layout allows it) — the
// portability claim of §V exercised end to end.

func TestUpdateMatrixAcrossPlatforms(t *testing.T) {
	cases := []struct {
		name      string
		mcu       platform.MCU
		mode      bootloader.Mode
		slotBytes int
		fwSize    int
	}{
		{"nRF52840/static", platform.NRF52840(), bootloader.ModeStatic, 0, 64 * 1024},
		{"nRF52840/ab", platform.NRF52840(), bootloader.ModeAB, 0, 64 * 1024},
		{"CC2650/static-external", platform.CC2650(), bootloader.ModeStatic, 64 * 1024, 32 * 1024},
		{"CC2538/static", platform.CC2538(), bootloader.ModeStatic, 96 * 1024, 48 * 1024},
		{"CC2538/ab", platform.CC2538(), bootloader.ModeAB, 96 * 1024, 48 * 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v1 := MakeFirmware("matrix-v1-"+tc.name, tc.fwSize)
			v2 := MakeFirmware("matrix-v2-"+tc.name, tc.fwSize)
			b, err := New(Options{
				MCU:       &tc.mcu,
				Mode:      tc.mode,
				Approach:  platform.Pull,
				SlotBytes: tc.slotBytes,
				Seed:      "matrix-" + tc.name,
			}, v1)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := b.PublishVersion(2, v2); err != nil {
				t.Fatal(err)
			}
			res, err := b.PullUpdate()
			if err != nil {
				t.Fatalf("update: %v", err)
			}
			if res.Version != 2 {
				t.Fatalf("booted v%d", res.Version)
			}
			if !bytes.Equal(runningFirmware(t, b), v2) {
				t.Fatal("installed firmware mismatch")
			}
		})
	}
}

// All three crypto suites drive the same update flow (the security
// interface abstraction of Fig. 3).
func TestUpdateAcrossCryptoSuites(t *testing.T) {
	for _, suiteName := range []string{"tinydtls", "tinycrypt"} {
		t.Run(suiteName, func(t *testing.T) {
			v1 := MakeFirmware("suite-v1", 32*1024)
			b, err := New(Options{
				SuiteName: suiteName,
				Approach:  platform.Pull,
				Seed:      "suite-" + suiteName,
			}, v1)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.PublishVersion(2, MakeFirmware("suite-v2", 32*1024)); err != nil {
				t.Fatal(err)
			}
			res, err := b.PullUpdate()
			if err != nil {
				t.Fatal(err)
			}
			if res.Version != 2 {
				t.Fatalf("booted v%d", res.Version)
			}
		})
	}
}

// The CryptoAuthLib/HSM suite needs provisioned keys; wire it by hand.
func TestUpdateWithHSMSuite(t *testing.T) {
	hsm := security.NewHSM()
	suite := security.NewCryptoAuthLib(hsm)
	// The testbed cannot know the keys before they exist, so construct
	// the suite by name is not possible here: build a minimal custom
	// deployment instead.
	vendorKey := security.MustGenerateKey("hsm-bed-vendor")
	serverKey := security.MustGenerateKey("hsm-bed-server")
	if err := hsm.Provision(0, vendorKey.Public(), true); err != nil {
		t.Fatal(err)
	}
	if err := hsm.Provision(1, serverKey.Public(), true); err != nil {
		t.Fatal(err)
	}
	digest := suite.Digest([]byte("hsm-check"))
	sig, err := suite.Sign(vendorKey, digest)
	if err != nil {
		t.Fatal(err)
	}
	if !suite.Verify(vendorKey.Public(), digest, sig) {
		t.Fatal("HSM suite verification failed with provisioned key")
	}
	// A key outside the HSM must fail closed, even with a valid
	// signature — the tamper-resistance property §V relies on.
	rogue := security.MustGenerateKey("hsm-bed-rogue")
	rsig, err := suite.Sign(rogue, digest)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Verify(rogue.Public(), digest, rsig) {
		t.Fatal("HSM suite verified an unprovisioned key")
	}
}
