package testbed

import (
	"encoding/binary"
	"math/rand"
)

// Synthetic firmware generation. Real ARM firmware is a mix of
// structured, repetitive code (Thumb instruction idioms, vector tables,
// literal pools) and higher-entropy data; the generator below mimics
// that mix so compression and diffing behave like they do on real
// images. Derivation helpers model the two workloads of Fig. 8b.

// MakeFirmware produces size bytes of deterministic firmware-like
// content for seed.
func MakeFirmware(seed string, size int) []byte {
	rng := rand.New(rand.NewSource(int64(hashSeed(seed))))
	out := make([]byte, 0, size)
	// Vector table: 64 little-endian "addresses".
	for i := 0; i < 64 && len(out) < size; i++ {
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], 0x0800_0000+uint32(rng.Intn(1<<16))*2)
		out = append(out, w[:]...)
	}
	// Code: repeated instruction idioms with occasional literals.
	idioms := [][]byte{
		{0x70, 0xB5},             // push {r4-r6, lr}
		{0x00, 0x20},             // movs r0, #0
		{0x04, 0x46},             // mov r4, r0
		{0xFF, 0xF7, 0x00, 0xF8}, // bl
		{0x70, 0xBD},             // pop {r4-r6, pc}
	}
	for len(out) < size {
		if rng.Intn(8) == 0 {
			var lit [4]byte
			rng.Read(lit[:])
			out = append(out, lit[:]...)
		} else {
			out = append(out, idioms[rng.Intn(len(idioms))]...)
		}
	}
	return out[:size]
}

// hashSeed derives a stable int from a string without crypto imports.
func hashSeed(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// DeriveAppChange models Fig. 8b's "change in application
// functionality": a localized modification of about editBytes
// (the paper uses 1000 bytes of difference).
func DeriveAppChange(base []byte, editBytes int) []byte {
	out := make([]byte, len(base))
	copy(out, base)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(7))
	start := len(out) / 3
	for i := 0; i < editBytes && start+i < len(out); i++ {
		out[start+i] = byte(rng.Intn(256))
	}
	return out
}

// DeriveOSChange models Fig. 8b's "OS version change" (e.g. Zephyr
// v1.2 → v1.3): many scattered modifications across roughly a fifth of
// the image, plus relocated sections, producing a compressed patch
// around 20 % of the image — the scale of a real minor OS upgrade.
func DeriveOSChange(base []byte) []byte {
	rng := rand.New(rand.NewSource(11))
	out := make([]byte, len(base))
	copy(out, base)
	if len(base) < 4096 {
		return out
	}
	// Rewrite ~14% of 512-byte blocks with fresh content.
	const block = 512
	for b := 0; b+block <= len(out); b += block {
		if rng.Intn(100) < 14 {
			rng.Read(out[b : b+block])
		}
	}
	// Shift a section by a few bytes (relinking effect).
	cut := len(out) / 2
	shifted := append([]byte{0x4F, 0xF0, 0x00, 0x00}, out[cut:len(out)-4]...)
	copy(out[cut:], shifted)
	return out
}
