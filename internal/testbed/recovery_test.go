package testbed

import (
	"bytes"
	"testing"

	"upkit/internal/bootloader"
	"upkit/internal/platform"
)

// Recovery-slot tests (Fig. 6, Configuration B): a third, non-bootable
// slot holds the factory image; when both regular slots are ruined, the
// bootloader restores it instead of bricking.

// newRecoveryBed builds a static-mode deployment with a recovery slot.
// The testbed has no recovery option, so wire the device directly.
func newRecoveryBed(t *testing.T) *Bed {
	t.Helper()
	v1 := MakeFirmware("recovery-v1", 32*1024)
	b, err := New(Options{
		Approach:     platform.Pull,
		Mode:         bootloader.ModeStatic,
		SlotBytes:    96 * 1024,
		Seed:         "recovery",
		WithRecovery: true,
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRecoverySlotHoldsFactoryImage(t *testing.T) {
	b := newRecoveryBed(t)
	if b.Device.Recovery == nil {
		t.Fatal("no recovery slot allocated")
	}
	if b.Device.Recovery.Version() != 1 {
		t.Fatalf("recovery slot holds v%d, want the factory v1", b.Device.Recovery.Version())
	}
	r, err := b.Device.Recovery.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, MakeFirmware("recovery-v1", 32*1024)) {
		t.Fatal("recovery image differs from the factory firmware")
	}
}

func TestBootRecoversWhenBothSlotsRuined(t *testing.T) {
	b := newRecoveryBed(t)
	// Catastrophe: corrupt the firmware in both regular slots.
	for _, s := range []struct{ off int }{
		{b.Device.SlotA.Region().Offset + 1000},
		{b.Device.SlotB.Region().Offset + 1000},
	} {
		if err := b.Device.Internal.Corrupt(s.off, 0xFF); err != nil {
			t.Fatal(err)
		}
	}
	res, err := b.Device.Reboot()
	if err != nil {
		t.Fatalf("boot with ruined slots: %v", err)
	}
	if res.Version != 1 || !res.RolledBack {
		t.Fatalf("result = %+v, want rolled-back v1 from recovery", res)
	}
	// The device is alive and can take a fresh update afterwards.
	if err := b.PublishVersion(2, MakeFirmware("recovery-v2", 32*1024)); err != nil {
		t.Fatal(err)
	}
	res, err = b.PullUpdate()
	if err != nil {
		t.Fatalf("update after recovery: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
}

func TestWithoutRecoverySlotBothSlotsRuinedBricks(t *testing.T) {
	// The contrast case: no recovery slot, both slots ruined — the
	// bootloader must report failure (the paper's "brick" scenario for
	// anything except the protected bootloader itself).
	v1 := MakeFirmware("norec-v1", 32*1024)
	b, err := New(Options{
		Approach:  platform.Pull,
		Mode:      bootloader.ModeStatic,
		SlotBytes: 96 * 1024,
		Seed:      "no-recovery",
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Device.Internal.Corrupt(b.Device.SlotA.Region().Offset+1000, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := b.Device.Internal.Corrupt(b.Device.SlotB.Region().Offset+1000, 0xFF); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Device.Reboot(); err == nil {
		t.Fatal("boot succeeded with both slots ruined and no recovery slot")
	}
}

func TestRecoveryOnExternalFlash(t *testing.T) {
	// On the CC2650, slot B and the recovery slot both live on the
	// external SPI flash (exactly Fig. 6's Configuration B picture).
	mcu := platform.CC2650()
	v1 := MakeFirmware("recovery-ext-v1", 24*1024)
	b, err := New(Options{
		MCU:          &mcu,
		Approach:     platform.Pull,
		Mode:         bootloader.ModeStatic,
		SlotBytes:    64 * 1024,
		Seed:         "recovery-ext",
		WithRecovery: true,
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Device.Recovery.Region().Mem != b.Device.External {
		t.Fatal("recovery slot should live on external flash")
	}
	// Ruin both slots; the factory image comes back from SPI flash.
	if err := b.Device.Internal.Corrupt(b.Device.SlotA.Region().Offset+1000, 0xFF); err != nil {
		t.Fatal(err)
	}
	if err := b.Device.External.Corrupt(b.Device.SlotB.Region().Offset+1000, 0xFF); err != nil {
		t.Fatal(err)
	}
	res, err := b.Device.Reboot()
	if err != nil {
		t.Fatalf("recovery from external flash: %v", err)
	}
	if res.Version != 1 {
		t.Fatalf("booted v%d, want v1", res.Version)
	}
}
