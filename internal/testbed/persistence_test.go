package testbed

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/updateserver"
)

// End-to-end persistence tests: an update server backed by the durable
// release store is killed (its store closed) and restarted onto the
// same state directory, and devices must not be able to tell — the
// restarted server serves the same releases, byte for byte.

// newPersistentServer builds an update server over a FileStore in dir,
// always signing with the same deterministic key so pre- and
// post-restart servers are the "same" server.
func newPersistentServer(t *testing.T, dir string) (*updateserver.Server, *updateserver.FileStore) {
	t.Helper()
	fs, err := updateserver.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	suite := security.NewTinyCrypt()
	srv := updateserver.New(suite, security.MustGenerateKey("persist-server"),
		updateserver.WithStore(fs))
	return srv, fs
}

func TestServerRestartPersistsReleases(t *testing.T) {
	dir := t.TempDir()
	v1 := MakeFirmware("persist-v1", 48*1024)
	v2 := MakeFirmware("persist-v2", 48*1024)

	srv, fs := newPersistentServer(t, dir)
	bed, err := New(Options{Seed: "persist", SharedUpdate: srv, Differential: true}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bed.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	// A device pulls v2 from the pre-crash server.
	res, err := bed.PullUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2", res.Version)
	}
	// Capture the payload the pre-crash server serves a v1 device.
	tok := manifest.DeviceToken{DeviceID: 0xC0FFEE, Nonce: 77, CurrentVersion: 1}
	before, err := srv.PrepareUpdate(bedAppID(bed), tok)
	if err != nil {
		t.Fatal(err)
	}

	fs.Close() // the crash

	// The restarted server: same key, same state dir, fresh process
	// state. It must already know both releases without any republish.
	restarted, refs := newPersistentServer(t, dir)
	defer refs.Close()
	if v, ok := restarted.Latest(bedAppID(bed)); !ok || v != 2 {
		t.Fatalf("restarted Latest = (%d,%v), want (2,true)", v, ok)
	}
	after, err := restarted.PrepareUpdate(bedAppID(bed), tok)
	if err != nil {
		t.Fatal(err)
	}
	// ECDSA signing is randomized, so manifests differ; the payload
	// bytes — what a mid-download reception journal checkpoints — must
	// be identical.
	if !bytes.Equal(before.Payload, after.Payload) {
		t.Fatal("restarted server serves different payload bytes")
	}

	// A brand-new device against the restarted server: its factory
	// provisioning is served from the replayed store, and the image must
	// pass the device's signature verification — proof the log round
	// trip preserved the vendor-signed bytes.
	bed2, err := New(Options{
		Seed: "persist", SharedUpdate: restarted, Differential: true,
		SharedVendor: bed.Vendor, DeviceID: 0xD0D0BEEF,
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if got := bed2.Device.RunningVersion(); got != 2 {
		t.Fatalf("provisioned from restarted store at v%d, want v2", got)
	}
	assertRunningFirmware(t, bed2, v2)

	// And a release published after the restart flows OTA as usual: the
	// durable backend is invisible to the update pipeline.
	v3 := DeriveAppChange(v2, 1000)
	if err := bed2.PublishVersion(3, v3); err != nil {
		t.Fatal(err)
	}
	res, err = bed2.PullUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 3 {
		t.Fatalf("post-restart OTA booted v%d, want v3", res.Version)
	}
	assertRunningFirmware(t, bed2, v3)
}

func TestServerRestartToleratesTornLog(t *testing.T) {
	dir := t.TempDir()
	v1 := MakeFirmware("torn-v1", 48*1024)
	v2 := MakeFirmware("torn-v2", 48*1024)

	srv, fs := newPersistentServer(t, dir)
	bed, err := New(Options{Seed: "torn", SharedUpdate: srv}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bed.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// The crash tore the record being appended: a valid header whose
	// payload never made it to disk.
	logs, err := filepath.Glob(filepath.Join(dir, "app-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("logs = %v, err = %v, want exactly one", logs, err)
	}
	f, err := os.OpenFile(logs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x50, 0x52, 0x53, 0x00, 0x01, 0x00, 0x00, 0xAB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restarted, refs := newPersistentServer(t, dir)
	defer refs.Close()
	if got := refs.Stats().TornTails; got != 1 {
		t.Fatalf("TornTails = %d, want 1", got)
	}
	if v, ok := restarted.Latest(bedAppID(bed)); !ok || v != 2 {
		t.Fatalf("Latest after torn-tail replay = (%d,%v), want (2,true)", v, ok)
	}
	// Both acknowledged releases survived: a device provisioned from
	// the recovered store receives v2 intact through full signature
	// verification, and a post-recovery release still flows OTA.
	bed2, err := New(Options{
		Seed: "torn", SharedUpdate: restarted, SharedVendor: bed.Vendor,
		DeviceID: 0xD0D0F00D,
	}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if got := bed2.Device.RunningVersion(); got != 2 {
		t.Fatalf("provisioned from recovered store at v%d, want v2", got)
	}
	assertRunningFirmware(t, bed2, v2)
	v3 := DeriveAppChange(v2, 500)
	if err := bed2.PublishVersion(3, v3); err != nil {
		t.Fatal(err)
	}
	res, err := bed2.PullUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 3 {
		t.Fatalf("post-recovery OTA booted v%d, want v3", res.Version)
	}
	assertRunningFirmware(t, bed2, v3)
}

// bedAppID exposes the bed's (defaulted) app ID to the tests.
func bedAppID(b *Bed) uint32 { return b.opts.AppID }

// assertRunningFirmware checks the installed slot byte-for-byte.
func assertRunningFirmware(t *testing.T, b *Bed, want []byte) {
	t.Helper()
	r, err := b.Device.Running().FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("installed firmware differs from the published release")
	}
}
