package testbed

import (
	"errors"
	"testing"
	"time"

	"upkit/internal/adversary"
	"upkit/internal/agent"
	"upkit/internal/bootloader"
	"upkit/internal/coap"
	"upkit/internal/events"
	"upkit/internal/flash"
	"upkit/internal/manifest"
	"upkit/internal/platform"
	"upkit/internal/security"
	"upkit/internal/telemetry"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
	"upkit/internal/verifier"
)

// The adversarial tier: each test plays one attack from the threat
// model (DESIGN.md §13) and asserts the exact rejection point — the
// agent FSM state, the lifecycle event, and the upkit_reject_total
// counter — plus the availability property that the device still boots
// its previous image afterwards.

// rejectCount reads the cross-layer rejection counter for one
// (layer, reason) pair.
func rejectCount(b *Bed, layer, reason string) uint64 {
	return b.Telemetry().Counter("upkit_reject_total",
		"Update images rejected, by layer and verification reason.",
		telemetry.L("layer", layer), telemetry.L("reason", reason)).Value()
}

// feedForged plays an attacker delivering a prepared update straight to
// the agent — the position of a compromised proxy or server that has
// already passed the transport.
func feedForged(t *testing.T, b *Bed, u *updateserver.Update) error {
	t.Helper()
	if _, err := b.Device.Agent.Receive(u.ManifestBytes); err != nil {
		return err
	}
	for off := 0; off < len(u.Payload); off += 512 {
		end := min(off+512, len(u.Payload))
		if _, err := b.Device.Agent.Receive(u.Payload[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// assertWaitingAndBootable asserts the canonical post-rejection state:
// the FSM cleaned back to Waiting, and a reboot still lands on wantV.
func assertWaitingAndBootable(t *testing.T, b *Bed, wantV uint16) {
	t.Helper()
	if st := b.Device.Agent.State(); st != agent.StateWaiting {
		t.Fatalf("agent state = %v, want Waiting", st)
	}
	res, err := b.Device.Reboot()
	if err != nil {
		t.Fatalf("reboot after rejected attack: %v", err)
	}
	if res.Version != wantV {
		t.Fatalf("booted v%d after rejected attack, want v%d", res.Version, wantV)
	}
}

// A captured, validly double-signed image replayed after the device has
// moved on: the per-request nonce is stale, so the agent rejects at the
// manifest — before a single firmware byte travels.
func TestAdversaryReplayStaleSignedImage(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push, Seed: "adv-replay"})
	if err := b.PublishVersion(2, MakeFirmware("adv-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	phone := b.Smartphone()
	if err := phone.PushUpdate(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Device.ApplyStagedUpdate(); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(3, MakeFirmware("adv-v3", fwSize)); err != nil {
		t.Fatal(err)
	}

	// The attacker reconnects after the reboot (phones bind to the BLE
	// session of the agent they connected to) and replays the capture.
	attacker := b.Smartphone()
	attacker.Captured = phone.Captured

	// The BLE transport flattens the verifier error into a status byte,
	// so the precise rejection point is asserted below via the reject
	// counter's reason label and the event stream.
	before := rejectCount(b, "agent", "nonce")
	if err := attacker.ReplayCaptured(); err == nil {
		t.Fatal("replayed image must be rejected")
	}
	if got := rejectCount(b, "agent", "nonce"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,nonce} = %d, want %d", got, before+1)
	}
	if b.Device.Events.Count(events.KindManifestRejected) == 0 {
		t.Fatal("no KindManifestRejected event")
	}
	assertWaitingAndBootable(t, b, 2)
}

// A downgrade with nothing wrong but the version: the attacker steals
// the CURRENT update-server key, obtains a fresh token (valid nonce!),
// and serves the old v1 image re-signed for this device. Only the
// strictly-newer version gate stands — and it holds.
func TestAdversaryDowngradeWithStolenServerKey(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-downgrade"})
	if err := b.PublishVersion(2, MakeFirmware("adv-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatal(err)
	}

	v1img, ok := b.Update.ImageByVersion(b.opts.AppID, 1)
	if !ok {
		t.Fatal("v1 image not in store")
	}
	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	forged, err := adversary.ForgeUpdate(b.Suite, v1img, b.serverKey, b.serverKeyID, tok)
	if err != nil {
		t.Fatal(err)
	}
	before := rejectCount(b, "agent", "version")
	if err := feedForged(t, b, forged); !errors.Is(err, verifier.ErrVersion) {
		t.Fatalf("downgrade error = %v, want ErrVersion", err)
	}
	if got := rejectCount(b, "agent", "version"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,version} = %d, want %d", got, before+1)
	}
	assertWaitingAndBootable(t, b, 2)
}

// Anti-rollback proper: a NEWER app version carrying an OLDER security
// version (a withdrawn beta the attacker kept). The version gate passes;
// the persisted security counter rejects it.
func TestAdversarySecurityVersionRollback(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-rollback"})
	if err := b.PublishRelease(vendorserver.Release{
		Version: 2, Firmware: MakeFirmware("adv-s5", fwSize), SecurityVersion: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatal(err)
	}
	if got := b.Device.SecurityVersion(); got != 5 {
		t.Fatalf("security counter = %d after install, want 5", got)
	}

	// v3 regresses the security version — published in error, or served
	// by an attacker from a capture. The device must refuse it.
	if err := b.PublishRelease(vendorserver.Release{
		Version: 3, Firmware: MakeFirmware("adv-s2", fwSize), SecurityVersion: 2,
	}); err != nil {
		t.Fatal(err)
	}
	before := rejectCount(b, "agent", "rollback")
	_, err := b.PullClient().CheckAndUpdate()
	if !errors.Is(err, verifier.ErrRollback) {
		t.Fatalf("rollback error = %v, want ErrRollback", err)
	}
	if got := rejectCount(b, "agent", "rollback"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,rollback} = %d, want %d", got, before+1)
	}
	if b.Device.Events.Count(events.KindManifestRejected) == 0 {
		t.Fatal("no KindManifestRejected event")
	}
	assertWaitingAndBootable(t, b, 2)

	// A release that advances the counter again installs normally.
	if err := b.PublishRelease(vendorserver.Release{
		Version: 4, Firmware: MakeFirmware("adv-s6", fwSize), SecurityVersion: 6,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("recovery update: %v", err)
	}
	if res.Version != 4 || b.Device.SecurityVersion() != 6 {
		t.Fatalf("after recovery: v%d counter %d, want v4 counter 6", res.Version, b.Device.SecurityVersion())
	}
}

// The headline lifecycle scenario: the update-server key leaks. The
// vendor rotates to key ID 2 and revokes ID 1 under the root signature;
// the device learns both over the (untrusted) update channel. The
// attacker's forgeries with the stolen key then die at the manifest,
// while legitimate updates under the new key still flow.
func TestAdversaryCompromisedServerKeyRotation(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-stolen"})
	if err := b.PublishVersion(2, MakeFirmware("adv-v2", fwSize)); err != nil {
		t.Fatal(err)
	}

	stolen, err := b.RotateServerKey()
	if err != nil {
		t.Fatal(err)
	}
	added, err := b.SyncKeys()
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("device learned no new key records")
	}
	if b.Device.Events.Count(events.KindKeysUpdated) == 0 {
		t.Fatal("no KindKeysUpdated event after key sync")
	}
	if !b.Keystore.IsRevoked(security.RoleServer, 1) {
		t.Fatal("server key 1 not revoked in device keystore")
	}

	// The attacker forges with the stolen (now revoked) key ID 1.
	img, ok := b.Update.LatestImage(b.opts.AppID)
	if !ok {
		t.Fatal("no latest image")
	}
	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	forged, err := adversary.ForgeUpdate(b.Suite, img, stolen, 1, tok)
	if err != nil {
		t.Fatal(err)
	}
	before := rejectCount(b, "agent", "server-key-revoked")
	err = feedForged(t, b, forged)
	if !errors.Is(err, verifier.ErrServerKey) || !errors.Is(err, security.ErrKeyRevoked) {
		t.Fatalf("forged-update error = %v, want ErrServerKey/ErrKeyRevoked", err)
	}
	if got := rejectCount(b, "agent", "server-key-revoked"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,server-key-revoked} = %d, want %d", got, before+1)
	}
	assertWaitingAndBootable(t, b, 1)

	// Legitimate updates signed with key 2 still work.
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("post-rotation update: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("booted v%d after rotation, want v2", res.Version)
	}
}

// A manifest past its expiry: correctly signed, correct nonce, but the
// device's clock has moved beyond NotAfter.
func TestAdversaryExpiredManifest(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-expired"})
	if err := b.PublishRelease(vendorserver.Release{
		Version:  2,
		Firmware: MakeFirmware("adv-exp", fwSize),
		NotAfter: b.epoch + 3600, // valid for one hour
	}); err != nil {
		t.Fatal(err)
	}
	b.Device.Clock.Advance(2 * time.Hour)

	before := rejectCount(b, "agent", "expired")
	_, err := b.PullClient().CheckAndUpdate()
	if !errors.Is(err, verifier.ErrExpired) {
		t.Fatalf("expired-manifest error = %v, want ErrExpired", err)
	}
	if got := rejectCount(b, "agent", "expired"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,expired} = %d, want %d", got, before+1)
	}
	assertWaitingAndBootable(t, b, 1)
}

// A revoked vendor key: the root signs a revocation of vendor key 1,
// and every image signed by it — including a perfectly fresh release —
// becomes uninstallable. The running image, signed by the same revoked
// key, keeps booting: revocation gates installs, never availability.
func TestAdversaryRevokedVendorKey(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-revoked"})
	if err := b.PublishVersion(2, MakeFirmware("adv-rv2", fwSize)); err != nil {
		t.Fatal(err)
	}
	if err := b.Revoke(security.RoleVendor, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SyncKeys(); err != nil {
		t.Fatal(err)
	}

	before := rejectCount(b, "agent", "vendor-key-revoked")
	_, err := b.PullClient().CheckAndUpdate()
	if !errors.Is(err, verifier.ErrVendorKey) || !errors.Is(err, security.ErrKeyRevoked) {
		t.Fatalf("revoked-vendor error = %v, want ErrVendorKey/ErrKeyRevoked", err)
	}
	if got := rejectCount(b, "agent", "vendor-key-revoked"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,vendor-key-revoked} = %d, want %d", got, before+1)
	}
	// Availability: the running v1 image was ALSO signed by the revoked
	// key; the bootloader grandfathers it.
	assertWaitingAndBootable(t, b, 1)
}

// A malicious on-path proxy flips one bit in a firmware block
// mid-transfer. Both signatures and the manifest pass — the corruption
// is caught by the streamed digest at the end of reception, the slot is
// invalidated, and a clean retry succeeds.
func TestAdversaryProxyMutatesBlockMidTransfer(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Seed: "adv-proxy"})
	v2 := MakeFirmware("adv-mut", fwSize)
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}

	c := b.PullClient()
	c.Ex = &adversary.Interceptor{
		Inner:      c.Ex,
		OnResponse: adversary.FlipBitInBlock(5, 3),
	}
	before := rejectCount(b, "agent", "digest")
	_, err := c.CheckAndUpdate()
	if !errors.Is(err, verifier.ErrDigest) {
		t.Fatalf("mutated-block error = %v, want ErrDigest", err)
	}
	if got := rejectCount(b, "agent", "digest"); got != before+1 {
		t.Fatalf("upkit_reject_total{agent,digest} = %d, want %d", got, before+1)
	}
	if b.Device.Events.Count(events.KindFirmwareRejected) == 0 {
		t.Fatal("no KindFirmwareRejected event")
	}
	assertWaitingAndBootable(t, b, 1)

	// The honest path still works.
	res, err := b.PullUpdate()
	if err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	if res.Version != 2 {
		t.Fatalf("retry booted v%d, want v2", res.Version)
	}
}

// Boot-time re-check, revocation arriving between staging and reboot:
// the agent verified with a then-valid key, the keystore revoked it
// before the reboot, and the bootloader's strict check on the staged
// (never-booted) slot refuses to promote it. The confirmed image —
// signed by the same revoked key — is grandfathered and boots.
func TestBootloaderRejectsStagedImageWithRevokedKey(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-staged"})
	if err := b.PublishVersion(2, MakeFirmware("adv-st2", fwSize)); err != nil {
		t.Fatal(err)
	}
	staged, err := b.PullClient().CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("staging: staged=%v err=%v", staged, err)
	}

	// The revocation lands while the device waits to reboot.
	if err := b.Revoke(security.RoleVendor, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SyncKeys(); err != nil {
		t.Fatal(err)
	}

	// Power-loss interleaving: arm a fault for the first boot attempt.
	// The reject path is nearly read-only, so the fault may not fire; if
	// it does, power returns and the outcome must not change.
	before := rejectCount(b, "bootloader", "vendor-key-revoked")
	b.Device.Internal.FailAfter(1)
	res, err := b.Device.Reboot()
	if err != nil {
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("interrupted reboot error = %v, want ErrPowerLoss", err)
		}
		b.Device.Internal.ClearFault()
		if res, err = b.Device.Reboot(); err != nil {
			t.Fatalf("reboot after power loss: %v", err)
		}
	}
	b.Device.Internal.ClearFault()
	if res.Version != 1 {
		t.Fatalf("booted v%d, want v1 (staged image must not promote)", res.Version)
	}
	if got := rejectCount(b, "bootloader", "vendor-key-revoked"); got <= before {
		t.Fatal("upkit_reject_total{bootloader,vendor-key-revoked} did not increase")
	}
	if b.Device.Events.Count(events.KindStagedRejected) == 0 {
		t.Fatal("no KindStagedRejected event")
	}

	// Recovery: rotate the vendor key, release v3 under it, and update.
	if _, err := b.RotateVendorKey(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SyncKeys(); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(3, MakeFirmware("adv-st3", fwSize)); err != nil {
		t.Fatal(err)
	}
	res, err = b.PullUpdate()
	if err != nil {
		t.Fatalf("post-rotation update: %v", err)
	}
	if res.Version != 3 {
		t.Fatalf("booted v%d after vendor rotation, want v3", res.Version)
	}
}

// Boot-time re-check, security-version regression: a complete,
// correctly double-signed image with an older security version appears
// in the idle slot (the agent bypassed — a compromised reception path
// or direct flash write). The bootloader's strict check catches what
// the agent never saw, across an interleaved power loss.
func TestBootloaderRejectsSecurityVersionRegression(t *testing.T) {
	b := newBed(t, Options{
		Approach: platform.Pull, Mode: bootloader.ModeAB,
		Lifecycle: true, Seed: "adv-boot-rb",
	})
	if err := b.PublishRelease(vendorserver.Release{
		Version: 2, Firmware: MakeFirmware("adv-br2", fwSize), SecurityVersion: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatal(err)
	}
	if b.Device.SecurityVersion() != 5 {
		t.Fatalf("counter = %d, want 5", b.Device.SecurityVersion())
	}

	// Craft a v3 image with security version 1 and plant it, fully
	// signed and Complete, in the idle slot.
	if err := b.PublishRelease(vendorserver.Release{
		Version: 3, Firmware: MakeFirmware("adv-br3", fwSize), SecurityVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}
	img, ok := b.Update.ImageByVersion(b.opts.AppID, 3)
	if !ok {
		t.Fatal("v3 image not in store")
	}
	forged, err := adversary.ForgeUpdate(b.Suite, img, b.serverKey, b.serverKeyID,
		agentToken(t, b))
	if err != nil {
		t.Fatal(err)
	}
	b.Device.Agent.Abort() // the token above was only bait for the forge
	idle := b.Device.SlotA
	if b.Device.Running() == idle {
		idle = b.Device.SlotB
	}
	w, err := idle.BeginReceive()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(forged.Payload); err != nil {
		t.Fatal(err)
	}
	if err := idle.WriteManifest(&forged.Manifest); err != nil {
		t.Fatal(err)
	}
	if err := idle.MarkComplete(); err != nil {
		t.Fatal(err)
	}

	// Power loss interleaved with the boot that should reject it: the
	// reject path is nearly read-only, so the fault may not fire; either
	// way the regressed image must never win.
	before := rejectCount(b, "bootloader", "rollback")
	b.Device.Internal.FailAfter(1)
	res, err := b.Device.Reboot()
	if err != nil {
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("interrupted reboot error = %v, want ErrPowerLoss", err)
		}
		b.Device.Internal.ClearFault()
		if res, err = b.Device.Reboot(); err != nil {
			t.Fatalf("reboot after power loss: %v", err)
		}
	}
	b.Device.Internal.ClearFault()
	if res.Version != 2 {
		t.Fatalf("booted v%d, want v2 (regressed image must not win)", res.Version)
	}
	if got := rejectCount(b, "bootloader", "rollback"); got <= before {
		t.Fatal("upkit_reject_total{bootloader,rollback} did not increase")
	}
	if b.Device.Events.Count(events.KindStagedRejected) == 0 {
		t.Fatal("no KindStagedRejected event")
	}
	if b.Device.SecurityVersion() != 5 {
		t.Fatalf("counter = %d after rejected regression, want 5", b.Device.SecurityVersion())
	}
}

// agentToken issues a device token purely as forge input.
func agentToken(t *testing.T, b *Bed) manifest.DeviceToken {
	t.Helper()
	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// The security counter's power-loss contract: the counter is advanced
// BEFORE the slot swap becomes visible, so at every fault point the
// persisted value is either the old one or the new one — and once the
// new image runs, the counter covers it.
func TestSecurityCounterPowerLossSweep(t *testing.T) {
	for _, n := range []int{0, 5, 20, 80, 320, 900} {
		v1 := MakeFirmware("sv-v1", 48*1024)
		v2 := MakeFirmware("sv-v2", 48*1024)
		b, err := New(Options{
			Approach: platform.Push, Lifecycle: true, Seed: "sv-sweep",
		}, v1)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.PublishRelease(vendorserver.Release{
			Version: 2, Firmware: v2, SecurityVersion: 2,
		}); err != nil {
			t.Fatal(err)
		}

		b.Device.Internal.FailAfter(n)
		pushErr := b.Smartphone().PushUpdate()
		var applyErr error
		if pushErr == nil {
			_, applyErr = b.Device.ApplyStagedUpdate()
		}
		b.Device.Internal.ClearFault()
		if pushErr != nil || applyErr != nil {
			if _, err := b.Device.Reboot(); err != nil {
				t.Fatalf("n=%d: reboot after power loss: %v", n, err)
			}
		}

		// Invariant: the counter is 0 (fault before the advance) or 2
		// (advance persisted) — never torn — and a running v2 is always
		// covered.
		sv := b.Device.SecurityVersion()
		if sv != 0 && sv != 2 {
			t.Fatalf("n=%d: counter = %d, want 0 or 2", n, sv)
		}
		if b.Device.RunningVersion() == 2 && sv != 2 {
			t.Fatalf("n=%d: running v2 with counter %d", n, sv)
		}

		// The retry completes and the counter lands at 2.
		if b.Device.RunningVersion() != 2 {
			if err := b.Smartphone().PushUpdate(); err != nil {
				t.Fatalf("n=%d: retry push: %v", n, err)
			}
			if _, err := b.Device.ApplyStagedUpdate(); err != nil {
				t.Fatalf("n=%d: retry apply: %v", n, err)
			}
		}
		if sv := b.Device.SecurityVersion(); sv != 2 {
			t.Fatalf("n=%d: final counter = %d, want 2", n, sv)
		}
		// And survives a plain reboot.
		if _, err := b.Device.Reboot(); err != nil {
			t.Fatalf("n=%d: final reboot: %v", n, err)
		}
		if sv := b.Device.SecurityVersion(); sv != 2 {
			t.Fatalf("n=%d: counter after reboot = %d, want 2", n, sv)
		}
	}
}

// Key sync is idempotent and tamper-proof: a second sync adds nothing,
// and a bundle mutated in flight is rejected without poisoning the
// keystore.
func TestKeySyncTamperedBundleRejected(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Lifecycle: true, Seed: "adv-bundle"})
	if _, err := b.RotateServerKey(); err != nil {
		t.Fatal(err)
	}

	// The on-path attacker flips a byte inside the first key record.
	c := b.PullClient()
	c.Ex = &adversary.Interceptor{
		Inner: c.Ex,
		OnResponse: func(req, resp *coap.Message) *coap.Message {
			if req.Path() == coap.PathKeys && len(resp.Payload) > 40 {
				resp.Payload[40] ^= 1
			}
			return resp
		},
	}
	if _, err := c.SyncKeys(); err == nil {
		t.Fatal("tampered bundle must be rejected")
	}
	if b.Keystore.IsRevoked(security.RoleServer, 1) {
		t.Fatal("tampered bundle must not change revocation state")
	}

	// The clean channel works; a repeat sync learns nothing new.
	added, err := b.SyncKeys()
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("clean sync learned nothing")
	}
	again, err := b.SyncKeys()
	if err != nil {
		t.Fatal(err)
	}
	_ = again // records re-verify and overwrite idempotently
	if !b.Keystore.IsRevoked(security.RoleServer, 1) {
		t.Fatal("revocation lost after repeat sync")
	}
}
