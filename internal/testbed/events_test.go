package testbed

import (
	"testing"

	"upkit/internal/events"
	"upkit/internal/platform"
)

// Lifecycle-event tests: the device's event log must tell the full,
// correctly ordered story of an update — the operator-facing record.

func TestEventSequenceForSuccessfulUpdate(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Pull, Seed: "events-ok"})
	if err := b.PublishVersion(2, MakeFirmware("ev-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatal(err)
	}

	// Expected order for the OTA update (after the factory boot).
	wantOrder := []events.Kind{
		events.KindTokenIssued,
		events.KindManifestAccepted,
		events.KindFirmwareVerified,
		events.KindUpdateStaged,
		events.KindRebooted,
		events.KindBootVerified,
		events.KindInstalled,
	}
	log := b.Device.Events.Events()
	idx := 0
	for _, e := range log {
		if idx < len(wantOrder) && e.Kind == wantOrder[idx] {
			idx++
		}
	}
	if idx != len(wantOrder) {
		t.Fatalf("event order incomplete: matched %d of %d\n%s",
			idx, len(wantOrder), b.Device.Events)
	}
	// Timestamps are non-decreasing.
	var prev int64
	for _, e := range log {
		if int64(e.At) < prev {
			t.Fatalf("timestamps regressed:\n%s", b.Device.Events)
		}
		prev = int64(e.At)
	}
}

func TestEventSequenceForRejectedManifest(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push, Seed: "events-rej"})
	if err := b.PublishVersion(2, MakeFirmware("ev-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	phone := b.Smartphone()
	phone.TamperManifest = func(m []byte) []byte { m[20] ^= 1; return m }
	if err := phone.PushUpdate(); err == nil {
		t.Fatal("tampered manifest accepted")
	}

	rej, ok := b.Device.Events.Last(events.KindManifestRejected)
	if !ok {
		t.Fatalf("no manifest-rejected event:\n%s", b.Device.Events)
	}
	if rej.Detail == "" {
		t.Fatal("rejection event missing the reason")
	}
	// Early rejection: no firmware event, no staging, and no extra
	// reboot beyond the factory one.
	if b.Device.Events.Count(events.KindFirmwareVerified) != 0 {
		t.Fatal("firmware event recorded for a rejected manifest")
	}
	if b.Device.Events.Count(events.KindUpdateStaged) != 0 {
		t.Fatal("staged event recorded for a rejected manifest")
	}
	if got := b.Device.Events.Count(events.KindRebooted); got != 1 {
		t.Fatalf("reboots in log = %d, want 1 (factory only)", got)
	}
}

func TestEventSequenceForRejectedFirmware(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push, Seed: "events-fw"})
	if err := b.PublishVersion(2, MakeFirmware("ev-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	phone := b.Smartphone()
	phone.TamperPayload = func(p []byte) []byte { p[100] ^= 1; return p }
	if err := phone.PushUpdate(); err == nil {
		t.Fatal("tampered firmware accepted")
	}
	if _, ok := b.Device.Events.Last(events.KindFirmwareRejected); !ok {
		t.Fatalf("no firmware-rejected event:\n%s", b.Device.Events)
	}
	if b.Device.Events.Count(events.KindManifestAccepted) != 1 {
		t.Fatal("manifest should have been accepted before the firmware failed")
	}
}

func TestSwapResumedEventAfterPowerLoss(t *testing.T) {
	b := newBed(t, Options{Approach: platform.Push, Seed: "events-resume"})
	if err := b.PublishVersion(2, MakeFirmware("ev-v2", fwSize)); err != nil {
		t.Fatal(err)
	}
	if err := b.Smartphone().PushUpdate(); err != nil {
		t.Fatal(err)
	}
	// Power fails during the install swap; the next boot resumes it.
	b.Device.Internal.FailAfter(120)
	if _, err := b.Device.ApplyStagedUpdate(); err == nil {
		t.Fatal("expected power loss during install")
	}
	b.Device.Internal.ClearFault()
	if _, err := b.Device.Reboot(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Device.Events.Last(events.KindSwapResumed); !ok {
		t.Fatalf("no swap-resumed event:\n%s", b.Device.Events)
	}
}
