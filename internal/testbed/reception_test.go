package testbed

import (
	"bytes"
	"errors"
	"testing"

	"upkit/internal/agent"
	"upkit/internal/coap"
	"upkit/internal/events"
	"upkit/internal/flash"
	"upkit/internal/platform"
)

// Reception crash-safety tests: a device power-cycled (or starved of
// connectivity) in the middle of a firmware download must resume from
// the journaled offset — re-downloading only the remaining blocks —
// and always end up running a byte-perfect image.

// imageTap wraps an Exchanger to observe (and optionally sabotage) the
// Block2 image transfer.
type imageTap struct {
	inner coap.Exchanger
	// fail, when set, may reject a request before it reaches the inner
	// exchanger (to model a dead uplink).
	fail func(req *coap.Message) error

	blocks     map[uint32]int // successful fetches per block number
	bytes      int            // payload bytes successfully fetched
	firstBlock int            // first image block requested, -1 until seen
}

func newImageTap(inner coap.Exchanger) *imageTap {
	return &imageTap{inner: inner, blocks: map[uint32]int{}, firstBlock: -1}
}

func (tap *imageTap) Exchange(req *coap.Message) (*coap.Message, error) {
	num, isImage := uint32(0), req.Code == coap.CodeGET && req.Path() == coap.PathImage
	if isImage {
		if raw, ok := req.Option(coap.OptBlock2); ok {
			if b, err := coap.ParseBlock(raw); err == nil {
				num = b.Num
			}
		}
		if tap.firstBlock == -1 {
			tap.firstBlock = int(num)
		}
	}
	if tap.fail != nil {
		if err := tap.fail(req); err != nil {
			return nil, err
		}
	}
	resp, err := tap.inner.Exchange(req)
	if err == nil && isImage && resp.Code == coap.CodeContent {
		tap.blocks[num]++
		tap.bytes += len(resp.Payload)
	}
	return resp, err
}

const recFwSize = 16 * 1024

func recOptions(base Options) Options {
	base.Approach = platform.Pull
	base.SlotBytes = 32 * 1024
	// Checkpoint at every flushed sector so a mid-download power loss
	// loses at most one buffer of progress.
	base.CheckpointEvery = 4096
	return base
}

func recBed(t *testing.T, opts Options, v1, v2 []byte) *Bed {
	t.Helper()
	b, err := New(recOptions(opts), v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishVersion(2, v2); err != nil {
		t.Fatal(err)
	}
	return b
}

// tappedClient returns a pull client whose exchanges run through a tap.
func tappedClient(b *Bed) (*coap.PullClient, *imageTap) {
	c := b.PullClient()
	tap := newImageTap(c.Ex)
	c.Ex = tap
	return c, tap
}

// cleanDownload measures an uninterrupted download on a reference bed:
// internal-flash operations consumed and payload bytes transferred.
func cleanDownload(t *testing.T, opts Options, v1, v2 []byte) (ops, wireBytes int) {
	t.Helper()
	b := recBed(t, opts, v1, v2)
	before := b.Device.Internal.Stats()
	c, tap := tappedClient(b)
	staged, err := c.CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("reference download: staged=%v err=%v", staged, err)
	}
	after := b.Device.Internal.Stats()
	return (after.SectorErases - before.SectorErases) +
		(after.PagePrograms - before.PagePrograms), tap.bytes
}

// resumeAfterPowerLoss interrupts a download after failAt flash
// operations, reboots, resumes, applies, and returns the tap of the
// resumed attempt.
func resumeAfterPowerLoss(t *testing.T, b *Bed, v2 []byte, failAt int) *imageTap {
	t.Helper()
	b.Device.Internal.FailAfter(failAt)
	if _, err := b.PullClient().CheckAndUpdate(); !errors.Is(err, flash.ErrPowerLoss) {
		t.Fatalf("interrupted download: error = %v, want ErrPowerLoss", err)
	}
	b.Device.Internal.ClearFault()

	// Power returns: the device must boot the old image, with the
	// half-received slot preserved for resumption.
	res, err := b.Device.Reboot()
	if err != nil {
		t.Fatalf("reboot after power loss: %v", err)
	}
	if res.Version != 1 {
		t.Fatalf("booted v%d after power loss, want v1", res.Version)
	}

	c, tap := tappedClient(b)
	staged, err := c.CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("resumed download: staged=%v err=%v", staged, err)
	}
	if b.Device.Events.Count(events.KindReceptionResumed) == 0 {
		t.Fatal("no reception-resumed event emitted")
	}
	if _, err := b.Device.ApplyStagedUpdate(); err != nil {
		t.Fatalf("apply resumed update: %v", err)
	}
	if got := b.Device.RunningVersion(); got != 2 {
		t.Fatalf("running v%d after resume, want v2", got)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("resumed firmware is not byte-identical to v2")
	}
	return tap
}

// TestPullResumeAfterPowerLoss is the headline scenario: power dies in
// the middle of a full-image download; after reboot the transfer
// continues at the journaled offset and moves strictly fewer bytes than
// a from-scratch download.
func TestPullResumeAfterPowerLoss(t *testing.T) {
	v1 := MakeFirmware("rx-v1", recFwSize)
	v2 := MakeFirmware("rx-v2", recFwSize)
	ops, fullBytes := cleanDownload(t, Options{Seed: "rx-ref"}, v1, v2)

	b := recBed(t, Options{Seed: "rx"}, v1, v2)
	tap := resumeAfterPowerLoss(t, b, v2, ops/2)
	if tap.firstBlock <= 0 {
		t.Fatalf("resumed transfer started at block %d, want > 0", tap.firstBlock)
	}
	if tap.bytes >= fullBytes {
		t.Fatalf("resumed transfer moved %d bytes, not fewer than the full %d", tap.bytes, fullBytes)
	}
}

func TestPullResumeEncrypted(t *testing.T) {
	v1 := MakeFirmware("rxe-v1", recFwSize)
	v2 := MakeFirmware("rxe-v2", recFwSize)
	ops, fullBytes := cleanDownload(t, Options{Seed: "rxe-ref", Encrypted: true}, v1, v2)

	b := recBed(t, Options{Seed: "rxe", Encrypted: true}, v1, v2)
	tap := resumeAfterPowerLoss(t, b, v2, ops/2)
	if tap.firstBlock <= 0 {
		t.Fatalf("resumed transfer started at block %d, want > 0", tap.firstBlock)
	}
	if tap.bytes >= fullBytes {
		t.Fatalf("resumed transfer moved %d bytes, not fewer than the full %d", tap.bytes, fullBytes)
	}
}

func TestPullResumeDifferential(t *testing.T) {
	v1 := MakeFirmware("rxd-v1", recFwSize)
	v2 := DeriveOSChange(v1)
	ops, _ := cleanDownload(t, Options{Seed: "rxd-ref", Differential: true}, v1, v2)

	// Differential wire payloads are compact, so the journaled wire
	// offset may still sit in block 0; the byte-perfect result and the
	// resume event are the assertions here.
	b := recBed(t, Options{Seed: "rxd", Differential: true}, v1, v2)
	resumeAfterPowerLoss(t, b, v2, ops/2)
}

// TestReceptionPowerLossSweep cuts power after every single flash
// operation of the download, one run per fault point. Whatever the
// interruption point, the device must boot a valid image and a retry
// (resumed or fresh) must reach a byte-perfect v2.
func TestReceptionPowerLossSweep(t *testing.T) {
	v1 := MakeFirmware("sweep-v1", recFwSize)
	v2 := MakeFirmware("sweep-v2", recFwSize)
	ops, _ := cleanDownload(t, Options{Seed: "sweep-ref"}, v1, v2)
	if ops < 20 {
		t.Fatalf("suspiciously few download flash operations: %d", ops)
	}
	for failAt := 0; failAt < ops; failAt++ {
		b := recBed(t, Options{Seed: "sweep"}, v1, v2)
		b.Device.Internal.FailAfter(failAt)
		staged, err := b.PullClient().CheckAndUpdate()
		b.Device.Internal.ClearFault()
		if err == nil {
			// The fault budget outlasted everything that matters: the
			// only remaining operations were the best-effort journal
			// invalidation after staging, whose failure is survivable —
			// the stale record is rejected at any later resume attempt.
			if !staged {
				t.Fatalf("failAt=%d: no error but nothing staged", failAt)
			}
		} else {
			if !errors.Is(err, flash.ErrPowerLoss) {
				t.Fatalf("failAt=%d: error = %v, want ErrPowerLoss", failAt, err)
			}
			res, rerr := b.Device.Reboot()
			if rerr != nil {
				t.Fatalf("failAt=%d: reboot: %v", failAt, rerr)
			}
			if res.Version != 1 {
				t.Fatalf("failAt=%d: booted v%d, want v1", failAt, res.Version)
			}
			retryStaged, retryErr := b.PullClient().CheckAndUpdate()
			if retryErr != nil || !retryStaged {
				t.Fatalf("failAt=%d: retry: staged=%v err=%v", failAt, retryStaged, retryErr)
			}
		}
		if _, err := b.Device.ApplyStagedUpdate(); err != nil {
			t.Fatalf("failAt=%d: apply: %v", failAt, err)
		}
		if !bytes.Equal(runningFirmware(t, b), v2) {
			t.Fatalf("failAt=%d: firmware mismatch", failAt)
		}
	}
}

// TestPullTransientTimeoutRetriedInline: a single lost exchange must be
// absorbed by the client's retry-with-backoff without restarting the
// transfer — every block is fetched exactly once.
func TestPullTransientTimeoutRetriedInline(t *testing.T) {
	v1 := MakeFirmware("tt-v1", recFwSize)
	v2 := MakeFirmware("tt-v2", recFwSize)
	b := recBed(t, Options{Seed: "tt"}, v1, v2)

	c, tap := tappedClient(b)
	failed := false
	tap.fail = func(req *coap.Message) error {
		if req.Path() != coap.PathImage || failed {
			return nil
		}
		if raw, ok := req.Option(coap.OptBlock2); ok {
			if blk, err := coap.ParseBlock(raw); err == nil && blk.Num == 100 {
				failed = true
				return coap.ErrTimeout
			}
		}
		return nil
	}
	staged, err := c.CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("staged=%v err=%v", staged, err)
	}
	if !failed {
		t.Fatal("fault was never injected")
	}
	for num, n := range tap.blocks {
		if n != 1 {
			t.Fatalf("block %d fetched %d times, want exactly once", num, n)
		}
	}
	if _, err := b.Device.ApplyStagedUpdate(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("firmware mismatch")
	}
}

// TestPullTimeoutSuspendsThenResumes: when the uplink dies mid-transfer
// and stays dead past all retries, the client suspends the download
// instead of aborting; the next cycle resumes it without ever touching
// block 0 again.
func TestPullTimeoutSuspendsThenResumes(t *testing.T) {
	v1 := MakeFirmware("ts-v1", recFwSize)
	v2 := MakeFirmware("ts-v2", recFwSize)
	b := recBed(t, Options{Seed: "ts"}, v1, v2)

	c, tap := tappedClient(b)
	linkDead := false
	tap.fail = func(req *coap.Message) error {
		if req.Path() != coap.PathImage {
			return nil
		}
		if raw, ok := req.Option(coap.OptBlock2); ok {
			if blk, err := coap.ParseBlock(raw); err == nil && blk.Num >= 128 {
				linkDead = true
			}
		}
		if linkDead {
			return coap.ErrTimeout
		}
		return nil
	}
	if _, err := c.CheckAndUpdate(); !errors.Is(err, coap.ErrTimeout) {
		t.Fatalf("dead-link error = %v, want ErrTimeout", err)
	}
	if !linkDead {
		t.Fatal("link-death fault was never armed")
	}
	// Suspended, not aborted: the agent is parked and the journal kept.
	if st := b.Device.Agent.State(); st != agent.StateWaiting {
		t.Fatalf("agent state after suspend = %v, want Waiting", st)
	}
	if !b.Device.ReceptionPending() {
		t.Fatal("no pending reception after suspend")
	}
	if b.Device.Events.Count(events.KindReceptionSuspended) == 0 {
		t.Fatal("no reception-suspended event emitted")
	}

	// Link recovers: the next cycle resumes past the dead point.
	c2, tap2 := tappedClient(b)
	staged, err := c2.CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("resume after link recovery: staged=%v err=%v", staged, err)
	}
	if tap2.firstBlock < 64 {
		t.Fatalf("resume restarted at block %d; the journaled offset was at least a sector in", tap2.firstBlock)
	}
	if n := tap.blocks[0] + tap2.blocks[0]; n != 1 {
		t.Fatalf("block 0 fetched %d times across suspend/resume, want exactly once", n)
	}
	if _, err := b.Device.ApplyStagedUpdate(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(runningFirmware(t, b), v2) {
		t.Fatal("firmware mismatch")
	}
}

// TestPullResumeOverLossyLink combines both hazards: 5% frame loss the
// whole way through, plus a power cycle in the middle of the download.
func TestPullResumeOverLossyLink(t *testing.T) {
	v1 := MakeFirmware("lpl-v1", recFwSize)
	v2 := MakeFirmware("lpl-v2", recFwSize)
	ops, _ := cleanDownload(t, Options{Seed: "lpl-ref"}, v1, v2)

	b := recBed(t, Options{Seed: "lpl"}, v1, v2)
	b.Link.SetLoss(0.05, 99)
	resumeAfterPowerLoss(t, b, v2, ops/2)
}
