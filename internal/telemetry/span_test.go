package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(0)
	key := SpanKey{DeviceID: 0xD0D0CAFE, AppID: 0x2A, From: 1, To: 2}

	tr.Record(key, PhaseGeneration, 10*time.Millisecond)
	tr.Record(key, PhasePropagation, 40*time.Second)
	tr.Record(key, PhaseVerification, time.Second)
	tr.Record(key, PhaseVerification, time.Second) // accumulates
	tr.Record(key, PhaseLoading, 12*time.Second)

	active := tr.Active()
	if len(active) != 1 {
		t.Fatalf("active = %d spans, want 1", len(active))
	}
	if !active[0].Complete() {
		t.Fatalf("span %v not complete", active[0])
	}
	if got := active[0].Phases[PhaseVerification]; got != 2*time.Second {
		t.Fatalf("verification = %v, want 2s", got)
	}

	tr.End(key, "installed")
	if len(tr.Active()) != 0 {
		t.Fatal("span still active after End")
	}
	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d spans, want 1", len(done))
	}
	if done[0].Outcome != "installed" {
		t.Fatalf("outcome = %q", done[0].Outcome)
	}
	want := 10*time.Millisecond + 40*time.Second + 2*time.Second + 12*time.Second
	if got := done[0].Total(); got != want {
		t.Fatalf("total = %v, want %v", got, want)
	}
	if s := done[0].String(); !strings.Contains(s, "v1→v2") || !strings.Contains(s, "installed") {
		t.Fatalf("render = %q", s)
	}
}

func TestSpanRingBound(t *testing.T) {
	tr := NewTracer(2)
	for i := range 5 {
		key := SpanKey{DeviceID: uint32(i)}
		tr.Record(key, PhaseGeneration, time.Millisecond)
		tr.End(key, "done")
	}
	done := tr.Completed()
	if len(done) != 2 {
		t.Fatalf("ring holds %d, want 2", len(done))
	}
	if done[0].Key.DeviceID != 3 || done[1].Key.DeviceID != 4 {
		t.Fatalf("ring kept %v, %v; want devices 3, 4", done[0].Key, done[1].Key)
	}
	if tr.EndedCount() != 5 {
		t.Fatalf("ended = %d, want 5", tr.EndedCount())
	}
}

func TestEndUnknownKey(t *testing.T) {
	tr := NewTracer(0)
	tr.End(SpanKey{DeviceID: 1}, "rejected-manifest")
	done := tr.Completed()
	if len(done) != 1 || done[0].Outcome != "rejected-manifest" {
		t.Fatalf("completed = %+v", done)
	}
	if done[0].Complete() {
		t.Fatal("empty span reported complete")
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer(0)
	if got := tr.Summary(); got != "no spans recorded" {
		t.Fatalf("empty summary = %q", got)
	}
	key := SpanKey{DeviceID: 1, AppID: 2, From: 1, To: 2}
	tr.Record(key, PhaseGeneration, time.Second)
	tr.End(key, "installed")
	tr.Record(SpanKey{DeviceID: 9}, PhasePropagation, time.Second)
	sum := tr.Summary()
	if !strings.Contains(sum, "1 completed") || !strings.Contains(sum, "1 active") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestSnapshotsDoNotAlias(t *testing.T) {
	tr := NewTracer(0)
	key := SpanKey{DeviceID: 1}
	tr.Record(key, PhaseGeneration, time.Second)
	snap := tr.Active()
	snap[0].Phases[PhaseGeneration] = 99 * time.Hour
	if got := tr.Active()[0].Phases[PhaseGeneration]; got != time.Second {
		t.Fatalf("tracer state mutated through snapshot: %v", got)
	}
}
