package telemetry

import (
	"testing"
	"time"
)

// The registry's whole point is that instrumentation is cheap enough to
// leave on in the server's request path. Acceptance bar: a resolved
// handle records in well under 100 ns/op.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for b.Loop() {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for b.Loop() {
		h.Observe(0.042)
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "")
	b.ReportAllocs()
	for b.Loop() {
		g.Add(1)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for b.Loop() {
		c.Inc()
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := NewTracer(0)
	key := SpanKey{DeviceID: 1, AppID: 2, From: 1, To: 2}
	b.ReportAllocs()
	for b.Loop() {
		tr.Record(key, PhaseVerification, time.Microsecond)
	}
}
