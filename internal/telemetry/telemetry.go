// Package telemetry is UpKit's unified observability layer: a
// dependency-free metrics registry (counters, gauges, histograms) plus
// lightweight phase spans that trace one update end-to-end across the
// paper's four phases — generation, propagation, verification, loading
// (§VI, Fig. 8a–c).
//
// The registry is built for the server's hot path: once a handle is
// resolved (Registry.Counter and friends), recording a sample is one or
// two atomic operations and never takes a lock. Handle resolution takes
// a short critical section and is meant to happen once, at wiring time.
//
// Everything is nil-safe in the style of events.Log: a nil *Registry
// resolves nil handles, and nil handles drop their samples, so
// instrumented components never need nil checks and telemetry stays
// strictly optional.
//
// Exposition is the Prometheus text format (see prom.go), served by the
// update server at GET /api/v1/metrics.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a metric.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates the exposition type of a family.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; handles come from Registry.Counter. A nil
// Counter drops all samples.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (stored as float64 bits).
// A nil Gauge drops all samples.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; contention-safe).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds; an implicit +Inf bucket catches the rest. A nil Histogram
// drops all samples.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~16) and the scan is
	// branch-predictable, beating binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefBuckets are general-purpose latency buckets in seconds, spanning
// sub-millisecond server work to multi-minute constrained-device
// transfers.
var DefBuckets = []float64{.0001, .001, .01, .1, .5, 1, 5, 15, 60, 300}

// SizeBuckets are payload-size buckets in bytes, spanning a manifest to
// a full firmware image.
var SizeBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}

// metric is one labelled instance inside a family.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // collector callback (counterFunc/gaugeFunc)
}

// family groups all label variants of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64 // histograms only
	metrics map[string]*metric
}

// Registry holds metric families and the span tracer. The zero value is
// not usable; construct with NewRegistry. A nil *Registry resolves nil
// handles everywhere, so optional telemetry costs one nil check.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	spans    *Tracer
}

// NewRegistry creates an empty registry with a span tracer attached.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		spans:    newTracer(DefaultSpanCapacity),
	}
}

// Spans returns the registry's phase-span tracer (nil for a nil
// registry; the tracer is itself nil-safe).
func (r *Registry) Spans() *Tracer {
	if r == nil {
		return nil
	}
	return r.spans
}

// labelKey renders a canonical map key for a label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// resolve finds or creates the family and the labelled instance.
func (r *Registry) resolve(name, help string, kind metricKind, bounds []float64, labels []Label) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, metrics: make(map[string]*metric)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	key := labelKey(labels)
	m, ok := f.metrics[key]
	if !ok {
		sorted := append([]Label{}, labels...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		m = &metric{labels: sorted}
		switch kind {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			m.h = &Histogram{bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.metrics[key] = m
	}
	return m
}

// Counter returns the counter handle for name + labels, registering it
// on first use. Resolve once and keep the handle: recording is then a
// single atomic add.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge handle for name + labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram handle for name + labels. buckets are
// sorted upper bounds; nil selects DefBuckets. The first registration
// of a name fixes its buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.resolve(name, help, kindHistogram, buckets, labels).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that keep their own counters (the
// update server's patch cache). Registering the same name + labels
// again replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.resolve(name, help, kindCounter, nil, labels).fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.resolve(name, help, kindGauge, nil, labels).fn = fn
}
