package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase spans trace one update end-to-end across the paper's four
// phases (§VI, Fig. 8a): generation on the servers, propagation over
// the proxy and radio, verification on the device, loading in the
// bootloader. A span is keyed by (device ID, app ID, from→to version) —
// the same tuple the double signature binds — so every component that
// touches the update can contribute its phase without any of them
// owning the span's lifecycle.
//
// Durations are whatever clock the contributing component runs on:
// server phases are host time (the servers are real hardware in this
// reproduction, as in the paper), device phases are virtual time from
// the device's simclock. Both are time.Duration and land in the same
// span; §VI of the paper mixes its clock domains the same way.

// Phase names one of the paper's four update phases.
type Phase string

// The four phases of Fig. 8a, in pipeline order.
const (
	PhaseGeneration   Phase = "generation"
	PhasePropagation  Phase = "propagation"
	PhaseVerification Phase = "verification"
	PhaseLoading      Phase = "loading"
)

// AllPhases lists the phases in pipeline order.
var AllPhases = []Phase{PhaseGeneration, PhasePropagation, PhaseVerification, PhaseLoading}

// SpanKey identifies one update flow.
type SpanKey struct {
	DeviceID uint32
	AppID    uint32
	From     uint16
	To       uint16
}

// String renders "device 0xd0d0cafe app 0x2a v1→v2".
func (k SpanKey) String() string {
	return fmt.Sprintf("device %#x app %#x v%d→v%d", k.DeviceID, k.AppID, k.From, k.To)
}

// Span is one update's accumulated phase breakdown.
type Span struct {
	Key SpanKey
	// Phases maps each contributed phase to its accumulated duration.
	Phases map[Phase]time.Duration
	// Outcome is set when the span ends ("installed", "rolled-back",
	// "rejected-manifest", ...). Empty while the span is active.
	Outcome string
}

// Total sums all phase durations.
func (s Span) Total() time.Duration {
	var sum time.Duration
	for _, d := range s.Phases {
		sum += d
	}
	return sum
}

// Complete reports whether all four phases were recorded.
func (s Span) Complete() bool {
	for _, p := range AllPhases {
		if _, ok := s.Phases[p]; !ok {
			return false
		}
	}
	return true
}

// String renders a one-line summary suitable for operator logs.
func (s Span) String() string {
	parts := make([]string, 0, len(AllPhases)+1)
	for _, p := range AllPhases {
		if d, ok := s.Phases[p]; ok {
			parts = append(parts, fmt.Sprintf("%s %.3fs", p, d.Seconds()))
		}
	}
	out := fmt.Sprintf("%s: %s (total %.3fs)", s.Key, strings.Join(parts, ", "), s.Total().Seconds())
	if s.Outcome != "" {
		out += " — " + s.Outcome
	}
	return out
}

// clone deep-copies the span so snapshots never alias tracer state.
func (s Span) clone() Span {
	phases := make(map[Phase]time.Duration, len(s.Phases))
	for p, d := range s.Phases {
		phases[p] = d
	}
	return Span{Key: s.Key, Phases: phases, Outcome: s.Outcome}
}

// DefaultSpanCapacity bounds the completed-span ring of a new tracer.
const DefaultSpanCapacity = 256

// Tracer collects phase spans. Safe for concurrent use; a nil *Tracer
// drops everything, so contributors never need nil checks.
type Tracer struct {
	mu        sync.Mutex
	capacity  int
	active    map[SpanKey]*Span
	completed []Span // ring, oldest first up to capacity
	ended     uint64 // total spans ever ended (ring may have dropped some)
}

func newTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{capacity: capacity, active: make(map[SpanKey]*Span)}
}

// NewTracer creates a standalone tracer (registries come with one
// attached; this is for tests and custom wiring). capacity bounds the
// completed-span ring; 0 selects DefaultSpanCapacity.
func NewTracer(capacity int) *Tracer { return newTracer(capacity) }

// Record charges d to the given phase of the span identified by key,
// creating the span on first contribution. Negative durations are
// clamped to zero (a phase happened, even if it was unmeasurably fast).
func (t *Tracer) Record(key SpanKey, phase Phase, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.active[key]
	if !ok {
		s = &Span{Key: key, Phases: make(map[Phase]time.Duration)}
		t.active[key] = s
	}
	s.Phases[phase] += d
}

// End completes the span for key with the given outcome and moves it to
// the completed ring. Ending an unknown key records an empty completed
// span (the outcome is still operationally interesting — e.g. a
// rejection before any phase was measured).
func (t *Tracer) End(key SpanKey, outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.active[key]
	if !ok {
		s = &Span{Key: key, Phases: make(map[Phase]time.Duration)}
	} else {
		delete(t.active, key)
	}
	s.Outcome = outcome
	if len(t.completed) >= t.capacity {
		t.completed = append(t.completed[1:], *s)
	} else {
		t.completed = append(t.completed, *s)
	}
	t.ended++
}

// Active snapshots the in-flight spans, ordered by key.
func (t *Tracer) Active() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.active))
	for _, s := range t.active {
		out = append(out, s.clone())
	}
	sort.Slice(out, func(i, j int) bool { return spanKeyLess(out[i].Key, out[j].Key) })
	return out
}

// Completed snapshots the retained completed spans, oldest first.
func (t *Tracer) Completed() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.completed))
	for i, s := range t.completed {
		out[i] = s.clone()
	}
	return out
}

// EndedCount reports how many spans have ever ended, including those
// the bounded ring has since dropped.
func (t *Tracer) EndedCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ended
}

// Summary renders an operator-facing digest: per-phase totals over the
// retained completed spans plus the count of active ones.
func (t *Tracer) Summary() string {
	if t == nil {
		return "no tracer"
	}
	completed := t.Completed()
	t.mu.Lock()
	activeN := len(t.active)
	t.mu.Unlock()
	if len(completed) == 0 && activeN == 0 {
		return "no spans recorded"
	}
	totals := make(map[Phase]time.Duration)
	for _, s := range completed {
		for p, d := range s.Phases {
			totals[p] += d
		}
	}
	parts := make([]string, 0, len(AllPhases))
	for _, p := range AllPhases {
		if d, ok := totals[p]; ok {
			parts = append(parts, fmt.Sprintf("%s %.3fs", p, d.Seconds()))
		}
	}
	return fmt.Sprintf("%d completed spans (%s), %d active", len(completed), strings.Join(parts, ", "), activeN)
}

func spanKeyLess(a, b SpanKey) bool {
	if a.DeviceID != b.DeviceID {
		return a.DeviceID < b.DeviceID
	}
	if a.AppID != b.AppID {
		return a.AppID < b.AppID
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
