package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %f, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 55.5 {
		t.Fatalf("sum = %f, want 55.5", h.Sum())
	}
}

func TestHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels resolved to different handles")
	}
	c := r.Counter("x_total", "x", L("k", "other"))
	if a == c {
		t.Fatal("different labels resolved to the same handle")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	r.Histogram("h", "", nil).Observe(1)
	r.CounterFunc("cf", "", func() float64 { return 1 })
	r.Spans().Record(SpanKey{}, PhaseGeneration, time.Second)
	r.Spans().End(SpanKey{}, "done")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	c.Inc() // must not panic
	var h *Histogram
	h.Observe(1)
	var g *Gauge
	g.Add(1)
}

// TestConcurrentIncrementsAndScrape is the -race workout: parallel
// writers on shared handles while scrapes run concurrently.
func TestConcurrentIncrementsAndScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 1000

	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "concurrent counter")
			h := r.Histogram("conc_seconds", "concurrent histogram", nil)
			g := r.Gauge("conc_gauge", "concurrent gauge")
			for i := range perWriter {
				c.Inc()
				h.Observe(float64(i%7) * 0.01)
				g.Add(1)
				r.Spans().Record(SpanKey{DeviceID: uint32(w)}, PhaseVerification, time.Millisecond)
			}
			r.Spans().End(SpanKey{DeviceID: uint32(w)}, "done")
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for range 50 {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			_ = r.Spans().Summary()
		}
	}()
	wg.Wait()
	<-scrapeDone

	if got := r.Counter("conc_total", "").Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != writers*perWriter {
		t.Fatalf("gauge = %f, want %d", got, writers*perWriter)
	}
	if got := r.Spans().EndedCount(); got != writers {
		t.Fatalf("ended spans = %d, want %d", got, writers)
	}
}

// TestPrometheusExpositionGolden pins the exact exposition output for a
// small registry: family ordering, label rendering, histogram buckets,
// and collector callbacks.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("upkit_requests_total", "Requests served.", L("result", "full")).Add(3)
	r.Counter("upkit_requests_total", "Requests served.", L("result", "differential")).Add(7)
	r.Gauge("upkit_cache_bytes", "Bytes cached.").Set(1536.5)
	h := r.Histogram("upkit_prepare_seconds", "Prepare latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.CounterFunc("upkit_cache_hits_total", "Cache hits.", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP upkit_cache_bytes Bytes cached.
# TYPE upkit_cache_bytes gauge
upkit_cache_bytes 1536.5
# HELP upkit_cache_hits_total Cache hits.
# TYPE upkit_cache_hits_total counter
upkit_cache_hits_total 42
# HELP upkit_prepare_seconds Prepare latency.
# TYPE upkit_prepare_seconds histogram
upkit_prepare_seconds_bucket{le="0.1"} 1
upkit_prepare_seconds_bucket{le="1"} 2
upkit_prepare_seconds_bucket{le="+Inf"} 3
upkit_prepare_seconds_sum 2.55
upkit_prepare_seconds_count 3
# HELP upkit_requests_total Requests served.
# TYPE upkit_requests_total counter
upkit_requests_total{result="differential"} 7
upkit_requests_total{result="full"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("msg", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{msg="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition %q does not contain %q", b.String(), want)
	}
}

func TestReregisterKindPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dup", "")
}
