package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): the de-facto
// scrape format every metrics pipeline understands. The registry holds
// live atomic values, so a scrape is a consistent-enough snapshot
// without stopping writers.

// ContentType is the Content-Type of the exposition output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format, families and label sets in lexicographic order so
// the output is stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the family and metric structure under the lock; values
	// are atomics and read lock-free afterwards, so a scrape never
	// blocks the hot path for longer than the map walk.
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.metrics))
		for k := range f.metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ms := make([]metricSnap, len(keys))
		for i, k := range keys {
			m := f.metrics[k]
			ms[i] = metricSnap{m: m, fn: m.fn}
		}
		fams = append(fams, famSnap{f: f, metrics: ms})
	}
	r.mu.Unlock()

	for _, fs := range fams {
		if err := writeFamily(w, fs.f, fs.metrics); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// metricSnap pairs a metric with its collector callback as read under
// the registry lock (the callback may be replaced concurrently).
type metricSnap struct {
	m  *metric
	fn func() float64
}

type famSnap struct {
	f       *family
	metrics []metricSnap
}

func writeFamily(w io.Writer, f *family, metrics []metricSnap) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, ms := range metrics {
		if err := writeMetric(w, f, ms); err != nil {
			return err
		}
	}
	return nil
}

func writeMetric(w io.Writer, f *family, ms metricSnap) error {
	m := ms.m
	switch f.kind {
	case kindCounter:
		v := float64(m.c.Value())
		if ms.fn != nil {
			v = ms.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(m.labels), formatValue(v))
		return err
	case kindGauge:
		v := m.g.Value()
		if ms.fn != nil {
			v = ms.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(m.labels), formatValue(v))
		return err
	case kindHistogram:
		var cum uint64
		for i, bound := range m.h.bounds {
			cum += m.h.buckets[i].Load()
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, renderLabels(append(append([]Label{}, m.labels...), L("le", le))), cum); err != nil {
				return err
			}
		}
		cum += m.h.buckets[len(m.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, renderLabels(append(append([]Label{}, m.labels...), L("le", "+Inf"))), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(m.labels), formatValue(m.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(m.labels), m.h.Count())
		return err
	}
	return nil
}

// renderLabels renders {a="x",b="y"}, or "" for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
