// Package device assembles a complete simulated constrained IoT device:
// flash chips per the MCU profile, the slot layout of the chosen update
// configuration, the update agent, the bootloader, the shared verifier,
// and the clock/energy instrumentation. It is the unit the examples and
// experiments operate on.
package device

import (
	"errors"
	"fmt"
	"time"

	"upkit/internal/agent"
	"upkit/internal/bootloader"
	"upkit/internal/energy"
	"upkit/internal/events"
	"upkit/internal/flash"
	"upkit/internal/manifest"
	"upkit/internal/platform"
	"upkit/internal/security"
	"upkit/internal/simclock"
	"upkit/internal/slot"
	"upkit/internal/telemetry"
	"upkit/internal/updateserver"
	"upkit/internal/verifier"
)

// PhaseLoading mirrors the bootloader's phase name; reboot overhead is
// charged to it (device re-initialisation before the jump).
const PhaseLoading = bootloader.PhaseLoading

// Default timing constants, calibrated with the rest of the Fig. 8a
// configuration (see EXPERIMENTS.md).
const (
	// DefaultRebootTime is the device re-initialisation time after a
	// reset, before the bootloader runs.
	DefaultRebootTime = 200 * time.Millisecond
	// DefaultJumpTime is the bootloader's fixed loading cost: vector
	// table relocation, RAM init, and the jump to the application.
	DefaultJumpTime = 800 * time.Millisecond
)

// Device errors.
var (
	ErrNoUpdateStaged = errors.New("device: no verified update staged")
	ErrTooSmallFlash  = errors.New("device: flash too small for the requested layout")
)

// Options configures a simulated device.
type Options struct {
	// Name labels the device in logs.
	Name string
	// MCU selects the hardware platform profile.
	MCU platform.MCU
	// Mode selects static (Configuration B) or A/B (Configuration A).
	Mode bootloader.Mode
	// SlotBytes is the per-slot size; it must be a multiple of the
	// sector size. Zero selects the largest symmetric layout.
	SlotBytes int
	// Suite is the cryptographic implementation.
	Suite security.Suite
	// Keys are the provisioned verification keys.
	Keys verifier.Keys
	// KeySource, when set, overrides Keys with a lifecycle-aware key
	// resolver (typically a security.Keystore fed by key bundles): the
	// verifier then honours key IDs, rotation, revocation, and validity
	// windows.
	KeySource verifier.KeySource
	// TimeSource supplies Unix-seconds wall time for manifest-expiry
	// checks; nil models a device without a real-time clock (expiry is
	// not enforced).
	TimeSource func() uint64
	// DeviceID and AppID identify the device and its application.
	DeviceID uint32
	AppID    uint32
	// SupportDifferential enables differential updates in device tokens.
	SupportDifferential bool
	// NonceSeed seeds the deterministic nonce stream (simulation only).
	NonceSeed string
	// RebootTime is the device re-initialisation time on reboot.
	RebootTime time.Duration
	// JumpTime is the bootloader's fixed loading cost (vector table
	// relocation and jump).
	JumpTime time.Duration
	// PayloadKey enables the pipeline's decryption stage: the update
	// server must encrypt payloads under the same symmetric key.
	PayloadKey []byte
	// CheckpointEvery tunes the reception journal's cadence (bytes of
	// durably written firmware between checkpoints); zero selects the
	// agent default of four pipeline buffers.
	CheckpointEvery int
	// WithRecovery allocates a third, non-bootable recovery slot
	// holding the factory image (Fig. 6, Configuration B): the
	// bootloader's last resort when neither slot verifies. It lives on
	// external flash when the platform has one.
	WithRecovery bool
	// Telemetry, when set, is shared with the agent and bootloader so
	// device-side metrics and phase spans land in one registry (usually
	// the update server's). Nil keeps the device silent.
	Telemetry *telemetry.Registry
}

// Device is one simulated IoT device.
type Device struct {
	Name  string
	Clock *simclock.Clock
	Meter *energy.Meter
	// Phases accumulates the per-phase time breakdown of Fig. 8a.
	Phases *simclock.Timer

	Internal *flash.Memory
	External *flash.Memory

	SlotA *slot.Slot
	SlotB *slot.Slot
	// Recovery is the optional factory-image slot (nil unless
	// Options.WithRecovery).
	Recovery *slot.Slot

	Agent      *agent.Agent
	Bootloader *bootloader.Bootloader
	Verifier   *verifier.Verifier
	// Events records the device's update lifecycle.
	Events *events.Log

	opts       Options
	scratch    flash.Region
	journal    flash.Region
	rjournal   flash.Region
	recJournal *slot.ReceptionJournal
	secRegion  flash.Region
	secVer     *slot.SecurityCounter
	running    *slot.Slot
	reboots    int

	// chargedErases/chargedWrites track flash activity already charged
	// to the energy meter by EnergyReport.
	chargedErases int
	chargedWrites int
}

// New builds a device per opts. The internal flash layout is
//
//	[bootloader][slot A][slot B*][scratch][swap journal][reception journal][security counter]
//
// with slot B placed on external flash when the MCU has one and its
// internal flash cannot hold both slots (the CC2650 case, §V). The
// reception journal and the anti-rollback security counter each span
// two sectors so their latest record always survives their ring's own
// sector erases.
func New(opts Options) (*Device, error) {
	if opts.Suite == nil {
		return nil, errors.New("device: options need a crypto suite")
	}
	clock := simclock.New()
	meter := energy.NewMeter(energy.NRF52840Profile())
	internal, err := flash.New(opts.MCU.Internal, clock)
	if err != nil {
		return nil, err
	}
	var external *flash.Memory
	if opts.MCU.HasExternalFlash() {
		external, err = flash.New(*opts.MCU.External, clock)
		if err != nil {
			return nil, err
		}
	}

	sector := opts.MCU.Internal.SectorSize
	// scratch + swap journal + 2-sector reception journal + 2-sector
	// security counter
	overhead := opts.MCU.ReservedBootloader + 6*sector
	slotBytes := opts.SlotBytes
	// Internal slots: A and B, plus the recovery slot when it cannot go
	// to external flash.
	internalSlots := 2
	if opts.WithRecovery && external == nil {
		internalSlots = 3
	}
	// Decide where slot B lives: internal if it fits, else external.
	bOnExternal := false
	if slotBytes == 0 {
		slotBytes = (opts.MCU.Internal.Size - overhead) / internalSlots / sector * sector
	}
	if opts.WithRecovery && external == nil {
		overhead += slotBytes // recovery shares internal flash
	}
	if overhead+2*slotBytes > opts.MCU.Internal.Size {
		if external == nil || slotBytes > opts.MCU.External.Size {
			return nil, fmt.Errorf("%w: need 2×%d bytes", ErrTooSmallFlash, slotBytes)
		}
		if overhead+slotBytes > opts.MCU.Internal.Size {
			return nil, fmt.Errorf("%w: slot A (%d bytes) does not fit", ErrTooSmallFlash, slotBytes)
		}
		bOnExternal = true
	}

	base := opts.MCU.ReservedBootloader
	regionA, err := flash.NewRegion(internal, base, slotBytes)
	if err != nil {
		return nil, err
	}
	var regionB flash.Region
	var afterB int
	if bOnExternal {
		regionB, err = flash.NewRegion(external, 0, slotBytes)
		afterB = base + slotBytes
	} else {
		regionB, err = flash.NewRegion(internal, base+slotBytes, slotBytes)
		afterB = base + 2*slotBytes
	}
	if err != nil {
		return nil, err
	}
	scratch, err := flash.NewRegion(internal, afterB, sector)
	if err != nil {
		return nil, err
	}
	journal, err := flash.NewRegion(internal, afterB+sector, sector)
	if err != nil {
		return nil, err
	}
	rjournal, err := flash.NewRegion(internal, afterB+2*sector, 2*sector)
	if err != nil {
		return nil, err
	}
	recJournal, err := slot.NewReceptionJournal(rjournal)
	if err != nil {
		return nil, err
	}
	secRegion, err := flash.NewRegion(internal, afterB+4*sector, 2*sector)
	if err != nil {
		return nil, err
	}
	secVer, err := slot.NewSecurityCounter(secRegion)
	if err != nil {
		return nil, err
	}
	var recovery *slot.Slot
	if opts.WithRecovery {
		var recRegion flash.Region
		if external != nil {
			// On external flash, after slot B if that is external too.
			recOffset := 0
			if bOnExternal {
				recOffset = slotBytes
			}
			recRegion, err = flash.NewRegion(external, recOffset, slotBytes)
		} else {
			recRegion, err = flash.NewRegion(internal, afterB+6*sector, slotBytes)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: recovery slot", ErrTooSmallFlash)
		}
		recovery, err = slot.New("recovery", recRegion, slot.NonBootable, slot.AnyLink)
		if err != nil {
			return nil, err
		}
	}

	kindB := slot.Bootable
	if opts.Mode == bootloader.ModeStatic || bOnExternal {
		kindB = slot.NonBootable
	}
	slotA, err := slot.New("A", regionA, slot.Bootable, slot.AnyLink)
	if err != nil {
		return nil, err
	}
	slotB, err := slot.New("B", regionB, kindB, slot.AnyLink)
	if err != nil {
		return nil, err
	}

	phases := simclock.NewTimer(clock)
	log := events.NewLog(clock, 0)
	ver := verifier.New(opts.Suite, opts.Keys, clock)
	ver.Source = opts.KeySource
	bl, err := bootloader.New(bootloader.Config{
		Mode:      opts.Mode,
		Boot:      slotA,
		Alt:       slotB,
		Recovery:  recovery,
		Scratch:          scratch,
		Journal:          journal,
		ReceptionJournal: rjournal,
		Verifier:         ver,
		DeviceID:   opts.DeviceID,
		AppID:      opts.AppID,
		Clock:      clock,
		JumpTime:   opts.JumpTime,
		Phases:     phases,
		Events:     log,
		Telemetry:  opts.Telemetry,
		SecVer:     secVer,
		TimeSource: opts.TimeSource,
	})
	if err != nil {
		return nil, err
	}

	d := &Device{
		Name:       opts.Name,
		Events:     log,
		Clock:      clock,
		Meter:      meter,
		Phases:     phases,
		Internal:   internal,
		External:   external,
		SlotA:      slotA,
		SlotB:      slotB,
		Recovery:   recovery,
		Bootloader: bl,
		Verifier:   ver,
		opts:       opts,
		scratch:    scratch,
		journal:    journal,
		rjournal:   rjournal,
		recJournal: recJournal,
		secRegion:  secRegion,
		secVer:     secVer,
	}
	if err := d.rebuildAgent(); err != nil {
		return nil, err
	}
	return d, nil
}

// rebuildAgent recreates the update agent after a (re)boot: it targets
// the slot that is not running.
func (d *Device) rebuildAgent() error {
	target := d.SlotB
	if d.running == d.SlotB {
		target = d.SlotA
	}
	a, err := agent.New(agent.Config{
		DeviceID:            d.opts.DeviceID,
		AppID:               d.opts.AppID,
		Targets:             []*slot.Slot{target},
		Running:             d.running,
		Verifier:            d.Verifier,
		NonceSource:         security.NewDeterministicReader(d.opts.NonceSeed + fmt.Sprint(d.reboots)),
		SupportDifferential: d.opts.SupportDifferential,
		Clock:               d.Clock,
		Phases:              d.Phases,
		PayloadKey:          d.opts.PayloadKey,
		Journal:             d.recJournal,
		CheckpointEvery:     d.opts.CheckpointEvery,
		Events:              d.Events,
		Telemetry:           d.opts.Telemetry,
		SecVer:              d.secVer,
		TimeSource:          d.opts.TimeSource,
	})
	if err != nil {
		return err
	}
	d.Agent = a
	return nil
}

// Running returns the slot currently executing, or nil before first
// boot.
func (d *Device) Running() *slot.Slot { return d.running }

// ReceptionPending reports whether the reception journal holds a valid
// download checkpoint (i.e. an interrupted transfer awaits resume).
func (d *Device) ReceptionPending() bool { return slot.ReceptionPending(d.rjournal) }

// SecurityVersion reports the persisted anti-rollback counter: the
// highest manifest security version the device has accepted.
func (d *Device) SecurityVersion() uint32 { return d.secVer.Value() }

// RunningVersion reports the executing firmware version, or 0.
func (d *Device) RunningVersion() uint16 {
	if d.running == nil {
		return 0
	}
	return d.running.Version()
}

// Reboots reports how many times the device has rebooted.
func (d *Device) Reboots() int { return d.reboots }

// FactoryProvision writes a prepared update image directly into slot A
// and boots it — modelling factory programming over JTAG rather than an
// over-the-air update.
func (d *Device) FactoryProvision(u *updateserver.Update) error {
	if u.Differential {
		return errors.New("device: factory image must be a full image")
	}
	payload := u.Payload
	if u.Encrypted {
		if len(d.opts.PayloadKey) == 0 {
			return errors.New("device: encrypted factory image but no payload key")
		}
		var err error
		payload, err = security.DecryptPayload(d.opts.PayloadKey, payload)
		if err != nil {
			return err
		}
	}
	w, err := d.SlotA.BeginReceive()
	if err != nil {
		return err
	}
	m := u.Manifest
	if err := d.SlotA.WriteManifest(&m); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := d.SlotA.MarkComplete(); err != nil {
		return err
	}
	if d.Recovery != nil {
		if err := d.SlotA.CopyTo(d.Recovery); err != nil {
			return fmt.Errorf("device: write recovery image: %w", err)
		}
	}
	_, err = d.Reboot()
	return err
}

// Reboot power-cycles the device: charges the reboot cost, runs the
// bootloader (verification + loading phases), and restarts the agent in
// the newly running firmware. When the reboot applies a staged update,
// its loading time is contributed to the update's phase span and the
// span is ended with the boot outcome.
func (d *Device) Reboot() (bootloader.Result, error) {
	// Snapshot the staged update's identity before the bootloader (and
	// the agent rebuild) discard it; factory provisions and plain reboots
	// carry no staged manifest and produce no span.
	var spanKey telemetry.SpanKey
	spanUpdate := d.opts.Telemetry != nil && d.Agent != nil && d.Agent.Manifest() != nil
	if spanUpdate {
		tok := d.Agent.Token()
		spanKey = telemetry.SpanKey{
			DeviceID: d.opts.DeviceID,
			AppID:    d.opts.AppID,
			From:     tok.CurrentVersion,
			To:       d.Agent.Manifest().Version,
		}
	}
	loadingBefore := d.Phases.Phase(PhaseLoading)

	d.reboots++
	d.Meter.ChargeReboot()
	d.Events.Emit(events.KindRebooted, d.RunningVersion(), "")
	if d.opts.RebootTime > 0 {
		if err := d.Phases.Measure(PhaseLoading, func() error {
			d.Clock.Advance(d.opts.RebootTime)
			return nil
		}); err != nil {
			return bootloader.Result{}, err
		}
	}
	res, err := d.Bootloader.Boot()
	if spanUpdate {
		spans := d.opts.Telemetry.Spans()
		spans.Record(spanKey, telemetry.PhaseLoading, d.Phases.Phase(PhaseLoading)-loadingBefore)
		switch {
		case err != nil:
			spans.End(spanKey, "boot-failed")
		case res.RolledBack:
			spans.End(spanKey, "rolled-back")
		default:
			spans.End(spanKey, "installed")
		}
	}
	if err != nil {
		d.Events.Emit(events.KindBootFailed, 0, err.Error())
		return res, err
	}
	d.Events.Emit(events.KindBootVerified, res.Version, "slot "+res.Booted.Name)
	if res.Installed {
		d.Events.Emit(events.KindInstalled, res.Version, "")
	}
	if res.RolledBack {
		d.Events.Emit(events.KindRolledBack, res.Version, "")
	}
	d.running = res.Booted
	if err := d.rebuildAgent(); err != nil {
		return res, err
	}
	return res, nil
}

// ReadyToReboot reports whether the agent holds a verified update.
func (d *Device) ReadyToReboot() bool {
	return d.Agent.State() == agent.StateReadyToReboot
}

// ApplyStagedUpdate reboots into a staged, verified update and returns
// the boot result. It fails if no update is staged — UpKit never
// reboots on an unverified image.
func (d *Device) ApplyStagedUpdate() (bootloader.Result, error) {
	if !d.ReadyToReboot() {
		return bootloader.Result{}, ErrNoUpdateStaged
	}
	return d.Reboot()
}

// Manifest returns the manifest of the running image, or nil.
func (d *Device) Manifest() *manifest.Manifest {
	if d.running == nil {
		return nil
	}
	m, err := d.running.Manifest()
	if err != nil {
		return nil
	}
	return m
}

// EnergyReport charges the accumulated flash activity to the energy
// meter and returns the total microjoules spent so far. Radio, CPU,
// and reboot costs accrue continuously; flash is integrated here from
// the chips' operation counters.
func (d *Device) EnergyReport() float64 {
	stats := d.Internal.Stats()
	if d.External != nil {
		ext := d.External.Stats()
		stats.SectorErases += ext.SectorErases
		stats.BytesWritten += ext.BytesWritten
	}
	newErases := stats.SectorErases - d.chargedErases
	newKB := float64(stats.BytesWritten-d.chargedWrites) / 1024
	if newErases > 0 || newKB > 0 {
		d.Meter.ChargeFlash(newErases, newKB)
		d.chargedErases = stats.SectorErases
		d.chargedWrites = stats.BytesWritten
	}
	return d.Meter.TotalUJ()
}
