package device_test

import (
	"errors"
	"testing"

	"upkit/internal/bootloader"
	"upkit/internal/device"
	"upkit/internal/energy"
	"upkit/internal/platform"
	"upkit/internal/security"
	"upkit/internal/testbed"
	"upkit/internal/updateserver"
	"upkit/internal/verifier"
)

func baseOptions() device.Options {
	suite := security.NewTinyCrypt()
	vendor := security.MustGenerateKey("dev-vendor")
	server := security.MustGenerateKey("dev-server")
	return device.Options{
		Name:      "test-device",
		MCU:       platform.NRF52840(),
		Mode:      bootloader.ModeStatic,
		SlotBytes: 128 * 1024,
		Suite:     suite,
		Keys:      verifier.Keys{Vendor: vendor.Public(), Server: server.Public()},
		DeviceID:  0xD1,
		AppID:     0xA1,
		NonceSeed: "device-test",
	}
}

func TestNewLaysOutSlots(t *testing.T) {
	d, err := device.New(baseOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d.SlotA.Region().Offset != platform.NRF52840().ReservedBootloader {
		t.Fatalf("slot A offset = %#x", d.SlotA.Region().Offset)
	}
	if d.SlotA.Region().Length != 128*1024 || d.SlotB.Region().Length != 128*1024 {
		t.Fatal("slot sizes wrong")
	}
	if d.External != nil {
		t.Fatal("nRF52840 has no external flash")
	}
	if d.RunningVersion() != 0 || d.Running() != nil {
		t.Fatal("fresh device must not be running anything")
	}
}

func TestNewDefaultsToSymmetricLayout(t *testing.T) {
	opts := baseOptions()
	opts.SlotBytes = 0
	d, err := device.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.SlotA.Region().Length != d.SlotB.Region().Length {
		t.Fatal("default layout must be symmetric")
	}
	if d.SlotA.Region().Length < 400*1024 {
		t.Fatalf("default slots = %d bytes; should use most of the 1 MiB chip", d.SlotA.Region().Length)
	}
}

func TestNewRejectsOversizedSlots(t *testing.T) {
	opts := baseOptions()
	opts.SlotBytes = 600 * 1024 // 2×600 KiB exceeds 1 MiB
	if _, err := device.New(opts); !errors.Is(err, device.ErrTooSmallFlash) {
		t.Fatalf("error = %v, want ErrTooSmallFlash", err)
	}
}

func TestNewRequiresSuite(t *testing.T) {
	opts := baseOptions()
	opts.Suite = nil
	if _, err := device.New(opts); err == nil {
		t.Fatal("New without suite must fail")
	}
}

func TestABModeHasTwoBootableSlots(t *testing.T) {
	opts := baseOptions()
	opts.Mode = bootloader.ModeAB
	d, err := device.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.SlotB.Kind.String() != "B" {
		t.Fatalf("slot B kind = %v, want bootable in A/B mode", d.SlotB.Kind)
	}
}

func TestApplyStagedUpdateWithoutStage(t *testing.T) {
	d, err := device.New(baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyStagedUpdate(); !errors.Is(err, device.ErrNoUpdateStaged) {
		t.Fatalf("error = %v, want ErrNoUpdateStaged", err)
	}
}

func TestRebootChargesEnergyAndTime(t *testing.T) {
	// Use the testbed for a provisioned device.
	b, err := testbed.New(testbed.Options{}, testbed.MakeFirmware("v1", 32*1024))
	if err != nil {
		t.Fatal(err)
	}
	bootBefore := b.Device.Meter.Component(energy.Boot)
	clockBefore := b.Device.Clock.Now()
	if _, err := b.Device.Reboot(); err != nil {
		t.Fatal(err)
	}
	if b.Device.Meter.Component(energy.Boot) <= bootBefore {
		t.Fatal("reboot did not charge boot energy")
	}
	if b.Device.Clock.Now() <= clockBefore {
		t.Fatal("reboot did not consume virtual time")
	}
}

func TestFactoryProvisionRejectsDifferential(t *testing.T) {
	d, err := device.New(baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	u := &updateserver.Update{Differential: true}
	if err := d.FactoryProvision(u); err == nil {
		t.Fatal("differential factory image must be rejected")
	}
}

func TestManifestOfRunningImage(t *testing.T) {
	b, err := testbed.New(testbed.Options{}, testbed.MakeFirmware("v1", 32*1024))
	if err != nil {
		t.Fatal(err)
	}
	m := b.Device.Manifest()
	if m == nil || m.Version != 1 {
		t.Fatalf("manifest = %+v, want v1", m)
	}
}

func TestEnergyReportIntegratesFlash(t *testing.T) {
	b, err := testbed.New(testbed.Options{Seed: "energy-report"}, testbed.MakeFirmware("er-v1", 32*1024))
	if err != nil {
		t.Fatal(err)
	}
	total1 := b.Device.EnergyReport()
	if total1 <= 0 {
		t.Fatal("no energy recorded after factory provisioning")
	}
	if b.Device.Meter.Component(energy.Flash) <= 0 {
		t.Fatal("flash energy not integrated")
	}
	// Calling again without activity must not double-charge.
	total2 := b.Device.EnergyReport()
	if total2 != total1 {
		t.Fatalf("idle EnergyReport changed total: %f -> %f", total1, total2)
	}
	// More flash activity raises the total.
	if err := b.PublishVersion(2, testbed.MakeFirmware("er-v2", 32*1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.PullUpdate(); err != nil {
		t.Fatal(err)
	}
	if total3 := b.Device.EnergyReport(); total3 <= total2 {
		t.Fatalf("EnergyReport did not grow after an update: %f -> %f", total2, total3)
	}
}
