package device

import (
	"fmt"
	"os"
	"path/filepath"
)

// Flash-state persistence: a simulated device can be stopped and
// resumed across process runs (cmd/upkit-device's -state flag). Only
// the flash content persists — exactly what survives a power cycle on
// real hardware; RAM state (agent FSM, nonces) does not, and the next
// start goes through the bootloader like any reboot.

// stateFiles returns the chip image paths under dir.
func stateFiles(dir string) (internal, external string) {
	return filepath.Join(dir, "internal-flash.bin"), filepath.Join(dir, "external-flash.bin")
}

// SaveState writes the device's flash content under dir.
func (d *Device) SaveState(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("device: save state: %w", err)
	}
	internalPath, externalPath := stateFiles(dir)
	if err := d.Internal.SaveToFile(internalPath); err != nil {
		return err
	}
	if d.External != nil {
		if err := d.External.SaveToFile(externalPath); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState loads previously saved flash content from dir, then
// boots the device (the power-on path). Missing state files mean a
// factory-fresh device and are not an error; restored is false then.
func (d *Device) RestoreState(dir string) (restored bool, err error) {
	internalPath, externalPath := stateFiles(dir)
	if _, err := os.Stat(internalPath); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("device: restore state: %w", err)
	}
	if err := d.Internal.RestoreFromFile(internalPath); err != nil {
		return false, err
	}
	if d.External != nil {
		if _, err := os.Stat(externalPath); err == nil {
			if err := d.External.RestoreFromFile(externalPath); err != nil {
				return false, err
			}
		}
	}
	if _, err := d.Reboot(); err != nil {
		return false, fmt.Errorf("device: boot restored state: %w", err)
	}
	return true, nil
}
