package device_test

import (
	"testing"

	"upkit/internal/device"
	"upkit/internal/platform"
	"upkit/internal/testbed"
)

// Persistence tests: a device's flash state survives a "process
// restart" (save, rebuild, restore) and the restored device both runs
// the same firmware and can take further updates.

func TestSaveAndRestoreState(t *testing.T) {
	dir := t.TempDir()
	v1 := testbed.MakeFirmware("persist-v1", 32*1024)
	bed, err := testbed.New(testbed.Options{Seed: "persist"}, v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bed.PublishVersion(2, testbed.MakeFirmware("persist-v2", 32*1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := bed.PullUpdate(); err != nil {
		t.Fatal(err)
	}
	if err := bed.Device.SaveState(dir); err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	// "Restart": a brand-new bed with the same identity and keys; its
	// fresh device restores the saved flash.
	bed2, err := testbed.New(testbed.Options{Seed: "persist"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := bed2.Device.RestoreState(dir)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if !restored {
		t.Fatal("state not restored")
	}
	if got := bed2.Device.RunningVersion(); got != 2 {
		t.Fatalf("restored device runs v%d, want v2", got)
	}

	// And it keeps updating: publish v3 on the new bed's server (its
	// release store is fresh — only the device state persisted).
	v3 := testbed.MakeFirmware("persist-v3", 32*1024)
	if err := bed2.PublishVersion(3, v3); err != nil {
		t.Fatal(err)
	}
	res, err := bed2.PullUpdate()
	if err != nil {
		t.Fatalf("update after restore: %v", err)
	}
	if res.Version != 3 {
		t.Fatalf("booted v%d, want v3", res.Version)
	}
}

func TestRestoreStateMissingDirIsFresh(t *testing.T) {
	d, err := device.New(baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := d.RestoreState(t.TempDir())
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if restored {
		t.Fatal("empty dir reported as restored")
	}
}

func TestRestoreStateAcrossExternalFlash(t *testing.T) {
	dir := t.TempDir()
	mcu := platform.CC2650()
	opts := baseOptions()
	opts.MCU = mcu
	opts.SlotBytes = 64 * 1024
	d, err := device.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Write a marker into external flash and save.
	if err := d.External.Program(0, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	d2, err := device.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// No bootable image exists, so the post-restore boot fails — but the
	// external content must land first; check via direct restore.
	if err := d2.External.RestoreFromFile(dir + "/external-flash.bin"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := d2.External.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5A {
		t.Fatalf("external marker = %#x, want 0x5A", got[0])
	}
}

func TestRecoveryWithAutoSlotSizing(t *testing.T) {
	// Regression: WithRecovery plus SlotBytes == 0 must divide the chip
	// three ways instead of overflowing it with the recovery region.
	opts := baseOptions()
	opts.SlotBytes = 0
	opts.WithRecovery = true
	d, err := device.New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d.Recovery == nil {
		t.Fatal("no recovery slot")
	}
	if d.SlotA.Region().Length != d.Recovery.Region().Length {
		t.Fatalf("slot/recovery sizes differ: %d vs %d",
			d.SlotA.Region().Length, d.Recovery.Region().Length)
	}
	end := d.Recovery.Region().Offset + d.Recovery.Region().Length
	if end > platform.NRF52840().Internal.Size {
		t.Fatalf("recovery region ends at %#x, past the chip", end)
	}
}
