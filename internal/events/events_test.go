package events

import (
	"strings"
	"sync"
	"testing"
	"time"

	"upkit/internal/simclock"
)

func TestEmitAndEvents(t *testing.T) {
	clock := simclock.New()
	l := NewLog(clock, 8)
	l.Emit(KindTokenIssued, 1, "nonce 0x1")
	clock.Advance(2 * time.Second)
	l.Emit(KindManifestAccepted, 2, "")

	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Kind != KindTokenIssued || events[0].At != 0 {
		t.Fatalf("first = %+v", events[0])
	}
	if events[1].Kind != KindManifestAccepted || events[1].At != 2*time.Second {
		t.Fatalf("second = %+v", events[1])
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(nil, 3)
	for v := uint16(1); v <= 5; v++ {
		l.Emit(KindRebooted, v, "")
	}
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("retained = %d, want 3", len(events))
	}
	// Oldest first: versions 3, 4, 5.
	for i, want := range []uint16{3, 4, 5} {
		if events[i].Version != want {
			t.Fatalf("events[%d].Version = %d, want %d", i, events[i].Version, want)
		}
	}
}

func TestLastAndCount(t *testing.T) {
	l := NewLog(nil, 8)
	l.Emit(KindManifestRejected, 2, "nonce mismatch")
	l.Emit(KindManifestAccepted, 3, "")
	l.Emit(KindManifestRejected, 4, "downgrade")

	last, ok := l.Last(KindManifestRejected)
	if !ok || last.Version != 4 || last.Detail != "downgrade" {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	if _, ok := l.Last(KindRolledBack); ok {
		t.Fatal("Last found an event that was never emitted")
	}
	if got := l.Count(KindManifestRejected); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit(KindRebooted, 1, "") // must not panic
	if l.Events() != nil {
		t.Fatal("nil log should return nil events")
	}
}

func TestConcurrentEmit(t *testing.T) {
	l := NewLog(nil, 128)
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 100 {
				l.Emit(KindRebooted, 1, "")
			}
		}()
	}
	wg.Wait()
	if got := l.Count(KindRebooted); got != 128 {
		t.Fatalf("retained = %d, want full ring (128)", got)
	}
}

func TestRendering(t *testing.T) {
	clock := simclock.New()
	clock.Advance(12340 * time.Millisecond)
	l := NewLog(clock, 4)
	l.Emit(KindManifestRejected, 2, "nonce mismatch")
	out := l.String()
	for _, want := range []string{"12.34s", "manifest-rejected", "v2", "nonce mismatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindTokenIssued, KindManifestAccepted, KindManifestRejected,
		KindFirmwareVerified, KindFirmwareRejected, KindUpdateStaged,
		KindRebooted, KindBootVerified, KindInstalled, KindRolledBack,
		KindSwapResumed, KindBootFailed, Kind(99),
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Errorf("Kind(%d).String() empty", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
