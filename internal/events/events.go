// Package events provides a lightweight, typed event log for the
// update process: the observability layer a fleet operator needs to
// answer "what exactly happened on that device?". The agent, the
// bootloader, and the device emit events; the log keeps a bounded ring
// of them with virtual timestamps.
//
// The log is deliberately tiny — constrained devices export such logs
// over the management channel — and allocation-light: events are flat
// value structs.
package events

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// KindTokenIssued: the agent issued a device token.
	KindTokenIssued Kind = iota + 1
	// KindManifestAccepted: agent-side verification passed.
	KindManifestAccepted
	// KindManifestRejected: agent-side verification failed (early
	// rejection — no firmware transfer happened).
	KindManifestRejected
	// KindFirmwareVerified: the received image passed the digest check.
	KindFirmwareVerified
	// KindFirmwareRejected: the received image failed verification.
	KindFirmwareRejected
	// KindUpdateStaged: a verified update awaits reboot.
	KindUpdateStaged
	// KindRebooted: the device power-cycled.
	KindRebooted
	// KindBootVerified: boot-side verification passed.
	KindBootVerified
	// KindInstalled: the bootloader moved a new image into place.
	KindInstalled
	// KindRolledBack: the bootloader fell back to a previous image.
	KindRolledBack
	// KindSwapResumed: an interrupted install swap was resumed.
	KindSwapResumed
	// KindBootFailed: no valid image could be booted.
	KindBootFailed
	// KindReceptionSuspended: an in-flight download was parked in the
	// reception journal for a later resume.
	KindReceptionSuspended
	// KindReceptionResumed: a journaled download was picked up again.
	KindReceptionResumed
	// KindSecVerAdvanced: the persisted anti-rollback counter moved
	// forward (before the staged image was marked complete).
	KindSecVerAdvanced
	// KindStagedRejected: the bootloader refused a staged (Complete but
	// never booted) image at its boot-time re-check — e.g. its signing
	// key was revoked, or its security version regressed — and kept the
	// previous image running.
	KindStagedRejected
	// KindKeysUpdated: the device applied a key bundle (new key records
	// and/or a revocation list).
	KindKeysUpdated
	// KindSourceFailover: a block source (peer, caching proxy) timed
	// out, refused, or served bytes the verifier rejected; the client
	// moved on to the next source in its list.
	KindSourceFailover
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTokenIssued:
		return "token-issued"
	case KindManifestAccepted:
		return "manifest-accepted"
	case KindManifestRejected:
		return "manifest-rejected"
	case KindFirmwareVerified:
		return "firmware-verified"
	case KindFirmwareRejected:
		return "firmware-rejected"
	case KindUpdateStaged:
		return "update-staged"
	case KindRebooted:
		return "rebooted"
	case KindBootVerified:
		return "boot-verified"
	case KindInstalled:
		return "installed"
	case KindRolledBack:
		return "rolled-back"
	case KindSwapResumed:
		return "swap-resumed"
	case KindBootFailed:
		return "boot-failed"
	case KindReceptionSuspended:
		return "reception-suspended"
	case KindReceptionResumed:
		return "reception-resumed"
	case KindSecVerAdvanced:
		return "secver-advanced"
	case KindStagedRejected:
		return "staged-rejected"
	case KindKeysUpdated:
		return "keys-updated"
	case KindSourceFailover:
		return "source-failover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	// At is the virtual instant the event was recorded.
	At time.Duration
	// Kind classifies it.
	Kind Kind
	// Version is the firmware version involved, when applicable.
	Version uint16
	// Detail carries a short free-form annotation (e.g. the rejection
	// reason).
	Detail string
}

// String renders "[12.3s] manifest-rejected v2: nonce mismatch".
func (e Event) String() string {
	out := fmt.Sprintf("[%7.2fs] %s", e.At.Seconds(), e.Kind)
	if e.Version != 0 {
		out += fmt.Sprintf(" v%d", e.Version)
	}
	if e.Detail != "" {
		out += ": " + e.Detail
	}
	return out
}

// Clock abstracts the timestamp source (satisfied by simclock.Clock).
type Clock interface {
	Now() time.Duration
}

// DefaultCapacity is the ring size when none is given.
const DefaultCapacity = 64

// Log is a bounded ring of events. Safe for concurrent use. A nil *Log
// is valid and drops everything, so emitters never need nil checks.
type Log struct {
	mu    sync.Mutex
	clock Clock
	ring  []Event
	next  int
	count int
}

// NewLog creates a log of the given capacity (0 selects
// DefaultCapacity) stamped from clock (nil means zero timestamps).
func NewLog(clock Clock, capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{clock: clock, ring: make([]Event, capacity)}
}

// Emit records an event.
func (l *Log) Emit(kind Kind, version uint16, detail string) {
	if l == nil {
		return
	}
	var at time.Duration
	if l.clock != nil {
		at = l.clock.Now()
	}
	l.mu.Lock()
	l.ring[l.next] = Event{At: at, Kind: kind, Version: version, Detail: detail}
	l.next = (l.next + 1) % len(l.ring)
	if l.count < len(l.ring) {
		l.count++
	}
	l.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.count)
	start := (l.next - l.count + len(l.ring)) % len(l.ring)
	for i := range l.count {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Last returns the most recent event of the given kind, or ok=false.
func (l *Log) Last(kind Kind) (Event, bool) {
	events := l.Events()
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == kind {
			return events[i], true
		}
	}
	return Event{}, false
}

// Count reports how many events of kind are currently retained.
func (l *Log) Count(kind Kind) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	events := l.Events()
	lines := make([]string, len(events))
	for i, e := range events {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}
