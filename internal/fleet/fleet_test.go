package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"upkit/internal/telemetry"
)

// fakeDevice is a scriptable Updater.
type fakeDevice struct {
	id       uint32
	version  atomic.Uint32
	failures atomic.Int32 // TryUpdate fails while > 0
	attempts atomic.Int32
	target   uint16
}

func newFake(id uint32, version uint16, failures int) *fakeDevice {
	d := &fakeDevice{id: id, target: 0}
	d.version.Store(uint32(version))
	d.failures.Store(int32(failures))
	return d
}

func (d *fakeDevice) ID() uint32      { return d.id }
func (d *fakeDevice) Version() uint16 { return uint16(d.version.Load()) }
func (d *fakeDevice) TryUpdate() (uint16, error) {
	d.attempts.Add(1)
	if d.failures.Add(-1) >= 0 {
		return d.Version(), errors.New("radio glitch")
	}
	d.version.Store(uint32(d.target))
	return d.target, nil
}

func makeFleet(n int, version uint16, target uint16) []*fakeDevice {
	out := make([]*fakeDevice, n)
	for i := range out {
		out[i] = newFake(uint32(0x100+i), version, 0)
		out[i].target = target
	}
	return out
}

func updaters(devs []*fakeDevice) []Updater {
	out := make([]Updater, len(devs))
	for i, d := range devs {
		out[i] = d
	}
	return out
}

// checkCounts asserts the report's outcome tallies and the bucket
// invariant: every device lands in exactly one of the four states, so
// the counts always sum to the fleet size.
func checkCounts(t *testing.T, report *Report, updated, failed, skipped, pending int) {
	t.Helper()
	u, f, s, p := report.Counts()
	if u != updated || f != failed || s != skipped || p != pending {
		t.Fatalf("counts = %d/%d/%d/%d, want %d/%d/%d/%d\n%s",
			u, f, s, p, updated, failed, skipped, pending, report.Render())
	}
	if u+f+s+p != report.Devices {
		t.Fatalf("counts %d+%d+%d+%d != %d devices", u, f, s, p, report.Devices)
	}
}

func TestCampaignAllSucceed(t *testing.T) {
	devs := makeFleet(10, 1, 2)
	c, err := New(2, Policy{CanaryFraction: 0.2, MaxRetries: 1}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkCounts(t, report, 10, 0, 0, 0)
	for _, d := range devs {
		if d.Version() != 2 {
			t.Fatalf("device %#x on v%d", d.id, d.Version())
		}
	}
}

func TestCanaryGateAbortsCampaign(t *testing.T) {
	devs := makeFleet(10, 1, 2)
	// The first two devices (the canaries) never succeed.
	devs[0].failures.Store(1000)
	devs[1].failures.Store(1000)
	c, err := New(2, Policy{CanaryFraction: 0.2, MaxCanaryFailureRate: 0.4, MaxRetries: 1}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if !errors.Is(err, ErrCampaignAborted) {
		t.Fatalf("error = %v, want ErrCampaignAborted", err)
	}
	if !report.Aborted {
		t.Fatal("report not marked aborted")
	}
	checkCounts(t, report, 0, 2, 8, 0)
	// The general population must never have been touched.
	for _, d := range devs[2:] {
		if d.attempts.Load() != 0 {
			t.Fatalf("non-canary device %#x was attempted during an aborted campaign", d.id)
		}
	}
}

func TestCanaryGateTolerance(t *testing.T) {
	devs := makeFleet(10, 1, 2)
	devs[0].failures.Store(1000) // 1 of 5 canaries fails = 20%
	c, err := New(2, Policy{CanaryFraction: 0.5, MaxCanaryFailureRate: 0.25, MaxRetries: 0}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v (20%% failure is under the 25%% gate)", err)
	}
	checkCounts(t, report, 9, 1, 0, 0)
}

func TestRetriesRecoverTransientFailures(t *testing.T) {
	devs := makeFleet(4, 1, 2)
	devs[2].failures.Store(2) // fails twice, then succeeds
	c, err := New(2, Policy{MaxRetries: 2}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 4, 0, 0, 0)
	for _, res := range report.Results {
		if res.DeviceID == devs[2].id && res.Attempts != 3 {
			t.Fatalf("flaky device attempts = %d, want 3", res.Attempts)
		}
	}
}

func TestAlreadyCurrentDevicesSkipAttempts(t *testing.T) {
	devs := makeFleet(3, 2, 2) // already on the target
	c, err := New(2, Policy{}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 3, 0, 0, 0)
	for _, d := range devs {
		if d.attempts.Load() != 0 {
			t.Fatal("already-current device was attempted")
		}
	}
}

func TestDeviceEndingOnWrongVersionFails(t *testing.T) {
	d := newFake(0x1, 1, 0)
	d.target = 2 // updates, but the campaign wants v3
	c, err := New(3, Policy{MaxRetries: 0}, []Updater{d})
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Results[0].Status != StatusFailed {
		t.Fatalf("status = %v, want failed", report.Results[0].Status)
	}
	if report.Results[0].Err == nil {
		t.Fatal("failed result missing error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, Policy{}, nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(0, Policy{}, []Updater{newFake(1, 1, 0)}); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := New(1, Policy{CanaryFraction: 1.5}, []Updater{newFake(1, 1, 0)}); err == nil {
		t.Error("canary fraction 1.5 accepted")
	}
}

func TestParallelWaves(t *testing.T) {
	devs := makeFleet(64, 1, 2)
	c, err := New(2, Policy{Parallelism: 16}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 64, 0, 0, 0)
}

func TestReportRender(t *testing.T) {
	devs := makeFleet(2, 1, 2)
	c, err := New(2, Policy{}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := report.Render()
	for _, want := range []string{"campaign to v2", "2 updated", "0 pending", "updated"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ABORTED") {
		t.Error("non-aborted campaign rendered as aborted")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusPending, StatusUpdated, StatusFailed, StatusSkipped, Status(9)} {
		if s.String() == "" {
			t.Errorf("Status(%d).String() empty", int(s))
		}
	}
	_ = fmt.Sprint(StatusUpdated)
}

// cancelAfterUpdate cancels the campaign context once its own update
// finishes, simulating an operator pulling the plug mid-rollout.
type cancelAfterUpdate struct {
	*fakeDevice
	cancel context.CancelFunc
}

func (d *cancelAfterUpdate) TryUpdate() (uint16, error) {
	v, err := d.fakeDevice.TryUpdate()
	d.cancel()
	return v, err
}

func TestRunContextPreCanceled(t *testing.T) {
	devs := makeFleet(6, 1, 2)
	c, err := New(2, Policy{CanaryFraction: 0.34, Parallelism: 2}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := c.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if !report.Aborted {
		t.Fatal("report not marked aborted")
	}
	checkCounts(t, report, 0, 0, 6, 0)
	for _, d := range devs {
		if d.attempts.Load() != 0 {
			t.Fatalf("device %#x attempted under a canceled context", d.id)
		}
	}
}

func TestRunContextCanceledBetweenWaves(t *testing.T) {
	devs := makeFleet(5, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The single canary cancels the context on success; the general
	// population must then be skipped, not attempted.
	ups := updaters(devs)
	ups[0] = &cancelAfterUpdate{fakeDevice: devs[0], cancel: cancel}
	reg := telemetry.NewRegistry()
	c, err := New(2, Policy{CanaryFraction: 0.2, MaxRetries: 2}, ups)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTelemetry(reg)
	report, err := c.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	checkCounts(t, report, 1, 0, 4, 0)
	for _, d := range devs[1:] {
		if d.attempts.Load() != 0 {
			t.Fatalf("device %#x attempted after cancellation", d.id)
		}
	}
	if got := reg.Counter("upkit_campaign_devices_total", "", telemetry.L("status", "skipped")).Value(); got != 4 {
		t.Errorf("upkit_campaign_devices_total{status=skipped} = %d, want 4", got)
	}
	if got := reg.Counter("upkit_campaign_devices_total", "", telemetry.L("status", "updated")).Value(); got != 1 {
		t.Errorf("upkit_campaign_devices_total{status=updated} = %d, want 1", got)
	}
}

// TestRetryJitterInjectableRand pins the backoff schedule with an
// injected randomness source: the jitter math becomes exact, and the
// campaign consults Policy.Rand (not the global math/rand) once per
// retry wait.
func TestRetryJitterInjectableRand(t *testing.T) {
	p := Policy{RetryBackoff: 100 * time.Millisecond, RetryJitter: 0.5}
	half := func() float64 { return 0.5 }
	if got := retryDelay(p, 1, half); got != 125*time.Millisecond {
		t.Errorf("retry 1 delay = %v, want 125ms", got)
	}
	if got := retryDelay(p, 2, half); got != 250*time.Millisecond {
		t.Errorf("retry 2 delay = %v, want 250ms", got)
	}
	zero := func() float64 { return 0 }
	if got := retryDelay(p, 1, zero); got != 100*time.Millisecond {
		t.Errorf("retry 1 delay with zero jitter draw = %v, want 100ms", got)
	}

	var calls atomic.Int32
	dev := newFake(0x42, 1, 2) // two failures, then success
	dev.target = 2
	c, err := New(2, Policy{
		MaxRetries:   2,
		RetryBackoff: time.Nanosecond,
		RetryJitter:  1,
		Rand:         func() float64 { calls.Add(1); return 0 },
	}, updaters([]*fakeDevice{dev}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, rep, 1, 0, 0, 0)
	// Three attempts means two retry waits, each drawing exactly once.
	if got := calls.Load(); got != 2 {
		t.Fatalf("Policy.Rand consulted %d times, want 2", got)
	}
}

// TestInjectedRandSerializedAcrossWaveGoroutines drives jittered
// retries across a parallel wave with an injected *rand.Rand closure —
// a source with no internal locking. The campaign must serialize the
// draws; under -race this test fails if wave goroutines reach the
// source concurrently.
func TestInjectedRandSerializedAcrossWaveGoroutines(t *testing.T) {
	devs := makeFleet(16, 1, 2)
	for _, d := range devs {
		d.failures.Store(2) // every device retries twice, drawing jitter
	}
	rng := rand.New(rand.NewSource(7))
	c, err := New(2, Policy{
		Parallelism:  8,
		MaxRetries:   3,
		RetryBackoff: time.Nanosecond,
		RetryJitter:  1,
		Rand:         rng.Float64,
	}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 16, 0, 0, 0)
}
