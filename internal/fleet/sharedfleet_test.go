package fleet_test

import (
	"fmt"
	"testing"

	"upkit/internal/fleet"
	"upkit/internal/platform"
	"upkit/internal/security"
	"upkit/internal/testbed"
	"upkit/internal/updateserver"
	"upkit/internal/vendorserver"
)

// buildSharedFleet wires n simulated devices against ONE update server
// — the deployment shape of a real campaign, where every device's
// request lands on the same Internet-facing endpoint and its patch
// cache. All devices start on v1; v2 (a localized ~1 kB change, so the
// differential path is taken) is already published.
func buildSharedFleet(tb testing.TB, n int) ([]*bedUpdater, *updateserver.Server) {
	tb.Helper()
	suite, err := security.SuiteByName("tinycrypt", nil)
	if err != nil {
		tb.Fatal(err)
	}
	vendor := vendorserver.New(suite, security.MustGenerateKey("fleet-shared-vendor"))
	update := updateserver.New(suite, security.MustGenerateKey("fleet-shared-server"))

	v1 := testbed.MakeFirmware("fleet-shared-v1", 32*1024)
	v2 := testbed.DeriveAppChange(v1, 1000)
	out := make([]*bedUpdater, n)
	for i := range out {
		id := uint32(0xA000 + i)
		bed, err := testbed.New(testbed.Options{
			Approach:     platform.Pull,
			Differential: true,
			DeviceID:     id,
			Seed:         fmt.Sprintf("fleet-shared-%d", i),
			SharedVendor: vendor,
			SharedUpdate: update,
		}, v1)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = &bedUpdater{bed: bed, id: id}
	}
	if err := out[0].bed.PublishVersion(2, v2); err != nil {
		tb.Fatal(err)
	}
	return out, update
}

// TestCampaignSharedServerComputesOneDiff is the many-devices-one-
// release scenario: a whole fleet updating across the same version
// pair must cost the server exactly one diff computation, not one per
// device.
func TestCampaignSharedServerComputesOneDiff(t *testing.T) {
	const n = 12
	devs, update := buildSharedFleet(t, n)
	c, err := fleet.New(2, fleet.Policy{Parallelism: 6}, asUpdaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if updated, failed, skipped, pending := report.Counts(); updated != n || failed != 0 || skipped != 0 || pending != 0 {
		t.Fatalf("counts = %d/%d/%d/%d\n%s", updated, failed, skipped, pending, report.Render())
	}
	for _, d := range devs {
		if d.Version() != 2 {
			t.Fatalf("device %#x on v%d", d.id, d.Version())
		}
	}

	st := update.Stats()
	if st.Computations != 1 {
		t.Fatalf("diff computations = %d for a %d-device campaign on one pair, want 1\nstats: %+v",
			st.Computations, n, st)
	}
	if st.Hits+st.Waits != n-1 {
		t.Fatalf("hits+waits = %d+%d, want %d", st.Hits, st.Waits, n-1)
	}
}

// BenchmarkCampaignSharedServer is the many-devices-one-release
// benchmark: per iteration, a fresh 8-device fleet on one shared
// update server rolls to v2. With the cache the campaign costs one
// diff computation; the reported "diffs/campaign" metric is the
// regression guard (the uncached variant pays one per device).
func BenchmarkCampaignSharedServer(b *testing.B) {
	benchCampaign(b, true)
}

// BenchmarkCampaignSharedServerUncached is the same campaign with the
// patch cache disabled — the pre-cache behaviour, for comparison.
func BenchmarkCampaignSharedServerUncached(b *testing.B) {
	benchCampaign(b, false)
}

func benchCampaign(b *testing.B, cached bool) {
	b.Helper()
	const n = 8
	var diffs, requests uint64
	for b.Loop() {
		b.StopTimer()
		devs, update := buildSharedFleet(b, n)
		if !cached {
			update.SetPatchCacheSize(0)
		}
		c, err := fleet.New(2, fleet.Policy{Parallelism: 4}, asUpdaters(devs))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		report, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if updated, _, _, _ := report.Counts(); updated != n {
			b.Fatalf("updated = %d, want %d", updated, n)
		}
		st := update.Stats()
		diffs += st.Computations
		requests += st.Computations + st.Hits + st.Waits
	}
	b.ReportMetric(float64(diffs)/float64(b.N), "diffs/campaign")
	b.ReportMetric(float64(requests)/float64(b.N), "diff-requests/campaign")
}
