// Package fleet orchestrates update campaigns across many devices —
// the operational layer on top of UpKit's per-device update flow.
//
// The paper's architecture ends at "the update server propagates the
// image to the IoT device(s)"; a real deployment rolls a release out in
// staged waves: a canary fraction first, failure-rate gates between
// stages, a mid-wave circuit breaker, then the general population, with
// bounded retries per device. This package implements exactly that,
// device-agnostically: anything satisfying Updater can be campaigned —
// simulated testbeds here, real device connections in a production
// port.
//
// The engine is built to scale to million-device fleets:
//
//   - Scheduling is a fixed worker pool (Policy.Parallelism goroutines)
//     pulling device indices from sharded queues, not a goroutine per
//     device. Each shard is a sequential lane — at most one of its
//     devices is in flight at a time — so a shard cursor is always an
//     exact completed prefix, which is what makes campaign state
//     checkpointable.
//   - Reporting is streaming: per-status counters, per-stage tallies, a
//     bounded per-device sample and a bounded error sample are updated
//     as devices complete. Report memory is O(1) in fleet size.
//   - Campaign state (stage index, per-shard cursors, outcome counters)
//     serializes to JSON via Checkpoint/Restore, so an interrupted
//     campaign resumes where it stopped without re-updating devices.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"upkit/internal/telemetry"
)

// Updater is one device's update entry point.
type Updater interface {
	// ID identifies the device.
	ID() uint32
	// Version reports the currently running firmware version.
	Version() uint16
	// TryUpdate performs one update attempt (poll, transfer, verify,
	// reboot) and returns the version running afterwards.
	TryUpdate() (uint16, error)
}

// Status is a device's campaign outcome.
type Status int

// Campaign outcomes.
const (
	// StatusPending: not yet attempted.
	StatusPending Status = iota + 1
	// StatusUpdated: running the target version.
	StatusUpdated
	// StatusFailed: all attempts exhausted.
	StatusFailed
	// StatusSkipped: campaign aborted before this device was attempted.
	StatusSkipped
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusUpdated:
		return "updated"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Engine defaults.
const (
	// DefaultParallelism is the worker count when Policy.Parallelism is
	// zero.
	DefaultParallelism = 4
	// DefaultMaxRetryBackoff caps the exponential retry backoff when
	// Policy.MaxRetryBackoff is zero.
	DefaultMaxRetryBackoff = 5 * time.Minute
	// DefaultMaxResults bounds per-device Result records in a report
	// when Policy.MaxResults is zero.
	DefaultMaxResults = 1024
	// DefaultMaxErrors bounds the report's error sample when
	// Policy.MaxErrors is zero.
	DefaultMaxErrors = 16
	// DefaultBreakerMinSample is the minimum completed-device sample
	// before the circuit breaker may trip.
	DefaultBreakerMinSample = 20
)

// Policy tunes a campaign. The struct round-trips through JSON (the
// wire form of the control plane's POST /api/v1/campaigns body):
// durations are nanosecond integers, and the two function fields —
// Rand and OnResult — are process-local wiring that is deliberately
// excluded from the encoding.
type Policy struct {
	// CanaryFraction is the share of the fleet updated first
	// (rounded up, at least one device). Zero disables canarying.
	// Ignored when Stages is set.
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	// MaxCanaryFailureRate gates stage promotion: when a finished
	// stage's failure rate exceeds it, the campaign aborts before the
	// next stage starts (e.g. 0 = abort on any failure).
	MaxCanaryFailureRate float64 `json:"max_canary_failure_rate,omitempty"`
	// Stages lists cumulative fleet fractions for a staged rollout,
	// e.g. {0.01, 0.1, 1} updates 1% of the fleet, then up to 10%, then
	// everyone, with the MaxCanaryFailureRate gate applied between
	// stages. Fractions must be ascending in (0, 1]; a final 1 is
	// implied. When empty, CanaryFraction derives a two-stage rollout
	// (or a single full-fleet wave when that too is zero).
	Stages []float64 `json:"stages,omitempty"`
	// BreakerFailureRate, when > 0, arms a mid-wave circuit breaker:
	// once at least BreakerMinSample devices of the current stage have
	// completed and the stage's failure rate exceeds this threshold,
	// the campaign halts immediately — without waiting for the stage
	// boundary gate. Remaining devices are skipped and the run's error
	// wraps ErrBreakerTripped.
	BreakerFailureRate float64 `json:"breaker_failure_rate,omitempty"`
	// BreakerMinSample is the completed-device sample required before
	// the breaker may trip; 0 means DefaultBreakerMinSample.
	BreakerMinSample int `json:"breaker_min_sample,omitempty"`
	// MaxRetries is the number of extra attempts per device after the
	// first failure.
	MaxRetries int `json:"max_retries,omitempty"`
	// Parallelism bounds concurrent device updates; 0 means
	// DefaultParallelism. This is the exact worker-goroutine count: the
	// engine never holds more than Parallelism device updates in
	// flight, regardless of fleet size.
	Parallelism int `json:"parallelism,omitempty"`
	// Shards is the number of scheduling lanes devices are striped
	// across; 0 derives max(8, 2×Parallelism). More shards than
	// workers keeps the pool busy while long retry backoffs pin
	// individual lanes. The shard count is part of the checkpoint
	// format: a resumed campaign must use the same value.
	Shards int `json:"shards,omitempty"`
	// RetryBackoff is the base wait before retry n, growing as
	// RetryBackoff << (n-1) up to MaxRetryBackoff. Zero retries
	// immediately. The wait is interrupted by context cancellation.
	// Encoded in JSON as nanoseconds.
	RetryBackoff time.Duration `json:"retry_backoff_ns,omitempty"`
	// MaxRetryBackoff caps the exponential growth; 0 means
	// DefaultMaxRetryBackoff. The shift is clamped so large attempt
	// counts saturate at the cap instead of overflowing to a negative
	// (i.e. zero) wait. Encoded in JSON as nanoseconds.
	MaxRetryBackoff time.Duration `json:"max_retry_backoff_ns,omitempty"`
	// RetryJitter widens each backoff by a uniform factor in
	// [1, 1+RetryJitter), decorrelating retries across the fleet so a
	// wave of failures does not hammer the server in lockstep.
	RetryJitter float64 `json:"retry_jitter,omitempty"`
	// Rand supplies the jitter randomness in [0, 1); nil selects the
	// global math/rand.Float64. Inject a deterministic source to make
	// backoff schedules reproducible in tests. The source does not need
	// to be safe for concurrent use: the campaign serializes calls to it
	// even when Parallelism > 1. Not serialized.
	Rand func() float64 `json:"-"`
	// MaxResults bounds the per-device Result records retained in the
	// report: 0 means DefaultMaxResults, negative retains none. Outcome
	// counters are always exact regardless.
	MaxResults int `json:"max_results,omitempty"`
	// MaxErrors bounds the report's failed-device error sample: 0 means
	// DefaultMaxErrors, negative retains none. Errors beyond the bound
	// are counted in Report.ErrorsTruncated.
	MaxErrors int `json:"max_errors,omitempty"`
	// OnResult, when set, streams every device's terminal Result
	// (including skips) as it is recorded. Calls are serialized in
	// completion order. The callback runs on campaign worker
	// goroutines and must not block or call back into the campaign.
	// Not serialized.
	OnResult func(Result) `json:"-"`
}

func (p Policy) parallelism() int {
	if p.Parallelism <= 0 {
		return DefaultParallelism
	}
	return p.Parallelism
}

func (p Policy) breakerMinSample() int {
	if p.BreakerMinSample <= 0 {
		return DefaultBreakerMinSample
	}
	return p.BreakerMinSample
}

func (p Policy) maxResults() int {
	switch {
	case p.MaxResults == 0:
		return DefaultMaxResults
	case p.MaxResults < 0:
		return 0
	}
	return p.MaxResults
}

func (p Policy) maxErrors() int {
	switch {
	case p.MaxErrors == 0:
		return DefaultMaxErrors
	case p.MaxErrors < 0:
		return 0
	}
	return p.MaxErrors
}

// newRand01 builds the campaign-wide jitter source from a policy.
// Retry waits run on worker goroutines, so an injected Policy.Rand —
// typically a plain *rand.Rand closure with no internal locking — must
// be serialized here; the math/rand.Float64 default is already safe.
func newRand01(p Policy) func() float64 {
	if p.Rand == nil {
		return rand.Float64
	}
	var mu sync.Mutex
	src := p.Rand
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return src()
	}
}

// ErrCampaignAborted is wrapped into Run's error when a stage gate
// trips.
var ErrCampaignAborted = errors.New("fleet: campaign aborted by failure gate")

// ErrBreakerTripped is wrapped into Run's error when the mid-wave
// circuit breaker halts the campaign. It wraps ErrCampaignAborted, so
// errors.Is(err, ErrCampaignAborted) also holds.
var ErrBreakerTripped = fmt.Errorf("%w: circuit breaker tripped", ErrCampaignAborted)

// ErrCampaignPaused is the error RunContext returns after Pause halts
// the run. Unlike an abort, a pause leaves unattempted devices pending
// (not skipped): Checkpoint() captures an exact resume point and a
// later Restore + RunContext re-dispatches exactly the devices that
// never reached a terminal state.
var ErrCampaignPaused = errors.New("fleet: campaign paused")

// ErrNotRunning is returned by Pause when no RunContext is in flight.
var ErrNotRunning = errors.New("fleet: campaign is not running")

// ErrAlreadyRunning is returned by RunContext when another run of the
// same campaign is still in flight.
var ErrAlreadyRunning = errors.New("fleet: campaign run already in flight")

// Result is one device's final state.
type Result struct {
	DeviceID uint32
	Status   Status
	Version  uint16
	Attempts int
	// Err is the last error for failed devices.
	Err error
}

// CampaignError is one failed device's last error, as sampled into the
// report.
type CampaignError struct {
	DeviceID uint32
	Attempts int
	Err      error
}

// StageSummary tallies one rollout stage. For a resumed campaign the
// summaries cover only the work performed by that run; cumulative
// outcome counts live in the Report totals.
type StageSummary struct {
	// Devices is the stage's size (device count), including devices
	// completed before a resume.
	Devices int `json:"devices"`
	Updated int `json:"updated"`
	Failed  int `json:"failed"`
	Skipped int `json:"skipped"`
}

// Report summarises a campaign. Aggregation is streaming: outcome
// counters and per-stage tallies are exact for any fleet size, while
// Results and Errors are bounded samples (Policy.MaxResults /
// Policy.MaxErrors) so the report stays O(1) in fleet size.
type Report struct {
	Target  uint16
	Devices int
	Updated int
	Failed  int
	Skipped int
	Pending int
	Aborted bool
	// Paused marks a run halted by Pause: unattempted devices stay
	// Pending and the campaign's Checkpoint resumes them.
	Paused bool
	// AbortReason says what halted an aborted campaign (stage gate,
	// circuit breaker, cancellation).
	AbortReason string
	// Stages tallies each rollout stage this run touched.
	Stages []StageSummary
	// Results is a bounded sample of per-device outcomes in completion
	// order; ResultsTruncated counts devices beyond the bound.
	Results          []Result
	ResultsTruncated int
	// Errors is a bounded sample of failed-device errors;
	// ErrorsTruncated counts failures beyond the bound.
	Errors          []CampaignError
	ErrorsTruncated int
	// SpanSummary, when the campaign carries a telemetry registry, is
	// the phase-span digest at the end of the run (per-phase totals over
	// completed update spans).
	SpanSummary string
}

// Counts tallies outcomes. Every device lands in exactly one bucket,
// so updated+failed+skipped+pending == Devices; pending is only
// non-zero when a resumed checkpoint was inconsistent.
func (r *Report) Counts() (updated, failed, skipped, pending int) {
	return r.Updated, r.Failed, r.Skipped, r.Pending
}

// Campaign rolls one target version across a fleet.
type Campaign struct {
	target  uint16
	policy  Policy
	devices []Updater
	tel     *telemetry.Registry
	// rand01 is the serialized jitter source shared by all workers; see
	// newRand01.
	rand01 func() float64
	// bounds are the cumulative stage boundaries in device counts,
	// ending at len(devices).
	bounds []int
	shards int

	mu     sync.Mutex
	resume *Checkpoint // state to resume from, set by Restore
	last   *Checkpoint // state after the most recent run
	cur    *liveRun    // in-flight run, nil between runs
}

// liveRun is the concurrency-safe view of an in-flight RunContext —
// what Progress reads and Pause cancels. Everything here is either
// immutable after creation or atomic, so observers never contend with
// the worker pool.
type liveRun struct {
	agg     *aggregator
	started time.Time
	// baseDone is the completed-device count preloaded from a resume
	// checkpoint; throughput and ETA are computed on this run's work
	// only.
	baseDone int64
	stage    atomic.Int64
	st       atomic.Pointer[stageState]
	cancel   context.CancelFunc
	paused   atomic.Bool
}

// SetTelemetry attaches a metrics registry. Waves, per-device outcomes
// and attempts are counted on it, and the report carries the registry's
// phase-span summary. A nil registry leaves the campaign silent.
func (c *Campaign) SetTelemetry(reg *telemetry.Registry) { c.tel = reg }

// ceilFrac is ⌈n·frac⌉ with a one-part-per-billion snap. The old
// additive hack `int(n*frac + 0.999999)` overcounted at fleet scale:
// float64(0.001) is slightly above 1/1000, so 1e6 × 0.001 evaluates to
// 1000.0000000000001 and bought an extra canary (1001). Products within
// a relative billionth of an integer are treated as that integer before
// the ceiling, so nine-significant-digit fractions are honored exactly
// while genuine remainders (6 × 0.34 = 2.04) still round up.
func ceilFrac(n int, frac float64) int {
	if n <= 0 || frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	p := float64(n) * frac
	k := int(math.Ceil(p - p*1e-9 - 1e-9))
	return min(max(k, 0), n)
}

// stageBounds derives the cumulative stage boundaries for a fleet of n
// devices. Empty stages are dropped; the last boundary is always n.
func stageBounds(n int, p Policy) []int {
	fracs := p.Stages
	if len(fracs) == 0 {
		if p.CanaryFraction > 0 {
			fracs = []float64{p.CanaryFraction, 1}
		} else {
			fracs = []float64{1}
		}
	}
	bounds := make([]int, 0, len(fracs)+1)
	prev := 0
	for i, f := range fracs {
		b := ceilFrac(n, f)
		if i == 0 && len(fracs) > 1 {
			b = max(1, b) // a staged rollout always canaries at least one device
		}
		b = min(max(b, prev), n)
		if b > prev {
			bounds = append(bounds, b)
			prev = b
		}
	}
	if prev < n {
		bounds = append(bounds, n)
	}
	return bounds
}

// New creates a campaign for target across devices.
func New(target uint16, policy Policy, devices []Updater) (*Campaign, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: empty fleet")
	}
	if target == 0 {
		return nil, errors.New("fleet: target version must be >= 1")
	}
	if policy.CanaryFraction < 0 || policy.CanaryFraction > 1 {
		return nil, fmt.Errorf("fleet: canary fraction %f out of [0,1]", policy.CanaryFraction)
	}
	prev := 0.0
	for _, f := range policy.Stages {
		if f <= prev || f > 1 {
			return nil, fmt.Errorf("fleet: stages must be ascending fractions in (0,1], got %v", policy.Stages)
		}
		prev = f
	}
	if policy.BreakerFailureRate < 0 || policy.BreakerFailureRate > 1 {
		return nil, fmt.Errorf("fleet: breaker failure rate %f out of [0,1]", policy.BreakerFailureRate)
	}
	shards := policy.Shards
	if shards <= 0 {
		shards = max(8, 2*policy.parallelism())
	}
	shards = min(shards, len(devices))
	return &Campaign{
		target:  target,
		policy:  policy,
		devices: devices,
		rand01:  newRand01(policy),
		bounds:  stageBounds(len(devices), policy),
		shards:  shards,
	}, nil
}

// Run executes the campaign: staged waves with gates between them. The
// returned report always covers every device; err wraps
// ErrCampaignAborted when a gate or the breaker tripped. It is
// RunContext with context.Background().
func (c *Campaign) Run() (*Report, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the campaign under ctx. Cancellation is honored
// mid-wave: in-flight device updates finish their current attempt, not
// yet started devices are marked StatusSkipped, and the returned error
// wraps ctx.Err(). The report still covers every device, and
// Checkpoint() afterwards captures where to resume.
//
// Pause (from another goroutine) halts the run the same way but leaves
// unattempted devices pending instead of skipped; the error is then
// ErrCampaignPaused. At most one RunContext may be in flight per
// campaign; a second concurrent call fails with ErrAlreadyRunning.
func (c *Campaign) RunContext(ctx context.Context) (*Report, error) {
	agg := newAggregator(c)
	rctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	lr := &liveRun{agg: agg, started: time.Now(), cancel: cancelRun}
	c.mu.Lock()
	if c.cur != nil {
		c.mu.Unlock()
		return nil, ErrAlreadyRunning
	}
	c.cur = lr
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.cur = nil
		c.mu.Unlock()
	}()

	report := &Report{Target: c.target, Devices: len(c.devices)}
	defer func() {
		agg.fill(report)
		if c.tel != nil {
			report.SpanSummary = c.tel.Spans().Summary()
		}
	}()

	startStage := 0
	var preCursors []int
	preDone, preFailed := 0, 0
	if cp := c.resume; cp != nil {
		startStage = cp.Stage
		preCursors = append([]int(nil), cp.Cursors...)
		preDone, preFailed = cp.StageDone, cp.StageFailed
		agg.updated.Store(int64(cp.Updated))
		agg.failed.Store(int64(cp.Failed))
		lr.baseDone = int64(cp.Updated + cp.Failed)
	}

	for si := startStage; si < len(c.bounds); si++ {
		lo := 0
		if si > 0 {
			lo = c.bounds[si-1]
		}
		hi := c.bounds[si]
		st := newStageState(si, lo, hi, c.shards)
		if si == startStage && preCursors != nil {
			if err := st.preload(preCursors, preDone, preFailed); err != nil {
				return report, err
			}
		}
		lr.stage.Store(int64(si))
		lr.st.Store(st)
		c.met("upkit_campaign_waves_total", "Campaign waves started.",
			telemetry.L("stage", strconv.Itoa(si))).Inc()
		c.runStage(rctx, st, agg)

		stageDone := int(st.done.Load())
		stageFailed := int(st.failed.Load())
		if lr.paused.Load() {
			// A pause is not an abort: unattempted devices stay pending so
			// the checkpoint re-dispatches exactly them and nothing else.
			c.saveState(si, st, agg, false)
			report.Paused = true
			return report, ErrCampaignPaused
		}
		if err := ctx.Err(); err != nil {
			c.skipRemaining(st, si, agg)
			c.saveState(si, st, agg, false)
			report.Aborted = true
			report.AbortReason = fmt.Sprintf("canceled in stage %d: %v", si, err)
			return report, fmt.Errorf("fleet: campaign canceled: %w", err)
		}
		if st.tripped.Load() {
			c.met("upkit_campaign_breaker_trips_total", "Circuit-breaker trips.",
				telemetry.L("stage", strconv.Itoa(si))).Inc()
			c.skipRemaining(st, si, agg)
			c.saveState(si, st, agg, false)
			report.Aborted = true
			report.AbortReason = fmt.Sprintf("circuit breaker: %d of %d devices failed in stage %d",
				stageFailed, stageDone, si)
			return report, fmt.Errorf("%w: %d of %d devices failed in stage %d",
				ErrBreakerTripped, stageFailed, stageDone, si)
		}
		if si < len(c.bounds)-1 && stageDone > 0 {
			rate := float64(stageFailed) / float64(stageDone)
			if rate > c.policy.MaxCanaryFailureRate {
				c.skipRemaining(nil, si, agg)
				c.saveState(si+1, nil, agg, false)
				report.Aborted = true
				report.AbortReason = fmt.Sprintf("stage %d gate: %d of %d canaries failed",
					si, stageFailed, stageDone)
				return report, fmt.Errorf("%w: %d of %d canaries failed",
					ErrCampaignAborted, stageFailed, stageDone)
			}
		}
	}
	c.saveState(len(c.bounds), nil, agg, true)
	return report, nil
}

// Pause asks the in-flight RunContext to halt at the next safe point:
// workers stop claiming devices, in-flight attempts finish (retry
// backoffs are cut short), and RunContext returns ErrCampaignPaused
// with unattempted devices left pending. Safe to call from any
// goroutine; returns ErrNotRunning when no run is in flight. Note a
// device paused mid-retry-backoff lands StatusFailed with its last
// real error — the same terminal-attempt discipline cancellation uses.
func (c *Campaign) Pause() error {
	c.mu.Lock()
	lr := c.cur
	c.mu.Unlock()
	if lr == nil {
		return ErrNotRunning
	}
	lr.paused.Store(true)
	lr.cancel()
	return nil
}

// StageProgress is one stage's live tally within a Progress snapshot.
type StageProgress struct {
	// Devices is the stage's total size; Done counts terminal outcomes
	// the current run recorded in it (a resumed stage's earlier work is
	// in the campaign totals, not re-attributed to the stage).
	Devices int `json:"devices"`
	Done    int `json:"done"`
	Updated int `json:"updated"`
	Failed  int `json:"failed"`
	Skipped int `json:"skipped"`
}

// Progress is a concurrency-safe snapshot of a campaign — live while a
// run is in flight, final afterwards. All counters are exact; the
// throughput and ETA figures cover only the current run's work (a
// resumed campaign starts a fresh clock).
type Progress struct {
	Target  uint16 `json:"target"`
	Devices int    `json:"devices"`
	Updated int    `json:"updated"`
	Failed  int    `json:"failed"`
	Skipped int    `json:"skipped"`
	Pending int    `json:"pending"`
	// Running reports whether a RunContext is in flight; Paused whether
	// the in-flight run has been asked to pause (or, between runs,
	// nothing — a manager tracks lifecycle state above this).
	Running bool `json:"running"`
	Paused  bool `json:"paused"`
	// Stage is the index of the stage in progress (or the next to run);
	// Stages tallies every stage touched so far.
	Stage  int             `json:"stage"`
	Stages []StageProgress `json:"stages,omitempty"`
	// BreakerTripped reports the current stage's circuit breaker.
	BreakerTripped bool `json:"breaker_tripped,omitempty"`
	// ElapsedSeconds is the current run's age; zero between runs.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// DevicesPerSecond is this run's terminal-outcome rate, and
	// ETASeconds extrapolates it over the pending devices; both zero
	// when idle or no device has completed yet.
	DevicesPerSecond float64 `json:"devices_per_second,omitempty"`
	ETASeconds       float64 `json:"eta_seconds,omitempty"`
}

// Progress snapshots the campaign without disturbing it: atomic
// counter reads plus one short lock on the report aggregator. Before
// any run it reports the armed resume checkpoint (if any); after a run
// it reports the final state.
func (c *Campaign) Progress() Progress {
	p := Progress{Target: c.target, Devices: len(c.devices)}
	c.mu.Lock()
	lr := c.cur
	last := c.last
	resume := c.resume
	c.mu.Unlock()

	switch {
	case lr != nil:
		p.Running = true
		p.Paused = lr.paused.Load()
		p.Updated = int(lr.agg.updated.Load())
		p.Failed = int(lr.agg.failed.Load())
		p.Skipped = int(lr.agg.skipped.Load())
		p.Stage = int(lr.stage.Load())
		if st := lr.st.Load(); st != nil {
			p.BreakerTripped = st.tripped.Load()
		}
		p.Stages = lr.agg.stageProgress()
		elapsed := time.Since(lr.started).Seconds()
		p.ElapsedSeconds = elapsed
		if runDone := int64(p.Updated+p.Failed) - lr.baseDone; runDone > 0 && elapsed > 0 {
			p.DevicesPerSecond = float64(runDone) / elapsed
		}
	case last != nil:
		p.Updated = last.Updated
		p.Failed = last.Failed
		p.Stage = last.Stage
	case resume != nil:
		p.Updated = resume.Updated
		p.Failed = resume.Failed
		p.Stage = resume.Stage
	}
	p.Pending = max(0, p.Devices-p.Updated-p.Failed-p.Skipped)
	if p.DevicesPerSecond > 0 {
		p.ETASeconds = float64(p.Pending) / p.DevicesPerSecond
	}
	return p
}

// met resolves a counter on the campaign's registry (nil-safe).
func (c *Campaign) met(name, help string, labels ...telemetry.Label) *telemetry.Counter {
	return c.tel.Counter(name, help, labels...)
}

// shardLane is one sequential scheduling lane: positions
// lo+s, lo+s+S, lo+s+2S, … of the current stage. busy enforces at most
// one in-flight device per lane, which keeps next an exact completed
// prefix — the property the checkpoint format relies on.
type shardLane struct {
	busy atomic.Bool
	next int // completed positions (only touched while busy is held)
	size int
}

// stageState is the scheduling state of one rollout stage.
type stageState struct {
	index   int
	lo, hi  int
	lanes   []shardLane
	remaining atomic.Int64
	// done/failed include work preloaded from a checkpoint; runDone/
	// runFailed count only this run, which is what the breaker
	// evaluates (a resumed campaign gets a fresh breaker window).
	done, failed       atomic.Int64
	runDone, runFailed atomic.Int64
	tripped            atomic.Bool
	rr                 atomic.Uint64
	cancel             context.CancelFunc
}

func newStageState(index, lo, hi, shards int) *stageState {
	st := &stageState{index: index, lo: lo, hi: hi, lanes: make([]shardLane, shards)}
	size := hi - lo
	for s := range st.lanes {
		if s < size {
			st.lanes[s].size = (size - s + shards - 1) / shards
		}
	}
	st.remaining.Store(int64(size))
	return st
}

// preload seeds the stage from checkpoint cursors: cursor positions are
// already complete and are not re-scheduled.
func (st *stageState) preload(cursors []int, done, failed int) error {
	if len(cursors) != len(st.lanes) {
		return fmt.Errorf("fleet: checkpoint has %d shard cursors, campaign has %d shards",
			len(cursors), len(st.lanes))
	}
	completed := 0
	for s := range st.lanes {
		if cursors[s] < 0 || cursors[s] > st.lanes[s].size {
			return fmt.Errorf("fleet: checkpoint cursor %d out of range for shard %d (size %d)",
				cursors[s], s, st.lanes[s].size)
		}
		st.lanes[s].next = cursors[s]
		completed += cursors[s]
	}
	st.remaining.Add(int64(-completed))
	st.done.Store(int64(done))
	st.failed.Store(int64(failed))
	return nil
}

// runStage drives the stage with a fixed worker pool. Goroutine count
// during a campaign is exactly Policy.Parallelism plus the caller.
func (c *Campaign) runStage(parent context.Context, st *stageState, agg *aggregator) {
	if st.remaining.Load() == 0 {
		return
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	st.cancel = cancel
	workers := c.policy.parallelism()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c.stageWorker(ctx, st, agg)
		}()
	}
	wg.Wait()
}

// stageWorker claims devices from shard lanes until the stage drains,
// the context is canceled, or the breaker trips. A lane is held for the
// whole device update so its cursor stays a completed prefix.
func (c *Campaign) stageWorker(ctx context.Context, st *stageState, agg *aggregator) {
	n := uint64(len(st.lanes))
	for {
		if ctx.Err() != nil || st.tripped.Load() || st.remaining.Load() <= 0 {
			return
		}
		claimed := false
		start := st.rr.Add(1)
		for i := uint64(0); i < n; i++ {
			s := int((start + i) % n)
			sh := &st.lanes[s]
			if !sh.busy.CompareAndSwap(false, true) {
				continue
			}
			if sh.next >= sh.size {
				sh.busy.Store(false)
				continue
			}
			// Re-check halt conditions after the claim: a device not yet
			// started when the campaign halts must stay unclaimed so the
			// checkpoint re-schedules it.
			if ctx.Err() != nil || st.tripped.Load() {
				sh.busy.Store(false)
				return
			}
			idx := st.lo + s + sh.next*len(st.lanes)
			res := c.updateOne(ctx, c.devices[idx])
			agg.record(res, st.index)
			sh.next++
			st.remaining.Add(-1)
			c.noteStageResult(st, res.Status == StatusFailed)
			sh.busy.Store(false)
			claimed = true
			break
		}
		if !claimed {
			// Every lane with work is held by another worker; wait for an
			// in-flight update to release one.
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// noteStageResult updates stage tallies and evaluates the circuit
// breaker on this run's completions.
func (c *Campaign) noteStageResult(st *stageState, failed bool) {
	st.done.Add(1)
	runDone := st.runDone.Add(1)
	var runFailed int64
	if failed {
		st.failed.Add(1)
		runFailed = st.runFailed.Add(1)
	} else {
		runFailed = st.runFailed.Load()
	}
	if c.policy.BreakerFailureRate <= 0 || int(runDone) < c.policy.breakerMinSample() {
		return
	}
	if float64(runFailed)/float64(runDone) > c.policy.BreakerFailureRate {
		if st.tripped.CompareAndSwap(false, true) && st.cancel != nil {
			// Cut in-flight retry backoffs short; the devices finish their
			// current attempt and land StatusFailed with their real error.
			st.cancel()
		}
	}
}

// skipRemaining records StatusSkipped for every unattempted device: the
// tail of the current stage (when st is non-nil) and all later stages.
func (c *Campaign) skipRemaining(st *stageState, si int, agg *aggregator) {
	skip := func(idx, stage int) {
		d := c.devices[idx]
		agg.record(Result{DeviceID: d.ID(), Status: StatusSkipped, Version: d.Version()}, stage)
	}
	if st != nil {
		for s := range st.lanes {
			sh := &st.lanes[s]
			for k := sh.next; k < sh.size; k++ {
				skip(st.lo+s+k*len(st.lanes), si)
			}
		}
	}
	for sj := si + 1; sj < len(c.bounds); sj++ {
		for idx := c.bounds[sj-1]; idx < c.bounds[sj]; idx++ {
			skip(idx, sj)
		}
	}
}

// retryDelay computes the wait before retry attempt n ≥ 1: exponential
// in the base backoff, saturating at the cap, widened by the jitter
// factor. The shift is clamped so huge attempt counts cannot overflow
// into a negative (and therefore zero) wait — the failure mode that
// used to let exhausted devices hammer the server with no backoff.
func retryDelay(p Policy, attempt int, rand01 func() float64) time.Duration {
	if p.RetryBackoff <= 0 || attempt <= 0 {
		return 0
	}
	ceil := p.MaxRetryBackoff
	if ceil <= 0 {
		ceil = DefaultMaxRetryBackoff
	}
	if ceil < p.RetryBackoff {
		ceil = p.RetryBackoff
	}
	d := ceil
	// RetryBackoff << shift stays representable iff it cannot exceed the
	// cap; comparing against ceil>>shift avoids computing the overflow.
	if shift := uint(attempt - 1); shift < 63 && p.RetryBackoff <= ceil>>shift {
		d = p.RetryBackoff << shift
	}
	if p.RetryJitter > 0 && rand01 != nil {
		j := time.Duration(rand01() * p.RetryJitter * float64(d))
		if j > 0 && d <= math.MaxInt64-j {
			d += j
		}
	}
	return d
}

// sleepCtx waits for d, returning early with ctx's error on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// updateOne drives a single device with retries. Cancellation stops
// further retries (including mid-backoff) but never interrupts an
// attempt halfway: the device always lands in a deterministic terminal
// status, with the last real attempt error preserved.
func (c *Campaign) updateOne(ctx context.Context, d Updater) Result {
	res := Result{DeviceID: d.ID(), Version: d.Version()}
	if res.Version >= c.target {
		res.Status = StatusUpdated // already there (or newer)
		return res
	}
	var lastErr error
	for attempt := 0; attempt <= c.policy.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, retryDelay(c.policy, attempt, c.rand01)); err != nil {
				break
			}
		}
		res.Attempts++
		c.met("upkit_campaign_attempts_total", "Per-device update attempts.").Inc()
		v, err := d.TryUpdate()
		if err == nil && v >= c.target {
			res.Status = StatusUpdated
			res.Version = v
			return res
		}
		if err == nil {
			lastErr = fmt.Errorf("fleet: device %#x ended on v%d, want v%d", d.ID(), v, c.target)
		} else {
			lastErr = err
		}
	}
	res.Status = StatusFailed
	res.Version = d.Version()
	res.Err = lastErr
	return res
}

// aggregator is the streaming report sink: exact atomic counters plus
// bounded result/error samples under one mutex.
type aggregator struct {
	c       *Campaign
	updated atomic.Int64
	failed  atomic.Int64
	skipped atomic.Int64

	mu               sync.Mutex
	stages           map[int]*StageSummary
	results          []Result
	resultsTruncated int
	errs             []CampaignError
	errsTruncated    int
	maxResults       int
	maxErrors        int
}

func newAggregator(c *Campaign) *aggregator {
	return &aggregator{
		c:          c,
		stages:     make(map[int]*StageSummary),
		maxResults: c.policy.maxResults(),
		maxErrors:  c.policy.maxErrors(),
	}
}

// record stores one device's terminal outcome: counters, stage tally,
// bounded samples, telemetry, and the streaming sink.
func (a *aggregator) record(res Result, stage int) {
	switch res.Status {
	case StatusUpdated:
		a.updated.Add(1)
	case StatusFailed:
		a.failed.Add(1)
	case StatusSkipped:
		a.skipped.Add(1)
	}
	if a.c.tel != nil {
		a.c.met("upkit_campaign_devices_total", "Campaign device outcomes.",
			telemetry.L("status", res.Status.String())).Inc()
	}
	a.mu.Lock()
	ss := a.stages[stage]
	if ss == nil {
		ss = &StageSummary{}
		a.stages[stage] = ss
	}
	switch res.Status {
	case StatusUpdated:
		ss.Updated++
	case StatusFailed:
		ss.Failed++
	case StatusSkipped:
		ss.Skipped++
	}
	if res.Status == StatusFailed && res.Err != nil {
		if len(a.errs) < a.maxErrors {
			a.errs = append(a.errs, CampaignError{DeviceID: res.DeviceID, Attempts: res.Attempts, Err: res.Err})
		} else {
			a.errsTruncated++
		}
	}
	if len(a.results) < a.maxResults {
		a.results = append(a.results, res)
	} else {
		a.resultsTruncated++
	}
	sink := a.c.policy.OnResult
	if sink != nil {
		sink(res)
	}
	a.mu.Unlock()
}

// stageProgress snapshots the per-stage tallies for Progress, sized
// from the campaign's stage bounds.
func (a *aggregator) stageProgress() []StageProgress {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []StageProgress
	for si := range a.c.bounds {
		ss, ok := a.stages[si]
		if !ok {
			continue
		}
		lo := 0
		if si > 0 {
			lo = a.c.bounds[si-1]
		}
		out = append(out, StageProgress{
			Devices: a.c.bounds[si] - lo,
			Done:    ss.Updated + ss.Failed + ss.Skipped,
			Updated: ss.Updated,
			Failed:  ss.Failed,
			Skipped: ss.Skipped,
		})
	}
	return out
}

// fill finalises the report from the aggregated state.
func (a *aggregator) fill(r *Report) {
	r.Updated = int(a.updated.Load())
	r.Failed = int(a.failed.Load())
	r.Skipped = int(a.skipped.Load())
	if p := r.Devices - r.Updated - r.Failed - r.Skipped; p > 0 {
		r.Pending = p
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	r.Results = a.results
	r.ResultsTruncated = a.resultsTruncated
	r.Errors = a.errs
	r.ErrorsTruncated = a.errsTruncated
	r.Stages = nil
	for si := range a.c.bounds {
		ss, ok := a.stages[si]
		if !ok {
			continue
		}
		lo := 0
		if si > 0 {
			lo = a.c.bounds[si-1]
		}
		out := *ss
		out.Devices = a.c.bounds[si] - lo
		r.Stages = append(r.Stages, out)
	}
}

// Render returns a sorted, human-readable campaign summary.
func (r *Report) Render() string {
	out := fmt.Sprintf("campaign to v%d: %d updated, %d failed, %d skipped, %d pending",
		r.Target, r.Updated, r.Failed, r.Skipped, r.Pending)
	if r.Aborted {
		out += fmt.Sprintf(" (ABORTED: %s)", r.AbortReason)
	}
	for i, ss := range r.Stages {
		out += fmt.Sprintf("\n  stage %d: %d devices, %d updated, %d failed, %d skipped",
			i, ss.Devices, ss.Updated, ss.Failed, ss.Skipped)
	}
	sorted := make([]Result, len(r.Results))
	copy(sorted, r.Results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DeviceID < sorted[j].DeviceID })
	for _, res := range sorted {
		out += fmt.Sprintf("\n  device %#08x: %-7s v%d (%d attempts)",
			res.DeviceID, res.Status, res.Version, res.Attempts)
	}
	if r.ResultsTruncated > 0 {
		out += fmt.Sprintf("\n  (+%d more devices not individually recorded)", r.ResultsTruncated)
	}
	if r.SpanSummary != "" {
		out += "\n  spans: " + r.SpanSummary
	}
	return out
}
