// Package fleet orchestrates update campaigns across many devices —
// the operational layer on top of UpKit's per-device update flow.
//
// The paper's architecture ends at "the update server propagates the
// image to the IoT device(s)"; a real deployment rolls a release out in
// waves: a canary fraction first, a failure-rate gate, then the general
// population, with bounded retries per device. This package implements
// exactly that, device-agnostically: anything satisfying Updater can be
// campaigned — simulated testbeds here, real device connections in a
// production port.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"upkit/internal/telemetry"
)

// Updater is one device's update entry point.
type Updater interface {
	// ID identifies the device.
	ID() uint32
	// Version reports the currently running firmware version.
	Version() uint16
	// TryUpdate performs one update attempt (poll, transfer, verify,
	// reboot) and returns the version running afterwards.
	TryUpdate() (uint16, error)
}

// Status is a device's campaign outcome.
type Status int

// Campaign outcomes.
const (
	// StatusPending: not yet attempted.
	StatusPending Status = iota + 1
	// StatusUpdated: running the target version.
	StatusUpdated
	// StatusFailed: all attempts exhausted.
	StatusFailed
	// StatusSkipped: campaign aborted before this device was attempted.
	StatusSkipped
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusUpdated:
		return "updated"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Policy tunes a campaign.
type Policy struct {
	// CanaryFraction is the share of the fleet updated first
	// (rounded up, at least one device). Zero disables canarying.
	CanaryFraction float64
	// MaxCanaryFailureRate aborts the campaign when the canary wave's
	// failure rate exceeds it (e.g. 0 = abort on any canary failure).
	MaxCanaryFailureRate float64
	// MaxRetries is the number of extra attempts per device after the
	// first failure.
	MaxRetries int
	// Parallelism bounds concurrent device updates per wave; 0 means 4.
	Parallelism int
	// RetryBackoff is the base wait before retry n, growing as
	// RetryBackoff << (n-1). Zero retries immediately (the previous
	// behaviour). The wait is interrupted by context cancellation.
	RetryBackoff time.Duration
	// RetryJitter widens each backoff by a uniform factor in
	// [1, 1+RetryJitter), decorrelating retries across the fleet so a
	// wave of failures does not hammer the server in lockstep.
	RetryJitter float64
	// Rand supplies the jitter randomness in [0, 1); nil selects the
	// global math/rand.Float64. Inject a deterministic source to make
	// backoff schedules reproducible in tests. The source does not need
	// to be safe for concurrent use: the campaign serializes calls to it
	// even when Parallelism > 1.
	Rand func() float64
}

// newRand01 builds the campaign-wide jitter source from a policy.
// Retry waits run on per-device wave goroutines, so an injected
// Policy.Rand — typically a plain *rand.Rand closure with no internal
// locking — must be serialized here; the math/rand.Float64 default is
// already safe.
func newRand01(p Policy) func() float64 {
	if p.Rand == nil {
		return rand.Float64
	}
	var mu sync.Mutex
	src := p.Rand
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return src()
	}
}

// ErrCampaignAborted is wrapped into Run's error when the canary gate
// trips.
var ErrCampaignAborted = errors.New("fleet: campaign aborted by canary gate")

// Result is one device's final state.
type Result struct {
	DeviceID uint32
	Status   Status
	Version  uint16
	Attempts int
	// Err is the last error for failed devices.
	Err error
}

// Report summarises a campaign.
type Report struct {
	Target  uint16
	Results []Result
	Aborted bool
	// SpanSummary, when the campaign carries a telemetry registry, is
	// the phase-span digest at the end of the run (per-phase totals over
	// completed update spans).
	SpanSummary string
}

// Counts tallies outcomes. Every device lands in exactly one bucket,
// so updated+failed+skipped+pending == len(Results); pending is only
// non-zero when a report is inspected mid-run or after a crash left
// devices unattempted.
func (r *Report) Counts() (updated, failed, skipped, pending int) {
	for _, res := range r.Results {
		switch res.Status {
		case StatusUpdated:
			updated++
		case StatusFailed:
			failed++
		case StatusSkipped:
			skipped++
		case StatusPending:
			pending++
		}
	}
	return
}

// Campaign rolls one target version across a fleet.
type Campaign struct {
	target  uint16
	policy  Policy
	devices []Updater
	tel     *telemetry.Registry
	// rand01 is the serialized jitter source shared by all wave
	// goroutines; see newRand01.
	rand01 func() float64
}

// SetTelemetry attaches a metrics registry. Waves, per-device outcomes
// and attempts are counted on it, and the report carries the registry's
// phase-span summary. A nil registry leaves the campaign silent.
func (c *Campaign) SetTelemetry(reg *telemetry.Registry) { c.tel = reg }

// New creates a campaign for target across devices.
func New(target uint16, policy Policy, devices []Updater) (*Campaign, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: empty fleet")
	}
	if target == 0 {
		return nil, errors.New("fleet: target version must be >= 1")
	}
	if policy.CanaryFraction < 0 || policy.CanaryFraction > 1 {
		return nil, fmt.Errorf("fleet: canary fraction %f out of [0,1]", policy.CanaryFraction)
	}
	return &Campaign{target: target, policy: policy, devices: devices, rand01: newRand01(policy)}, nil
}

// Run executes the campaign: canary wave, gate, then the rest. The
// returned report always covers every device; err wraps
// ErrCampaignAborted when the gate tripped. It is RunContext with
// context.Background().
func (c *Campaign) Run() (*Report, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the campaign under ctx. Cancellation is honored
// mid-wave: in-flight device updates finish their current attempt, not
// yet started devices are marked StatusSkipped, and the returned error
// wraps ctx.Err(). The report still covers every device.
func (c *Campaign) RunContext(ctx context.Context) (*Report, error) {
	report := &Report{Target: c.target}
	results := make([]Result, len(c.devices))
	for i, d := range c.devices {
		results[i] = Result{DeviceID: d.ID(), Status: StatusPending, Version: d.Version()}
	}
	defer func() {
		if c.tel != nil {
			report.SpanSummary = c.tel.Spans().Summary()
			for _, r := range results {
				c.met("upkit_campaign_devices_total", "Campaign device outcomes.",
					telemetry.L("status", r.Status.String())).Inc()
			}
		}
	}()

	canary := 0
	if c.policy.CanaryFraction > 0 {
		canary = int(float64(len(c.devices))*c.policy.CanaryFraction + 0.999999)
		canary = max(1, min(canary, len(c.devices)))
	}

	c.wave(ctx, results, 0, canary)
	if canary > 0 {
		var failed int
		for _, r := range results[:canary] {
			if r.Status == StatusFailed {
				failed++
			}
		}
		rate := float64(failed) / float64(canary)
		if rate > c.policy.MaxCanaryFailureRate {
			for i := canary; i < len(results); i++ {
				results[i].Status = StatusSkipped
			}
			report.Results = results
			report.Aborted = true
			return report, fmt.Errorf("%w: %d of %d canaries failed", ErrCampaignAborted, failed, canary)
		}
	}
	c.wave(ctx, results, canary, len(c.devices))
	report.Results = results
	if err := ctx.Err(); err != nil {
		report.Aborted = true
		return report, fmt.Errorf("fleet: campaign canceled: %w", err)
	}
	return report, nil
}

// met resolves a counter on the campaign's registry (nil-safe).
func (c *Campaign) met(name, help string, labels ...telemetry.Label) *telemetry.Counter {
	return c.tel.Counter(name, help, labels...)
}

// wave updates devices[from:to] with bounded parallelism. Devices whose
// slot comes up after ctx is canceled are skipped.
func (c *Campaign) wave(ctx context.Context, results []Result, from, to int) {
	if from >= to {
		return
	}
	c.met("upkit_campaign_waves_total", "Campaign waves started.").Inc()
	parallelism := c.policy.Parallelism
	if parallelism <= 0 {
		parallelism = 4
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := from; i < to; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				results[idx].Status = StatusSkipped
				return
			}
			results[idx] = c.updateOne(ctx, c.devices[idx])
		}(i)
	}
	wg.Wait()
}

// retryDelay computes the wait before retry attempt n ≥ 1: exponential
// in the base backoff, widened by the jitter factor.
func retryDelay(p Policy, attempt int, rand01 func() float64) time.Duration {
	if p.RetryBackoff <= 0 || attempt <= 0 {
		return 0
	}
	d := p.RetryBackoff << uint(attempt-1)
	if p.RetryJitter > 0 && rand01 != nil {
		d += time.Duration(rand01() * p.RetryJitter * float64(d))
	}
	return d
}

// sleepCtx waits for d, returning early with ctx's error on
// cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// updateOne drives a single device with retries. Cancellation stops
// further retries (including mid-backoff) but never interrupts an
// attempt halfway.
func (c *Campaign) updateOne(ctx context.Context, d Updater) Result {
	res := Result{DeviceID: d.ID(), Version: d.Version()}
	if res.Version >= c.target {
		res.Status = StatusUpdated // already there (or newer)
		return res
	}
	var lastErr error
	for attempt := 0; attempt <= c.policy.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, retryDelay(c.policy, attempt, c.rand01)); err != nil {
				break
			}
		}
		res.Attempts++
		c.met("upkit_campaign_attempts_total", "Per-device update attempts.").Inc()
		v, err := d.TryUpdate()
		if err == nil && v >= c.target {
			res.Status = StatusUpdated
			res.Version = v
			return res
		}
		if err == nil {
			lastErr = fmt.Errorf("fleet: device %#x ended on v%d, want v%d", d.ID(), v, c.target)
		} else {
			lastErr = err
		}
	}
	res.Status = StatusFailed
	res.Version = d.Version()
	res.Err = lastErr
	return res
}

// Render returns a sorted, human-readable campaign summary.
func (r *Report) Render() string {
	updated, failed, skipped, pending := r.Counts()
	out := fmt.Sprintf("campaign to v%d: %d updated, %d failed, %d skipped, %d pending",
		r.Target, updated, failed, skipped, pending)
	if r.Aborted {
		out += " (ABORTED by canary gate)"
	}
	sorted := make([]Result, len(r.Results))
	copy(sorted, r.Results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DeviceID < sorted[j].DeviceID })
	for _, res := range sorted {
		out += fmt.Sprintf("\n  device %#08x: %-7s v%d (%d attempts)",
			res.DeviceID, res.Status, res.Version, res.Attempts)
	}
	if r.SpanSummary != "" {
		out += "\n  spans: " + r.SpanSummary
	}
	return out
}
