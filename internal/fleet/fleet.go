// Package fleet orchestrates update campaigns across many devices —
// the operational layer on top of UpKit's per-device update flow.
//
// The paper's architecture ends at "the update server propagates the
// image to the IoT device(s)"; a real deployment rolls a release out in
// waves: a canary fraction first, a failure-rate gate, then the general
// population, with bounded retries per device. This package implements
// exactly that, device-agnostically: anything satisfying Updater can be
// campaigned — simulated testbeds here, real device connections in a
// production port.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Updater is one device's update entry point.
type Updater interface {
	// ID identifies the device.
	ID() uint32
	// Version reports the currently running firmware version.
	Version() uint16
	// TryUpdate performs one update attempt (poll, transfer, verify,
	// reboot) and returns the version running afterwards.
	TryUpdate() (uint16, error)
}

// Status is a device's campaign outcome.
type Status int

// Campaign outcomes.
const (
	// StatusPending: not yet attempted.
	StatusPending Status = iota + 1
	// StatusUpdated: running the target version.
	StatusUpdated
	// StatusFailed: all attempts exhausted.
	StatusFailed
	// StatusSkipped: campaign aborted before this device was attempted.
	StatusSkipped
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusUpdated:
		return "updated"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Policy tunes a campaign.
type Policy struct {
	// CanaryFraction is the share of the fleet updated first
	// (rounded up, at least one device). Zero disables canarying.
	CanaryFraction float64
	// MaxCanaryFailureRate aborts the campaign when the canary wave's
	// failure rate exceeds it (e.g. 0 = abort on any canary failure).
	MaxCanaryFailureRate float64
	// MaxRetries is the number of extra attempts per device after the
	// first failure.
	MaxRetries int
	// Parallelism bounds concurrent device updates per wave; 0 means 4.
	Parallelism int
}

// ErrCampaignAborted is wrapped into Run's error when the canary gate
// trips.
var ErrCampaignAborted = errors.New("fleet: campaign aborted by canary gate")

// Result is one device's final state.
type Result struct {
	DeviceID uint32
	Status   Status
	Version  uint16
	Attempts int
	// Err is the last error for failed devices.
	Err error
}

// Report summarises a campaign.
type Report struct {
	Target  uint16
	Results []Result
	Aborted bool
}

// Counts tallies outcomes.
func (r *Report) Counts() (updated, failed, skipped int) {
	for _, res := range r.Results {
		switch res.Status {
		case StatusUpdated:
			updated++
		case StatusFailed:
			failed++
		case StatusSkipped:
			skipped++
		}
	}
	return
}

// Campaign rolls one target version across a fleet.
type Campaign struct {
	target  uint16
	policy  Policy
	devices []Updater
}

// New creates a campaign for target across devices.
func New(target uint16, policy Policy, devices []Updater) (*Campaign, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: empty fleet")
	}
	if target == 0 {
		return nil, errors.New("fleet: target version must be >= 1")
	}
	if policy.CanaryFraction < 0 || policy.CanaryFraction > 1 {
		return nil, fmt.Errorf("fleet: canary fraction %f out of [0,1]", policy.CanaryFraction)
	}
	return &Campaign{target: target, policy: policy, devices: devices}, nil
}

// Run executes the campaign: canary wave, gate, then the rest. The
// returned report always covers every device; err wraps
// ErrCampaignAborted when the gate tripped.
func (c *Campaign) Run() (*Report, error) {
	report := &Report{Target: c.target}
	results := make([]Result, len(c.devices))
	for i, d := range c.devices {
		results[i] = Result{DeviceID: d.ID(), Status: StatusPending, Version: d.Version()}
	}

	canary := 0
	if c.policy.CanaryFraction > 0 {
		canary = int(float64(len(c.devices))*c.policy.CanaryFraction + 0.999999)
		canary = max(1, min(canary, len(c.devices)))
	}

	c.wave(results, 0, canary)
	if canary > 0 {
		var failed int
		for _, r := range results[:canary] {
			if r.Status == StatusFailed {
				failed++
			}
		}
		rate := float64(failed) / float64(canary)
		if rate > c.policy.MaxCanaryFailureRate {
			for i := canary; i < len(results); i++ {
				results[i].Status = StatusSkipped
			}
			report.Results = results
			report.Aborted = true
			return report, fmt.Errorf("%w: %d of %d canaries failed", ErrCampaignAborted, failed, canary)
		}
	}
	c.wave(results, canary, len(c.devices))
	report.Results = results
	return report, nil
}

// wave updates devices[from:to] with bounded parallelism.
func (c *Campaign) wave(results []Result, from, to int) {
	parallelism := c.policy.Parallelism
	if parallelism <= 0 {
		parallelism = 4
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := from; i < to; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[idx] = c.updateOne(c.devices[idx])
		}(i)
	}
	wg.Wait()
}

// updateOne drives a single device with retries.
func (c *Campaign) updateOne(d Updater) Result {
	res := Result{DeviceID: d.ID(), Version: d.Version()}
	if res.Version >= c.target {
		res.Status = StatusUpdated // already there (or newer)
		return res
	}
	var lastErr error
	for attempt := 0; attempt <= c.policy.MaxRetries; attempt++ {
		res.Attempts++
		v, err := d.TryUpdate()
		if err == nil && v >= c.target {
			res.Status = StatusUpdated
			res.Version = v
			return res
		}
		if err == nil {
			lastErr = fmt.Errorf("fleet: device %#x ended on v%d, want v%d", d.ID(), v, c.target)
		} else {
			lastErr = err
		}
	}
	res.Status = StatusFailed
	res.Version = d.Version()
	res.Err = lastErr
	return res
}

// Render returns a sorted, human-readable campaign summary.
func (r *Report) Render() string {
	updated, failed, skipped := r.Counts()
	out := fmt.Sprintf("campaign to v%d: %d updated, %d failed, %d skipped",
		r.Target, updated, failed, skipped)
	if r.Aborted {
		out += " (ABORTED by canary gate)"
	}
	sorted := make([]Result, len(r.Results))
	copy(sorted, r.Results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DeviceID < sorted[j].DeviceID })
	for _, res := range sorted {
		out += fmt.Sprintf("\n  device %#08x: %-7s v%d (%d attempts)",
			res.DeviceID, res.Status, res.Version, res.Attempts)
	}
	return out
}
