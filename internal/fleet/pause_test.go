package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateDevice blocks each TryUpdate until released, so a test can hold
// a campaign mid-flight deterministically.
type gateDevice struct {
	*fakeDevice
	started chan struct{} // receives one token per attempt start
	release chan struct{} // one token releases one attempt
}

func (d *gateDevice) TryUpdate() (uint16, error) {
	d.started <- struct{}{}
	<-d.release
	return d.fakeDevice.TryUpdate()
}

func TestPauseLeavesUnattemptedPending(t *testing.T) {
	const n = 10
	devs := makeFleet(n, 1, 2)
	started := make(chan struct{}, n)
	release := make(chan struct{}, n)
	ups := make([]Updater, n)
	for i, d := range devs {
		ups[i] = &gateDevice{fakeDevice: d, started: started, release: release}
	}
	c, err := New(2, Policy{Parallelism: 2, Shards: 4}, ups)
	if err != nil {
		t.Fatal(err)
	}

	var report *Report
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		report, runErr = c.RunContext(context.Background())
	}()

	// Let two devices start, pause, then release them to finish.
	<-started
	<-started
	if err := c.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	release <- struct{}{}
	release <- struct{}{}
	<-done

	if !errors.Is(runErr, ErrCampaignPaused) {
		t.Fatalf("run error = %v, want ErrCampaignPaused", runErr)
	}
	if errors.Is(runErr, ErrCampaignAborted) {
		t.Fatal("a pause must not look like an abort")
	}
	if !report.Paused || report.Aborted {
		t.Fatalf("report flags = paused %v aborted %v", report.Paused, report.Aborted)
	}
	if report.Updated != 2 || report.Skipped != 0 || report.Pending != n-2 {
		t.Fatalf("report = %d updated, %d skipped, %d pending; want 2/0/%d",
			report.Updated, report.Skipped, report.Pending, n-2)
	}

	// Resume: exactly the pending devices are dispatched, once each.
	cp := c.Checkpoint()
	if cp == nil || cp.Complete {
		t.Fatalf("checkpoint = %+v, want incomplete resume state", cp)
	}
	for range n - 2 {
		release <- struct{}{}
	}
	go func() {
		for range started {
		}
	}()
	c2, err := New(2, Policy{Parallelism: 2, Shards: 4}, ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	rep2, err := c2.Run()
	close(started)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep2.Updated != n || rep2.Pending != 0 {
		t.Fatalf("resumed report = %d updated, %d pending; want %d/0", rep2.Updated, rep2.Pending, n)
	}
	total := 0
	for _, d := range devs {
		total += int(d.attempts.Load())
	}
	if total != n {
		t.Fatalf("total attempts = %d, want %d (exactly-once re-dispatch)", total, n)
	}
}

func TestPauseWithoutRun(t *testing.T) {
	devs := makeFleet(4, 1, 2)
	c, err := New(2, Policy{}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pause(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Pause on idle campaign = %v, want ErrNotRunning", err)
	}
}

func TestConcurrentRunRefused(t *testing.T) {
	const n = 4
	devs := makeFleet(n, 1, 2)
	started := make(chan struct{}, n)
	release := make(chan struct{}, n)
	ups := make([]Updater, n)
	for i, d := range devs {
		ups[i] = &gateDevice{fakeDevice: d, started: started, release: release}
	}
	c, err := New(2, Policy{Parallelism: 1}, ups)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.RunContext(context.Background())
	}()
	<-started
	if _, err := c.RunContext(context.Background()); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("second run = %v, want ErrAlreadyRunning", err)
	}
	for range n {
		release <- struct{}{}
	}
	go func() {
		for range started {
		}
	}()
	<-done
	close(started)
}

func TestProgressLiveSnapshot(t *testing.T) {
	const n = 8
	devs := makeFleet(n, 1, 2)
	started := make(chan struct{}, n)
	release := make(chan struct{}, n)
	ups := make([]Updater, n)
	for i, d := range devs {
		ups[i] = &gateDevice{fakeDevice: d, started: started, release: release}
	}
	c, err := New(2, Policy{Parallelism: 2, Shards: 2}, ups)
	if err != nil {
		t.Fatal(err)
	}

	// Idle, never run: everything pending.
	p := c.Progress()
	if p.Running || p.Pending != n || p.Updated != 0 {
		t.Fatalf("idle progress = %+v", p)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.RunContext(context.Background())
	}()
	<-started
	<-started
	// Two devices in flight, none finished.
	p = c.Progress()
	if !p.Running {
		t.Fatalf("progress not running: %+v", p)
	}
	release <- struct{}{}
	release <- struct{}{}
	// Wait until the two completions are visible.
	deadline := time.After(5 * time.Second)
	for c.Progress().Updated < 2 {
		select {
		case <-deadline:
			t.Fatalf("progress never reached 2 updated: %+v", c.Progress())
		case <-time.After(time.Millisecond):
		}
	}
	p = c.Progress()
	if p.Updated < 2 || p.Pending > n-2 {
		t.Fatalf("mid-run progress = %+v", p)
	}
	if p.ElapsedSeconds <= 0 || p.DevicesPerSecond <= 0 || p.ETASeconds <= 0 {
		t.Fatalf("rate figures missing: %+v", p)
	}
	if len(p.Stages) == 0 || p.Stages[0].Updated < 2 {
		t.Fatalf("stage progress = %+v", p.Stages)
	}
	for range n - 2 {
		release <- struct{}{}
	}
	go func() {
		for range started {
		}
	}()
	wg.Wait()
	close(started)

	// Final snapshot after the run.
	p = c.Progress()
	if p.Running || p.Updated != n || p.Pending != 0 {
		t.Fatalf("final progress = %+v", p)
	}
}

func TestProgressCountsAtomically(t *testing.T) {
	// Hammer Progress while a campaign runs under -race; counters must
	// never exceed the fleet.
	devs := makeFleet(500, 1, 2)
	c, err := New(2, Policy{Parallelism: 8, Shards: 16}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			p := c.Progress()
			if got := p.Updated + p.Failed + p.Skipped; got > p.Devices {
				panic("progress overflow")
			}
		}
	}()
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	in := Policy{
		CanaryFraction:       0.05,
		MaxCanaryFailureRate: 0.1,
		Stages:               []float64{0.01, 0.25, 1},
		BreakerFailureRate:   0.2,
		BreakerMinSample:     40,
		MaxRetries:           3,
		Parallelism:          16,
		Shards:               64,
		RetryBackoff:         50 * time.Millisecond,
		MaxRetryBackoff:      2 * time.Second,
		RetryJitter:          0.5,
		MaxResults:           -1,
		MaxErrors:            8,
		// Function fields must not leak into (or break) the encoding.
		Rand:     func() float64 { return 0 },
		OnResult: func(Result) {},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Policy
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	in.Rand, in.OnResult = nil, nil
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in: %+v\nout: %+v", in, out)
	}
}
