package fleet

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- satellite: retryDelay overflow clamp ---

func TestRetryDelayClampsShiftAndCapsDelay(t *testing.T) {
	p := Policy{RetryBackoff: time.Second}
	// The old shift went negative past attempt 63; every attempt count
	// must now yield a positive, capped delay.
	for _, attempt := range []int{1, 2, 10, 33, 63, 64, 100, 1 << 20} {
		d := retryDelay(p, attempt, nil)
		if d <= 0 {
			t.Fatalf("attempt %d: delay %v not positive (overflow disabled backoff)", attempt, d)
		}
		if d > DefaultMaxRetryBackoff {
			t.Fatalf("attempt %d: delay %v beyond default cap %v", attempt, d, DefaultMaxRetryBackoff)
		}
	}
	if d := retryDelay(p, 3, nil); d != 4*time.Second {
		t.Fatalf("attempt 3 delay = %v, want 4s (exponential growth below cap)", d)
	}
	// An explicit cap saturates the schedule.
	p.MaxRetryBackoff = 3 * time.Second
	if d := retryDelay(p, 10, nil); d != 3*time.Second {
		t.Fatalf("capped delay = %v, want 3s", d)
	}
	// Jitter on a capped delay must not overflow either.
	p.RetryJitter = 1
	one := func() float64 { return 0.999 }
	if d := retryDelay(p, 200, one); d <= 0 || d > 6*time.Second {
		t.Fatalf("jittered capped delay = %v, want in (0, 6s]", d)
	}
}

// --- satellite: exact canary ceiling ---

func TestCeilFracExactAtScale(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{1_000_000, 0.001, 1000}, // the float hack yielded 1001
		{1_000_000, 0.25, 250_000},
		{1_000_000, 1.0 / 3.0, 333_334},
		{10, 0.2, 2},
		{10, 0.25, 3},
		{6, 0.34, 3},
		{6, 1.0 / 6.0, 1}, // representation error must not buy a second canary
		{3, 1.0 / 3.0, 1},
		{1, 0.001, 1},
		{5, 0, 0},
		{5, 1, 5},
		{0, 0.5, 0},
		{100_000, 0.0001, 10},
	}
	for _, c := range cases {
		if got := ceilFrac(c.n, c.frac); got != c.want {
			t.Errorf("ceilFrac(%d, %g) = %d, want %d", c.n, c.frac, got, c.want)
		}
	}
}

func TestStageBoundsFromPolicy(t *testing.T) {
	// CanaryFraction compat: two stages.
	b := stageBounds(10, Policy{CanaryFraction: 0.2})
	if len(b) != 2 || b[0] != 2 || b[1] != 10 {
		t.Fatalf("canary bounds = %v, want [2 10]", b)
	}
	// Multi-stage fractions, final 1 implied.
	b = stageBounds(1000, Policy{Stages: []float64{0.01, 0.1}})
	if len(b) != 3 || b[0] != 10 || b[1] != 100 || b[2] != 1000 {
		t.Fatalf("staged bounds = %v, want [10 100 1000]", b)
	}
	// Tiny fleet: empty stages collapse, at least one canary.
	b = stageBounds(2, Policy{Stages: []float64{0.001, 0.01, 1}})
	if b[0] != 1 || b[len(b)-1] != 2 {
		t.Fatalf("tiny-fleet bounds = %v, want first stage of 1 ending at 2", b)
	}
	// No policy: one full wave.
	b = stageBounds(7, Policy{})
	if len(b) != 1 || b[0] != 7 {
		t.Fatalf("default bounds = %v, want [7]", b)
	}
}

// --- staged rollout ---

func TestMultiStageRollout(t *testing.T) {
	devs := makeFleet(20, 1, 2)
	c, err := New(2, Policy{Stages: []float64{0.1, 0.5, 1}, Parallelism: 4, Shards: 4}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 20, 0, 0, 0)
	sizes := []int{2, 8, 10}
	if len(report.Stages) != 3 {
		t.Fatalf("stage summaries = %d, want 3\n%s", len(report.Stages), report.Render())
	}
	for i, ss := range report.Stages {
		if ss.Devices != sizes[i] || ss.Updated != sizes[i] {
			t.Errorf("stage %d = %+v, want %d devices all updated", i, ss, sizes[i])
		}
	}
}

func TestStageGateAbortsMidCampaign(t *testing.T) {
	devs := makeFleet(20, 1, 2)
	// Stage 2 (devices 2..9) fails hard; stage 1 (the 2 canaries) is fine.
	for _, d := range devs[2:10] {
		d.failures.Store(1000)
	}
	c, err := New(2, Policy{Stages: []float64{0.1, 0.5, 1}, MaxCanaryFailureRate: 0.25}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if !errors.Is(err, ErrCampaignAborted) {
		t.Fatalf("error = %v, want ErrCampaignAborted", err)
	}
	if errors.Is(err, ErrBreakerTripped) {
		t.Fatalf("stage-boundary gate reported as breaker trip: %v", err)
	}
	checkCounts(t, report, 2, 8, 10, 0)
	for _, d := range devs[10:] {
		if d.attempts.Load() != 0 {
			t.Fatalf("device %#x beyond the failed stage was attempted", d.id)
		}
	}
	if !report.Aborted || !strings.Contains(report.AbortReason, "gate") {
		t.Fatalf("abort reason = %q, want a stage-gate reason", report.AbortReason)
	}
}

// --- circuit breaker ---

func TestCircuitBreakerTripsMidWave(t *testing.T) {
	const n = 400
	devs := makeFleet(n, 1, 2)
	for _, d := range devs {
		d.failures.Store(1000) // every attempt fails
	}
	c, err := New(2, Policy{
		Parallelism:        4,
		Shards:             8,
		BreakerFailureRate: 0.5,
		BreakerMinSample:   25,
	}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if !errors.Is(err, ErrBreakerTripped) || !errors.Is(err, ErrCampaignAborted) {
		t.Fatalf("error = %v, want ErrBreakerTripped (wrapping ErrCampaignAborted)", err)
	}
	if !report.Aborted {
		t.Fatal("report not marked aborted")
	}
	u, f, s, p := report.Counts()
	if u != 0 || p != 0 {
		t.Fatalf("counts = %d/%d/%d/%d, want no updates or pending", u, f, s, p)
	}
	if f < 25 {
		t.Fatalf("failed = %d, want at least the breaker min sample (25)", f)
	}
	// The breaker must halt the wave long before the fleet drains: allow
	// the min sample plus a claim per worker of slack.
	if f > 25+2*4 {
		t.Fatalf("failed = %d, breaker tripped too late", f)
	}
	if f+s != n {
		t.Fatalf("failed+skipped = %d, want %d", f+s, n)
	}
}

func TestCircuitBreakerRespectsMinSample(t *testing.T) {
	devs := makeFleet(10, 1, 2)
	devs[0].failures.Store(1000) // a single early failure: 100% rate at sample 1
	c, err := New(2, Policy{
		Parallelism:        1,
		Shards:             1,
		BreakerFailureRate: 0.5,
		BreakerMinSample:   10,
	}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatalf("breaker tripped below its min sample: %v", err)
	}
	checkCounts(t, report, 9, 1, 0, 0)
}

// --- checkpoint / resume ---

// cancelOnNthResult cancels a context after n results have streamed.
func cancelOnNthResult(n int, cancel context.CancelFunc) func(Result) {
	var seen atomic.Int64
	return func(Result) {
		if seen.Add(1) == int64(n) {
			cancel()
		}
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	const n = 60
	devs := makeFleet(n, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pol := Policy{Parallelism: 4, Shards: 8, Stages: []float64{0.1, 1}}
	pol.OnResult = cancelOnNthResult(20, cancel)
	c, err := New(2, pol, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	u1, _, s1, _ := report.Counts()
	if u1 < 20 || s1 == 0 {
		t.Fatalf("interrupted run counts = %s", report.Render())
	}

	// The checkpoint must survive a JSON round-trip.
	cp := c.Checkpoint()
	if cp == nil || cp.Complete {
		t.Fatalf("checkpoint = %+v, want incomplete state", cp)
	}
	blob, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Resume on a fresh campaign over the same fleet.
	c2, err := New(2, Policy{Parallelism: 4, Shards: 8, Stages: []float64{0.1, 1}}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Restore(back); err != nil {
		t.Fatal(err)
	}
	report2, err := c2.RunContext(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	checkCounts(t, report2, n, 0, 0, 0)
	// Exactly-once: no device is attempted twice across the two runs.
	for _, d := range devs {
		if got := d.attempts.Load(); got != 1 {
			t.Fatalf("device %#x attempted %d times across interrupt+resume, want 1", d.id, got)
		}
		if d.Version() != 2 {
			t.Fatalf("device %#x ended on v%d", d.id, d.Version())
		}
	}
	cp2 := c2.Checkpoint()
	if cp2 == nil || !cp2.Complete {
		t.Fatalf("resumed checkpoint = %+v, want complete", cp2)
	}
}

func TestCheckpointResumeAfterBreakerTrip(t *testing.T) {
	const n = 100
	devs := makeFleet(n, 1, 2)
	for _, d := range devs {
		d.failures.Store(1) // everyone fails once; with no retries, fails terminally
	}
	pol := Policy{Parallelism: 2, Shards: 4, BreakerFailureRate: 0.5, BreakerMinSample: 10}
	c, err := New(2, pol, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); !errors.Is(err, ErrBreakerTripped) {
		t.Fatalf("error = %v, want ErrBreakerTripped", err)
	}
	cp := c.Checkpoint()

	// The transient is gone (devices succeed now); the operator resumes.
	for _, d := range devs {
		d.failures.Store(0)
	}
	c2, err := New(2, pol, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	report, err := c2.Run()
	if err != nil {
		t.Fatalf("resumed run tripped again on pre-resume failures: %v", err)
	}
	u, f, s, p := report.Counts()
	if u+f != n || s != 0 || p != 0 {
		t.Fatalf("resumed counts = %d/%d/%d/%d, want updated+failed == %d", u, f, s, p, n)
	}
	if f != cp.Failed {
		t.Fatalf("failed = %d, want the checkpoint's %d (terminal failures are not re-run)", f, cp.Failed)
	}
}

func TestRestoreValidation(t *testing.T) {
	devs := makeFleet(10, 1, 2)
	pol := Policy{Shards: 4}
	c, _ := New(2, pol, updaters(devs))
	good := &Checkpoint{Target: 2, Devices: 10, Shards: 4, Bounds: []int{10}, Cursors: []int{1, 0, 0, 0}, Stage: 0}
	if err := c.Restore(good); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	bad := []*Checkpoint{
		nil,
		{Target: 3, Devices: 10, Shards: 4, Bounds: []int{10}},
		{Target: 2, Devices: 11, Shards: 4, Bounds: []int{10}},
		{Target: 2, Devices: 10, Shards: 2, Bounds: []int{10}},
		{Target: 2, Devices: 10, Shards: 4, Bounds: []int{5, 10}},
		{Target: 2, Devices: 10, Shards: 4, Bounds: []int{10}, Stage: 5},
		{Target: 2, Devices: 10, Shards: 4, Bounds: []int{10}, Cursors: []int{0, 0}},
	}
	for i, cp := range bad {
		if err := c.Restore(cp); err == nil {
			t.Errorf("bad checkpoint %d accepted", i)
		}
	}
	// Out-of-range cursors are rejected when the run starts.
	c2, _ := New(2, pol, updaters(devs))
	if err := c2.Restore(&Checkpoint{Target: 2, Devices: 10, Shards: 4, Bounds: []int{10},
		Cursors: []int{99, 0, 0, 0}, Stage: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(); err == nil {
		t.Error("run with out-of-range cursors succeeded")
	}
}

func TestResumeCompleteCheckpointIsNoOp(t *testing.T) {
	devs := makeFleet(5, 1, 2)
	c, _ := New(2, Policy{Shards: 2}, updaters(devs))
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	cp := c.Checkpoint()
	if !cp.Complete {
		t.Fatalf("checkpoint after full run not complete: %+v", cp)
	}
	c2, _ := New(2, Policy{Shards: 2}, updaters(devs))
	if err := c2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	report, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 5, 0, 0, 0)
	for _, d := range devs {
		if d.attempts.Load() != 1 {
			t.Fatal("complete checkpoint re-ran devices")
		}
	}
}

// --- satellite: cancellation mid-retry-backoff ---

// cancelingDevice cancels the campaign context from inside its first
// (failing) attempt, so the cancellation lands during the retry
// backoff that follows.
type cancelingDevice struct {
	*fakeDevice
	cancel context.CancelFunc
}

func (d *cancelingDevice) TryUpdate() (uint16, error) {
	v, err := d.fakeDevice.TryUpdate()
	d.cancel()
	return v, err
}

func TestCancellationMidRetryBackoffPreservesLastError(t *testing.T) {
	base := newFake(0x77, 1, 1000) // fails every attempt with "radio glitch"
	base.target = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dev := &cancelingDevice{fakeDevice: base, cancel: cancel}
	c, err := New(2, Policy{
		MaxRetries:   5,
		RetryBackoff: time.Hour, // without cancellation the test would hang
	}, []Updater{dev})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	report, err := c.RunContext(ctx)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation did not interrupt the backoff (took %v)", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(report.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(report.Results))
	}
	res := report.Results[0]
	if res.Status != StatusFailed {
		t.Fatalf("status = %v, want deterministic StatusFailed", res.Status)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want exactly 1 (cancel landed in the first backoff)", res.Attempts)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "radio glitch") {
		t.Fatalf("err = %v, want the real last attempt error preserved", res.Err)
	}
}

// --- streaming aggregation bounds ---

func TestReportSamplesAreBounded(t *testing.T) {
	const n = 200
	devs := makeFleet(n, 1, 2)
	for _, d := range devs {
		d.failures.Store(1000)
	}
	c, err := New(2, Policy{MaxResults: 10, MaxErrors: 5, Parallelism: 8}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, 0, n, 0, 0)
	if len(report.Results) != 10 || report.ResultsTruncated != n-10 {
		t.Fatalf("results = %d (+%d truncated), want 10 (+%d)", len(report.Results), report.ResultsTruncated, n-10)
	}
	if len(report.Errors) != 5 || report.ErrorsTruncated != n-5 {
		t.Fatalf("errors = %d (+%d truncated), want 5 (+%d)", len(report.Errors), report.ErrorsTruncated, n-5)
	}
	if report.Errors[0].Err == nil {
		t.Fatal("error sample lost the device error")
	}
	// Negative bounds disable the samples entirely.
	c2, _ := New(2, Policy{MaxResults: -1, MaxErrors: -1}, updaters(makeFleet(4, 1, 2)))
	r2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Results) != 0 || r2.ResultsTruncated != 4 {
		t.Fatalf("MaxResults -1 kept %d results", len(r2.Results))
	}
}

func TestOnResultStreamsEveryDevice(t *testing.T) {
	const n = 50
	devs := makeFleet(n, 1, 2)
	var streamed atomic.Int64
	c, err := New(2, Policy{
		Parallelism: 4,
		MaxResults:  -1, // sink replaces the in-memory slice
		OnResult:    func(r Result) { streamed.Add(1) },
	}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if streamed.Load() != n {
		t.Fatalf("sink saw %d results, want %d", streamed.Load(), n)
	}
}

// --- scheduler: goroutine count bounded by the worker pool ---

func TestGoroutineCountBoundedByParallelism(t *testing.T) {
	const n = 5000
	const parallelism = 8
	const shards = 16
	devs := makeFleet(n, 1, 2)
	base := runtime.NumGoroutine()
	var maxG atomic.Int64
	var seen atomic.Int64
	c, err := New(2, Policy{
		Parallelism: parallelism,
		Shards:      shards,
		MaxResults:  -1,
		OnResult: func(Result) {
			if seen.Add(1)%32 == 0 {
				g := int64(runtime.NumGoroutine())
				for {
					cur := maxG.Load()
					if g <= cur || maxG.CompareAndSwap(cur, g) {
						break
					}
				}
			}
		},
	}, updaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, report, n, 0, 0, 0)
	// The old scheduler spawned one goroutine per device (n before the
	// first semaphore acquire). The pool must stay at Parallelism plus
	// scheduling overhead, independent of fleet size.
	limit := int64(base + parallelism + shards + 10)
	if got := maxG.Load(); got > limit {
		t.Fatalf("goroutines peaked at %d, want <= %d (base %d + parallelism %d + O(shards))",
			got, limit, base, parallelism)
	}
}
