package fleet_test

import (
	"errors"
	"fmt"
	"testing"

	"upkit/internal/fleet"
	"upkit/internal/platform"
	"upkit/internal/testbed"
)

// bedUpdater adapts a testbed deployment to the fleet.Updater
// interface: a campaign over fully simulated UpKit devices.
type bedUpdater struct {
	bed *testbed.Bed
	id  uint32
}

func (u *bedUpdater) ID() uint32      { return u.id }
func (u *bedUpdater) Version() uint16 { return u.bed.Device.RunningVersion() }
func (u *bedUpdater) TryUpdate() (uint16, error) {
	res, err := u.bed.PullUpdate()
	if err != nil {
		return u.bed.Device.RunningVersion(), err
	}
	return res.Version, nil
}

func buildFleet(t *testing.T, n int, target uint16) []*bedUpdater {
	t.Helper()
	v1 := testbed.MakeFirmware("fleet-it-v1", 32*1024)
	v2 := testbed.MakeFirmware("fleet-it-v2", 32*1024)
	out := make([]*bedUpdater, n)
	for i := range out {
		id := uint32(0x9000 + i)
		bed, err := testbed.New(testbed.Options{
			Approach: platform.Pull,
			DeviceID: id,
			Seed:     fmt.Sprintf("fleet-it-%d", i),
		}, v1)
		if err != nil {
			t.Fatal(err)
		}
		if err := bed.PublishVersion(target, v2); err != nil {
			t.Fatal(err)
		}
		out[i] = &bedUpdater{bed: bed, id: id}
	}
	return out
}

func asUpdaters(devs []*bedUpdater) []fleet.Updater {
	out := make([]fleet.Updater, len(devs))
	for i, d := range devs {
		out[i] = d
	}
	return out
}

func TestCampaignOverSimulatedDevices(t *testing.T) {
	devs := buildFleet(t, 6, 2)
	c, err := fleet.New(2, fleet.Policy{CanaryFraction: 0.34, MaxRetries: 1, Parallelism: 3},
		asUpdaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	updated, failed, skipped, pending := report.Counts()
	if updated != 6 || failed != 0 || skipped != 0 || pending != 0 {
		t.Fatalf("counts = %d/%d/%d/%d\n%s", updated, failed, skipped, pending, report.Render())
	}
	for _, d := range devs {
		if d.Version() != 2 {
			t.Fatalf("device %#x on v%d", d.id, d.Version())
		}
	}
}

func TestCampaignGateProtectsFleetFromBadLink(t *testing.T) {
	devs := buildFleet(t, 6, 2)
	// The canary's radio is dead: the whole wave fails, the campaign
	// aborts, and the rest of the fleet keeps running v1 untouched.
	devs[0].bed.Link.SetLoss(1.0, 99)
	c, err := fleet.New(2, fleet.Policy{
		CanaryFraction:       1.0 / 6, // exactly one canary
		MaxCanaryFailureRate: 0,
		MaxRetries:           0,
	}, asUpdaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if !errors.Is(err, fleet.ErrCampaignAborted) {
		t.Fatalf("error = %v, want ErrCampaignAborted", err)
	}
	_, failed, skipped, _ := report.Counts()
	if failed != 1 || skipped != 5 {
		t.Fatalf("failed/skipped = %d/%d, want 1/5\n%s", failed, skipped, report.Render())
	}
	for _, d := range devs[1:] {
		if d.Version() != 1 {
			t.Fatalf("device %#x was updated during an aborted campaign", d.id)
		}
	}
}

func TestCampaignRetriesThroughLossyLink(t *testing.T) {
	devs := buildFleet(t, 3, 2)
	// One device's link drops 10% of frames — CoAP retransmission plus
	// campaign retries must still get it there.
	devs[1].bed.Link.SetLoss(0.1, 1234)
	c, err := fleet.New(2, fleet.Policy{MaxRetries: 3, Parallelism: 1}, asUpdaters(devs))
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if updated, _, _, _ := report.Counts(); updated != 3 {
		t.Fatalf("updated = %d, want 3\n%s", updated, report.Render())
	}
}
