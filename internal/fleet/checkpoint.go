package fleet

import (
	"encoding/json"
	"fmt"
	"slices"
)

// Checkpoint is a campaign's serializable progress: which stage is in
// flight, the completed prefix of every shard lane, and the cumulative
// outcome counters. It is sized O(shards), independent of fleet size.
//
// The scheduler guarantees the cursors are exact: each shard lane has
// at most one device in flight and its cursor advances only after that
// device reaches a terminal state, so a checkpoint taken after an
// interrupted run never skips a device and never re-updates a completed
// one. Devices the interrupted run marked StatusSkipped are *not*
// recorded as done — a resume re-schedules them.
type Checkpoint struct {
	// Target, Devices, Shards and Bounds identify the campaign shape;
	// Restore rejects a checkpoint whose shape disagrees with the
	// campaign it is applied to.
	Target  uint16 `json:"target"`
	Devices int    `json:"devices"`
	Shards  int    `json:"shards"`
	Bounds  []int  `json:"stage_bounds"`
	// Stage is the index of the stage in progress; len(Bounds) when the
	// campaign completed.
	Stage int `json:"stage"`
	// Cursors is the completed-device prefix of each shard lane within
	// the in-progress stage; absent when no stage is mid-flight.
	Cursors []int `json:"cursors,omitempty"`
	// Updated and Failed are cumulative terminal outcomes across the
	// whole campaign so far (skipped devices are re-scheduled, not
	// counted).
	Updated int `json:"updated"`
	Failed  int `json:"failed"`
	// StageDone and StageFailed are the in-progress stage's tallies,
	// seeding the stage-boundary gate on resume.
	StageDone   int `json:"stage_done"`
	StageFailed int `json:"stage_failed"`
	// Complete marks a campaign that ran to the end; resuming it is a
	// no-op that reports the recorded counters.
	Complete bool `json:"complete"`
}

// Marshal renders the checkpoint as JSON.
func (cp *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(cp, "", "  ")
}

// ParseCheckpoint decodes a checkpoint produced by Marshal.
func ParseCheckpoint(blob []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.Unmarshal(blob, cp); err != nil {
		return nil, fmt.Errorf("fleet: parse checkpoint: %w", err)
	}
	return cp, nil
}

func (cp *Checkpoint) clone() *Checkpoint {
	out := *cp
	out.Bounds = slices.Clone(cp.Bounds)
	out.Cursors = slices.Clone(cp.Cursors)
	return &out
}

// Checkpoint snapshots the campaign state after the most recent
// RunContext. It returns nil before any run. The snapshot is a deep
// copy: callers may serialize or mutate it freely.
func (c *Campaign) Checkpoint() *Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last == nil {
		return nil
	}
	return c.last.clone()
}

// Restore arms the campaign to resume from cp: completed stages and
// shard-cursor prefixes are not re-run, and cp's outcome counters seed
// the next report so it still covers every device. The checkpoint must
// come from a campaign with the same target, fleet size, shard count
// and stage boundaries.
func (c *Campaign) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("fleet: nil checkpoint")
	}
	if cp.Target != c.target {
		return fmt.Errorf("fleet: checkpoint targets v%d, campaign targets v%d", cp.Target, c.target)
	}
	if cp.Devices != len(c.devices) {
		return fmt.Errorf("fleet: checkpoint covers %d devices, campaign has %d", cp.Devices, len(c.devices))
	}
	if cp.Shards != c.shards {
		return fmt.Errorf("fleet: checkpoint has %d shards, campaign has %d", cp.Shards, c.shards)
	}
	if !slices.Equal(cp.Bounds, c.bounds) {
		return fmt.Errorf("fleet: checkpoint stage bounds %v differ from campaign bounds %v", cp.Bounds, c.bounds)
	}
	if cp.Stage < 0 || cp.Stage > len(c.bounds) {
		return fmt.Errorf("fleet: checkpoint stage %d out of range", cp.Stage)
	}
	if cp.Complete || cp.Stage == len(c.bounds) {
		cp = cp.clone()
		cp.Stage = len(c.bounds)
		cp.Cursors = nil
		cp.Complete = true
		c.mu.Lock()
		c.resume = cp
		c.mu.Unlock()
		return nil
	}
	if cp.Cursors != nil && len(cp.Cursors) != c.shards {
		return fmt.Errorf("fleet: checkpoint has %d cursors, campaign has %d shards", len(cp.Cursors), c.shards)
	}
	c.mu.Lock()
	c.resume = cp.clone()
	c.mu.Unlock()
	return nil
}

// saveState records the post-run checkpoint.
func (c *Campaign) saveState(stage int, st *stageState, agg *aggregator, complete bool) {
	cp := &Checkpoint{
		Target:   c.target,
		Devices:  len(c.devices),
		Shards:   c.shards,
		Bounds:   slices.Clone(c.bounds),
		Stage:    stage,
		Updated:  int(agg.updated.Load()),
		Failed:   int(agg.failed.Load()),
		Complete: complete,
	}
	if st != nil {
		cp.Cursors = make([]int, len(st.lanes))
		for s := range st.lanes {
			cp.Cursors[s] = st.lanes[s].next
		}
		cp.StageDone = int(st.done.Load())
		cp.StageFailed = int(st.failed.Load())
	}
	c.mu.Lock()
	c.last = cp
	c.mu.Unlock()
}
