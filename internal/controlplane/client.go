package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"upkit/internal/httpapi"
)

// Client drives the campaign API over HTTP — the operator's (and the
// load harness's -api mode's) view of the control plane. The zero
// value is unusable; set Base to the server root (http://host:port).
type Client struct {
	// Base is the server root, without the /api/v1 prefix.
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one API request and decodes the JSON response into out,
// turning enveloped errors into Go errors.
func (c *Client) do(method, path string, body, out any) error {
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("controlplane: %s %s: HTTP %d: %s",
			method, path, resp.StatusCode, httpapi.DecodeError(resp))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("controlplane: %s %s: decode: %w", method, path, err)
	}
	return nil
}

// Create submits a campaign definition; unless req.Paused the campaign
// starts immediately.
func (c *Client) Create(req CreateRequest) (*Status, error) {
	st := &Status{}
	if err := c.do(http.MethodPost, "/api/v1/campaigns", req, st); err != nil {
		return nil, err
	}
	return st, nil
}

// List fetches every campaign's status, oldest first.
func (c *Client) List() ([]Status, error) {
	var out []Status
	if err := c.do(http.MethodGet, "/api/v1/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Get fetches one campaign's status (live progress while it runs).
func (c *Client) Get(id string) (*Status, error) {
	st := &Status{}
	if err := c.do(http.MethodGet, "/api/v1/campaigns/"+id, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Pause halts a running campaign; the returned status reflects the
// drained, checkpointed state.
func (c *Client) Pause(id string) (*Status, error) {
	st := &Status{}
	if err := c.do(http.MethodPost, "/api/v1/campaigns/"+id+"/pause", nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Resume restarts a paused, interrupted, aborted, or pending campaign
// from its checkpoint.
func (c *Client) Resume(id string) (*Status, error) {
	st := &Status{}
	if err := c.do(http.MethodPost, "/api/v1/campaigns/"+id+"/resume", nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Abort cancels a running campaign.
func (c *Client) Abort(id string) (*Status, error) {
	st := &Status{}
	if err := c.do(http.MethodPost, "/api/v1/campaigns/"+id+"/abort", nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// DeviceHistory fetches one device's attempt history within a
// campaign.
func (c *Client) DeviceHistory(id string, device uint32) ([]Attempt, error) {
	var out []Attempt
	path := fmt.Sprintf("/api/v1/campaigns/%s/devices/%d", id, device)
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitTerminal polls Get every interval (default 50ms) until the
// campaign leaves StateRunning, returning the final status. poll, if
// non-nil, observes every intermediate status — live progress for a
// caller that wants to print it.
func (c *Client) WaitTerminal(id string, interval time.Duration, poll func(*Status)) (*Status, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Get(id)
		if err != nil {
			return nil, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		if poll != nil {
			poll(st)
		}
		time.Sleep(interval)
	}
}
