package controlplane

import (
	"errors"
	"net/http"
	"strconv"

	"upkit/internal/fleet"
	"upkit/internal/httpapi"
)

// maxCreateBody bounds the campaign-definition JSON on POST
// /api/v1/campaigns.
const maxCreateBody = 1 << 20

// Register mounts the control plane on a shared route table, so the
// campaign API answers with the same error envelope, 405+Allow, and
// 404 discipline as every other /api/v1 endpoint.
func (m *Manager) Register(t *httpapi.Table) {
	t.HandleFunc(http.MethodPost, "/api/v1/campaigns", m.handleCreate)
	t.HandleFunc(http.MethodGet, "/api/v1/campaigns", m.handleList)
	t.HandleFunc(http.MethodGet, "/api/v1/campaigns/{id}", m.handleGet)
	t.HandleFunc(http.MethodPost, "/api/v1/campaigns/{id}/pause", m.handlePause)
	t.HandleFunc(http.MethodPost, "/api/v1/campaigns/{id}/resume", m.handleResume)
	t.HandleFunc(http.MethodPost, "/api/v1/campaigns/{id}/abort", m.handleAbort)
	t.HandleFunc(http.MethodGet, "/api/v1/campaigns/{id}/devices/{device}", m.handleDeviceHistory)
}

// writeCampaignError maps control-plane errors onto the envelope.
func writeCampaignError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, err.Error())
	case errors.Is(err, ErrNotPausable), errors.Is(err, ErrNotResumable),
		errors.Is(err, fleet.ErrAlreadyRunning):
		httpapi.WriteError(w, http.StatusConflict, httpapi.CodeConflict, err.Error())
	case errors.Is(err, ErrHistoryDisabled):
		httpapi.WriteError(w, http.StatusConflict, "history_disabled", err.Error())
	case errors.Is(err, ErrManagerClosed):
		httpapi.WriteError(w, http.StatusServiceUnavailable, "shutting_down", err.Error())
	default:
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
	}
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !httpapi.DecodeJSON(w, r, maxCreateBody, &req) {
		return
	}
	st, err := m.Create(req)
	if err != nil {
		writeCampaignError(w, err)
		return
	}
	w.Header().Set("Location", "/api/v1/campaigns/"+st.ID)
	httpapi.WriteJSON(w, http.StatusCreated, st)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	httpapi.WriteJSON(w, http.StatusOK, m.List())
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeCampaignError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (m *Manager) handlePause(w http.ResponseWriter, r *http.Request) {
	st, err := m.Pause(r.PathValue("id"))
	if err != nil {
		writeCampaignError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (m *Manager) handleResume(w http.ResponseWriter, r *http.Request) {
	st, err := m.Resume(r.PathValue("id"))
	if err != nil {
		writeCampaignError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (m *Manager) handleAbort(w http.ResponseWriter, r *http.Request) {
	st, err := m.Abort(r.PathValue("id"))
	if err != nil {
		writeCampaignError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, st)
}

func (m *Manager) handleDeviceHistory(w http.ResponseWriter, r *http.Request) {
	// Accept decimal or 0x-prefixed hex, matching how device IDs are
	// printed elsewhere (reports use %#x).
	dev, err := strconv.ParseUint(r.PathValue("device"), 0, 32)
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"bad device id: "+err.Error())
		return
	}
	hist, err := m.DeviceHistory(r.PathValue("id"), uint32(dev))
	if err != nil {
		writeCampaignError(w, err)
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, hist)
}
