// Package controlplane turns fleet campaigns into server-managed HTTP
// resources: an operator creates a campaign from a device census and a
// rollout policy, watches live per-stage progress, pauses, resumes,
// and aborts it — all over /api/v1/campaigns — and can pull any
// device's attempt history afterwards.
//
// The package wraps internal/fleet, which owns the hard scheduling
// problems (sharded lanes, exact cursors, breaker); the control plane
// adds what an operator-facing service needs on top:
//
//   - Lifecycle state that survives the process. Every transition
//     writes a small meta JSON (atomic tmp+rename) carrying the
//     campaign's definition and its latest fleet.Checkpoint, so a
//     restarted server lists the same campaigns and resumes a paused
//     one with exactly-once re-dispatch — the checkpoint's shard
//     cursors are exact completed prefixes, and the deterministic
//     census rebuilds an identical fleet to apply them to.
//   - Per-device attempt history in a CRC-framed append-only log
//     (same framing discipline as the release store and the device's
//     reception journal): a crash tears at most the final record, and
//     a torn tail fails its CRC instead of corrupting replay.
//   - A census registry. A census names a device source ("sim" is
//     built in, backed by internal/simdev) plus its parameters; the
//     source must be deterministic so resume-after-restart sees the
//     same fleet.
package controlplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"upkit/internal/fleet"
	"upkit/internal/simdev"
)

// Campaign lifecycle states.
const (
	// StatePending: created but never run (CreateRequest.Paused).
	StatePending = "pending"
	// StateRunning: a run is in flight.
	StateRunning = "running"
	// StatePaused: halted by pause; checkpoint persisted, resumable.
	StatePaused = "paused"
	// StateInterrupted: the process died mid-run; the campaign resumes
	// from its last persisted checkpoint (possibly from scratch).
	StateInterrupted = "interrupted"
	// StateAborted: halted by a stage gate, the breaker, or an abort
	// request; checkpoint persisted, resumable.
	StateAborted = "aborted"
	// StateCompleted: every device reached a terminal outcome.
	StateCompleted = "completed"
	// StateFailed: the run returned an unexpected error.
	StateFailed = "failed"
)

// Control-plane errors.
var (
	ErrNotFound        = errors.New("controlplane: no such campaign")
	ErrManagerClosed   = errors.New("controlplane: manager is closed")
	ErrNotResumable    = errors.New("controlplane: campaign is not resumable")
	ErrNotPausable     = errors.New("controlplane: campaign is not running")
	ErrHistoryDisabled = errors.New("controlplane: per-device history disabled for this fleet size")
)

// Config sizes a Manager.
type Config struct {
	// Dir is the persistence root; one meta JSON and one history log
	// per campaign. Empty disables durability: campaigns live only as
	// long as the process.
	Dir string
	// MaxDevices bounds a single campaign's census; default 2,000,000.
	MaxDevices int
	// MaxHistoryDevices bounds per-device history: fleets larger than
	// this run without attempt history (the history index is O(fleet)).
	// Default 100,000.
	MaxHistoryDevices int
}

func (c *Config) applyDefaults() {
	if c.MaxDevices <= 0 {
		c.MaxDevices = 2_000_000
	}
	if c.MaxHistoryDevices <= 0 {
		c.MaxHistoryDevices = 100_000
	}
}

// Census names the device population a campaign rolls over: a
// registered source plus its parameters. Sources must be deterministic
// in their parameters — resume-after-restart rebuilds the fleet from
// the census and applies the checkpoint's cursors to it.
type Census struct {
	// Source is the registered source name; "sim" is built in.
	Source string `json:"source"`
	// Devices is the fleet size.
	Devices int `json:"devices"`
	// FailRate, for "sim", is the fraction of devices that fail every
	// attempt (spread deterministically).
	FailRate float64 `json:"fail_rate,omitempty"`
	// SimLatencyNS, for "sim", is the simulated per-attempt service
	// time in nanoseconds.
	SimLatencyNS int64 `json:"sim_latency_ns,omitempty"`
}

// Source builds a census's device fleet.
type Source func(Census) ([]fleet.Updater, error)

// CreateRequest is the body of POST /api/v1/campaigns.
type CreateRequest struct {
	// Name is a free-form operator label.
	Name string `json:"name,omitempty"`
	// Target is the firmware version the campaign rolls the fleet to.
	Target uint16 `json:"target"`
	Census Census `json:"census"`
	// Policy is the rollout policy (stages, breaker, retries — see
	// fleet.Policy's JSON form). The zero policy is one full-fleet wave.
	Policy fleet.Policy `json:"policy"`
	// Paused creates the campaign without starting it.
	Paused bool `json:"paused,omitempty"`
}

// Status is a campaign's externally visible state — the body of
// GET /api/v1/campaigns/{id} and the elements of the list response.
type Status struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Target      uint16 `json:"target"`
	State       string `json:"state"`
	AbortReason string `json:"abort_reason,omitempty"`
	Census      Census `json:"census"`
	CreatedUnix int64  `json:"created_unix"`
	UpdatedUnix int64  `json:"updated_unix"`
	// Progress is the live per-stage snapshot while running, the
	// checkpointed one otherwise.
	Progress fleet.Progress `json:"progress"`
}

// meta is the persisted half of a campaign: everything needed to list
// it, resume it, and rebuild its fleet after a restart.
type meta struct {
	ID          string            `json:"id"`
	Name        string            `json:"name,omitempty"`
	Target      uint16            `json:"target"`
	Census      Census            `json:"census"`
	Policy      fleet.Policy      `json:"policy"`
	State       string            `json:"state"`
	AbortReason string            `json:"abort_reason,omitempty"`
	CreatedUnix int64             `json:"created_unix"`
	UpdatedUnix int64             `json:"updated_unix"`
	Checkpoint  *fleet.Checkpoint `json:"checkpoint,omitempty"`
}

// campaign is one managed campaign: persisted meta plus the in-flight
// run machinery.
type campaign struct {
	m *Manager

	mu   sync.Mutex
	meta meta
	// fc is the fleet campaign of the most recent run; nil before the
	// first run of this process lifetime.
	fc      *fleet.Campaign
	hist    *history
	running bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// Manager owns the campaign set: creation, lifecycle transitions,
// persistence, and the census source registry.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	camps   map[string]*campaign
	seq     int
	sources map[string]Source
	closed  bool
}

// NewManager opens a manager rooted at cfg.Dir (creating it if
// needed), reloading every persisted campaign. Campaigns that were
// running when the process died come back as StateInterrupted,
// resumable from their last persisted checkpoint.
func NewManager(cfg Config) (*Manager, error) {
	cfg.applyDefaults()
	m := &Manager{
		cfg:     cfg,
		camps:   make(map[string]*campaign),
		sources: make(map[string]Source),
	}
	m.sources["sim"] = simSource
	if cfg.Dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("controlplane: state dir: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("controlplane: state dir: %w", err)
	}
	for _, e := range entries {
		id, ok := idFromMetaName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		if err := m.loadCampaign(id); err != nil {
			return nil, fmt.Errorf("controlplane: load %s: %w", id, err)
		}
	}
	return m, nil
}

// RegisterSource adds a census source under name; registering a
// built-in or already-registered name panics (a silently shadowed
// census would resume against the wrong fleet).
func (m *Manager) RegisterSource(name string, src Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sources[name]; ok {
		panic("controlplane: duplicate census source " + name)
	}
	m.sources[name] = src
}

// simSource is the built-in synthetic census.
func simSource(c Census) ([]fleet.Updater, error) {
	return simdev.Build(c.Devices, c.FailRate, time.Duration(c.SimLatencyNS)), nil
}

// metaName renders a campaign's meta file name.
func metaName(id string) string { return id + ".json" }

// histName renders a campaign's history log file name.
func histName(id string) string { return id + ".hist" }

// idFromMetaName parses the campaign ID out of a meta file name.
func idFromMetaName(name string) (string, bool) {
	id, ok := strings.CutSuffix(name, ".json")
	if !ok || !strings.HasPrefix(id, "c-") {
		return "", false
	}
	return id, true
}

// loadCampaign reloads one persisted campaign into the manager.
func (m *Manager) loadCampaign(id string) error {
	blob, err := os.ReadFile(filepath.Join(m.cfg.Dir, metaName(id)))
	if err != nil {
		return err
	}
	var mt meta
	if err := json.Unmarshal(blob, &mt); err != nil {
		return fmt.Errorf("parse meta: %w", err)
	}
	if mt.ID != id {
		return fmt.Errorf("meta names %q", mt.ID)
	}
	if mt.State == StateRunning {
		// The process died mid-run: the last persisted checkpoint (from
		// the preceding pause, or none) is all that survives.
		mt.State = StateInterrupted
	}
	c := &campaign{m: m, meta: mt}
	var err2 error
	c.hist, err2 = openHistory(m.histPath(id), m.historyEnabled(mt.Census))
	if err2 != nil {
		return err2
	}
	if n := seqFromID(id); n > m.seq {
		m.seq = n
	}
	m.camps[id] = c
	return nil
}

// seqFromID extracts the numeric suffix of a campaign ID, 0 if none.
func seqFromID(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "c-"))
	if err != nil {
		return 0
	}
	return n
}

// histPath is the campaign's history log path, "" when memory-only.
func (m *Manager) histPath(id string) string {
	if m.cfg.Dir == "" {
		return ""
	}
	return filepath.Join(m.cfg.Dir, histName(id))
}

// historyEnabled reports whether a census's fleet is small enough for
// per-device attempt history.
func (m *Manager) historyEnabled(c Census) bool {
	return c.Devices <= m.cfg.MaxHistoryDevices
}

// Create registers a new campaign and, unless req.Paused, starts it.
func (m *Manager) Create(req CreateRequest) (*Status, error) {
	if req.Census.Devices <= 0 {
		return nil, fmt.Errorf("controlplane: census must name a positive device count")
	}
	if req.Census.Devices > m.cfg.MaxDevices {
		return nil, fmt.Errorf("controlplane: census of %d devices exceeds the %d-device bound",
			req.Census.Devices, m.cfg.MaxDevices)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	src, ok := m.sources[req.Census.Source]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("controlplane: unknown census source %q", req.Census.Source)
	}
	m.seq++
	id := fmt.Sprintf("c-%06d", m.seq)
	m.mu.Unlock()

	now := time.Now().Unix()
	c := &campaign{m: m, meta: meta{
		ID:          id,
		Name:        req.Name,
		Target:      req.Target,
		Census:      req.Census,
		Policy:      req.Policy,
		State:       StatePending,
		CreatedUnix: now,
		UpdatedUnix: now,
	}}
	var err error
	c.hist, err = openHistory(m.histPath(id), m.historyEnabled(req.Census))
	if err != nil {
		return nil, err
	}
	// Validate the definition by building the campaign once before it
	// becomes visible: a census or policy the fleet rejects must fail
	// the create, not leave a stillborn resource behind. (The reserved
	// ID is burnt on failure, which only costs a gap in the sequence.)
	if _, err := m.buildFleet(src, c, nil); err != nil {
		c.hist.close()
		if c.m.cfg.Dir != "" {
			os.Remove(m.histPath(id))
		}
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.hist.close()
		return nil, ErrManagerClosed
	}
	m.camps[id] = c
	m.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.persistLocked(); err != nil {
		return nil, err
	}
	if !req.Paused {
		if err := c.startLocked(src); err != nil {
			return nil, err
		}
	}
	return c.statusLocked(), nil
}

// buildFleet turns a campaign definition into a runnable
// fleet.Campaign, wiring the history hook and restoring cp if given.
func (m *Manager) buildFleet(src Source, c *campaign, cp *fleet.Checkpoint) (*fleet.Campaign, error) {
	ups, err := src(c.meta.Census)
	if err != nil {
		return nil, fmt.Errorf("controlplane: census %q: %w", c.meta.Census.Source, err)
	}
	if len(ups) != c.meta.Census.Devices {
		return nil, fmt.Errorf("controlplane: census %q built %d devices, wants %d",
			c.meta.Census.Source, len(ups), c.meta.Census.Devices)
	}
	pol := c.meta.Policy
	// Per-device records would be O(fleet) in the report; the control
	// plane streams them into the history log instead.
	pol.MaxResults = -1
	pol.OnResult = c.hist.record
	fc, err := fleet.New(c.meta.Target, pol, ups)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		if err := fc.Restore(cp); err != nil {
			return nil, err
		}
	}
	return fc, nil
}

// get looks a campaign up.
func (m *Manager) get(id string) (*campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.camps[id]
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// Get reports one campaign's status.
func (m *Manager) Get(id string) (*Status, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(), nil
}

// List reports every campaign, oldest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	camps := make([]*campaign, 0, len(m.camps))
	for _, c := range m.camps {
		camps = append(camps, c)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(camps))
	for _, c := range camps {
		c.mu.Lock()
		out = append(out, *c.statusLocked())
		c.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Pause halts a running campaign: dispatch stops, devices already in
// flight finish their current attempt, everything unattempted stays
// pending. Pause waits for the run to drain and persists the resume
// checkpoint before returning — a success from pause means the
// checkpoint is durable.
func (m *Manager) Pause(id string) (*Status, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if !c.running || c.fc == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (state %s)", ErrNotPausable, c.meta.State)
	}
	fc, done := c.fc, c.done
	c.mu.Unlock()
	if err := fc.Pause(); err != nil && !errors.Is(err, fleet.ErrNotRunning) {
		return nil, err
	}
	<-done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(), nil
}

// Abort cancels a running campaign: unattempted devices are marked
// skipped and the persisted checkpoint re-schedules them on resume.
func (m *Manager) Abort(id string) (*Status, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if !c.running || c.cancel == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (state %s)", ErrNotPausable, c.meta.State)
	}
	cancel, done := c.cancel, c.done
	c.mu.Unlock()
	cancel()
	<-done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(), nil
}

// Resume restarts a paused, interrupted, aborted, or pending campaign
// from its persisted checkpoint. The census rebuilds the fleet and the
// checkpoint's exact shard cursors guarantee completed devices are not
// re-dispatched.
func (m *Manager) Resume(id string) (*Status, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	src := m.sources[c.meta.Census.Source]
	m.mu.Unlock()
	if src == nil {
		return nil, fmt.Errorf("controlplane: census source %q is not registered", c.meta.Census.Source)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.meta.State {
	case StatePending, StatePaused, StateInterrupted, StateAborted:
	default:
		return nil, fmt.Errorf("%w (state %s)", ErrNotResumable, c.meta.State)
	}
	if c.running {
		return nil, fleet.ErrAlreadyRunning
	}
	if err := c.startLocked(src); err != nil {
		return nil, err
	}
	return c.statusLocked(), nil
}

// DeviceHistory reports every recorded attempt outcome for one device
// of one campaign, oldest first.
func (m *Manager) DeviceHistory(id string, device uint32) ([]Attempt, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	return c.hist.device(device)
}

// Close aborts in-flight runs, waits for them to persist their
// checkpoints, and closes every history log. Campaigns persist; a new
// manager over the same directory serves them again.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	camps := make([]*campaign, 0, len(m.camps))
	for _, c := range m.camps {
		camps = append(camps, c)
	}
	m.mu.Unlock()
	var first error
	for _, c := range camps {
		c.mu.Lock()
		cancel, done := c.cancel, c.done
		running := c.running
		c.mu.Unlock()
		if running && cancel != nil {
			cancel()
			<-done
		}
		c.mu.Lock()
		if err := c.hist.close(); err != nil && first == nil {
			first = err
		}
		c.mu.Unlock()
	}
	return first
}

// startLocked launches a run; c.mu must be held.
func (c *campaign) startLocked(src Source) error {
	fc, err := c.m.buildFleet(src, c, c.meta.Checkpoint)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	c.fc, c.cancel, c.done = fc, cancel, done
	c.running = true
	c.meta.State = StateRunning
	c.meta.AbortReason = ""
	if err := c.persistLocked(); err != nil {
		cancel()
		c.running = false
		return err
	}
	go c.run(ctx, fc, done)
	return nil
}

// run drives one campaign run to its end state and persists the
// outcome. It owns the transition out of StateRunning.
func (c *campaign) run(ctx context.Context, fc *fleet.Campaign, done chan struct{}) {
	defer close(done)
	report, err := fc.RunContext(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.running = false
	c.cancel = nil
	c.meta.Checkpoint = fc.Checkpoint()
	switch {
	case err == nil:
		c.meta.State = StateCompleted
	case errors.Is(err, fleet.ErrCampaignPaused):
		c.meta.State = StatePaused
	case errors.Is(err, fleet.ErrCampaignAborted), errors.Is(err, context.Canceled):
		c.meta.State = StateAborted
		if report != nil {
			c.meta.AbortReason = report.AbortReason
		}
	default:
		c.meta.State = StateFailed
		c.meta.AbortReason = err.Error()
	}
	// History first: the meta's state must never claim more than the
	// durable log holds.
	c.hist.sync()
	if err := c.persistLocked(); err != nil {
		c.meta.State = StateFailed
		c.meta.AbortReason = "persist: " + err.Error()
	}
}

// statusLocked renders the campaign's Status; c.mu must be held.
func (c *campaign) statusLocked() *Status {
	st := &Status{
		ID:          c.meta.ID,
		Name:        c.meta.Name,
		Target:      c.meta.Target,
		State:       c.meta.State,
		AbortReason: c.meta.AbortReason,
		Census:      c.meta.Census,
		CreatedUnix: c.meta.CreatedUnix,
		UpdatedUnix: c.meta.UpdatedUnix,
	}
	switch {
	case c.fc != nil:
		st.Progress = c.fc.Progress()
	case c.meta.Checkpoint != nil:
		st.Progress = progressFromCheckpoint(c.meta.Target, c.meta.Checkpoint)
	default:
		st.Progress = fleet.Progress{
			Target:  c.meta.Target,
			Devices: c.meta.Census.Devices,
			Pending: c.meta.Census.Devices,
		}
	}
	return st
}

// progressFromCheckpoint derives a Progress for a campaign whose fleet
// is not materialized this process lifetime (loaded from disk, never
// resumed).
func progressFromCheckpoint(target uint16, cp *fleet.Checkpoint) fleet.Progress {
	return fleet.Progress{
		Target:  target,
		Devices: cp.Devices,
		Updated: cp.Updated,
		Failed:  cp.Failed,
		Pending: cp.Devices - cp.Updated - cp.Failed,
		Stage:   cp.Stage,
	}
}

// persistLocked writes the campaign's meta JSON atomically (temp file,
// fsync, rename, fsync directory); c.mu must be held. Memory-only
// managers skip the disk.
func (c *campaign) persistLocked() error {
	c.meta.UpdatedUnix = time.Now().Unix()
	if c.m.cfg.Dir == "" {
		return nil
	}
	blob, err := json.MarshalIndent(&c.meta, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(c.m.cfg.Dir, metaName(c.meta.ID))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(c.m.cfg.Dir)
}

// syncDir fsyncs a directory so renames and creations in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
