package controlplane

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"upkit/internal/fleet"
	"upkit/internal/httpapi"
	"upkit/internal/simdev"
)

// serve mounts a manager on a fresh table behind a test server.
func serve(t *testing.T, m *Manager) (*httptest.Server, *Client) {
	t.Helper()
	table := httpapi.NewTable()
	m.Register(table)
	ts := httptest.NewServer(table)
	t.Cleanup(ts.Close)
	return ts, &Client{Base: ts.URL, HTTP: ts.Client()}
}

// simCreate is the request used across tests: a staged rollout over a
// deterministic sim fleet, slow enough per attempt that a pause lands
// mid-run.
func simCreate(devices int, latency time.Duration) CreateRequest {
	return CreateRequest{
		Name:   "test rollout",
		Target: 2,
		Census: Census{
			Source:       "sim",
			Devices:      devices,
			FailRate:     0.02,
			SimLatencyNS: int64(latency),
		},
		Policy: fleet.Policy{
			Stages:               []float64{0.1, 0.5, 1},
			MaxCanaryFailureRate: 0.1,
			Parallelism:          8,
		},
	}
}

// expectFailures counts the deterministic failing population of a sim
// census.
func expectFailures(devices int, rate float64) int {
	n := 0
	for i := range devices {
		if simdev.Fails(i, rate) {
			n++
		}
	}
	return n
}

// TestLifecycleOverHTTP drives the full operator flow through the API:
// create → poll live progress → pause → kill the server process state
// → restart over the same directory → resume → complete. The final
// counts must equal an uninterrupted run's, and the device history
// must show exactly one terminal attempt per device — the
// exactly-once re-dispatch guarantee, observed across a real restart.
func TestLifecycleOverHTTP(t *testing.T) {
	const devices = 400
	dir := t.TempDir()

	// Baseline: the same campaign uninterrupted, memory-only.
	base, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	_, cb := serve(t, base)
	req := simCreate(devices, 0)
	bst, err := cb.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	bst, err = cb.WaitTerminal(bst.ID, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bst.State != StateCompleted {
		t.Fatalf("baseline state = %s (%s)", bst.State, bst.AbortReason)
	}
	wantFailed := expectFailures(devices, req.Census.FailRate)
	if bst.Progress.Failed != wantFailed || bst.Progress.Updated != devices-wantFailed {
		t.Fatalf("baseline counts = %+v, want %d updated / %d failed",
			bst.Progress, devices-wantFailed, wantFailed)
	}

	// The real run: durable manager, per-attempt latency so the pause
	// lands mid-campaign.
	m1, err := NewManager(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1, c1 := serve(t, m1)
	req = simCreate(devices, 2*time.Millisecond)
	st, err := c1.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning {
		t.Fatalf("created state = %s, want running", st.State)
	}
	id := st.ID

	// Live progress: poll until some devices completed.
	deadline := time.After(30 * time.Second)
	for {
		st, err = c1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Progress.Updated+st.Progress.Failed >= 20 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("campaign never progressed: %+v", st.Progress)
		case <-time.After(time.Millisecond):
		}
	}
	if !st.Progress.Running || st.Progress.ElapsedSeconds <= 0 {
		t.Fatalf("live progress not running: %+v", st.Progress)
	}

	st, err = c1.Pause(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == StateRunning {
		t.Fatalf("state after pause = %s", st.State)
	}
	pausedDone := st.Progress.Updated + st.Progress.Failed
	if st.State == StatePaused {
		if st.Progress.Pending == 0 {
			t.Fatalf("pause drained the whole fleet: %+v", st.Progress)
		}
		if st.Progress.Skipped != 0 {
			t.Fatalf("pause skipped %d devices; they must stay pending", st.Progress.Skipped)
		}
	}

	// Kill the process state: close the server and the manager. The
	// meta JSON + checkpoint + history log on disk are all that's left.
	ts1.Close()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, metaName(id))); err != nil {
		t.Fatalf("meta not persisted: %v", err)
	}

	// Restart over the same directory.
	m2, err := NewManager(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	_, c2 := serve(t, m2)
	list, err := c2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("restarted list = %+v", list)
	}
	st, err = c2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePaused && st.State != StateCompleted {
		t.Fatalf("restarted state = %s", st.State)
	}
	if got := st.Progress.Updated + st.Progress.Failed; got != pausedDone {
		t.Fatalf("restart lost progress: %d done, want %d", got, pausedDone)
	}

	if st.State == StatePaused {
		if _, err = c2.Resume(id); err != nil {
			t.Fatal(err)
		}
	}
	st, err = c2.WaitTerminal(id, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCompleted {
		t.Fatalf("final state = %s (%s)", st.State, st.AbortReason)
	}
	if st.Progress.Updated != bst.Progress.Updated || st.Progress.Failed != bst.Progress.Failed ||
		st.Progress.Pending != 0 {
		t.Fatalf("final counts %+v differ from uninterrupted run %+v", st.Progress, bst.Progress)
	}

	// Exactly-once re-dispatch: every device has exactly one terminal
	// attempt record across both runs, served from the replayed log.
	for i := range devices {
		dev := uint32(simdev.IDBase + i)
		hist, err := c2.DeviceHistory(id, dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != 1 {
			t.Fatalf("device %#x has %d attempt records, want 1: %+v", dev, len(hist), hist)
		}
		wantStatus := "updated"
		if simdev.Fails(i, req.Census.FailRate) {
			wantStatus = "failed"
		}
		if hist[0].Status != wantStatus {
			t.Fatalf("device %#x status = %s, want %s", dev, hist[0].Status, wantStatus)
		}
	}
}

func TestCreateRejectsBadDefinitions(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, c := serve(t, m)

	cases := []CreateRequest{
		{Target: 2, Census: Census{Source: "warehouse-42", Devices: 10}},
		{Target: 2, Census: Census{Source: "sim", Devices: 0}},
		{Target: 2, Census: Census{Source: "sim", Devices: 10},
			Policy: fleet.Policy{Stages: []float64{0.5, 0.2}}},
	}
	for i, req := range cases {
		if _, err := c.Create(req); err == nil {
			t.Fatalf("case %d: create accepted a bad definition", i)
		}
	}
	if list, _ := c.List(); len(list) != 0 {
		t.Fatalf("failed creates left campaigns behind: %+v", list)
	}
}

func TestLifecycleConflicts(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, c := serve(t, m)

	if _, err := c.Get("c-999999"); err == nil {
		t.Fatal("get of unknown campaign succeeded")
	}
	req := simCreate(50, 0)
	req.Census.FailRate = 0 // a 5-device canary can't absorb any failure
	st, err := c.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.WaitTerminal(st.ID, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCompleted {
		t.Fatalf("state = %s", st.State)
	}
	if _, err := c.Pause(st.ID); err == nil {
		t.Fatal("pause of a completed campaign succeeded")
	}
	if _, err := c.Resume(st.ID); err == nil {
		t.Fatal("resume of a completed campaign succeeded")
	}
}

func TestPendingCreateAndAbort(t *testing.T) {
	m, err := NewManager(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, c := serve(t, m)

	req := simCreate(200, 2*time.Millisecond)
	req.Paused = true
	st, err := c.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending || st.Progress.Pending != 200 {
		t.Fatalf("paused create = %+v", st)
	}
	if st, err = c.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning {
		t.Fatalf("state after resume = %s", st.State)
	}
	if st, err = c.Abort(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != StateAborted && st.State != StateCompleted {
		t.Fatalf("state after abort = %s", st.State)
	}
	if st.State == StateAborted {
		// Aborted campaigns resume from their checkpoint too.
		if _, err := c.Resume(st.ID); err != nil {
			t.Fatal(err)
		}
		if st, err = c.WaitTerminal(st.ID, time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
		if st.State != StateCompleted || st.Progress.Pending != 0 {
			t.Fatalf("resumed-after-abort = %+v", st)
		}
	}
}

func TestHistoryDisabledPastBound(t *testing.T) {
	m, err := NewManager(Config{MaxHistoryDevices: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, c := serve(t, m)
	st, err := c.Create(simCreate(50, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.WaitTerminal(st.ID, time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeviceHistory(st.ID, simdev.IDBase); err == nil {
		t.Fatal("history served past the device bound")
	}
	if _, err := m.DeviceHistory(st.ID, simdev.IDBase); !errors.Is(err, ErrHistoryDisabled) {
		t.Fatalf("err = %v, want ErrHistoryDisabled", err)
	}
}

func TestHistoryTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c-000001.hist")
	h, err := openHistory(path, true)
	if err != nil {
		t.Fatal(err)
	}
	h.record(fleet.Result{DeviceID: 1, Status: fleet.StatusUpdated, Version: 2, Attempts: 1})
	h.record(fleet.Result{DeviceID: 2, Status: fleet.StatusFailed, Version: 1, Attempts: 3,
		Err: errors.New("boom")})
	if err := h.close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a crash mid-append leaves a partial record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x50, 0x43, 0x48, 0x00, 0x00, 0x00, 0x30, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h2, err := openHistory(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.close()
	got, err := h2.device(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Status != "failed" || got[0].Error != "boom" || got[0].Attempts != 3 {
		t.Fatalf("replayed attempt = %+v", got)
	}
	if one, _ := h2.device(1); len(one) != 1 || one[0].Status != "updated" {
		t.Fatalf("replayed device 1 = %+v", one)
	}
	// The torn tail is gone: appends after replay stay parseable.
	h2.record(fleet.Result{DeviceID: 3, Status: fleet.StatusUpdated, Version: 2, Attempts: 1})
	h2.sync()
	h3, err := openHistory(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer h3.close()
	if three, _ := h3.device(3); len(three) != 1 {
		t.Fatalf("post-truncate append lost: %+v", three)
	}
}
