package controlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"upkit/internal/fleet"
)

// history is one campaign's per-device attempt record: an in-memory
// index answering GET .../devices/{id}, backed (when the manager is
// durable) by a CRC-framed append-only log so the history survives a
// process restart.
//
// On-disk format, a sequence of records in completion order
// (big endian):
//
//	magic "UPCH" | len uint32 | payload (len bytes) | crc32
//
// where payload is one Attempt as JSON and the CRC covers magic,
// length, and payload — the same framing discipline as the release
// store (internal/updateserver/filestore.go) and the device's
// reception journal, for the same reason: a crash tears at most the
// record being written, and a torn record fails its CRC instead of
// corrupting replay.
//
// Unlike the release store, appends are buffered: a campaign emits one
// record per device attempt and an fsync per record would gate the
// scheduler on the disk. The log is flushed and fsynced at every
// lifecycle edge that persists a checkpoint (pause, abort, completion,
// close), so the durable history is always at least as complete as the
// checkpoint that references it — a crash between edges loses only
// records the checkpoint doesn't claim either.
type history struct {
	mu sync.Mutex
	// byDev is the replayable index; nil when history is disabled for
	// the fleet size.
	byDev map[uint32][]Attempt
	f     *os.File // nil when memory-only or disabled
	buf   []byte   // pending encoded records
}

// Attempt is one terminal device outcome within a campaign run.
type Attempt struct {
	Device uint32 `json:"device"`
	// Status is the outcome: "updated", "failed", or "skipped".
	Status string `json:"status"`
	// Version is the device's version after the attempt.
	Version uint16 `json:"version"`
	// Attempts is how many tries the device consumed this run.
	Attempts int `json:"attempts"`
	// Error is the last error for failed devices.
	Error string `json:"error,omitempty"`
	// Unix is the completion time (seconds).
	Unix int64 `json:"unix"`
}

const (
	histRecMagic  uint32 = 0x55504348 // "UPCH"
	histRecHeader        = 4 + 4
	// histMaxRecord bounds a record during replay: anything larger is
	// corruption, not an allocation request.
	histMaxRecord = 1 << 20
	// histFlushBytes caps the append buffer between lifecycle syncs.
	histFlushBytes = 256 << 10
)

// openHistory opens (or creates) a campaign's history. path=="" keeps
// it memory-only; enabled==false disables it entirely (fleets past the
// manager's history bound). Replay tolerates a torn tail record by
// truncating the log to its longest valid prefix.
func openHistory(path string, enabled bool) (*history, error) {
	h := &history{}
	if !enabled {
		return h, nil
	}
	h.byDev = make(map[uint32][]Attempt)
	if path == "" {
		return h, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controlplane: history log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("controlplane: history log: %w", err)
	}
	valid := 0
	for valid < len(data) {
		a, n, ok := decodeAttempt(data[valid:])
		if !ok {
			break
		}
		h.byDev[a.Device] = append(h.byDev[a.Device], a)
		valid += n
	}
	if valid < len(data) {
		// Torn tail (or trailing garbage): truncate so the log is a
		// clean record sequence and future appends stay parseable.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	h.f = f
	return h, nil
}

// encodeAttempt frames one attempt as a log record.
func encodeAttempt(a Attempt) ([]byte, error) {
	payload, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	rec := make([]byte, 0, histRecHeader+len(payload)+4)
	rec = binary.BigEndian.AppendUint32(rec, histRecMagic)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	return rec, nil
}

// decodeAttempt parses the record starting at buf, returning ok=false
// when the record is incomplete or fails its CRC — at the tail of a
// log, the signature of a write torn by a crash.
func decodeAttempt(buf []byte) (Attempt, int, bool) {
	var a Attempt
	if len(buf) < histRecHeader {
		return a, 0, false
	}
	if binary.BigEndian.Uint32(buf) != histRecMagic {
		return a, 0, false
	}
	n := int(binary.BigEndian.Uint32(buf[4:]))
	if n <= 0 || n > histMaxRecord {
		return a, 0, false
	}
	total := histRecHeader + n + 4
	if len(buf) < total {
		return a, 0, false
	}
	body := buf[:histRecHeader+n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[histRecHeader+n:]) {
		return a, 0, false
	}
	if err := json.Unmarshal(body[histRecHeader:], &a); err != nil {
		return a, 0, false
	}
	return a, total, true
}

// record is the fleet.Policy.OnResult hook: index the outcome and
// stage its log record. Called concurrently from campaign workers.
func (h *history) record(res fleet.Result) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.byDev == nil {
		return
	}
	a := Attempt{
		Device:   res.DeviceID,
		Status:   res.Status.String(),
		Version:  res.Version,
		Attempts: res.Attempts,
		Unix:     time.Now().Unix(),
	}
	if res.Err != nil {
		a.Error = res.Err.Error()
	}
	h.byDev[a.Device] = append(h.byDev[a.Device], a)
	if h.f == nil {
		return
	}
	rec, err := encodeAttempt(a)
	if err != nil {
		return
	}
	h.buf = append(h.buf, rec...)
	if len(h.buf) >= histFlushBytes {
		h.flushLocked(false)
	}
}

// flushLocked appends the staged records, optionally fsyncing; h.mu
// must be held.
func (h *history) flushLocked(sync bool) {
	if h.f == nil {
		return
	}
	if len(h.buf) > 0 {
		if _, err := h.f.Write(h.buf); err == nil {
			h.buf = h.buf[:0]
		}
	}
	if sync {
		_ = h.f.Sync()
	}
}

// sync makes the history durable up to every recorded attempt; called
// at the lifecycle edges that persist a checkpoint.
func (h *history) sync() {
	h.mu.Lock()
	h.flushLocked(true)
	h.mu.Unlock()
}

// device reports one device's attempts, oldest first.
func (h *history) device(dev uint32) ([]Attempt, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.byDev == nil {
		return nil, ErrHistoryDisabled
	}
	list := h.byDev[dev]
	out := make([]Attempt, len(list))
	copy(out, list)
	return out, nil
}

// close flushes and releases the log handle.
func (h *history) close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked(true)
	if h.f == nil {
		return nil
	}
	err := h.f.Close()
	h.f = nil
	return err
}
