// Package footprint implements the static memory model behind the
// paper's evaluation of flash and RAM usage (Tables I and II, Fig. 7).
//
// The paper's numbers are link-map sizes of C builds for three MCUs;
// those builds cannot be reproduced on this host, so the model sums
// per-component sizes instead:
//
//   - Component sizes the paper itself reports are used verbatim
//     (pipeline module 1632 B flash / 2137 B RAM; memory module 2024 B
//     flash, §VI-A).
//   - Per-OS bases, network stacks, and crypto-library sizes are
//     calibrated so the totals reproduce every cell of Tables I and II
//     and the deltas of Fig. 7. The split between calibrated components
//     is our estimate; the totals and all cross-configuration
//     comparisons are the paper's.
//   - A small per-build residual absorbs compiler/linker variation the
//     component model cannot express (at most ~0.7 % of a build).
//
// Everything downstream — Fig. 7's comparisons, the ablation sweeps —
// derives structurally from these components, so removing or swapping a
// module changes totals the way relinking would.
package footprint

import (
	"fmt"

	"upkit/internal/platform"
)

// Size is a flash/RAM pair in bytes.
type Size struct {
	Flash int
	RAM   int
}

// Add returns the component-wise sum.
func (s Size) Add(o Size) Size { return Size{s.Flash + o.Flash, s.RAM + o.RAM} }

// Sub returns the component-wise difference.
func (s Size) Sub(o Size) Size { return Size{s.Flash - o.Flash, s.RAM - o.RAM} }

// Component is one linked module with its size contribution.
type Component struct {
	Name string
	Size Size
}

// Build is a linked firmware image: a named set of components plus a
// calibration residual.
type Build struct {
	Name       string
	Components []Component
	Residual   Size
}

// Total sums all components and the residual.
func (b Build) Total() Size {
	sum := b.Residual
	for _, c := range b.Components {
		sum = sum.Add(c.Size)
	}
	return sum
}

// Component returns the size of the named component, or false.
func (b Build) Component(name string) (Size, bool) {
	for _, c := range b.Components {
		if c.Name == name {
			return c.Size, true
		}
	}
	return Size{}, false
}

// Without returns a copy of the build with the named component removed
// (used by the ablation experiments).
func (b Build) Without(name string) Build {
	out := Build{Name: b.Name + " −" + name, Residual: b.Residual}
	for _, c := range b.Components {
		if c.Name != name {
			out.Components = append(out.Components, c)
		}
	}
	return out
}

// UpKit module sizes. Pipeline and memory-module flash are the paper's
// own numbers (§VI-A); the rest are calibrated estimates.
var (
	// sizeFSM is the update-agent finite-state machine (Fig. 4).
	sizeFSM = Size{Flash: 870, RAM: 210}
	// sizePipeline is the 4-stage pipeline; RAM is dominated by the
	// LZSS window buffer (§VI-A: 1632 B flash, 2137 B RAM).
	sizePipeline = Size{Flash: 1632, RAM: 2137}
	// sizeMemory is the memory module: slot handling plus the copy and
	// swap routines (§VI-A: 2024 B flash).
	sizeMemory = Size{Flash: 2024, RAM: 180}
	// sizeVerifier is the shared verifier module (§IV-D).
	sizeVerifier = Size{Flash: 1480, RAM: 320}
)

// cryptoSizes maps library name to linked size. TinyDTLS is ~1.1 kB
// smaller in flash than tinycrypt (Table I); CryptoAuthLib is smaller
// still because ECDSA runs on the ATECC508.
var cryptoSizes = map[string]Size{
	"tinydtls":      {Flash: 5200, RAM: 2080},
	"tinycrypt":     {Flash: 6310, RAM: 2080},
	"cryptoauthlib": {Flash: 3720, RAM: 1950},
}

// bootBase is the OS kernel + flash driver + startup code linked into
// the bootloader build.
var bootBase = map[platform.OS]Size{
	platform.Zephyr:  {Flash: 4340, RAM: 5600},
	platform.RIOT:    {Flash: 6720, RAM: 3932},
	platform.Contiki: {Flash: 6750, RAM: 4057},
}

// bootResiduals absorb per-cell linker variation of Table I.
var bootResiduals = map[platform.OS]map[string]Size{
	platform.Zephyr: {
		"tinydtls":  {Flash: -4, RAM: 0},
		"tinycrypt": {Flash: -3, RAM: 0},
	},
	platform.RIOT: {
		"tinydtls":  {Flash: -4, RAM: 0},
		"tinycrypt": {Flash: 18, RAM: 0},
	},
	platform.Contiki: {
		"tinydtls":      {Flash: 0, RAM: 0},
		"tinycrypt":     {Flash: -18, RAM: 0},
		"cryptoauthlib": {Flash: 104, RAM: 46},
	},
}

// UpKitBootloader models the bootloader build of Table I.
func UpKitBootloader(os platform.OS, lib string) (Build, error) {
	base, ok := bootBase[os]
	if !ok {
		return Build{}, fmt.Errorf("footprint: unknown OS %v", os)
	}
	crypto, ok := cryptoSizes[lib]
	if !ok {
		return Build{}, fmt.Errorf("footprint: unknown crypto library %q", lib)
	}
	if lib == "cryptoauthlib" && os != platform.Contiki {
		return Build{}, fmt.Errorf("footprint: CryptoAuthLib evaluated only on Contiki/CC2650 (§V)")
	}
	return Build{
		Name: fmt.Sprintf("upkit-bootloader/%s+%s", os, lib),
		Components: []Component{
			{"os-base", base},
			{"crypto:" + lib, crypto},
			{"memory-module", sizeMemory},
			{"verifier", sizeVerifier},
		},
		Residual: bootResiduals[os][lib],
	}, nil
}

// Agent network stacks: OS application base plus the pull (IPv6 +
// 6LoWPAN + CoAP) or push (BLE GATT) stack. Calibrated against
// Table II with the fixed UpKit agent core subtracted.
var (
	agentAppBase = map[platform.OS]Size{
		platform.Zephyr:  {Flash: 30000, RAM: 12000},
		platform.RIOT:    {Flash: 18000, RAM: 8000},
		platform.Contiki: {Flash: 12000, RAM: 5000},
	}
	agentPullStack = map[platform.OS]Size{
		platform.Zephyr:  {Flash: 177266, RAM: 58277}, // full IPv6 + Zoap
		platform.RIOT:    {Flash: 66574, RAM: 18317},  // GNRC + libcoap
		platform.Contiki: {Flash: 56239, RAM: 10007},  // uIP + er-coap
	}
	agentPushStack = map[platform.OS]Size{
		platform.Zephyr: {Flash: 40712, RAM: 4929}, // BLE GATT only
	}
)

// agentCore returns UpKit's own agent modules.
func agentCore(lib string) ([]Component, error) {
	crypto, ok := cryptoSizes[lib]
	if !ok {
		return nil, fmt.Errorf("footprint: unknown crypto library %q", lib)
	}
	return []Component{
		{"fsm", sizeFSM},
		{"pipeline", sizePipeline},
		{"memory-module", sizeMemory},
		{"verifier", sizeVerifier},
		{"crypto:" + lib, crypto},
	}, nil
}

// UpKitAgent models the update-agent build of Table II. The paper
// reports TinyDTLS builds; other libraries derive by component swap.
func UpKitAgent(os platform.OS, approach platform.Approach, lib string) (Build, error) {
	base, ok := agentAppBase[os]
	if !ok {
		return Build{}, fmt.Errorf("footprint: unknown OS %v", os)
	}
	var stack Size
	var stackName string
	switch approach {
	case platform.Pull:
		stack, ok = agentPullStack[os]
		stackName = "net:ipv6+coap"
	case platform.Push:
		stack, ok = agentPushStack[os]
		stackName = "net:ble-gatt"
	default:
		return Build{}, fmt.Errorf("footprint: unknown approach %v", approach)
	}
	if !ok {
		return Build{}, fmt.Errorf("footprint: %v agent not available on %v (the paper's push implementation is Zephyr-only, §V)", approach, os)
	}
	core, err := agentCore(lib)
	if err != nil {
		return Build{}, err
	}
	comps := append([]Component{
		{"os-base", base},
		{stackName, stack},
	}, core...)
	return Build{
		Name:       fmt.Sprintf("upkit-agent/%s+%s+%s", os, approach, lib),
		Components: comps,
	}, nil
}

// Portability shares of platform-independent code (§VI-A).
const (
	// BootloaderPortableShare: ~91 % of the bootloader code is
	// platform-independent.
	BootloaderPortableShare = 0.91
	// AgentPortableShare: on average 23.5 % of the agent code is
	// platform-specific.
	AgentPortableShare = 1 - 0.235
)
