package footprint

import "upkit/internal/platform"

// Baseline builds for Fig. 7. Each baseline is modelled with the same
// component vocabulary so the comparisons decompose: mcuboot and UpKit
// share the OS base and crypto library and differ in their own modules;
// LwM2M and mcumgr share the network stack with the corresponding UpKit
// agent configuration.

// MCUBootBootloader models mcuboot configured like Fig. 7a: Zephyr,
// ECDSA/secp256r1 + SHA-256 via tinycrypt. Its image-validation and
// swap machinery is larger than UpKit's memory + verifier modules by
// the paper's measured 1600 B flash / 716 B RAM.
func MCUBootBootloader() Build {
	return Build{
		Name: "mcuboot/zephyr+tinycrypt",
		Components: []Component{
			{"os-base", bootBase[platform.Zephyr]},
			{"crypto:tinycrypt", cryptoSizes["tinycrypt"]},
			{"bootutil-validate", Size{Flash: 2260, RAM: 610}},
			{"bootutil-swap", Size{Flash: 2844, RAM: 606}},
		},
		Residual: Size{Flash: -3, RAM: 0},
	}
}

// LwM2MAgent models the Zephyr LwM2M client of Fig. 7b with every
// non-update service disabled, as the paper does for fairness. It
// carries the same IPv6 + CoAP stack as UpKit's pull agent, but its
// M2M object machinery outweighs UpKit's update core by 4.8 kB flash
// and 2.4 kB RAM.
func LwM2MAgent() Build {
	return Build{
		Name: "lwm2m/zephyr+tinydtls",
		Components: []Component{
			{"os-base", agentAppBase[platform.Zephyr]},
			{"net:ipv6+coap", agentPullStack[platform.Zephyr]},
			{"lwm2m-engine", Size{Flash: 7210, RAM: 3530}},
			{"lwm2m-firmware-object", Size{Flash: 3596, RAM: 1717}},
			{"crypto:tinydtls", cryptoSizes["tinydtls"]},
		},
	}
}

// MCUMgrAgent models the Zephyr mcumgr SMP server of Fig. 7c with file
// system, logging, and OS-management groups disabled. It performs no
// verification, so no crypto library is linked; UpKit's push agent is
// still 426 B smaller in flash (mcumgr's SMP framing is heavy) while
// using 1200 B more RAM (the pipeline's LZSS window).
func MCUMgrAgent() Build {
	return Build{
		Name: "mcumgr/zephyr",
		Components: []Component{
			{"os-base", agentAppBase[platform.Zephyr]},
			{"net:ble-gatt", agentPushStack[platform.Zephyr]},
			{"smp-server", Size{Flash: 6104, RAM: 2112}},
			{"img-mgmt", Size{Flash: 5528, RAM: 1615}},
		},
	}
}

// Deltas the paper reports in Fig. 7, as helpers for tests and the
// experiment harness.

// Fig7aDelta returns mcuboot minus UpKit (Zephyr + tinycrypt
// bootloaders): the paper measured 1600 B flash and 716 B RAM.
func Fig7aDelta() (Size, error) {
	up, err := UpKitBootloader(platform.Zephyr, "tinycrypt")
	if err != nil {
		return Size{}, err
	}
	return MCUBootBootloader().Total().Sub(up.Total()), nil
}

// Fig7bDelta returns LwM2M minus UpKit (Zephyr pull agents): the paper
// measured 4.8 kB flash and 2.4 kB RAM.
func Fig7bDelta() (Size, error) {
	up, err := UpKitAgent(platform.Zephyr, platform.Pull, "tinydtls")
	if err != nil {
		return Size{}, err
	}
	return LwM2MAgent().Total().Sub(up.Total()), nil
}

// Fig7cDelta returns mcumgr minus UpKit (Zephyr push agents): the paper
// measured +426 B flash and −1200 B RAM.
func Fig7cDelta() (Size, error) {
	up, err := UpKitAgent(platform.Zephyr, platform.Push, "tinydtls")
	if err != nil {
		return Size{}, err
	}
	return MCUMgrAgent().Total().Sub(up.Total()), nil
}
