package footprint

import (
	"testing"

	"upkit/internal/platform"
)

// Table I of the paper: bootloader memory footprint.
func TestTableIBootloaderFootprint(t *testing.T) {
	cases := []struct {
		os    platform.OS
		lib   string
		flash int
		ram   int
	}{
		{platform.Zephyr, "tinydtls", 13040, 8180},
		{platform.Zephyr, "tinycrypt", 14151, 8180},
		{platform.RIOT, "tinydtls", 15420, 6512},
		{platform.RIOT, "tinycrypt", 16552, 6512},
		{platform.Contiki, "tinydtls", 15454, 6637},
		{platform.Contiki, "tinycrypt", 16546, 6637},
		{platform.Contiki, "cryptoauthlib", 14078, 6553},
	}
	for _, tc := range cases {
		t.Run(tc.os.String()+"+"+tc.lib, func(t *testing.T) {
			b, err := UpKitBootloader(tc.os, tc.lib)
			if err != nil {
				t.Fatal(err)
			}
			got := b.Total()
			if got.Flash != tc.flash || got.RAM != tc.ram {
				t.Fatalf("total = %d/%d, want %d/%d (Table I)", got.Flash, got.RAM, tc.flash, tc.ram)
			}
		})
	}
}

// Table II of the paper: update-agent memory footprint.
func TestTableIIAgentFootprint(t *testing.T) {
	cases := []struct {
		os       platform.OS
		approach platform.Approach
		flash    int
		ram      int
	}{
		{platform.Zephyr, platform.Pull, 218472, 75204},
		{platform.RIOT, platform.Pull, 95780, 31244},
		{platform.Contiki, platform.Pull, 79445, 19934},
		{platform.Zephyr, platform.Push, 81918, 21856},
	}
	for _, tc := range cases {
		t.Run(tc.os.String()+"+"+tc.approach.String(), func(t *testing.T) {
			b, err := UpKitAgent(tc.os, tc.approach, "tinydtls")
			if err != nil {
				t.Fatal(err)
			}
			got := b.Total()
			if got.Flash != tc.flash || got.RAM != tc.ram {
				t.Fatalf("total = %d/%d, want %d/%d (Table II)", got.Flash, got.RAM, tc.flash, tc.ram)
			}
		})
	}
}

// Fig. 7a: UpKit's bootloader is 1600 B flash / 716 B RAM smaller than
// mcuboot.
func TestFig7aMCUBootDelta(t *testing.T) {
	d, err := Fig7aDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Flash != 1600 || d.RAM != 716 {
		t.Fatalf("delta = %d/%d, want 1600/716", d.Flash, d.RAM)
	}
}

// Fig. 7b: UpKit's pull agent is 4.8 kB flash / 2.4 kB RAM smaller than
// LwM2M.
func TestFig7bLwM2MDelta(t *testing.T) {
	d, err := Fig7bDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Flash != 4800 || d.RAM != 2400 {
		t.Fatalf("delta = %d/%d, want 4800/2400", d.Flash, d.RAM)
	}
}

// Fig. 7c: UpKit's push agent is 426 B flash smaller but 1200 B RAM
// larger than mcumgr.
func TestFig7cMCUMgrDelta(t *testing.T) {
	d, err := Fig7cDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Flash != 426 || d.RAM != -1200 {
		t.Fatalf("delta = %d/%d, want 426/-1200", d.Flash, d.RAM)
	}
}

// Table I's within-row observations.
func TestTableIObservations(t *testing.T) {
	// TinyDTLS builds are ≈1.1 kB smaller than tinycrypt builds,
	// regardless of OS.
	for _, os := range platform.AllOSes() {
		td, err := UpKitBootloader(os, "tinydtls")
		if err != nil {
			t.Fatal(err)
		}
		tc, err := UpKitBootloader(os, "tinycrypt")
		if err != nil {
			t.Fatal(err)
		}
		delta := tc.Total().Flash - td.Total().Flash
		if delta < 1000 || delta > 1200 {
			t.Errorf("%v: tinycrypt−tinydtls = %d, want ≈1100", os, delta)
		}
	}
	// Zephyr's bootloader uses ~15% less flash but ~20% more RAM than
	// the others (§VI-A).
	z, _ := UpKitBootloader(platform.Zephyr, "tinydtls")
	r, _ := UpKitBootloader(platform.RIOT, "tinydtls")
	if z.Total().Flash >= r.Total().Flash {
		t.Error("Zephyr bootloader should be smallest in flash")
	}
	if z.Total().RAM <= r.Total().RAM {
		t.Error("Zephyr bootloader should use the most RAM")
	}
	// The HSM configuration is ~10% smaller than Contiki+TinyDTLS.
	cal, _ := UpKitBootloader(platform.Contiki, "cryptoauthlib")
	ctd, _ := UpKitBootloader(platform.Contiki, "tinydtls")
	saving := float64(ctd.Total().Flash-cal.Total().Flash) / float64(ctd.Total().Flash)
	if saving < 0.05 || saving > 0.15 {
		t.Errorf("HSM flash saving = %.1f%%, want ≈10%%", saving*100)
	}
}

// Table II's within-table observations (§VI-A).
func TestTableIIObservations(t *testing.T) {
	z, _ := UpKitAgent(platform.Zephyr, platform.Pull, "tinydtls")
	r, _ := UpKitAgent(platform.RIOT, platform.Pull, "tinydtls")
	c, _ := UpKitAgent(platform.Contiki, platform.Pull, "tinydtls")
	push, _ := UpKitAgent(platform.Zephyr, platform.Push, "tinydtls")

	// Contiki uses 64% and 17% less flash than Zephyr and RIOT.
	savedVsZephyr := 1 - float64(c.Total().Flash)/float64(z.Total().Flash)
	if savedVsZephyr < 0.60 || savedVsZephyr > 0.68 {
		t.Errorf("Contiki vs Zephyr flash saving = %.0f%%, want ≈64%%", savedVsZephyr*100)
	}
	savedVsRIOT := 1 - float64(c.Total().Flash)/float64(r.Total().Flash)
	if savedVsRIOT < 0.14 || savedVsRIOT > 0.20 {
		t.Errorf("Contiki vs RIOT flash saving = %.0f%%, want ≈17%%", savedVsRIOT*100)
	}
	// The push build is far smaller than the Zephyr pull build (BLE
	// stack instead of full IPv6 + CoAP).
	if push.Total().Flash >= z.Total().Flash/2 {
		t.Error("push build should be well under half the Zephyr pull build")
	}
}

func TestUnknownConfigurationsRejected(t *testing.T) {
	if _, err := UpKitBootloader(platform.OS(99), "tinydtls"); err == nil {
		t.Error("unknown OS accepted")
	}
	if _, err := UpKitBootloader(platform.Zephyr, "openssl"); err == nil {
		t.Error("unknown library accepted")
	}
	if _, err := UpKitBootloader(platform.Zephyr, "cryptoauthlib"); err == nil {
		t.Error("CryptoAuthLib is Contiki-only in the paper")
	}
	if _, err := UpKitAgent(platform.RIOT, platform.Push, "tinydtls"); err == nil {
		t.Error("push agent is Zephyr-only in the paper")
	}
	if _, err := UpKitAgent(platform.Zephyr, platform.Approach(9), "tinydtls"); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestBuildHelpers(t *testing.T) {
	b, err := UpKitAgent(platform.Zephyr, platform.Push, "tinydtls")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Component("pipeline"); !ok {
		t.Fatal("pipeline component missing")
	}
	without := b.Without("pipeline")
	if _, ok := without.Component("pipeline"); ok {
		t.Fatal("Without did not remove the component")
	}
	d := b.Total().Sub(without.Total())
	if d.Flash != sizePipeline.Flash || d.RAM != sizePipeline.RAM {
		t.Fatalf("ablation delta = %+v, want pipeline size", d)
	}
}

func TestPortabilityShares(t *testing.T) {
	if BootloaderPortableShare != 0.91 {
		t.Error("bootloader portable share should match §VI-A")
	}
	if AgentPortableShare != 0.765 {
		t.Error("agent portable share should match §VI-A")
	}
}
