package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"upkit/internal/agent"
	"upkit/internal/dist"
	"upkit/internal/events"
	"upkit/internal/manifest"
	"upkit/internal/telemetry"
	"upkit/internal/transport"
	"upkit/internal/updateserver"
)

// UpKit's CoAP resource layout for the pull approach (Fig. 2, steps
// 3–7 collapsed into a poll):
//
//	GET  /upkit/version?app=<hex>      → 2-byte latest version
//	POST /upkit/request?app=<hex>      body: device token (10 B)
//	                                   → manifest (213 B)
//	GET  /upkit/image?d=<hex>&n=<hex>  → payload, Block2 transfer
//	GET  /upkit/keys                   → key bundle (root-signed records
//	                                     + revocation list)
//	GET  /upkit/name?d=<hex>&n=<hex>   → payload content name + length
//	GET  /upkit/blocks?b=<hex name>    → named payload, Block2 transfer
const (
	PathVersion = "/upkit/version"
	PathRequest = "/upkit/request"
	PathImage   = "/upkit/image"
	PathKeys    = "/upkit/keys"
	PathName    = "/upkit/name"
	PathBlocks  = "/upkit/blocks"
)

// DefaultBlockSize is the Block2 size used by the pull client; 64 bytes
// fits a single 802.15.4 frame after 6LoWPAN compression.
const DefaultBlockSize = 64

// DefaultSZX is the Block2 SZX a server assumes when the request
// carries no Block2 option (64-byte blocks, matching DefaultBlockSize).
const DefaultSZX = 2

// Pull client errors.
var (
	ErrServerRefused = errors.New("coap: server refused request")
	ErrNoUpdate      = errors.New("coap: no newer version available")
)

// sessionKey identifies one prepared update: the double signature binds
// the image to exactly this device and nonce.
type sessionKey struct {
	deviceID uint32
	nonce    uint32
}

// session is one prepared update. Both the manifest and the payload are
// kept so that re-presenting the same device token (a client resuming
// after a power cycle) replays the identical bytes instead of preparing
// a fresh update — with payload encryption a fresh prepare would pick a
// new IV and the resumed mid-stream decryption would fail verification.
type session struct {
	manifest []byte
	payload  []byte
	// name is the payload's content address — what GET /upkit/name
	// reports so the device can fetch the same bytes from any block
	// source (peer, caching proxy, origin).
	name dist.Name

	// mu guards scratch, the per-session block buffer: responses must
	// not alias the stored payload (transports and, in attack
	// experiments, hostile hops could reach back into it), but a
	// Block2 transfer serves hundreds of blocks per device and a fresh
	// allocation per block is pure churn. Each block is copied into
	// the session's reusable scratch instead; exchanges are synchronous
	// per device, so the previous block is always consumed before the
	// next overwrites it.
	mu      sync.Mutex
	scratch []byte
}

// PullServer adapts an update server to CoAP for pulling devices.
type PullServer struct {
	Updates *updateserver.Server

	mu       sync.Mutex
	sessions map[sessionKey]*session

	// blockSrv serves GET /upkit/blocks from the update server's block
	// registry; nil (no update server) turns the route into NotFound.
	blockSrv *BlockServer

	// Resolved on the update server's registry; nil handles drop samples.
	reqVersion *telemetry.Counter
	reqRequest *telemetry.Counter
	reqImage   *telemetry.Counter
	reqKeys    *telemetry.Counter
	reqName    *telemetry.Counter
	reqBlocks  *telemetry.Counter
	reqOther   *telemetry.Counter
	blocks     *telemetry.Counter
	egress     *telemetry.Counter
}

// NewPullServer wraps updates, recording CoAP request and block counts
// on the update server's telemetry registry.
func NewPullServer(updates *updateserver.Server) *PullServer {
	s := &PullServer{Updates: updates, sessions: make(map[sessionKey]*session)}
	var reg *telemetry.Registry
	if updates != nil {
		reg = updates.Telemetry()
	}
	const help = "CoAP requests served by resource."
	s.reqVersion = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "version"))
	s.reqRequest = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "request"))
	s.reqImage = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "image"))
	s.reqKeys = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "keys"))
	s.reqName = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "name"))
	s.reqBlocks = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "blocks"))
	s.reqOther = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "other"))
	s.blocks = reg.Counter("upkit_coap_blocks_total", "Block2 payload blocks served.")
	s.egress = OriginEgressCounter(reg)
	if updates != nil {
		// BlockSource chains the fleet-shared registry with the private
		// per-device encrypted one, so encrypted pulls keep working now
		// that ciphertext no longer pollutes the shared registry.
		s.blockSrv = &BlockServer{Source: updates.BlockSource(), Blocks: s.blocks}
	}
	return s
}

// OriginEgressCounter resolves the origin-egress byte counter on reg:
// the response payload bytes the origin pull server puts on the wire.
// The cache-tier benchmarks compare this between direct and proxied
// topologies — a warm proxy tier should shrink it by the fan-out
// factor.
func OriginEgressCounter(reg *telemetry.Registry) *telemetry.Counter {
	return reg.Counter("upkit_origin_egress_bytes", "Response payload bytes served by the origin pull server.")
}

// Handle is the CoAP Handler for the UpKit resources. Every response
// payload byte is charged to the origin-egress counter — the number
// the cache-tier topologies exist to shrink.
func (s *PullServer) Handle(req *Message) *Message {
	resp := s.route(req)
	if resp != nil {
		s.egress.Add(uint64(len(resp.Payload)))
	}
	return resp
}

func (s *PullServer) route(req *Message) *Message {
	switch {
	case req.Code == CodeGET && req.Path() == PathVersion:
		s.reqVersion.Inc()
		return s.handleVersion(req)
	case req.Code == CodePOST && req.Path() == PathRequest:
		s.reqRequest.Inc()
		return s.handleRequest(req)
	case req.Code == CodeGET && req.Path() == PathImage:
		s.reqImage.Inc()
		return s.handleImage(req)
	case req.Code == CodeGET && req.Path() == PathKeys:
		s.reqKeys.Inc()
		return s.handleKeys()
	case req.Code == CodeGET && req.Path() == PathName:
		s.reqName.Inc()
		return s.handleName(req)
	case req.Code == CodeGET && req.Path() == PathBlocks && s.blockSrv != nil:
		s.reqBlocks.Inc()
		return s.blockSrv.Handle(req)
	default:
		s.reqOther.Inc()
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
}

func parseHexQuery(req *Message, key string) (uint32, bool) {
	raw, ok := req.Query(key)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(raw, 16, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

func (s *PullServer) handleVersion(req *Message) *Message {
	appID, ok := parseHexQuery(req, "app")
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	v, ok := s.Updates.Latest(appID)
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	payload := make([]byte, 2)
	binary.BigEndian.PutUint16(payload, v)
	return &Message{Type: Acknowledgement, Code: CodeContent, Payload: payload}
}

func (s *PullServer) handleRequest(req *Message) *Message {
	appID, ok := parseHexQuery(req, "app")
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	var tok manifest.DeviceToken
	if err := tok.UnmarshalBinary(req.Payload); err != nil {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	key := sessionKey{tok.DeviceID, tok.Nonce}
	// Idempotent per (device, nonce): a repeated POST with the same token
	// replays the stored session instead of preparing a new one.
	s.mu.Lock()
	if sess, ok := s.sessions[key]; ok {
		s.mu.Unlock()
		return &Message{Type: Acknowledgement, Code: CodeContent, Payload: sess.manifest}
	}
	s.mu.Unlock()
	u, err := s.Updates.PrepareUpdate(appID, tok)
	if err != nil {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	s.mu.Lock()
	s.sessions[key] = &session{manifest: u.ManifestBytes, payload: u.Payload, name: u.PayloadName}
	s.mu.Unlock()
	return &Message{Type: Acknowledgement, Code: CodeContent, Payload: u.ManifestBytes}
}

// handleKeys serves the update server's published key bundle. A bundle
// is a few hundred bytes at most (bounded record and revocation counts),
// so it travels as a single response rather than a Block2 transfer.
func (s *PullServer) handleKeys() *Message {
	b := s.Updates.KeyBundle()
	if len(b) == 0 {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	return &Message{Type: Acknowledgement, Code: CodeContent, Payload: b}
}

// handleName reports the content name and total length of a session's
// payload: 32 name bytes followed by a 4-byte big-endian length. With
// the name in hand the device is free to fetch the actual bytes from
// any block source — the name is the only per-session fact the
// content-addressed transfer needs, and this tiny response is the only
// part of it the origin must serve itself.
func (s *PullServer) handleName(req *Message) *Message {
	deviceID, ok1 := parseHexQuery(req, "d")
	nonce, ok2 := parseHexQuery(req, "n")
	if !ok1 || !ok2 {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	s.mu.Lock()
	sess, ok := s.sessions[sessionKey{deviceID, nonce}]
	s.mu.Unlock()
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	payload := make([]byte, dist.NameSize+4)
	copy(payload, sess.name[:])
	binary.BigEndian.PutUint32(payload[dist.NameSize:], uint32(len(sess.payload)))
	return &Message{Type: Acknowledgement, Code: CodeContent, Payload: payload}
}

func (s *PullServer) handleImage(req *Message) *Message {
	deviceID, ok1 := parseHexQuery(req, "d")
	nonce, ok2 := parseHexQuery(req, "n")
	if !ok1 || !ok2 {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	s.mu.Lock()
	sess, ok := s.sessions[sessionKey{deviceID, nonce}]
	s.mu.Unlock()
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	payload := sess.payload

	block := Block{SZX: DefaultSZX}
	if raw, has := req.Option(OptBlock2); has {
		b, err := ParseBlock(raw)
		if err != nil {
			return &Message{Type: Acknowledgement, Code: CodeBadReq}
		}
		block = b
	}
	size := block.Size()
	start := int(block.Num) * size
	if start >= len(payload) {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	end := min(start+size, len(payload))
	// Copy the block into the session's reusable scratch: the response
	// must not alias the stored payload (see session.scratch), but it
	// need not allocate per block either.
	sess.mu.Lock()
	if cap(sess.scratch) < size {
		sess.scratch = make([]byte, size)
	}
	chunk := sess.scratch[:end-start]
	copy(chunk, payload[start:end])
	sess.mu.Unlock()
	s.blocks.Inc()
	resp := &Message{Type: Acknowledgement, Code: CodeContent, Payload: chunk}
	respBlock := Block{Num: block.Num, More: end < len(payload), SZX: block.SZX}
	resp.AddOption(OptBlock2, respBlock.Marshal())
	if block.Num == 0 {
		var sz [4]byte
		binary.BigEndian.PutUint32(sz[:], uint32(len(payload)))
		resp.AddOption(OptSize2, sz[:])
	}
	return resp
}

// PullClient drives a device's update agent through the pull flow.
type PullClient struct {
	// Ex performs the exchanges (simulated link or UDP).
	Ex Exchanger
	// Sources, when non-empty, switches the image transfer to the
	// content-addressed block path: the payload name is fetched from the
	// origin over Ex, then blocks are pulled from the sources in order
	// (peer, proxy, origin), failing over on timeout or refusal. When a
	// source serves bytes the verifier rejects, the whole cycle restarts
	// with that source excluded — the double signature makes every
	// source untrusted, so a poisoned cache costs a wasted transfer,
	// never an installed image. Empty Sources keeps the session-bound
	// /upkit/image path.
	Sources []BlockSource
	// PayloadSink, when set, receives the verified payload bytes after a
	// complete multi-source transfer — the hook peer-assisted serving
	// uses to admit the device's own download into a shared block
	// registry. Only called for transfers that started at offset 0.
	PayloadSink func(payload []byte)
	// Agent is the device's update agent.
	Agent *agent.Agent
	// AppID is the application to poll for.
	AppID uint32
	// BlockSize is the Block2 size (default DefaultBlockSize).
	BlockSize int
	// TransferRetries is the number of extra attempts per exchange after
	// a retryable transport failure (the exchanger's own retransmissions
	// having been exhausted); 0 selects 2. Once these too are exhausted,
	// an in-flight transfer is suspended — the journal keeps the offset
	// for the next cycle — rather than aborted.
	TransferRetries int
	// Backoff, when set, is called before retry attempt n ≥ 1. The
	// testbed uses it to advance the simulated clock; real deployments
	// can sleep.
	Backoff func(attempt int)
	// Keys, when set, receives key bundles fetched by SyncKeys — the
	// device's keystore in lifecycle deployments.
	Keys KeySink
	// Events receives key-sync lifecycle events; nil drops them.
	Events *events.Log

	token []byte
}

// KeySink applies an encoded key bundle (root-signed key records plus a
// revocation list); security.Keystore satisfies it.
type KeySink interface {
	ApplyBundle(b []byte) (int, error)
}

// SyncKeys fetches the server's key bundle and applies it to the
// client's KeySink, returning the number of new key records learned.
// A server without a published bundle (CodeNotFound) is a no-op: the
// deployment simply does not use key lifecycle. Records with bad root
// signatures and stale revocation lists are rejected by the keystore —
// the update channel is untrusted, only the root signature counts.
func (c *PullClient) SyncKeys() (int, error) {
	if c.Keys == nil {
		return 0, nil
	}
	req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
	req.SetPath(PathKeys)
	resp, err := c.exchange(req)
	if err != nil {
		return 0, err
	}
	if resp.Code == CodeNotFound {
		return 0, nil
	}
	if resp.Code != CodeContent {
		return 0, fmt.Errorf("%w: %s", ErrServerRefused, resp.Code)
	}
	added, err := c.Keys.ApplyBundle(resp.Payload)
	if err != nil {
		return added, fmt.Errorf("coap: key bundle rejected: %w", err)
	}
	if added > 0 {
		c.Events.Emit(events.KindKeysUpdated, 0, fmt.Sprintf("%d new key records", added))
	}
	return added, nil
}

// retryableTransport reports whether err is a transient transport
// failure (timeouts, lost frames) worth retrying — as opposed to a
// protocol refusal or verification failure, which never heal on their
// own.
func retryableTransport(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, transport.ErrLost)
}

// SourceError reports that the bytes served by one block source failed
// verification. The agent has already invalidated the slot, so the
// cycle cannot continue mid-stream; CheckAndUpdate restarts it with the
// offending source excluded.
type SourceError struct {
	// Source is the index into PullClient.Sources.
	Source int
	// Name labels the source ("peer", "proxy", "origin").
	Name string
	// Err is the underlying verification failure.
	Err error
}

func (e *SourceError) Error() string {
	return fmt.Sprintf("coap: block source %q served rejected bytes: %v", e.Name, e.Err)
}

func (e *SourceError) Unwrap() error { return e.Err }

// exchange performs one request over the client's primary exchanger
// with transfer-level retries on retryable transport errors.
func (c *PullClient) exchange(req *Message) (*Message, error) {
	return c.exchangeVia(c.Ex, req)
}

// exchangeVia performs one request over ex with transfer-level retries
// on retryable transport errors.
func (c *PullClient) exchangeVia(ex Exchanger, req *Message) (*Message, error) {
	retries := c.TransferRetries
	if retries <= 0 {
		retries = 2
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 && c.Backoff != nil {
			c.Backoff(attempt)
		}
		resp, err := ex.Exchange(req)
		if err == nil {
			return resp, nil
		}
		if !retryableTransport(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// appQuery renders the app=... query option value.
func (c *PullClient) appQuery() []byte {
	return []byte(fmt.Sprintf("app=%x", c.AppID))
}

// Poll asks the server for the latest version (step 3, as a poll).
func (c *PullClient) Poll() (uint16, error) {
	req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
	req.SetPath(PathVersion)
	req.AddOption(OptUriQuery, c.appQuery())
	resp, err := c.Ex.Exchange(req)
	if err != nil {
		return 0, err
	}
	if resp.Code != CodeContent || len(resp.Payload) != 2 {
		return 0, fmt.Errorf("%w: %s", ErrServerRefused, resp.Code)
	}
	return binary.BigEndian.Uint16(resp.Payload), nil
}

func (c *PullClient) nextToken() []byte {
	if c.token == nil {
		c.token = []byte{0x75, 0x6B, 0, 0}
	}
	c.token[2]++
	if c.token[2] == 0 {
		c.token[3]++
	}
	return append([]byte{}, c.token...)
}

// CheckAndUpdate performs one full pull update cycle: poll the version,
// and if a newer one exists, request it with a fresh device token,
// verify the manifest, and stream the image into the agent. It returns
// true when a verified update is staged and the device should reboot.
//
// When the agent holds a journaled, interrupted download of the latest
// version, the cycle resumes it instead: the journaled device token is
// re-presented to the server and the Block2 transfer continues at the
// block containing the journaled offset, so only the remaining bytes
// travel again.
//
// With Sources configured, a source whose bytes fail verification is
// excluded and the cycle retried over the remaining sources — at most
// once per source, so a fully poisoned source list still terminates.
func (c *PullClient) CheckAndUpdate() (bool, error) {
	latest, err := c.Poll()
	if err != nil {
		return false, err
	}
	if latest <= c.Agent.CurrentVersion() {
		return false, ErrNoUpdate
	}

	var dead []bool
	if len(c.Sources) > 0 {
		dead = make([]bool, len(c.Sources))
	}
	for {
		staged, err := c.updateCycle(latest, dead)
		var se *SourceError
		if err == nil || !errors.As(err, &se) || dead == nil {
			return staged, err
		}
		dead[se.Source] = true
		live := 0
		for _, d := range dead {
			if !d {
				live++
			}
		}
		if live == 0 {
			return false, err
		}
		c.Events.Emit(events.KindSourceFailover, latest,
			fmt.Sprintf("%s served rejected bytes; retrying via %d remaining source(s)", se.Name, live))
	}
}

// updateCycle runs one resume-or-fresh update cycle against latest,
// skipping block sources marked dead.
func (c *PullClient) updateCycle(latest uint16, dead []bool) (bool, error) {
	if c.Agent.CanResume() {
		staged, handled, err := c.resume(latest, dead)
		if handled {
			return staged, err
		}
		// The journal did not apply (stale, or for an older version);
		// fall through to a fresh cycle.
	}

	tok, err := c.Agent.RequestDeviceToken()
	if err != nil {
		return false, err
	}
	tokBytes, err := tok.MarshalBinary()
	if err != nil {
		c.Agent.Abort()
		return false, err
	}
	req := &Message{Type: Confirmable, Code: CodePOST, Token: c.nextToken(), Payload: tokBytes}
	req.SetPath(PathRequest)
	req.AddOption(OptUriQuery, c.appQuery())
	resp, err := c.Ex.Exchange(req)
	if err != nil {
		c.Agent.Abort()
		return false, err
	}
	if resp.Code != CodeContent {
		c.Agent.Abort()
		return false, fmt.Errorf("%w: %s", ErrServerRefused, resp.Code)
	}

	status, err := c.Agent.Receive(resp.Payload)
	if err != nil {
		// The agent rejected the manifest and has already cleaned itself
		// up (slot invalidated, state back to Waiting) — no Abort needed.
		return false, fmt.Errorf("coap: manifest rejected: %w", err)
	}
	if status != agent.StatusManifestAccepted {
		c.Agent.Abort()
		return false, fmt.Errorf("coap: unexpected agent status %v after manifest", status)
	}

	return c.fetchImage(tok, 0, dead)
}

// resume continues a journaled download. handled reports whether the
// resume path ran to a conclusion; when false the journal did not apply
// and the caller should run a fresh cycle.
func (c *PullClient) resume(latest uint16, dead []bool) (staged, handled bool, err error) {
	info, err := c.Agent.Resume()
	if err != nil {
		// The journal was stale or inconsistent; the agent has already
		// invalidated it, so a fresh cycle starts clean.
		return false, false, nil
	}
	if info.Version != latest {
		// The server moved on while the download was parked. Drop the
		// now-pointless partial transfer and fetch the newer version.
		c.Agent.Abort()
		return false, false, nil
	}
	if err := c.establishSession(info.Token); err != nil {
		return false, true, err
	}
	staged, err = c.fetchImage(info.Token, info.Received, dead)
	return staged, true, err
}

// establishSession re-presents tok to the server so it (re-)prepares
// the session — idempotent on the server per (device, nonce), so a
// resume replays the same manifest and payload bytes.
func (c *PullClient) establishSession(tok manifest.DeviceToken) error {
	tokBytes, err := tok.MarshalBinary()
	if err != nil {
		c.Agent.Abort()
		return err
	}
	req := &Message{Type: Confirmable, Code: CodePOST, Token: c.nextToken(), Payload: tokBytes}
	req.SetPath(PathRequest)
	req.AddOption(OptUriQuery, c.appQuery())
	resp, err := c.exchange(req)
	if err != nil {
		if retryableTransport(err) {
			// Transport is down; keep the journal and try again later.
			_ = c.Agent.Suspend()
		} else {
			c.Agent.Abort()
		}
		return err
	}
	if resp.Code != CodeContent {
		c.Agent.Abort()
		return fmt.Errorf("%w: %s", ErrServerRefused, resp.Code)
	}
	return nil
}

// fetchImage streams the payload blocks into the agent (step 7 + 12),
// starting at the block containing offset (0 for a fresh transfer). It
// dispatches on the client's configuration: with Sources set the
// transfer runs content-addressed over the source list (fetchSources);
// otherwise it runs the session-bound /upkit/image path (fetchOrigin).
//
// Error handling follows a strict classification:
//   - Retryable transport failures (timeouts, lost frames) that survive
//     the exchange-level retries suspend the transfer: the reception
//     journal keeps the offset and the next cycle resumes there.
//   - Protocol refusals and malformed responses hard-abort: the slot
//     and journal are invalidated.
//   - Agent verification errors need no Abort — the agent has already
//     cleaned itself (slot + journal invalidated) before returning.
//   - CodeNotFound mid-transfer means the server forgot the session
//     (restart or expiry); the token is re-presented once and the same
//     block retried before giving up.
func (c *PullClient) fetchImage(tok manifest.DeviceToken, offset int, dead []bool) (bool, error) {
	if len(c.Sources) > 0 {
		return c.fetchSources(tok, offset, dead)
	}
	return c.fetchOrigin(tok, offset)
}

// fetchOrigin is the session-bound Block2 transfer over GET
// /upkit/image — the single-source path devices without a source list
// use.
func (c *PullClient) fetchOrigin(tok manifest.DeviceToken, offset int) (bool, error) {
	size := c.BlockSize
	if size <= 0 {
		size = DefaultBlockSize
	}
	szx, err := SZXForSize(size)
	if err != nil {
		c.Agent.Abort()
		return false, err
	}
	query := []byte(fmt.Sprintf("d=%x", tok.DeviceID))
	query2 := []byte(fmt.Sprintf("n=%x", tok.Nonce))
	// A resumed transfer re-fetches the block containing offset; the
	// prefix of that block the agent already consumed is trimmed before
	// feeding so the pipeline sees a seamless byte stream.
	num := uint32(offset / size)
	skip := offset % size
	reestablished := false
	for ; ; num++ {
		req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
		req.SetPath(PathImage)
		req.AddOption(OptUriQuery, query)
		req.AddOption(OptUriQuery, query2)
		req.AddOption(OptBlock2, Block{Num: num, SZX: szx}.Marshal())
		resp, err := c.exchange(req)
		if err != nil {
			if retryableTransport(err) {
				_ = c.Agent.Suspend()
			} else {
				c.Agent.Abort()
			}
			return false, err
		}
		if resp.Code == CodeNotFound && !reestablished {
			reestablished = true
			if err := c.establishSession(tok); err != nil {
				return false, err
			}
			num--
			continue
		}
		if resp.Code != CodeContent {
			c.Agent.Abort()
			return false, fmt.Errorf("%w: %s for block %d", ErrServerRefused, resp.Code, num)
		}
		chunk := resp.Payload
		if skip > 0 {
			if skip >= len(chunk) {
				c.Agent.Abort()
				return false, fmt.Errorf("coap: resumed block %d too short: %d bytes, skipping %d", num, len(chunk), skip)
			}
			chunk = chunk[skip:]
			skip = 0
		}
		status, err := c.Agent.Receive(chunk)
		if err != nil {
			// The agent rejected the data and has already cleaned itself
			// up (slot + journal invalidated) — no Abort needed.
			return false, fmt.Errorf("coap: firmware rejected: %w", err)
		}
		raw, has := resp.Option(OptBlock2)
		if !has {
			c.Agent.Abort()
			return false, fmt.Errorf("%w: missing Block2 in response", ErrServerRefused)
		}
		b, err := ParseBlock(raw)
		if err != nil {
			c.Agent.Abort()
			return false, err
		}
		if !b.More {
			if status != agent.StatusUpdateReady {
				c.Agent.Abort()
				return false, fmt.Errorf("coap: transfer ended but agent status is %v", status)
			}
			return true, nil
		}
	}
}

// fetchName asks the origin (over the client's primary exchanger) for
// the session payload's content name and total length — the only
// per-session fact the content-addressed transfer needs from the
// origin itself.
func (c *PullClient) fetchName(tok manifest.DeviceToken) (name string, total int, err error) {
	req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
	req.SetPath(PathName)
	req.AddOption(OptUriQuery, []byte(fmt.Sprintf("d=%x", tok.DeviceID)))
	req.AddOption(OptUriQuery, []byte(fmt.Sprintf("n=%x", tok.Nonce)))
	resp, err := c.exchange(req)
	if err != nil {
		if retryableTransport(err) {
			_ = c.Agent.Suspend()
		} else {
			c.Agent.Abort()
		}
		return "", 0, err
	}
	if resp.Code != CodeContent || len(resp.Payload) != dist.NameSize+4 {
		c.Agent.Abort()
		return "", 0, fmt.Errorf("%w: %s for payload name", ErrServerRefused, resp.Code)
	}
	var n dist.Name
	copy(n[:], resp.Payload)
	total = int(binary.BigEndian.Uint32(resp.Payload[dist.NameSize:]))
	return n.String(), total, nil
}

// fetchSources streams the payload from the client's block sources in
// order, failing over to the next source on timeout, refusal, or a
// malformed block. The fed byte stream is identical to fetchOrigin's —
// the agent cannot tell which mix of sources served it, and the
// double-signature verification at the end holds regardless.
//
// A verification failure mid-stream returns a *SourceError naming the
// source whose bytes the agent rejected (the agent has already
// invalidated the slot); CheckAndUpdate restarts the cycle without it.
func (c *PullClient) fetchSources(tok manifest.DeviceToken, offset int, dead []bool) (bool, error) {
	name, total, err := c.fetchName(tok)
	if err != nil {
		return false, err
	}
	var collect []byte
	collecting := c.PayloadSink != nil && offset == 0
	var lastErr error
	for si := range c.Sources {
		if dead[si] {
			continue
		}
		src := &c.Sources[si]
		size := src.BlockSize
		if size <= 0 {
			size = c.BlockSize
		}
		if size <= 0 {
			size = DefaultBlockSize
		}
		szx, err := SZXForSize(size)
		if err != nil {
			c.Agent.Abort()
			return false, err
		}
		failed := false
		for offset < total {
			// A failover mid-stream re-fetches the block containing
			// offset from the next source; the prefix the agent already
			// consumed is trimmed so the pipeline sees a seamless
			// stream. Named blocks are content-addressed, so the bytes
			// line up across sources by construction.
			num := uint32(offset / size)
			skip := offset % size
			req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
			req.SetPath(PathBlocks)
			req.AddOption(OptUriQuery, []byte("b="+name))
			req.AddOption(OptBlock2, Block{Num: num, SZX: szx}.Marshal())
			resp, err := c.exchangeVia(src.Ex, req)
			if err != nil {
				if !retryableTransport(err) {
					c.Agent.Abort()
					return false, err
				}
				lastErr = err
				failed = true
				break
			}
			if resp.Code != CodeContent {
				lastErr = fmt.Errorf("%w: %s for block %d from %s", ErrServerRefused, resp.Code, num, src.Name)
				failed = true
				break
			}
			chunk := resp.Payload
			if skip > 0 {
				if skip >= len(chunk) {
					lastErr = fmt.Errorf("coap: block %d from %s too short: %d bytes, skipping %d", num, src.Name, len(chunk), skip)
					failed = true
					break
				}
				chunk = chunk[skip:]
			}
			if len(chunk) == 0 {
				lastErr = fmt.Errorf("coap: empty block %d from %s", num, src.Name)
				failed = true
				break
			}
			if offset+len(chunk) > total {
				chunk = chunk[:total-offset]
			}
			status, err := c.Agent.Receive(chunk)
			if err != nil {
				// The agent rejected the data and has already cleaned
				// itself up (slot + journal invalidated). The rejection
				// is pinned on this source; the caller retries without it.
				return false, &SourceError{Source: si, Name: src.Name,
					Err: fmt.Errorf("coap: firmware rejected: %w", err)}
			}
			if collecting {
				collect = append(collect, chunk...)
			}
			offset += len(chunk)
			if offset == total {
				if status != agent.StatusUpdateReady {
					c.Agent.Abort()
					return false, fmt.Errorf("coap: transfer ended but agent status is %v", status)
				}
				if collecting {
					c.PayloadSink(collect)
				}
				return true, nil
			}
		}
		if failed {
			c.Events.Emit(events.KindSourceFailover, 0,
				fmt.Sprintf("%s: %v", src.Name, lastErr))
			continue
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("coap: no live block sources")
	}
	if retryableTransport(lastErr) {
		// Transport trouble on every remaining source; keep the journal
		// so the next cycle resumes at offset.
		_ = c.Agent.Suspend()
	} else {
		c.Agent.Abort()
	}
	return false, lastErr
}
