package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"upkit/internal/agent"
	"upkit/internal/manifest"
	"upkit/internal/telemetry"
	"upkit/internal/updateserver"
)

// UpKit's CoAP resource layout for the pull approach (Fig. 2, steps
// 3–7 collapsed into a poll):
//
//	GET  /upkit/version?app=<hex>      → 2-byte latest version
//	POST /upkit/request?app=<hex>      body: device token (10 B)
//	                                   → manifest (193 B)
//	GET  /upkit/image?d=<hex>&n=<hex>  → payload, Block2 transfer
const (
	PathVersion = "/upkit/version"
	PathRequest = "/upkit/request"
	PathImage   = "/upkit/image"
)

// DefaultBlockSize is the Block2 size used by the pull client; 64 bytes
// fits a single 802.15.4 frame after 6LoWPAN compression.
const DefaultBlockSize = 64

// Pull client errors.
var (
	ErrServerRefused = errors.New("coap: server refused request")
	ErrNoUpdate      = errors.New("coap: no newer version available")
)

// sessionKey identifies one prepared update: the double signature binds
// the image to exactly this device and nonce.
type sessionKey struct {
	deviceID uint32
	nonce    uint32
}

// PullServer adapts an update server to CoAP for pulling devices.
type PullServer struct {
	Updates *updateserver.Server

	mu       sync.Mutex
	sessions map[sessionKey][]byte

	// Resolved on the update server's registry; nil handles drop samples.
	reqVersion *telemetry.Counter
	reqRequest *telemetry.Counter
	reqImage   *telemetry.Counter
	reqOther   *telemetry.Counter
	blocks     *telemetry.Counter
}

// NewPullServer wraps updates, recording CoAP request and block counts
// on the update server's telemetry registry.
func NewPullServer(updates *updateserver.Server) *PullServer {
	s := &PullServer{Updates: updates, sessions: make(map[sessionKey][]byte)}
	var reg *telemetry.Registry
	if updates != nil {
		reg = updates.Telemetry()
	}
	const help = "CoAP requests served by resource."
	s.reqVersion = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "version"))
	s.reqRequest = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "request"))
	s.reqImage = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "image"))
	s.reqOther = reg.Counter("upkit_coap_requests_total", help, telemetry.L("path", "other"))
	s.blocks = reg.Counter("upkit_coap_blocks_total", "Block2 payload blocks served.")
	return s
}

// Handle is the CoAP Handler for the UpKit resources.
func (s *PullServer) Handle(req *Message) *Message {
	switch {
	case req.Code == CodeGET && req.Path() == PathVersion:
		s.reqVersion.Inc()
		return s.handleVersion(req)
	case req.Code == CodePOST && req.Path() == PathRequest:
		s.reqRequest.Inc()
		return s.handleRequest(req)
	case req.Code == CodeGET && req.Path() == PathImage:
		s.reqImage.Inc()
		return s.handleImage(req)
	default:
		s.reqOther.Inc()
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
}

func parseHexQuery(req *Message, key string) (uint32, bool) {
	raw, ok := req.Query(key)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(raw, 16, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

func (s *PullServer) handleVersion(req *Message) *Message {
	appID, ok := parseHexQuery(req, "app")
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	v, ok := s.Updates.Latest(appID)
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	payload := make([]byte, 2)
	binary.BigEndian.PutUint16(payload, v)
	return &Message{Type: Acknowledgement, Code: CodeContent, Payload: payload}
}

func (s *PullServer) handleRequest(req *Message) *Message {
	appID, ok := parseHexQuery(req, "app")
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	var tok manifest.DeviceToken
	if err := tok.UnmarshalBinary(req.Payload); err != nil {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	u, err := s.Updates.PrepareUpdate(appID, tok)
	if err != nil {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	s.mu.Lock()
	s.sessions[sessionKey{tok.DeviceID, tok.Nonce}] = u.Payload
	s.mu.Unlock()
	return &Message{Type: Acknowledgement, Code: CodeContent, Payload: u.ManifestBytes}
}

func (s *PullServer) handleImage(req *Message) *Message {
	deviceID, ok1 := parseHexQuery(req, "d")
	nonce, ok2 := parseHexQuery(req, "n")
	if !ok1 || !ok2 {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	s.mu.Lock()
	payload, ok := s.sessions[sessionKey{deviceID, nonce}]
	s.mu.Unlock()
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}

	block := Block{SZX: 2} // default 64-byte blocks
	if raw, has := req.Option(OptBlock2); has {
		b, err := ParseBlock(raw)
		if err != nil {
			return &Message{Type: Acknowledgement, Code: CodeBadReq}
		}
		block = b
	}
	size := block.Size()
	start := int(block.Num) * size
	if start >= len(payload) {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	end := min(start+size, len(payload))
	// Copy the block: the response travels through transports (and, in
	// attack experiments, hostile hops) that must not be able to reach
	// back into the stored session payload.
	chunk := make([]byte, end-start)
	copy(chunk, payload[start:end])
	s.blocks.Inc()
	resp := &Message{Type: Acknowledgement, Code: CodeContent, Payload: chunk}
	respBlock := Block{Num: block.Num, More: end < len(payload), SZX: block.SZX}
	resp.AddOption(OptBlock2, respBlock.Marshal())
	if block.Num == 0 {
		var sz [4]byte
		binary.BigEndian.PutUint32(sz[:], uint32(len(payload)))
		resp.AddOption(OptSize2, sz[:])
	}
	return resp
}

// PullClient drives a device's update agent through the pull flow.
type PullClient struct {
	// Ex performs the exchanges (simulated link or UDP).
	Ex Exchanger
	// Agent is the device's update agent.
	Agent *agent.Agent
	// AppID is the application to poll for.
	AppID uint32
	// BlockSize is the Block2 size (default DefaultBlockSize).
	BlockSize int

	token []byte
}

// appQuery renders the app=... query option value.
func (c *PullClient) appQuery() []byte {
	return []byte(fmt.Sprintf("app=%x", c.AppID))
}

// Poll asks the server for the latest version (step 3, as a poll).
func (c *PullClient) Poll() (uint16, error) {
	req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
	req.SetPath(PathVersion)
	req.AddOption(OptUriQuery, c.appQuery())
	resp, err := c.Ex.Exchange(req)
	if err != nil {
		return 0, err
	}
	if resp.Code != CodeContent || len(resp.Payload) != 2 {
		return 0, fmt.Errorf("%w: %s", ErrServerRefused, resp.Code)
	}
	return binary.BigEndian.Uint16(resp.Payload), nil
}

func (c *PullClient) nextToken() []byte {
	if c.token == nil {
		c.token = []byte{0x75, 0x6B, 0, 0}
	}
	c.token[2]++
	if c.token[2] == 0 {
		c.token[3]++
	}
	return append([]byte{}, c.token...)
}

// CheckAndUpdate performs one full pull update cycle: poll the version,
// and if a newer one exists, request it with a fresh device token,
// verify the manifest, and stream the image into the agent. It returns
// true when a verified update is staged and the device should reboot.
func (c *PullClient) CheckAndUpdate() (bool, error) {
	latest, err := c.Poll()
	if err != nil {
		return false, err
	}
	if latest <= c.Agent.CurrentVersion() {
		return false, ErrNoUpdate
	}

	tok, err := c.Agent.RequestDeviceToken()
	if err != nil {
		return false, err
	}
	tokBytes, err := tok.MarshalBinary()
	if err != nil {
		c.Agent.Abort()
		return false, err
	}
	req := &Message{Type: Confirmable, Code: CodePOST, Token: c.nextToken(), Payload: tokBytes}
	req.SetPath(PathRequest)
	req.AddOption(OptUriQuery, c.appQuery())
	resp, err := c.Ex.Exchange(req)
	if err != nil {
		c.Agent.Abort()
		return false, err
	}
	if resp.Code != CodeContent {
		c.Agent.Abort()
		return false, fmt.Errorf("%w: %s", ErrServerRefused, resp.Code)
	}

	status, err := c.Agent.Receive(resp.Payload)
	if err != nil {
		return false, fmt.Errorf("coap: manifest rejected: %w", err)
	}
	if status != agent.StatusManifestAccepted {
		c.Agent.Abort()
		return false, fmt.Errorf("coap: unexpected agent status %v after manifest", status)
	}

	return c.fetchImage(tok)
}

// fetchImage streams the payload blocks into the agent (step 7 + 12).
func (c *PullClient) fetchImage(tok manifest.DeviceToken) (bool, error) {
	size := c.BlockSize
	if size <= 0 {
		size = DefaultBlockSize
	}
	szx, err := SZXForSize(size)
	if err != nil {
		c.Agent.Abort()
		return false, err
	}
	query := []byte(fmt.Sprintf("d=%x", tok.DeviceID))
	query2 := []byte(fmt.Sprintf("n=%x", tok.Nonce))
	for num := uint32(0); ; num++ {
		req := &Message{Type: Confirmable, Code: CodeGET, Token: c.nextToken()}
		req.SetPath(PathImage)
		req.AddOption(OptUriQuery, query)
		req.AddOption(OptUriQuery, query2)
		req.AddOption(OptBlock2, Block{Num: num, SZX: szx}.Marshal())
		resp, err := c.Ex.Exchange(req)
		if err != nil {
			c.Agent.Abort()
			return false, err
		}
		if resp.Code != CodeContent {
			c.Agent.Abort()
			return false, fmt.Errorf("%w: %s for block %d", ErrServerRefused, resp.Code, num)
		}
		status, err := c.Agent.Receive(resp.Payload)
		if err != nil {
			return false, fmt.Errorf("coap: firmware rejected: %w", err)
		}
		raw, has := resp.Option(OptBlock2)
		if !has {
			c.Agent.Abort()
			return false, fmt.Errorf("%w: missing Block2 in response", ErrServerRefused)
		}
		b, err := ParseBlock(raw)
		if err != nil {
			c.Agent.Abort()
			return false, err
		}
		if !b.More {
			if status != agent.StatusUpdateReady {
				c.Agent.Abort()
				return false, fmt.Errorf("coap: transfer ended but agent status is %v", status)
			}
			return true, nil
		}
	}
}
