package coap_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"upkit/internal/coap"
	"upkit/internal/platform"
	"upkit/internal/testbed"
)

const fwSize = 24 * 1024

func newPullBed(t *testing.T, publishV2 bool) *testbed.Bed {
	t.Helper()
	b, err := testbed.New(testbed.Options{Approach: platform.Pull},
		testbed.MakeFirmware("coap-v1", fwSize))
	if err != nil {
		t.Fatal(err)
	}
	if publishV2 {
		if err := b.PublishVersion(2, testbed.MakeFirmware("coap-v2", fwSize)); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestPullClientUpdates(t *testing.T) {
	b := newPullBed(t, true)
	staged, err := b.PullClient().CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate: %v", err)
	}
	if !staged {
		t.Fatal("no update staged")
	}
	if !b.Device.ReadyToReboot() {
		t.Fatal("device not ready to reboot")
	}
}

func TestPullClientPoll(t *testing.T) {
	b := newPullBed(t, true)
	v, err := b.PullClient().Poll()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Poll = %d, want 2", v)
	}
}

func TestPullNoUpdate(t *testing.T) {
	b := newPullBed(t, false) // only v1 published; device runs v1
	_, err := b.PullClient().CheckAndUpdate()
	if !errors.Is(err, coap.ErrNoUpdate) {
		t.Fatalf("error = %v, want ErrNoUpdate", err)
	}
}

func TestPullServerResources(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)

	// Unknown path → 4.04.
	req := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	req.SetPath("/nope")
	if resp := srv.Handle(req); resp.Code != coap.CodeNotFound {
		t.Fatalf("unknown path code = %v", resp.Code)
	}

	// Version without app query → 4.00.
	req = &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	req.SetPath(coap.PathVersion)
	if resp := srv.Handle(req); resp.Code != coap.CodeBadReq {
		t.Fatalf("missing query code = %v", resp.Code)
	}

	// Version for unknown app → 4.04.
	req = &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	req.SetPath(coap.PathVersion)
	req.AddOption(coap.OptUriQuery, []byte("app=ffff"))
	if resp := srv.Handle(req); resp.Code != coap.CodeNotFound {
		t.Fatalf("unknown app code = %v", resp.Code)
	}

	// Request with a malformed token → 4.00.
	req = &coap.Message{Type: coap.Confirmable, Code: coap.CodePOST, Payload: []byte{1, 2, 3}}
	req.SetPath(coap.PathRequest)
	req.AddOption(coap.OptUriQuery, []byte("app=2a"))
	if resp := srv.Handle(req); resp.Code != coap.CodeBadReq {
		t.Fatalf("bad token code = %v", resp.Code)
	}

	// Image without a session → 4.04.
	req = &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	req.SetPath(coap.PathImage)
	req.AddOption(coap.OptUriQuery, []byte("d=1"))
	req.AddOption(coap.OptUriQuery, []byte("n=2"))
	if resp := srv.Handle(req); resp.Code != coap.CodeNotFound {
		t.Fatalf("missing session code = %v", resp.Code)
	}
}

// TestImageBlocksIsolatedFromStoredPayload pins the per-session
// scratch-buffer contract: a hostile hop mutating a served block must
// not reach the stored session payload (a later re-request of the same
// block returns the pristine bytes), even though consecutive blocks
// reuse one buffer.
func TestImageBlocksIsolatedFromStoredPayload(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)

	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	tokBytes, _ := tok.MarshalBinary()
	req := &coap.Message{Type: coap.Confirmable, Code: coap.CodePOST, Payload: tokBytes}
	req.SetPath(coap.PathRequest)
	req.AddOption(coap.OptUriQuery, []byte("app=2a"))
	if resp := srv.Handle(req); resp.Code != coap.CodeContent {
		t.Fatalf("request code = %v", resp.Code)
	}

	getBlock := func(num uint32) []byte {
		img := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
		img.SetPath(coap.PathImage)
		img.AddOption(coap.OptUriQuery, []byte("d="+hex32(tok.DeviceID)))
		img.AddOption(coap.OptUriQuery, []byte("n="+hex32(tok.Nonce)))
		img.AddOption(coap.OptBlock2, coap.Block{Num: num, SZX: 2}.Marshal())
		resp := srv.Handle(img)
		if resp.Code != coap.CodeContent {
			t.Fatalf("block %d code = %v", num, resp.Code)
		}
		return resp.Payload
	}

	first := append([]byte(nil), getBlock(0)...)
	// A hostile hop scribbles over the served block.
	for i := range getBlock(0) {
		getBlock(0)[i] = 0
	}
	mutated := getBlock(1)
	for i := range mutated {
		mutated[i] ^= 0xFF
	}
	// The stored payload must be untouched: re-serving block 0 yields
	// the original bytes.
	if got := getBlock(0); !equalBytes(got, first) {
		t.Fatal("stored payload reachable through served block")
	}
	b.Device.Agent.Abort()
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPullAgentRejectionPropagates(t *testing.T) {
	b := newPullBed(t, true)
	client := b.PullClient()
	// Burn the agent's first nonce by requesting a token out of band,
	// then abort: the next client run re-requests and must still work.
	if _, err := b.Device.Agent.RequestDeviceToken(); err != nil {
		t.Fatal(err)
	}
	b.Device.Agent.Abort()
	staged, err := client.CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate after abort: %v", err)
	}
	if !staged {
		t.Fatal("update not staged")
	}
}

func TestPullBlockwiseFirstBlockCarriesSize(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)

	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	tokBytes, _ := tok.MarshalBinary()
	req := &coap.Message{Type: coap.Confirmable, Code: coap.CodePOST, Payload: tokBytes}
	req.SetPath(coap.PathRequest)
	req.AddOption(coap.OptUriQuery, []byte("app=2a"))
	resp := srv.Handle(req)
	if resp.Code != coap.CodeContent {
		t.Fatalf("request code = %v", resp.Code)
	}

	// First image block advertises the total size via Size2.
	img := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	img.SetPath(coap.PathImage)
	img.AddOption(coap.OptUriQuery, []byte("d="+hex32(tok.DeviceID)))
	img.AddOption(coap.OptUriQuery, []byte("n="+hex32(tok.Nonce)))
	img.AddOption(coap.OptBlock2, coap.Block{Num: 0, SZX: 2}.Marshal())
	resp = srv.Handle(img)
	if resp.Code != coap.CodeContent {
		t.Fatalf("image code = %v", resp.Code)
	}
	raw, ok := resp.Option(coap.OptSize2)
	if !ok {
		t.Fatal("first block missing Size2")
	}
	if binary.BigEndian.Uint32(raw) != uint32(fwSize) {
		t.Fatalf("Size2 = %d, want %d", binary.BigEndian.Uint32(raw), fwSize)
	}
	if len(resp.Payload) != 64 {
		t.Fatalf("block payload = %d bytes, want 64", len(resp.Payload))
	}
	b.Device.Agent.Abort()
}

func hex32(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 8)
	started := false
	for shift := 28; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xF
		if d != 0 || started || shift == 0 {
			out = append(out, digits[d])
			started = true
		}
	}
	return string(out)
}

func TestUDPExchange(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)
	udp, err := coap.ListenUDP("127.0.0.1:0", srv.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = udp.Serve()
	}()

	ex, err := coap.DialUDP(udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	client := &coap.PullClient{Ex: ex, Agent: b.Device.Agent, AppID: 0x2A}
	v, err := client.Poll()
	if err != nil {
		t.Fatalf("Poll over UDP: %v", err)
	}
	if v != 2 {
		t.Fatalf("Poll = %d, want 2", v)
	}
	// A full pull update over the real socket.
	staged, err := client.CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate over UDP: %v", err)
	}
	if !staged {
		t.Fatal("update not staged over UDP")
	}
	udp.Close()
	wg.Wait()
}

// A compromised border router on the pull path can reorder, replay, or
// rewrite CoAP responses — and UpKit must shrug it all off, because
// nothing the gateway can produce carries valid signatures for this
// request (§III: freshness independent of the network).
func TestCompromisedBorderRouter(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)

	t.Run("tampers with image blocks", func(t *testing.T) {
		evil := func(req *coap.Message) *coap.Message {
			resp := srv.Handle(req)
			if req.Path() == coap.PathImage && len(resp.Payload) > 0 {
				resp.Payload[0] ^= 0x01
			}
			return resp
		}
		client := &coap.PullClient{
			Ex:    &coap.LinkExchanger{Link: b.Link, Handler: evil},
			Agent: b.Device.Agent,
			AppID: 0x2A,
		}
		if _, err := client.CheckAndUpdate(); err == nil {
			t.Fatal("tampered blocks accepted")
		}
		if b.Device.ReadyToReboot() {
			t.Fatal("device staged a tampered update")
		}
	})

	t.Run("serves a stale manifest", func(t *testing.T) {
		// The router answers the request with a manifest captured for an
		// earlier request (different nonce).
		var captured *coap.Message
		evil := func(req *coap.Message) *coap.Message {
			resp := srv.Handle(req)
			if req.Path() == coap.PathRequest {
				if captured == nil {
					captured = resp
				} else {
					return captured // replay the first manifest
				}
			}
			return resp
		}
		client := &coap.PullClient{
			Ex:    &coap.LinkExchanger{Link: b.Link, Handler: evil},
			Agent: b.Device.Agent,
			AppID: 0x2A,
		}
		// First run primes the capture and succeeds up to staging; abort
		// to free the agent for the replayed round.
		if _, err := client.CheckAndUpdate(); err != nil {
			t.Fatalf("priming run: %v", err)
		}
		b.Device.Agent.Abort()
		// Second run gets the replayed manifest: stale nonce → rejected.
		if _, err := client.CheckAndUpdate(); err == nil {
			t.Fatal("replayed manifest accepted")
		}
		if b.Device.ReadyToReboot() {
			t.Fatal("device staged a replayed update")
		}
	})
}
