package coap

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: 0x1234,
		Token:     []byte{1, 2, 3, 4},
		Payload:   []byte("hello"),
	}
	m.SetPath("/upkit/version")
	m.AddOption(OptUriQuery, []byte("app=2a"))

	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Code != m.Code || got.MessageID != m.MessageID {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Token, m.Token) {
		t.Fatal("token mismatch")
	}
	if got.Path() != "/upkit/version" {
		t.Fatalf("path = %q", got.Path())
	}
	if v, ok := got.Query("app"); !ok || v != "2a" {
		t.Fatalf("query = %q, %v", v, ok)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestMessageNoPayloadNoOptions(t *testing.T) {
	m := &Message{Type: Acknowledgement, Code: CodeEmpty, MessageID: 7}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4 {
		t.Fatalf("empty message = %d bytes, want 4", len(enc))
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.MessageID != 7 || len(got.Options) != 0 || len(got.Payload) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestLargeOptionDeltasAndLengths(t *testing.T) {
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	// Deltas needing 13- and 14-extensions, and a long value.
	m.AddOption(3, []byte("h"))
	m.AddOption(300, bytes.Repeat([]byte("x"), 500))
	m.AddOption(2000, []byte("far"))
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 3 {
		t.Fatalf("options = %d, want 3", len(got.Options))
	}
	if got.Options[1].Number != 300 || len(got.Options[1].Value) != 500 {
		t.Fatalf("option 1 = %d/%d bytes", got.Options[1].Number, len(got.Options[1].Value))
	}
	if got.Options[2].Number != 2000 {
		t.Fatalf("option 2 number = %d", got.Options[2].Number)
	}
}

func TestOptionsSortedOnMarshal(t *testing.T) {
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 1}
	m.AddOption(OptBlock2, Block{Num: 1, SZX: 2}.Marshal())
	m.AddOption(OptUriPath, []byte("upkit")) // lower number added later
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options[0].Number != OptUriPath {
		t.Fatal("options not sorted by number on the wire")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncatedMessage},
		{"short", []byte{0x40, 0x01}, ErrTruncatedMessage},
		{"bad version", []byte{0x80, 0x01, 0, 0}, ErrBadVersion},
		{"token overflow", []byte{0x49, 0x01, 0, 0}, ErrBadToken},
		{"truncated token", []byte{0x44, 0x01, 0, 0, 1, 2}, ErrTruncatedMessage},
		{"payload marker only", []byte{0x40, 0x01, 0, 0, 0xFF}, ErrTruncatedMessage},
		{"reserved nibble", []byte{0x40, 0x01, 0, 0, 0xF0}, ErrBadOption},
		{"truncated option", []byte{0x40, 0x01, 0, 0, 0x03, 'a'}, ErrTruncatedMessage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestMarshalRejectsLongToken(t *testing.T) {
	m := &Message{Token: make([]byte, 9)}
	if _, err := m.Marshal(); !errors.Is(err, ErrBadToken) {
		t.Fatalf("error = %v, want ErrBadToken", err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	cases := []Block{
		{Num: 0, More: false, SZX: 0},
		{Num: 0, More: true, SZX: 2},
		{Num: 15, More: true, SZX: 6},
		{Num: 4095, More: false, SZX: 4},
		{Num: 1 << 19, More: true, SZX: 2},
	}
	for _, b := range cases {
		got, err := ParseBlock(b.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		if got != b {
			t.Fatalf("round trip: got %+v, want %+v", got, b)
		}
	}
}

func TestBlockSize(t *testing.T) {
	if (Block{SZX: 2}).Size() != 64 {
		t.Fatal("SZX 2 must be 64 bytes")
	}
	szx, err := SZXForSize(64)
	if err != nil || szx != 2 {
		t.Fatalf("SZXForSize(64) = %d, %v", szx, err)
	}
	if _, err := SZXForSize(100); err == nil {
		t.Fatal("SZXForSize(100) must fail")
	}
	if _, err := ParseBlock(make([]byte, 4)); !errors.Is(err, ErrBadOption) {
		t.Fatal("4-byte block option must be rejected")
	}
}

func TestCodeString(t *testing.T) {
	if CodeContent.String() != "2.05" {
		t.Fatalf("CodeContent = %q, want 2.05", CodeContent.String())
	}
	if CodeNotFound.String() != "4.04" {
		t.Fatalf("CodeNotFound = %q, want 4.04", CodeNotFound.String())
	}
	if CodeGET.Class() != 0 || CodeContent.Class() != 2 || CodeIntErr.Class() != 5 {
		t.Fatal("code classes wrong")
	}
}

// Property: any message assembled from arbitrary token/payload/option
// values survives the codec.
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(tok []byte, payload []byte, optVals [][]byte) bool {
		if len(tok) > 8 {
			tok = tok[:8]
		}
		m := &Message{Type: Confirmable, Code: CodePOST, MessageID: 99, Token: tok, Payload: payload}
		num := uint16(1)
		for _, v := range optVals {
			if len(v) > 1000 {
				v = v[:1000]
			}
			m.AddOption(num, v)
			num += 17
		}
		enc, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		if !bytes.Equal(got.Token, m.Token) {
			return false
		}
		// Zero-length payloads are legitimately dropped (no marker).
		if len(payload) > 0 && !bytes.Equal(got.Payload, payload) {
			return false
		}
		if len(got.Options) != len(m.Options) {
			return false
		}
		for i := range got.Options {
			if got.Options[i].Number != m.Options[i].Number ||
				!bytes.Equal(got.Options[i].Value, m.Options[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
