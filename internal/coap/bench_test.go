package coap

import "testing"

func benchMessage() *Message {
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 77, Token: []byte{1, 2, 3, 4}}
	m.SetPath(PathImage)
	m.AddOption(OptUriQuery, []byte("d=d0d0cafe"))
	m.AddOption(OptUriQuery, []byte("n=beef"))
	m.AddOption(OptBlock2, Block{Num: 512, SZX: 2}.Marshal())
	return m
}

func BenchmarkMessageMarshal(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for range b.N {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageUnmarshal(b *testing.B) {
	enc, err := benchMessage().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockRoundTrip(b *testing.B) {
	for range b.N {
		blk := Block{Num: uint32(b.N % 4096), More: true, SZX: 2}
		if _, err := ParseBlock(blk.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}
