// Package coap implements the subset of the Constrained Application
// Protocol (RFC 7252) plus blockwise transfer (RFC 7959) that UpKit's
// pull interface needs: CON/ACK exchanges, Uri-Path/Uri-Query options,
// and Block2 transfers for the update image. The paper's pull
// implementations sit on each OS's CoAP library (Zoap, libcoap,
// er-coap); here a single codec plays that role.
package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Version is the only CoAP protocol version (RFC 7252 §3).
const Version = 1

// Type is the CoAP message type.
type Type uint8

// Message types.
const (
	Confirmable     Type = 0
	NonConfirmable  Type = 1
	Acknowledgement Type = 2
	Reset           Type = 3
)

// Code is a CoAP method or response code (class.detail packed in a
// byte, RFC 7252 §12.1).
type Code uint8

// Method and response codes used by UpKit.
const (
	CodeEmpty    Code = 0
	CodeGET      Code = 1
	CodePOST     Code = 2
	CodeContent  Code = 0x45 // 2.05
	CodeChanged  Code = 0x44 // 2.04
	CodeBadReq   Code = 0x80 // 4.00
	CodeNotFound Code = 0x84 // 4.04
	CodeIntErr   Code = 0xA0 // 5.00
)

// Class returns the code class (0 request, 2 success, 4/5 error).
func (c Code) Class() uint8 { return uint8(c) >> 5 }

// String renders the dotted code notation ("2.05").
func (c Code) String() string { return fmt.Sprintf("%d.%02d", c.Class(), uint8(c)&0x1F) }

// Option numbers used by UpKit.
const (
	OptUriPath  uint16 = 11
	OptUriQuery uint16 = 15
	OptBlock2   uint16 = 23
	OptBlock1   uint16 = 27
	OptSize2    uint16 = 28
)

// Option is one CoAP option instance.
type Option struct {
	Number uint16
	Value  []byte
}

// Codec errors.
var (
	ErrTruncatedMessage = errors.New("coap: truncated message")
	ErrBadVersion       = errors.New("coap: bad protocol version")
	ErrBadToken         = errors.New("coap: token longer than 8 bytes")
	ErrBadOption        = errors.New("coap: malformed option")
)

// Message is one CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option
	Payload   []byte
}

// AddOption appends an option.
func (m *Message) AddOption(number uint16, value []byte) {
	m.Options = append(m.Options, Option{Number: number, Value: value})
}

// Option returns the first option with the given number.
func (m *Message) Option(number uint16) ([]byte, bool) {
	for _, o := range m.Options {
		if o.Number == number {
			return o.Value, true
		}
	}
	return nil, false
}

// SetPath adds Uri-Path options for each segment of path.
func (m *Message) SetPath(path string) {
	for _, seg := range strings.Split(strings.Trim(path, "/"), "/") {
		if seg != "" {
			m.AddOption(OptUriPath, []byte(seg))
		}
	}
}

// Path joins the Uri-Path options back into "/a/b" form.
func (m *Message) Path() string {
	var segs []string
	for _, o := range m.Options {
		if o.Number == OptUriPath {
			segs = append(segs, string(o.Value))
		}
	}
	return "/" + strings.Join(segs, "/")
}

// Query returns the first Uri-Query option with prefix "key=".
func (m *Message) Query(key string) (string, bool) {
	prefix := key + "="
	for _, o := range m.Options {
		if o.Number == OptUriQuery && strings.HasPrefix(string(o.Value), prefix) {
			return string(o.Value[len(prefix):]), true
		}
	}
	return "", false
}

// Marshal encodes the message per RFC 7252 §3.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Token) > 8 {
		return nil, ErrBadToken
	}
	buf := make([]byte, 0, 4+len(m.Token)+len(m.Payload)+4*len(m.Options))
	buf = append(buf, Version<<6|byte(m.Type)<<4|byte(len(m.Token)))
	buf = append(buf, byte(m.Code))
	buf = binary.BigEndian.AppendUint16(buf, m.MessageID)
	buf = append(buf, m.Token...)

	opts := make([]Option, len(m.Options))
	copy(opts, m.Options)
	sort.SliceStable(opts, func(i, j int) bool { return opts[i].Number < opts[j].Number })

	var prev uint16
	for _, o := range opts {
		delta := int(o.Number) - int(prev)
		prev = o.Number
		buf = appendOptionHeader(buf, delta, len(o.Value))
		buf = append(buf, o.Value...)
	}
	if len(m.Payload) > 0 {
		buf = append(buf, 0xFF)
		buf = append(buf, m.Payload...)
	}
	return buf, nil
}

// appendOptionHeader encodes the delta/length nibbles with 13/14
// extensions (RFC 7252 §3.1).
func appendOptionHeader(buf []byte, delta, length int) []byte {
	dn, dext := nibble(delta)
	ln, lext := nibble(length)
	buf = append(buf, dn<<4|ln)
	buf = append(buf, dext...)
	buf = append(buf, lext...)
	return buf
}

func nibble(v int) (byte, []byte) {
	switch {
	case v < 13:
		return byte(v), nil
	case v < 269:
		return 13, []byte{byte(v - 13)}
	default:
		ext := make([]byte, 2)
		binary.BigEndian.PutUint16(ext, uint16(v-269))
		return 14, ext
	}
}

// Unmarshal decodes a message per RFC 7252 §3.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 4 {
		return nil, ErrTruncatedMessage
	}
	if data[0]>>6 != Version {
		return nil, ErrBadVersion
	}
	tkl := int(data[0] & 0x0F)
	if tkl > 8 {
		return nil, ErrBadToken
	}
	m := &Message{
		Type:      Type(data[0] >> 4 & 0x3),
		Code:      Code(data[1]),
		MessageID: binary.BigEndian.Uint16(data[2:4]),
	}
	pos := 4
	if len(data) < pos+tkl {
		return nil, ErrTruncatedMessage
	}
	if tkl > 0 {
		m.Token = append([]byte{}, data[pos:pos+tkl]...)
	}
	pos += tkl

	var prev uint16
	for pos < len(data) {
		if data[pos] == 0xFF {
			pos++
			if pos == len(data) {
				return nil, fmt.Errorf("%w: empty payload after marker", ErrTruncatedMessage)
			}
			m.Payload = append([]byte{}, data[pos:]...)
			return m, nil
		}
		dn := int(data[pos] >> 4)
		ln := int(data[pos] & 0x0F)
		pos++
		delta, n, err := readExt(data, pos, dn)
		if err != nil {
			return nil, err
		}
		pos += n
		length, n, err := readExt(data, pos, ln)
		if err != nil {
			return nil, err
		}
		pos += n
		if pos+length > len(data) {
			return nil, ErrTruncatedMessage
		}
		prev += uint16(delta)
		m.Options = append(m.Options, Option{
			Number: prev,
			Value:  append([]byte{}, data[pos:pos+length]...),
		})
		pos += length
	}
	return m, nil
}

// readExt decodes a 13/14-extended nibble at data[pos:].
func readExt(data []byte, pos, nib int) (value, consumed int, err error) {
	switch nib {
	case 15:
		return 0, 0, fmt.Errorf("%w: reserved nibble 15", ErrBadOption)
	case 14:
		if pos+2 > len(data) {
			return 0, 0, ErrTruncatedMessage
		}
		return int(binary.BigEndian.Uint16(data[pos:])) + 269, 2, nil
	case 13:
		if pos+1 > len(data) {
			return 0, 0, ErrTruncatedMessage
		}
		return int(data[pos]) + 13, 1, nil
	default:
		return nib, 0, nil
	}
}

// Block is a decoded Block1/Block2 option value (RFC 7959 §2.2).
type Block struct {
	// Num is the block number.
	Num uint32
	// More indicates further blocks follow.
	More bool
	// SZX encodes the block size as 2^(SZX+4); valid values are 0..6.
	SZX uint8
}

// Size returns the block size in bytes.
func (b Block) Size() int { return 1 << (b.SZX + 4) }

// SZXForSize returns the SZX encoding a block size (16..1024, a power
// of two).
func SZXForSize(size int) (uint8, error) {
	for szx := uint8(0); szx <= 6; szx++ {
		if 1<<(szx+4) == size {
			return szx, nil
		}
	}
	return 0, fmt.Errorf("coap: invalid block size %d", size)
}

// Marshal encodes the block option value in minimal length.
func (b Block) Marshal() []byte {
	v := b.Num<<4 | uint32(b.SZX)
	if b.More {
		v |= 0x8
	}
	switch {
	case v < 1<<8:
		return []byte{byte(v)}
	case v < 1<<16:
		return []byte{byte(v >> 8), byte(v)}
	default:
		return []byte{byte(v >> 16), byte(v >> 8), byte(v)}
	}
}

// ParseBlock decodes a block option value. SZX 7 is reserved by RFC
// 7959 §2.2 and rejected here, so every accepted block encodes a real
// size in 16..1024 — handlers can trust Block.Size without their own
// bounds check.
func ParseBlock(data []byte) (Block, error) {
	if len(data) > 3 {
		return Block{}, fmt.Errorf("%w: block option %d bytes", ErrBadOption, len(data))
	}
	var v uint32
	for _, b := range data {
		v = v<<8 | uint32(b)
	}
	if v&0x7 == 7 {
		return Block{}, fmt.Errorf("%w: reserved SZX 7", ErrBadOption)
	}
	return Block{Num: v >> 4, More: v&0x8 != 0, SZX: uint8(v & 0x7)}, nil
}
