package coap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The CoAP decoder faces attacker-controlled datagrams from the open
// network; it must never panic and never allocate absurdly, only return
// errors. These tests hammer it with mutated and random inputs.

func FuzzUnmarshal(f *testing.F) {
	valid := &Message{Type: Confirmable, Code: CodeGET, MessageID: 7, Token: []byte{1, 2}}
	valid.SetPath("/upkit/version")
	valid.AddOption(OptUriQuery, []byte("app=2a"))
	valid.AddOption(OptBlock2, Block{Num: 3, SZX: 2}.Marshal())
	valid.Payload = []byte("payload")
	enc, _ := valid.Marshal()
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte{0x40, 0x01, 0x00, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking.
		if _, err := m.Marshal(); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		_ = m.Path()
		_, _ = m.Query("app")
	})
}

// Property: single-byte mutations of valid messages never panic the
// decoder, and decode-re-encode-decode is stable when they do parse.
func TestQuickMutatedMessages(t *testing.T) {
	valid := &Message{Type: Confirmable, Code: CodePOST, MessageID: 99, Token: []byte{9}}
	valid.SetPath("/upkit/request")
	valid.Payload = make([]byte, 10)
	enc, err := valid.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte) bool {
		data := append([]byte{}, enc...)
		data[int(pos)%len(data)] = val
		m, err := Unmarshal(data)
		if err != nil {
			return true
		}
		re, err := m.Marshal()
		if err != nil {
			return false
		}
		m2, err := Unmarshal(re)
		if err != nil {
			return false
		}
		return m2.Code == m.Code && m2.MessageID == m.MessageID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The UpKit pull server must answer garbage requests with error codes,
// never panic, and never corrupt its sessions.
func TestPullServerSurvivesGarbage(t *testing.T) {
	srv := NewPullServer(nil) // nil update server: worst case
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		m := &Message{
			Type:      Type(rng.Intn(4)),
			Code:      Code(rng.Intn(256)),
			MessageID: uint16(rng.Intn(65536)),
		}
		for j := 0; j < rng.Intn(4); j++ {
			val := make([]byte, rng.Intn(20))
			rng.Read(val)
			m.AddOption(uint16(rng.Intn(40)), val)
		}
		if rng.Intn(2) == 0 {
			m.Payload = make([]byte, rng.Intn(64))
			rng.Read(m.Payload)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("request %d panicked: %v", i, r)
				}
			}()
			resp := srv.Handle(m)
			if resp == nil {
				t.Fatalf("request %d: nil response", i)
			}
			if resp.Code.Class() != 4 && resp.Code.Class() != 5 && resp.Code.Class() != 2 {
				t.Fatalf("request %d: odd response code %v", i, resp.Code)
			}
		}()
	}
}
