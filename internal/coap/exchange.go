package coap

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"upkit/internal/telemetry"
	"upkit/internal/transport"
)

// Handler processes one CoAP request and produces the response.
type Handler func(req *Message) *Message

// Exchanger performs one confirmable request/response exchange.
type Exchanger interface {
	Exchange(req *Message) (*Message, error)
}

// ErrTimeout is returned when a UDP exchange receives no response.
var ErrTimeout = errors.New("coap: timeout")

// LinkExchanger runs exchanges against an in-process handler through a
// simulated radio link: every request and response is actually encoded
// and decoded by the codec, and its wire size is charged to the link.
//
// Confirmable semantics are honoured: when the link's loss model drops
// a request or response frame, the exchange retransmits after a timeout
// (charged to the clock), up to MaxRetransmit attempts — RFC 7252 §4.2.
type LinkExchanger struct {
	Link    *transport.Link
	Handler Handler

	// MaxRetransmit bounds retransmissions per exchange; 0 selects the
	// RFC 7252 default of 4.
	MaxRetransmit int
	// AckTimeout is the (virtual) wait before a retransmission; 0
	// selects 2 s, the RFC default.
	AckTimeout time.Duration
	// Telemetry, when set, counts exchanges and retransmissions. Nil
	// drops the samples.
	Telemetry *telemetry.Registry

	nextMID uint16
}

// Exchange implements Exchanger.
func (e *LinkExchanger) Exchange(req *Message) (*Message, error) {
	e.nextMID++
	req.MessageID = e.nextMID
	enc, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	retries := e.MaxRetransmit
	if retries <= 0 {
		retries = 4
	}
	timeout := e.AckTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	e.Telemetry.Counter("upkit_coap_exchanges_total", "Confirmable CoAP exchanges attempted.").Inc()
	for attempt := 0; ; attempt++ {
		resp, err := e.once(req, enc)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, transport.ErrLost) || attempt >= retries {
			return nil, err
		}
		e.Telemetry.Counter("upkit_coap_retransmissions_total", "CoAP retransmissions after lost frames (RFC 7252 §4.2).").Inc()
		// Retransmission timeout with binary exponential backoff.
		if e.Link.Clock != nil {
			e.Link.Clock.Advance(timeout << uint(attempt))
		}
	}
}

// once performs a single request/response attempt.
func (e *LinkExchanger) once(req *Message, enc []byte) (*Message, error) {
	if _, err := e.Link.Transfer(len(enc)); err != nil {
		return nil, err
	}
	// The server re-parses the exact bytes the client produced.
	parsed, err := Unmarshal(enc)
	if err != nil {
		return nil, fmt.Errorf("coap: server parse: %w", err)
	}
	resp := e.Handler(parsed)
	if resp == nil {
		return nil, fmt.Errorf("coap: no response for %s %s", req.Code, req.Path())
	}
	resp.MessageID = parsed.MessageID
	resp.Token = parsed.Token
	respEnc, err := resp.Marshal()
	if err != nil {
		return nil, err
	}
	if _, err := e.Link.Transfer(len(respEnc)); err != nil {
		return nil, err
	}
	return Unmarshal(respEnc)
}

// UDPServer serves CoAP over a real UDP socket (used by
// cmd/upkit-server so host tools can exercise the same code path).
type UDPServer struct {
	conn    *net.UDPConn
	handler Handler
}

// ListenUDP binds addr (e.g. "127.0.0.1:5683") and serves handler until
// Close. Serving runs on the caller's goroutine via Serve.
func ListenUDP(addr string, handler Handler) (*UDPServer, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("coap: listen %s: %w", addr, err)
	}
	return &UDPServer{conn: conn, handler: handler}, nil
}

// Addr returns the bound address.
func (s *UDPServer) Addr() net.Addr { return s.conn.LocalAddr() }

// Serve processes datagrams until the connection is closed.
func (s *UDPServer) Serve() error {
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // silently drop malformed datagrams
		}
		// Capture the correlation fields before the handler runs: a
		// proxying handler may forward req through an upstream
		// exchanger, which rewrites req.MessageID for its own leg.
		mid, tok := req.MessageID, req.Token
		resp := s.handler(req)
		if resp == nil {
			continue
		}
		resp.MessageID = mid
		resp.Token = tok
		if resp.Type == Confirmable {
			resp.Type = Acknowledgement
		}
		enc, err := resp.Marshal()
		if err != nil {
			continue
		}
		if _, err := s.conn.WriteToUDP(enc, peer); err != nil {
			return err
		}
	}
}

// Close shuts the server down.
func (s *UDPServer) Close() error { return s.conn.Close() }

// UDPExchanger exchanges messages with a remote CoAP server over UDP
// with the RFC 7252 §4.2 retransmission schedule: the response timeout
// doubles on every retransmission and is widened by a random factor in
// [1, ACK_RANDOM_FACTOR) so a fleet of clients recovering from the same
// outage does not retransmit in lockstep.
type UDPExchanger struct {
	conn    *net.UDPConn
	nextMID uint16
	// Timeout is the initial response timeout (ACK_TIMEOUT).
	Timeout time.Duration
	// Retries is the number of retransmissions after the first attempt
	// (MAX_RETRANSMIT).
	Retries int
	// Rand supplies the jitter source in [0,1); nil selects math/rand.
	Rand func() float64
}

// ackRandomFactor is RFC 7252 §4.8's ACK_RANDOM_FACTOR: each timeout is
// scaled by a uniform factor in [1, 1.5).
const ackRandomFactor = 1.5

// retryTimeout computes the response timeout for the given attempt:
// base << attempt, jittered by rand01 per ACK_RANDOM_FACTOR.
func retryTimeout(base time.Duration, attempt int, rand01 func() float64) time.Duration {
	if base <= 0 {
		base = 2 * time.Second
	}
	t := base << uint(attempt)
	if rand01 != nil {
		t += time.Duration(rand01() * (ackRandomFactor - 1) * float64(t))
	}
	return t
}

// DialUDP connects to a CoAP server at addr.
func DialUDP(addr string) (*UDPExchanger, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("coap: dial %s: %w", addr, err)
	}
	return &UDPExchanger{conn: conn, Timeout: 2 * time.Second, Retries: 3}, nil
}

// Close releases the socket.
func (e *UDPExchanger) Close() error { return e.conn.Close() }

// Exchange implements Exchanger with retransmission.
func (e *UDPExchanger) Exchange(req *Message) (*Message, error) {
	e.nextMID++
	req.MessageID = e.nextMID
	enc, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	rand01 := e.Rand
	if rand01 == nil {
		rand01 = rand.Float64
	}
	buf := make([]byte, 64*1024)
	for attempt := 0; attempt <= e.Retries; attempt++ {
		if _, err := e.conn.Write(enc); err != nil {
			return nil, err
		}
		if err := e.conn.SetReadDeadline(time.Now().Add(retryTimeout(e.Timeout, attempt, rand01))); err != nil {
			return nil, err
		}
		// Drain datagrams until the matching response or the deadline.
		// Stale answers (responses to an earlier exchange on this
		// long-lived socket) must not count as this attempt's response —
		// and must not trigger a retransmission, which would generate yet
		// another response and leave the socket permanently one answer
		// behind.
		for {
			n, err := e.conn.Read(buf)
			if err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					break // retransmit
				}
				return nil, err
			}
			resp, err := Unmarshal(buf[:n])
			if err != nil || resp.MessageID != req.MessageID {
				continue // malformed or stale: keep reading
			}
			return resp, nil
		}
	}
	return nil, ErrTimeout
}
