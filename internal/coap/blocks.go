package coap

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"upkit/internal/dist"
	"upkit/internal/telemetry"
)

// Content-addressed block transfer (the in-network propagation path):
//
//	GET /upkit/name?d=<hex>&n=<hex>   → 32-byte payload name + 4-byte
//	                                    total length for an established
//	                                    session
//	GET /upkit/blocks?b=<hex name>    → named payload, Block2 transfer
//
// /upkit/blocks is deliberately session-free: the name alone addresses
// immutable bytes, so any node holding them — origin, caching proxy,
// updated peer — can answer, and answers are cacheable across devices.
// The double signature carried by the manifest keeps all of them
// untrusted: a wrong block surfaces as a digest failure on the device,
// never as installed code.

// BlockServer serves named blocks from a dist.Source over CoAP Block2 —
// the one handler the origin, the caching proxy tier, and peer devices
// all reuse. The client-requested SZX is honoured (16..1024 bytes;
// ParseBlock has already rejected the reserved SZX 7).
type BlockServer struct {
	// Source holds the named payloads.
	Source dist.Source
	// Blocks, when set, counts served blocks. Nil drops the samples.
	Blocks *telemetry.Counter
}

// Handle is the CoAP Handler for the named-block resource.
func (s *BlockServer) Handle(req *Message) *Message {
	if req.Code != CodeGET || req.Path() != PathBlocks {
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	}
	raw, ok := req.Query("b")
	if !ok {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	name, err := dist.ParseName(raw)
	if err != nil {
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	}
	block := Block{SZX: DefaultSZX}
	if v, has := req.Option(OptBlock2); has {
		b, err := ParseBlock(v)
		if err != nil {
			return &Message{Type: Acknowledgement, Code: CodeBadReq}
		}
		block = b
	}
	data, more, err := s.Source.Block(name, block.Num, block.Size())
	switch {
	case errors.Is(err, dist.ErrUnknownName):
		return &Message{Type: Acknowledgement, Code: CodeNotFound}
	case errors.Is(err, dist.ErrOutOfRange):
		return &Message{Type: Acknowledgement, Code: CodeBadReq}
	case err != nil:
		return &Message{Type: Acknowledgement, Code: CodeIntErr}
	}
	s.Blocks.Inc()
	// Clone: sources may alias their stored payload, and responses
	// travel through transports (and, in attack experiments, hostile
	// hops) that must not reach back into it.
	resp := &Message{Type: Acknowledgement, Code: CodeContent, Payload: bytes.Clone(data)}
	resp.AddOption(OptBlock2, Block{Num: block.Num, More: more, SZX: block.SZX}.Marshal())
	return resp
}

// Loopback is an Exchanger that runs the full codec round-trip against
// an in-process Handler — the hop between a caching proxy and its
// origin when both live in one process, and the test stand-in for a
// backhaul link with no radio to charge. Safe for concurrent use.
type Loopback struct {
	Handler Handler

	mu      sync.Mutex
	nextMID uint16
}

// Exchange implements Exchanger.
func (l *Loopback) Exchange(req *Message) (*Message, error) {
	l.mu.Lock()
	l.nextMID++
	req.MessageID = l.nextMID
	l.mu.Unlock()
	enc, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	parsed, err := Unmarshal(enc)
	if err != nil {
		return nil, fmt.Errorf("coap: server parse: %w", err)
	}
	resp := l.Handler(parsed)
	if resp == nil {
		return nil, fmt.Errorf("coap: no response for %s %s", req.Code, req.Path())
	}
	resp.MessageID = parsed.MessageID
	resp.Token = parsed.Token
	respEnc, err := resp.Marshal()
	if err != nil {
		return nil, err
	}
	return Unmarshal(respEnc)
}

// ExchangerSource adapts a remote block server reachable over Ex into a
// dist.Source — the caching proxy's origin-fill path, and what lets a
// cache tier stack (proxy filling from proxy filling from origin).
type ExchangerSource struct {
	Ex Exchanger
}

// Block implements dist.Source by one GET /upkit/blocks exchange.
func (s *ExchangerSource) Block(name dist.Name, num uint32, size int) ([]byte, bool, error) {
	szx, err := SZXForSize(size)
	if err != nil {
		return nil, false, err
	}
	req := &Message{Type: Confirmable, Code: CodeGET}
	req.SetPath(PathBlocks)
	req.AddOption(OptUriQuery, []byte("b="+name.String()))
	req.AddOption(OptBlock2, Block{Num: num, SZX: szx}.Marshal())
	resp, err := s.Ex.Exchange(req)
	if err != nil {
		return nil, false, err
	}
	switch resp.Code {
	case CodeContent:
	case CodeNotFound:
		return nil, false, dist.ErrUnknownName
	case CodeBadReq:
		return nil, false, fmt.Errorf("%w: block %d refused upstream", dist.ErrOutOfRange, num)
	default:
		return nil, false, fmt.Errorf("%w: %s for block %d", ErrServerRefused, resp.Code, num)
	}
	raw, has := resp.Option(OptBlock2)
	if !has {
		return nil, false, fmt.Errorf("%w: missing Block2 in block response", ErrServerRefused)
	}
	b, err := ParseBlock(raw)
	if err != nil {
		return nil, false, err
	}
	return resp.Payload, b.More, nil
}

// BlockSource is one place a PullClient can fetch named blocks from.
// Sources are tried in the order given (peer, proxy, origin); the
// client fails over to the next on timeout, refusal, or — restarting
// the cycle — when the verifier rejects what a source served.
type BlockSource struct {
	// Name labels the source in events and errors ("peer", "proxy",
	// "origin").
	Name string
	// Ex reaches the source's block server.
	Ex Exchanger
	// BlockSize overrides the client's Block2 size for this source;
	// 0 inherits PullClient.BlockSize. Well-connected hops (a proxy on
	// mains power) can pull 512/1024-byte blocks while the radio path
	// stays at 64.
	BlockSize int
}
