package coap_test

import (
	"bytes"
	"errors"
	"testing"

	"upkit/internal/coap"
	"upkit/internal/dist"
	"upkit/internal/events"
)

// TestBlockServerHonorsRequestedSZX pins the wire behaviour for large
// client-requested block sizes: a proxy on mains power asks for 512- or
// 1024-byte blocks and must get exactly that, with the request's SZX
// echoed in the response's Block2 option. The exchanges run through the
// full codec (Loopback) so the option bytes on the wire are what is
// asserted.
func TestBlockServerHonorsRequestedSZX(t *testing.T) {
	payload := make([]byte, 1536)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	reg := dist.NewRegistry(0)
	name := reg.Put(payload)
	ex := &coap.Loopback{Handler: (&coap.BlockServer{Source: reg}).Handle}

	get := func(num uint32, szx uint8) *coap.Message {
		req := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
		req.SetPath(coap.PathBlocks)
		req.AddOption(coap.OptUriQuery, []byte("b="+name.String()))
		req.AddOption(coap.OptBlock2, coap.Block{Num: num, SZX: szx}.Marshal())
		resp, err := ex.Exchange(req)
		if err != nil {
			t.Fatalf("block %d szx %d: %v", num, szx, err)
		}
		return resp
	}

	for _, tc := range []struct {
		num       uint32
		szx       uint8
		wantLen   int
		wantBlock []byte // pinned Block2 option wire bytes
	}{
		{0, 5, 512, []byte{0x0D}},  // num 0, more, SZX 5
		{1, 5, 512, []byte{0x1D}},  // num 1, more, SZX 5
		{2, 5, 512, []byte{0x25}},  // num 2, last, SZX 5
		{0, 6, 1024, []byte{0x0E}}, // num 0, more, SZX 6
		{1, 6, 512, []byte{0x16}},  // num 1, last (short), SZX 6
	} {
		resp := get(tc.num, tc.szx)
		if resp.Code != coap.CodeContent {
			t.Fatalf("block %d szx %d code = %v", tc.num, tc.szx, resp.Code)
		}
		if len(resp.Payload) != tc.wantLen {
			t.Fatalf("block %d szx %d payload = %d bytes, want %d",
				tc.num, tc.szx, len(resp.Payload), tc.wantLen)
		}
		raw, ok := resp.Option(coap.OptBlock2)
		if !ok {
			t.Fatalf("block %d szx %d: missing Block2", tc.num, tc.szx)
		}
		if !bytes.Equal(raw, tc.wantBlock) {
			t.Fatalf("block %d szx %d Block2 wire bytes = %x, want %x",
				tc.num, tc.szx, raw, tc.wantBlock)
		}
		start := int(tc.num) * coap.Block{SZX: tc.szx}.Size()
		if !bytes.Equal(resp.Payload, payload[start:start+tc.wantLen]) {
			t.Fatalf("block %d szx %d: wrong bytes", tc.num, tc.szx)
		}
	}
}

// TestBlockServerRejectsReservedSZX pins the bounds check: the reserved
// SZX 7 (RFC 7959 §2.2) in a request must be refused, not interpreted
// as a 2048-byte block.
func TestBlockServerRejectsReservedSZX(t *testing.T) {
	reg := dist.NewRegistry(0)
	name := reg.Put([]byte("payload"))
	srv := &coap.BlockServer{Source: reg}

	req := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	req.SetPath(coap.PathBlocks)
	req.AddOption(coap.OptUriQuery, []byte("b="+name.String()))
	req.AddOption(coap.OptBlock2, []byte{0x0F}) // num 0, more, SZX 7
	if resp := srv.Handle(req); resp.Code != coap.CodeBadReq {
		t.Fatalf("reserved SZX code = %v, want 4.00", resp.Code)
	}
}

func TestBlockServerErrorMapping(t *testing.T) {
	reg := dist.NewRegistry(0)
	name := reg.Put(make([]byte, 100))
	srv := &coap.BlockServer{Source: reg}

	get := func(q string, block []byte) coap.Code {
		req := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
		req.SetPath(coap.PathBlocks)
		if q != "" {
			req.AddOption(coap.OptUriQuery, []byte(q))
		}
		if block != nil {
			req.AddOption(coap.OptBlock2, block)
		}
		return srv.Handle(req).Code
	}

	if code := get("b="+dist.NameOf([]byte("absent")).String(), nil); code != coap.CodeNotFound {
		t.Fatalf("unknown name code = %v, want 4.04", code)
	}
	if code := get("b=zzzz", nil); code != coap.CodeBadReq {
		t.Fatalf("malformed name code = %v, want 4.00", code)
	}
	if code := get("", nil); code != coap.CodeBadReq {
		t.Fatalf("missing name code = %v, want 4.00", code)
	}
	// Block far past the end of the payload.
	if code := get("b="+name.String(), coap.Block{Num: 99, SZX: 2}.Marshal()); code != coap.CodeBadReq {
		t.Fatalf("out-of-range code = %v, want 4.00", code)
	}
}

// TestExchangerSourceRoundTrip reassembles a payload through the
// remote-source adapter — the caching proxy's origin-fill path.
func TestExchangerSourceRoundTrip(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	reg := dist.NewRegistry(0)
	name := reg.Put(payload)
	src := &coap.ExchangerSource{Ex: &coap.Loopback{Handler: (&coap.BlockServer{Source: reg}).Handle}}

	var got []byte
	for num := uint32(0); ; num++ {
		data, more, err := src.Block(name, num, 1024)
		if err != nil {
			t.Fatalf("block %d: %v", num, err)
		}
		got = append(got, data...)
		if !more {
			break
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload differs")
	}
	if _, _, err := src.Block(dist.NameOf([]byte("absent")), 0, 1024); !errors.Is(err, dist.ErrUnknownName) {
		t.Fatalf("unknown name: %v, want ErrUnknownName", err)
	}
}

// TestPullImageHonorsRequestedSZX covers the session-bound image path:
// the same transfer a constrained device runs at 64 bytes can be pulled
// at 512 by a better-connected client.
func TestPullImageHonorsRequestedSZX(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)

	tok, err := b.Device.Agent.RequestDeviceToken()
	if err != nil {
		t.Fatal(err)
	}
	tokBytes, _ := tok.MarshalBinary()
	req := &coap.Message{Type: coap.Confirmable, Code: coap.CodePOST, Payload: tokBytes}
	req.SetPath(coap.PathRequest)
	req.AddOption(coap.OptUriQuery, []byte("app=2a"))
	if resp := srv.Handle(req); resp.Code != coap.CodeContent {
		t.Fatalf("request code = %v", resp.Code)
	}

	img := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET}
	img.SetPath(coap.PathImage)
	img.AddOption(coap.OptUriQuery, []byte("d="+hex32(tok.DeviceID)))
	img.AddOption(coap.OptUriQuery, []byte("n="+hex32(tok.Nonce)))
	img.AddOption(coap.OptBlock2, coap.Block{Num: 0, SZX: 5}.Marshal())
	resp := srv.Handle(img)
	if resp.Code != coap.CodeContent {
		t.Fatalf("image code = %v", resp.Code)
	}
	if len(resp.Payload) != 512 {
		t.Fatalf("payload = %d bytes, want 512", len(resp.Payload))
	}
	b.Device.Agent.Abort()
}

func TestPullClientMultiSourceFromOrigin(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)
	client := b.PullClient()
	client.Ex = &coap.LinkExchanger{Link: b.Link, Handler: srv.Handle}
	client.Sources = []coap.BlockSource{{Name: "origin", Ex: &coap.Loopback{Handler: srv.Handle}}}

	staged, err := client.CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate: %v", err)
	}
	if !staged {
		t.Fatal("no update staged over the block path")
	}
	if !b.Device.ReadyToReboot() {
		t.Fatal("device not ready to reboot")
	}
}

// timeoutExchanger is a source whose transport never answers.
type timeoutExchanger struct{}

func (timeoutExchanger) Exchange(*coap.Message) (*coap.Message, error) {
	return nil, coap.ErrTimeout
}

func TestPullClientFailsOverFromDeadSource(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)
	log := events.NewLog(nil, 0)
	client := b.PullClient()
	client.Ex = &coap.LinkExchanger{Link: b.Link, Handler: srv.Handle}
	client.Events = log
	client.Sources = []coap.BlockSource{
		{Name: "peer", Ex: timeoutExchanger{}},
		{Name: "origin", Ex: &coap.Loopback{Handler: srv.Handle}},
	}

	staged, err := client.CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate: %v", err)
	}
	if !staged {
		t.Fatal("no update staged after failover")
	}
	if log.Count(events.KindSourceFailover) == 0 {
		t.Fatal("no source-failover event emitted")
	}
}

// TestPullClientPoisonedSourceFailsOver: a source that serves mutated
// blocks costs a wasted transfer — the digest check rejects it, the
// client excludes the source and completes from the origin.
func TestPullClientPoisonedSourceFailsOver(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)
	poisoned := func(req *coap.Message) *coap.Message {
		resp := srv.Handle(req)
		if req.Path() == coap.PathBlocks && len(resp.Payload) > 0 {
			resp.Payload[0] ^= 0x01
		}
		return resp
	}
	log := events.NewLog(nil, 0)
	client := b.PullClient()
	client.Ex = &coap.LinkExchanger{Link: b.Link, Handler: srv.Handle}
	client.Events = log
	client.Sources = []coap.BlockSource{
		{Name: "proxy", Ex: &coap.Loopback{Handler: poisoned}},
		{Name: "origin", Ex: &coap.Loopback{Handler: srv.Handle}},
	}

	staged, err := client.CheckAndUpdate()
	if err != nil {
		t.Fatalf("CheckAndUpdate after poisoned source: %v", err)
	}
	if !staged {
		t.Fatal("no update staged after excluding the poisoned source")
	}
	if log.Count(events.KindSourceFailover) == 0 {
		t.Fatal("no source-failover event emitted")
	}
}

func TestPullClientAllSourcesPoisonedFails(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)
	poisoned := func(req *coap.Message) *coap.Message {
		resp := srv.Handle(req)
		if req.Path() == coap.PathBlocks && len(resp.Payload) > 0 {
			resp.Payload[0] ^= 0x01
		}
		return resp
	}
	client := b.PullClient()
	client.Ex = &coap.LinkExchanger{Link: b.Link, Handler: srv.Handle}
	client.Sources = []coap.BlockSource{
		{Name: "proxy", Ex: &coap.Loopback{Handler: poisoned}},
		{Name: "origin", Ex: &coap.Loopback{Handler: poisoned}},
	}

	staged, err := client.CheckAndUpdate()
	if staged || err == nil {
		t.Fatalf("poisoned everything: staged=%v err=%v, want failure", staged, err)
	}
	var se *coap.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want *SourceError", err)
	}
	if b.Device.ReadyToReboot() {
		t.Fatal("device staged a poisoned update")
	}
}

// TestPullClientPayloadSink verifies the peer-assist hook: a completed
// multi-source transfer hands the exact payload bytes to the sink, and
// those bytes carry the name the origin advertised (so re-serving them
// under that name is sound).
func TestPullClientPayloadSink(t *testing.T) {
	b := newPullBed(t, true)
	srv := coap.NewPullServer(b.Update)
	var sunk []byte
	client := b.PullClient()
	client.Ex = &coap.LinkExchanger{Link: b.Link, Handler: srv.Handle}
	client.Sources = []coap.BlockSource{{Name: "origin", Ex: &coap.Loopback{Handler: srv.Handle}}}
	client.PayloadSink = func(p []byte) { sunk = append([]byte(nil), p...) }

	staged, err := client.CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("CheckAndUpdate: staged=%v err=%v", staged, err)
	}
	if len(sunk) == 0 {
		t.Fatal("payload sink never called")
	}
	// The sunk bytes must be servable under their content name from the
	// origin's own registry — i.e. they are exactly the wire payload.
	if _, ok := b.Update.Blocks().Payload(dist.NameOf(sunk)); !ok {
		t.Fatal("sunk payload does not match any registered block payload")
	}
}

// TestOriginEgressCounter pins the egress accounting the cache-tier
// benchmarks rely on: every response payload byte the origin serves is
// charged, so a transfer of N payload bytes moves the counter by at
// least N.
func TestOriginEgressCounter(t *testing.T) {
	b := newPullBed(t, true)
	egress := coap.OriginEgressCounter(b.Update.Telemetry())
	before := egress.Value()
	staged, err := b.PullClient().CheckAndUpdate()
	if err != nil || !staged {
		t.Fatalf("CheckAndUpdate: staged=%v err=%v", staged, err)
	}
	if egress.Value() <= before {
		t.Fatalf("origin egress did not advance: %d -> %d", before, egress.Value())
	}
}
