// Package platform defines the hardware and operating-system profiles
// of the paper's evaluation targets: Nordic nRF52840, TI CC2650, and
// TI CC2538, running Zephyr, RIOT, or Contiki (§V).
//
// Flash timing constants are *effective* values — they include driver
// and OS overhead — calibrated so that the headline configuration
// (nRF52840 + Zephyr) reproduces the phase durations of Fig. 8a; see
// EXPERIMENTS.md for the calibration notes.
package platform

import (
	"fmt"
	"time"

	"upkit/internal/flash"
)

// OS identifies one of the evaluated operating systems.
type OS int

// Evaluated operating systems.
const (
	Zephyr OS = iota + 1
	RIOT
	Contiki
)

// String names the OS.
func (o OS) String() string {
	switch o {
	case Zephyr:
		return "Zephyr"
	case RIOT:
		return "RIOT"
	case Contiki:
		return "Contiki"
	default:
		return fmt.Sprintf("OS(%d)", int(o))
	}
}

// AllOSes lists the evaluated operating systems in the paper's order.
func AllOSes() []OS { return []OS{Zephyr, RIOT, Contiki} }

// Approach is the network configuration of the update agent (§IV-B).
type Approach int

// Update distribution approaches.
const (
	// Pull: the device polls the update server over CoAP/6LoWPAN.
	Pull Approach = iota + 1
	// Push: a smartphone forwards updates over BLE.
	Push
)

// String names the approach.
func (a Approach) String() string {
	switch a {
	case Pull:
		return "pull"
	case Push:
		return "push"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// MCU describes one hardware platform.
type MCU struct {
	// Name is the part number.
	Name string
	// Internal is the on-chip flash geometry.
	Internal flash.Geometry
	// External is the off-chip SPI flash, if any (the CC2650 needs it
	// to hold the second slot, §V).
	External *flash.Geometry
	// RAMBytes is the SRAM size.
	RAMBytes int
	// ReservedBootloader is the internal-flash area reserved for the
	// bootloader itself.
	ReservedBootloader int
}

// HasExternalFlash reports whether the platform carries SPI flash.
func (m MCU) HasExternalFlash() bool { return m.External != nil }

// NRF52840 returns the Nordic nRF52840 profile (1 MiB flash, 256 KiB
// RAM). Erase/program times are effective values (driver + OS overhead
// included) calibrated against Fig. 8a: a safe-swap sector (3 erases +
// 3×16 page programs + reads) costs ≈454 ms, so the 28-sector
// push-configuration swap lands at ≈12.7 s while the slot erase during
// Start-update stays under 2 s.
func NRF52840() MCU {
	return MCU{
		Name: "nRF52840",
		Internal: flash.Geometry{
			Name:        "nrf52840-internal",
			Size:        1024 * 1024,
			SectorSize:  4096,
			PageSize:    256,
			EraseSector: 60 * time.Millisecond,
			ProgramPage: 5000 * time.Microsecond,
			ReadPage:    30 * time.Microsecond,
		},
		RAMBytes:           256 * 1024,
		ReservedBootloader: 32 * 1024,
	}
}

// CC2650 returns the TI CC2650 profile (128 KiB internal flash, 20 KiB
// RAM, plus 1 MiB external SPI NOR for the non-bootable slot).
func CC2650() MCU {
	ext := flash.Geometry{
		Name:        "cc2650-external-mx25r",
		Size:        1024 * 1024,
		SectorSize:  4096,
		PageSize:    256,
		EraseSector: 240 * time.Millisecond,
		ProgramPage: 4 * time.Millisecond,
		ReadPage:    800 * time.Microsecond,
		External:    true,
	}
	return MCU{
		Name: "CC2650",
		Internal: flash.Geometry{
			Name:        "cc2650-internal",
			Size:        128 * 1024,
			SectorSize:  4096,
			PageSize:    256,
			EraseSector: 90 * time.Millisecond,
			ProgramPage: 1500 * time.Microsecond,
			ReadPage:    20 * time.Microsecond,
		},
		External:           &ext,
		RAMBytes:           20 * 1024,
		ReservedBootloader: 20 * 1024,
	}
}

// CC2538 returns the TI CC2538 profile (512 KiB flash, 32 KiB RAM,
// 2 KiB erase sectors).
func CC2538() MCU {
	return MCU{
		Name: "CC2538",
		Internal: flash.Geometry{
			Name:        "cc2538-internal",
			Size:        512 * 1024,
			SectorSize:  2048,
			PageSize:    256,
			EraseSector: 60 * time.Millisecond,
			ProgramPage: 1700 * time.Microsecond,
			ReadPage:    25 * time.Microsecond,
		},
		RAMBytes:           32 * 1024,
		ReservedBootloader: 16 * 1024,
	}
}

// AllMCUs lists the evaluated platforms.
func AllMCUs() []MCU { return []MCU{NRF52840(), CC2650(), CC2538()} }

// BuildSlotBytes returns the slot size used by the Fig. 8 experiments
// for the given approach on the nRF52840: slots are dimensioned to the
// installed build (Table II), rounded up to whole sectors — 112 KiB for
// the push build (~82 kB) and 224 KiB for the pull build (~218 kB).
// The pull build's larger slots are exactly why its static loading
// phase takes twice as long (Fig. 8a).
func BuildSlotBytes(a Approach) int {
	switch a {
	case Push:
		return 112 * 1024
	default:
		return 224 * 1024
	}
}
