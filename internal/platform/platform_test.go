package platform

import (
	"testing"
	"time"
)

func TestAllMCUGeometriesValid(t *testing.T) {
	for _, mcu := range AllMCUs() {
		t.Run(mcu.Name, func(t *testing.T) {
			if err := mcu.Internal.Validate(); err != nil {
				t.Fatalf("internal geometry: %v", err)
			}
			if mcu.External != nil {
				if err := mcu.External.Validate(); err != nil {
					t.Fatalf("external geometry: %v", err)
				}
				if !mcu.External.External {
					t.Fatal("external flash must be flagged External")
				}
			}
			if mcu.RAMBytes <= 0 {
				t.Fatal("RAM size missing")
			}
			if mcu.ReservedBootloader <= 0 || mcu.ReservedBootloader%mcu.Internal.SectorSize != 0 {
				t.Fatalf("bootloader reservation %d not sector aligned", mcu.ReservedBootloader)
			}
		})
	}
}

func TestPaperPlatformSpecs(t *testing.T) {
	// RFC 7228 class-1/2 envelope the paper targets (§I).
	nrf := NRF52840()
	if nrf.Internal.Size != 1024*1024 || nrf.RAMBytes != 256*1024 {
		t.Fatal("nRF52840 sizes wrong")
	}
	cc2650 := CC2650()
	if cc2650.Internal.Size != 128*1024 || cc2650.RAMBytes != 20*1024 {
		t.Fatal("CC2650 sizes wrong")
	}
	if !cc2650.HasExternalFlash() {
		t.Fatal("CC2650 must carry external flash (holds the NB slot, §V)")
	}
	cc2538 := CC2538()
	if cc2538.Internal.Size != 512*1024 || cc2538.RAMBytes != 32*1024 {
		t.Fatal("CC2538 sizes wrong")
	}
	if cc2538.HasExternalFlash() {
		t.Fatal("CC2538 has no external flash")
	}
}

func TestOSAndApproachNames(t *testing.T) {
	if Zephyr.String() != "Zephyr" || RIOT.String() != "RIOT" || Contiki.String() != "Contiki" {
		t.Fatal("OS names wrong")
	}
	if OS(9).String() == "" {
		t.Fatal("unknown OS must render")
	}
	if Pull.String() != "pull" || Push.String() != "push" {
		t.Fatal("approach names wrong")
	}
	if Approach(9).String() == "" {
		t.Fatal("unknown approach must render")
	}
	if len(AllOSes()) != 3 {
		t.Fatal("three OSes evaluated in the paper")
	}
}

func TestBuildSlotBytes(t *testing.T) {
	push := BuildSlotBytes(Push)
	pull := BuildSlotBytes(Pull)
	if push != 112*1024 || pull != 224*1024 {
		t.Fatalf("slot bytes = %d/%d", push, pull)
	}
	// The 2:1 ratio is what produces Fig. 8a's loading-phase ratio.
	if pull != 2*push {
		t.Fatal("pull slots must be twice the push slots")
	}
	nrf := NRF52840()
	if push%nrf.Internal.SectorSize != 0 || pull%nrf.Internal.SectorSize != 0 {
		t.Fatal("slot sizes must be sector aligned")
	}
}

func TestSwapSectorCostCalibration(t *testing.T) {
	// One safe-swap sector on the nRF52840 costs 3 erases + 3×16 page
	// programs (+ reads); the Fig. 8a calibration targets ≈420 ms so a
	// 28-sector swap (plus journal traffic and the jump) lands near the
	// paper's 12.7 s loading phase.
	g := NRF52840().Internal
	pagesPerSector := g.SectorSize / g.PageSize
	perSector := 3*g.EraseSector + 3*time.Duration(pagesPerSector)*g.ProgramPage +
		3*time.Duration(pagesPerSector)*g.ReadPage
	if perSector < 400*time.Millisecond || perSector > 450*time.Millisecond {
		t.Fatalf("per-sector swap cost = %v, want ≈420ms", perSector)
	}
}
