// Package verifier implements UpKit's verifier module (§IV-D), the
// component shared verbatim between the update agent and the bootloader
// to realise the paper's double verification.
//
// The agent-side check (VerifyManifestForAgent) runs *before* the
// firmware is downloaded and enforces the full freshness contract: both
// signatures plus device ID, nonce, old/new version, app ID, link
// offset, and size. The bootloader-side check (VerifyManifestForBoot)
// runs after reboot; the nonce lives only in the agent's RAM, so the
// bootloader re-checks everything except the nonce and re-validates the
// firmware digest, catching images torn by a mid-update power loss.
package verifier

import (
	"errors"
	"fmt"
	"io"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/simclock"
)

// Verification failures. Each check has its own sentinel so tests and
// the FSM can tell exactly which property was violated.
var (
	ErrVendorSig  = errors.New("verifier: vendor signature invalid")
	ErrServerSig  = errors.New("verifier: update-server signature invalid")
	ErrVendorKey  = errors.New("verifier: vendor key unusable")
	ErrServerKey  = errors.New("verifier: update-server key unusable")
	ErrDeviceID   = errors.New("verifier: device ID mismatch")
	ErrNonce      = errors.New("verifier: nonce mismatch (stale or replayed update)")
	ErrVersion    = errors.New("verifier: version not strictly newer")
	ErrOldVersion = errors.New("verifier: differential base version mismatch")
	ErrAppID      = errors.New("verifier: app ID mismatch")
	ErrLinkOffset = errors.New("verifier: link offset incompatible with slot")
	ErrTooLarge   = errors.New("verifier: firmware exceeds slot capacity")
	ErrDigest     = errors.New("verifier: firmware digest mismatch")
	ErrRollback   = errors.New("verifier: security version rollback")
	ErrExpired    = errors.New("verifier: manifest expired")
)

// KeySource resolves the key named by a manifest to verification-key
// material plus its lifecycle state. When the key is known but revoked
// or expired the implementation returns the key ALONGSIDE the error —
// the bootloader grandfathers already-confirmed images (see
// VerifyConfirmedForBoot), which needs the key material even when the
// lifecycle forbids new installs. security.Keystore satisfies this.
type KeySource interface {
	VerificationKey(role security.KeyRole, keyID uint32) (*security.PublicKey, error)
}

// Keys holds the two verification keys provisioned on a device. It is
// the static, pre-lifecycle KeySource: key IDs are ignored and keys
// never expire or revoke — the behaviour of a device provisioned with
// bare keys rather than a keystore.
type Keys struct {
	// Vendor verifies the vendor server's signature (integrity and
	// authenticity of the firmware description).
	Vendor *security.PublicKey
	// Server verifies the update server's per-request signature
	// (freshness and device binding).
	Server *security.PublicKey
}

// VerificationKey implements KeySource with static keys.
func (k Keys) VerificationKey(role security.KeyRole, keyID uint32) (*security.PublicKey, error) {
	switch role {
	case security.RoleVendor:
		return k.Vendor, nil
	case security.RoleServer:
		return k.Server, nil
	default:
		return nil, fmt.Errorf("%w: %s/%d", security.ErrUnknownKey, role, keyID)
	}
}

// DeviceInfo is what the verifier knows about the device it protects.
type DeviceInfo struct {
	// DeviceID is the device's unique 32-bit identifier.
	DeviceID uint32
	// AppID identifies the application/platform build installed.
	AppID uint32
	// CurrentVersion is the newest firmware version present on the
	// device; updates must be strictly newer.
	CurrentVersion uint16
	// SecurityVersion is the device's persisted anti-rollback counter;
	// manifests carrying a lower security version are rejected. Zero
	// (the initial counter value) accepts everything.
	SecurityVersion uint32
	// Now is the device's notion of Unix-seconds time for manifest
	// expiry checks, or zero on devices without a time source (expiry
	// is then not enforced).
	Now uint64
}

// SlotInfo is what the verifier knows about the destination slot.
type SlotInfo struct {
	// LinkBase is the execution address of the slot, or slot.AnyLink
	// (0xFFFFFFFF) for position-independent images.
	LinkBase uint32
	// Capacity is the maximum firmware size the slot can hold.
	Capacity int
}

// anyLink mirrors slot.AnyLink without importing the slot package (the
// verifier is also used by the bootloader before slots are resolved).
const anyLink uint32 = 0xFFFFFFFF

// Verifier performs UpKit's manifest and firmware checks. If Clock is
// non-nil, the modelled CPU cost of every cryptographic operation is
// charged to it.
type Verifier struct {
	Suite security.Suite
	Keys  Keys
	// Source, when non-nil, resolves verification keys by (role, key ID)
	// instead of the static Keys — this is how a keystore with rotation
	// and revocation is wired in.
	Source KeySource
	Clock  *simclock.Clock
}

// New returns a verifier using suite and keys, charging crypto costs to
// clock (which may be nil).
func New(suite security.Suite, keys Keys, clock *simclock.Clock) *Verifier {
	return &Verifier{Suite: suite, Keys: keys, Clock: clock}
}

// keySource returns the active key source.
func (v *Verifier) keySource() KeySource {
	if v.Source != nil {
		return v.Source
	}
	return v.Keys
}

func (v *Verifier) chargeHash(n int) {
	if v.Clock != nil {
		v.Clock.Advance(v.Suite.Cost().HashCost(n))
	}
}

func (v *Verifier) chargeVerify() {
	if v.Clock != nil {
		v.Clock.Advance(v.Suite.Cost().Verify)
	}
}

// verifySignatures checks the double signature, resolving each key
// through the key source. With grandfather set, lifecycle errors
// (revoked/expired/not-yet-valid) are forgiven as long as the key
// material itself is known — the signatures must still verify.
func (v *Verifier) verifySignatures(m *manifest.Manifest, grandfather bool) error {
	vendorKey, err := v.keySource().VerificationKey(security.RoleVendor, m.VendorKeyID)
	if err != nil && !(grandfather && vendorKey != nil) {
		return fmt.Errorf("%w: %w", ErrVendorKey, err)
	}
	v.chargeHash(len(m.VendorSigningBytes()))
	v.chargeVerify()
	if !m.VerifyVendorSig(v.Suite, vendorKey) {
		return ErrVendorSig
	}
	serverKey, err := v.keySource().VerificationKey(security.RoleServer, m.ServerKeyID)
	if err != nil && !(grandfather && serverKey != nil) {
		return fmt.Errorf("%w: %w", ErrServerKey, err)
	}
	v.chargeHash(len(m.ServerSigningBytes()))
	v.chargeVerify()
	if !m.VerifyServerSig(v.Suite, serverKey) {
		return ErrServerSig
	}
	return nil
}

// verifyCommonFields checks the fields both the agent and the
// bootloader can validate.
func verifyCommonFields(m *manifest.Manifest, dev DeviceInfo, dst SlotInfo) error {
	switch {
	case m.DeviceID != dev.DeviceID:
		return fmt.Errorf("%w: manifest %#x, device %#x", ErrDeviceID, m.DeviceID, dev.DeviceID)
	case m.AppID != dev.AppID:
		return fmt.Errorf("%w: manifest %#x, device %#x", ErrAppID, m.AppID, dev.AppID)
	case m.Version <= dev.CurrentVersion:
		return fmt.Errorf("%w: manifest v%d, device v%d", ErrVersion, m.Version, dev.CurrentVersion)
	case m.SecurityVersion < dev.SecurityVersion:
		return fmt.Errorf("%w: manifest sec v%d, device sec v%d", ErrRollback, m.SecurityVersion, dev.SecurityVersion)
	case dev.Now != 0 && m.NotAfter != 0 && dev.Now > m.NotAfter:
		return fmt.Errorf("%w: not-after %d, now %d", ErrExpired, m.NotAfter, dev.Now)
	case dst.LinkBase != anyLink && m.LinkOffset != dst.LinkBase:
		return fmt.Errorf("%w: manifest %#x, slot %#x", ErrLinkOffset, m.LinkOffset, dst.LinkBase)
	case int(m.Size) > dst.Capacity:
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, m.Size, dst.Capacity)
	}
	return nil
}

// VerifyManifestForAgent is the early, agent-side verification (step 9
// in Fig. 2): it runs before any firmware byte is downloaded and
// enforces the complete freshness contract against the device token the
// agent issued for this request.
func (v *Verifier) VerifyManifestForAgent(m *manifest.Manifest, tok manifest.DeviceToken, dev DeviceInfo, dst SlotInfo) error {
	if err := v.verifySignatures(m, false); err != nil {
		return err
	}
	if m.Nonce != tok.Nonce {
		return fmt.Errorf("%w: manifest %#x, token %#x", ErrNonce, m.Nonce, tok.Nonce)
	}
	if err := verifyCommonFields(m, dev, dst); err != nil {
		return err
	}
	if m.IsDifferential() && m.OldVersion != tok.CurrentVersion {
		return fmt.Errorf("%w: patch base v%d, device v%d", ErrOldVersion, m.OldVersion, tok.CurrentVersion)
	}
	return nil
}

// VerifyManifestForBoot is the bootloader-side re-verification (step 16
// in Fig. 2). The nonce is not checked — it never leaves the agent's
// RAM — but everything else is, including both signatures.
// currentVersion is the version of the other (previously running)
// image, or 0 when there is none.
func (v *Verifier) VerifyManifestForBoot(m *manifest.Manifest, dev DeviceInfo, dst SlotInfo) error {
	if err := v.verifySignatures(m, false); err != nil {
		return err
	}
	return verifyCommonFields(m, dev, dst)
}

// VerifyConfirmedForBoot is the lenient boot-time check for an image
// that has already been booted and confirmed (or for the factory
// recovery image). Revoking or expiring a key must never brick devices
// already running firmware it signed, so lifecycle errors on a known
// key are grandfathered — but the signatures themselves must still
// verify, and the structural fields (IDs, link offset, size) still
// hold. Rollback and expiry gates do not apply: they police what may be
// *installed*, never what may keep *running*.
func (v *Verifier) VerifyConfirmedForBoot(m *manifest.Manifest, dev DeviceInfo, dst SlotInfo) error {
	if err := v.verifySignatures(m, true); err != nil {
		return err
	}
	lenient := dev
	lenient.SecurityVersion = 0
	lenient.Now = 0
	return verifyCommonFields(m, lenient, dst)
}

// VerifyFirmware streams the firmware and compares its digest with the
// manifest (step 13 agent-side, step 16 bootloader-side).
func (v *Verifier) VerifyFirmware(r io.Reader, m *manifest.Manifest) error {
	h := v.Suite.NewHash()
	n, err := io.Copy(h, r)
	if err != nil {
		return fmt.Errorf("verifier: read firmware: %w", err)
	}
	v.chargeHash(int(n))
	if n != int64(m.Size) {
		return fmt.Errorf("%w: read %d bytes, manifest says %d", ErrDigest, n, m.Size)
	}
	var got security.Digest
	copy(got[:], h.Sum(nil))
	if got != m.FirmwareDigest {
		return ErrDigest
	}
	return nil
}

// Reason maps a verification error to the stable label used by the
// `upkit_reject_total{reason}` telemetry family, so agent and
// bootloader rejections aggregate under the same names.
func Reason(err error) string {
	keyReason := func(prefix string) string {
		switch {
		case errors.Is(err, security.ErrKeyRevoked):
			return prefix + "-key-revoked"
		case errors.Is(err, security.ErrKeyExpired):
			return prefix + "-key-expired"
		case errors.Is(err, security.ErrUnknownKey):
			return prefix + "-key-unknown"
		default:
			return prefix + "-key"
		}
	}
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, ErrVendorKey):
		return keyReason("vendor")
	case errors.Is(err, ErrServerKey):
		return keyReason("server")
	case errors.Is(err, ErrVendorSig):
		return "vendor-sig"
	case errors.Is(err, ErrServerSig):
		return "server-sig"
	case errors.Is(err, ErrNonce):
		return "nonce"
	case errors.Is(err, ErrRollback):
		return "rollback"
	case errors.Is(err, ErrExpired):
		return "expired"
	case errors.Is(err, ErrVersion):
		return "version"
	case errors.Is(err, ErrOldVersion):
		return "old-version"
	case errors.Is(err, ErrDeviceID):
		return "device-id"
	case errors.Is(err, ErrAppID):
		return "app-id"
	case errors.Is(err, ErrLinkOffset):
		return "link-offset"
	case errors.Is(err, ErrTooLarge):
		return "too-large"
	case errors.Is(err, ErrDigest):
		return "digest"
	default:
		return "other"
	}
}
