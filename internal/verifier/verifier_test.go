package verifier

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/simclock"
)

type fixture struct {
	suite     security.Suite
	vendorKey *security.PrivateKey
	serverKey *security.PrivateKey
	verifier  *Verifier
	dev       DeviceInfo
	dst       SlotInfo
	tok       manifest.DeviceToken
	firmware  []byte
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	suite := security.NewTinyCrypt()
	vendorKey := security.MustGenerateKey("fixture-vendor")
	serverKey := security.MustGenerateKey("fixture-server")
	f := &fixture{
		suite:     suite,
		vendorKey: vendorKey,
		serverKey: serverKey,
		verifier: New(suite, Keys{
			Vendor: vendorKey.Public(),
			Server: serverKey.Public(),
		}, nil),
		dev:      DeviceInfo{DeviceID: 0xD0D0, AppID: 0xA1, CurrentVersion: 3},
		dst:      SlotInfo{LinkBase: 0x2000, Capacity: 200000},
		tok:      manifest.DeviceToken{DeviceID: 0xD0D0, Nonce: 0x4E4E4E, CurrentVersion: 3},
		firmware: bytes.Repeat([]byte("fw!"), 5000),
	}
	return f
}

// signedManifest builds a correctly double-signed manifest for the
// fixture device, optionally mutated between the two signatures or
// after both (attack simulations tamper at the right point).
func (f *fixture) signedManifest(t *testing.T, mutate func(*manifest.Manifest)) *manifest.Manifest {
	t.Helper()
	m := &manifest.Manifest{
		AppID:          f.dev.AppID,
		Version:        4,
		Size:           uint32(len(f.firmware)),
		FirmwareDigest: f.suite.Digest(f.firmware),
		LinkOffset:     0x2000,
		DeviceID:       f.tok.DeviceID,
		Nonce:          f.tok.Nonce,
		OldVersion:     0,
	}
	if mutate != nil {
		mutate(m)
	}
	if err := m.SignVendor(f.suite, f.vendorKey); err != nil {
		t.Fatal(err)
	}
	if err := m.SignServer(f.suite, f.serverKey); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidManifestPassesAgentAndBoot(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, nil)
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); err != nil {
		t.Fatalf("agent verification: %v", err)
	}
	if err := f.verifier.VerifyManifestForBoot(m, f.dev, f.dst); err != nil {
		t.Fatalf("boot verification: %v", err)
	}
}

func TestTamperedVendorSigRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, nil)
	m.VendorSig[10] ^= 1
	// Tampering with the vendor signature invalidates both layers; the
	// vendor check runs first and reports.
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrVendorSig) {
		t.Fatalf("error = %v, want ErrVendorSig", err)
	}
	// Tampering with only the server signature leaves the vendor layer
	// intact and is caught by the server check.
	m2 := f.signedManifest(t, nil)
	m2.ServerSig[10] ^= 1
	if err := f.verifier.VerifyManifestForAgent(m2, f.tok, f.dev, f.dst); !errors.Is(err, ErrServerSig) {
		t.Fatalf("error = %v, want ErrServerSig", err)
	}
}

func TestForgedVendorPartRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, nil)
	// An attacker with the *server* key (but not the vendor key) alters
	// the firmware description and re-signs the outer layer.
	m.Size++
	if err := m.SignServer(f.suite, f.serverKey); err != nil {
		t.Fatal(err)
	}
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrVendorSig) {
		t.Fatalf("error = %v, want ErrVendorSig", err)
	}
}

func TestReplayedNonceRejectedByAgentOnly(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, func(m *manifest.Manifest) { m.Nonce = 0x0BAD })
	// Agent catches the replay...
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrNonce) {
		t.Fatalf("agent error = %v, want ErrNonce", err)
	}
	// ...while the bootloader cannot check nonces (RAM-only state) and
	// accepts — which is exactly why the agent-side check matters.
	if err := f.verifier.VerifyManifestForBoot(m, f.dev, f.dst); err != nil {
		t.Fatalf("boot verification should pass without nonce check: %v", err)
	}
}

func TestWrongDeviceRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, func(m *manifest.Manifest) { m.DeviceID = 0xFFFF })
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrDeviceID) {
		t.Fatalf("error = %v, want ErrDeviceID", err)
	}
	if err := f.verifier.VerifyManifestForBoot(m, f.dev, f.dst); !errors.Is(err, ErrDeviceID) {
		t.Fatalf("boot error = %v, want ErrDeviceID", err)
	}
}

func TestDowngradeRejected(t *testing.T) {
	f := newFixture(t)
	for _, v := range []uint16{1, 2, 3} { // device runs version 3
		m := f.signedManifest(t, func(m *manifest.Manifest) { m.Version = v })
		if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrVersion) {
			t.Fatalf("v%d: error = %v, want ErrVersion", v, err)
		}
	}
}

func TestWrongAppIDRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, func(m *manifest.Manifest) { m.AppID = 0xBEEF })
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrAppID) {
		t.Fatalf("error = %v, want ErrAppID", err)
	}
}

func TestWrongLinkOffsetRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, func(m *manifest.Manifest) { m.LinkOffset = 0x9000 })
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrLinkOffset) {
		t.Fatalf("error = %v, want ErrLinkOffset", err)
	}
	// A position-independent slot accepts any link offset.
	anySlot := f.dst
	anySlot.LinkBase = anyLink
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, anySlot); err != nil {
		t.Fatalf("AnyLink slot rejected: %v", err)
	}
}

func TestOversizedFirmwareRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, func(m *manifest.Manifest) { m.Size = uint32(f.dst.Capacity + 1) })
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
}

func TestDifferentialBaseVersionChecked(t *testing.T) {
	f := newFixture(t)
	// Patch computed against v2, device runs v3: must be rejected even
	// though everything is correctly signed.
	m := f.signedManifest(t, func(m *manifest.Manifest) {
		m.OldVersion = 2
		m.PatchSize = 100
	})
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrOldVersion) {
		t.Fatalf("error = %v, want ErrOldVersion", err)
	}
	// Patch against the running version passes.
	ok := f.signedManifest(t, func(m *manifest.Manifest) {
		m.OldVersion = 3
		m.PatchSize = 100
	})
	if err := f.verifier.VerifyManifestForAgent(ok, f.tok, f.dev, f.dst); err != nil {
		t.Fatalf("valid differential rejected: %v", err)
	}
}

func TestVerifyFirmware(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, nil)
	if err := f.verifier.VerifyFirmware(bytes.NewReader(f.firmware), m); err != nil {
		t.Fatalf("VerifyFirmware: %v", err)
	}
	// One flipped byte.
	bad := bytes.Clone(f.firmware)
	bad[100] ^= 1
	if err := f.verifier.VerifyFirmware(bytes.NewReader(bad), m); !errors.Is(err, ErrDigest) {
		t.Fatalf("error = %v, want ErrDigest", err)
	}
	// Truncated image.
	if err := f.verifier.VerifyFirmware(bytes.NewReader(f.firmware[:100]), m); !errors.Is(err, ErrDigest) {
		t.Fatalf("truncated error = %v, want ErrDigest", err)
	}
}

func TestVerificationChargesClock(t *testing.T) {
	f := newFixture(t)
	clock := simclock.New()
	f.verifier.Clock = clock
	m := f.signedManifest(t, nil)
	if err := f.verifier.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); err != nil {
		t.Fatal(err)
	}
	// Two signature verifications at 69 ms each plus hashing.
	if got := clock.Now(); got < 138*time.Millisecond {
		t.Fatalf("manifest verification charged %v, want >= 138ms", got)
	}
	before := clock.Now()
	if err := f.verifier.VerifyFirmware(bytes.NewReader(f.firmware), m); err != nil {
		t.Fatal(err)
	}
	// 15000 bytes at 4 µs/byte = 60 ms.
	if d := clock.Now() - before; d < 60*time.Millisecond {
		t.Fatalf("firmware digest charged %v, want >= 60ms", d)
	}
}

func TestKeysFromDifferentAuthorityRejected(t *testing.T) {
	f := newFixture(t)
	m := f.signedManifest(t, nil)
	// A verifier provisioned with an attacker's keys must reject.
	attacker := security.MustGenerateKey("attacker")
	v := New(f.suite, Keys{Vendor: attacker.Public(), Server: f.serverKey.Public()}, nil)
	if err := v.VerifyManifestForAgent(m, f.tok, f.dev, f.dst); !errors.Is(err, ErrVendorSig) {
		t.Fatalf("error = %v, want ErrVendorSig", err)
	}
}
