package dist

import (
	"container/list"
	"fmt"
	"sync"
)

// The proxy-tier block cache.
//
// A caching proxy sits between a fleet and the origin: every device in
// a wave asks for the same named blocks, so the cache fetches each
// block from upstream once and serves the rest from memory. The
// discipline mirrors the update server's patch cache (PR 1): LRU by
// bytes, and a singleflight table so concurrent first requests for a
// cold block trigger exactly one upstream fetch while the rest wait on
// its result — a 1k-device wave costs one origin fetch per block.
//
// Internally the cache stores canonical chunks of ChunkBytes (1024 by
// default, the largest Block2 size) and carves requested blocks out of
// them: every RFC 7959 block size divides 1024, so any requested block
// lies within one chunk, and devices pulling 64-byte radio blocks share
// chunks with proxies pulling 1024-byte ones.

// DefaultChunkBytes is the canonical cached-chunk size: the largest
// CoAP Block2 size (SZX 6), which every smaller SZX divides.
const DefaultChunkBytes = 1024

// DefaultCacheBytes bounds a CachingSource constructed with maxBytes
// <= 0.
const DefaultCacheBytes = 8 << 20

// chunkOverhead approximates per-chunk bookkeeping bytes.
const chunkOverhead = 96

// CacheStats is a snapshot of a CachingSource's counters.
type CacheStats struct {
	// Hits counts requests served from a cached chunk.
	Hits uint64 `json:"hits"`
	// Misses counts requests whose chunk was absent (or uncacheable)
	// and went upstream.
	Misses uint64 `json:"misses"`
	// Fills counts successful upstream chunk fetches; under concurrency
	// the singleflight invariant is Fills == distinct chunks fetched.
	Fills uint64 `json:"fills"`
	// Waits counts requests that piggybacked on an in-flight fill.
	Waits uint64 `json:"waits"`
	// Evictions counts chunks dropped by the LRU size bound.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current cache contents.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
}

// chunkKey identifies one canonical chunk of one named payload.
type chunkKey struct {
	name Name
	num  uint32
}

// chunk is one cached canonical chunk: its bytes and whether the
// payload continues past it.
type chunk struct {
	data []byte
	more bool
}

func (c chunk) size() int { return len(c.data) + chunkOverhead }

// inflightChunk is one in-progress upstream fetch other requests wait
// on. res and err are written exactly once, before done is closed.
type inflightChunk struct {
	done chan struct{}
	res  chunk
	err  error
}

// cacheElem is one LRU element.
type cacheElem struct {
	key chunkKey
	res chunk
}

// CachingSource is a Source that serves blocks from an LRU-by-bytes
// chunk cache, filling from upstream on miss with singleflight dedup.
// It is safe for concurrent use; upstream fetches run outside the
// cache lock.
type CachingSource struct {
	upstream   Source
	chunkBytes int

	mu       sync.Mutex
	maxBytes int
	curBytes int
	entries  map[chunkKey]*list.Element
	lru      *list.List // front = most recently used
	inflight map[chunkKey]*inflightChunk

	hits, misses, fills, waits, evictions uint64
}

// NewCachingSource creates a cache over upstream bounded to maxBytes
// (<= 0 selects DefaultCacheBytes) with canonical chunks of chunkBytes
// (<= 0 selects DefaultChunkBytes; must be a multiple of every block
// size it will serve).
func NewCachingSource(upstream Source, maxBytes, chunkBytes int) *CachingSource {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &CachingSource{
		upstream:   upstream,
		chunkBytes: chunkBytes,
		maxBytes:   maxBytes,
		entries:    make(map[chunkKey]*list.Element),
		lru:        list.New(),
		inflight:   make(map[chunkKey]*inflightChunk),
	}
}

// Block implements Source. Requests whose size does not divide the
// chunk size (or exceeds it) bypass the cache and go straight
// upstream.
func (c *CachingSource) Block(name Name, num uint32, size int) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, fmt.Errorf("dist: invalid block size %d", size)
	}
	if size > c.chunkBytes || c.chunkBytes%size != 0 {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return c.upstream.Block(name, num, size)
	}
	// The requested block lies entirely within one canonical chunk.
	start := int(num) * size
	cnum := uint32(start / c.chunkBytes)
	within := start % c.chunkBytes

	res, err := c.chunk(chunkKey{name: name, num: cnum})
	if err != nil {
		return nil, false, err
	}
	if within > len(res.data) || (within == len(res.data) && within > 0) {
		return nil, false, fmt.Errorf("%w: block %d past chunk %d end", ErrOutOfRange, num, cnum)
	}
	end := min(within+size, len(res.data))
	return res.data[within:end], res.more || end < len(res.data), nil
}

// chunk returns the canonical chunk for key, fetching it upstream at
// most once per distinct key across concurrent callers. Failed fetches
// are not cached — the next request retries upstream.
func (c *CachingSource) chunk(key chunkKey) (chunk, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		res := el.Value.(*cacheElem).res
		c.mu.Unlock()
		return res, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.waits++
		c.mu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	c.misses++
	fl := &inflightChunk{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	data, more, err := c.upstream.Block(key.name, key.num, c.chunkBytes)

	c.mu.Lock()
	fl.res = chunk{data: data, more: more}
	fl.err = err
	delete(c.inflight, key)
	if err == nil {
		c.fills++
		c.insertLocked(key, fl.res)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// insertLocked stores res under key, evicting from the cold end until
// the size bound holds. Chunks larger than the whole bound are not
// cached at all.
func (c *CachingSource) insertLocked(key chunkKey, res chunk) {
	if res.size() > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok { // raced a concurrent insert; stay idempotent
		c.removeLocked(el)
	}
	for c.curBytes+res.size() > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheElem{key: key, res: res})
	c.curBytes += res.size()
}

// removeLocked drops one LRU element.
func (c *CachingSource) removeLocked(el *list.Element) {
	e := c.lru.Remove(el).(*cacheElem)
	delete(c.entries, e.key)
	c.curBytes -= e.res.size()
}

// Stats snapshots the cache's counters.
func (c *CachingSource) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Fills:     c.fills,
		Waits:     c.waits,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.curBytes,
	}
}
