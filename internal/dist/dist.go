// Package dist is the content-addressed distribution seam: firmware
// payloads become immutable sequences of named blocks that any node —
// the origin update server, a caching proxy, an already-updated peer —
// can serve interchangeably.
//
// The name of a payload is the SHA-256 of its bytes. Because UpKit's
// double signature binds the *image* to a device and nonce (not the
// channel it travelled), a block is verifiable no matter who served it:
// the device reassembles the payload, and the existing manifest-digest
// + double-signature pipeline accepts or rejects the result. Every
// intermediary is therefore an untrusted cache by construction — a
// poisoned or stale block can waste a transfer, never install code.
//
// Two Source implementations live here: Registry, the LRU-by-bytes
// store of whole named payloads the origin (and peers) serve from, and
// CachingSource, the proxy-tier block cache that fills from an upstream
// Source on miss with singleflight dedup, so a thousand-device wave
// costs one origin fetch per block.
//
// The package is dependency-free (stdlib only); CoAP framing, telemetry
// bridging, and transport live in the layers above.
package dist

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// NameSize is the size of a block name in bytes (SHA-256).
const NameSize = 32

// Name is the content address of a payload: the SHA-256 of its bytes.
// Identical payloads — every device of an unencrypted campaign pulls
// byte-identical patch bytes — share one name, which is what makes
// in-network caching effective.
type Name [NameSize]byte

// NameOf computes the content address of payload.
func NameOf(payload []byte) Name { return sha256.Sum256(payload) }

// String renders the name as lowercase hex — the wire form used in
// CoAP query options.
func (n Name) String() string { return hex.EncodeToString(n[:]) }

// Source errors.
var (
	// ErrUnknownName reports that the source does not hold the payload.
	ErrUnknownName = errors.New("dist: unknown payload name")
	// ErrOutOfRange reports a block number past the payload's end.
	ErrOutOfRange = errors.New("dist: block out of range")
	// ErrBadName reports a malformed name encoding.
	ErrBadName = errors.New("dist: malformed name")
)

// ParseName decodes the hex form produced by Name.String.
func ParseName(s string) (Name, error) {
	var n Name
	if len(s) != 2*NameSize {
		return n, fmt.Errorf("%w: %d chars, want %d", ErrBadName, len(s), 2*NameSize)
	}
	if _, err := hex.Decode(n[:], []byte(s)); err != nil {
		return n, fmt.Errorf("%w: %v", ErrBadName, err)
	}
	return n, nil
}

// Source serves blocks of named payloads. Block returns size bytes of
// the payload starting at num*size (the final block may be shorter) and
// whether further blocks follow. Callers must not mutate the returned
// slice; implementations may alias internal storage.
type Source interface {
	Block(name Name, num uint32, size int) (data []byte, more bool, err error)
}

// MultiSource chains sources: Block asks each in order and serves from
// the first that knows the name. Sources that hold disjoint payload
// populations — the origin's fleet-shared registry and its per-device
// private registry — compose into one serve surface this way. Errors
// other than ErrUnknownName stop the chain (the source knows the name
// but cannot serve the block, e.g. ErrOutOfRange).
func MultiSource(srcs ...Source) Source { return multiSource(srcs) }

type multiSource []Source

func (m multiSource) Block(name Name, num uint32, size int) ([]byte, bool, error) {
	for _, s := range m {
		data, more, err := s.Block(name, num, size)
		if err == nil || !errors.Is(err, ErrUnknownName) {
			return data, more, err
		}
	}
	return nil, false, ErrUnknownName
}

// registryOverhead approximates the bookkeeping bytes charged per
// stored payload on top of the payload itself.
const registryOverhead = 96

// DefaultRegistryBytes bounds a Registry constructed with n <= 0: room
// for a generous working set of constrained-device payloads.
const DefaultRegistryBytes = 16 << 20

// Registry is a size-bounded, content-addressed store of whole
// payloads, serving them as named blocks. Put is idempotent — storing
// the same bytes twice refreshes one entry — so the origin can register
// every prepared update and an unencrypted campaign still occupies a
// single slot. Eviction is LRU by bytes, with one exception: the most
// recently stored payload is always kept even if it alone exceeds the
// bound, so a just-prepared update is always servable.
//
// Registry is safe for concurrent use and implements Source.
type Registry struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	entries  map[Name]*list.Element
	lru      *list.List // front = most recently used

	puts, hits, misses, evictions uint64
}

// regEntry is one stored payload.
type regEntry struct {
	name    Name
	payload []byte
}

func (e *regEntry) size() int { return len(e.payload) + registryOverhead }

// NewRegistry creates a registry bounded to maxBytes (<= 0 selects
// DefaultRegistryBytes).
func NewRegistry(maxBytes int) *Registry {
	if maxBytes <= 0 {
		maxBytes = DefaultRegistryBytes
	}
	return &Registry{
		maxBytes: maxBytes,
		entries:  make(map[Name]*list.Element),
		lru:      list.New(),
	}
}

// Put stores payload under its content address and returns the name.
// The payload is copied on first insert; re-putting identical bytes
// only refreshes the entry's LRU position.
func (r *Registry) Put(payload []byte) Name {
	name := NameOf(payload)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts++
	if el, ok := r.entries[name]; ok {
		r.lru.MoveToFront(el)
		return name
	}
	e := &regEntry{name: name, payload: append([]byte(nil), payload...)}
	for r.curBytes+e.size() > r.maxBytes {
		back := r.lru.Back()
		if back == nil {
			break // keep the newcomer even if it alone busts the bound
		}
		r.removeLocked(back)
		r.evictions++
	}
	r.entries[name] = r.lru.PushFront(e)
	r.curBytes += e.size()
	return name
}

// removeLocked drops one LRU element.
func (r *Registry) removeLocked(el *list.Element) {
	e := r.lru.Remove(el).(*regEntry)
	delete(r.entries, e.name)
	r.curBytes -= e.size()
}

// Payload returns the stored bytes for name, or ok=false. Callers must
// not mutate the result.
func (r *Registry) Payload(name Name) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	r.lru.MoveToFront(el)
	return el.Value.(*regEntry).payload, true
}

// Block implements Source over the stored payloads.
func (r *Registry) Block(name Name, num uint32, size int) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, fmt.Errorf("dist: invalid block size %d", size)
	}
	r.mu.Lock()
	el, ok := r.entries[name]
	if !ok {
		r.misses++
		r.mu.Unlock()
		return nil, false, ErrUnknownName
	}
	r.hits++
	r.lru.MoveToFront(el)
	payload := el.Value.(*regEntry).payload
	r.mu.Unlock()
	return sliceBlock(payload, num, size)
}

// sliceBlock cuts block num of the given size out of payload.
func sliceBlock(payload []byte, num uint32, size int) ([]byte, bool, error) {
	start := int(num) * size
	if start > len(payload) || (start == len(payload) && start > 0) {
		return nil, false, fmt.Errorf("%w: block %d of %d-byte payload", ErrOutOfRange, num, len(payload))
	}
	end := min(start+size, len(payload))
	return payload[start:end], end < len(payload), nil
}

// RegistryStats is a snapshot of a Registry's counters.
type RegistryStats struct {
	// Puts counts Put calls; Hits/Misses count Block lookups.
	Puts   uint64 `json:"puts"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts payloads dropped by the size bound.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current contents.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
}

// Stats snapshots the registry's counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Puts:      r.puts,
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
		Entries:   r.lru.Len(),
		Bytes:     r.curBytes,
	}
}
