package dist

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNameOfDeterministicAndDistinct(t *testing.T) {
	a := NameOf([]byte("payload-a"))
	if a != NameOf([]byte("payload-a")) {
		t.Fatal("NameOf must be deterministic")
	}
	if a == NameOf([]byte("payload-b")) {
		t.Fatal("different payloads must get different names")
	}
}

func TestParseNameRoundTrip(t *testing.T) {
	n := NameOf([]byte("round-trip"))
	got, err := ParseName(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("round trip: got %s, want %s", got, n)
	}
}

func TestParseNameRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "ab", "zz" + NameOf(nil).String()[2:], NameOf(nil).String() + "00"} {
		if _, err := ParseName(s); !errors.Is(err, ErrBadName) {
			t.Fatalf("ParseName(%q) = %v, want ErrBadName", s, err)
		}
	}
}

func TestRegistryBlocks(t *testing.T) {
	r := NewRegistry(0)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	name := r.Put(payload)

	// Full reassembly at an odd-fitting block size.
	var got []byte
	for num := uint32(0); ; num++ {
		data, more, err := r.Block(name, num, 32)
		if err != nil {
			t.Fatalf("block %d: %v", num, err)
		}
		got = append(got, data...)
		if !more {
			break
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload differs")
	}

	if _, _, err := r.Block(name, 4, 32); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("past-the-end block: %v, want ErrOutOfRange", err)
	}
	if _, _, err := r.Block(NameOf([]byte("absent")), 0, 32); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("unknown name: %v, want ErrUnknownName", err)
	}
}

func TestRegistryPutIdempotent(t *testing.T) {
	r := NewRegistry(0)
	p := []byte("same bytes every device")
	n1 := r.Put(p)
	n2 := r.Put(append([]byte(nil), p...))
	if n1 != n2 {
		t.Fatal("identical payloads must share a name")
	}
	if st := r.Stats(); st.Entries != 1 || st.Puts != 2 {
		t.Fatalf("stats = %+v, want 1 entry from 2 puts", st)
	}
}

func TestRegistryPutCopies(t *testing.T) {
	r := NewRegistry(0)
	p := []byte{1, 2, 3, 4}
	name := r.Put(p)
	p[0] = 99 // caller mutates its copy after Put
	data, _, err := r.Block(name, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Fatal("registry must not alias the caller's payload")
	}
}

func TestRegistryEvictsLRUButKeepsNewest(t *testing.T) {
	r := NewRegistry(2 * (1024 + registryOverhead))
	a := r.Put(make([]byte, 1024))
	b := r.Put(bytes.Repeat([]byte{1}, 1024))
	// Touch a so b is the cold end.
	if _, ok := r.Payload(a); !ok {
		t.Fatal("a must be present")
	}
	c := r.Put(bytes.Repeat([]byte{2}, 1024))
	if _, ok := r.Payload(b); ok {
		t.Fatal("b (cold end) must be evicted")
	}
	if _, ok := r.Payload(a); !ok {
		t.Fatal("a (recently used) must survive")
	}
	if _, ok := r.Payload(c); !ok {
		t.Fatal("newest entry must survive")
	}
	// A payload bigger than the whole bound still gets stored.
	huge := r.Put(make([]byte, 8192))
	if _, ok := r.Payload(huge); !ok {
		t.Fatal("oversized newest payload must still be servable")
	}
}

// countingSource counts upstream fetches per chunk.
type countingSource struct {
	inner Source
	mu    sync.Mutex
	calls map[uint32]int
	total int
}

func (s *countingSource) Block(name Name, num uint32, size int) ([]byte, bool, error) {
	s.mu.Lock()
	if s.calls == nil {
		s.calls = make(map[uint32]int)
	}
	s.calls[num]++
	s.total++
	s.mu.Unlock()
	return s.inner.Block(name, num, size)
}

func TestCachingSourceServesAllSZXSizes(t *testing.T) {
	payload := make([]byte, 5000) // not chunk-aligned
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	reg := NewRegistry(0)
	name := reg.Put(payload)
	cs := NewCachingSource(reg, 0, 0)

	for _, size := range []int{16, 64, 512, 1024} {
		var got []byte
		for num := uint32(0); ; num++ {
			data, more, err := cs.Block(name, num, size)
			if err != nil {
				t.Fatalf("size %d block %d: %v", size, num, err)
			}
			got = append(got, data...)
			if !more {
				break
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: reassembled payload differs", size)
		}
	}
	st := cs.Stats()
	// 5 canonical chunks, fetched once each across all four sweeps.
	if st.Fills != 5 {
		t.Fatalf("fills = %d, want 5", st.Fills)
	}
	if st.Hits == 0 {
		t.Fatal("later sweeps must hit the cache")
	}
}

func TestCachingSourceSingleflight(t *testing.T) {
	payload := make([]byte, 4*DefaultChunkBytes)
	reg := NewRegistry(0)
	name := reg.Put(payload)
	upstream := &countingSource{inner: reg}
	cs := NewCachingSource(upstream, 0, 0)

	const devices = 50
	var wg sync.WaitGroup
	errs := make([]error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for num := uint32(0); ; num++ {
				_, more, err := cs.Block(name, num, 64)
				if err != nil {
					errs[d] = err
					return
				}
				if !more {
					return
				}
			}
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	upstream.mu.Lock()
	total := upstream.total
	upstream.mu.Unlock()
	if total != 4 {
		t.Fatalf("origin fetches = %d, want one per chunk (4)", total)
	}
}

func TestCachingSourceDoesNotCacheErrors(t *testing.T) {
	reg := NewRegistry(0)
	cs := NewCachingSource(reg, 0, 0)
	ghost := NameOf([]byte("not registered yet"))
	if _, _, err := cs.Block(ghost, 0, 64); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("miss on empty upstream: %v, want ErrUnknownName", err)
	}
	reg.Put([]byte("not registered yet"))
	if _, _, err := cs.Block(ghost, 0, 64); err != nil {
		t.Fatalf("after upstream learned the payload: %v", err)
	}
}

func TestCachingSourceEvicts(t *testing.T) {
	payload := make([]byte, 8*DefaultChunkBytes)
	reg := NewRegistry(0)
	name := reg.Put(payload)
	cs := NewCachingSource(reg, 2*(DefaultChunkBytes+chunkOverhead), 0)
	for num := uint32(0); num < 8; num++ {
		if _, _, err := cs.Block(name, num, 1024); err != nil {
			t.Fatalf("block %d: %v", num, err)
		}
	}
	st := cs.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 under the bound", st.Entries)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
}

func TestCachingSourceBypassesOddSizes(t *testing.T) {
	payload := make([]byte, 300)
	reg := NewRegistry(0)
	name := reg.Put(payload)
	cs := NewCachingSource(reg, 0, 256)
	// 96 does not divide 256: served straight from upstream, not cached.
	data, more, err := cs.Block(name, 0, 96)
	if err != nil || len(data) != 96 || !more {
		t.Fatalf("bypass block: %d bytes, more=%v, err=%v", len(data), more, err)
	}
	if st := cs.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want uncached bypass", st)
	}
	if _, _, err := cs.Block(name, 0, -1); err == nil {
		t.Fatal("non-positive size must be rejected")
	}
}

func TestSliceBlockExamples(t *testing.T) {
	p := []byte("0123456789")
	for _, tc := range []struct {
		num  uint32
		size int
		want string
		more bool
	}{
		{0, 4, "0123", true},
		{1, 4, "4567", true},
		{2, 4, "89", false},
		{0, 16, "0123456789", false},
	} {
		data, more, err := sliceBlock(p, tc.num, tc.size)
		if err != nil {
			t.Fatalf("block %d/%d: %v", tc.num, tc.size, err)
		}
		if string(data) != tc.want || more != tc.more {
			t.Fatalf("block %d/%d = %q more=%v, want %q more=%v",
				tc.num, tc.size, data, more, tc.want, tc.more)
		}
	}
	if _, _, err := sliceBlock(p, 3, 4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("block past end: %v, want ErrOutOfRange", err)
	}
}

func ExampleNameOf() {
	name := NameOf([]byte("firmware payload"))
	fmt.Println(len(name.String()))
	// Output: 64
}
