package dist

import (
	"strings"
	"testing"
)

// FuzzParseName hardens the name parser: proxies and block servers feed
// it attacker-controlled query strings, so it must never panic and must
// round-trip exactly what it accepts.
func FuzzParseName(f *testing.F) {
	f.Add(NameOf([]byte("seed")).String())
	f.Add("")
	f.Add(strings.Repeat("0", 64))
	f.Add(strings.Repeat("g", 64))
	f.Add(strings.Repeat("AB", 40))
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return
		}
		// Accepted names re-encode to an equivalent (lowercase hex) form
		// that parses back to the same name.
		back, err := ParseName(n.String())
		if err != nil || back != n {
			t.Fatalf("round trip broke: %q → %s → %s (%v)", s, n, back, err)
		}
	})
}
