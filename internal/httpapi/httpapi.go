// Package httpapi is the shared plumbing of UpKit's HTTP control
// surfaces: one route table, one JSON error envelope, one body-reading
// discipline.
//
// Before this package, each /api/v1/* handler improvised its own error
// shape — http.Error plain text here, bare 404s there, a 400 or a 413
// for the same oversized body depending on the endpoint. Every handler
// registered through a Table now answers uniformly:
//
//   - errors are application/json envelopes:
//     {"error":{"code":"...","message":"..."}}
//   - a path that exists but not for the request's method answers
//     405 Method Not Allowed with an Allow header listing what does
//   - unknown paths answer an enveloped 404
//   - request bodies over the endpoint's bound answer an enveloped
//     413 Request Entity Too Large, whatever the endpoint
//
// The table does its own matching (exact segments plus {name}
// wildcards, exposed via http.Request.PathValue) instead of wrapping
// http.ServeMux: the mux writes its 404/405 responses as plain text
// before a handler ever runs, which is exactly the inconsistency this
// package exists to remove.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strings"
)

// Error codes used across UpKit's HTTP surfaces. Handlers may mint
// their own; these cover the envelope's common cases.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeUnsupportedMedia = "unsupported_media_type"
	CodeTooLarge         = "payload_too_large"
	CodeConflict         = "conflict"
	CodeInternal         = "internal"
)

// ErrorDetail is the envelope's inner object.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody is the JSON error envelope every UpKit API error uses.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// WriteJSON writes v as the response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the shared JSON error envelope.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}

// Errorf is WriteError with a formatted message.
func Errorf(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteError(w, status, code, fmt.Sprintf(format, args...))
}

// route is one registered (method, pattern) pair. Patterns are
// slash-separated; a segment written {name} matches any single
// non-empty segment and is exposed as r.PathValue(name).
type route struct {
	method string
	segs   []string
	h      http.Handler
}

func (rt *route) match(segs []string) bool {
	if len(segs) != len(rt.segs) {
		return false
	}
	for i, p := range rt.segs {
		if isParam(p) {
			if segs[i] == "" {
				return false
			}
			continue
		}
		if p != segs[i] {
			return false
		}
	}
	return true
}

func isParam(seg string) bool {
	return len(seg) > 2 && seg[0] == '{' && seg[len(seg)-1] == '}'
}

// Table is the unified route table: every handler mounted on it shares
// the envelope, the 405+Allow discipline, and the enveloped 404.
type Table struct {
	routes []route
}

// NewTable creates an empty route table.
func NewTable() *Table { return &Table{} }

// Handle registers h for method requests matching pattern.
// Registering the same (method, pattern) twice panics — a route table
// with silent shadowing is a routing bug waiting to be found in prod.
func (t *Table) Handle(method, pattern string, h http.Handler) {
	segs := splitPath(pattern)
	for _, rt := range t.routes {
		if rt.method == method && strings.Join(rt.segs, "/") == strings.Join(segs, "/") {
			panic(fmt.Sprintf("httpapi: duplicate route %s %s", method, pattern))
		}
	}
	t.routes = append(t.routes, route{method: method, segs: segs, h: h})
}

// HandleFunc is Handle for a plain handler function.
func (t *Table) HandleFunc(method, pattern string, h http.HandlerFunc) {
	t.Handle(method, pattern, h)
}

func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// ServeHTTP implements http.Handler: exact-or-wildcard match, enveloped
// 404 for unknown paths, 405 with an Allow header when the path exists
// under other methods.
func (t *Table) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	segs := splitPath(r.URL.Path)
	var allowed []string
	for i := range t.routes {
		rt := &t.routes[i]
		if !rt.match(segs) {
			continue
		}
		if rt.method != r.Method {
			allowed = append(allowed, rt.method)
			continue
		}
		for j, p := range rt.segs {
			if isParam(p) {
				r.SetPathValue(p[1:len(p)-1], segs[j])
			}
		}
		rt.h.ServeHTTP(w, r)
		return
	}
	if len(allowed) > 0 {
		sort.Strings(allowed)
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed; allowed: %s", r.Method, strings.Join(allowed, ", ")))
		return
	}
	WriteError(w, http.StatusNotFound, CodeNotFound, "no such endpoint: "+r.URL.Path)
}

// RequireContentType enforces an exact media type on a body-carrying
// request, answering an enveloped 415 itself when the header is missing
// or different. Parameters (charset=…) are tolerated.
func RequireContentType(w http.ResponseWriter, r *http.Request, want string) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != want {
		WriteError(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
			"Content-Type must be "+want)
		return false
	}
	return true
}

// DecodeJSON reads a JSON request body of at most maxBytes into v,
// enforcing Content-Type application/json. On failure it writes the
// enveloped error — 415 for the wrong media type, 413 when the body
// exceeds the bound, 400 for malformed JSON — and returns false. This
// is the single place oversized bodies are classified, so every
// endpoint answers 413 the same way.
func DecodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	if !RequireContentType(w, r, "application/json") {
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes)).Decode(v); err != nil {
		if isTooLarge(err) {
			Errorf(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds %d bytes", maxBytes)
			return false
		}
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// ReadBody reads a raw request body of at most maxBytes. On failure it
// writes the enveloped error — 413 past the bound, 400 otherwise — and
// returns ok=false.
func ReadBody(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		if isTooLarge(err) {
			Errorf(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds %d bytes", maxBytes)
			return nil, false
		}
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "read body: "+err.Error())
		return nil, false
	}
	return body, true
}

func isTooLarge(err error) bool {
	var tooLarge *http.MaxBytesError
	return errors.As(err, &tooLarge)
}

// DecodeError reads a response body that may carry the error envelope
// and returns its message (or a status-line fallback) — the client-side
// half of the envelope contract.
func DecodeError(resp *http.Response) string {
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error.Message != "" {
		return body.Error.Message
	}
	return resp.Status
}
