package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestTable() *Table {
	t := NewTable()
	t.HandleFunc(http.MethodGet, "/api/v1/things", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"list": "all"})
	})
	t.HandleFunc(http.MethodPost, "/api/v1/things", func(w http.ResponseWriter, r *http.Request) {
		var body map[string]any
		if !DecodeJSON(w, r, 64, &body) {
			return
		}
		WriteJSON(w, http.StatusCreated, body)
	})
	t.HandleFunc(http.MethodGet, "/api/v1/things/{id}", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id")})
	})
	t.HandleFunc(http.MethodGet, "/api/v1/things/{id}/parts/{part}", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "part": r.PathValue("part")})
	})
	return t
}

func do(t *testing.T, table *Table, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	table.ServeHTTP(rec, req)
	return rec
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body %q is not an envelope: %v", rec.Body.String(), err)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("envelope incomplete: %+v", body)
	}
	return body
}

func TestTableRoutesAndParams(t *testing.T) {
	table := newTestTable()
	rec := do(t, table, http.MethodGet, "/api/v1/things/42", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"id":"42"`) {
		t.Fatalf("param route: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, table, http.MethodGet, "/api/v1/things/a7/parts/cpu", "")
	if !strings.Contains(rec.Body.String(), `"part":"cpu"`) {
		t.Fatalf("nested params: %s", rec.Body.String())
	}
}

func TestTableNotFoundEnvelope(t *testing.T) {
	table := newTestTable()
	rec := do(t, table, http.MethodGet, "/api/v1/nope", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	if env := decodeEnvelope(t, rec); env.Error.Code != CodeNotFound {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeNotFound)
	}
}

func TestTableMethodNotAllowed(t *testing.T) {
	table := newTestTable()
	rec := do(t, table, http.MethodDelete, "/api/v1/things", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET, POST" {
		t.Fatalf("Allow = %q, want \"GET, POST\"", allow)
	}
	if env := decodeEnvelope(t, rec); env.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("code = %q", env.Error.Code)
	}
}

func TestDecodeJSONTooLarge(t *testing.T) {
	table := newTestTable()
	rec := do(t, table, http.MethodPost, "/api/v1/things",
		`{"pad":"`+strings.Repeat("A", 100)+`"}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	if env := decodeEnvelope(t, rec); env.Error.Code != CodeTooLarge {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeTooLarge)
	}
}

func TestDecodeJSONWrongContentType(t *testing.T) {
	table := newTestTable()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/things", strings.NewReader("{}"))
	req.Header.Set("Content-Type", "text/plain")
	rec := httptest.NewRecorder()
	table.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415", rec.Code)
	}
}

func TestDecodeJSONBadBody(t *testing.T) {
	table := newTestTable()
	rec := do(t, table, http.MethodPost, "/api/v1/things", "not json")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if env := decodeEnvelope(t, rec); env.Error.Code != CodeBadRequest {
		t.Fatalf("code = %q", env.Error.Code)
	}
}

func TestDuplicateRoutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	table := NewTable()
	h := func(w http.ResponseWriter, r *http.Request) {}
	table.HandleFunc(http.MethodGet, "/x/{a}", h)
	table.HandleFunc(http.MethodGet, "/x/{a}", h)
}
