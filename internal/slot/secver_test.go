package slot

import (
	"errors"
	"testing"

	"upkit/internal/flash"
)

func secRig(t *testing.T) (*flash.Memory, *SecurityCounter) {
	t.Helper()
	mem, err := flash.New(testGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	region, err := flash.NewRegion(mem, 0, 2*testGeometry().SectorSize)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewSecurityCounter(region)
	if err != nil {
		t.Fatal(err)
	}
	return mem, c
}

// reopen rebuilds a counter over the same region — a reboot.
func reopen(t *testing.T, c *SecurityCounter) *SecurityCounter {
	t.Helper()
	nc, err := NewSecurityCounter(c.region)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

func TestSecCounterFactoryStateIsZero(t *testing.T) {
	_, c := secRig(t)
	if got := c.Value(); got != 0 {
		t.Fatalf("factory counter = %d, want 0", got)
	}
}

func TestSecCounterRejectsSingleSector(t *testing.T) {
	mem, err := flash.New(testGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	region, err := flash.NewRegion(mem, 0, testGeometry().SectorSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSecurityCounter(region); !errors.Is(err, ErrSecCounterTooSmall) {
		t.Fatalf("err = %v, want ErrSecCounterTooSmall", err)
	}
}

func TestSecCounterAdvanceIsMonotonicAndDurable(t *testing.T) {
	_, c := secRig(t)
	for _, v := range []uint32{3, 5, 5, 2, 9} {
		if err := c.Advance(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Value(); got != 9 {
		t.Fatalf("counter = %d, want 9 (monotonic max)", got)
	}
	// A reboot rebuilds the cache from flash alone.
	if got := reopen(t, c).Value(); got != 9 {
		t.Fatalf("counter after reopen = %d, want 9", got)
	}
}

func TestSecCounterSurvivesRingWrap(t *testing.T) {
	_, c := secRig(t)
	// Far more advances than the ring holds frames: sectors get erased
	// and reused, and the newest frame must always win the scan.
	for v := uint32(1); v <= 500; v++ {
		if err := c.Advance(v); err != nil {
			t.Fatalf("advance to %d: %v", v, err)
		}
	}
	if got := reopen(t, c).Value(); got != 500 {
		t.Fatalf("counter after wrap = %d, want 500", got)
	}
}

// Power loss at every flash operation of an advance: after the fault the
// persisted value must be the old or the new one — a torn frame fails
// its CRC and is skipped, never read as garbage.
func TestSecCounterPowerLossAtEveryStep(t *testing.T) {
	for n := 0; n < 8; n++ {
		mem, c := secRig(t)
		if err := c.Advance(4); err != nil {
			t.Fatal(err)
		}
		mem.FailAfter(n)
		err := c.Advance(7)
		mem.ClearFault()
		if err != nil && !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("n=%d: err = %v, want ErrPowerLoss", n, err)
		}
		got := reopen(t, c).Value()
		if got != 4 && got != 7 {
			t.Fatalf("n=%d: counter = %d after power loss, want 4 or 7", n, got)
		}
		if err == nil && got != 7 {
			t.Fatalf("n=%d: advance reported success but counter = %d", n, got)
		}
		// The interrupted counter must accept a retry.
		c2 := reopen(t, c)
		if err := c2.Advance(7); err != nil {
			t.Fatalf("n=%d: retry: %v", n, err)
		}
		if got := c2.Value(); got != 7 {
			t.Fatalf("n=%d: counter after retry = %d, want 7", n, got)
		}
	}
}

// A deliberately corrupted (bit-flipped) frame must be ignored by the
// scan, falling back to the best intact frame.
func TestSecCounterSkipsCorruptFrames(t *testing.T) {
	mem, c := secRig(t)
	if err := c.Advance(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(8); err != nil {
		t.Fatal(err)
	}
	// Frame 1 holds value 8 (sector 0, second frame). Flip a payload bit
	// behind the CRC's back via raw memory access.
	raw := make([]byte, secFrameSize)
	if err := c.region.ReadAt(1*secFrameSize, raw); err != nil {
		t.Fatal(err)
	}
	if err := c.region.EraseSectorAt(0); err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0x40 // corrupt the value field, CRC now mismatches
	if err := c.region.ProgramAt(1*secFrameSize, raw); err != nil {
		t.Fatal(err)
	}
	_ = mem
	if got := reopen(t, c).Value(); got != 0 {
		// Sector 0 was erased, so only the corrupt frame remained; it
		// must scan as absent, not as a garbage value.
		t.Fatalf("counter = %d with only a corrupt frame, want 0", got)
	}
}
