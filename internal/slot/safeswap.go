package slot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"upkit/internal/flash"
)

// SafeSwap exchanges two slots in a power-loss-safe way, the technique
// real static-update bootloaders (e.g. mcuboot) use: each sector pair is
// rotated through a scratch sector, and a journal records per-sector
// progress with bit-clearing writes so an interrupted swap can resume
// after reboot instead of leaving both slots torn.
//
// Per sector i the phases are:
//
//	phase 1: A[i] → scratch        (journal byte 0xFF → 0x7F)
//	phase 2: B[i] → A[i]           (journal byte 0x7F → 0x3F)
//	phase 3: scratch → B[i]        (journal byte 0x3F → 0x1F)
//
// A power loss during any phase leaves enough intact state to redo that
// phase: the journal byte is only advanced after the phase's data is
// durably written. This costs three erases and three programs per
// sector — which is exactly why the paper's static loading phase is so
// much slower than A/B loading (Fig. 8c).

// Journal byte values (progressive bit clearing).
const (
	swapPending  byte = 0xFF
	swapScratch  byte = 0x7F // phase 1 done
	swapAWritten byte = 0x3F // phase 2 done
	swapDone     byte = 0x1F // phase 3 done
)

// swapJournalMagic marks an in-progress swap journal.
const swapJournalMagic uint32 = 0x5553574A // "USWJ"

// SafeSwap errors.
var (
	ErrScratchTooSmall = errors.New("slot: scratch region smaller than a sector")
	ErrJournalTooSmall = errors.New("slot: journal region too small")
	ErrGeometry        = errors.New("slot: safe swap requires matching sector sizes")
)

// SwapInProgress reports whether journal records an interrupted swap
// that must be resumed before the slots can be trusted.
func SwapInProgress(journal flash.Region) (bool, error) {
	var hdr [4]byte
	if err := journal.ReadAt(0, hdr[:]); err != nil {
		return false, err
	}
	return binary.BigEndian.Uint32(hdr[:]) == swapJournalMagic, nil
}

// SafeSwap swaps the contents of a and b through scratch, journaling
// progress. If journal already records an interrupted swap of the same
// geometry, the swap resumes where it stopped. On success the journal
// is erased.
func SafeSwap(a, b *Slot, scratch, journal flash.Region) error {
	sector := a.region.Mem.Geometry().SectorSize
	if b.region.Mem.Geometry().SectorSize != sector ||
		scratch.Mem.Geometry().SectorSize != sector {
		return ErrGeometry
	}
	if a.region.Length != b.region.Length {
		return fmt.Errorf("slot: safe swap %s <-> %s: size mismatch", a.Name, b.Name)
	}
	if scratch.Length < sector {
		return ErrScratchTooSmall
	}
	sectors := a.region.Length / sector
	if journal.Length < 4+sectors {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrJournalTooSmall, 4+sectors, journal.Length)
	}

	resuming, err := SwapInProgress(journal)
	if err != nil {
		return err
	}
	if !resuming {
		if err := journal.Erase(); err != nil {
			return fmt.Errorf("slot: journal erase: %w", err)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], swapJournalMagic)
		if err := journal.ProgramAt(0, hdr[:]); err != nil {
			return fmt.Errorf("slot: journal init: %w", err)
		}
	}

	mark := func(i int, state byte) error {
		if err := journal.ProgramAt(4+i, []byte{state}); err != nil {
			return fmt.Errorf("slot: journal mark sector %d: %w", i, err)
		}
		return nil
	}
	state := func(i int) (byte, error) {
		var buf [1]byte
		if err := journal.ReadAt(4+i, buf[:]); err != nil {
			return 0, err
		}
		return buf[0], nil
	}
	copySector := func(srcRead func(int, []byte) error, srcOff int,
		dst flash.Region, dstOff int, buf []byte) error {
		if err := srcRead(srcOff, buf); err != nil {
			return err
		}
		if err := dst.EraseSectorAt(dstOff); err != nil {
			return err
		}
		return dst.ProgramAt(dstOff, buf)
	}

	buf := make([]byte, sector)
	for i := range sectors {
		st, err := state(i)
		if err != nil {
			return err
		}
		off := i * sector
		// A torn journal byte can only have *more* bits cleared than the
		// last durable phase; treating unknown patterns as the previous
		// phase and redoing is always safe because each phase is
		// idempotent given the prior phase's postcondition.
		if st == swapPending {
			if err := copySector(a.region.ReadAt, off, scratch, 0, buf); err != nil {
				return fmt.Errorf("slot: swap phase 1 sector %d: %w", i, err)
			}
			if err := mark(i, swapScratch); err != nil {
				return err
			}
			st = swapScratch
		}
		if st == swapScratch {
			if err := copySector(b.region.ReadAt, off, a.region, off, buf); err != nil {
				return fmt.Errorf("slot: swap phase 2 sector %d: %w", i, err)
			}
			if err := mark(i, swapAWritten); err != nil {
				return err
			}
			st = swapAWritten
		}
		if st == swapAWritten {
			if err := copySector(scratch.ReadAt, 0, b.region, off, buf); err != nil {
				return fmt.Errorf("slot: swap phase 3 sector %d: %w", i, err)
			}
			if err := mark(i, swapDone); err != nil {
				return err
			}
		}
	}
	if err := journal.Erase(); err != nil {
		return fmt.Errorf("slot: journal clear: %w", err)
	}
	return nil
}

// equalRegions is a test helper used by safe-swap tests to compare
// regions efficiently.
func equalRegions(a, b flash.Region) (bool, error) {
	if a.Length != b.Length {
		return false, nil
	}
	bufA := make([]byte, 4096)
	bufB := make([]byte, 4096)
	for off := 0; off < a.Length; off += len(bufA) {
		n := min(len(bufA), a.Length-off)
		if err := a.ReadAt(off, bufA[:n]); err != nil {
			return false, err
		}
		if err := b.ReadAt(off, bufB[:n]); err != nil {
			return false, err
		}
		if !bytes.Equal(bufA[:n], bufB[:n]) {
			return false, nil
		}
	}
	return true, nil
}
