package slot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"upkit/internal/flash"
	"upkit/internal/manifest"
)

// ReceptionJournal is the reception-side mirror of the safeswap journal:
// a small flash region where the update agent persists the progress of
// an in-flight firmware download, so a power loss mid-transfer costs
// only the bytes since the last checkpoint instead of the whole image.
//
// NOR flash cannot rewrite in place, so the journal is a ring of
// fixed-size record frames across at least two sectors. Each Save
// programs the next free frame with a monotonically increasing sequence
// number; entering a sector's first frame erases that sector — and only
// that sector — so the frame holding the latest valid record always
// lives in the sector that is NOT being erased. On load, the valid
// record with the highest sequence number wins; torn frames simply fail
// their CRC and are skipped.
//
// Record frame layout (big endian):
//
//	magic "URXJ" | seq uint32 | len uint32 | payload (len bytes) | crc32
//
// where payload is:
//
//	device token (10 B) | nameLen uint8 | slot name | manifest version
//	uint16 | received uint32 | pipeLen uint16 | pipeline checkpoint

// recFrameSize is the record frame granularity: one frame per sector on
// small-sector parts (CC2538), two on 4 KiB-sector parts.
const recFrameSize = 2048

// recMagic marks a programmed record frame.
const recMagic uint32 = 0x5552584A // "URXJ"

const recHeaderSize = 4 + 4 + 4

// Reception journal errors.
var (
	ErrRecJournalTooSmall = errors.New("slot: reception journal needs at least two sectors")
	ErrRecRecordTooLarge  = errors.New("slot: reception record exceeds frame size")
)

// ReceptionRecord is one persisted download-progress snapshot.
type ReceptionRecord struct {
	// Token is the device token of the in-flight request; its nonce is
	// what lets the double-signature check pass again after a reboot.
	Token manifest.DeviceToken
	// SlotName names the target slot holding the partial image.
	SlotName string
	// ManifestVersion is the accepted manifest's version (a cheap
	// staleness check against the server's advertised latest).
	ManifestVersion uint16
	// Received counts the payload (wire) bytes durably consumed.
	Received int
	// Pipeline is the serialized pipeline checkpoint matching Received.
	Pipeline []byte
}

// ReceptionJournal manages the journal region. The cursor and sequence
// cache are rebuilt from flash whenever they are unknown (fresh object
// or after a failed write), so the struct itself holds no durable state.
type ReceptionJournal struct {
	region    flash.Region
	frameSize int
	frames    int
	perSector int

	scanned bool
	nextSeq uint32
	cursor  int
}

// NewReceptionJournal wraps region, which must span at least two
// sectors so the latest record survives the ring's sector erases.
func NewReceptionJournal(region flash.Region) (*ReceptionJournal, error) {
	sector := region.Mem.Geometry().SectorSize
	if region.Sectors() < 2 {
		return nil, ErrRecJournalTooSmall
	}
	frame := min(recFrameSize, sector)
	return &ReceptionJournal{
		region:    region,
		frameSize: frame,
		frames:    region.Length / frame,
		perSector: sector / frame,
	}, nil
}

// ReceptionPending reports whether region holds a valid reception
// record — the bootloader's cue to preserve a Receiving slot across a
// reboot instead of invalidating it. Read errors report false: an
// unreadable journal must never keep a bad image alive.
func ReceptionPending(region flash.Region) bool {
	j, err := NewReceptionJournal(region)
	if err != nil {
		return false
	}
	rec, err := j.Load()
	return err == nil && rec != nil
}

// frameAt reads and validates the frame at index i, returning the
// decoded record and its sequence number, or nil if the frame is blank
// or corrupt.
func (j *ReceptionJournal) frameAt(i int) (*ReceptionRecord, uint32) {
	hdr := make([]byte, recHeaderSize)
	off := i * j.frameSize
	if err := j.region.ReadAt(off, hdr); err != nil {
		return nil, 0
	}
	if binary.BigEndian.Uint32(hdr) != recMagic {
		return nil, 0
	}
	seq := binary.BigEndian.Uint32(hdr[4:])
	n := int(binary.BigEndian.Uint32(hdr[8:]))
	if n < 0 || recHeaderSize+n+4 > j.frameSize {
		return nil, 0
	}
	frame := make([]byte, recHeaderSize+n+4)
	if err := j.region.ReadAt(off, frame); err != nil {
		return nil, 0
	}
	body := frame[:recHeaderSize+n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(frame[recHeaderSize+n:]) {
		return nil, 0
	}
	rec, err := decodeReceptionRecord(body[recHeaderSize:])
	if err != nil {
		return nil, 0
	}
	return rec, seq
}

// scan walks all frames and rebuilds the cursor/sequence cache.
func (j *ReceptionJournal) scan() (best *ReceptionRecord, bestFrame int) {
	bestFrame = -1
	var bestSeq uint32
	for i := range j.frames {
		rec, seq := j.frameAt(i)
		if rec == nil {
			continue
		}
		if best == nil || seq > bestSeq {
			best, bestSeq, bestFrame = rec, seq, i
		}
	}
	j.nextSeq = bestSeq + 1
	j.cursor = 0
	if bestFrame >= 0 {
		j.cursor = (bestFrame + 1) % j.frames
	}
	j.scanned = true
	return best, bestFrame
}

// Load returns the latest valid record, or nil if the journal holds
// none.
func (j *ReceptionJournal) Load() (*ReceptionRecord, error) {
	rec, _ := j.scan()
	return rec, nil
}

// Save persists rec as the new latest record. On success earlier
// records are superseded (not erased — the ring reclaims them lazily).
func (j *ReceptionJournal) Save(rec *ReceptionRecord) error {
	payload, err := encodeReceptionRecord(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, recHeaderSize+len(payload)+4)
	if len(frame) > j.frameSize {
		return fmt.Errorf("%w: %d > %d bytes", ErrRecRecordTooLarge, len(frame), j.frameSize)
	}
	if !j.scanned {
		j.scan()
	}
	binary.BigEndian.PutUint32(frame, recMagic)
	binary.BigEndian.PutUint32(frame[4:], j.nextSeq)
	binary.BigEndian.PutUint32(frame[8:], uint32(len(payload)))
	copy(frame[recHeaderSize:], payload)
	binary.BigEndian.PutUint32(frame[recHeaderSize+len(payload):],
		crc32.ChecksumIEEE(frame[:recHeaderSize+len(payload)]))

	// Find a programmable frame: entering a sector erases it whole;
	// within a sector, torn frames (not blank, e.g. a previous Save hit
	// by a power loss) are skipped. Bounded: every perSector-th step
	// erases, so at most frames+perSector probes.
	for probe := 0; probe <= j.frames+j.perSector; probe++ {
		at := j.cursor
		if at%j.perSector == 0 {
			if err := j.region.EraseSectorAt(at * j.frameSize); err != nil {
				j.scanned = false
				return fmt.Errorf("slot: reception journal erase: %w", err)
			}
		} else if !j.frameBlank(at) {
			j.cursor = (at + 1) % j.frames
			continue
		}
		if err := j.region.ProgramAt(at*j.frameSize, frame); err != nil {
			j.scanned = false
			return fmt.Errorf("slot: reception journal write: %w", err)
		}
		j.cursor = (at + 1) % j.frames
		j.nextSeq++
		return nil
	}
	j.scanned = false
	return errors.New("slot: reception journal has no free frame")
}

// frameBlank reports whether frame i is fully erased.
func (j *ReceptionJournal) frameBlank(i int) bool {
	buf := make([]byte, j.frameSize)
	if err := j.region.ReadAt(i*j.frameSize, buf); err != nil {
		return false
	}
	for _, b := range buf {
		if b != 0xFF {
			return false
		}
	}
	return true
}

// Invalidate discards all records, erasing only sectors that are not
// already blank (the common post-update case costs zero erases).
func (j *ReceptionJournal) Invalidate() error {
	sector := j.region.Mem.Geometry().SectorSize
	for off := 0; off < j.region.Length; off += sector {
		blank := true
		for f := off / j.frameSize; f < (off+sector)/j.frameSize; f++ {
			if !j.frameBlank(f) {
				blank = false
				break
			}
		}
		if blank {
			continue
		}
		if err := j.region.EraseSectorAt(off); err != nil {
			j.scanned = false
			return fmt.Errorf("slot: reception journal invalidate: %w", err)
		}
	}
	j.scanned = false
	return nil
}

// encodeReceptionRecord renders the record payload.
func encodeReceptionRecord(rec *ReceptionRecord) ([]byte, error) {
	if len(rec.SlotName) > 255 {
		return nil, fmt.Errorf("slot: reception record: slot name %q too long", rec.SlotName)
	}
	if rec.Received < 0 {
		return nil, fmt.Errorf("slot: reception record: negative received count")
	}
	tok, err := rec.Token.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(tok)+1+len(rec.SlotName)+2+4+2+len(rec.Pipeline))
	buf = append(buf, tok...)
	buf = append(buf, byte(len(rec.SlotName)))
	buf = append(buf, rec.SlotName...)
	buf = binary.BigEndian.AppendUint16(buf, rec.ManifestVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(rec.Received))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rec.Pipeline)))
	buf = append(buf, rec.Pipeline...)
	return buf, nil
}

// decodeReceptionRecord parses the record payload.
func decodeReceptionRecord(buf []byte) (*ReceptionRecord, error) {
	rec := &ReceptionRecord{}
	if len(buf) < manifest.TokenEncodedSize+1 {
		return nil, errors.New("slot: reception record truncated")
	}
	if err := rec.Token.UnmarshalBinary(buf[:manifest.TokenEncodedSize]); err != nil {
		return nil, err
	}
	p := manifest.TokenEncodedSize
	nameLen := int(buf[p])
	p++
	if p+nameLen+2+4+2 > len(buf) {
		return nil, errors.New("slot: reception record truncated")
	}
	rec.SlotName = string(buf[p : p+nameLen])
	p += nameLen
	rec.ManifestVersion = binary.BigEndian.Uint16(buf[p:])
	p += 2
	rec.Received = int(binary.BigEndian.Uint32(buf[p:]))
	p += 4
	pipeLen := int(binary.BigEndian.Uint16(buf[p:]))
	p += 2
	if p+pipeLen != len(buf) {
		return nil, errors.New("slot: reception record length mismatch")
	}
	rec.Pipeline = append([]byte(nil), buf[p:p+pipeLen]...)
	return rec, nil
}
