package slot

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"upkit/internal/flash"
)

// swapRig builds two image-bearing slots plus scratch and journal
// regions on one chip.
type swapRig struct {
	mem      *flash.Memory
	a, b     *Slot
	scratch  flash.Region
	journal  flash.Region
	fwA, fwB []byte
}

func newSwapRig(t *testing.T) *swapRig {
	t.Helper()
	mem, err := flash.New(testGeometry(), nil) // 128 KiB chip
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := flash.NewRegion(mem, 0, 48*1024)
	rb, _ := flash.NewRegion(mem, 48*1024, 48*1024)
	scratch, _ := flash.NewRegion(mem, 96*1024, 4096)
	journal, _ := flash.NewRegion(mem, 100*1024, 4096)
	a, err := New("A", ra, Bootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("B", rb, NonBootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := &swapRig{
		mem: mem, a: a, b: b, scratch: scratch, journal: journal,
		fwA: bytes.Repeat([]byte("image-in-slot-A!"), 1500),
		fwB: bytes.Repeat([]byte("image-in-slot-B?"), 2500),
	}
	writeImage(t, a, r.fwA)
	writeImage(t, b, r.fwB)
	return r
}

func (r *swapRig) verifySwapped(t *testing.T) {
	t.Helper()
	ra, err := r.a.FirmwareReader()
	if err != nil {
		t.Fatalf("slot A reader: %v", err)
	}
	gotA, _ := io.ReadAll(ra)
	if !bytes.Equal(gotA, r.fwB) {
		t.Fatal("slot A does not hold image B after safe swap")
	}
	rb, err := r.b.FirmwareReader()
	if err != nil {
		t.Fatalf("slot B reader: %v", err)
	}
	gotB, _ := io.ReadAll(rb)
	if !bytes.Equal(gotB, r.fwA) {
		t.Fatal("slot B does not hold image A after safe swap")
	}
	inProgress, err := SwapInProgress(r.journal)
	if err != nil {
		t.Fatal(err)
	}
	if inProgress {
		t.Fatal("journal still marks a swap in progress")
	}
}

func TestSafeSwapCompletes(t *testing.T) {
	r := newSwapRig(t)
	if err := SafeSwap(r.a, r.b, r.scratch, r.journal); err != nil {
		t.Fatalf("SafeSwap: %v", err)
	}
	r.verifySwapped(t)
}

func TestSafeSwapResumesAfterPowerLoss(t *testing.T) {
	// Inject a power loss after every possible number of flash
	// operations and verify the swap always completes on resume.
	// 12 sectors * 6 ops plus journal traffic ≈ 120 ops; probe a spread.
	for _, failAt := range []int{0, 1, 2, 3, 5, 10, 17, 33, 57, 80, 110} {
		r := newSwapRig(t)
		r.mem.FailAfter(failAt)
		err := SafeSwap(r.a, r.b, r.scratch, r.journal)
		if err == nil {
			// The fault landed after the swap finished; still verify.
			r.verifySwapped(t)
			continue
		}
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("failAt=%d: error = %v, want ErrPowerLoss", failAt, err)
		}
		// Power returns; the bootloader resumes the swap.
		r.mem.ClearFault()
		if err := SafeSwap(r.a, r.b, r.scratch, r.journal); err != nil {
			t.Fatalf("failAt=%d: resume: %v", failAt, err)
		}
		r.verifySwapped(t)
	}
}

func TestSafeSwapSurvivesRepeatedPowerLoss(t *testing.T) {
	// Crash-loop: power fails every few operations until the swap
	// finally completes. This is the strongest robustness property the
	// journal must provide.
	// One phase needs ~18 flash operations (erase + 16 page programs +
	// journal mark); granting 20 per power cycle guarantees at least one
	// phase of progress per attempt, which is the minimum the journal
	// can exploit.
	r := newSwapRig(t)
	for attempt := 0; attempt < 1000; attempt++ {
		r.mem.FailAfter(20)
		err := SafeSwap(r.a, r.b, r.scratch, r.journal)
		if err == nil {
			r.mem.ClearFault()
			r.verifySwapped(t)
			return
		}
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("attempt %d: error = %v, want ErrPowerLoss", attempt, err)
		}
	}
	t.Fatal("swap never completed despite 1000 resume attempts")
}

func TestSwapInProgressReflectsJournal(t *testing.T) {
	r := newSwapRig(t)
	inProgress, err := SwapInProgress(r.journal)
	if err != nil {
		t.Fatal(err)
	}
	if inProgress {
		t.Fatal("fresh journal must not report a swap in progress")
	}
	// Interrupt a swap mid-way.
	r.mem.FailAfter(20)
	if err := SafeSwap(r.a, r.b, r.scratch, r.journal); !errors.Is(err, flash.ErrPowerLoss) {
		t.Fatalf("error = %v, want ErrPowerLoss", err)
	}
	r.mem.ClearFault()
	inProgress, err = SwapInProgress(r.journal)
	if err != nil {
		t.Fatal(err)
	}
	if !inProgress {
		t.Fatal("interrupted swap must be visible in the journal")
	}
}

func TestSafeSwapRejectsMismatchedGeometry(t *testing.T) {
	r := newSwapRig(t)
	otherGeo := testGeometry()
	otherGeo.SectorSize = 2048
	otherGeo.Name = "other"
	otherMem, err := flash.New(otherGeo, nil)
	if err != nil {
		t.Fatal(err)
	}
	otherScratch, _ := flash.NewRegion(otherMem, 0, 2048)
	if err := SafeSwap(r.a, r.b, otherScratch, r.journal); !errors.Is(err, ErrGeometry) {
		t.Fatalf("geometry mismatch error = %v, want ErrGeometry", err)
	}
}

func TestSafeSwapRejectsMismatchedSlotSizes(t *testing.T) {
	r := newSwapRig(t)
	smallRegion, _ := flash.NewRegion(r.mem, 104*1024, 8*1024)
	small, err := New("small", smallRegion, Bootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := SafeSwap(r.a, small, r.scratch, r.journal); err == nil {
		t.Fatal("SafeSwap with mismatched slot sizes must fail")
	}
}

func TestEqualRegionsHelper(t *testing.T) {
	r := newSwapRig(t)
	same, err := equalRegions(r.a.Region(), r.a.Region())
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("a region must equal itself")
	}
	diff, err := equalRegions(r.a.Region(), r.b.Region())
	if err != nil {
		t.Fatal(err)
	}
	if diff {
		t.Fatal("slots with different images must not compare equal")
	}
}
