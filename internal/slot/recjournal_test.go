package slot

import (
	"bytes"
	"errors"
	"testing"

	"upkit/internal/flash"
	"upkit/internal/manifest"
)

// recRig allocates a two-sector journal region on a fresh chip.
func recRig(t *testing.T) (*flash.Memory, flash.Region) {
	t.Helper()
	mem, err := flash.New(testGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	region, err := flash.NewRegion(mem, 0, 2*testGeometry().SectorSize)
	if err != nil {
		t.Fatal(err)
	}
	return mem, region
}

func testRecord(received int) *ReceptionRecord {
	return &ReceptionRecord{
		Token:           manifest.DeviceToken{DeviceID: 0xD0D0CAFE, Nonce: uint32(received) ^ 0x5EED, CurrentVersion: 1},
		SlotName:        "B",
		ManifestVersion: 2,
		Received:        received,
		Pipeline:        bytes.Repeat([]byte{byte(received)}, 64),
	}
}

func sameRecord(a, b *ReceptionRecord) bool {
	return a.Token == b.Token && a.SlotName == b.SlotName &&
		a.ManifestVersion == b.ManifestVersion && a.Received == b.Received &&
		bytes.Equal(a.Pipeline, b.Pipeline)
}

func TestRecJournalEmptyLoadsNil(t *testing.T) {
	_, region := recRig(t)
	j, err := NewReceptionJournal(region)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("empty journal returned a record")
	}
	if ReceptionPending(region) {
		t.Fatal("empty journal reports pending reception")
	}
}

func TestRecJournalRejectsSmallRegion(t *testing.T) {
	mem, _ := recRig(t)
	small, err := flash.NewRegion(mem, 0, testGeometry().SectorSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReceptionJournal(small); !errors.Is(err, ErrRecJournalTooSmall) {
		t.Fatalf("error = %v, want ErrRecJournalTooSmall", err)
	}
}

// TestRecJournalLatestWinsAcrossWraps saves enough records to cycle the
// ring several times; the highest sequence number must always win, also
// when re-scanned by a fresh journal (a reboot).
func TestRecJournalLatestWinsAcrossWraps(t *testing.T) {
	_, region := recRig(t)
	j, err := NewReceptionJournal(region)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		want := testRecord(i * 1000)
		if err := j.Save(want); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		got, err := j.Load()
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		if got == nil || !sameRecord(got, want) {
			t.Fatalf("load %d: got %+v, want %+v", i, got, want)
		}
		// A reboot rebuilds the journal from flash alone.
		j2, err := NewReceptionJournal(region)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := j2.Load()
		if err != nil {
			t.Fatalf("rescan %d: %v", i, err)
		}
		if got2 == nil || !sameRecord(got2, want) {
			t.Fatalf("rescan %d: stale record", i)
		}
		if !ReceptionPending(region) {
			t.Fatalf("save %d: pending should be true", i)
		}
	}
}

func TestRecJournalInvalidate(t *testing.T) {
	_, region := recRig(t)
	j, err := NewReceptionJournal(region)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Save(testRecord(5000)); err != nil {
		t.Fatal(err)
	}
	if err := j.Invalidate(); err != nil {
		t.Fatal(err)
	}
	rec, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("record survived Invalidate")
	}
	if ReceptionPending(region) {
		t.Fatal("pending after Invalidate")
	}
	// Idempotent.
	if err := j.Invalidate(); err != nil {
		t.Fatal(err)
	}
}

// TestRecJournalPowerLossDuringSave cuts power at every flash operation
// of a Save. After the reboot the journal must hold either the previous
// record or the new one — never garbage, never nothing.
func TestRecJournalPowerLossDuringSave(t *testing.T) {
	for failAt := 0; ; failAt++ {
		mem, region := recRig(t)
		j, err := NewReceptionJournal(region)
		if err != nil {
			t.Fatal(err)
		}
		prev := testRecord(1000)
		if err := j.Save(prev); err != nil {
			t.Fatal(err)
		}
		next := testRecord(2000)
		mem.FailAfter(failAt)
		err = j.Save(next)
		mem.ClearFault()
		if err == nil {
			// The save completed before the fault budget ran out: the
			// sweep has covered every operation of a Save.
			if failAt == 0 {
				t.Fatal("sweep never injected a fault")
			}
			return
		}
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("failAt=%d: error = %v, want ErrPowerLoss", failAt, err)
		}
		// Reboot: a fresh scan must find a fully valid record.
		j2, err := NewReceptionJournal(region)
		if err != nil {
			t.Fatalf("failAt=%d: rescan: %v", failAt, err)
		}
		got, err := j2.Load()
		if err != nil {
			t.Fatalf("failAt=%d: load: %v", failAt, err)
		}
		if got == nil {
			t.Fatalf("failAt=%d: both records lost", failAt)
		}
		if !sameRecord(got, prev) && !sameRecord(got, next) {
			t.Fatalf("failAt=%d: journal returned garbage: %+v", failAt, got)
		}
		// And the journal must still accept new records afterwards.
		final := testRecord(3000)
		if err := j2.Save(final); err != nil {
			t.Fatalf("failAt=%d: save after recovery: %v", failAt, err)
		}
		got, err = j2.Load()
		if err != nil || got == nil || !sameRecord(got, final) {
			t.Fatalf("failAt=%d: journal broken after recovery (%v)", failAt, err)
		}
	}
}

func TestRecJournalRejectsOversizedRecord(t *testing.T) {
	_, region := recRig(t)
	j, err := NewReceptionJournal(region)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(1)
	rec.Pipeline = make([]byte, recFrameSize)
	if err := j.Save(rec); !errors.Is(err, ErrRecRecordTooLarge) {
		t.Fatalf("error = %v, want ErrRecRecordTooLarge", err)
	}
}

func TestRecJournalCorruptFrameSkipped(t *testing.T) {
	mem, region := recRig(t)
	j, err := NewReceptionJournal(region)
	if err != nil {
		t.Fatal(err)
	}
	older, newer := testRecord(100), testRecord(200)
	if err := j.Save(older); err != nil {
		t.Fatal(err)
	}
	if err := j.Save(newer); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit of the newest frame (frame 1): its CRC fails
	// and the scan must fall back to the older record.
	if err := mem.Corrupt(region.Offset+recFrameSize+recHeaderSize+3, 0xFF); err != nil {
		t.Fatal(err)
	}
	j2, err := NewReceptionJournal(region)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !sameRecord(got, older) {
		t.Fatalf("got %+v, want the older record", got)
	}
}

func TestRecordEncodingRoundTrip(t *testing.T) {
	for _, rec := range []*ReceptionRecord{
		testRecord(0),
		testRecord(1 << 20),
		{SlotName: "", Pipeline: nil},
		{SlotName: "a-rather-long-slot-name", ManifestVersion: 0xFFFF, Received: 1, Pipeline: []byte{1}},
	} {
		buf, err := encodeReceptionRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeReceptionRecord(buf)
		if err != nil {
			t.Fatalf("decode %q: %v", rec.SlotName, err)
		}
		if !sameRecord(got, rec) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
		}
	}
}
