package slot

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"upkit/internal/flash"
	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/simclock"
)

func testGeometry() flash.Geometry {
	return flash.Geometry{
		Name:        "test",
		Size:        128 * 1024,
		SectorSize:  4096,
		PageSize:    256,
		EraseSector: 80 * time.Millisecond,
		ProgramPage: 2 * time.Millisecond,
		ReadPage:    10 * time.Microsecond,
	}
}

func newSlot(t *testing.T, name string, kind Kind) *Slot {
	t.Helper()
	mem, err := flash.New(testGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	region, err := flash.NewRegion(mem, 0, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(name, region, kind, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testManifest(fw []byte) *manifest.Manifest {
	suite := security.NewTinyCrypt()
	d := suite.Digest(fw)
	return &manifest.Manifest{
		AppID:          1,
		Version:        2,
		Size:           uint32(len(fw)),
		FirmwareDigest: d,
		LinkOffset:     0x1000,
	}
}

// writeImage drives the full receive sequence used by the agent.
func writeImage(t *testing.T, s *Slot, fw []byte) {
	t.Helper()
	w, err := s.BeginReceive()
	if err != nil {
		t.Fatalf("BeginReceive: %v", err)
	}
	if err := s.WriteManifest(testManifest(fw)); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	if _, err := w.Write(fw); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.MarkComplete(); err != nil {
		t.Fatalf("MarkComplete: %v", err)
	}
}

func TestNewRejectsTinyRegion(t *testing.T) {
	mem, err := flash.New(testGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	region, err := flash.NewRegion(mem, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// One sector: manifest page + trailer page leaves capacity, fine;
	// shrink page budget by using a geometry where it cannot fit.
	if _, err := New("x", region, Bootable, 0); err != nil {
		// Acceptable: region too small is a valid outcome for 1 sector
		// if layout does not fit. Either way must not panic.
		if !errors.Is(err, ErrTooSmall) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestFreshSlotIsEmpty(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	st, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	if st != StateEmpty {
		t.Fatalf("state = %v, want empty", st)
	}
	if s.Version() != 0 {
		t.Fatalf("Version() = %d, want 0", s.Version())
	}
}

func TestLifecycleTransitions(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	fw := bytes.Repeat([]byte{0x42}, 1000)

	w, err := s.BeginReceive()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.State()
	if st != StateReceiving {
		t.Fatalf("state after BeginReceive = %v, want receiving", st)
	}
	if err := s.WriteManifest(testManifest(fw)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(fw); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkComplete(); err != nil {
		t.Fatal(err)
	}
	if st, _ = s.State(); st != StateComplete {
		t.Fatalf("state = %v, want complete", st)
	}
	if err := s.MarkConfirmed(); err != nil {
		t.Fatal(err)
	}
	if st, _ = s.State(); st != StateConfirmed {
		t.Fatalf("state = %v, want confirmed", st)
	}
	if err := s.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if st, _ = s.State(); st != StateInvalid {
		t.Fatalf("state = %v, want invalid", st)
	}
}

func TestBadTransitionsRejected(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	if err := s.MarkComplete(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("MarkComplete on empty slot error = %v, want ErrBadTransition", err)
	}
	if err := s.MarkConfirmed(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("MarkConfirmed on empty slot error = %v, want ErrBadTransition", err)
	}
	if err := s.WriteManifest(testManifest(nil)); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("WriteManifest on empty slot error = %v, want ErrBadTransition", err)
	}
}

func TestManifestRoundTripThroughFlash(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	fw := []byte("firmware-bytes")
	writeImage(t, s, fw)
	m, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	want := testManifest(fw)
	if *m != *want {
		t.Fatalf("manifest mismatch:\n got  %+v\n want %+v", m, want)
	}
	if s.Version() != want.Version {
		t.Fatalf("Version() = %d, want %d", s.Version(), want.Version)
	}
}

func TestFirmwareReaderReadsBack(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	fw := bytes.Repeat([]byte("0123456789abcdef"), 500)
	writeImage(t, s, fw)
	r, err := s.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != len(fw) {
		t.Fatalf("Size() = %d, want %d", r.Size(), len(fw))
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fw) {
		t.Fatal("firmware read back mismatch")
	}
	// ReaderAt view.
	chunk := make([]byte, 16)
	if _, err := r.ReadAt(chunk, 16); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, fw[16:32]) {
		t.Fatal("ReadAt mismatch")
	}
	// ReadAt past end returns EOF.
	if _, err := r.ReadAt(chunk, int64(len(fw))); err != io.EOF {
		t.Fatalf("ReadAt past end error = %v, want io.EOF", err)
	}
}

func TestWriterCapacity(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	w, err := s.BeginReceive()
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, s.Capacity()+1)
	if _, err := w.Write(big); !errors.Is(err, ErrImageTooLarge) {
		t.Fatalf("oversized write error = %v, want ErrImageTooLarge", err)
	}
	// Exactly capacity fits.
	if _, err := w.Write(big[:s.Capacity()]); err != nil {
		t.Fatalf("capacity-sized write: %v", err)
	}
	if w.Written() != s.Capacity() {
		t.Fatalf("Written() = %d, want %d", w.Written(), s.Capacity())
	}
}

func TestSequentialWrites(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	fw := []byte("chunk-one|chunk-two|chunk-three")
	w, err := s.BeginReceive()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteManifest(testManifest(fw)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(fw); i += 7 {
		end := min(i+7, len(fw))
		if _, err := w.Write(fw[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.MarkComplete(); err != nil {
		t.Fatal(err)
	}
	r, err := s.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, fw) {
		t.Fatal("chunked write read back mismatch")
	}
}

func TestBeginReceiveErasesPreviousImage(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	writeImage(t, s, []byte("old image"))
	if _, err := s.BeginReceive(); err != nil {
		t.Fatal(err)
	}
	st, _ := s.State()
	if st != StateReceiving {
		t.Fatalf("state = %v, want receiving", st)
	}
	if _, err := s.Manifest(); err == nil {
		t.Fatal("manifest should be gone after BeginReceive")
	}
}

func TestTornTrailerReadsInvalid(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	writeImage(t, s, []byte("image"))
	// Corrupt the state byte into an unknown pattern.
	trailer := s.region.Offset + s.trailerOff
	if err := s.region.Mem.Corrupt(trailer+4, 0x55); err != nil {
		t.Fatal(err)
	}
	st, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	if st != StateInvalid {
		t.Fatalf("torn trailer state = %v, want invalid", st)
	}
}

func TestGarbageTrailerMagicIsInvalid(t *testing.T) {
	s := newSlot(t, "A", Bootable)
	// Program a wrong magic directly.
	if err := s.region.ProgramAt(s.trailerOff, []byte{0x12, 0x34, 0x56, 0x78, 0x3F}); err != nil {
		t.Fatal(err)
	}
	st, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	if st != StateInvalid {
		t.Fatalf("garbage trailer state = %v, want invalid", st)
	}
}

func TestCopyTo(t *testing.T) {
	src := newSlot(t, "NB", NonBootable)
	dst := newSlot(t, "B", Bootable)
	fw := bytes.Repeat([]byte("copy-me!"), 700)
	writeImage(t, src, fw)
	if err := src.CopyTo(dst); err != nil {
		t.Fatalf("CopyTo: %v", err)
	}
	st, _ := dst.State()
	if st != StateComplete {
		t.Fatalf("dst state = %v, want complete (copied trailer)", st)
	}
	r, err := dst.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, fw) {
		t.Fatal("copied firmware mismatch")
	}
}

func TestSwapWith(t *testing.T) {
	a := newSlot(t, "A", Bootable)
	b := newSlot(t, "B", Bootable)
	fwA := bytes.Repeat([]byte("image-a."), 500)
	fwB := bytes.Repeat([]byte("image-b!"), 900)
	writeImage(t, a, fwA)
	writeImage(t, b, fwB)
	if err := a.SwapWith(b); err != nil {
		t.Fatalf("SwapWith: %v", err)
	}
	ra, err := a.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	gotA, _ := io.ReadAll(ra)
	if !bytes.Equal(gotA, fwB) {
		t.Fatal("slot A does not hold image B after swap")
	}
	rb, err := b.FirmwareReader()
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := io.ReadAll(rb)
	if !bytes.Equal(gotB, fwA) {
		t.Fatal("slot B does not hold image A after swap")
	}
}

func TestCopySizeMismatch(t *testing.T) {
	mem, _ := flash.New(testGeometry(), nil)
	r1, _ := flash.NewRegion(mem, 0, 32*1024)
	r2, _ := flash.NewRegion(mem, 32*1024, 64*1024)
	s1, err := New("s1", r1, Bootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New("s2", r2, Bootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.CopyTo(s2); err == nil {
		t.Fatal("CopyTo with mismatched sizes must fail")
	}
	if err := s1.SwapWith(s2); err == nil {
		t.Fatal("SwapWith with mismatched sizes must fail")
	}
}

func TestSwapChargesFlashTime(t *testing.T) {
	clock := simclock.New()
	mem, err := flash.New(testGeometry(), clock)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := flash.NewRegion(mem, 0, 32*1024)
	r2, _ := flash.NewRegion(mem, 32*1024, 32*1024)
	a, err := New("A", r1, Bootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("B", r2, Bootable, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	if err := a.SwapWith(b); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now() - start
	// 8 sectors per slot: 16 erases at 80 ms dominate -> at least 1.28 s.
	if elapsed < 1280*time.Millisecond {
		t.Fatalf("swap took %v of virtual time; expected >= 1.28s", elapsed)
	}
}

func TestKindString(t *testing.T) {
	if Bootable.String() != "B" || NonBootable.String() != "NB" {
		t.Fatal("Kind.String() must use the paper's B/NB notation")
	}
}

func TestStateHelpers(t *testing.T) {
	if !StateComplete.HasImage() || !StateConfirmed.HasImage() {
		t.Error("complete/confirmed must report an image")
	}
	if StateEmpty.HasImage() || StateReceiving.HasImage() || StateInvalid.HasImage() {
		t.Error("empty/receiving/invalid must not report an image")
	}
	for _, st := range []State{StateEmpty, StateReceiving, StateComplete, StateConfirmed, StateInvalid, State(0x99)} {
		if st.String() == "" {
			t.Errorf("State(%#x).String() empty", byte(st))
		}
	}
}
