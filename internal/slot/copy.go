package slot

import (
	"fmt"
)

// CopyTo copies this slot's content (manifest, firmware, trailer) into
// dst, sector by sector: read source, erase destination, program. This
// is the static-update path the bootloader uses to install an image
// from a non-bootable slot into the bootable one.
//
// Both slots must have the same capacity; the flash geometries may
// differ (internal vs external flash).
func (s *Slot) CopyTo(dst *Slot) error {
	if s.region.Length != dst.region.Length {
		return fmt.Errorf("slot: copy %s -> %s: size mismatch (%d vs %d)",
			s.Name, dst.Name, s.region.Length, dst.region.Length)
	}
	srcSector := s.region.Mem.Geometry().SectorSize
	dstSector := dst.region.Mem.Geometry().SectorSize
	step := max(srcSector, dstSector)
	if step%srcSector != 0 || step%dstSector != 0 {
		return fmt.Errorf("slot: copy %s -> %s: incompatible sector sizes (%d vs %d)",
			s.Name, dst.Name, srcSector, dstSector)
	}
	buf := make([]byte, step)
	for off := 0; off < s.region.Length; off += step {
		if err := s.region.ReadAt(off, buf); err != nil {
			return fmt.Errorf("slot: copy read %s: %w", s.Name, err)
		}
		for e := 0; e < step; e += dstSector {
			if err := dst.region.EraseSectorAt(off + e); err != nil {
				return fmt.Errorf("slot: copy erase %s: %w", dst.Name, err)
			}
		}
		if err := dst.region.ProgramAt(off, buf); err != nil {
			return fmt.Errorf("slot: copy program %s: %w", dst.Name, err)
		}
	}
	return nil
}

// SwapWith exchanges the content of two equally sized slots sector by
// sector, the way UpKit's memory module swaps the bootable and
// non-bootable images during a static update (§IV-C). Each sector pair
// costs two reads, two erases, and two programs, which is what makes
// static loading so much slower than A/B loading (Fig. 8c).
func (s *Slot) SwapWith(other *Slot) error {
	if s.region.Length != other.region.Length {
		return fmt.Errorf("slot: swap %s <-> %s: size mismatch (%d vs %d)",
			s.Name, other.Name, s.region.Length, other.region.Length)
	}
	aSector := s.region.Mem.Geometry().SectorSize
	bSector := other.region.Mem.Geometry().SectorSize
	step := max(aSector, bSector)
	if step%aSector != 0 || step%bSector != 0 {
		return fmt.Errorf("slot: swap %s <-> %s: incompatible sector sizes (%d vs %d)",
			s.Name, other.Name, aSector, bSector)
	}
	bufA := make([]byte, step)
	bufB := make([]byte, step)
	for off := 0; off < s.region.Length; off += step {
		if err := s.region.ReadAt(off, bufA); err != nil {
			return fmt.Errorf("slot: swap read %s: %w", s.Name, err)
		}
		if err := other.region.ReadAt(off, bufB); err != nil {
			return fmt.Errorf("slot: swap read %s: %w", other.Name, err)
		}
		for e := 0; e < step; e += aSector {
			if err := s.region.EraseSectorAt(off + e); err != nil {
				return fmt.Errorf("slot: swap erase %s: %w", s.Name, err)
			}
		}
		if err := s.region.ProgramAt(off, bufB); err != nil {
			return fmt.Errorf("slot: swap program %s: %w", s.Name, err)
		}
		for e := 0; e < step; e += bSector {
			if err := other.region.EraseSectorAt(off + e); err != nil {
				return fmt.Errorf("slot: swap erase %s: %w", other.Name, err)
			}
		}
		if err := other.region.ProgramAt(off, bufA); err != nil {
			return fmt.Errorf("slot: swap program %s: %w", other.Name, err)
		}
	}
	return nil
}
