// Package slot implements UpKit's memory module (§IV-C): the
// organisation of persistent memory into update-image slots.
//
// A slot is a sector-aligned flash region holding one update image:
//
//	┌────────────────────┬──────────────────┬───────────────┐
//	│ manifest (1 page)  │ firmware ...     │ trailer page  │
//	└────────────────────┴──────────────────┴───────────────┘
//
// The trailer records the slot lifecycle in a NOR-friendly way: each
// state transition only clears bits, so no erase is needed between
// Receiving → Complete → Confirmed → Invalid, and a power loss can
// never make a slot look *more* finished than it was.
//
// Slots are either bootable (the CPU can execute in place) or
// non-bootable (e.g. on external SPI flash — the CC2650 configuration);
// a non-bootable image must be copied to a bootable slot before use.
// Configuration A of the paper (A/B updates) uses two bootable slots;
// Configuration B (static updates) uses one bootable plus one
// non-bootable slot.
package slot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"upkit/internal/flash"
	"upkit/internal/manifest"
)

// Kind says whether a slot's image can be executed in place.
type Kind int

const (
	// Bootable slots hold directly executable images (internal flash).
	Bootable Kind = iota + 1
	// NonBootable slots only stage images (e.g. external SPI flash).
	NonBootable
)

// String renders the paper's B / NB notation.
func (k Kind) String() string {
	switch k {
	case Bootable:
		return "B"
	case NonBootable:
		return "NB"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// State is the slot lifecycle, encoded so transitions only clear bits.
type State byte

const (
	// StateEmpty: erased, no image.
	StateEmpty State = 0xFF
	// StateReceiving: an update is being written.
	StateReceiving State = 0x7F
	// StateComplete: the agent wrote and digest-verified the image.
	StateComplete State = 0x3F
	// StateConfirmed: the bootloader verified and booted the image.
	StateConfirmed State = 0x1F
	// StateInvalid: the image failed verification or was superseded.
	StateInvalid State = 0x00
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateEmpty:
		return "empty"
	case StateReceiving:
		return "receiving"
	case StateComplete:
		return "complete"
	case StateConfirmed:
		return "confirmed"
	case StateInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("State(%#02x)", byte(s))
	}
}

// HasImage reports whether the slot holds a fully received image.
func (s State) HasImage() bool { return s == StateComplete || s == StateConfirmed }

// trailerMagic marks an initialised trailer.
const trailerMagic uint32 = 0x55534C54 // "USLT"

// AnyLink is the LinkBase wildcard for position-independent images.
const AnyLink uint32 = 0xFFFFFFFF

// Slot errors.
var (
	ErrTooSmall      = errors.New("slot: region too small")
	ErrNoImage       = errors.New("slot: no complete image")
	ErrImageTooLarge = errors.New("slot: image exceeds capacity")
	ErrBadTransition = errors.New("slot: invalid state transition")
	ErrNotBootable   = errors.New("slot: not bootable")
)

// Slot is one update-image slot on a flash region.
type Slot struct {
	// Name labels the slot ("A", "B", "recovery") in logs.
	Name string
	// Kind distinguishes bootable from staging slots.
	Kind Kind
	// LinkBase is the memory address images in this slot execute from;
	// the verifier compares it with the manifest's link offset. Use
	// AnyLink for position-independent images.
	LinkBase uint32

	region flash.Region
	// manifestArea and trailerOff are derived layout offsets.
	manifestArea int
	trailerOff   int
}

// New creates a slot over region. The region must fit at least the
// manifest page, one firmware sector, and the trailer page.
func New(name string, region flash.Region, kind Kind, linkBase uint32) (*Slot, error) {
	geo := region.Mem.Geometry()
	manifestArea := (manifest.EncodedSize + geo.PageSize - 1) / geo.PageSize * geo.PageSize
	trailerOff := region.Length - geo.PageSize
	if trailerOff <= manifestArea {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooSmall, region.Length)
	}
	return &Slot{
		Name:         name,
		Kind:         kind,
		LinkBase:     linkBase,
		region:       region,
		manifestArea: manifestArea,
		trailerOff:   trailerOff,
	}, nil
}

// Capacity is the maximum firmware size the slot can hold.
func (s *Slot) Capacity() int { return s.trailerOff - s.manifestArea }

// Region exposes the underlying flash region (for the device memory map).
func (s *Slot) Region() flash.Region { return s.region }

// Sectors reports the number of erase sectors the slot spans.
func (s *Slot) Sectors() int { return s.region.Sectors() }

// State reads the slot state from the trailer. A trailer without the
// magic is reported as StateEmpty if erased, StateInvalid otherwise
// (garbage from a previous layout must never look like an image).
func (s *Slot) State() (State, error) {
	var buf [5]byte
	if err := s.region.ReadAt(s.trailerOff, buf[:]); err != nil {
		return StateInvalid, err
	}
	magic := binary.BigEndian.Uint32(buf[:4])
	switch magic {
	case trailerMagic:
		st := State(buf[4])
		switch st {
		case StateReceiving, StateComplete, StateConfirmed, StateInvalid:
			return st, nil
		default:
			// A torn trailer write: treat as invalid.
			return StateInvalid, nil
		}
	case 0xFFFFFFFF:
		return StateEmpty, nil
	default:
		return StateInvalid, nil
	}
}

// setState programs the trailer. Transitions must only clear bits.
func (s *Slot) setState(st State) error {
	var buf [5]byte
	binary.BigEndian.PutUint32(buf[:4], trailerMagic)
	buf[4] = byte(st)
	if err := s.region.ProgramAt(s.trailerOff, buf[:]); err != nil {
		return fmt.Errorf("slot %s: set state %v: %w", s.Name, st, err)
	}
	return nil
}

// Erase wipes the slot entirely.
func (s *Slot) Erase() error {
	if err := s.region.Erase(); err != nil {
		return fmt.Errorf("slot %s: erase: %w", s.Name, err)
	}
	return nil
}

// BeginReceive erases the slot and marks it Receiving. It returns a
// Writer positioned at the firmware area.
func (s *Slot) BeginReceive() (*Writer, error) {
	if err := s.Erase(); err != nil {
		return nil, err
	}
	if err := s.setState(StateReceiving); err != nil {
		return nil, err
	}
	return &Writer{slot: s}, nil
}

// ResumeReceive returns a Writer positioned pos bytes into the
// firmware area of a slot that is already Receiving — the reception
// journal's resume path after a power loss. Unlike BeginReceive it
// erases nothing: the bytes up to pos are the durable prefix the
// journal vouches for, and the resumed stream may legally re-program
// identical bytes beyond pos (NOR programming is idempotent for equal
// data).
func (s *Slot) ResumeReceive(pos int) (*Writer, error) {
	st, err := s.State()
	if err != nil {
		return nil, err
	}
	if st != StateReceiving {
		return nil, fmt.Errorf("%w: resume receive in state %v", ErrBadTransition, st)
	}
	if pos < 0 || pos > s.Capacity() {
		return nil, fmt.Errorf("%w: resume at %d of %d", ErrImageTooLarge, pos, s.Capacity())
	}
	return &Writer{slot: s, pos: pos}, nil
}

// WriteManifest programs the encoded manifest into the manifest area.
// The slot must be Receiving.
func (s *Slot) WriteManifest(m *manifest.Manifest) error {
	st, err := s.State()
	if err != nil {
		return err
	}
	if st != StateReceiving {
		return fmt.Errorf("%w: write manifest in state %v", ErrBadTransition, st)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		return fmt.Errorf("slot %s: encode manifest: %w", s.Name, err)
	}
	if err := s.region.ProgramAt(0, enc); err != nil {
		return fmt.Errorf("slot %s: write manifest: %w", s.Name, err)
	}
	return nil
}

// Manifest reads and decodes the manifest stored in the slot.
func (s *Slot) Manifest() (*manifest.Manifest, error) {
	buf := make([]byte, manifest.EncodedSize)
	if err := s.region.ReadAt(0, buf); err != nil {
		return nil, err
	}
	m, err := manifest.Unmarshal(buf)
	if err != nil {
		return nil, fmt.Errorf("slot %s: %w", s.Name, err)
	}
	return m, nil
}

// MarkComplete transitions Receiving → Complete after the agent's
// digest verification.
func (s *Slot) MarkComplete() error {
	return s.transition(StateReceiving, StateComplete)
}

// MarkConfirmed transitions Complete → Confirmed after the bootloader
// verified and booted the image.
func (s *Slot) MarkConfirmed() error {
	return s.transition(StateComplete, StateConfirmed)
}

// Invalidate marks the slot Invalid from any state.
func (s *Slot) Invalidate() error {
	return s.setState(StateInvalid)
}

func (s *Slot) transition(from, to State) error {
	st, err := s.State()
	if err != nil {
		return err
	}
	if st != from {
		return fmt.Errorf("%w: %v -> %v (slot is %v)", ErrBadTransition, from, to, st)
	}
	return s.setState(to)
}

// Version reports the image version, or 0 if the slot has no complete
// image.
func (s *Slot) Version() uint16 {
	st, err := s.State()
	if err != nil || !st.HasImage() {
		return 0
	}
	m, err := s.Manifest()
	if err != nil {
		return 0
	}
	return m.Version
}

// FirmwareReader returns a reader over the firmware area, bounded to
// the size recorded in the manifest.
func (s *Slot) FirmwareReader() (*Reader, error) {
	m, err := s.Manifest()
	if err != nil {
		return nil, err
	}
	if int(m.Size) > s.Capacity() {
		return nil, fmt.Errorf("%w: manifest claims %d bytes, capacity %d", ErrImageTooLarge, m.Size, s.Capacity())
	}
	return &Reader{slot: s, size: int(m.Size)}, nil
}

// Writer appends firmware bytes sequentially into the firmware area.
type Writer struct {
	slot *Slot
	pos  int
}

// Write programs p at the current firmware position.
func (w *Writer) Write(p []byte) (int, error) {
	if w.pos+len(p) > w.slot.Capacity() {
		return 0, fmt.Errorf("%w: write to %d of %d", ErrImageTooLarge, w.pos+len(p), w.slot.Capacity())
	}
	if err := w.slot.region.ProgramAt(w.slot.manifestArea+w.pos, p); err != nil {
		return 0, err
	}
	w.pos += len(p)
	return len(p), nil
}

// Written reports how many firmware bytes have been written.
func (w *Writer) Written() int { return w.pos }

// Reader reads firmware bytes; it implements io.Reader and io.ReaderAt
// (the latter is what the bspatch stage uses for old-image access).
type Reader struct {
	slot *Slot
	size int
	pos  int
}

// Size reports the firmware size from the manifest.
func (r *Reader) Size() int { return r.size }

// Read implements io.Reader over the firmware area.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos >= r.size {
		return 0, io.EOF
	}
	n := min(len(p), r.size-r.pos)
	if err := r.slot.region.ReadAt(r.slot.manifestArea+r.pos, p[:n]); err != nil {
		return 0, err
	}
	r.pos += n
	return n, nil
}

// ReadAt implements io.ReaderAt over the firmware area.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(r.size) {
		return 0, io.EOF
	}
	n := min(len(p), r.size-int(off))
	if err := r.slot.region.ReadAt(r.slot.manifestArea+int(off), p[:n]); err != nil {
		return 0, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
