package slot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"upkit/internal/flash"
)

// SecurityCounter is the device's persisted anti-rollback state: the
// highest manifest security version the device has ever accepted. The
// agent advances it *before* marking a staged image complete, so by the
// time the bootloader considers swapping, the counter already covers the
// new image — a power loss anywhere in between leaves the device either
// on the old image with the counter advanced (safe: equal-or-newer
// images still install) or on the new image, never in a state where a
// rolled-back image would be accepted.
//
// Storage follows the reception journal's NOR ring discipline: a ring of
// fixed 16-byte frames across at least two sectors, monotonically
// sequenced, erase-on-sector-entry, so the frame holding the current
// value never lives in the sector being erased. Torn frames fail their
// CRC and are skipped.
//
// Frame layout (big endian):
//
//	magic "UPSV" | seq uint32 | value uint32 | crc32
const (
	secFrameSize  = 16
	secMagic      = uint32(0x55505356) // "UPSV"
	secHeaderSize = 4 + 4
)

// ErrSecCounterTooSmall is returned when the counter region spans fewer
// than two sectors.
var ErrSecCounterTooSmall = errors.New("slot: security counter needs at least two sectors")

// SecurityCounter manages the counter region. Like ReceptionJournal, the
// cursor/sequence cache is rebuilt from flash whenever unknown, so the
// struct holds no durable state of its own.
type SecurityCounter struct {
	region    flash.Region
	frames    int
	perSector int

	scanned bool
	nextSeq uint32
	cursor  int
	value   uint32
}

// NewSecurityCounter wraps region, which must span at least two sectors.
func NewSecurityCounter(region flash.Region) (*SecurityCounter, error) {
	if region.Sectors() < 2 {
		return nil, ErrSecCounterTooSmall
	}
	sector := region.Mem.Geometry().SectorSize
	return &SecurityCounter{
		region:    region,
		frames:    region.Length / secFrameSize,
		perSector: sector / secFrameSize,
	}, nil
}

// frameAt reads and validates frame i, returning (value, seq, ok).
func (c *SecurityCounter) frameAt(i int) (uint32, uint32, bool) {
	frame := make([]byte, secFrameSize)
	if err := c.region.ReadAt(i*secFrameSize, frame); err != nil {
		return 0, 0, false
	}
	if binary.BigEndian.Uint32(frame) != secMagic {
		return 0, 0, false
	}
	if crc32.ChecksumIEEE(frame[:12]) != binary.BigEndian.Uint32(frame[12:]) {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(frame[8:12]), binary.BigEndian.Uint32(frame[4:8]), true
}

// scan rebuilds the value/cursor/sequence cache from flash.
func (c *SecurityCounter) scan() {
	bestFrame := -1
	var bestSeq, bestVal uint32
	for i := range c.frames {
		val, seq, ok := c.frameAt(i)
		if !ok {
			continue
		}
		if bestFrame < 0 || seq > bestSeq {
			bestFrame, bestSeq, bestVal = i, seq, val
		}
	}
	c.value = bestVal
	c.nextSeq = bestSeq + 1
	c.cursor = 0
	if bestFrame >= 0 {
		c.cursor = (bestFrame + 1) % c.frames
	}
	c.scanned = true
}

// Value returns the persisted counter, or zero when none has ever been
// written (factory state).
func (c *SecurityCounter) Value() uint32 {
	if !c.scanned {
		c.scan()
	}
	return c.value
}

// Advance persists v as the new counter value if it is greater than the
// current one; lower or equal values are a no-op (the counter is
// monotonic by construction). The write is durable before Advance
// returns.
func (c *SecurityCounter) Advance(v uint32) error {
	if !c.scanned {
		c.scan()
	}
	if v <= c.value {
		return nil
	}
	frame := make([]byte, secFrameSize)
	binary.BigEndian.PutUint32(frame, secMagic)
	binary.BigEndian.PutUint32(frame[4:], c.nextSeq)
	binary.BigEndian.PutUint32(frame[8:], v)
	binary.BigEndian.PutUint32(frame[12:], crc32.ChecksumIEEE(frame[:12]))

	// Same probe discipline as the reception journal: entering a sector
	// erases it whole; torn (non-blank) frames inside a sector are
	// skipped.
	for probe := 0; probe <= c.frames+c.perSector; probe++ {
		at := c.cursor
		if at%c.perSector == 0 {
			if err := c.region.EraseSectorAt(at * secFrameSize); err != nil {
				c.scanned = false
				return fmt.Errorf("slot: security counter erase: %w", err)
			}
		} else if !c.frameBlank(at) {
			c.cursor = (at + 1) % c.frames
			continue
		}
		if err := c.region.ProgramAt(at*secFrameSize, frame); err != nil {
			c.scanned = false
			return fmt.Errorf("slot: security counter write: %w", err)
		}
		c.cursor = (at + 1) % c.frames
		c.nextSeq++
		c.value = v
		return nil
	}
	c.scanned = false
	return errors.New("slot: security counter has no free frame")
}

// frameBlank reports whether frame i is fully erased.
func (c *SecurityCounter) frameBlank(i int) bool {
	buf := make([]byte, secFrameSize)
	if err := c.region.ReadAt(i*secFrameSize, buf); err != nil {
		return false
	}
	for _, b := range buf {
		if b != 0xFF {
			return false
		}
	}
	return true
}
