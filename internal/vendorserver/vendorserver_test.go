package vendorserver

import (
	"bytes"
	"errors"
	"testing"

	"upkit/internal/security"
)

func TestBuildImageSignsManifest(t *testing.T) {
	suite := security.NewTinyCrypt()
	key := security.MustGenerateKey("vendor-test")
	s := New(suite, key)

	fw := bytes.Repeat([]byte("release"), 1000)
	img, err := s.BuildImage(Release{AppID: 7, Version: 3, LinkOffset: 0x2000, Firmware: fw})
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	m := img.Manifest
	if m.AppID != 7 || m.Version != 3 || m.LinkOffset != 0x2000 {
		t.Fatalf("manifest fields wrong: %+v", m)
	}
	if m.Size != uint32(len(fw)) {
		t.Fatalf("Size = %d, want %d", m.Size, len(fw))
	}
	if m.FirmwareDigest != suite.Digest(fw) {
		t.Fatal("digest mismatch")
	}
	if !m.VerifyVendorSig(suite, s.PublicKey()) {
		t.Fatal("vendor signature does not verify")
	}
	// Token fields must be blank — the update server owns them.
	if m.DeviceID != 0 || m.Nonce != 0 || m.OldVersion != 0 || m.PatchSize != 0 {
		t.Fatalf("token fields not blank: %+v", m)
	}
	if !bytes.Equal(img.Firmware, fw) {
		t.Fatal("firmware not carried through")
	}
}

func TestBuildImageValidation(t *testing.T) {
	s := New(security.NewTinyCrypt(), security.MustGenerateKey("vendor-val"))
	if _, err := s.BuildImage(Release{Version: 1}); !errors.Is(err, ErrEmptyFirmware) {
		t.Fatalf("empty firmware error = %v, want ErrEmptyFirmware", err)
	}
	if _, err := s.BuildImage(Release{Firmware: []byte{1}}); !errors.Is(err, ErrZeroVersion) {
		t.Fatalf("zero version error = %v, want ErrZeroVersion", err)
	}
}

func TestImagesFromDifferentVendorsDistinguishable(t *testing.T) {
	suite := security.NewTinyCrypt()
	honest := New(suite, security.MustGenerateKey("honest-vendor"))
	rogue := New(suite, security.MustGenerateKey("rogue-vendor"))
	fw := []byte("firmware")
	img, err := rogue.BuildImage(Release{AppID: 1, Version: 2, Firmware: fw})
	if err != nil {
		t.Fatal(err)
	}
	if img.Manifest.VerifyVendorSig(suite, honest.PublicKey()) {
		t.Fatal("rogue vendor's image verified against the honest vendor's key")
	}
}
