// Package vendorserver implements UpKit's vendor server: the first
// stage of the generation phase (§III-A). The vendor server holds the
// long-term firmware-signing key, receives raw firmware binaries, and
// produces vendor-signed update images — the manifest fields describing
// the firmware (app ID, version, size, digest, link offset) under the
// vendor signature, with the per-request token fields still blank for
// the update server to fill.
package vendorserver

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"upkit/internal/manifest"
	"upkit/internal/security"
	"upkit/internal/telemetry"
)

// Release errors.
var (
	ErrEmptyFirmware = errors.New("vendorserver: empty firmware")
	ErrZeroVersion   = errors.New("vendorserver: version must be >= 1 (0 means 'no image')")
)

// Release is a firmware release submitted by the build system.
type Release struct {
	// AppID identifies the application and hardware platform.
	AppID uint32
	// Version is the release version; must be >= 1.
	Version uint16
	// LinkOffset is the address the binary was linked for, or
	// 0xFFFFFFFF for position-independent images.
	LinkOffset uint32
	// Firmware is the raw binary.
	Firmware []byte
	// SecurityVersion is the release's anti-rollback level. Devices
	// persist the highest value they install and refuse anything lower,
	// so bumping it marks this release as a security baseline older
	// (still correctly signed) images cannot roll back past. Zero keeps
	// the release installable everywhere.
	SecurityVersion uint32
	// NotAfter is the manifest expiry in Unix seconds, or zero for no
	// expiry.
	NotAfter uint64
}

// Image is a vendor-signed update image: the output of the generation
// phase's first step, ready to be loaded onto an update server.
type Image struct {
	// Manifest carries the vendor-signed firmware description. Token
	// fields (device ID, nonce, old version, patch size) are zero and
	// the server signature is unset.
	Manifest manifest.Manifest
	// Firmware is the full firmware binary.
	Firmware []byte
}

// Server is the vendor server.
type Server struct {
	suite security.Suite
	tel   *telemetry.Registry

	// keyMu guards the signing key and its ID: key rotation swaps both
	// while releases may be building concurrently.
	keyMu sync.RWMutex
	key   *security.PrivateKey
	keyID uint32
}

// New creates a vendor server signing with key under suite. The initial
// key carries key ID 0 (the static, pre-lifecycle convention); rotate
// with SetSigningKey to assign explicit IDs.
func New(suite security.Suite, key *security.PrivateKey) *Server {
	return &Server{suite: suite, key: key}
}

// SetTelemetry attaches a metrics registry: built images and signing
// latency are recorded. Nil keeps the server silent.
func (s *Server) SetTelemetry(reg *telemetry.Registry) { s.tel = reg }

// PublicKey returns the verification key devices must be provisioned
// with.
func (s *Server) PublicKey() *security.PublicKey {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	return s.key.Public()
}

// KeyID returns the key ID stamped into built manifests.
func (s *Server) KeyID() uint32 {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	return s.keyID
}

// SetSigningKey rotates the vendor signing key: subsequent images are
// signed with key and carry keyID in their manifest. Devices learn the
// new key from a root-signed KeyRecord distributed ahead of (or along
// with) the first release signed by it.
func (s *Server) SetSigningKey(key *security.PrivateKey, keyID uint32) {
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	s.key = key
	s.keyID = keyID
	s.tel.Counter("upkit_vendor_key_rotations_total", "Vendor signing-key rotations.").Inc()
}

// BuildImage produces the vendor-signed update image for a release
// (step 1 of Fig. 2: firmware in, manifest + signature out).
func (s *Server) BuildImage(rel Release) (*Image, error) {
	if len(rel.Firmware) == 0 {
		return nil, ErrEmptyFirmware
	}
	if rel.Version == 0 {
		return nil, ErrZeroVersion
	}
	s.keyMu.RLock()
	key, keyID := s.key, s.keyID
	s.keyMu.RUnlock()
	img := &Image{
		Manifest: manifest.Manifest{
			AppID:           rel.AppID,
			Version:         rel.Version,
			Size:            uint32(len(rel.Firmware)),
			FirmwareDigest:  s.suite.Digest(rel.Firmware),
			LinkOffset:      rel.LinkOffset,
			SecurityVersion: rel.SecurityVersion,
			NotAfter:        rel.NotAfter,
			VendorKeyID:     keyID,
		},
		Firmware: rel.Firmware,
	}
	start := time.Now()
	if err := img.Manifest.SignVendor(s.suite, key); err != nil {
		return nil, fmt.Errorf("vendorserver: %w", err)
	}
	s.tel.Histogram("upkit_vendor_sign_seconds", "Vendor signing latency.", nil).ObserveDuration(time.Since(start))
	s.tel.Counter("upkit_vendor_images_total", "Vendor-signed images built.").Inc()
	return img, nil
}
