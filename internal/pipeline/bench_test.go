package pipeline

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
	"upkit/internal/security"
)

func benchImage(size int) []byte {
	rng := rand.New(rand.NewSource(1))
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(rng.Intn(32))
	}
	return out
}

// BenchmarkPipelineWrite measures steady-state Write calls in
// radio-chunk sizes on differential pipelines — the per-chunk cost a
// device pays during reception, where allocations are the enemy.
func BenchmarkPipelineWrite(b *testing.B) {
	old := benchImage(256 * 1024)
	new := bytes.Clone(old)
	copy(new[10000:], []byte("benchmark-patch-region"))
	for i := 0; i < len(new); i += 4096 {
		new[i] ^= 0x5A
	}
	payload := lzss.Encode(bsdiff.Diff(old, new))
	const chunk = 64 // one 802.15.4 Block2 payload
	b.SetBytes(int64(len(new)))
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		p := NewDifferential(bytes.NewReader(old), io.Discard, 4096)
		for off := 0; off < len(payload); off += chunk {
			end := min(off+chunk, len(payload))
			if _, err := p.Write(payload[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipeline64kB(b *testing.B) {
	img := benchImage(64 * 1024)
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	for range b.N {
		p := NewFull(io.Discard, 4096)
		if _, err := p.Write(img); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDifferentialPipeline64kB(b *testing.B) {
	old := benchImage(64 * 1024)
	new := bytes.Clone(old)
	copy(new[10000:], []byte("benchmark-patch-region"))
	payload := lzss.Encode(bsdiff.Diff(old, new))
	b.SetBytes(int64(len(new)))
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		p := NewDifferential(bytes.NewReader(old), io.Discard, 4096)
		if _, err := p.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptedPipeline64kB(b *testing.B) {
	img := benchImage(64 * 1024)
	key := bytes.Repeat([]byte{0x11}, 16)
	payload, err := security.EncryptPayload(key, img, security.NewDeterministicReader("bench-iv"))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		p := NewFull(io.Discard, 4096)
		if err := p.EnableDecryption(key); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
