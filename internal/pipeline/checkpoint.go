package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Reception-journal support: a pipeline checkpoint captures everything
// needed to rebuild the pipeline after a power loss and continue the
// payload stream mid-byte — the input/output byte counters plus the
// serialized state of every active stage (decrypter, LZSS decoder,
// bspatch applier). The buffer stage is deliberately NOT part of the
// snapshot: Checkpoint first Syncs the buffer to the sink, so a
// checkpoint always describes a pipeline whose entire output is durable.

// Checkpoint is a serializable snapshot of a pipeline's position.
type Checkpoint struct {
	bytesIn      int
	bytesOut     int
	differential bool
	encrypted    bool

	crypt []byte // decrypter state, empty when cleartext
	dec   []byte // lzss decoder state, empty for full images
	app   []byte // bspatch applier state, empty for full images
}

// BytesIn reports the payload (wire) bytes consumed at snapshot time.
func (c *Checkpoint) BytesIn() int { return c.bytesIn }

// DurableBytes reports the firmware bytes durably written at snapshot
// time. Checkpoints are taken after a Sync, so this is the complete
// output position — the offset resume hands to slot.ResumeReceive.
func (c *Checkpoint) DurableBytes() int { return c.bytesOut }

// Differential reports whether the snapshot came from a differential
// pipeline.
func (c *Checkpoint) Differential() bool { return c.differential }

// Encrypted reports whether the snapshot came from a decrypting
// pipeline.
func (c *Checkpoint) Encrypted() bool { return c.encrypted }

const (
	ckptVersion      = 1
	ckptFlagDiff     = 1 << 0
	ckptFlagEncrypt  = 1 << 1
	ckptFixedEncoded = 4 + 1 + 1 + 8 + 8 + 3*2
)

var ckptMagic = [4]byte{'P', 'P', 'C', 'K'}

// ErrBadCheckpoint reports an unusable serialized pipeline snapshot.
var ErrBadCheckpoint = errors.New("pipeline: bad checkpoint")

// ErrCheckpointMismatch reports a Restore into a pipeline whose
// configuration (differential/encrypted) differs from the snapshot's.
var ErrCheckpointMismatch = errors.New("pipeline: checkpoint does not match pipeline configuration")

// Marshal encodes the checkpoint for persistent storage.
func (c *Checkpoint) Marshal() []byte {
	buf := make([]byte, 0, ckptFixedEncoded+len(c.crypt)+len(c.dec)+len(c.app))
	buf = append(buf, ckptMagic[:]...)
	var flags byte
	if c.differential {
		flags |= ckptFlagDiff
	}
	if c.encrypted {
		flags |= ckptFlagEncrypt
	}
	buf = append(buf, ckptVersion, flags)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.bytesIn))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.bytesOut))
	for _, blob := range [][]byte{c.crypt, c.dec, c.app} {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(blob)))
		buf = append(buf, blob...)
	}
	return buf
}

// ParseCheckpoint decodes a Marshal-ed checkpoint.
func ParseCheckpoint(blob []byte) (*Checkpoint, error) {
	if len(blob) < ckptFixedEncoded || [4]byte(blob[:4]) != ckptMagic || blob[4] != ckptVersion {
		return nil, ErrBadCheckpoint
	}
	flags := blob[5]
	c := &Checkpoint{
		differential: flags&ckptFlagDiff != 0,
		encrypted:    flags&ckptFlagEncrypt != 0,
		bytesIn:      int(binary.BigEndian.Uint64(blob[6:])),
		bytesOut:     int(binary.BigEndian.Uint64(blob[14:])),
	}
	p := 22
	for _, dst := range []*[]byte{&c.crypt, &c.dec, &c.app} {
		if p+2 > len(blob) {
			return nil, fmt.Errorf("%w: truncated", ErrBadCheckpoint)
		}
		n := int(binary.BigEndian.Uint16(blob[p:]))
		p += 2
		if p+n > len(blob) {
			return nil, fmt.Errorf("%w: truncated", ErrBadCheckpoint)
		}
		if n > 0 {
			*dst = append([]byte(nil), blob[p:p+n]...)
		}
		p += n
	}
	if p != len(blob) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadCheckpoint)
	}
	if c.bytesIn < 0 || c.bytesOut < 0 {
		return nil, fmt.Errorf("%w: negative counters", ErrBadCheckpoint)
	}
	return c, nil
}

// Sync flushes the partially filled buffer stage to the sink. Flash
// programming is page-granular below sector erases, so a partial-buffer
// program is legal; a later resumed stream simply re-programs identical
// bytes over the already written tail of the page (a NOR no-op).
func (p *Pipeline) Sync() error {
	if p.closed {
		return ErrClosed
	}
	return p.flush()
}

// Checkpoint Syncs the pipeline and returns a snapshot of its position.
// After the call DurableBytes counts every byte the sink has accepted, so
// the snapshot and the sink's content are mutually consistent — the
// invariant the reception journal depends on.
func (p *Pipeline) Checkpoint() (*Checkpoint, error) {
	if err := p.Sync(); err != nil {
		return nil, err
	}
	c := &Checkpoint{
		bytesIn:      p.bytesIn,
		bytesOut:     p.bytesOut,
		differential: p.IsDifferential(),
		encrypted:    p.IsEncrypted(),
	}
	if p.crypt != nil {
		c.crypt = p.crypt.Checkpoint()
	}
	if p.dec != nil {
		c.dec = p.dec.Checkpoint()
		c.app = p.app.Checkpoint()
	}
	return c, nil
}

// Restore rewinds a freshly constructed pipeline to a checkpointed
// position. The pipeline must have the same configuration the snapshot
// was taken with (same kind, same decryption setting, and for
// differential pipelines an old-image reader over the same base image)
// and must not have consumed any data yet. The sink must already hold
// the DurableBytes() firmware bytes the snapshot accounts for.
func (p *Pipeline) Restore(c *Checkpoint) error {
	if p.closed || p.bytesIn > 0 || p.n > 0 {
		return errors.New("pipeline: Restore after data")
	}
	if c.differential != p.IsDifferential() || c.encrypted != p.IsEncrypted() {
		return ErrCheckpointMismatch
	}
	if p.crypt != nil {
		if err := p.crypt.Restore(c.crypt); err != nil {
			return err
		}
	}
	if p.dec != nil {
		if err := p.dec.Restore(c.dec); err != nil {
			return err
		}
		if err := p.app.Restore(c.app); err != nil {
			return err
		}
	}
	p.bytesIn = c.bytesIn
	p.bytesOut = c.bytesOut
	return nil
}
