package pipeline

import (
	"bytes"
	"testing"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
	"upkit/internal/security"
)

func encKey() []byte { return bytes.Repeat([]byte{0x5A}, 16) }

func encrypt(t *testing.T, plain []byte) []byte {
	t.Helper()
	enc, err := security.EncryptPayload(encKey(), plain, security.NewDeterministicReader("pipe-iv"))
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestEncryptedFullPipeline(t *testing.T) {
	fw := bytes.Repeat([]byte("cipher-firmware"), 2000)
	payload := encrypt(t, fw)
	for _, chunk := range []int{1, 13, 300, len(payload)} {
		var sink countingSink
		p := NewFull(&sink, 4096)
		if err := p.EnableDecryption(encKey()); err != nil {
			t.Fatal(err)
		}
		if !p.IsEncrypted() {
			t.Fatal("IsEncrypted should report true")
		}
		feedChunked(t, p, payload, chunk)
		if !bytes.Equal(sink.Bytes(), fw) {
			t.Fatalf("chunk=%d: decrypted output mismatch", chunk)
		}
	}
}

func TestEncryptedDifferentialPipeline(t *testing.T) {
	old := bytes.Repeat([]byte("base-image"), 3000)
	new := bytes.Clone(old)
	copy(new[4000:], []byte("patched-here"))
	plainPayload := lzss.Encode(bsdiff.Diff(old, new))
	payload := encrypt(t, plainPayload)

	var sink countingSink
	p := NewDifferential(bytes.NewReader(old), &sink, 4096)
	if err := p.EnableDecryption(encKey()); err != nil {
		t.Fatal(err)
	}
	feedChunked(t, p, payload, 77)
	if !bytes.Equal(sink.Bytes(), new) {
		t.Fatal("decrypted+patched output mismatch")
	}
}

func TestEnableDecryptionAfterDataRejected(t *testing.T) {
	p := NewFull(&countingSink{}, 64)
	if _, err := p.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.EnableDecryption(encKey()); err == nil {
		t.Fatal("EnableDecryption after data must fail")
	}
}

func TestEnableDecryptionBadKey(t *testing.T) {
	p := NewFull(&countingSink{}, 64)
	if err := p.EnableDecryption(make([]byte, 5)); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestWrongKeyProducesGarbageNotPanic(t *testing.T) {
	fw := bytes.Repeat([]byte("x"), 5000)
	payload := encrypt(t, fw)
	var sink countingSink
	p := NewFull(&sink, 256)
	if err := p.EnableDecryption(bytes.Repeat([]byte{0x77}, 16)); err != nil {
		t.Fatal(err)
	}
	feedChunked(t, p, payload, 100)
	if bytes.Equal(sink.Bytes(), fw) {
		t.Fatal("wrong key yielded plaintext")
	}
	// Length is preserved; the digest check upstream catches the rest.
	if sink.Len() != len(fw) {
		t.Fatalf("output = %d bytes, want %d", sink.Len(), len(fw))
	}
}
