package pipeline

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
)

// countingSink records writes and their sizes.
type countingSink struct {
	bytes.Buffer
	writes []int
	failAt int // fail the nth write (1-based); 0 disables
	n      int
}

func (s *countingSink) Write(p []byte) (int, error) {
	s.n++
	if s.failAt != 0 && s.n >= s.failAt {
		return 0, errors.New("sink failure")
	}
	s.writes = append(s.writes, len(p))
	return s.Buffer.Write(p)
}

func feedChunked(t *testing.T, p *Pipeline, data []byte, chunk int) {
	t.Helper()
	for i := 0; i < len(data); i += chunk {
		end := min(i+chunk, len(data))
		if _, err := p.Write(data[i:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestFullPipelinePassesThrough(t *testing.T) {
	fw := bytes.Repeat([]byte("firmware"), 3000)
	for _, chunk := range []int{1, 13, 100, 4096, len(fw)} {
		var sink countingSink
		p := NewFull(&sink, 4096)
		feedChunked(t, p, fw, chunk)
		if !bytes.Equal(sink.Bytes(), fw) {
			t.Fatalf("chunk=%d: output mismatch", chunk)
		}
		if p.BytesIn() != len(fw) || p.DurableBytes() != len(fw) {
			t.Fatalf("chunk=%d: counters in=%d out=%d, want %d", chunk, p.BytesIn(), p.DurableBytes(), len(fw))
		}
	}
}

func TestBufferStageBatchesWrites(t *testing.T) {
	fw := make([]byte, 10000)
	var sink countingSink
	p := NewFull(&sink, 4096)
	feedChunked(t, p, fw, 100)
	// 10000 bytes with a 4096 buffer: two full flushes + final 1808.
	want := []int{4096, 4096, 1808}
	if len(sink.writes) != len(want) {
		t.Fatalf("writes = %v, want %v", sink.writes, want)
	}
	for i := range want {
		if sink.writes[i] != want[i] {
			t.Fatalf("writes = %v, want %v", sink.writes, want)
		}
	}
}

// TestDurableVsBufferedBytes pins the progress-reporting contract:
// DurableBytes counts only sink-accepted bytes, BufferedBytes the
// sector-buffer residue, and their sum is every byte produced — the
// count progress telemetry must report so it never under-states by up
// to a sector.
func TestDurableVsBufferedBytes(t *testing.T) {
	var sink countingSink
	p := NewFull(&sink, 4096)
	if _, err := p.Write(make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if p.DurableBytes() != 4096 || p.BufferedBytes() != 5000-4096 {
		t.Fatalf("durable=%d buffered=%d, want 4096/%d", p.DurableBytes(), p.BufferedBytes(), 5000-4096)
	}
	if p.DurableBytes()+p.BufferedBytes() != 5000 {
		t.Fatalf("durable+buffered = %d, want 5000", p.DurableBytes()+p.BufferedBytes())
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if p.DurableBytes() != 5000 || p.BufferedBytes() != 0 {
		t.Fatalf("after Sync: durable=%d buffered=%d, want 5000/0", p.DurableBytes(), p.BufferedBytes())
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFullSectorFastPath verifies that sector-aligned input bypasses
// the copy: whole buffer-multiples reach the sink as one Write call.
func TestFullSectorFastPath(t *testing.T) {
	fw := make([]byte, 3*4096+100)
	for i := range fw {
		fw[i] = byte(i)
	}
	var sink countingSink
	p := NewFull(&sink, 4096)
	feedChunked(t, p, fw, len(fw)) // single Write spanning 3 sectors
	want := []int{3 * 4096, 100}
	if len(sink.writes) != len(want) || sink.writes[0] != want[0] || sink.writes[1] != want[1] {
		t.Fatalf("writes = %v, want %v", sink.writes, want)
	}
	if !bytes.Equal(sink.Bytes(), fw) {
		t.Fatal("output mismatch through fast path")
	}
	// A partially filled buffer must disable the bypass so ordering holds.
	var sink2 countingSink
	p2 := NewFull(&sink2, 4096)
	if _, err := p2.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Write(make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if sink2.Len() != 10+8192 {
		t.Fatalf("mixed-path output = %d bytes, want %d", sink2.Len(), 10+8192)
	}
	if sink2.writes[0] != 4096 {
		t.Fatalf("first flush = %d, want full sector", sink2.writes[0])
	}
}

func TestDefaultBufferSize(t *testing.T) {
	p := NewFull(&countingSink{}, 0)
	if len(p.buf) != DefaultBufferSize {
		t.Fatalf("buffer = %d, want %d", len(p.buf), DefaultBufferSize)
	}
	if p.IsDifferential() {
		t.Fatal("full pipeline must not report differential")
	}
}

func TestDifferentialPipelineRebuildsImage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := make([]byte, 40*1024)
	rng.Read(old)
	new := bytes.Clone(old)
	copy(new[10000:], []byte("this-section-was-patched"))
	new = append(new, []byte("and the image grew")...)

	payload := lzss.Encode(bsdiff.Diff(old, new))

	for _, chunk := range []int{1, 7, 64, 1024, len(payload)} {
		var sink countingSink
		p := NewDifferential(bytes.NewReader(old), &sink, 4096)
		if !p.IsDifferential() {
			t.Fatal("differential pipeline must report differential")
		}
		feedChunked(t, p, payload, chunk)
		if !bytes.Equal(sink.Bytes(), new) {
			t.Fatalf("chunk=%d: patched image mismatch", chunk)
		}
		if p.BytesIn() != len(payload) {
			t.Fatalf("chunk=%d: BytesIn = %d, want %d", chunk, p.BytesIn(), len(payload))
		}
		if p.DurableBytes() != len(new) {
			t.Fatalf("chunk=%d: DurableBytes = %d, want %d", chunk, p.DurableBytes(), len(new))
		}
	}
}

func TestDifferentialSmallerTransfer(t *testing.T) {
	// The entire point of the differential configuration: payload on the
	// wire is much smaller than the firmware that lands in flash.
	old := bytes.Repeat([]byte("stable-os-section"), 4000)
	new := bytes.Clone(old)
	copy(new[100:], []byte("tweak"))
	payload := lzss.Encode(bsdiff.Diff(old, new))
	// LZSS's 18-byte max match caps zero-run compression near 8.6:1.
	if len(payload) > len(new)/8 {
		t.Fatalf("payload = %d bytes for %d-byte image; differential should be <12.5%%", len(payload), len(new))
	}
	var sink countingSink
	p := NewDifferential(bytes.NewReader(old), &sink, 4096)
	feedChunked(t, p, payload, 512)
	if !bytes.Equal(sink.Bytes(), new) {
		t.Fatal("patched image mismatch")
	}
}

func TestCloseDetectsTruncatedStream(t *testing.T) {
	old := []byte("old image contents")
	new := []byte("new image contents!")
	payload := lzss.Encode(bsdiff.Diff(old, new))

	var sink countingSink
	p := NewDifferential(bytes.NewReader(old), &sink, 64)
	if _, err := p.Write(payload[:len(payload)-2]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close must fail on a truncated stream")
	}
}

func TestWriteAfterClose(t *testing.T) {
	p := NewFull(&countingSink{}, 64)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("error = %v, want ErrClosed", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close error = %v, want ErrClosed", err)
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	sink := &countingSink{failAt: 1}
	p := NewFull(sink, 16)
	_, err := p.Write(make([]byte, 64))
	if err == nil {
		t.Fatal("sink failure must propagate")
	}
}

func TestCorruptPayloadRejected(t *testing.T) {
	old := bytes.Repeat([]byte("x"), 1000)
	new := bytes.Repeat([]byte("y"), 1000)
	payload := lzss.Encode(bsdiff.Diff(old, new))
	payload[0] ^= 0xFF // break the LZSS magic

	p := NewDifferential(bytes.NewReader(old), &countingSink{}, 64)
	if _, err := p.Write(payload); err == nil {
		t.Fatal("corrupt payload must be rejected")
	}
}

// Property: for any old/new pair and any split point, the differential
// pipeline reproduces new exactly.
func TestQuickDifferentialEquivalence(t *testing.T) {
	f := func(oldSeed, newTail []byte, cut uint16) bool {
		old := append(bytes.Repeat([]byte("base"), 64), oldSeed...)
		new := append(bytes.Clone(old), newTail...)
		if len(new) > 4 {
			new[3] ^= 0x55
		}
		payload := lzss.Encode(bsdiff.Diff(old, new))
		split := int(cut) % (len(payload) + 1)

		var sink bytes.Buffer
		p := NewDifferential(bytes.NewReader(old), &sink, 128)
		if _, err := p.Write(payload[:split]); err != nil {
			return false
		}
		if _, err := p.Write(payload[split:]); err != nil {
			return false
		}
		if err := p.Close(); err != nil {
			return false
		}
		return bytes.Equal(sink.Bytes(), new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: buffer size never affects the bytes written, only batching.
func TestQuickBufferSizeInvariance(t *testing.T) {
	f := func(data []byte, bufSel uint8) bool {
		bufSize := 1 + int(bufSel)%512
		var sink bytes.Buffer
		p := NewFull(&sink, bufSize)
		if _, err := p.Write(data); err != nil {
			return false
		}
		if err := p.Close(); err != nil {
			return false
		}
		return bytes.Equal(sink.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
