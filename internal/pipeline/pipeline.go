// Package pipeline implements UpKit's configurable write pipeline
// (§IV-C, Fig. 5). Data received from the network passes through up to
// four stages before reaching persistent memory:
//
//	network → [decompression (lzss)] → [patching (bspatch)] → buffer → writer
//
// For full-image updates the first two stages are absent. For
// differential updates the update server sends an LZSS-compressed
// bsdiff patch; the pipeline decompresses and applies it on the fly,
// reading the old firmware from its slot, so the patch never occupies a
// memory slot of its own — the paper's key trick for supporting
// differential updates "without requiring extra flash space".
//
// The buffer stage batches output to the flash sector/page size:
// matching the buffer to the flash geometry "results in faster writes
// and fewer flash erasures".
//
// An optional decryption stage (EnableDecryption) sits in front of
// everything, realising the paper's future-work plan of making
// confidentiality independent from the transport security layer
// (§VIII): the wire payload is then AES-CTR ciphertext that only the
// device can open.
package pipeline

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
	"upkit/internal/security"
	"upkit/internal/telemetry"
)

// DefaultBufferSize is used when the caller passes no explicit size; it
// matches the 4 KiB flash sectors of all three evaluation platforms.
const DefaultBufferSize = 4096

// ErrClosed is returned by writes after Close.
var ErrClosed = errors.New("pipeline: closed")

// bufPool recycles sector buffers across pipelines: a fleet campaign
// builds one pipeline per device per update, and without pooling each
// construction pays a fresh sector-sized allocation.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns a pooled buffer of exactly size bytes, allocating only
// when the pool has none large enough.
func getBuf(size int) []byte {
	b := bufPool.Get().(*[]byte)
	if cap(*b) >= size {
		return (*b)[:size]
	}
	bufPool.Put(b)
	return make([]byte, size)
}

// putBuf returns a buffer to the pool.
func putBuf(b []byte) {
	if b == nil {
		return
	}
	bufPool.Put(&b)
}

// Pipeline transforms incoming update payload bytes and writes the
// resulting firmware image to a sink. It implements io.Writer for the
// payload side.
type Pipeline struct {
	crypt *security.PayloadDecrypter // nil when payloads are cleartext

	dec *lzss.Decoder   // nil for full-image configuration
	app *bsdiff.Applier // nil for full-image configuration

	buf  []byte
	n    int
	sink io.Writer

	bytesIn  int
	bytesOut int
	closed   bool

	telIn  *telemetry.Counter
	telOut *telemetry.Counter
}

// SetTelemetry attaches a metrics registry: payload bytes entering the
// pipeline and firmware bytes reaching the sink are counted, labeled
// with the pipeline kind (full or differential) — the ratio is the
// differential traffic saving.
func (p *Pipeline) SetTelemetry(reg *telemetry.Registry) {
	kind := "full"
	if p.IsDifferential() {
		kind = "differential"
	}
	p.telIn = reg.Counter("upkit_pipeline_bytes_total",
		"Pipeline throughput by direction and pipeline kind.",
		telemetry.L("direction", "in"), telemetry.L("kind", kind))
	p.telOut = reg.Counter("upkit_pipeline_bytes_total",
		"Pipeline throughput by direction and pipeline kind.",
		telemetry.L("direction", "out"), telemetry.L("kind", kind))
}

// NewFull builds the full-image pipeline: buffer → writer.
// bufSize <= 0 selects DefaultBufferSize. The sector buffer comes from
// a shared pool; Close returns it.
func NewFull(sink io.Writer, bufSize int) *Pipeline {
	if bufSize <= 0 {
		bufSize = DefaultBufferSize
	}
	return &Pipeline{buf: getBuf(bufSize), sink: sink}
}

// NewDifferential builds the differential pipeline: decompression →
// patching → buffer → writer. old provides random access to the
// currently installed firmware (typically a slot.Reader).
func NewDifferential(old io.ReaderAt, sink io.Writer, bufSize int) *Pipeline {
	p := NewFull(sink, bufSize)
	p.dec = lzss.NewDecoder()
	p.app = bsdiff.NewApplier(old)
	return p
}

// EnableDecryption inserts the decryption stage in front of the
// pipeline. Must be called before the first Write.
func (p *Pipeline) EnableDecryption(key []byte) error {
	if p.bytesIn > 0 || p.closed {
		return errors.New("pipeline: EnableDecryption after data")
	}
	d, err := security.NewPayloadDecrypter(key)
	if err != nil {
		return err
	}
	p.crypt = d
	return nil
}

// IsDifferential reports whether the patch stages are active.
func (p *Pipeline) IsDifferential() bool { return p.dec != nil }

// IsEncrypted reports whether the decryption stage is active.
func (p *Pipeline) IsEncrypted() bool { return p.crypt != nil }

// BytesIn reports payload bytes consumed so far.
func (p *Pipeline) BytesIn() int { return p.bytesIn }

// DurableBytes reports firmware bytes delivered to the sink so far —
// the count that is safe against power loss once the sink is flash.
// This is the number the reception journal checkpoints and the number
// resume positions the slot writer at (always after a Sync, so the
// buffer is empty and DurableBytes is the full output position).
func (p *Pipeline) DurableBytes() int { return p.bytesOut }

// BufferedBytes reports firmware bytes held in the sector buffer that
// have not reached the sink yet (at most one buffer). Progress
// telemetry wanting "bytes produced" should report DurableBytes() +
// BufferedBytes(); resume must never trust the buffered part.
func (p *Pipeline) BufferedBytes() int { return p.n }

// Write feeds payload bytes into the pipeline.
func (p *Pipeline) Write(data []byte) (int, error) {
	if p.closed {
		return 0, ErrClosed
	}
	p.bytesIn += len(data)
	p.telIn.Add(uint64(len(data)))
	if p.crypt != nil {
		if err := p.crypt.Feed(data, p.afterDecrypt); err != nil {
			return 0, fmt.Errorf("pipeline: decrypt stage: %w", err)
		}
		return len(data), nil
	}
	if err := p.afterDecrypt(data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// afterDecrypt routes plaintext payload bytes into the remaining
// stages.
func (p *Pipeline) afterDecrypt(data []byte) error {
	if p.dec == nil {
		return p.toBuffer(data)
	}
	err := p.dec.Feed(data, func(patchBytes []byte) error {
		return p.app.Feed(patchBytes, p.toBuffer)
	})
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	return nil
}

// toBuffer is the buffer stage: accumulate and emit in buffer-sized
// chunks. When the buffer is empty and the input spans whole sectors,
// those sectors bypass the copy entirely and go to the sink in a
// single Write — flash.Program takes the multi-sector span in one
// call, one lock acquisition instead of one per sector.
func (p *Pipeline) toBuffer(data []byte) error {
	if p.n == 0 && len(data) >= len(p.buf) {
		whole := len(data) / len(p.buf) * len(p.buf)
		if _, err := p.sink.Write(data[:whole]); err != nil {
			return fmt.Errorf("pipeline: writer stage: %w", err)
		}
		p.bytesOut += whole
		p.telOut.Add(uint64(whole))
		data = data[whole:]
	}
	for len(data) > 0 {
		n := copy(p.buf[p.n:], data)
		p.n += n
		data = data[n:]
		if p.n == len(p.buf) {
			if err := p.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush is the writer stage: push the buffered bytes to the sink.
func (p *Pipeline) flush() error {
	if p.n == 0 {
		return nil
	}
	if _, err := p.sink.Write(p.buf[:p.n]); err != nil {
		return fmt.Errorf("pipeline: writer stage: %w", err)
	}
	p.bytesOut += p.n
	p.telOut.Add(uint64(p.n))
	p.n = 0
	return nil
}

// Close flushes the buffer and verifies that any compressed/patch
// streams terminated cleanly. The pipeline must not be used afterwards;
// its sector buffer returns to the pool.
func (p *Pipeline) Close() error {
	if p.closed {
		return ErrClosed
	}
	p.closed = true
	defer func() {
		putBuf(p.buf)
		p.buf = nil
	}()
	if p.dec != nil {
		if err := p.dec.Close(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		if err := p.app.Close(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	return p.flush()
}
