package pipeline

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"upkit/internal/bsdiff"
	"upkit/internal/lzss"
	"upkit/internal/security"
)

// splitResume runs wire through a pipeline in two halves with a
// checkpoint/restore at the cut, and returns the concatenated sink
// output of both halves.
func splitResume(t *testing.T, build func(sink *bytes.Buffer) *Pipeline, wire []byte, split int) []byte {
	t.Helper()
	var sink1 bytes.Buffer
	p1 := build(&sink1)
	if _, err := p1.Write(wire[:split]); err != nil {
		t.Fatalf("split=%d: first write: %v", split, err)
	}
	cp, err := p1.Checkpoint()
	if err != nil {
		t.Fatalf("split=%d: checkpoint: %v", split, err)
	}
	// Checkpoint syncs: the first sink must hold exactly DurableBytes bytes.
	if sink1.Len() != cp.DurableBytes() {
		t.Fatalf("split=%d: sink has %d bytes, checkpoint says %d", split, sink1.Len(), cp.DurableBytes())
	}
	if cp.BytesIn() != split {
		t.Fatalf("split=%d: checkpoint BytesIn = %d", split, cp.BytesIn())
	}

	// Serialize through the wire format, as the journal does.
	parsed, err := ParseCheckpoint(cp.Marshal())
	if err != nil {
		t.Fatalf("split=%d: parse: %v", split, err)
	}

	var sink2 bytes.Buffer
	p2 := build(&sink2)
	if err := p2.Restore(parsed); err != nil {
		t.Fatalf("split=%d: restore: %v", split, err)
	}
	if _, err := p2.Write(wire[split:]); err != nil {
		t.Fatalf("split=%d: resumed write: %v", split, err)
	}
	if err := p2.Close(); err != nil {
		t.Fatalf("split=%d: close: %v", split, err)
	}
	return append(sink1.Bytes(), sink2.Bytes()...)
}

func checkSplits(t *testing.T, build func(sink *bytes.Buffer) *Pipeline, wire, want []byte) {
	t.Helper()
	splits := []int{0, 1, 7, len(wire) / 3, len(wire) / 2, len(wire) - 1}
	for _, split := range splits {
		if split < 0 || split > len(wire) {
			continue
		}
		got := splitResume(t, build, wire, split)
		if !bytes.Equal(got, want) {
			t.Fatalf("split=%d: output mismatch: got %d bytes, want %d", split, len(got), len(want))
		}
	}
}

func TestCheckpointResumeFull(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	fw := make([]byte, 10000)
	rng.Read(fw)
	checkSplits(t, func(sink *bytes.Buffer) *Pipeline {
		return NewFull(sink, 1024)
	}, fw, fw)
}

func TestCheckpointResumeFullEncrypted(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fw := make([]byte, 10000)
	rng.Read(fw)
	key := bytes.Repeat([]byte{0x11}, 16)
	wire, err := security.EncryptPayload(key, fw, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkSplits(t, func(sink *bytes.Buffer) *Pipeline {
		p := NewFull(sink, 1024)
		if err := p.EnableDecryption(key); err != nil {
			t.Fatal(err)
		}
		return p
	}, wire, fw)
}

func diffWire(t *testing.T) (old, new, wire []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	old = make([]byte, 12000)
	rng.Read(old)
	new = bytes.Clone(old)
	copy(new[4000:], bytes.Repeat([]byte{0xAB}, 500))
	new = append(new, []byte("tail-growth")...)
	return old, new, lzss.Encode(bsdiff.Diff(old, new))
}

func TestCheckpointResumeDifferential(t *testing.T) {
	old, new, wire := diffWire(t)
	checkSplits(t, func(sink *bytes.Buffer) *Pipeline {
		return NewDifferential(bytes.NewReader(old), sink, 1024)
	}, wire, new)
}

func TestCheckpointResumeDifferentialEncrypted(t *testing.T) {
	old, new, wire := diffWire(t)
	key := bytes.Repeat([]byte{0x22}, 16)
	rng := rand.New(rand.NewSource(43))
	enc, err := security.EncryptPayload(key, wire, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkSplits(t, func(sink *bytes.Buffer) *Pipeline {
		p := NewDifferential(bytes.NewReader(old), sink, 1024)
		if err := p.EnableDecryption(key); err != nil {
			t.Fatal(err)
		}
		return p
	}, enc, new)
}

func TestRestoreRejectsKindMismatch(t *testing.T) {
	var sink bytes.Buffer
	full := NewFull(&sink, 256)
	cp, err := full.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	diff := NewDifferential(bytes.NewReader(nil), &sink, 256)
	if err := diff.Restore(cp); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("full checkpoint into differential pipeline: error = %v, want ErrCheckpointMismatch", err)
	}
	enc := NewFull(&sink, 256)
	if err := enc.EnableDecryption(bytes.Repeat([]byte{9}, 16)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Restore(cp); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("cleartext checkpoint into encrypted pipeline: error = %v, want ErrCheckpointMismatch", err)
	}
}

func TestRestoreRejectsUsedPipeline(t *testing.T) {
	var sink bytes.Buffer
	p := NewFull(&sink, 256)
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewFull(&sink, 256)
	if _, err := p2.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p2.Restore(cp); err == nil {
		t.Fatal("restore into a pipeline that has consumed data must fail")
	}
}

func TestParseCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ParseCheckpoint(nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("nil blob: error = %v, want ErrBadCheckpoint", err)
	}
	var sink bytes.Buffer
	cp, err := NewFull(&sink, 256).Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob := cp.Marshal()
	blob[0] = 'X'
	if _, err := ParseCheckpoint(blob); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("bad magic: error = %v, want ErrBadCheckpoint", err)
	}
	blob = append(cp.Marshal(), 0xFF)
	if _, err := ParseCheckpoint(blob); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("trailing byte: error = %v, want ErrBadCheckpoint", err)
	}
}
