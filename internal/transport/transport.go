// Package transport models the radio links of the evaluation platforms.
// UpKit itself is transport-agnostic (§IV-B): the same agent FSM is
// driven by a BLE push interface or a CoAP pull interface, and both of
// those are built on the Link abstraction here, which charges virtual
// time and radio energy for every byte on the air.
package transport

import (
	"errors"
	"math/rand"
	"time"

	"upkit/internal/energy"
	"upkit/internal/simclock"
	"upkit/internal/telemetry"
)

// Link errors.
var (
	// ErrLinkDown is returned by transfers over a disabled link (used
	// by the experiments to model disconnections).
	ErrLinkDown = errors.New("transport: link down")
	// ErrLost is returned when the loss model drops a transfer; the
	// radio time is still charged (the frame was sent, just not
	// received), and the caller retransmits like a real CoAP CON.
	ErrLost = errors.New("transport: frame lost")
)

// Link is a half-duplex radio link with chunked timing: payloads are
// carried in chunks of ChunkSize bytes, each taking ChunkTime on the
// air, plus a fixed PerMessage latency for every message exchange.
type Link struct {
	// Name labels the link ("ble", "802.15.4").
	Name string
	// ChunkSize is the usable payload per radio chunk (e.g. the ATT
	// payload for BLE, the block size for CoAP).
	ChunkSize int
	// ChunkTime is the air + protocol time per chunk (e.g. one BLE
	// connection-event share, or one CoAP block round trip).
	ChunkTime time.Duration
	// PerMessage is the fixed cost per message exchange (request setup,
	// radio wake-up).
	PerMessage time.Duration

	// Clock receives transfer durations. May be nil (instant link).
	Clock *simclock.Clock
	// Meter receives radio-on energy charges. May be nil.
	Meter *energy.Meter

	// Down simulates a link failure: transfers return ErrLinkDown.
	Down bool

	// lossRand drives the packet-loss model; nil means a perfect link.
	lossRand *rand.Rand
	lossRate float64

	// Resolved telemetry handles; nil (the default) drops all samples.
	telTransfers *telemetry.Counter
	telBytes     *telemetry.Counter
	telLost      *telemetry.Counter
	telSeconds   *telemetry.Histogram
}

// SetTelemetry attaches a metrics registry: transfers, payload bytes,
// lost frames, and per-transfer air time are recorded, labeled with the
// link's name. Handles are resolved once here so Transfer stays on the
// atomic fast path.
func (l *Link) SetTelemetry(reg *telemetry.Registry) {
	lbl := telemetry.L("link", l.Name)
	l.telTransfers = reg.Counter("upkit_link_transfers_total", "Radio transfers attempted per link.", lbl)
	l.telBytes = reg.Counter("upkit_link_bytes_total", "Payload bytes put on the air per link.", lbl)
	l.telLost = reg.Counter("upkit_link_lost_frames_total", "Transfers dropped by the loss model per link.", lbl)
	l.telSeconds = reg.Histogram("upkit_link_transfer_seconds", "Per-transfer air time (virtual) per link.", nil, lbl)
}

// SetLoss enables a deterministic packet-loss model: each Transfer is
// dropped with probability rate, using seed for reproducibility. A
// dropped transfer still costs air time and energy but returns ErrLost.
func (l *Link) SetLoss(rate float64, seed int64) {
	if rate <= 0 {
		l.lossRand = nil
		l.lossRate = 0
		return
	}
	l.lossRate = rate
	l.lossRand = rand.New(rand.NewSource(seed))
}

// TransferTime computes how long sending n payload bytes takes, without
// advancing the clock.
func (l *Link) TransferTime(n int) time.Duration {
	if n <= 0 {
		return l.PerMessage
	}
	chunks := (n + l.ChunkSize - 1) / l.ChunkSize
	return l.PerMessage + time.Duration(chunks)*l.ChunkTime
}

// Transfer models sending n payload bytes: it advances the clock,
// charges radio energy, and returns the transfer duration.
func (l *Link) Transfer(n int) (time.Duration, error) {
	if l.Down {
		return 0, ErrLinkDown
	}
	d := l.TransferTime(n)
	if l.Clock != nil {
		l.Clock.Advance(d)
	}
	if l.Meter != nil {
		l.Meter.ChargeRadio(d)
	}
	l.telTransfers.Inc()
	if n > 0 {
		l.telBytes.Add(uint64(n))
	}
	l.telSeconds.ObserveDuration(d)
	if l.lossRand != nil && l.lossRand.Float64() < l.lossRate {
		l.telLost.Inc()
		return d, ErrLost
	}
	return d, nil
}

// Goodput reports the steady-state payload rate in bytes per second.
func (l *Link) Goodput() float64 {
	if l.ChunkTime <= 0 {
		return 0
	}
	return float64(l.ChunkSize) / l.ChunkTime.Seconds()
}

// BLE returns the push-approach link: a BLE 4.x GATT connection as seen
// from a smartphone — three 20-byte ATT write-without-response payloads
// per ~26 ms connection event, ≈2.3 kB/s on the air. Together with the
// flash work performed while receiving, this lands the paper's push
// propagation phase (Fig. 8a: 100 kB in ≈47.7 s).
func BLE(clock *simclock.Clock, meter *energy.Meter) *Link {
	return &Link{
		Name:       "ble",
		ChunkSize:  60, // 3 × 20-byte ATT payloads per connection event
		ChunkTime:  26 * time.Millisecond,
		PerMessage: 30 * time.Millisecond,
		Clock:      clock,
		Meter:      meter,
	}
}

// IEEE802154 returns the pull-approach link: one ~7 ms 802.15.4 frame
// slot per 64-byte chunk plus a 1 ms turnaround. A CoAP block exchange
// (one request frame + a two-frame response) then costs ≈23 ms, which
// — again including the on-the-fly flash work — lands the paper's pull
// propagation phase (Fig. 8a: 100 kB in ≈41.7 s).
func IEEE802154(clock *simclock.Clock, meter *energy.Meter) *Link {
	return &Link{
		Name:       "802.15.4",
		ChunkSize:  64,
		ChunkTime:  7 * time.Millisecond,
		PerMessage: time.Millisecond,
		Clock:      clock,
		Meter:      meter,
	}
}
