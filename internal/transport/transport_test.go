package transport

import (
	"errors"
	"testing"
	"time"

	"upkit/internal/energy"
	"upkit/internal/simclock"
)

func TestTransferTimeChunking(t *testing.T) {
	l := &Link{ChunkSize: 100, ChunkTime: 10 * time.Millisecond, PerMessage: 5 * time.Millisecond}
	cases := []struct {
		n    int
		want time.Duration
	}{
		{0, 5 * time.Millisecond},
		{1, 15 * time.Millisecond},
		{100, 15 * time.Millisecond},
		{101, 25 * time.Millisecond},
		{1000, 105 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := l.TransferTime(tc.n); got != tc.want {
			t.Errorf("TransferTime(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestTransferAdvancesClockAndChargesRadio(t *testing.T) {
	clock := simclock.New()
	meter := energy.NewMeter(energy.Profile{RadioMW: 100})
	l := &Link{ChunkSize: 10, ChunkTime: time.Millisecond, Clock: clock, Meter: meter}
	d, err := l.Transfer(100)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*time.Millisecond {
		t.Fatalf("duration = %v, want 10ms", d)
	}
	if clock.Now() != d {
		t.Fatalf("clock = %v, want %v", clock.Now(), d)
	}
	// 100 mW for 10 ms = 1000 µJ.
	if got := meter.Component(energy.Radio); got != 1000 {
		t.Fatalf("radio energy = %f µJ, want 1000", got)
	}
}

func TestDownLink(t *testing.T) {
	l := &Link{ChunkSize: 10, ChunkTime: time.Millisecond, Down: true}
	if _, err := l.Transfer(10); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("error = %v, want ErrLinkDown", err)
	}
}

func TestCalibratedGoodputs(t *testing.T) {
	// Fig. 8a calibration. Push: one burst of write-without-response
	// commands, 100 kB of radio time ≈43.4 s (the rest of the 47.7 s
	// propagation phase is flash work while receiving).
	ble := BLE(nil, nil)
	pushTime := ble.TransferTime(100_000).Seconds()
	if pushTime < 41 || pushTime > 46 {
		t.Fatalf("BLE 100 kB burst = %.1fs, want ≈43.4s", pushTime)
	}
	// Pull: 100 kB in 64-byte CoAP blocks; each block exchange is a
	// ~45-byte request plus a ~78-byte response. Radio total ≈36 s.
	r154 := IEEE802154(nil, nil)
	blocks := (100_000 + 63) / 64
	var pullTime float64
	for range blocks {
		pullTime += r154.TransferTime(45).Seconds() + r154.TransferTime(78).Seconds()
	}
	if pullTime < 33 || pullTime > 39 {
		t.Fatalf("802.15.4 100 kB blockwise = %.1fs, want ≈36s", pullTime)
	}
	if ble.Goodput() >= r154.Goodput() {
		t.Fatal("pull link should have higher raw goodput than BLE (paper Fig. 8a)")
	}
}

func TestLossModel(t *testing.T) {
	l := &Link{ChunkSize: 10, ChunkTime: time.Millisecond}
	l.SetLoss(1.0, 1)
	if _, err := l.Transfer(10); !errors.Is(err, ErrLost) {
		t.Fatalf("error = %v, want ErrLost at 100%% loss", err)
	}
	// Air time is still charged on a dropped frame.
	clock := simclock.New()
	l.Clock = clock
	if _, err := l.Transfer(10); !errors.Is(err, ErrLost) {
		t.Fatal("expected loss")
	}
	if clock.Now() == 0 {
		t.Fatal("dropped frame charged no air time")
	}
	// Disabling restores a perfect link.
	l.SetLoss(0, 0)
	if _, err := l.Transfer(10); err != nil {
		t.Fatalf("transfer after disabling loss: %v", err)
	}
	// A mid-range rate drops roughly that share of frames.
	l.SetLoss(0.5, 42)
	lost := 0
	for range 1000 {
		if _, err := l.Transfer(10); errors.Is(err, ErrLost) {
			lost++
		}
	}
	if lost < 400 || lost > 600 {
		t.Fatalf("50%% loss dropped %d of 1000", lost)
	}
}

func TestGoodputZeroChunkTime(t *testing.T) {
	l := &Link{ChunkSize: 10}
	if got := l.Goodput(); got != 0 {
		t.Fatalf("Goodput with zero chunk time = %f, want 0", got)
	}
}
