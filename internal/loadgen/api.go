package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"upkit/internal/controlplane"
	"upkit/internal/fleet"
	"upkit/internal/httpapi"
	"upkit/internal/simdev"
)

// APIConfig sizes an HTTP-driven campaign run: the harness never
// touches the fleet directly, it drives the campaign control plane
// exactly like an operator would — create, poll, pause, resume — and
// (in self-hosted mode) restarts the whole server mid-campaign to
// prove the persisted checkpoint carries it.
type APIConfig struct {
	Config
	// URL points the harness at an external upkit-server; empty
	// self-hosts a control plane in-process (the default, and the only
	// mode that can exercise a full server restart).
	URL string
	// StateDir is the self-hosted control plane's persistence root;
	// empty uses a temporary directory.
	StateDir string
	// PauseAt is the completed-device fraction at which the harness
	// pauses the campaign (and, self-hosted, restarts the server).
	// 0 disables the pause/resume cycle; default 0.25.
	PauseAt float64
	// Poll is the progress-poll interval; default 50ms.
	Poll time.Duration
	// HistorySample bounds how many devices get their per-device
	// attempt history verified after the run; default 1000, negative
	// disables.
	HistorySample int
}

// APIReport is the JSON result of an API-driven run.
type APIReport struct {
	CampaignID string `json:"campaign_id"`
	Devices    int    `json:"devices"`
	Updated    int    `json:"updated"`
	Failed     int    `json:"failed"`
	Pending    int    `json:"pending"`

	// Paused and Restarted record whether the pause/resume cycle (and
	// the full server restart) actually happened mid-campaign.
	Paused    bool `json:"paused"`
	Restarted bool `json:"restarted"`
	// PausedAtDone is how many devices were terminal when the pause
	// checkpoint was taken.
	PausedAtDone int `json:"paused_at_done,omitempty"`

	// Polls counts progress GETs; StagesSeen is the deepest stage index
	// observed live — together they attest the progress surface was
	// actually exercised, not just the final state.
	Polls      int `json:"polls"`
	StagesSeen int `json:"stages_seen"`

	// HistoryChecked is how many devices had their attempt history
	// verified to hold exactly one terminal record (the exactly-once
	// re-dispatch check); 0 when history was disabled or skipped.
	HistoryChecked int `json:"history_checked"`

	WallSeconds float64 `json:"wall_seconds"`

	// Final is the campaign's terminal status as the API reported it.
	Final *controlplane.Status `json:"final"`
}

// selfHost is one process-lifetime of the self-hosted control plane:
// a manager over StateDir behind a real TCP listener.
type selfHost struct {
	mgr *controlplane.Manager
	srv *http.Server
	ln  net.Listener
}

func startSelfHost(dir string) (*selfHost, string, error) {
	mgr, err := controlplane.NewManager(controlplane.Config{Dir: dir})
	if err != nil {
		return nil, "", err
	}
	table := httpapi.NewTable()
	mgr.Register(table)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return nil, "", err
	}
	srv := &http.Server{Handler: table}
	go srv.Serve(ln)
	return &selfHost{mgr: mgr, srv: srv, ln: ln}, "http://" + ln.Addr().String(), nil
}

func (h *selfHost) stop() {
	h.srv.Close()
	h.mgr.Close()
}

// RunAPI drives one staged campaign entirely through the campaign
// HTTP API. Self-hosted runs additionally kill and restart the server
// at the pause point, resuming from the persisted checkpoint.
func RunAPI(cfg APIConfig) (*APIReport, error) {
	cfg.applyDefaults()
	if cfg.Stack != StackSim {
		return nil, fmt.Errorf("loadgen: -api drives the control plane's census registry, which serves the sim stack only (got %q)", cfg.Stack)
	}
	if cfg.PauseAt == 0 {
		cfg.PauseAt = 0.25
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.HistorySample == 0 {
		cfg.HistorySample = 1000
	}

	var host *selfHost
	base := cfg.URL
	if base == "" {
		dir := cfg.StateDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "upkit-campaigns-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		var err error
		host, base, err = startSelfHost(dir)
		if err != nil {
			return nil, err
		}
		defer func() {
			if host != nil {
				host.stop()
			}
		}()
		cfg.StateDir = dir
	}
	client := &controlplane.Client{Base: base}

	rep := &APIReport{Devices: cfg.Devices}
	st, err := client.Create(controlplane.CreateRequest{
		Name:   "loadgen api run",
		Target: 2,
		Census: controlplane.Census{
			Source:       "sim",
			Devices:      cfg.Devices,
			FailRate:     cfg.FailRate,
			SimLatencyNS: int64(cfg.SimLatency),
		},
		Policy: apiPolicy(cfg.Config),
	})
	if err != nil {
		return nil, err
	}
	rep.CampaignID = st.ID
	start := time.Now()

	// Phase 1: watch live progress until the pause point.
	if cfg.PauseAt > 0 {
		target := int(float64(cfg.Devices) * cfg.PauseAt)
		for {
			st, err = client.Get(rep.CampaignID)
			if err != nil {
				return nil, err
			}
			rep.observe(st)
			if st.State != controlplane.StateRunning ||
				st.Progress.Updated+st.Progress.Failed >= target {
				break
			}
			time.Sleep(cfg.Poll)
		}
		if st.State == controlplane.StateRunning {
			st, err = client.Pause(rep.CampaignID)
			if err != nil {
				return nil, err
			}
			rep.observe(st)
		}
		if st.State == controlplane.StatePaused {
			rep.Paused = true
			rep.PausedAtDone = st.Progress.Updated + st.Progress.Failed

			if host != nil {
				// Full restart: tear the server down, bring a fresh one up
				// over the same state directory, and keep going against it.
				host.stop()
				host, base, err = startSelfHost(cfg.StateDir)
				if err != nil {
					return nil, fmt.Errorf("loadgen: restart control plane: %w", err)
				}
				client = &controlplane.Client{Base: base}
				rep.Restarted = true

				st, err = client.Get(rep.CampaignID)
				if err != nil {
					return nil, err
				}
				if st.State != controlplane.StatePaused {
					return nil, fmt.Errorf("loadgen: campaign %s came back %q after restart, want paused",
						rep.CampaignID, st.State)
				}
				if got := st.Progress.Updated + st.Progress.Failed; got != rep.PausedAtDone {
					return nil, fmt.Errorf("loadgen: restart lost progress: %d done, checkpoint had %d",
						got, rep.PausedAtDone)
				}
			}
			if _, err := client.Resume(rep.CampaignID); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: watch the (possibly resumed) campaign to its end.
	st, err = client.WaitTerminal(rep.CampaignID, cfg.Poll, func(s *controlplane.Status) {
		rep.observe(s)
	})
	if err != nil {
		return nil, err
	}
	rep.observe(st)
	rep.WallSeconds = time.Since(start).Seconds()
	rep.Final = st
	rep.Updated = st.Progress.Updated
	rep.Failed = st.Progress.Failed
	rep.Pending = st.Progress.Pending

	if st.State != controlplane.StateCompleted {
		return rep, fmt.Errorf("loadgen: campaign %s ended %s (%s)", st.ID, st.State, st.AbortReason)
	}
	if err := rep.checkHistory(client, cfg); err != nil {
		return rep, err
	}
	return rep, nil
}

// observe folds one progress snapshot into the report's poll counters.
func (r *APIReport) observe(st *controlplane.Status) {
	r.Polls++
	if st.Progress.Stage > r.StagesSeen {
		r.StagesSeen = st.Progress.Stage
	}
}

// checkHistory samples per-device attempt histories and verifies the
// exactly-once property: one terminal record per device, even across
// the pause/restart/resume cycle.
func (r *APIReport) checkHistory(client *controlplane.Client, cfg APIConfig) error {
	if cfg.HistorySample < 0 {
		return nil
	}
	sample := min(cfg.HistorySample, cfg.Devices)
	// An evenly spaced sample covers every stage of the rollout.
	step := max(cfg.Devices/max(sample, 1), 1)
	for i := 0; i < cfg.Devices; i += step {
		hist, err := client.DeviceHistory(r.CampaignID, uint32(simdev.IDBase+i))
		if err != nil {
			// Fleets past the server's history bound run without it.
			if r.HistoryChecked == 0 {
				return nil
			}
			return err
		}
		terminal := 0
		for _, a := range hist {
			if a.Status != "skipped" {
				terminal++
			}
		}
		if terminal != 1 {
			return fmt.Errorf("loadgen: device %#x has %d terminal attempts, want exactly 1 (history %+v)",
				simdev.IDBase+i, terminal, hist)
		}
		r.HistoryChecked++
	}
	return nil
}

// apiPolicy renders the harness config as a campaign policy, matching
// the direct path's policy() so -api and direct runs are comparable
// (minus the in-process hooks, which don't cross the wire).
func apiPolicy(cfg Config) fleet.Policy {
	return fleet.Policy{
		Parallelism:          cfg.Parallelism,
		Shards:               cfg.Shards,
		Stages:               cfg.Stages,
		MaxCanaryFailureRate: cfg.MaxFailureRate,
		BreakerFailureRate:   cfg.BreakerFailureRate,
		BreakerMinSample:     cfg.BreakerMinSample,
		MaxRetries:           cfg.MaxRetries,
		MaxErrors:            cfg.MaxErrors,
	}
}
