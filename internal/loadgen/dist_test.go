package loadgen

import "testing"

// TestDistTopologySavesOriginEgress: the same small campaign direct and
// through one caching proxy — the proxy leg must complete every device
// and cut origin egress by at least the wave size's worth of sharing.
func TestDistTopologySavesOriginEgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack fleet in -short")
	}
	base := Config{Devices: 24, FirmwareKiB: 16, Parallelism: 8, Seed: "dist-loadgen"}

	direct, err := Run(base)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if direct.Updated != direct.Devices {
		t.Fatalf("direct: %d/%d updated: %v", direct.Updated, direct.Devices, direct.Errors)
	}
	if direct.OriginEgressBytes == 0 {
		t.Fatal("direct: no origin egress recorded")
	}

	proxied := base
	proxied.Proxies = 1
	viaProxy, err := Run(proxied)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	if viaProxy.Updated != viaProxy.Devices {
		t.Fatalf("proxy: %d/%d updated: %v", viaProxy.Updated, viaProxy.Devices, viaProxy.Errors)
	}
	if viaProxy.ProxyCacheFills == 0 || viaProxy.ProxyCacheHits == 0 {
		t.Fatalf("proxy stats = %+v: cache must fill once and then hit", viaProxy)
	}
	if viaProxy.OriginEgressBytes*2 >= direct.OriginEgressBytes {
		t.Fatalf("origin egress %d via proxy vs %d direct: expected at least 2x reduction",
			viaProxy.OriginEgressBytes, direct.OriginEgressBytes)
	}

	peered := proxied
	peered.PeerAssist = true
	viaPeer, err := Run(peered)
	if err != nil {
		t.Fatalf("proxy+peer: %v", err)
	}
	if viaPeer.Updated != viaPeer.Devices {
		t.Fatalf("proxy+peer: %d/%d updated: %v", viaPeer.Updated, viaPeer.Devices, viaPeer.Errors)
	}
	if viaPeer.PeerBlockHits == 0 {
		t.Fatalf("proxy+peer: no peer block hits (result %+v)", viaPeer)
	}
}
